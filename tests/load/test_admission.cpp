// load::Driver on the real sim runtime: exactly-once admission, epoch
// batching semantics, the measurement interval, and ledger corruption
// detection via cool-check.
#include "load/driver.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "core/runtime.hpp"
#include "load/arrivals.hpp"

namespace cool::load {
namespace {

Runtime make_rt(std::uint32_t procs) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  return Runtime(sc);
}

/// Minimal request body: a little compute, then complete().
TaskFn tiny_request(Driver* d, std::uint32_t id, std::uint64_t work) {
  auto& c = co_await self();
  c.work(work);
  d->complete(id, c.now());
}

ArrivalConfig light_load(std::uint64_t n) {
  ArrivalConfig a;
  a.rate_per_kcycle = 2.0;
  a.n_requests = n;
  return a;
}

TEST(Admission, EveryRequestRunsExactlyOnce) {
  Runtime rt = make_rt(4);
  Driver d(generate_arrivals(light_load(200)), {.epoch_cycles = 500});
  std::vector<int> runs(200, 0);
  rt.run(d.pump([](std::uint32_t) { return Affinity::none(); },
                [&](std::uint32_t id, std::uint64_t) {
                  ++runs[id];
                  return tiny_request(&d, id, 100);
                }));
  d.verify();  // generated == admitted == completed, throws otherwise
  EXPECT_EQ(d.ledger().generated, 200u);
  EXPECT_EQ(d.ledger().admitted, 200u);
  EXPECT_EQ(d.ledger().completed, 200u);
  for (const int r : runs) EXPECT_EQ(r, 1);
  EXPECT_EQ(d.latency().count(), 200u);
}

TEST(Admission, CompletionNeverPrecedesArrival) {
  // Epoch batching delays admission past the arrival stamp and dispatch
  // honors ready_time, so every latency is >= the request's service time
  // and every completion lands at or after its arrival.
  Runtime rt = make_rt(4);
  constexpr std::uint64_t kWork = 250;
  Driver d(generate_arrivals(light_load(128)), {.epoch_cycles = 1000});
  std::vector<std::uint64_t> done(128, 0);
  rt.run(d.pump([](std::uint32_t) { return Affinity::none(); },
                [&](std::uint32_t id, std::uint64_t) {
                  return [](Driver* drv, std::uint32_t i, std::uint64_t* out)
                             -> TaskFn {
                    auto& c = co_await self();
                    c.work(kWork);
                    *out = c.now();
                    drv->complete(i, c.now());
                  }(&d, id, &done[id]);
                }));
  const auto& arr = d.arrivals();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_GE(done[i], arr[i] + kWork) << "request " << i;
  }
  // Released at the end of the containing epoch: admission delay is bounded
  // by one epoch plus queueing, and under light load a request completes
  // within a small multiple of the epoch.
  EXPECT_GE(d.latency().quantile(0.5), kWork);
}

TEST(Admission, MeasurementIntervalExcludesEarlyArrivals) {
  Runtime rt = make_rt(4);
  const auto trace = generate_arrivals(light_load(300));
  const std::uint64_t cut = trace[150];
  Driver d(trace, {.epoch_cycles = 500, .measure_from_cycles = cut});
  rt.run(d.pump([](std::uint32_t) { return Affinity::none(); },
                [&](std::uint32_t id, std::uint64_t) {
                  return tiny_request(&d, id, 100);
                }));
  d.verify();
  EXPECT_EQ(d.latency().count(), 300u);
  // Arrivals strictly before `cut` are excluded; stamps can tie, so the
  // measured count is at least the tail half but never the whole trace.
  EXPECT_GE(d.measured_latency().count(), 150u);
  EXPECT_LT(d.measured_latency().count(), 300u);
}

TEST(Admission, LedgerCorruptionThrows) {
  Runtime rt = make_rt(2);
  Driver d(generate_arrivals(light_load(32)), {.epoch_cycles = 500});
  rt.run(d.pump([](std::uint32_t) { return Affinity::none(); },
                [&](std::uint32_t id, std::uint64_t) {
                  return tiny_request(&d, id, 50);
                }));
  d.verify();
  // A stray duplicate completion breaks completed == admitted.
  d.complete(0, 1 << 20);
  EXPECT_THROW(d.verify(), util::Error);
}

TEST(Admission, RejectsUnsortedTrace) {
  EXPECT_THROW(Driver({100, 50}, {}), util::Error);
}

TEST(Admission, CompletionIdOutOfRangeThrows) {
  Driver d({10, 20}, {});
  EXPECT_THROW(d.complete(2, 100), util::Error);
}

}  // namespace
}  // namespace cool::load
