// Arrival generation: bit-reproducibility (including across host threads),
// trace shape per process kind, and the CLI kind parser.
#include "load/arrivals.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace cool::load {
namespace {

double mean_gap(const std::vector<std::uint64_t>& t) {
  if (t.size() < 2) return 0.0;
  return static_cast<double>(t.back() - t.front()) /
         static_cast<double>(t.size() - 1);
}

double gap_variance(const std::vector<std::uint64_t>& t) {
  if (t.size() < 2) return 0.0;
  const double m = mean_gap(t);
  double acc = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double g = static_cast<double>(t[i] - t[i - 1]) - m;
    acc += g * g;
  }
  return acc / static_cast<double>(t.size() - 1);
}

TEST(Arrivals, SameConfigIsByteIdentical) {
  ArrivalConfig cfg;
  cfg.rate_per_kcycle = 4.0;
  cfg.n_requests = 2048;
  const auto a = generate_arrivals(cfg);
  const auto b = generate_arrivals(cfg);
  EXPECT_EQ(a, b);
  EXPECT_EQ(trace_digest(a), trace_digest(b));
}

TEST(Arrivals, DeterministicAcrossHostThreads) {
  // The generator must not touch any global or thread-local state: a trace
  // produced on a worker thread is the same trace.
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate_per_kcycle = 2.0;
    cfg.n_requests = 512;
    const auto here = generate_arrivals(cfg);
    std::vector<std::uint64_t> there;
    std::thread worker([&] { there = generate_arrivals(cfg); });
    worker.join();
    EXPECT_EQ(trace_digest(here), trace_digest(there))
        << arrival_kind_name(kind);
  }
}

TEST(Arrivals, SeedChangesTheTrace) {
  ArrivalConfig a;
  a.n_requests = 256;
  ArrivalConfig b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(trace_digest(generate_arrivals(a)), trace_digest(generate_arrivals(b)));
}

TEST(Arrivals, TracesAreMonotoneAndStartAfterStartCycle) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate_per_kcycle = 3.0;
    cfg.n_requests = 1024;
    cfg.start_cycle = 5000;
    const auto t = generate_arrivals(cfg);
    ASSERT_EQ(t.size(), cfg.n_requests);
    EXPECT_TRUE(std::is_sorted(t.begin(), t.end())) << arrival_kind_name(kind);
    EXPECT_GE(t.front(), cfg.start_cycle) << arrival_kind_name(kind);
  }
}

TEST(Arrivals, PoissonMeanGapMatchesRate) {
  // rate r per kcycle => mean gap 1000/r cycles; with 16k samples the sample
  // mean is within a few percent of that with overwhelming probability.
  ArrivalConfig cfg;
  cfg.rate_per_kcycle = 5.0;
  cfg.n_requests = 16384;
  const double m = mean_gap(generate_arrivals(cfg));
  EXPECT_NEAR(m, 1000.0 / cfg.rate_per_kcycle, 0.05 * 1000.0 / cfg.rate_per_kcycle);
}

TEST(Arrivals, BurstyIsBurstierThanPoisson) {
  // Same mean-rate budget: the 2-state MMPP's gap variance must exceed the
  // memoryless process's (that's what "bursty" means).
  ArrivalConfig p;
  p.rate_per_kcycle = 2.0;
  p.n_requests = 16384;
  ArrivalConfig b = p;
  b.kind = ArrivalKind::kBursty;
  const auto pt = generate_arrivals(p);
  const auto bt = generate_arrivals(b);
  // Compare squared coefficient of variation so differing realized mean
  // rates cannot mask the shape difference.
  const double cv2_p = gap_variance(pt) / (mean_gap(pt) * mean_gap(pt));
  const double cv2_b = gap_variance(bt) / (mean_gap(bt) * mean_gap(bt));
  EXPECT_GT(cv2_b, cv2_p * 1.5);
}

TEST(Arrivals, DiurnalRateSwings) {
  // Split one period into quarters: the peak quarter must see materially
  // more arrivals than the trough quarter (depth 0.8 => 9x in expectation).
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kDiurnal;
  cfg.rate_per_kcycle = 4.0;
  cfg.n_requests = 4096;
  cfg.period_cycles = 100000;
  cfg.depth = 0.8;
  const auto t = generate_arrivals(cfg);
  std::uint64_t quarter[4] = {0, 0, 0, 0};
  for (const std::uint64_t c : t) {
    if (c >= cfg.period_cycles) break;  // first period only
    quarter[4 * c / cfg.period_cycles] += 1;
  }
  // sin is positive over the first half-period: Q1 (peak) vs Q3+Q4 (trough).
  EXPECT_GT(quarter[0] + quarter[1], 2 * (quarter[2] + quarter[3]));
}

TEST(Arrivals, KindParserRoundTripsAndThrows) {
  EXPECT_EQ(parse_arrival_kind("poisson"), ArrivalKind::kPoisson);
  EXPECT_EQ(parse_arrival_kind("bursty"), ArrivalKind::kBursty);
  EXPECT_EQ(parse_arrival_kind("diurnal"), ArrivalKind::kDiurnal);
  for (const ArrivalKind k :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    EXPECT_EQ(parse_arrival_kind(arrival_kind_name(k)), k);
  }
  EXPECT_THROW(parse_arrival_kind("uniform"), util::Error);
}

}  // namespace
}  // namespace cool::load
