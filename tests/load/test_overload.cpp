// Open-loop overload semantics: when offered load exceeds capacity the pump
// does not slow down — queues grow, latency blows up, and the driver's
// observability (inflight samples, served ratio, histogram) reports it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/runtime.hpp"
#include "load/arrivals.hpp"
#include "load/driver.hpp"

namespace cool::load {
namespace {

Runtime make_rt(std::uint32_t procs) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  return Runtime(sc);
}

TaskFn busy_request(Driver* d, std::uint32_t id, std::uint64_t work) {
  auto& c = co_await self();
  c.work(work);
  d->complete(id, c.now());
}

struct RunOut {
  std::uint64_t p99 = 0;
  double served_ratio = 0.0;
  std::vector<std::uint64_t> inflight;
};

/// One serving processor (P=2: front-end + server), `work` cycles per
/// request: capacity is 1000/work requests per kcycle.
RunOut run_at(double rate_per_kcycle, std::uint64_t work) {
  Runtime rt = make_rt(2);
  ArrivalConfig a;
  a.rate_per_kcycle = rate_per_kcycle;
  a.n_requests = 512;
  Driver d(generate_arrivals(a), {.epoch_cycles = 500});
  rt.run(d.pump([](std::uint32_t) { return Affinity::none(); },
                [&](std::uint32_t id, std::uint64_t) {
                  return busy_request(&d, id, work);
                }));
  d.verify();
  RunOut out;
  out.p99 = d.latency().quantile(0.99);
  out.served_ratio =
      static_cast<double>(d.served_in_window()) /
      static_cast<double>(d.ledger().generated);
  out.inflight = d.inflight_samples();
  return out;
}

TEST(Overload, EveryRequestStillCompletesPastSaturation) {
  // 2x capacity: the ledger must still balance — open loop means queues
  // grow, not that work is dropped.
  Runtime rt = make_rt(2);
  ArrivalConfig a;
  a.rate_per_kcycle = 4.0;  // capacity is 2/kcycle at work=500
  a.n_requests = 256;
  Driver d(generate_arrivals(a), {.epoch_cycles = 500});
  rt.run(d.pump([](std::uint32_t) { return Affinity::none(); },
                [&](std::uint32_t id, std::uint64_t) {
                  return busy_request(&d, id, 500);
                }));
  d.verify();
  EXPECT_EQ(d.ledger().completed, 256u);
}

TEST(Overload, TailExplodesAndServedRatioCollapsesPastSaturation) {
  const RunOut below = run_at(1.0, 500);  // 0.5x capacity
  const RunOut above = run_at(4.0, 500);  // 2x capacity
  // Below saturation the system keeps up.
  EXPECT_GT(below.served_ratio, 0.9);
  // Past it the p99 is dominated by queueing (many times the service time)
  // and the in-window served fraction collapses towards capacity/offered.
  EXPECT_GT(above.p99, below.p99 * 5);
  EXPECT_LT(above.served_ratio, 0.7);
  // Finite, sane values throughout: the histogram never saturates to 0.
  EXPECT_GT(above.p99, 0u);
}

TEST(Overload, InflightGrowsWithoutBoundUnderOverload) {
  const RunOut above = run_at(4.0, 500);
  ASSERT_FALSE(above.inflight.empty());
  // The backlog at the end of the arrival window is a large fraction of the
  // trace; sample the sequence's max and final value.
  const std::uint64_t peak =
      *std::max_element(above.inflight.begin(), above.inflight.end());
  EXPECT_GT(peak, 64u);  // 512 requests, ~half the trace queued at peak
  // And below saturation the backlog stays shallow.
  const RunOut below = run_at(1.0, 500);
  const std::uint64_t small_peak =
      *std::max_element(below.inflight.begin(), below.inflight.end());
  EXPECT_LT(small_peak, 16u);
}

}  // namespace
}  // namespace cool::load
