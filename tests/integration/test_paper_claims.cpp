// Integration tests pinning the paper's central claims: every run of the
// suite re-verifies that the reproduced system still exhibits the behaviours
// the figures report. These run the real apps at reduced (but meaningful)
// sizes.
#include <gtest/gtest.h>

#include "apps/barneshut/barneshut.hpp"
#include "apps/cholesky/block.hpp"
#include "apps/cholesky/panel.hpp"
#include "apps/gauss/gauss.hpp"
#include "apps/locusroute/locusroute.hpp"
#include "apps/ocean/ocean.hpp"

namespace cool::apps {
namespace {

Runtime rt_for(std::uint32_t procs, const sched::Policy& pol) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = pol;
  return Runtime(sc);
}

// §1: "Performance improvements with these hints range from 60-135%" —
// at 32 processors every case study must gain at least ~50% from its hints.
TEST(PaperClaims, HintsGiveLargeImprovementsAtFullMachine) {
  const std::uint32_t P = 32;

  {  // Ocean
    ocean::Config cfg;
    cfg.n = 128;
    cfg.grids = 4;
    cfg.steps = 2;
    cfg.variant = ocean::Variant::kBase;
    Runtime base_rt = rt_for(P, ocean::policy_for(cfg.variant));
    const auto base = ocean::run(base_rt, cfg);
    cfg.variant = ocean::Variant::kDistr;
    Runtime aff_rt = rt_for(P, ocean::policy_for(cfg.variant));
    const auto aff = ocean::run(aff_rt, cfg);
    EXPECT_LT(static_cast<double>(aff.run.sim_cycles) * 1.5,
              static_cast<double>(base.run.sim_cycles))
        << "ocean";
  }
  {  // LocusRoute
    locusroute::Config cfg;
    cfg.wires_per_region = 48;
    cfg.iterations = 2;
    cfg.variant = locusroute::Variant::kBase;
    Runtime base_rt = rt_for(P, locusroute::policy_for(cfg.variant));
    const auto base = locusroute::run(base_rt, cfg);
    cfg.variant = locusroute::Variant::kAffinityDistr;
    Runtime aff_rt = rt_for(P, locusroute::policy_for(cfg.variant));
    const auto aff = locusroute::run(aff_rt, cfg);
    EXPECT_LT(static_cast<double>(aff.run.sim_cycles) * 1.5,
              static_cast<double>(base.run.sim_cycles))
        << "locusroute";
  }
  {  // Panel Cholesky
    cholesky::PanelConfig cfg;
    cfg.n_panels = 96;
    cfg.variant = cholesky::PanelVariant::kBase;
    Runtime base_rt = rt_for(P, cholesky::panel_policy_for(cfg.variant));
    const auto base = cholesky::run_panel(base_rt, cfg);
    cfg.variant = cholesky::PanelVariant::kDistrAff;
    Runtime aff_rt = rt_for(P, cholesky::panel_policy_for(cfg.variant));
    const auto aff = cholesky::run_panel(aff_rt, cfg);
    EXPECT_LT(static_cast<double>(aff.run.sim_cycles) * 1.5,
              static_cast<double>(base.run.sim_cycles))
        << "panel";
  }
}

// §6.1/Fig 7: distribution + default affinity raises the locally-serviced
// fraction of Ocean's misses far above Base.
TEST(PaperClaims, OceanLocalServiceFraction) {
  ocean::Config cfg;
  cfg.n = 128;
  cfg.grids = 4;
  cfg.steps = 2;
  cfg.variant = ocean::Variant::kBase;
  Runtime base_rt = rt_for(16, ocean::policy_for(cfg.variant));
  const auto base = ocean::run(base_rt, cfg);
  cfg.variant = ocean::Variant::kDistr;
  Runtime aff_rt = rt_for(16, ocean::policy_for(cfg.variant));
  const auto aff = ocean::run(aff_rt, cfg);
  EXPECT_GT(local_fraction(aff.run.mem), 0.7);
  EXPECT_LT(local_fraction(base.run.mem), 0.5);
  // And the miss *count* is essentially version-independent for Ocean.
  EXPECT_NEAR(static_cast<double>(aff.run.mem.misses()),
              static_cast<double>(base.run.mem.misses()),
              0.05 * static_cast<double>(base.run.mem.misses()));
}

// §6.2/Fig 11: affinity scheduling reduces LocusRoute's cache misses by a
// large factor and slashes invalidation traffic.
TEST(PaperClaims, LocusRouteMissReduction) {
  locusroute::Config cfg;
  cfg.wires_per_region = 48;
  cfg.iterations = 2;
  cfg.variant = locusroute::Variant::kBase;
  Runtime base_rt = rt_for(16, locusroute::policy_for(cfg.variant));
  const auto base = locusroute::run(base_rt, cfg);
  cfg.variant = locusroute::Variant::kAffinity;
  Runtime aff_rt = rt_for(16, locusroute::policy_for(cfg.variant));
  const auto aff = locusroute::run(aff_rt, cfg);
  EXPECT_GT(static_cast<double>(base.run.mem.misses()),
            1.8 * static_cast<double>(aff.run.mem.misses()));
  EXPECT_GT(base.run.mem.invals_sent, 2 * aff.run.mem.invals_sent);
}

// §6.3/Fig 15: distributing panels alone leaves the miss count unchanged;
// affinity reduces it and removes the invalidations entirely.
TEST(PaperClaims, PanelDistributionVsAffinityMisses) {
  cholesky::PanelConfig cfg;
  cfg.n_panels = 96;
  cfg.variant = cholesky::PanelVariant::kBase;
  Runtime base_rt = rt_for(16, cholesky::panel_policy_for(cfg.variant));
  const auto base = cholesky::run_panel(base_rt, cfg);
  cfg.variant = cholesky::PanelVariant::kDistr;
  Runtime distr_rt = rt_for(16, cholesky::panel_policy_for(cfg.variant));
  const auto distr = cholesky::run_panel(distr_rt, cfg);
  cfg.variant = cholesky::PanelVariant::kDistrAff;
  Runtime aff_rt = rt_for(16, cholesky::panel_policy_for(cfg.variant));
  const auto aff = cholesky::run_panel(aff_rt, cfg);

  EXPECT_NEAR(static_cast<double>(distr.run.mem.misses()),
              static_cast<double>(base.run.mem.misses()),
              0.05 * static_cast<double>(base.run.mem.misses()));
  EXPECT_LT(aff.run.mem.misses(), distr.run.mem.misses());
  EXPECT_EQ(aff.run.mem.invals_sent, 0u);
}

// The hints never change results: checksums/residuals are identical (exact
// workloads) or within numerical tolerance (floating-point reorderings).
TEST(PaperClaims, HintsNeverChangeSemantics) {
  {  // Exact: panel cholesky
    cholesky::PanelConfig cfg;
    cfg.n_panels = 48;
    const double expect = cholesky::panel_serial_checksum(cfg);
    for (auto v : {cholesky::PanelVariant::kBase,
                   cholesky::PanelVariant::kDistrAffCluster}) {
      cfg.variant = v;
      Runtime rt = rt_for(8, cholesky::panel_policy_for(v));
      EXPECT_DOUBLE_EQ(cholesky::run_panel(rt, cfg).checksum, expect);
    }
  }
  {  // Tolerance: gauss
    gauss::Config cfg;
    cfg.n = 64;
    for (auto v : {gauss::Variant::kBase, gauss::Variant::kTaskObject}) {
      cfg.variant = v;
      Runtime rt = rt_for(8, gauss::policy_for(v));
      EXPECT_LT(gauss::run(rt, cfg).residual, 1e-8);
    }
  }
}

// §8: the implemented extensions never regress the base behaviour —
// multi-object placement with a single object behaves like plain OBJECT
// affinity across a real app run.
TEST(PaperClaims, DeterministicReproduction) {
  // Each app run twice produces bit-identical cycle counts (the property
  // every number in EXPERIMENTS.md relies on).
  barneshut::Config bh;
  bh.n_bodies = 256;
  bh.block_size = 32;
  bh.steps = 1;
  Runtime r1 = rt_for(8, barneshut::policy_for(bh.variant));
  Runtime r2 = rt_for(8, barneshut::policy_for(bh.variant));
  EXPECT_EQ(barneshut::run(r1, bh).run.sim_cycles,
            barneshut::run(r2, bh).run.sim_cycles);

  cholesky::BlockConfig bc;
  bc.blocks = 5;
  bc.block_size = 10;
  Runtime r3 = rt_for(8, cholesky::block_policy_for(bc.variant));
  Runtime r4 = rt_for(8, cholesky::block_policy_for(bc.variant));
  EXPECT_EQ(cholesky::run_block(r3, bc).run.sim_cycles,
            cholesky::run_block(r4, bc).run.sim_cycles);
}

}  // namespace
}  // namespace cool::apps
