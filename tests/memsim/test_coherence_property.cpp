// Property tests on the memory system: drive random access sequences through
// the model and check the structural invariants that must hold after every
// operation, independent of the workload.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "memsim/memsystem.hpp"

namespace cool::mem {
namespace {

struct Params {
  std::uint32_t procs;
  int ops;
  std::uint64_t seed;
};

class CoherenceProperty : public ::testing::TestWithParam<Params> {};

TEST_P(CoherenceProperty, InvariantsHoldUnderRandomTraffic) {
  const Params prm = GetParam();
  topo::MachineConfig machine = topo::MachineConfig::dash(prm.procs);
  machine.l1_bytes = 4 * 1024;   // small caches force evictions
  machine.l2_bytes = 16 * 1024;
  MemorySystem ms(machine);
  // Half the space pre-bound round-robin; the rest first-touch.
  for (int i = 0; i < 16; ++i) {
    ms.bind_range(0x100000 + static_cast<std::uint64_t>(i) * 4096, 4096,
                  static_cast<topo::ProcId>(i % prm.procs));
  }

  util::Rng rng(prm.seed);
  std::uint64_t now = 0;
  for (int op = 0; op < prm.ops; ++op) {
    const auto p = static_cast<topo::ProcId>(rng.next_below(prm.procs));
    const std::uint64_t addr =
        0x100000 + (rng.next_below(64 * 1024) & ~7ull);
    const bool write = rng.next_below(3) == 0;
    const std::uint64_t bytes = 8ull << rng.next_below(4);  // 8..64 bytes
    if (rng.next_below(20) == 0) {
      ms.prefetch(p, addr, bytes, now);
    } else if (rng.next_below(50) == 0) {
      ms.migrate(p, addr, bytes,
                 static_cast<topo::ProcId>(rng.next_below(prm.procs)));
    } else {
      ms.access(p, addr, bytes, write, now);
    }
    now += rng.next_below(40);
  }

  // Invariant 1: every directory entry has at least one sharer, and a dirty
  // entry's owner is one of its sharers (and the only one).
  for (const auto& [line, st] : ms.directory().entries()) {
    EXPECT_TRUE(st.is_cached()) << line;
    if (st.is_dirty()) {
      EXPECT_TRUE(st.has_sharer(st.dirty_owner)) << line;
      EXPECT_EQ(st.sharer_count(), 1) << line;
    }
  }

  // Invariant 2: the service classification is exhaustive.
  const ProcCounters t = ms.monitor().total();
  std::uint64_t serviced = 0;
  for (int s = 0; s < kNumServices; ++s) serviced += t.serviced[s];
  EXPECT_EQ(serviced, t.accesses());

  // Invariant 3: local + remote misses == all misses.
  EXPECT_EQ(t.local_misses() + t.remote_misses(), t.misses());

  // Invariant 4: invalidations received == invalidations sent plus migration
  // flushes (each kill is recorded on both sides except self-invalidations
  // during migrate, which only count as received).
  EXPECT_GE(t.invals_received, t.invals_sent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherenceProperty,
    ::testing::Values(Params{2, 2000, 11}, Params{4, 5000, 12},
                      Params{8, 5000, 13}, Params{32, 8000, 14},
                      Params{64, 8000, 15}, Params{32, 20000, 16}));

// After any traffic, flushing all caches must empty the directory.
TEST(CoherenceFlush, FlushEmptiesDirectory) {
  topo::MachineConfig machine = topo::MachineConfig::dash(8);
  MemorySystem ms(machine);
  util::Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    ms.access(static_cast<topo::ProcId>(rng.next_below(8)),
              0x100000 + (rng.next_below(1 << 16) & ~7ull), 8,
              rng.next_below(2) == 0, static_cast<std::uint64_t>(i) * 7);
  }
  ms.flush_all_caches();
  EXPECT_EQ(ms.directory().n_entries(), 0u);
  // Next access misses again.
  ms.access(0, 0x100000, 8, false, 1 << 20);
  EXPECT_GE(ms.monitor().proc(0).misses(), 1u);
}

// Reading after a write by another processor always returns through a path
// that ends with the reader registered as a sharer.
TEST(CoherenceHandoff, ReaderBecomesSharerAfterDirtyForward) {
  topo::MachineConfig machine = topo::MachineConfig::dash(8);
  MemorySystem ms(machine);
  ms.bind_range(0x200000, 4096, 0);
  for (topo::ProcId w = 0; w < 8; ++w) {
    ms.access(w, 0x200000, 8, true, w * 1000ull);  // each write takes ownership
    const auto st = ms.directory().peek(machine.line_of(0x200000));
    EXPECT_EQ(st.dirty_owner, w);
    EXPECT_EQ(st.sharer_count(), 1);
  }
}

}  // namespace
}  // namespace cool::mem
