#include "memsim/memsystem.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cool::mem {
namespace {

class MemSystemTest : public ::testing::Test {
 protected:
  MemSystemTest() : machine_(topo::MachineConfig::dash()), ms_(machine_) {
    // Carve out address regions homed at known processors.
    ms_.bind_range(kLocalAddr, 4096, 0);    // proc 0, cluster 0
    ms_.bind_range(kNearAddr, 4096, 2);     // proc 2, cluster 0
    ms_.bind_range(kRemoteAddr, 4096, 8);   // proc 8, cluster 2
  }

  static constexpr std::uint64_t kLocalAddr = 0x100000;
  static constexpr std::uint64_t kNearAddr = 0x200000;
  static constexpr std::uint64_t kRemoteAddr = 0x300000;

  topo::MachineConfig machine_;
  MemorySystem ms_;
};

TEST_F(MemSystemTest, ColdMissToLocalMemory) {
  const auto lat = ms_.access(0, kLocalAddr, 8, false, 0);
  EXPECT_GE(lat, machine_.lat.local_mem);
  const auto& c = ms_.monitor().proc(0);
  EXPECT_EQ(c.serviced[static_cast<int>(Service::kLocalMem)], 1u);
  EXPECT_EQ(c.remote_misses(), 0u);
}

TEST_F(MemSystemTest, SameClusterMemoryIsLocal) {
  // Proc 1 accessing memory homed at proc 2 — same cluster -> local latency.
  const auto lat = ms_.access(1, kNearAddr, 8, false, 0);
  EXPECT_GE(lat, machine_.lat.local_mem);
  EXPECT_LT(lat, machine_.lat.remote_mem);
  EXPECT_EQ(ms_.monitor().proc(1).serviced[static_cast<int>(Service::kLocalMem)],
            1u);
}

TEST_F(MemSystemTest, ColdMissToRemoteMemory) {
  const auto lat = ms_.access(0, kRemoteAddr, 8, false, 0);
  EXPECT_GE(lat, machine_.lat.remote_mem);
  const auto& c = ms_.monitor().proc(0);
  EXPECT_EQ(c.serviced[static_cast<int>(Service::kRemoteMem)], 1u);
  EXPECT_EQ(c.remote_misses(), 1u);
}

TEST_F(MemSystemTest, SecondAccessHitsL1) {
  ms_.access(0, kLocalAddr, 8, false, 0);
  const auto lat = ms_.access(0, kLocalAddr, 8, false, 100);
  EXPECT_EQ(lat, machine_.lat.l1_hit);
  EXPECT_EQ(ms_.monitor().proc(0).serviced[static_cast<int>(Service::kL1Hit)],
            1u);
}

TEST_F(MemSystemTest, MultiLineAccessWalksLines) {
  // 64 bytes = 4 lines of 16.
  ms_.access(0, kLocalAddr, 64, false, 0);
  const auto& c = ms_.monitor().proc(0);
  EXPECT_EQ(c.reads, 4u);
  EXPECT_EQ(c.misses(), 4u);
}

TEST_F(MemSystemTest, WriteInvalidatesSharers) {
  // Two readers cache the line; then proc 0 writes it.
  ms_.access(0, kLocalAddr, 8, false, 0);
  ms_.access(5, kLocalAddr, 8, false, 0);
  ms_.access(0, kLocalAddr, 8, true, 200);

  const auto& c0 = ms_.monitor().proc(0);
  const auto& c5 = ms_.monitor().proc(5);
  EXPECT_EQ(c0.upgrades, 1u);
  EXPECT_EQ(c0.invals_sent, 1u);
  EXPECT_EQ(c5.invals_received, 1u);

  // Proc 5 must now miss again.
  ms_.access(5, kLocalAddr, 8, false, 300);
  EXPECT_GT(c5.misses(), 1u);
}

TEST_F(MemSystemTest, DirtyLineForwardedFromRemoteCache) {
  // Proc 8 (cluster 2) writes the line homed at proc 8; proc 0 then reads it:
  // serviced dirty from the remote cache.
  ms_.access(8, kRemoteAddr, 8, true, 0);
  const auto lat = ms_.access(0, kRemoteAddr, 8, false, 100);
  EXPECT_GE(lat, machine_.lat.remote_cache);
  EXPECT_EQ(
      ms_.monitor().proc(0).serviced[static_cast<int>(Service::kRemoteCache)],
      1u);
  // The forward cleans the line: the owner keeps a shared copy.
  const LineState st = ms_.directory().peek(machine_.line_of(kRemoteAddr));
  EXPECT_FALSE(st.is_dirty());
  EXPECT_TRUE(st.has_sharer(0));
  EXPECT_TRUE(st.has_sharer(8));
}

TEST_F(MemSystemTest, DirtyLineForwardedWithinCluster) {
  ms_.access(1, kLocalAddr, 8, true, 0);
  ms_.access(2, kLocalAddr, 8, false, 100);  // same cluster as 1
  EXPECT_EQ(
      ms_.monitor().proc(2).serviced[static_cast<int>(Service::kLocalCache)],
      1u);
}

TEST_F(MemSystemTest, WriterRereadStaysDirtyAndCached) {
  ms_.access(0, kLocalAddr, 8, true, 0);
  ms_.access(0, kLocalAddr, 8, true, 10);
  const auto& c = ms_.monitor().proc(0);
  EXPECT_EQ(c.upgrades, 0u);  // no other sharers ever existed
  EXPECT_EQ(c.misses(), 1u);
  const LineState st = ms_.directory().peek(machine_.line_of(kLocalAddr));
  EXPECT_EQ(st.dirty_owner, 0u);
}

TEST_F(MemSystemTest, CapacityEvictionWritesBack) {
  topo::MachineConfig tiny = topo::MachineConfig::dash(4);
  tiny.l1_bytes = 64;   // 4 lines
  tiny.l2_bytes = 128;  // 8 lines
  MemorySystem ms(tiny);
  ms.bind_range(0x100000, 1 << 20, 0);
  // Write many distinct lines: forces L2 evictions of dirty lines.
  for (int i = 0; i < 64; ++i) {
    ms.access(0, 0x100000 + static_cast<std::uint64_t>(i) * 16, 8, true,
              static_cast<std::uint64_t>(i) * 10);
  }
  EXPECT_GT(ms.monitor().proc(0).writebacks, 0u);
}

TEST_F(MemSystemTest, ContentionQueuesAtController) {
  // Hammer one cluster's memory from many processors at the same instant;
  // later fills should queue (wait > 0 recorded as contention).
  for (std::uint32_t p = 0; p < 8; ++p) {
    ms_.access(p, kLocalAddr + 256 + p * 16ull, 8, false, 0);
  }
  std::uint64_t contention = 0;
  for (std::uint32_t p = 0; p < 8; ++p) {
    contention += ms_.monitor().proc(p).contention_cycles;
  }
  EXPECT_GT(contention, 0u);
}

TEST_F(MemSystemTest, MigrateRebindsAndFlushes) {
  ms_.access(0, kLocalAddr, 8, true, 0);  // dirty at proc 0
  const auto cost = ms_.migrate(3, kLocalAddr, 4096, 20);
  EXPECT_EQ(cost, machine_.lat.page_copy);
  EXPECT_EQ(ms_.pages().home_of_bound(kLocalAddr), 20u);
  EXPECT_EQ(ms_.monitor().proc(3).pages_migrated, 1u);
  EXPECT_EQ(ms_.monitor().proc(0).writebacks, 1u);
  // Proc 0's copy was flushed: next access misses to (now remote) memory.
  ms_.access(0, kLocalAddr, 8, false, 10000);
  EXPECT_EQ(
      ms_.monitor().proc(0).serviced[static_cast<int>(Service::kRemoteMem)],
      1u);
}

TEST_F(MemSystemTest, FirstTouchBindsUnboundPages) {
  const std::uint64_t addr = 0x900000;
  ms_.access(6, addr, 8, false, 0);
  EXPECT_EQ(ms_.pages().home_of_bound(addr), 6u);
  EXPECT_EQ(
      ms_.monitor().proc(6).serviced[static_cast<int>(Service::kLocalMem)], 1u);
}

TEST_F(MemSystemTest, BadArgsThrow) {
  EXPECT_THROW(ms_.access(99, 0, 8, false, 0), util::Error);
  EXPECT_THROW(ms_.access(0, 0, 0, false, 0), util::Error);
  EXPECT_THROW(ms_.migrate(0, kLocalAddr, 4096, 99), util::Error);
  EXPECT_THROW(ms_.migrate(99, kLocalAddr, 4096, 0), util::Error);
}

TEST_F(MemSystemTest, FlushAllCachesForcesMisses) {
  ms_.access(0, kLocalAddr, 8, false, 0);
  ms_.flush_all_caches();
  ms_.access(0, kLocalAddr, 8, false, 100);
  EXPECT_EQ(ms_.monitor().proc(0).misses(), 2u);
}

TEST_F(MemSystemTest, TotalAggregatesAcrossProcs) {
  ms_.access(0, kLocalAddr, 8, false, 0);
  ms_.access(1, kLocalAddr + 64, 8, false, 0);
  const ProcCounters t = ms_.monitor().total();
  EXPECT_EQ(t.reads, 2u);
  EXPECT_EQ(t.misses(), 2u);
}

// Property sweep: the service classification is exhaustive — every access is
// counted in exactly one service class.
class ServiceConservation
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ServiceConservation, AccessesEqualServiced) {
  const auto [n, write] = GetParam();
  topo::MachineConfig m = topo::MachineConfig::dash(8);
  MemorySystem ms(m);
  ms.bind_range(0x100000, 1 << 20, 3);
  util::Rng rng(static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto p = static_cast<topo::ProcId>(i % 8);
    const std::uint64_t addr = 0x100000 + (rng.next_below(1 << 18) & ~7ull);
    ms.access(p, addr, 8, write && (i % 3 == 0),
              static_cast<std::uint64_t>(i) * 5);
  }
  const ProcCounters t = ms.monitor().total();
  std::uint64_t serviced = 0;
  for (int s = 0; s < kNumServices; ++s) serviced += t.serviced[s];
  EXPECT_EQ(serviced, t.accesses());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ServiceConservation,
    ::testing::Combine(::testing::Values(10, 100, 1000, 5000),
                       ::testing::Bool()));

}  // namespace
}  // namespace cool::mem
