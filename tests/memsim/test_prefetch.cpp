#include <gtest/gtest.h>

#include "memsim/memsystem.hpp"

namespace cool::mem {
namespace {

class PrefetchTest : public ::testing::Test {
 protected:
  PrefetchTest() : machine_(topo::MachineConfig::dash()), ms_(machine_) {
    ms_.bind_range(kAddr, 1 << 16, 8);  // homed on a remote cluster for proc 0
  }
  static constexpr std::uint64_t kAddr = 0x100000;
  topo::MachineConfig machine_;
  MemorySystem ms_;
};

TEST_F(PrefetchTest, BringsLinesIn) {
  const auto brought = ms_.prefetch(0, kAddr, 256, 0);  // 16 lines
  EXPECT_EQ(brought, 16u);
  EXPECT_EQ(ms_.monitor().proc(0).prefetches, 16u);
  // Subsequent demand access hits L1.
  const auto lat = ms_.access(0, kAddr, 8, false, 0);
  EXPECT_EQ(lat, machine_.lat.l1_hit);
  EXPECT_EQ(ms_.monitor().proc(0).remote_misses(), 0u);
}

TEST_F(PrefetchTest, AlreadyCachedLinesSkipped) {
  ms_.access(0, kAddr, 256, false, 0);
  EXPECT_EQ(ms_.prefetch(0, kAddr, 256, 0), 0u);
}

TEST_F(PrefetchTest, DirtyRemoteLinesSkipped) {
  ms_.access(5, kAddr, 16, true, 0);  // proc 5 dirties line 0
  const auto brought = ms_.prefetch(0, kAddr, 32, 0);  // 2 lines
  EXPECT_EQ(brought, 1u);  // only the clean second line
  // Demand access to the dirty line still forwards from the owner's cache.
  ms_.access(0, kAddr, 8, false, 100);
  const auto& c = ms_.monitor().proc(0);
  EXPECT_EQ(c.serviced[static_cast<int>(Service::kRemoteCache)] +
                c.serviced[static_cast<int>(Service::kLocalCache)],
            1u);
}

TEST_F(PrefetchTest, SharerRegisteredInDirectory) {
  ms_.prefetch(3, kAddr, 16, 0);
  EXPECT_TRUE(ms_.directory().peek(machine_.line_of(kAddr)).has_sharer(3));
  // A later write by another processor invalidates the prefetched copy.
  ms_.access(9, kAddr, 8, true, 0);
  EXPECT_FALSE(ms_.directory().peek(machine_.line_of(kAddr)).has_sharer(3));
  EXPECT_EQ(ms_.monitor().proc(3).invals_received, 1u);
}

TEST_F(PrefetchTest, BadArgsThrow) {
  EXPECT_THROW(ms_.prefetch(99, kAddr, 16, 0), util::Error);
  EXPECT_THROW(ms_.prefetch(0, kAddr, 0, 0), util::Error);
}

}  // namespace
}  // namespace cool::mem
