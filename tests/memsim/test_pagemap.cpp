#include "memsim/pagemap.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cool::mem {
namespace {

class PageMapTest : public ::testing::Test {
 protected:
  topo::MachineConfig machine_ = topo::MachineConfig::dash();
  PageMap pm_{machine_};
};

TEST_F(PageMapTest, BindAndLookup) {
  EXPECT_EQ(pm_.bind_range(0x10000, 4096, 5), 1u);
  EXPECT_TRUE(pm_.is_bound(0x10000));
  EXPECT_EQ(pm_.home_of_bound(0x10000), 5u);
  EXPECT_EQ(pm_.home_of_bound(0x10fff), 5u);
  EXPECT_FALSE(pm_.is_bound(0x11000));
}

TEST_F(PageMapTest, RangeSpanningPages) {
  // 3 bytes short of two pages, starting mid-page: spans 3 pages.
  EXPECT_EQ(pm_.bind_range(0x10800, 2 * 4096, 2), 3u);
  EXPECT_EQ(pm_.home_of_bound(0x10800), 2u);
  EXPECT_EQ(pm_.home_of_bound(0x12000), 2u);
}

TEST_F(PageMapTest, FirstTouchBinds) {
  EXPECT_EQ(pm_.first_touch_count(), 0u);
  EXPECT_EQ(pm_.home_of(0x20000, 7), 7u);
  EXPECT_EQ(pm_.first_touch_count(), 1u);
  // Subsequent touch by another processor does not rebind.
  EXPECT_EQ(pm_.home_of(0x20000, 3), 7u);
  EXPECT_EQ(pm_.first_touch_count(), 1u);
}

TEST_F(PageMapTest, RebindIsMigration) {
  pm_.bind_range(0x30000, 4096, 1);
  pm_.bind_range(0x30000, 4096, 9);
  EXPECT_EQ(pm_.home_of_bound(0x30000), 9u);
}

TEST_F(PageMapTest, UnboundLookupThrows) {
  EXPECT_THROW((void)pm_.home_of_bound(0x40000), util::Error);
}

TEST_F(PageMapTest, BadArgsThrow) {
  EXPECT_THROW(pm_.bind_range(0, 4096, 32), util::Error);  // proc out of range
  EXPECT_THROW(pm_.bind_range(0, 0, 1), util::Error);      // empty
  EXPECT_THROW(pm_.home_of(0, 99), util::Error);
  EXPECT_THROW(pm_.pages_in(0, 0), util::Error);
}

TEST_F(PageMapTest, PagesIn) {
  const auto pages = pm_.pages_in(4096, 4096 * 2 + 1);
  ASSERT_EQ(pages.size(), 3u);
  EXPECT_EQ(pages[0], 1u);
  EXPECT_EQ(pages[2], 3u);
}

TEST_F(PageMapTest, PagesPerProcDistribution) {
  for (int i = 0; i < 16; ++i) {
    pm_.bind_range(static_cast<std::uint64_t>(i) * 4096, 4096,
                   static_cast<topo::ProcId>(i % 4));
  }
  const auto counts = pm_.pages_per_proc();
  ASSERT_EQ(counts.size(), 32u);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(counts[p], 4u);
  for (int p = 4; p < 32; ++p) EXPECT_EQ(counts[p], 0u);
}

TEST_F(PageMapTest, ClearForgets) {
  pm_.bind_range(0, 4096, 1);
  pm_.home_of(0x90000, 2);
  pm_.clear();
  EXPECT_EQ(pm_.n_bound_pages(), 0u);
  EXPECT_EQ(pm_.first_touch_count(), 0u);
}

// Round-robin distribution property: contiguous per-proc regions map evenly.
TEST_F(PageMapTest, RoundRobinEvenSpread) {
  const std::size_t per = 8;
  for (std::uint32_t p = 0; p < machine_.n_procs; ++p) {
    pm_.bind_range((static_cast<std::uint64_t>(p) * per) * 4096, per * 4096, p);
  }
  const auto counts = pm_.pages_per_proc();
  for (std::uint32_t p = 0; p < machine_.n_procs; ++p) EXPECT_EQ(counts[p], per);
}

}  // namespace
}  // namespace cool::mem
