#include "memsim/cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cool::mem {
namespace {

TEST(Cache, MissThenHit) {
  Cache c(1024, 2, 16);  // 32 sets x 2 ways
  EXPECT_FALSE(c.access(5));
  c.insert(5);
  EXPECT_TRUE(c.access(5));
  EXPECT_TRUE(c.contains(5));
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(Cache, InsertExistingIsNoEviction) {
  Cache c(1024, 2, 16);
  c.insert(5);
  EXPECT_EQ(c.insert(5), std::nullopt);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(Cache, DirectMappedConflict) {
  Cache c(64, 1, 16);  // 4 sets, direct mapped
  c.insert(0);         // set 0
  const auto evicted = c.insert(4);  // also set 0 (4 % 4 == 0)
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 0u);
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(4));
}

TEST(Cache, LruVictimSelection) {
  Cache c(64, 2, 16);  // 2 sets x 2 ways
  // Lines 0, 2, 4 all map to set 0.
  c.insert(0);
  c.insert(2);
  c.access(0);  // 0 is now MRU; 2 is LRU.
  const auto evicted = c.insert(4);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 2u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(4));
}

TEST(Cache, InvalidateFreesWay) {
  Cache c(64, 1, 16);
  c.insert(3);
  EXPECT_TRUE(c.invalidate(3));
  EXPECT_FALSE(c.contains(3));
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_FALSE(c.invalidate(3));  // Already gone.
  // Inserting again uses the freed way without eviction.
  EXPECT_EQ(c.insert(3), std::nullopt);
}

TEST(Cache, ClearEmptiesEverything) {
  Cache c(256, 2, 16);
  for (LineAddr l = 0; l < 8; ++l) c.insert(l);
  c.clear();
  EXPECT_EQ(c.occupancy(), 0u);
  for (LineAddr l = 0; l < 8; ++l) EXPECT_FALSE(c.contains(l));
}

TEST(Cache, BadGeometryThrows) {
  EXPECT_THROW(Cache(100, 1, 16), util::Error);   // not multiple of line
  EXPECT_THROW(Cache(1024, 0, 16), util::Error);  // zero assoc
  EXPECT_THROW(Cache(1024, 1, 24), util::Error);  // non-pow2 line
  EXPECT_THROW(Cache(48, 1, 16), util::Error);    // 3 sets: non-pow2
}

TEST(Cache, OccupancyNeverExceedsCapacity) {
  Cache c(512, 4, 16);  // 32 lines capacity
  for (LineAddr l = 0; l < 1000; ++l) c.insert(l * 7 + 1);
  EXPECT_LE(c.occupancy(), 32u);
}

// Property: a fully associative-ish cache retains the W most recent distinct
// lines of a single set.
class CacheLruProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheLruProperty, RetainsMostRecent) {
  const std::uint32_t assoc = GetParam();
  Cache c(16 * assoc, assoc, 16);  // a single set
  const int n = static_cast<int>(assoc) * 3;
  for (int i = 0; i < n; ++i) c.insert(static_cast<LineAddr>(i));
  // The last `assoc` inserted lines must be resident.
  for (int i = n - static_cast<int>(assoc); i < n; ++i) {
    EXPECT_TRUE(c.contains(static_cast<LineAddr>(i))) << i;
  }
  for (int i = 0; i < n - static_cast<int>(assoc); ++i) {
    EXPECT_FALSE(c.contains(static_cast<LineAddr>(i))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheLruProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace cool::mem
