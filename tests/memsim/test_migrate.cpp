// Page-granularity migration (COOL's migrate()/home(), paper footnotes 2-3):
// an object straddling a page boundary moves every page it touches, dirty
// cached copies are written back before the rebind, and accesses racing the
// migration keep a coherent view of the line.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "memsim/memsystem.hpp"

namespace cool::mem {
namespace {

class MigrateTest : public ::testing::Test {
 protected:
  MigrateTest() : machine_(topo::MachineConfig::dash()), ms_(machine_) {
    // Two adjacent pages, both homed at proc 0 (cluster 0).
    ms_.bind_range(kBase, 2 * machine_.page_bytes, 0);
  }

  static constexpr std::uint64_t kBase = 0x400000;

  topo::MachineConfig machine_;
  MemorySystem ms_;
};

TEST_F(MigrateTest, StraddlingObjectMovesEveryPageItTouches) {
  // An object overlapping the tail of page 0 and the head of page 1: the
  // migration grain is the page, so both pages rebind (footnote 2: "the
  // migration of entire pages spanned by the object").
  const std::uint64_t pb = machine_.page_bytes;
  const std::uint64_t obj = kBase + pb - 64;
  const std::uint64_t cost = ms_.migrate(0, obj, 128, 9);
  EXPECT_EQ(ms_.pages().home_of_bound(kBase), 9u);
  EXPECT_EQ(ms_.pages().home_of_bound(kBase + pb), 9u);
  EXPECT_EQ(cost, 2 * machine_.lat.page_copy);
  EXPECT_EQ(ms_.monitor().proc(0).pages_migrated, 2u);
}

TEST_F(MigrateTest, SubPageRangeMovesItsWholePageOnly) {
  ms_.migrate(0, kBase + 100, 8, 4);
  EXPECT_EQ(ms_.pages().home_of_bound(kBase), 4u);
  // The neighbouring page is untouched.
  EXPECT_EQ(ms_.pages().home_of_bound(kBase + machine_.page_bytes), 0u);
}

TEST_F(MigrateTest, HomeLookupFollowsMigration) {
  EXPECT_EQ(ms_.home_of(kBase, 5), 0u);
  ms_.migrate(0, kBase, 8, 7);
  EXPECT_EQ(ms_.home_of(kBase, 5), 7u);
}

TEST_F(MigrateTest, DirtyLineIsWrittenBackBeforeRebinding) {
  ms_.access(5, kBase, 8, true, 0);  // proc 5 holds the line dirty
  ms_.migrate(0, kBase, 8, 9);
  EXPECT_EQ(ms_.monitor().proc(5).writebacks, 1u);
  // No stale dirty copy remains: the new home services the next miss from
  // its local memory at local latency.
  const auto lat = ms_.access(9, kBase, 8, false, 1000);
  EXPECT_GE(lat, machine_.lat.local_mem);
  EXPECT_LT(lat, machine_.lat.remote_mem);
  EXPECT_EQ(
      ms_.monitor().proc(9).serviced[static_cast<int>(Service::kLocalMem)],
      1u);
}

TEST_F(MigrateTest, ConcurrentSharersStayCoherentAcrossMigration) {
  // Two processors in different clusters share the line; a migration lands
  // between their accesses. Both cached copies are flushed, the re-reads are
  // serviced by the new home, and write-invalidate still works afterwards.
  ms_.access(0, kBase, 8, false, 0);
  ms_.access(9, kBase, 8, false, 10);
  ms_.migrate(0, kBase, 8, 9);

  const auto l9 = ms_.access(9, kBase, 8, false, 100);
  EXPECT_GE(l9, machine_.lat.local_mem);  // miss (copy flushed), now local
  EXPECT_LT(l9, machine_.lat.remote_mem);
  const auto l0 = ms_.access(0, kBase, 8, false, 200);
  EXPECT_GE(l0, machine_.lat.remote_mem);  // proc 0's cluster lost the page

  ms_.access(9, kBase, 8, true, 300);
  EXPECT_GE(ms_.monitor().proc(0).invals_received, 1u);
}

TEST_F(MigrateTest, MigrationDuringActiveWriteSharingKeepsDirectorySane) {
  // A writer dirties the line, another processor migrates the page away
  // mid-stream, the writer re-dirties it, and a second migration has to
  // write that copy back too.
  ms_.access(3, kBase, 8, true, 0);
  ms_.migrate(0, kBase, machine_.page_bytes, 12);
  EXPECT_EQ(ms_.monitor().proc(3).writebacks, 1u);
  ms_.access(3, kBase, 8, true, 50);  // clean re-miss, dirty again
  ms_.migrate(3, kBase, machine_.page_bytes, 3);
  EXPECT_EQ(ms_.monitor().proc(3).writebacks, 2u);
  EXPECT_EQ(ms_.pages().home_of_bound(kBase), 3u);
  const auto lat = ms_.access(3, kBase, 8, false, 100);
  EXPECT_GE(lat, machine_.lat.local_mem);
  EXPECT_LT(lat, machine_.lat.remote_mem);
}

TEST_F(MigrateTest, RejectsBadArguments) {
  EXPECT_THROW(ms_.migrate(99, kBase, 8, 0), util::Error);
  EXPECT_THROW(ms_.migrate(0, kBase, 8, 99), util::Error);
  EXPECT_THROW(ms_.migrate(0, kBase, 0, 1), util::Error);
}

}  // namespace
}  // namespace cool::mem
