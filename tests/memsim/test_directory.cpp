#include "memsim/directory.hpp"

#include <gtest/gtest.h>

namespace cool::mem {
namespace {

TEST(Directory, UncachedByDefault) {
  Directory d;
  const LineState st = d.peek(42);
  EXPECT_FALSE(st.is_cached());
  EXPECT_FALSE(st.is_dirty());
  EXPECT_EQ(st.sharer_count(), 0);
  EXPECT_EQ(d.n_entries(), 0u);
}

TEST(Directory, AddRemoveSharers) {
  Directory d;
  d.add_sharer(7, 3);
  d.add_sharer(7, 9);
  EXPECT_TRUE(d.peek(7).has_sharer(3));
  EXPECT_TRUE(d.peek(7).has_sharer(9));
  EXPECT_EQ(d.peek(7).sharer_count(), 2);

  d.remove_sharer(7, 3);
  EXPECT_FALSE(d.peek(7).has_sharer(3));
  EXPECT_EQ(d.peek(7).sharer_count(), 1);
}

TEST(Directory, EntryReclaimedWhenLastSharerLeaves) {
  Directory d;
  d.add_sharer(7, 3);
  EXPECT_EQ(d.n_entries(), 1u);
  d.remove_sharer(7, 3);
  EXPECT_EQ(d.n_entries(), 0u);
}

TEST(Directory, SetDirtyMakesExclusiveOwner) {
  Directory d;
  d.add_sharer(5, 1);
  d.add_sharer(5, 2);
  d.set_dirty(5, 2);
  const LineState st = d.peek(5);
  EXPECT_TRUE(st.is_dirty());
  EXPECT_EQ(st.dirty_owner, 2u);
  EXPECT_EQ(st.sharer_count(), 1);  // only the owner remains
  EXPECT_TRUE(st.has_sharer(2));
  EXPECT_FALSE(st.has_sharer(1));
}

TEST(Directory, ClearDirtyKeepsSharer) {
  Directory d;
  d.set_dirty(5, 2);
  d.clear_dirty(5);
  const LineState st = d.peek(5);
  EXPECT_FALSE(st.is_dirty());
  EXPECT_TRUE(st.has_sharer(2));
}

TEST(Directory, RemovingDirtyOwnerClearsDirty) {
  Directory d;
  d.set_dirty(5, 2);
  d.remove_sharer(5, 2);
  EXPECT_FALSE(d.peek(5).is_dirty());
  EXPECT_FALSE(d.peek(5).is_cached());
}

TEST(Directory, RemoveSharerOnAbsentLineIsNoop) {
  Directory d;
  d.remove_sharer(99, 0);
  EXPECT_EQ(d.n_entries(), 0u);
}

TEST(Directory, HighProcIds) {
  Directory d;
  d.add_sharer(1, 63);
  EXPECT_TRUE(d.peek(1).has_sharer(63));
  d.set_dirty(1, 63);
  EXPECT_EQ(d.peek(1).dirty_owner, 63u);
}

TEST(Directory, ClearDropsEverything) {
  Directory d;
  for (LineAddr l = 0; l < 100; ++l) d.add_sharer(l, static_cast<topo::ProcId>(l % 8));
  EXPECT_EQ(d.n_entries(), 100u);
  d.clear();
  EXPECT_EQ(d.n_entries(), 0u);
}

}  // namespace
}  // namespace cool::mem
