// Tests for the scheduler invariant checker: the queue ledger, structural
// validation, paranoid per-mutation checking, and the concurrent/quiescent
// entry points (including one under real multi-threaded load).
#include "analysis/invariants.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/error.hpp"
#include "sched/queues.hpp"

namespace cool::analysis {
namespace {

sched::TaskDesc make_task(std::uint64_t seq,
                          sched::Affinity aff = sched::Affinity::none()) {
  sched::TaskDesc t;
  t.seq = seq;
  t.aff = aff;
  if (aff.has_task()) t.aff_key = aff.task_obj / 16;
  return t;
}

sched::Scheduler make_sched(const topo::MachineConfig& machine,
                            sched::Policy policy = sched::Policy{}) {
  return sched::Scheduler(machine, policy,
                          [](std::uint64_t, topo::ProcId toucher) {
                            return toucher;
                          });
}

TEST(Invariants, LedgerBalancesPushesAndPops) {
  sched::ServerQueues q(8);
  auto a = make_task(1);
  auto b = make_task(2);
  auto c = make_task(3);
  q.push(&a);
  q.push(&b);
  q.push_resumed(&c);
  EXPECT_EQ(q.pushed(), 3u);
  EXPECT_EQ(q.popped(), 0u);
  q.validate();
  (void)q.pop();
  (void)q.pop();
  EXPECT_EQ(q.pushed(), 3u);
  EXPECT_EQ(q.popped(), 2u);
  q.validate();
  (void)q.pop();
  EXPECT_EQ(q.popped(), 3u);
  EXPECT_TRUE(q.empty());
  q.validate();
}

TEST(Invariants, LedgerCountsStolenTasks) {
  sched::ServerQueues q(64);
  alignas(64) int obj = 0;
  std::vector<sched::TaskDesc> tasks;
  tasks.reserve(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    tasks.push_back(make_task(i + 1, sched::Affinity::task(&obj)));
  }
  for (auto& t : tasks) q.push(&t);
  const std::vector<sched::TaskDesc*> set = q.steal_set();
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(q.popped(), 4u);
  q.validate();
}

TEST(Invariants, ValidateCatchesOwnerMismatch) {
  sched::ServerQueues q(8);
  q.set_owner(3);
  auto t = make_task(1);
  t.server = 3;
  q.push(&t);
  q.validate();
  t.server = 5;  // corrupt: the queue's tasks must name server 3
  EXPECT_THROW(q.validate(), util::Error);
  t.server = 3;    // undo the corruption...
  (void)q.pop();   // ...and unlink the stack-owned task before it dies
}

TEST(Invariants, ParanoidChecksEveryMutation) {
  util::ScopedCheckLevel lvl(util::CheckLevel::kParanoid);
  sched::ServerQueues q(64);
  alignas(64) int obj = 0;
  auto plain = make_task(1);
  auto aff = make_task(2, sched::Affinity::task(&obj));
  q.push(&plain);
  q.push(&aff);
  sched::TaskDesc* first = q.pop();
  ASSERT_NE(first, nullptr);
  q.push_resumed(first);  // unblocked task jumps the line, re-checked
  (void)q.pop();
  (void)q.pop();
  EXPECT_TRUE(q.empty());
  q.validate();
}

TEST(Invariants, QuiescentCheckPassesOnCleanScheduler) {
  const topo::MachineConfig machine = topo::MachineConfig::dash(8);
  auto s = make_sched(machine);
  std::vector<sched::TaskDesc> tasks(16);
  for (std::uint64_t i = 0; i < tasks.size(); ++i) {
    tasks[i] = make_task(i + 1);
    s.place(&tasks[i], static_cast<topo::ProcId>(i % machine.n_procs));
  }
  check_scheduler_concurrent(s);
  check_scheduler_quiescent(s);
  // Drain everything and re-check the empty state.
  std::size_t got = 0;
  for (topo::ProcId p = 0; p < machine.n_procs; ++p) {
    while (s.acquire(p).task != nullptr) ++got;
  }
  EXPECT_EQ(got, tasks.size());
  check_scheduler_quiescent(s);
  EXPECT_EQ(s.total_queued(), 0u);
}

TEST(Invariants, QuiescentCountsEveryQueuedTaskOnce) {
  const topo::MachineConfig machine = topo::MachineConfig::dash(4);
  auto s = make_sched(machine);
  alignas(64) int obj = 0;
  std::vector<sched::TaskDesc> tasks(8);
  for (std::uint64_t i = 0; i < tasks.size(); ++i) {
    tasks[i] = make_task(i + 1, i % 2 == 0 ? sched::Affinity::task(&obj)
                                           : sched::Affinity::none());
    s.place(&tasks[i], 0);
  }
  EXPECT_EQ(s.total_queued(), tasks.size());
  std::size_t visited = 0;
  s.for_each_queued([&](const sched::TaskDesc*) { ++visited; });
  EXPECT_EQ(visited, tasks.size());
  check_scheduler_quiescent(s);
}

TEST(Invariants, MovedTasksLandInExactlyOneQueue) {
  // Fill processor 0's queue under the Average balancer, trigger a move via
  // an idle acquire, and validate the quiescent walk: every balancer-moved
  // task is resident in exactly one queue (and counted once in the ledger).
  const topo::MachineConfig machine = topo::MachineConfig::dash(4);
  sched::Policy policy;
  policy.balancer = sched::BalancerKind::kAverage;
  auto s = make_sched(machine, policy);
  std::vector<sched::TaskDesc> tasks(24);
  for (std::uint64_t i = 0; i < tasks.size(); ++i) {
    tasks[i] = make_task(i + 1);
    s.place(&tasks[i], 0);
  }
  const auto acq = s.acquire(2);
  ASSERT_NE(acq.task, nullptr);
  EXPECT_TRUE(acq.moved);
  EXPECT_GT(s.stats().balance_moves, 0u);
  check_scheduler_quiescent(s);
  std::size_t moved_queued = 0;
  s.for_each_queued([&](const sched::TaskDesc* t) {
    if (t->moved) ++moved_queued;
  });
  EXPECT_GT(moved_queued, 0u);  // the batch minus the one the mover took
  // Drain and re-validate the empty state.
  std::size_t got = 1;
  for (topo::ProcId p = 0; got < tasks.size();
       p = static_cast<topo::ProcId>((p + 1) % machine.n_procs)) {
    if (s.acquire(p).task != nullptr) ++got;
  }
  check_scheduler_quiescent(s);
  EXPECT_EQ(s.total_queued(), 0u);
}

TEST(Invariants, WorkVersionNeverDecreases) {
  const topo::MachineConfig machine = topo::MachineConfig::dash(4);
  auto s = make_sched(machine);
  std::uint64_t last = s.work_version();
  std::vector<sched::TaskDesc> tasks(8);
  for (std::uint64_t i = 0; i < tasks.size(); ++i) {
    tasks[i] = make_task(i + 1);
    s.place(&tasks[i], 0);
    const std::uint64_t now = s.work_version();
    EXPECT_GT(now, last);  // every enqueue bumps the version
    last = now;
    s.check_queues();      // asserts version >= recorded floor
  }
}

TEST(Invariants, ConcurrentCheckIsSafeUnderLoad) {
  // Workers churn place/acquire while a checker thread validates: the
  // concurrent entry point must hold only one queue lock at a time and
  // never trip on mid-flight tasks. Stealing is off so each worker's
  // stack-owned descriptors stay in its own queue.
  const topo::MachineConfig machine = topo::MachineConfig::dash(4);
  sched::Policy policy;
  policy.steal_enabled = false;
  auto s = make_sched(machine, policy);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> seq{1};
  std::vector<std::thread> workers;
  workers.reserve(machine.n_procs);
  for (topo::ProcId p = 0; p < machine.n_procs; ++p) {
    workers.emplace_back([&, p] {
      std::vector<sched::TaskDesc> pool(64);
      for (int round = 0; round < 50; ++round) {
        for (auto& t : pool) {
          t = make_task(seq.fetch_add(1));
          s.place(&t, p);
        }
        std::size_t got = 0;
        while (got < pool.size()) {
          if (s.acquire(p).task != nullptr) ++got;
        }
      }
    });
  }
  std::thread checker([&] {
    while (!stop.load()) check_scheduler_concurrent(s);
  });
  for (auto& w : workers) w.join();
  stop.store(true);
  checker.join();
  check_scheduler_quiescent(s);
}

}  // namespace
}  // namespace cool::analysis
