// Unit tests for the FastTrack happens-before race detector, driving the
// observer interfaces directly: synthetic tasks, sync edges, and byte-range
// accesses, with no runtime underneath.
#include "analysis/race_detector.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cool::analysis {
namespace {

class RaceDetectorTest : public ::testing::Test {
 protected:
  RaceDetectorTest() : machine_(topo::MachineConfig::dash(4)), rd_(machine_) {
    // Task 1 is the root; tasks 2 and 3 are its children (siblings of each
    // other), each running on its own processor.
    rd_.on_spawn(0, 1);
    rd_.on_task_run(0, 1, obs::HintClass::kNone, SyncObserver::kNoSet);
    spawn_and_run(1, 2, 1);
    spawn_and_run(1, 3, 2);
  }

  void spawn_and_run(std::uint64_t parent, std::uint64_t child,
                     topo::ProcId proc) {
    rd_.on_spawn(parent, child);
    rd_.on_task_run(proc, child, obs::HintClass::kNone, SyncObserver::kNoSet);
  }

  /// One byte-range access on the line containing `lo` (line-aligned math is
  /// the caller's job: lo/hi must stay within one line).
  void access(topo::ProcId proc, std::uint64_t lo, std::uint64_t hi,
              bool write) {
    mem::AccessInfo ai;
    ai.proc = proc;
    ai.addr = lo / machine_.line_bytes * machine_.line_bytes;
    ai.is_write = write;
    ai.lo = lo;
    ai.hi = hi;
    rd_.on_access(ai);
  }

  topo::MachineConfig machine_;
  RaceDetector rd_;
};

TEST_F(RaceDetectorTest, SiblingWritesRace) {
  access(1, 0, 8, true);   // task 2
  access(2, 0, 8, true);   // task 3: no HB edge to its sibling
  ASSERT_EQ(rd_.total(), 1u);
  const RaceReport& r = rd_.races()[0];
  EXPECT_TRUE(r.prev_write);
  EXPECT_TRUE(r.cur_write);
  EXPECT_EQ(r.prev_task, 2u);
  EXPECT_EQ(r.cur_task, 3u);
  EXPECT_EQ(r.bytes, 8u);
  EXPECT_EQ(r.addr, 0u);
}

TEST_F(RaceDetectorTest, SpawnOrdersParentBeforeChild) {
  access(0, 0, 8, true);       // parent writes...
  spawn_and_run(1, 4, 3);      // ...then spawns a new child...
  access(3, 0, 8, true);       // ...which may freely overwrite.
  EXPECT_EQ(rd_.total(), 0u);
}

TEST_F(RaceDetectorTest, MutexEdgeSuppressesRace) {
  int mu = 0;
  access(1, 0, 8, true);       // task 2 writes inside its critical section
  rd_.on_release(&mu, 2);
  rd_.on_acquire(&mu, 3);
  access(2, 0, 8, true);       // task 3 writes after acquiring the mutex
  EXPECT_EQ(rd_.total(), 0u);
}

TEST_F(RaceDetectorTest, GroupCompletionOrdersMemberBeforeWaiter) {
  int grp = 0;
  access(1, 0, 8, true);       // member (task 2) writes its result
  rd_.on_group_done(&grp, 2);
  rd_.on_group_wait(&grp, 1);
  access(0, 0, 8, false);      // parent reads it after the waitfor
  EXPECT_EQ(rd_.total(), 0u);
}

TEST_F(RaceDetectorTest, CondSignalOrdersSignallerBeforeWaker) {
  int cv = 0;
  access(1, 0, 8, true);       // task 2 writes, then signals
  rd_.on_cond_signal(&cv, 2);
  rd_.on_cond_wake(&cv, 3);
  access(2, 0, 8, false);      // task 3 reads after waking
  EXPECT_EQ(rd_.total(), 0u);
}

TEST_F(RaceDetectorTest, BarrierOrdersPhases) {
  int bar = 0;
  access(1, 0, 8, true);       // task 2 writes in phase 0
  rd_.on_barrier_arrive(&bar, 2);
  rd_.on_barrier_arrive(&bar, 3);
  rd_.on_barrier_release(&bar, 2);
  rd_.on_barrier_release(&bar, 3);
  access(2, 0, 8, false);      // task 3 reads in phase 1
  EXPECT_EQ(rd_.total(), 0u);
}

TEST_F(RaceDetectorTest, DisjointBytesOnOneLineDoNotRace) {
  // Both tasks touch the same cache line but different bytes: false sharing,
  // not a data race, and the byte-exact shadow must tell them apart.
  access(1, 0, 8, true);
  access(2, 8, 16, true);
  EXPECT_EQ(rd_.total(), 0u);
}

TEST_F(RaceDetectorTest, PartialOverlapReportsTheOverlapOnly) {
  access(1, 0, 8, true);
  access(2, 4, 12, true);
  ASSERT_EQ(rd_.total(), 1u);
  EXPECT_EQ(rd_.races()[0].addr, 4u);
  EXPECT_EQ(rd_.races()[0].bytes, 4u);
}

TEST_F(RaceDetectorTest, ConcurrentReadsDoNotRace) {
  access(1, 0, 8, false);
  access(2, 0, 8, false);
  EXPECT_EQ(rd_.total(), 0u);
}

TEST_F(RaceDetectorTest, ReadWriteConflictRaces) {
  access(1, 0, 8, false);
  access(2, 0, 8, true);
  ASSERT_EQ(rd_.total(), 1u);
  EXPECT_FALSE(rd_.races()[0].prev_write);
  EXPECT_TRUE(rd_.races()[0].cur_write);
}

TEST_F(RaceDetectorTest, WriteReadConflictRaces) {
  access(1, 0, 8, true);
  access(2, 0, 8, false);
  ASSERT_EQ(rd_.total(), 1u);
  EXPECT_TRUE(rd_.races()[0].prev_write);
  EXPECT_FALSE(rd_.races()[0].cur_write);
}

TEST_F(RaceDetectorTest, LineGranularAccessFallsBackToWholeLine) {
  // lo == hi means "the caller is line-granular": conservatively take the
  // whole line.
  mem::AccessInfo ai;
  ai.proc = 1;
  ai.addr = 0;
  ai.is_write = true;
  rd_.on_access(ai);
  access(2, 0, 4, true);
  ASSERT_EQ(rd_.total(), 1u);
  EXPECT_EQ(rd_.races()[0].bytes, 4u);
}

TEST_F(RaceDetectorTest, RepeatedConflictOnOneObjectReportsOnce) {
  ASSERT_TRUE(rd_.registry().add("acc", 0, 16, 0));
  access(1, 0, 8, true);
  access(2, 0, 8, true);
  access(1, 8, 16, true);
  access(2, 8, 16, true);  // same task pair, same object, same kind
  EXPECT_EQ(rd_.total(), 1u);
}

TEST_F(RaceDetectorTest, AttributionNamesTheRegisteredObject) {
  ASSERT_TRUE(rd_.registry().add("acc", 64, 8, 0));
  // Task 3 carries a TASK affinity hint on the racing object itself.
  rd_.on_task_run(2, 3, obs::HintClass::kTask, 64);
  access(1, 64, 72, true);
  access(2, 64, 72, true);
  ASSERT_EQ(rd_.total(), 1u);
  const RaceReport& r = rd_.races()[0];
  EXPECT_EQ(r.object, "acc");
  EXPECT_NE(r.cur_desc.find("task#3"), std::string::npos);
  EXPECT_NE(r.cur_desc.find("task @ acc"), std::string::npos);
  const std::string rep = rd_.report();
  EXPECT_NE(rep.find("== race check =="), std::string::npos);
  EXPECT_NE(rep.find("write/write on acc"), std::string::npos);
}

TEST_F(RaceDetectorTest, ReportDetailCapsButTotalKeepsCounting) {
  // Same task pair racing on many distinct (unregistered) lines: each line
  // is its own dedup unit, so the count passes kMaxReports.
  const auto n = static_cast<std::uint64_t>(RaceDetector::kMaxReports) + 8;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t base = i * machine_.line_bytes;
    access(1, base, base + 4, true);
    access(2, base, base + 4, true);
  }
  EXPECT_EQ(rd_.total(), n);
  EXPECT_EQ(rd_.races().size(), RaceDetector::kMaxReports);
  EXPECT_NE(rd_.report().find("more; first"), std::string::npos);
}

TEST_F(RaceDetectorTest, AccessesOutsideAnyTaskAreIgnored) {
  mem::AccessInfo ai;
  ai.proc = 3;  // no on_task_run for proc 3: current task is 0
  ai.addr = 0;
  ai.lo = 0;
  ai.hi = 8;
  ai.is_write = true;
  rd_.on_access(ai);
  ai.proc = 99;  // out of range: must not crash
  rd_.on_access(ai);
  access(1, 0, 8, true);
  EXPECT_EQ(rd_.total(), 0u);
}

TEST_F(RaceDetectorTest, NoRacesReportSaysSo) {
  EXPECT_NE(rd_.report().find("no races detected"), std::string::npos);
}

}  // namespace
}  // namespace cool::analysis
