// End-to-end race-check regression: the seeded-race synthetic app must be
// flagged (with correct object and hint attribution) on every run, its
// mutex-guarded twin must be clean, and the real paper apps must be
// race-free under the detector.
#include <gtest/gtest.h>

#include <string>

#include "analysis/race_detector.hpp"
#include "apps/gauss/gauss.hpp"
#include "apps/ocean/ocean.hpp"
#include "apps/synth/unsync.hpp"

namespace cool {
namespace {

Runtime make_rt(std::uint32_t procs, const sched::Policy& policy,
                bool race_check) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy;
  sc.race_check = race_check;
  return Runtime(sc);
}

TEST(RaceRegression, SeededRaceIsFlaggedWithAttribution) {
  Runtime rt = make_rt(8, sched::Policy{}, true);
  apps::unsync::Config cfg;  // synchronized_run = false: the seeded race
  const apps::unsync::Result r = apps::unsync::run(rt, cfg);
  const analysis::RaceDetector* rd = rt.race_detector();
  ASSERT_NE(rd, nullptr);
  ASSERT_GE(r.run.races, 1u);
  EXPECT_EQ(r.run.races, rd->total());
  // The race is on the registered accumulator, and the workers carry a TASK
  // hint on it — both must show up in the report.
  bool on_acc = false;
  for (const analysis::RaceReport& rep : rd->races()) {
    if (rep.object == "acc") {
      on_acc = true;
      EXPECT_NE(rep.cur_desc.find("task#"), std::string::npos);
      EXPECT_NE(rep.cur_desc.find("@ acc"), std::string::npos);
    }
  }
  EXPECT_TRUE(on_acc);
  const std::string text = rd->report();
  EXPECT_NE(text.find("on acc"), std::string::npos);
}

TEST(RaceRegression, SeededRaceIsDeterministic) {
  apps::unsync::Config cfg;
  Runtime a = make_rt(8, sched::Policy{}, true);
  const apps::unsync::Result ra = apps::unsync::run(a, cfg);
  Runtime b = make_rt(8, sched::Policy{}, true);
  const apps::unsync::Result rb = apps::unsync::run(b, cfg);
  EXPECT_EQ(ra.run.races, rb.run.races);
  EXPECT_EQ(a.race_detector()->report(), b.race_detector()->report());
}

TEST(RaceRegression, SynchronizedTwinIsClean) {
  apps::unsync::Config cfg;
  cfg.synchronized_run = true;  // identical traffic, folded under a Mutex
  Runtime rt = make_rt(8, sched::Policy{}, true);
  const apps::unsync::Result r = apps::unsync::run(rt, cfg);
  EXPECT_EQ(r.run.races, 0u);
  EXPECT_NE(rt.race_detector()->report().find("no races detected"),
            std::string::npos);
}

TEST(RaceRegression, DetectorOffByDefault) {
  Runtime rt = make_rt(8, sched::Policy{}, false);
  apps::unsync::Config cfg;
  const apps::unsync::Result r = apps::unsync::run(rt, cfg);
  EXPECT_EQ(rt.race_detector(), nullptr);
  EXPECT_EQ(r.run.races, 0u);
}

TEST(RaceRegression, GaussIsRaceFree) {
  apps::gauss::Config cfg;
  cfg.n = 48;
  cfg.variant = apps::gauss::Variant::kTaskObject;
  Runtime rt = make_rt(8, apps::gauss::policy_for(cfg.variant), true);
  const apps::gauss::Result r = apps::gauss::run(rt, cfg);
  EXPECT_LT(r.residual, 1e-8);
  EXPECT_EQ(r.run.races, 0u) << rt.race_detector()->report();
}

TEST(RaceRegression, OceanIsRaceFree) {
  apps::ocean::Config cfg;
  cfg.n = 32;
  cfg.grids = 3;
  cfg.steps = 2;
  cfg.variant = apps::ocean::Variant::kDistr;
  Runtime rt = make_rt(8, apps::ocean::policy_for(cfg.variant), true);
  const apps::ocean::Result r = apps::ocean::run(rt, cfg);
  EXPECT_EQ(r.run.races, 0u) << rt.race_detector()->report();
}

}  // namespace
}  // namespace cool
