// The latency-target objective (AdaptPolicy::latency_target_cycles): the
// escalation ladder's order and dwell, the steal-only revert, and the
// serving-mode stand-down of the throughput heuristics.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "adaptive/engine.hpp"
#include "adaptive/policy.hpp"
#include "common/error.hpp"
#include "obs/latency_hist.hpp"

namespace cool::adaptive {
namespace {

/// Engine over a hand-fed latency histogram: every on_task_dispatch call
/// closes an epoch (epoch_tasks = 1), and the sensor returns the rig's
/// cumulative histogram, exactly like a live load::Driver would.
struct LatencyRig {
  topo::MachineConfig machine = topo::MachineConfig::dash(8);
  sched::Policy live;
  obs::Snapshot metrics;
  obs::LatencyHist hist;  ///< Cumulative; tests record between epochs.
  int mutations = 0;

  AdaptPolicy policy() const {
    AdaptPolicy p;
    p.epoch_tasks = 1;
    p.epoch_cycles = 0;
    p.confirm_epochs = 1;
    p.cooldown_epochs = 2;
    p.enable_balancer = true;
    p.balancer_dwell_epochs = 2;
    p.latency_target_cycles = 1000;
    p.latency_min_samples = 8;
    return p;
  }

  Hooks hooks() {
    Hooks h;
    h.profile = [] { return obs::ProfileSnapshot{}; };
    h.metrics = [this] { return metrics; };
    h.mutate_policy = [this](const std::function<void(sched::Policy&)>& fn) {
      fn(live);
      ++mutations;
    };
    h.policy = [this] { return live; };
    return h;
  }

  /// Record one epoch's worth of completions at latency `lat`.
  void epoch_completions(std::uint64_t lat, int n = 16) {
    for (int i = 0; i < n; ++i) hist.record(lat);
  }
};

AdaptiveEngine make_engine(LatencyRig& rig, AdaptPolicy p) {
  AdaptiveEngine eng(rig.machine, p, rig.hooks());
  eng.set_latency_sensor([&rig] { return rig.hist; });
  return eng;
}

TEST(LatencyTarget, OvershootSwitchesBalancerFirst) {
  LatencyRig rig;
  AdaptiveEngine eng = make_engine(rig, rig.policy());
  rig.epoch_completions(4000);  // p99 ~4x the 1000-cycle target
  eng.on_task_dispatch(0, 1000);
  EXPECT_EQ(rig.live.balancer, sched::BalancerKind::kAverage);
  // Rung 1 only: the steal knob is untouched on the first overshoot.
  EXPECT_FALSE(rig.live.steal_object_tasks);
  EXPECT_EQ(rig.mutations, 1);
}

TEST(LatencyTarget, StealEscalationWaitsOutTheBalancerDwell) {
  LatencyRig rig;
  AdaptiveEngine eng = make_engine(rig, rig.policy());
  // Epoch 1: overshoot -> balancer=average (switch epoch = 1, dwell = 2).
  rig.epoch_completions(4000);
  eng.on_task_dispatch(0, 1000);
  ASSERT_EQ(rig.live.balancer, sched::BalancerKind::kAverage);
  // Epoch 2: still over target, but inside the dwell — no steal flip (the
  // completing backlog still carries pre-switch queueing delay).
  rig.epoch_completions(4000);
  eng.on_task_dispatch(0, 2000);
  EXPECT_FALSE(rig.live.steal_object_tasks);
  // Epoch 3: dwell over, overshoot persists — open pin-break stealing.
  rig.epoch_completions(4000);
  eng.on_task_dispatch(0, 3000);
  EXPECT_TRUE(rig.live.steal_object_tasks);
  EXPECT_EQ(eng.log().size(), 2u);
}

TEST(LatencyTarget, StealRevertsWithHeadroomButBalancerStays) {
  LatencyRig rig;
  AdaptiveEngine eng = make_engine(rig, rig.policy());
  // Climb both rungs.
  rig.epoch_completions(4000);
  eng.on_task_dispatch(0, 1000);
  rig.epoch_completions(4000);
  eng.on_task_dispatch(0, 2000);
  rig.epoch_completions(4000);
  eng.on_task_dispatch(0, 3000);
  ASSERT_TRUE(rig.live.steal_object_tasks);
  // Recovery with real headroom (p99*2 <= target): feed calm epochs until
  // the governor's cooldown admits the revert.
  for (std::uint64_t e = 4; e <= 12 && rig.live.steal_object_tasks; ++e) {
    rig.epoch_completions(300);
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_FALSE(rig.live.steal_object_tasks);
  // The balancer escalation is never reverted while the objective is
  // active: a good epoch p99 means the switch is working, and switching
  // back mid-trace would let the hot queue rebuild.
  EXPECT_EQ(rig.live.balancer, sched::BalancerKind::kAverage);
}

TEST(LatencyTarget, HoveringAtTargetDoesNotOscillate) {
  LatencyRig rig;
  AdaptiveEngine eng = make_engine(rig, rig.policy());
  rig.epoch_completions(4000);
  eng.on_task_dispatch(0, 1000);
  const auto switched = rig.mutations;
  // p99 just under target but without 2x headroom: nothing moves.
  for (std::uint64_t e = 2; e <= 8; ++e) {
    rig.epoch_completions(900);
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_EQ(rig.mutations, switched);
}

TEST(LatencyTarget, TooFewSamplesIsNotEvidence) {
  LatencyRig rig;
  AdaptiveEngine eng = make_engine(rig, rig.policy());
  // Huge latencies but below latency_min_samples per epoch: no action (the
  // queued requests will show up in a later epoch's delta).
  for (std::uint64_t e = 1; e <= 5; ++e) {
    rig.epoch_completions(50000, /*n=*/4);
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_EQ(rig.mutations, 0);
}

TEST(LatencyTarget, WithoutBalancerActuatorStealIsTheFirstRung) {
  LatencyRig rig;
  AdaptPolicy p = rig.policy();
  p.enable_balancer = false;
  AdaptiveEngine eng = make_engine(rig, p);
  rig.epoch_completions(4000);
  eng.on_task_dispatch(0, 1000);
  EXPECT_TRUE(rig.live.steal_object_tasks);
  EXPECT_EQ(rig.live.balancer, sched::BalancerKind::kStealing);
}

TEST(LatencyTarget, ServingModeStandsDownTheIdlePileUpHeuristic) {
  // The same idle + deep-queue signature that flips steal_object_tasks in
  // throughput mode (AdaptiveEngineSynthetic.IdlePileUpWithDeepQueueOpens-
  // Stealing) must NOT fire while a latency target is stated: the objective
  // owns the knob, and pin-break stealing makes hot-key tails worse.
  LatencyRig rig;
  AdaptiveEngine eng = make_engine(rig, rig.policy());
  rig.metrics.values["proc.busy_cycles"] = 100;
  rig.metrics.values["proc.idle_cycles"] = 900;
  rig.metrics.values["sched.queue.max_now"] = rig.machine.n_procs / 2;
  rig.epoch_completions(500);  // tail comfortably under target
  eng.on_task_dispatch(0, 1000);
  EXPECT_FALSE(rig.live.steal_object_tasks);
  EXPECT_EQ(rig.mutations, 0);
}

TEST(LatencyTarget, NoSensorMeansNoActions) {
  LatencyRig rig;
  AdaptiveEngine eng(rig.machine, rig.policy(), rig.hooks());
  // Target stated but no sensor attached: the objective is inert.
  eng.on_task_dispatch(0, 1000);
  EXPECT_EQ(rig.mutations, 0);
}

TEST(LatencyTarget, PolicyJsonRoundTripsTheTargetFields) {
  AdaptPolicy p;
  p.latency_target_cycles = 12345;
  p.latency_min_samples = 17;
  p.balancer_dwell_epochs = 9;
  const AdaptPolicy q = parse_adapt_policy(p.to_json());
  EXPECT_EQ(q.latency_target_cycles, 12345u);
  EXPECT_EQ(q.latency_min_samples, 17u);
  EXPECT_EQ(q.balancer_dwell_epochs, 9u);
  EXPECT_THROW(parse_adapt_policy("{\"latency_target_cycle\": 1}"),
               util::Error);
}

}  // namespace
}  // namespace cool::adaptive
