// AdaptiveEngine: synthetic-hook unit tests (no runtime), end-to-end tests
// on the real sim runtime (determinism, zero perturbation when off, recovery
// on unhinted gauss), and the AdaptPolicy JSON round-trip.
#include "adaptive/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "adaptive/policy.hpp"
#include "apps/gauss/gauss.hpp"
#include "common/error.hpp"
#include "core/runtime.hpp"

namespace cool::adaptive {
namespace {

// ---------------------------------------------------------------- synthetic

/// Engine over hand-fed snapshots: every dispatch closes an epoch, so each
/// on_task_dispatch call is one evaluation of the rules.
struct SyntheticRig {
  topo::MachineConfig machine = topo::MachineConfig::dash(8);
  sched::Policy live;
  obs::Snapshot metrics;  ///< Cumulative; tests bump counters between epochs.
  int mutations = 0;

  AdaptPolicy policy() const {
    AdaptPolicy p;
    p.epoch_tasks = 1;
    p.epoch_cycles = 0;
    p.confirm_epochs = 1;
    p.cooldown_epochs = 4;
    return p;
  }

  Hooks hooks() {
    Hooks h;
    h.profile = [] { return obs::ProfileSnapshot{}; };
    h.metrics = [this] { return metrics; };
    h.mutate_policy = [this](const std::function<void(sched::Policy&)>& fn) {
      fn(live);
      ++mutations;
    };
    h.policy = [this] { return live; };
    return h;
  }
};

TEST(AdaptiveEngineSynthetic, StealStormOpensObjectStealingOnce) {
  SyntheticRig rig;
  AdaptiveEngine eng(rig.machine, rig.policy(), rig.hooks());
  ASSERT_FALSE(rig.live.steal_object_tasks);
  for (std::uint64_t e = 1; e <= 10; ++e) {
    rig.metrics.values["sched.failed_steal_scans"] += 100;
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_TRUE(rig.live.steal_object_tasks);
  // The persisting storm escalates to a scan cap, then goes quiet: two
  // mutations total, no oscillation however long the storm lasts.
  EXPECT_EQ(rig.live.max_steal_scan, rig.machine.procs_per_cluster);
  EXPECT_EQ(rig.mutations, 2);
  EXPECT_EQ(eng.log().size(), 2u);
}

TEST(AdaptiveEngineSynthetic, BarrierIdlenessAloneDoesNotFlipPolicy) {
  // High idle fraction with shallow queues is what a barrier-structured
  // program looks like between phases — not a pile-up, no actuation.
  SyntheticRig rig;
  AdaptiveEngine eng(rig.machine, rig.policy(), rig.hooks());
  for (std::uint64_t e = 1; e <= 10; ++e) {
    rig.metrics.values["proc.busy_cycles"] += 100;
    rig.metrics.values["proc.idle_cycles"] += 900;
    rig.metrics.values["sched.queue.max_now"] = 1;
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_FALSE(rig.live.steal_object_tasks);
  EXPECT_EQ(rig.mutations, 0);
}

TEST(AdaptiveEngineSynthetic, IdlePileUpWithDeepQueueOpensStealing) {
  // Same idleness, but half the machine's worth of tasks sits on one queue:
  // the work exists and cannot spread — the actuator fires.
  SyntheticRig rig;
  AdaptiveEngine eng(rig.machine, rig.policy(), rig.hooks());
  rig.metrics.values["proc.busy_cycles"] = 100;
  rig.metrics.values["proc.idle_cycles"] = 900;
  rig.metrics.values["sched.queue.max_now"] = rig.machine.n_procs / 2;
  eng.on_task_dispatch(0, 1000);
  EXPECT_TRUE(rig.live.steal_object_tasks);
  EXPECT_EQ(rig.mutations, 1);
}

TEST(AdaptiveEngineSynthetic, ActuatorsCanBeDisabledIndividually) {
  SyntheticRig rig;
  AdaptPolicy p = rig.policy();
  p.enable_steal_policy = false;
  AdaptiveEngine eng(rig.machine, p, rig.hooks());
  for (std::uint64_t e = 1; e <= 5; ++e) {
    rig.metrics.values["sched.failed_steal_scans"] += 100;
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_EQ(rig.mutations, 0);
  EXPECT_TRUE(eng.log().empty());
}

TEST(AdaptiveEngineSynthetic, PersistentPileUpEscalatesToAverageBalancer) {
  SyntheticRig rig;
  AdaptPolicy p = rig.policy();
  p.enable_balancer = true;
  p.balancer_dwell_epochs = 2;
  AdaptiveEngine eng(rig.machine, p, rig.hooks());
  // Epoch 1: the pile-up opens object stealing (the existing relief).
  // Epoch 2: the pile-up persists with the relief on — escalate the balancer.
  for (std::uint64_t e = 1; e <= 2; ++e) {
    rig.metrics.values["proc.busy_cycles"] += 100;
    rig.metrics.values["proc.idle_cycles"] += 900;
    rig.metrics.values["sched.queue.max_now"] = rig.machine.n_procs / 2;
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_TRUE(rig.live.steal_object_tasks);
  EXPECT_EQ(rig.live.balancer, sched::BalancerKind::kAverage);
  ASSERT_EQ(eng.log().size(), 2u);
  EXPECT_EQ(eng.log()[1].action, "balancer=average (pile-up persists)");
  EXPECT_EQ(eng.balancer_governor().switches(), 1u);

  // Once the pile-up drains, the escalation reverts to the byte-identical
  // Stealing default (paced by the dwell + the governor's cooldown).
  for (std::uint64_t e = 3; e <= 12 &&
                            rig.live.balancer != sched::BalancerKind::kStealing;
       ++e) {
    rig.metrics.values["proc.busy_cycles"] += 1000;
    rig.metrics.values["sched.queue.max_now"] = 0;
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_EQ(rig.live.balancer, sched::BalancerKind::kStealing);
  EXPECT_EQ(eng.log().back().action, "balancer=stealing (pile-up drained)");
  EXPECT_EQ(eng.balancer_governor().switches(), 2u);
}

TEST(AdaptiveEngineSynthetic, BalancerActuatorIsOffByDefault) {
  SyntheticRig rig;
  AdaptiveEngine eng(rig.machine, rig.policy(), rig.hooks());
  for (std::uint64_t e = 1; e <= 10; ++e) {
    rig.metrics.values["proc.busy_cycles"] += 100;
    rig.metrics.values["proc.idle_cycles"] += 900;
    rig.metrics.values["sched.queue.max_now"] = rig.machine.n_procs / 2;
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_TRUE(rig.live.steal_object_tasks);  // the relief still fires
  EXPECT_EQ(rig.live.balancer, sched::BalancerKind::kStealing);
  EXPECT_EQ(eng.balancer_governor().switches(), 0u);
}

TEST(AdaptiveEngineSynthetic, UserChosenBalancerIsNeverReverted) {
  SyntheticRig rig;
  rig.live.balancer = sched::BalancerKind::kAverage;  // user's choice
  AdaptPolicy p = rig.policy();
  p.enable_balancer = true;
  AdaptiveEngine eng(rig.machine, p, rig.hooks());
  rig.live.steal_object_tasks = true;
  for (std::uint64_t e = 1; e <= 10; ++e) {
    rig.metrics.values["proc.busy_cycles"] += 1000;
    rig.metrics.values["sched.queue.max_now"] = 0;
    eng.on_task_dispatch(0, e * 1000);
  }
  EXPECT_EQ(rig.live.balancer, sched::BalancerKind::kAverage);
  EXPECT_EQ(eng.balancer_governor().switches(), 0u);
}

TEST(AdaptiveEngineSynthetic, EpochCostIsChargedToTheDispatcher) {
  SyntheticRig rig;
  AdaptiveEngine eng(rig.machine, rig.policy(), rig.hooks());
  const std::uint64_t c = eng.on_task_dispatch(3, 1000);
  EXPECT_EQ(c, rig.policy().epoch_cost_cycles);
}

// -------------------------------------------------------------- end-to-end

apps::gauss::Config unhinted_gauss() {
  apps::gauss::Config c;
  c.n = 48;
  c.variant = apps::gauss::Variant::kObjectOnly;
  c.distribute = false;
  return c;
}

SystemConfig adapt_config(bool adapt) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(8);
  sc.policy = apps::gauss::policy_for(apps::gauss::Variant::kObjectOnly);
  sc.adapt = adapt;
  return sc;
}

TEST(AdaptiveRuntime, OffMeansNothingIsConstructed) {
  Runtime rt(adapt_config(false));
  EXPECT_EQ(rt.adaptive_engine(), nullptr);
}

TEST(AdaptiveRuntime, DecisionsAreDeterministic) {
  std::string log1;
  std::string log2;
  std::uint64_t cycles1 = 0;
  std::uint64_t cycles2 = 0;
  {
    Runtime rt(adapt_config(true));
    const auto r = apps::gauss::run(rt, unhinted_gauss());
    cycles1 = r.run.sim_cycles;
    log1 = rt.adaptive_engine()->log_json();
  }
  {
    Runtime rt(adapt_config(true));
    const auto r = apps::gauss::run(rt, unhinted_gauss());
    cycles2 = r.run.sim_cycles;
    log2 = rt.adaptive_engine()->log_json();
  }
  EXPECT_EQ(cycles1, cycles2);
  EXPECT_EQ(log1, log2);
  EXPECT_NE(log1, "[]");  // the run actually adapted
}

TEST(AdaptiveRuntime, RecoversLocalityOnUnhintedGauss) {
  std::uint64_t plain = 0;
  std::uint64_t adapted = 0;
  {
    Runtime rt(adapt_config(false));
    plain = apps::gauss::run(rt, unhinted_gauss()).run.sim_cycles;
  }
  {
    Runtime rt(adapt_config(true));
    adapted = apps::gauss::run(rt, unhinted_gauss()).run.sim_cycles;
    EXPECT_FALSE(rt.adaptive_engine()->log().empty());
  }
  EXPECT_LT(adapted, plain);
}

TEST(AdaptiveRuntime, PolicyBitDecisionsRespectCooldown) {
  // The end-to-end hysteresis pin: in a real adaptive run, decisions that
  // touch the same policy bit never flip-flop inside the cooldown window.
  Runtime rt(adapt_config(true));
  (void)apps::gauss::run(rt, unhinted_gauss());
  const AdaptiveEngine* eng = rt.adaptive_engine();
  std::vector<std::uint64_t> steal_epochs;
  for (const Decision& d : eng->log()) {
    if (d.action.find("steal_object_tasks") != std::string::npos) {
      steal_epochs.push_back(d.epoch);
    }
  }
  const std::uint64_t min_gap = eng->policy().cooldown_epochs + 1;
  for (std::size_t i = 1; i < steal_epochs.size(); ++i) {
    EXPECT_GE(steal_epochs[i] - steal_epochs[i - 1], min_gap)
        << "flip-flop at epochs " << steal_epochs[i - 1] << " -> "
        << steal_epochs[i];
  }
}

// ------------------------------------------------------------- policy JSON

TEST(AdaptPolicyJson, RoundTrips) {
  AdaptPolicy p;
  p.epoch_tasks = 7;
  p.epoch_cycles = 12345;
  p.confirm_epochs = 3;
  p.cooldown_epochs = 9;
  p.enable_hints = false;
  p.enable_balancer = true;
  p.balancer_dwell_epochs = 11;
  p.balancer_max_switches = 2;
  p.rules.min_misses = 17;
  const AdaptPolicy q = parse_adapt_policy(p.to_json());
  EXPECT_EQ(q.to_json(), p.to_json());
  EXPECT_EQ(q.epoch_tasks, 7u);
  EXPECT_FALSE(q.enable_hints);
  EXPECT_TRUE(q.enable_balancer);
  EXPECT_EQ(q.balancer_dwell_epochs, 11u);
  EXPECT_EQ(q.balancer_max_switches, 2u);
  EXPECT_EQ(q.rules.min_misses, 17u);
}

TEST(AdaptPolicyJson, UnknownKeyThrows) {
  EXPECT_THROW(parse_adapt_policy("{\"epoch_taks\": 5}"), util::Error);
}

TEST(AdaptPolicyJson, MalformedJsonThrows) {
  EXPECT_THROW(parse_adapt_policy("{\"epoch_tasks\": }"), util::Error);
}

TEST(AdaptPolicyJson, MissingFileThrows) {
  EXPECT_THROW(load_adapt_policy("/nonexistent/adapt.json"), util::Error);
}

}  // namespace
}  // namespace cool::adaptive
