// Governor: confirmation streaks and cooldown windows per decision class.
#include "adaptive/governor.hpp"

#include <gtest/gtest.h>

namespace cool::adaptive {
namespace {

TEST(Governor, ConfirmOneAdmitsOnFirstFiring) {
  Governor g(1, 0);
  EXPECT_TRUE(g.admit("k", 1));
}

TEST(Governor, ConfirmTwoNeedsConsecutiveEpochs) {
  Governor g(2, 0);
  EXPECT_FALSE(g.admit("k", 1));
  EXPECT_TRUE(g.admit("k", 2));
}

TEST(Governor, GapResetsTheStreak) {
  Governor g(2, 0);
  EXPECT_FALSE(g.admit("k", 1));
  // Epoch 2 is silent; the epoch-3 firing starts a fresh streak.
  EXPECT_FALSE(g.admit("k", 3));
  EXPECT_TRUE(g.admit("k", 4));
}

TEST(Governor, SameEpochDoubleFiringDoesNotDoubleCount) {
  Governor g(2, 0);
  EXPECT_FALSE(g.admit("k", 1));
  EXPECT_FALSE(g.admit("k", 1));  // second finding of the class, same epoch
  EXPECT_TRUE(g.admit("k", 2));
}

TEST(Governor, CooldownFreezesTheClass) {
  Governor g(1, 4);
  EXPECT_TRUE(g.admit("k", 1));
  for (std::uint64_t e = 2; e <= 5; ++e) {
    EXPECT_FALSE(g.admit("k", e)) << "epoch " << e;
  }
  EXPECT_TRUE(g.admit("k", 6));
}

TEST(Governor, NoClassFlipFlopsWithinItsCooldown) {
  // The hysteresis pin: however often a rule fires, two admissions of one
  // decision class are always at least cooldown+1 epochs apart.
  Governor g(1, 3);
  std::vector<std::uint64_t> admitted;
  for (std::uint64_t e = 1; e <= 40; ++e) {
    if (g.admit("policy:steal_object_tasks", e)) admitted.push_back(e);
  }
  ASSERT_GE(admitted.size(), 2u);
  for (std::size_t i = 1; i < admitted.size(); ++i) {
    EXPECT_GE(admitted[i] - admitted[i - 1], g.cooldown_epochs() + 1);
  }
}

TEST(Governor, ClassesAreIndependent) {
  Governor g(1, 10);
  EXPECT_TRUE(g.admit("a", 1));
  EXPECT_TRUE(g.admit("b", 1));  // a's cooldown does not freeze b
  EXPECT_FALSE(g.admit("a", 2));
}

TEST(BalancerGovernor, DwellSeparatesSwitchesAcrossClasses) {
  // Unlike the plain governor, the dwell applies across classes: switching
  // to average and straight back to stealing is exactly the thrash it stops.
  BalancerGovernor g(1, 0, /*dwell=*/5, /*max_switches=*/10);
  EXPECT_TRUE(g.admit("balancer:average", 1));
  EXPECT_FALSE(g.admit("balancer:stealing", 2));  // inside the dwell window
  EXPECT_FALSE(g.admit("balancer:stealing", 4));
  EXPECT_TRUE(g.admit("balancer:stealing", 6));
  EXPECT_EQ(g.switches(), 2u);
}

TEST(BalancerGovernor, LifetimeCapStopsThrash) {
  BalancerGovernor g(1, 0, /*dwell=*/0, /*max_switches=*/2);
  EXPECT_TRUE(g.admit("balancer:average", 1));
  EXPECT_TRUE(g.admit("balancer:stealing", 2));
  EXPECT_FALSE(g.admit("balancer:average", 3));
  EXPECT_FALSE(g.admit("balancer:average", 50));
  EXPECT_EQ(g.switches(), 2u);
}

TEST(BalancerGovernor, BaseConfirmAndCooldownStillApply) {
  BalancerGovernor g(2, 3, /*dwell=*/0, /*max_switches=*/10);
  EXPECT_FALSE(g.admit("balancer:average", 1));  // streak 1 < confirm 2
  EXPECT_TRUE(g.admit("balancer:average", 2));
  EXPECT_FALSE(g.admit("balancer:average", 4));  // cooldown
  EXPECT_FALSE(g.admit("balancer:average", 5));
  EXPECT_TRUE(g.admit("balancer:average", 6));
}

}  // namespace
}  // namespace cool::adaptive
