#include "topology/machine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cool::topo {
namespace {

TEST(Machine, DashDefaultsMatchPaper) {
  const MachineConfig m = MachineConfig::dash();
  EXPECT_EQ(m.n_procs, 32u);
  EXPECT_EQ(m.procs_per_cluster, 4u);
  EXPECT_EQ(m.n_clusters(), 8u);
  EXPECT_EQ(m.l1_bytes, 64u * 1024);
  EXPECT_EQ(m.l2_bytes, 256u * 1024);
  EXPECT_EQ(m.lat.l1_hit, 1u);
  EXPECT_EQ(m.lat.l2_hit, 14u);
  EXPECT_EQ(m.lat.local_mem, 30u);
  EXPECT_GE(m.lat.remote_mem, 100u);
  EXPECT_LE(m.lat.remote_mem, 150u);
  EXPECT_NO_THROW(m.validate());
}

TEST(Machine, ClusterMapping) {
  const MachineConfig m = MachineConfig::dash();
  EXPECT_EQ(m.cluster_of(0), 0u);
  EXPECT_EQ(m.cluster_of(3), 0u);
  EXPECT_EQ(m.cluster_of(4), 1u);
  EXPECT_EQ(m.cluster_of(31), 7u);
  EXPECT_TRUE(m.same_cluster(0, 3));
  EXPECT_FALSE(m.same_cluster(3, 4));
}

TEST(Machine, PartialLastCluster) {
  MachineConfig m = MachineConfig::dash(6);
  EXPECT_EQ(m.n_clusters(), 2u);
  EXPECT_EQ(m.cluster_of(5), 1u);
  EXPECT_NO_THROW(m.validate());
}

TEST(Machine, LineAndPageMapping) {
  const MachineConfig m = MachineConfig::dash();
  EXPECT_EQ(m.line_of(0), 0u);
  EXPECT_EQ(m.line_of(15), 0u);
  EXPECT_EQ(m.line_of(16), 1u);
  EXPECT_EQ(m.page_of(4095), 0u);
  EXPECT_EQ(m.page_of(4096), 1u);
}

TEST(Machine, ValidateRejectsBadConfigs) {
  MachineConfig m = MachineConfig::dash();
  m.n_procs = 0;
  EXPECT_THROW(m.validate(), util::Error);

  m = MachineConfig::dash();
  m.n_procs = 65;  // sharer mask limit
  EXPECT_THROW(m.validate(), util::Error);

  m = MachineConfig::dash();
  m.line_bytes = 24;  // not a power of two
  EXPECT_THROW(m.validate(), util::Error);

  m = MachineConfig::dash();
  m.page_bytes = 8;  // smaller than a line
  EXPECT_THROW(m.validate(), util::Error);

  m = MachineConfig::dash();
  m.l1_assoc = 0;
  EXPECT_THROW(m.validate(), util::Error);

  m = MachineConfig::dash();
  m.l2_bytes = 32 * 1024;  // smaller than L1: inclusion impossible
  EXPECT_THROW(m.validate(), util::Error);
}

TEST(Machine, DashSmallValid) {
  const MachineConfig m = MachineConfig::dash_small();
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.n_procs, 16u);
  EXPECT_LT(m.l1_bytes, MachineConfig::dash().l1_bytes);
}

class ClusterProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ClusterProperty, EveryProcInExactlyOneCluster) {
  MachineConfig m = MachineConfig::dash(GetParam());
  m.validate();
  std::vector<int> seen(m.n_clusters(), 0);
  for (ProcId p = 0; p < m.n_procs; ++p) {
    const ClusterId c = m.cluster_of(p);
    ASSERT_LT(c, m.n_clusters());
    ++seen[c];
  }
  // Every cluster non-empty and at most procs_per_cluster members.
  for (int cnt : seen) {
    EXPECT_GE(cnt, 1);
    EXPECT_LE(cnt, static_cast<int>(m.procs_per_cluster));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 24, 31, 32,
                                           64));

}  // namespace
}  // namespace cool::topo
