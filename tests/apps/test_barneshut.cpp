#include "apps/barneshut/barneshut.hpp"

#include <gtest/gtest.h>

namespace cool::apps::barneshut {
namespace {

Config small(Variant v) {
  Config cfg;
  cfg.n_bodies = 256;
  cfg.block_size = 32;
  cfg.steps = 2;
  cfg.variant = v;
  return cfg;
}

Runtime make_rt(std::uint32_t procs, const Config& cfg) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy_for(cfg.variant);
  return Runtime(sc);
}

class BhVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(BhVariants, TreeForcesMatchDirectSummation) {
  Config cfg = small(GetParam());
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  // θ = 0.5 multipole approximation: a few percent worst-case error.
  EXPECT_LT(r.max_force_error, 0.05);
  EXPECT_GT(r.energy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BhVariants,
                         ::testing::Values(Variant::kBase, Variant::kDistrAff),
                         [](const auto& pinfo) {
                           return pinfo.param == Variant::kBase ? "Base"
                                                               : "DistrAff";
                         });

TEST(BarnesHut, TighterThetaIsMoreAccurate) {
  Config loose = small(Variant::kDistrAff);
  loose.theta = 0.8;
  Config tight = small(Variant::kDistrAff);
  tight.theta = 0.2;
  Runtime rt1 = make_rt(8, loose);
  Runtime rt2 = make_rt(8, tight);
  const Result rl = run(rt1, loose);
  const Result rtt = run(rt2, tight);
  EXPECT_LT(rtt.max_force_error, rl.max_force_error);
}

TEST(BarnesHut, TaskCountMatchesStructure) {
  Config cfg = small(Variant::kDistrAff);
  Runtime rt = make_rt(4, cfg);
  const Result r = run(rt, cfg);
  const std::uint64_t blocks = 256 / 32;
  EXPECT_EQ(r.run.tasks, 1 + static_cast<std::uint64_t>(cfg.steps) * blocks * 2);
}

TEST(BarnesHut, SameResultBothVariants) {
  // Phase-separated: forces computed from the same positions regardless of
  // scheduling; integration identical. Results match exactly.
  Config cfg = small(Variant::kBase);
  Runtime rt1 = make_rt(8, cfg);
  const Result base = run(rt1, cfg);
  cfg.variant = Variant::kDistrAff;
  Runtime rt2 = make_rt(8, cfg);
  const Result aff = run(rt2, cfg);
  EXPECT_DOUBLE_EQ(base.energy, aff.energy);
}

TEST(BarnesHut, DeterministicInSim) {
  Config cfg = small(Variant::kDistrAff);
  Runtime rt1 = make_rt(8, cfg);
  Runtime rt2 = make_rt(8, cfg);
  EXPECT_EQ(run(rt1, cfg).run.sim_cycles, run(rt2, cfg).run.sim_cycles);
}

TEST(BarnesHut, WorksUnderThreadEngine) {
  Config cfg = small(Variant::kDistrAff);
  SystemConfig sc;
  sc.mode = SystemConfig::Mode::kThreads;
  sc.machine = topo::MachineConfig::dash(4);
  sc.policy = policy_for(cfg.variant);
  Runtime rt(sc);
  const Result r = run(rt, cfg);
  EXPECT_LT(r.max_force_error, 0.05);
}

TEST(BarnesHut, RejectsBadConfig) {
  Config cfg = small(Variant::kBase);
  cfg.n_bodies = 4;
  Runtime rt = make_rt(4, cfg);
  EXPECT_THROW(run(rt, cfg), util::Error);
}

}  // namespace
}  // namespace cool::apps::barneshut
