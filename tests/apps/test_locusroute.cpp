#include "apps/locusroute/locusroute.hpp"

#include <gtest/gtest.h>

namespace cool::apps::locusroute {
namespace {

Config small(Variant v) {
  Config cfg;
  cfg.region_w = 16;
  cfg.height = 16;
  cfg.wires_per_region = 8;
  cfg.iterations = 2;
  cfg.variant = v;
  return cfg;
}

Runtime make_rt(std::uint32_t procs, const Config& cfg) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy_for(cfg.variant);
  return Runtime(sc);
}

class LocusVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(LocusVariants, RoutesAllWiresConsistently) {
  Config cfg = small(GetParam());
  Runtime rt = make_rt(8, cfg);
  // run() itself validates the CostArray-vs-replay invariant and throws on
  // inconsistency.
  const Result r = run(rt, cfg);
  EXPECT_GT(r.total_occupancy, 0u);
  // 8 regions x 8 wires x 2 iterations + root.
  EXPECT_EQ(r.run.tasks, 1u + 8u * 8u * 2u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, LocusVariants,
                         ::testing::Values(Variant::kBase, Variant::kAffinity,
                                           Variant::kAffinityDistr),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case Variant::kBase: return "Base";
                             case Variant::kAffinity: return "Affinity";
                             case Variant::kAffinityDistr: return "AffinityDistr";
                           }
                           return "x";
                         });

TEST(LocusRoute, AffinityKeepsWiresOnTheirRegionProcessor) {
  // Needs a realistic amount of work per region: during the spawn ramp idle
  // processors may legitimately steal whole sets, which dominates if regions
  // hold only a handful of wires.
  Config cfg = small(Variant::kAffinity);
  cfg.wires_per_region = 48;
  cfg.iterations = 3;
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  EXPECT_GT(r.region_adherence, 0.8);  // paper: "over 80%"
}

TEST(LocusRoute, BaseScattersWires) {
  Config cfg = small(Variant::kBase);
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  EXPECT_LT(r.region_adherence, 0.5);
}

TEST(LocusRoute, AffinityCutsMisses) {
  Config cfg;
  cfg.region_w = 32;
  cfg.height = 32;
  cfg.wires_per_region = 24;
  cfg.iterations = 2;

  cfg.variant = Variant::kBase;
  Runtime base_rt = make_rt(16, cfg);
  const Result base = run(base_rt, cfg);

  cfg.variant = Variant::kAffinity;
  Runtime aff_rt = make_rt(16, cfg);
  const Result aff = run(aff_rt, cfg);

  // Affinity scheduling reduces cache misses (paper Fig. 11: nearly halves).
  EXPECT_LT(aff.run.mem.misses(), base.run.mem.misses());
}

TEST(LocusRoute, DistributionMakesMissesLocal) {
  Config cfg;
  cfg.region_w = 32;
  cfg.height = 32;
  cfg.wires_per_region = 24;
  cfg.iterations = 2;

  cfg.variant = Variant::kAffinity;
  Runtime aff_rt = make_rt(16, cfg);
  const Result aff = run(aff_rt, cfg);

  cfg.variant = Variant::kAffinityDistr;
  Runtime distr_rt = make_rt(16, cfg);
  const Result distr = run(distr_rt, cfg);

  EXPECT_GT(local_fraction(distr.run.mem), local_fraction(aff.run.mem));
}

TEST(LocusRoute, DeterministicInSim) {
  Config cfg = small(Variant::kAffinityDistr);
  Runtime rt1 = make_rt(8, cfg);
  Runtime rt2 = make_rt(8, cfg);
  const Result a = run(rt1, cfg);
  const Result b = run(rt2, cfg);
  EXPECT_EQ(a.run.sim_cycles, b.run.sim_cycles);
  EXPECT_EQ(a.total_route_cost, b.total_route_cost);
}

TEST(LocusRoute, ExplicitRegionCountOverride) {
  Config cfg = small(Variant::kAffinity);
  cfg.regions = 4;  // fewer regions than processors
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  EXPECT_EQ(r.run.tasks, 1u + 4u * 8u * 2u);
}

TEST(LocusRoute, WorksUnderThreadEngine) {
  Config cfg = small(Variant::kAffinityDistr);
  SystemConfig sc;
  sc.mode = SystemConfig::Mode::kThreads;
  sc.machine = topo::MachineConfig::dash(4);
  sc.policy = policy_for(cfg.variant);
  Runtime rt(sc);
  const Result r = run(rt, cfg);  // invariant checked inside
  EXPECT_GT(r.total_occupancy, 0u);
}

TEST(LocusRoute, RejectsBadConfig) {
  Config cfg = small(Variant::kBase);
  cfg.region_w = 2;
  Runtime rt = make_rt(4, cfg);
  EXPECT_THROW(run(rt, cfg), util::Error);
}

}  // namespace
}  // namespace cool::apps::locusroute
