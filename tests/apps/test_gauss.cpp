#include "apps/gauss/gauss.hpp"

#include <gtest/gtest.h>

namespace cool::apps::gauss {
namespace {

Config small(Variant v) {
  Config cfg;
  cfg.n = 48;
  cfg.variant = v;
  return cfg;
}

Runtime make_rt(std::uint32_t procs, const Config& cfg) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy_for(cfg.variant);
  return Runtime(sc);
}

TEST(Gauss, SerialReferenceFactorsCorrectly) {
  Config cfg = small(Variant::kTaskObject);
  EXPECT_LT(serial_residual(cfg), 1e-8);
}

class GaussVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(GaussVariants, ParallelFactorizationIsCorrect) {
  Config cfg = small(GetParam());
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  EXPECT_LT(r.residual, 1e-8) << variant_name(GetParam());
  // n completes + n(n-1)/2 updates + 1 root.
  const auto n = static_cast<std::uint64_t>(cfg.n);
  EXPECT_EQ(r.run.tasks, 1 + n + n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, GaussVariants,
                         ::testing::Values(Variant::kBase,
                                           Variant::kObjectOnly,
                                           Variant::kTaskObject),
                         [](const auto& pinfo) {
                           return std::string(variant_name(pinfo.param)) ==
                                          "Task+ObjectAff"
                                      ? "TaskObject"
                                      : variant_name(pinfo.param);
                         });

TEST(Gauss, DeterministicAcrossRuns) {
  Config cfg = small(Variant::kTaskObject);
  Runtime rt1 = make_rt(8, cfg);
  Runtime rt2 = make_rt(8, cfg);
  const Result a = run(rt1, cfg);
  const Result b = run(rt2, cfg);
  EXPECT_EQ(a.run.sim_cycles, b.run.sim_cycles);
  EXPECT_EQ(a.run.checksum, b.run.checksum);
}

TEST(Gauss, DistributionSpreadsColumns) {
  Config cfg = small(Variant::kTaskObject);
  Runtime rt = make_rt(8, cfg);
  run(rt, cfg);
  // With round-robin distribution, every processor homes some pages.
  // (home() is engine-side; we check via the scheduler's placement stats:
  //  object placements must land on more than one server.)
  EXPECT_GT(rt.sched_stats().placed_object, 0u);
}

TEST(Gauss, AffinityReducesRemoteMisses) {
  Config cfg;
  cfg.n = 96;
  cfg.variant = Variant::kBase;
  Runtime base_rt = make_rt(16, cfg);
  const Result base = run(base_rt, cfg);

  cfg.variant = Variant::kTaskObject;
  Runtime aff_rt = make_rt(16, cfg);
  const Result aff = run(aff_rt, cfg);

  // Same math.
  EXPECT_NEAR(base.run.checksum, aff.run.checksum, 1e-9);
  // Affinity scheduling shifts misses from remote to local service.
  EXPECT_LT(aff.run.mem.remote_misses(), base.run.mem.remote_misses());
  // And it should not be slower.
  EXPECT_LE(aff.run.sim_cycles, base.run.sim_cycles);
}

TEST(Gauss, RejectsDegenerateMatrix) {
  Config cfg = small(Variant::kBase);
  cfg.n = 1;
  Runtime rt = make_rt(2, cfg);
  EXPECT_THROW(run(rt, cfg), util::Error);
}

TEST(Gauss, RunsUnderThreadEngineToo) {
  Config cfg = small(Variant::kTaskObject);
  SystemConfig sc;
  sc.mode = SystemConfig::Mode::kThreads;
  sc.machine = topo::MachineConfig::dash(4);
  sc.policy = policy_for(cfg.variant);
  Runtime rt(sc);
  const Result r = run(rt, cfg);
  EXPECT_LT(r.residual, 1e-8);
}

}  // namespace
}  // namespace cool::apps::gauss
