#include "apps/ocean/ocean.hpp"

#include <gtest/gtest.h>

namespace cool::apps::ocean {
namespace {

Config small(Variant v) {
  Config cfg;
  cfg.n = 32;
  cfg.grids = 3;
  cfg.steps = 2;
  cfg.variant = v;
  return cfg;
}

Runtime make_rt(std::uint32_t procs, const Config& cfg) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy_for(cfg.variant);
  return Runtime(sc);
}

class OceanVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(OceanVariants, MatchesSerialExactly) {
  Config cfg = small(GetParam());
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  EXPECT_DOUBLE_EQ(r.checksum, serial_checksum(cfg, 8));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, OceanVariants,
                         ::testing::Values(Variant::kBase, Variant::kDistrNoAff,
                                           Variant::kAffOnly, Variant::kDistr),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case Variant::kBase: return "Base";
                             case Variant::kDistrNoAff: return "Distr";
                             case Variant::kAffOnly: return "AffOnly";
                             case Variant::kDistr: return "DistrAff";
                           }
                           return "x";
                         });

TEST(Ocean, TaskCountMatchesStructure) {
  Config cfg = small(Variant::kDistr);
  Runtime rt = make_rt(4, cfg);
  const Result r = run(rt, cfg);
  // root + steps * grids * 2 ops * regions tasks.
  const std::uint64_t regions = 4;
  EXPECT_EQ(r.run.tasks, 1 + static_cast<std::uint64_t>(cfg.steps) *
                                 cfg.grids * 2 * regions);
}

TEST(Ocean, DistributionImprovesLocality) {
  Config cfg;
  cfg.n = 64;
  cfg.grids = 4;
  cfg.steps = 2;

  cfg.variant = Variant::kBase;
  Runtime base_rt = make_rt(16, cfg);
  const Result base = run(base_rt, cfg);

  cfg.variant = Variant::kDistr;
  Runtime distr_rt = make_rt(16, cfg);
  const Result distr = run(distr_rt, cfg);

  EXPECT_DOUBLE_EQ(base.checksum, distr.checksum);
  // COOL version: faster and with a larger fraction of misses serviced
  // locally.
  EXPECT_LT(distr.run.sim_cycles, base.run.sim_cycles);
  EXPECT_GT(local_fraction(distr.run.mem), local_fraction(base.run.mem));
}

TEST(Ocean, AffinityWithoutDistributionSerializes) {
  Config cfg = small(Variant::kAffOnly);
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  // Everything homed on processor 0 and affinity pins tasks there: almost no
  // work runs elsewhere (this is why Figure 5 distributes the regions).
  const auto util = rt.utilization();
  std::uint64_t busy_elsewhere = 0;
  std::uint64_t busy_total = 0;
  for (std::size_t p = 0; p < util.size(); ++p) {
    busy_total += util[p].busy;
    if (p != 0) busy_elsewhere += util[p].busy;
  }
  // Only stray hint-free work (the root task may be stolen) runs off
  // processor 0; all region tasks are pinned there.
  EXPECT_LT(busy_elsewhere * 5, busy_total);
  EXPECT_DOUBLE_EQ(r.checksum, serial_checksum(cfg, 8));
}

TEST(Ocean, MultipleRegionsPerProc) {
  Config cfg = small(Variant::kDistr);
  cfg.regions_per_proc = 2;
  Runtime rt = make_rt(4, cfg);
  const Result r = run(rt, cfg);
  EXPECT_DOUBLE_EQ(r.checksum, serial_checksum(cfg, 4));
}

TEST(Ocean, RejectsTooManyRegions) {
  Config cfg = small(Variant::kDistr);
  cfg.n = 8;
  cfg.regions_per_proc = 4;  // 32 regions > 8 rows
  Runtime rt = make_rt(8, cfg);
  EXPECT_THROW(run(rt, cfg), util::Error);
}

class OceanMultigrid : public ::testing::TestWithParam<int> {};

TEST_P(OceanMultigrid, MatchesSerialExactly) {
  Config cfg;
  cfg.n = 64;
  cfg.grids = 2;
  cfg.steps = 2;
  cfg.variant = Variant::kDistr;
  cfg.multigrid_levels = GetParam();
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  EXPECT_DOUBLE_EQ(r.checksum, serial_checksum(cfg, 8));
}

INSTANTIATE_TEST_SUITE_P(Levels, OceanMultigrid, ::testing::Values(1, 2, 3));

TEST(OceanMultigrid, CoarseLevelsHaveFewerRegionsThanProcs) {
  // 3 levels of a 64-grid on 16 procs: level 3 is 8x8 -> at most 8 regions,
  // exercising the load-imbalance end of the locality tradeoff.
  Config cfg;
  cfg.n = 64;
  cfg.grids = 1;
  cfg.steps = 1;
  cfg.variant = Variant::kDistr;
  cfg.multigrid_levels = 3;
  Runtime rt = make_rt(16, cfg);
  const Result r = run(rt, cfg);
  EXPECT_DOUBLE_EQ(r.checksum, serial_checksum(cfg, 16));
}

TEST(OceanMultigrid, RejectsTooManyLevels) {
  Config cfg;
  cfg.n = 32;
  cfg.grids = 1;
  cfg.steps = 1;
  cfg.multigrid_levels = 4;  // 32 >> 4 = 2 < 8
  Runtime rt = make_rt(4, cfg);
  EXPECT_THROW(run(rt, cfg), util::Error);
}

TEST(Ocean, Deterministic) {
  Config cfg = small(Variant::kDistr);
  Runtime rt1 = make_rt(8, cfg);
  Runtime rt2 = make_rt(8, cfg);
  EXPECT_EQ(run(rt1, cfg).run.sim_cycles, run(rt2, cfg).run.sim_cycles);
}

}  // namespace
}  // namespace cool::apps::ocean
