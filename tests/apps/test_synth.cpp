#include <gtest/gtest.h>

#include "apps/synth/multiobj.hpp"
#include "apps/synth/taskmix.hpp"

namespace cool::apps {
namespace {

Runtime make_rt(std::uint32_t procs, const sched::Policy& pol) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = pol;
  return Runtime(sc);
}

// ---------------------------------------------------------------------------
// TaskMix
// ---------------------------------------------------------------------------

TEST(TaskMix, AllHintsProduceSameChecksum) {
  double expect = 0.0;
  bool first = true;
  for (taskmix::Hint h :
       {taskmix::Hint::kNone, taskmix::Hint::kSimple, taskmix::Hint::kTask,
        taskmix::Hint::kObject, taskmix::Hint::kTaskObject,
        taskmix::Hint::kProcessor}) {
    taskmix::Config cfg;
    cfg.objects = 16;
    cfg.obj_kb = 4;
    cfg.tasks_per_obj = 3;
    cfg.hint = h;
    Runtime rt = make_rt(8, sched::Policy{});
    const auto r = taskmix::run(rt, cfg);
    if (first) {
      expect = r.checksum;
      first = false;
    } else {
      EXPECT_DOUBLE_EQ(r.checksum, expect) << taskmix::hint_name(h);
    }
    EXPECT_EQ(r.run.tasks,
              1u + static_cast<std::uint64_t>(cfg.objects) * cfg.tasks_per_obj);
  }
}

TEST(TaskMix, GroupingBeatsInterleavingUnderTaskAffinity) {
  // The workload the §5 queue array exists for: interleaved arrivals of many
  // sets. With TASK+OBJECT hints, the L1 hit rate must beat plain OBJECT
  // affinity (FIFO interleaving).
  taskmix::Config cfg;
  cfg.objects = 64;
  cfg.obj_kb = 32;
  cfg.tasks_per_obj = 6;

  cfg.hint = taskmix::Hint::kObject;
  Runtime rt1 = make_rt(16, sched::Policy{});
  const auto fifo = taskmix::run(rt1, cfg);

  cfg.hint = taskmix::Hint::kTaskObject;
  Runtime rt2 = make_rt(16, sched::Policy{});
  const auto grouped = taskmix::run(rt2, cfg);

  EXPECT_GT(grouped.l1_hit_rate, fifo.l1_hit_rate + 0.2);
  EXPECT_LT(grouped.run.sim_cycles, fifo.run.sim_cycles);
}

TEST(TaskMix, ObjectAffinityServicesMissesLocally) {
  taskmix::Config cfg;
  cfg.objects = 32;
  cfg.obj_kb = 8;
  cfg.hint = taskmix::Hint::kObject;
  Runtime rt = make_rt(8, sched::Policy{});
  const auto r = taskmix::run(rt, cfg);
  EXPECT_GT(local_fraction(r.run.mem), 0.95);
}

TEST(TaskMix, RejectsEmptyConfig) {
  taskmix::Config cfg;
  cfg.objects = 0;
  Runtime rt = make_rt(4, sched::Policy{});
  EXPECT_THROW(taskmix::run(rt, cfg), util::Error);
}

// ---------------------------------------------------------------------------
// MultiObj
// ---------------------------------------------------------------------------

TEST(MultiObj, AllStrategiesSameChecksum) {
  double expect = 0.0;
  bool first = true;
  for (multiobj::Strategy s :
       {multiobj::Strategy::kFirstObject, multiobj::Strategy::kWeighted,
        multiobj::Strategy::kWeightedPrefetch}) {
    multiobj::Config cfg;
    cfg.pairs = 16;
    cfg.tasks_per_pair = 2;
    cfg.strategy = s;
    Runtime rt = make_rt(8, multiobj::policy_for(s));
    const auto r = multiobj::run(rt, cfg);
    if (first) {
      expect = r.checksum;
      first = false;
    } else {
      EXPECT_DOUBLE_EQ(r.checksum, expect) << multiobj::strategy_name(s);
    }
  }
}

TEST(MultiObj, WeightedPlacementImprovesLocality) {
  multiobj::Config cfg;
  cfg.pairs = 32;
  cfg.tasks_per_pair = 3;

  cfg.strategy = multiobj::Strategy::kFirstObject;
  Runtime rt1 = make_rt(16, multiobj::policy_for(cfg.strategy));
  const auto naive = multiobj::run(rt1, cfg);

  cfg.strategy = multiobj::Strategy::kWeighted;
  Runtime rt2 = make_rt(16, multiobj::policy_for(cfg.strategy));
  const auto weighted = multiobj::run(rt2, cfg);

  EXPECT_GT(local_fraction(weighted.run.mem), local_fraction(naive.run.mem));
  EXPECT_LE(weighted.run.sim_cycles, naive.run.sim_cycles);
}

TEST(MultiObj, PrefetchEliminatesDemandMisses) {
  multiobj::Config cfg;
  cfg.pairs = 16;
  cfg.tasks_per_pair = 2;

  cfg.strategy = multiobj::Strategy::kWeighted;
  Runtime rt1 = make_rt(8, multiobj::policy_for(cfg.strategy));
  const auto plain = multiobj::run(rt1, cfg);

  cfg.strategy = multiobj::Strategy::kWeightedPrefetch;
  Runtime rt2 = make_rt(8, multiobj::policy_for(cfg.strategy));
  const auto pf = multiobj::run(rt2, cfg);

  EXPECT_GT(pf.run.mem.prefetches, 0u);
  EXPECT_LT(pf.run.mem.misses(), plain.run.mem.misses() / 2);
  EXPECT_LT(pf.run.sim_cycles, plain.run.sim_cycles);
}

TEST(MultiObj, RejectsEmptyConfig) {
  multiobj::Config cfg;
  cfg.pairs = 0;
  Runtime rt = make_rt(4, sched::Policy{});
  EXPECT_THROW(multiobj::run(rt, cfg), util::Error);
}

}  // namespace
}  // namespace cool::apps
