// txn serving app: conservation, determinism, skew shape, and the
// hints-off degenerate mode.
#include "apps/txn/txn.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace cool::apps::txn {
namespace {

Runtime make_rt(std::uint32_t procs, const Config& cfg) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy_for(cfg);
  return Runtime(sc);
}

Config small_cfg() {
  Config cfg;
  cfg.warehouses = 7;  // multiple of P-1 serving procs at P=8
  cfg.districts = 2;
  cfg.items = 32;
  cfg.lines = 3;
  cfg.arrivals.rate_per_kcycle = 4.0;
  cfg.arrivals.n_requests = 256;
  return cfg;
}

TEST(Txn, ConservesOrdersAndStock) {
  // run() itself COOL_CHECKs the stock ledger against the order lines and
  // the admission ledger; this test asserts the surfaced totals agree too.
  const Config cfg = small_cfg();
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  EXPECT_EQ(r.orders, cfg.arrivals.n_requests);
  EXPECT_EQ(r.ledger.generated, cfg.arrivals.n_requests);
  EXPECT_EQ(r.ledger.completed, cfg.arrivals.n_requests);
  EXPECT_EQ(r.latency.count(), cfg.arrivals.n_requests);
  EXPECT_GT(r.stock_moved, 0u);
}

TEST(Txn, RunsAreDeterministic) {
  const Config cfg = small_cfg();
  Runtime rt1 = make_rt(8, cfg);
  const Result a = run(rt1, cfg);
  Runtime rt2 = make_rt(8, cfg);
  const Result b = run(rt2, cfg);
  EXPECT_EQ(a.stock_moved, b.stock_moved);
  EXPECT_EQ(a.hot_requests, b.hot_requests);
  EXPECT_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.run.sched.steals, b.run.sched.steals);
}

TEST(Txn, KeySeedChangesThePicksButNotTheTotals) {
  Config cfg = small_cfg();
  Runtime rt1 = make_rt(8, cfg);
  const Result a = run(rt1, cfg);
  cfg.key_seed ^= 0xdead;
  Runtime rt2 = make_rt(8, cfg);
  const Result b = run(rt2, cfg);
  EXPECT_EQ(a.orders, b.orders);
  EXPECT_NE(a.stock_moved, b.stock_moved);  // different order lines drawn
}

TEST(Txn, ZipfSkewConcentratesOnTheHotWarehouse) {
  Config uniform = small_cfg();
  uniform.theta = 0.0;
  Runtime rt1 = make_rt(8, uniform);
  const Result u = run(rt1, uniform);

  Config skewed = small_cfg();
  skewed.theta = 1.2;
  Runtime rt2 = make_rt(8, skewed);
  const Result s = run(rt2, skewed);

  // Uniform: ~1/W of requests hit warehouse rank 0. theta=1.2 concentrates
  // several times that on the hot warehouse.
  const double n = static_cast<double>(uniform.arrivals.n_requests);
  EXPECT_LT(static_cast<double>(u.hot_requests), 0.35 * n);
  EXPECT_GT(static_cast<double>(s.hot_requests),
            2.0 * static_cast<double>(u.hot_requests));
}

TEST(Txn, SkewInflatesTheTail) {
  // Same offered load; hot-warehouse concentration must cost tail latency
  // under the default stealing policy (this is the effect abl_srv_skew and
  // the adaptive latency objective exist to measure and fix).
  Config uniform = small_cfg();
  uniform.arrivals.n_requests = 512;
  uniform.arrivals.rate_per_kcycle = 5.0;
  Config skewed = uniform;
  skewed.theta = 1.2;
  Runtime rt1 = make_rt(8, uniform);
  const Result u = run(rt1, uniform);
  Runtime rt2 = make_rt(8, skewed);
  const Result s = run(rt2, skewed);
  EXPECT_GT(s.latency.quantile(0.99), u.latency.quantile(0.99));
}

TEST(Txn, HintsOffStillConserves) {
  Config cfg = small_cfg();
  cfg.hints = false;
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  EXPECT_EQ(r.orders, cfg.arrivals.n_requests);
}

TEST(Txn, SingleProcessorDegenerates) {
  // Everything (front-end + serving) on one processor: still conserves,
  // just slowly.
  Config cfg = small_cfg();
  cfg.arrivals.n_requests = 64;
  Runtime rt = make_rt(1, cfg);
  const Result r = run(rt, cfg);
  EXPECT_EQ(r.orders, 64u);
}

TEST(Txn, MeasurementIntervalShrinksTheMeasuredSet) {
  Config cfg = small_cfg();
  cfg.measure_from_cycles = 10000;
  Runtime rt = make_rt(8, cfg);
  const Result r = run(rt, cfg);
  EXPECT_LT(r.latency.count(), cfg.arrivals.n_requests);
  EXPECT_GT(r.latency.count(), 0u);
}

}  // namespace
}  // namespace cool::apps::txn
