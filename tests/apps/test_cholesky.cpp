#include <gtest/gtest.h>

#include "apps/cholesky/block.hpp"
#include "apps/cholesky/panel.hpp"

namespace cool::apps::cholesky {
namespace {

// ---------------------------------------------------------------------------
// Panel Cholesky
// ---------------------------------------------------------------------------

PanelConfig small_panel(PanelVariant v) {
  PanelConfig cfg;
  cfg.n_panels = 24;
  cfg.row_scale = 3;
  cfg.variant = v;
  return cfg;
}

Runtime make_rt(std::uint32_t procs, const sched::Policy& pol) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = pol;
  return Runtime(sc);
}

class PanelVariants : public ::testing::TestWithParam<PanelVariant> {};

TEST_P(PanelVariants, MatchesSerialExactly) {
  PanelConfig cfg = small_panel(GetParam());
  Runtime rt = make_rt(8, panel_policy_for(cfg.variant));
  const PanelResult r = run_panel(rt, cfg);
  EXPECT_DOUBLE_EQ(r.checksum, panel_serial_checksum(cfg));
  // root + one complete per panel + one task per update edge.
  EXPECT_EQ(r.run.tasks, 1u + static_cast<std::uint64_t>(cfg.n_panels) +
                             r.updates);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PanelVariants,
                         ::testing::Values(PanelVariant::kBase,
                                           PanelVariant::kDistr,
                                           PanelVariant::kDistrAff,
                                           PanelVariant::kDistrAffCluster),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case PanelVariant::kBase: return "Base";
                             case PanelVariant::kDistr: return "Distr";
                             case PanelVariant::kDistrAff: return "DistrAff";
                             case PanelVariant::kDistrAffCluster:
                               return "DistrAffCluster";
                           }
                           return "x";
                         });

TEST(PanelCholesky, AffinityImprovesLocalityOverDistr) {
  PanelConfig cfg;
  cfg.n_panels = 64;
  cfg.row_scale = 4;

  cfg.variant = PanelVariant::kDistr;
  Runtime distr_rt = make_rt(16, panel_policy_for(cfg.variant));
  const PanelResult distr = run_panel(distr_rt, cfg);

  cfg.variant = PanelVariant::kDistrAff;
  Runtime aff_rt = make_rt(16, panel_policy_for(cfg.variant));
  const PanelResult aff = run_panel(aff_rt, cfg);

  EXPECT_DOUBLE_EQ(distr.checksum, aff.checksum);
  // Figure 15: affinity scheduling reduces misses and services more locally.
  EXPECT_LT(aff.run.mem.misses(), distr.run.mem.misses());
  EXPECT_GT(local_fraction(aff.run.mem), local_fraction(distr.run.mem));
}

TEST(PanelCholesky, ClusterStealingStaysInCluster) {
  PanelConfig cfg;
  cfg.n_panels = 64;
  cfg.row_scale = 4;
  cfg.variant = PanelVariant::kDistrAffCluster;
  Runtime rt = make_rt(16, panel_policy_for(cfg.variant));
  const PanelResult r = run_panel(rt, cfg);
  EXPECT_EQ(r.run.sched.remote_cluster_steals, 0u);
  EXPECT_DOUBLE_EQ(r.checksum, panel_serial_checksum(cfg));
}

TEST(PanelCholesky, EveryPanelCompletes) {
  // Structural sanity across seeds: the synthetic DAG must always drain.
  for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
    PanelConfig cfg = small_panel(PanelVariant::kDistrAff);
    cfg.seed = seed;
    Runtime rt = make_rt(4, panel_policy_for(cfg.variant));
    const PanelResult r = run_panel(rt, cfg);
    EXPECT_DOUBLE_EQ(r.checksum, panel_serial_checksum(cfg)) << seed;
  }
}

TEST(PanelCholesky, WorksUnderThreadEngine) {
  PanelConfig cfg = small_panel(PanelVariant::kDistrAff);
  SystemConfig sc;
  sc.mode = SystemConfig::Mode::kThreads;
  sc.machine = topo::MachineConfig::dash(4);
  sc.policy = panel_policy_for(cfg.variant);
  Runtime rt(sc);
  const PanelResult r = run_panel(rt, cfg);
  EXPECT_DOUBLE_EQ(r.checksum, panel_serial_checksum(cfg));
}

TEST(PanelCholesky, RejectsBadConfig) {
  PanelConfig cfg = small_panel(PanelVariant::kBase);
  cfg.n_panels = 1;
  Runtime rt = make_rt(4, panel_policy_for(cfg.variant));
  EXPECT_THROW(run_panel(rt, cfg), util::Error);
}

// ---------------------------------------------------------------------------
// Block Cholesky
// ---------------------------------------------------------------------------

BlockConfig small_block(BlockVariant v) {
  BlockConfig cfg;
  cfg.blocks = 6;
  cfg.block_size = 12;
  cfg.variant = v;
  return cfg;
}

class BlockVariants : public ::testing::TestWithParam<BlockVariant> {};

TEST_P(BlockVariants, FactorizationIsNumericallyCorrect) {
  BlockConfig cfg = small_block(GetParam());
  Runtime rt = make_rt(8, block_policy_for(cfg.variant));
  const BlockResult r = run_block(rt, cfg);
  EXPECT_LT(r.residual, 1e-7);
  // Task count: root + B factors + B(B-1)/2 solves + sum_{j<=i, k<j} 1.
  const std::uint64_t B = static_cast<std::uint64_t>(cfg.blocks);
  std::uint64_t updates = 0;
  for (std::uint64_t i = 0; i < B; ++i) {
    for (std::uint64_t j = 0; j <= i; ++j) updates += j;
  }
  EXPECT_EQ(r.run.tasks, 1 + B + B * (B - 1) / 2 + updates);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BlockVariants,
                         ::testing::Values(BlockVariant::kBase,
                                           BlockVariant::kDistrAff),
                         [](const auto& pinfo) {
                           return pinfo.param == BlockVariant::kBase
                                      ? "Base"
                                      : "DistrAff";
                         });

TEST(BlockCholesky, AffinityNotSlowerThanBase) {
  BlockConfig cfg;
  cfg.blocks = 8;
  cfg.block_size = 16;

  cfg.variant = BlockVariant::kBase;
  Runtime base_rt = make_rt(16, block_policy_for(cfg.variant));
  const BlockResult base = run_block(base_rt, cfg);

  cfg.variant = BlockVariant::kDistrAff;
  Runtime aff_rt = make_rt(16, block_policy_for(cfg.variant));
  const BlockResult aff = run_block(aff_rt, cfg);

  EXPECT_LT(base.residual, 1e-7);
  EXPECT_LT(aff.residual, 1e-7);
  EXPECT_LE(aff.run.sim_cycles, base.run.sim_cycles);
}

TEST(BlockCholesky, DeterministicInSim) {
  BlockConfig cfg = small_block(BlockVariant::kDistrAff);
  Runtime rt1 = make_rt(8, block_policy_for(cfg.variant));
  Runtime rt2 = make_rt(8, block_policy_for(cfg.variant));
  EXPECT_EQ(run_block(rt1, cfg).run.sim_cycles,
            run_block(rt2, cfg).run.sim_cycles);
}

TEST(BlockCholesky, WorksUnderThreadEngine) {
  BlockConfig cfg = small_block(BlockVariant::kDistrAff);
  SystemConfig sc;
  sc.mode = SystemConfig::Mode::kThreads;
  sc.machine = topo::MachineConfig::dash(4);
  sc.policy = block_policy_for(cfg.variant);
  Runtime rt(sc);
  EXPECT_LT(run_block(rt, cfg).residual, 1e-7);
}

class BlockBandSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockBandSweep, BandedFactorizationIsCorrect) {
  BlockConfig cfg;
  cfg.blocks = 8;
  cfg.block_size = 10;
  cfg.band = GetParam();
  cfg.variant = BlockVariant::kDistrAff;
  Runtime rt = make_rt(8, block_policy_for(cfg.variant));
  const BlockResult r = run_block(rt, cfg);
  EXPECT_LT(r.residual, 1e-9);
  if (cfg.band > 0) {
    // band b keeps b full off-diagonal block diagonals plus the diagonal.
    std::uint64_t expect = 0;
    for (int i = 0; i < cfg.blocks; ++i) {
      for (int j = std::max(0, i - cfg.band); j <= i; ++j) ++expect;
    }
    EXPECT_EQ(r.nonzero_blocks, expect);
  } else {
    EXPECT_EQ(r.nonzero_blocks,
              static_cast<std::uint64_t>(cfg.blocks) * (cfg.blocks + 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, BlockBandSweep, ::testing::Values(0, 1, 2, 4));

TEST(BlockCholesky, NarrowBandRunsFarFewerTasks) {
  BlockConfig dense;
  dense.blocks = 10;
  dense.block_size = 8;
  Runtime rt1 = make_rt(8, block_policy_for(dense.variant));
  const BlockResult d = run_block(rt1, dense);

  BlockConfig banded = dense;
  banded.band = 2;
  Runtime rt2 = make_rt(8, block_policy_for(banded.variant));
  const BlockResult b = run_block(rt2, banded);

  EXPECT_LT(b.run.tasks, d.run.tasks / 2);
  EXPECT_LT(b.residual, 1e-9);
}

TEST(BlockCholesky, RejectsBadBand) {
  BlockConfig cfg = small_block(BlockVariant::kBase);
  cfg.band = cfg.blocks;  // out of range
  Runtime rt = make_rt(4, block_policy_for(cfg.variant));
  EXPECT_THROW(run_block(rt, cfg), util::Error);
}

TEST(BlockCholesky, RejectsBadConfig) {
  BlockConfig cfg = small_block(BlockVariant::kBase);
  cfg.blocks = 1;
  Runtime rt = make_rt(4, block_policy_for(cfg.variant));
  EXPECT_THROW(run_block(rt, cfg), util::Error);
}

}  // namespace
}  // namespace cool::apps::cholesky
