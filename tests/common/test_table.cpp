#include "common/table.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

namespace cool::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{42});
  t.row().cell("beta").cell(3.14159, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "b"});
  t.row().cell("longlabel").cell(1);
  t.row().cell("x").cell(100);
  const std::string s = t.to_string();
  // All lines should have the same length (fixed-width rendering).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < s.size()) {
    auto end = s.find('\n', start);
    if (end == std::string::npos) break;
    const auto len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), Error);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"a"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), Error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, NegativeAndPrecision) {
  Table t({"v"});
  t.row().cell(std::int64_t{-5});
  t.row().cell(-2.5, 3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("-5"), std::string::npos);
  EXPECT_NE(s.find("-2.500"), std::string::npos);
}

TEST(Table, CsvBasic) {
  Table t({"name", "value"});
  t.row().cell("plain").cell(1);
  t.row().cell("with,comma").cell(2);
  t.row().cell("with\"quote").cell(3);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\",2\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\",3\n"), std::string::npos);
}

TEST(Table, CsvMissingCellsEmpty) {
  Table t({"a", "b", "c"});
  t.row().cell("x");
  EXPECT_NE(t.to_csv().find("x,,\n"), std::string::npos);
}

TEST(Table, MissingCellsRenderBlank) {
  Table t({"a", "b"});
  t.row().cell("only");
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, PctCellFormatsFraction) {
  Table t({"p"});
  t.row().cell_pct(0.375);       // default precision 1
  t.row().cell_pct(0.375, 2);    // explicit precision
  t.row().cell_pct(1.0, 0);      // whole
  t.row().cell_pct(0.0);         // zero stays a number, not "-"
  const std::string s = t.to_string();
  EXPECT_NE(s.find("37.5%"), std::string::npos);
  EXPECT_NE(s.find("37.50%"), std::string::npos);
  EXPECT_NE(s.find("100%"), std::string::npos);
  EXPECT_NE(s.find("0.0%"), std::string::npos);
}

TEST(Table, PctCellNonFiniteRendersDash) {
  Table t({"p"});
  t.row().cell_pct(std::numeric_limits<double>::quiet_NaN());
  t.row().cell_pct(std::numeric_limits<double>::infinity());
  const std::string s = t.to_string();
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
  EXPECT_NE(s.find('-'), std::string::npos);
}

TEST(Table, RatioCellFormatsMultiplier) {
  Table t({"r"});
  t.row().cell_ratio(1.9375);        // default precision 2
  t.row().cell_ratio(0.5, 1);
  t.row().cell_ratio(std::numeric_limits<double>::quiet_NaN());
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.94x"), std::string::npos);
  EXPECT_NE(s.find("0.5x"), std::string::npos);
  EXPECT_EQ(s.find("nan"), std::string::npos);
}

TEST(Table, PctCellInCsv) {
  Table t({"label", "pct"});
  t.row().cell("a").cell_pct(0.25);
  EXPECT_NE(t.to_csv().find("a,25.0%\n"), std::string::npos);
}

}  // namespace
}  // namespace cool::util
