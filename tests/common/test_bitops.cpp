#include "common/bitops.hpp"

#include <gtest/gtest.h>

namespace cool::util {
namespace {

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(Bitops, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4096), 12u);
  EXPECT_EQ(log2_floor(~0ull), 63u);
}

TEST(Bitops, Log2ExactThrowsOnNonPow2) {
  EXPECT_EQ(log2_exact(4096), 12u);
  EXPECT_THROW(log2_exact(3), Error);
  EXPECT_THROW(log2_exact(0), Error);
}

TEST(Bitops, AlignUp) {
  EXPECT_EQ(align_up(0, 16), 0u);
  EXPECT_EQ(align_up(1, 16), 16u);
  EXPECT_EQ(align_up(16, 16), 16u);
  EXPECT_EQ(align_up(17, 16), 32u);
  EXPECT_EQ(align_up(4095, 4096), 4096u);
}

TEST(Bitops, AlignDown) {
  EXPECT_EQ(align_down(0, 16), 0u);
  EXPECT_EQ(align_down(15, 16), 0u);
  EXPECT_EQ(align_down(16, 16), 16u);
  EXPECT_EQ(align_down(4097, 4096), 4096u);
}

// Property: align_down(x) <= x <= align_up(x), both multiples of the grain.
class AlignProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignProperty, Sandwich) {
  const std::uint64_t x = GetParam();
  for (std::uint64_t a : {1ull, 2ull, 16ull, 64ull, 4096ull}) {
    EXPECT_LE(align_down(x, a), x);
    EXPECT_GE(align_up(x, a), x);
    EXPECT_EQ(align_down(x, a) % a, 0u);
    EXPECT_EQ(align_up(x, a) % a, 0u);
    EXPECT_LT(align_up(x, a) - align_down(x, a), 2 * a);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, AlignProperty,
                         ::testing::Values(0, 1, 7, 63, 64, 65, 4095, 4096,
                                           4097, 123456789));

}  // namespace
}  // namespace cool::util
