#include "common/options.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"

namespace cool::util {
namespace {

Options make() {
  Options o("prog", "test program");
  o.add_flag("verbose", "chatty output");
  o.add_int("procs", 32, "processor count");
  o.add_double("ratio", 0.5, "some ratio");
  o.add_string("mode", "sim", "execution mode");
  return o;
}

// argv helper: parse a list of option strings.
bool parse(Options& o, std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "prog";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return o.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, Defaults) {
  Options o = make();
  EXPECT_TRUE(parse(o, {}));
  EXPECT_FALSE(o.flag("verbose"));
  EXPECT_EQ(o.get_int("procs"), 32);
  EXPECT_DOUBLE_EQ(o.get_double("ratio"), 0.5);
  EXPECT_EQ(o.get_string("mode"), "sim");
}

TEST(Options, EqualsForm) {
  Options o = make();
  EXPECT_TRUE(parse(o, {"--procs=8", "--ratio=0.25", "--mode=threads"}));
  EXPECT_EQ(o.get_int("procs"), 8);
  EXPECT_DOUBLE_EQ(o.get_double("ratio"), 0.25);
  EXPECT_EQ(o.get_string("mode"), "threads");
}

TEST(Options, SpaceForm) {
  Options o = make();
  EXPECT_TRUE(parse(o, {"--procs", "16"}));
  EXPECT_EQ(o.get_int("procs"), 16);
}

TEST(Options, FlagForms) {
  Options o = make();
  EXPECT_TRUE(parse(o, {"--verbose"}));
  EXPECT_TRUE(o.flag("verbose"));

  Options o2 = make();
  EXPECT_TRUE(parse(o2, {"--verbose=false"}));
  EXPECT_FALSE(o2.flag("verbose"));
}

TEST(Options, UnknownOptionThrows) {
  Options o = make();
  EXPECT_THROW(parse(o, {"--bogus=1"}), Error);
}

TEST(Options, MalformedIntThrows) {
  Options o = make();
  EXPECT_THROW(parse(o, {"--procs=abc"}), Error);
  Options o2 = make();
  EXPECT_THROW(parse(o2, {"--procs=12x"}), Error);
}

TEST(Options, MissingValueThrows) {
  Options o = make();
  EXPECT_THROW(parse(o, {"--procs"}), Error);
}

TEST(Options, HelpReturnsFalse) {
  Options o = make();
  EXPECT_FALSE(parse(o, {"--help"}));
}

TEST(Options, NegativeNumbers) {
  Options o = make();
  EXPECT_TRUE(parse(o, {"--procs=-3", "--ratio=-1.5"}));
  EXPECT_EQ(o.get_int("procs"), -3);
  EXPECT_DOUBLE_EQ(o.get_double("ratio"), -1.5);
}

TEST(Options, WrongTypeAccessThrows) {
  Options o = make();
  EXPECT_TRUE(parse(o, {}));
  EXPECT_THROW((void)o.get_int("mode"), Error);
  EXPECT_THROW((void)o.flag("procs"), Error);
}

TEST(Options, UsageMentionsEveryOption) {
  Options o = make();
  const std::string u = o.usage();
  for (const char* name : {"verbose", "procs", "ratio", "mode"}) {
    EXPECT_NE(u.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace cool::util
