#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cool::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng r(7);
  EXPECT_THROW(r.next_below(0), Error);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextInBadBoundsThrows) {
  Rng r(3);
  EXPECT_THROW(r.next_in(4, 3), Error);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformityChiSquaredish) {
  Rng r(5);
  std::vector<int> buckets(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++buckets[r.next_below(16)];
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 16, n / 160);  // within 10% of expectation
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ReseedReproduces) {
  Rng r(99);
  const auto a = r.next_u64();
  r.next_u64();
  r.reseed(99);
  EXPECT_EQ(r.next_u64(), a);
}

}  // namespace
}  // namespace cool::util
