#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace cool::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -10.0);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(Histogram, BasicBuckets) {
  Histogram h(10.0, 5);
  h.add(0.0);
  h.add(9.9);
  h.add(10.0);
  h.add(49.0);
  h.add(1000.0);  // overflow -> last bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
}

TEST(Histogram, NegativeClampsToFirstBucket) {
  Histogram h(1.0, 4);
  h.add(-5.0);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, Quantile) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 5), Error);
  EXPECT_THROW(Histogram(1.0, 0), Error);
}

TEST(Histogram, BucketOutOfRangeThrows) {
  Histogram h(1.0, 3);
  EXPECT_THROW((void)h.bucket(3), Error);
}

TEST(Histogram, QuantileBoundsChecked) {
  Histogram h(1.0, 3);
  EXPECT_THROW((void)h.quantile(-0.1), Error);
  EXPECT_THROW((void)h.quantile(1.1), Error);
}

}  // namespace
}  // namespace cool::util
