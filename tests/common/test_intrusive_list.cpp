#include "common/intrusive_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cool::util {
namespace {

struct Node {
  int value = 0;
  ListHook hook;
};

using List = IntrusiveList<Node, &Node::hook>;

TEST(IntrusiveList, StartsEmpty) {
  List l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.size(), 0u);
  EXPECT_EQ(l.front(), nullptr);
  EXPECT_EQ(l.back(), nullptr);
  EXPECT_EQ(l.pop_front(), nullptr);
  EXPECT_EQ(l.pop_back(), nullptr);
}

TEST(IntrusiveList, PushPopFifo) {
  List l;
  Node a, b, c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.pop_front()->value, 1);
  EXPECT_EQ(l.pop_front()->value, 2);
  EXPECT_EQ(l.pop_front()->value, 3);
  EXPECT_TRUE(l.empty());
}

TEST(IntrusiveList, PushFrontPopBackLifo) {
  List l;
  Node a, b;
  a.value = 1;
  b.value = 2;
  l.push_front(&a);
  l.push_front(&b);
  EXPECT_EQ(l.front()->value, 2);
  EXPECT_EQ(l.back()->value, 1);
  EXPECT_EQ(l.pop_back()->value, 1);
  EXPECT_EQ(l.pop_back()->value, 2);
}

TEST(IntrusiveList, EraseMiddle) {
  List l;
  Node a, b, c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  List::erase(&b);
  EXPECT_FALSE(b.hook.is_linked());
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(l.pop_front()->value, 1);
  EXPECT_EQ(l.pop_front()->value, 3);
}

TEST(IntrusiveList, UnlinkIsIdempotent) {
  Node a;
  a.value = 1;
  a.hook.unlink();  // Not linked: no-op.
  List l;
  l.push_back(&a);
  List::erase(&a);
  List::erase(&a);
  EXPECT_TRUE(l.empty());
}

TEST(IntrusiveList, ReinsertAfterPop) {
  List l;
  Node a;
  a.value = 1;
  l.push_back(&a);
  EXPECT_EQ(l.pop_front(), &a);
  l.push_back(&a);
  EXPECT_EQ(l.front(), &a);
}

TEST(IntrusiveList, MoveBetweenLists) {
  List l1, l2;
  Node a;
  a.value = 1;
  l1.push_back(&a);
  List::erase(&a);
  l2.push_back(&a);
  EXPECT_TRUE(l1.empty());
  EXPECT_EQ(l2.front(), &a);
}

TEST(IntrusiveList, Iteration) {
  List l;
  std::vector<Node> nodes(5);
  for (int i = 0; i < 5; ++i) {
    nodes[i].value = i;
    l.push_back(&nodes[i]);
  }
  int expect = 0;
  for (Node* n : l) EXPECT_EQ(n->value, expect++);
  EXPECT_EQ(expect, 5);
}

TEST(IntrusiveList, ClearUnlinksAll) {
  List l;
  std::vector<Node> nodes(4);
  for (auto& n : nodes) l.push_back(&n);
  l.clear();
  EXPECT_TRUE(l.empty());
  for (auto& n : nodes) EXPECT_FALSE(n.hook.is_linked());
}

TEST(IntrusiveList, HookOffsetRecovery) {
  // The hook is not the first member; owner recovery must still work.
  struct Padded {
    char pad[24] = {};
    int id = 0;
    ListHook hook;
  };
  IntrusiveList<Padded, &Padded::hook> l;
  Padded p;
  p.id = 77;
  l.push_back(&p);
  EXPECT_EQ(l.front()->id, 77);
  EXPECT_EQ(l.pop_front(), &p);
}

TEST(IntrusiveList, LargeStress) {
  List l;
  std::vector<Node> nodes(1000);
  for (int i = 0; i < 1000; ++i) {
    nodes[i].value = i;
    if (i % 2 == 0) {
      l.push_back(&nodes[i]);
    } else {
      l.push_front(&nodes[i]);
    }
  }
  EXPECT_EQ(l.size(), 1000u);
  // Erase every third node.
  for (int i = 0; i < 1000; i += 3) List::erase(&nodes[i]);
  std::size_t expect = 1000 - (1000 + 2) / 3;
  EXPECT_EQ(l.size(), expect);
}

}  // namespace
}  // namespace cool::util
