// Concurrency stress tests for the sharded scheduler: many real threads
// hammer place/acquire/steal on one Scheduler and we assert the structural
// invariants the paper's runtime depends on — no task lost, none duplicated,
// and task-affinity sets still serviced back-to-back on whichever server
// finally runs them. These tests are the ones required to stay clean under
// `-DCOOL_SANITIZE=thread` (see DESIGN.md, "Locking architecture").
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace cool::sched {
namespace {

topo::ProcId flat_home(std::uint64_t addr, std::uint32_t n_procs) {
  return static_cast<topo::ProcId>((addr >> 12) % n_procs);
}

/// One consumer's acquisition log entry.
struct LogEntry {
  std::uint64_t aff_key;
  std::uint64_t seq;
};

/// Drain the scheduler from `proc` until `acquired` reaches `total`,
/// recording every task into `log` and bumping its per-task counter.
void consume(Scheduler& s, topo::ProcId proc, std::atomic<std::size_t>& acquired,
             std::size_t total, std::vector<std::atomic<int>>& seen,
             std::vector<LogEntry>& log) {
  while (acquired.load() < total) {
    const auto acq = s.acquire(proc);
    if (acq.task == nullptr) {
      std::this_thread::yield();
      continue;
    }
    // Global task id: the tests stash it either in `owner` (id+1) when `seq`
    // is needed for within-set ordering, or directly in `seq`.
    const std::size_t id =
        acq.task->owner != nullptr
            ? reinterpret_cast<std::uintptr_t>(acq.task->owner) - 1
            : static_cast<std::size_t>(acq.task->seq);
    seen[id].fetch_add(1);
    log.push_back({acq.task->aff_key, acq.task->seq});
    acquired.fetch_add(1);
  }
}

// Producers and consumers run concurrently; tasks carry a mix of affinity
// hints. Every task must be acquired exactly once.
TEST(SchedStress, ConcurrentPlaceAcquireExactlyOnce) {
  constexpr std::uint32_t kProcs = 4;
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kPerProducer = 2000;
  constexpr std::size_t kTotal = kProducers * kPerProducer;

  const topo::MachineConfig machine = topo::MachineConfig::dash(kProcs);
  Policy pol;
  pol.steal_object_tasks = true;  // every task reachable from every consumer
  Scheduler s(machine, pol, [&](std::uint64_t a, topo::ProcId) {
    return flat_home(a, kProcs);
  });

  std::vector<TaskDesc> tasks(kTotal);
  std::vector<std::atomic<int>> seen(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    tasks[i].seq = i;
    // Mix of hints: affinity sets (8 shared objects), plain, OBJECT, PROCESSOR.
    const std::uint64_t obj = 0x100000ull + (i % 8) * 4096;
    switch (i % 6) {
      case 0:
      case 1:
        tasks[i].aff = Affinity::task(reinterpret_cast<void*>(obj));
        break;
      case 2:
        tasks[i].aff = Affinity::object(reinterpret_cast<void*>(obj));
        break;
      case 3:
        tasks[i].aff = Affinity::processor(static_cast<std::int64_t>(i));
        break;
      default:
        tasks[i].aff = Affinity::none();
        break;
    }
  }

  std::atomic<std::size_t> acquired{0};
  std::vector<std::vector<LogEntry>> logs(kProcs);
  std::vector<std::thread> threads;
  for (std::size_t pr = 0; pr < kProducers; ++pr) {
    threads.emplace_back([&, pr] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        s.place(&tasks[pr * kPerProducer + i],
                static_cast<topo::ProcId>(pr % kProcs));
      }
    });
  }
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      consume(s, static_cast<topo::ProcId>(p), acquired, kTotal, seen,
              logs[p]);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "task " << i << " lost or duplicated";
  }
  EXPECT_FALSE(s.any_work());
  const SchedStats ss = s.stats();
  EXPECT_EQ(ss.spawned, kTotal);
  // Every acquired task came from exactly one own-queue pop or one successful
  // steal return. (pops + tasks_stolen would double-count: a whole-set steal
  // adopts the set remainder into the thief's queue, where it is popped.)
  EXPECT_EQ(ss.pops + ss.steals, kTotal);
}

// Pre-placed task-affinity sets drained by concurrent, stealing consumers.
// Back-to-back invariant: in each consumer's acquisition log, tasks of one
// set form contiguous runs, and a set only splits into an extra run when the
// whole set was stolen mid-drain — so, summed over all sets, the number of
// maximal same-key runs is bounded by n_sets + whole-set steals. Within each
// run the set's spawn order must be preserved.
TEST(SchedStress, ConcurrentStealingKeepsSetsBackToBack) {
  constexpr std::uint32_t kProcs = 4;
  constexpr std::size_t kSets = 16;
  constexpr std::size_t kPerSet = 64;
  constexpr std::size_t kPlain = 256;
  constexpr std::size_t kTotal = kSets * kPerSet + kPlain;

  const topo::MachineConfig machine = topo::MachineConfig::dash(kProcs);
  Policy pol;
  pol.steal_object_tasks = true;
  Scheduler s(machine, pol, [&](std::uint64_t a, topo::ProcId) {
    return flat_home(a, kProcs);
  });

  // Pick set objects whose affinity keys land in distinct queue slots, so a
  // whole-set steal moves exactly one set (a hash collision would merge two
  // sets into one slot and legitimately interleave them).
  const ServerQueues probe(pol.affinity_array_size);
  std::vector<std::uint64_t> set_objs;
  std::vector<bool> slot_used(pol.affinity_array_size, false);
  for (std::uint64_t cand = 0x200000;
       set_objs.size() < kSets; cand += 4096) {
    const std::size_t slot = probe.slot_of(cand / machine.line_bytes);
    if (slot_used[slot]) continue;
    slot_used[slot] = true;
    set_objs.push_back(cand);
  }

  std::vector<TaskDesc> tasks(kTotal);
  std::vector<std::atomic<int>> seen(kTotal);
  std::size_t idx = 0;
  for (std::size_t set = 0; set < kSets; ++set) {
    for (std::size_t i = 0; i < kPerSet; ++i, ++idx) {
      tasks[idx].owner = reinterpret_cast<void*>(idx + 1);  // global id
      tasks[idx].aff =
          Affinity::task(reinterpret_cast<void*>(set_objs[set]));
    }
  }
  for (std::size_t i = 0; i < kPlain; ++i, ++idx) {
    tasks[idx].owner = reinterpret_cast<void*>(idx + 1);
    tasks[idx].aff = Affinity::none();
  }
  // Interleave placement across sets so every server holds several sets.
  // Queues are FIFO per slot, so `seq` records placement order within each
  // set — that is the order back-to-back service must preserve.
  std::vector<std::uint64_t> next_seq(kSets, 1);
  for (std::size_t i = 0; i < kTotal; ++i) {
    const std::size_t shuffled = (i * 97) % kTotal;
    TaskDesc& t = tasks[shuffled];
    if (shuffled < kSets * kPerSet) t.seq = next_seq[shuffled / kPerSet]++;
    s.place(&t, static_cast<topo::ProcId>(i % kProcs));
  }

  std::atomic<std::size_t> acquired{0};
  std::vector<std::vector<LogEntry>> logs(kProcs);
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      consume(s, static_cast<topo::ProcId>(p), acquired, kTotal, seen,
              logs[p]);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "task " << i << " lost or duplicated";
  }

  // Count maximal runs of each nonzero affinity key and check spawn order
  // inside every run.
  std::size_t runs = 0;
  for (const auto& log : logs) {
    std::uint64_t cur_key = 0;
    std::uint64_t last_seq = 0;
    for (const LogEntry& e : log) {
      if (e.aff_key == 0) {
        cur_key = 0;
        continue;
      }
      if (e.aff_key != cur_key) {
        ++runs;
        cur_key = e.aff_key;
      } else {
        EXPECT_LT(last_seq, e.seq)
            << "set order broken inside a back-to-back run";
      }
      last_seq = e.seq;
    }
  }
  const SchedStats ss = s.stats();
  EXPECT_LE(runs, kSets + ss.set_steals)
      << "affinity sets interleaved beyond what whole-set steals explain";
}

// The full producer/consumer/steal mix again, but with per-mutation
// invariant checking switched on: every push, pop, steal, and adopt
// re-validates its queue while still holding the mutation's lock. This is
// the COOL_CHECK_LEVEL=paranoid contract — slower, but any structural
// corruption surfaces at the exact mutation that caused it.
TEST(SchedStress, ParanoidCheckingSurvivesConcurrentChurn) {
  util::ScopedCheckLevel lvl(util::CheckLevel::kParanoid);
  constexpr std::uint32_t kProcs = 4;
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kPerProducer = 500;
  constexpr std::size_t kTotal = kProducers * kPerProducer;

  const topo::MachineConfig machine = topo::MachineConfig::dash(kProcs);
  Policy pol;
  pol.steal_object_tasks = true;
  Scheduler s(machine, pol, [&](std::uint64_t a, topo::ProcId) {
    return flat_home(a, kProcs);
  });

  std::vector<TaskDesc> tasks(kTotal);
  std::vector<std::atomic<int>> seen(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    tasks[i].seq = i;
    const std::uint64_t obj = 0x100000ull + (i % 8) * 4096;
    switch (i % 4) {
      case 0:
        tasks[i].aff = Affinity::task(reinterpret_cast<void*>(obj));
        break;
      case 1:
        tasks[i].aff = Affinity::object(reinterpret_cast<void*>(obj));
        break;
      default:
        tasks[i].aff = Affinity::none();
        break;
    }
  }

  std::atomic<std::size_t> acquired{0};
  std::vector<std::vector<LogEntry>> logs(kProcs);
  std::vector<std::thread> threads;
  for (std::size_t pr = 0; pr < kProducers; ++pr) {
    threads.emplace_back([&, pr] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        s.place(&tasks[pr * kPerProducer + i],
                static_cast<topo::ProcId>(pr % kProcs));
      }
    });
  }
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      consume(s, static_cast<topo::ProcId>(p), acquired, kTotal, seen,
              logs[p]);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "task " << i << " lost or duplicated";
  }
  s.check_queues();
  EXPECT_FALSE(s.any_work());
}

// The same producer/consumer mix under the Average balancer: kMoveTasks
// batches race with concurrent placers and thieves, and still every task is
// acquired exactly once. (This is the TSan contract for the move path.)
TEST(SchedStress, ConcurrentAverageBalancerExactlyOnce) {
  constexpr std::uint32_t kProcs = 4;
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kPerProducer = 2000;
  constexpr std::size_t kTotal = kProducers * kPerProducer;

  const topo::MachineConfig machine = topo::MachineConfig::dash(kProcs);
  Policy pol;
  pol.balancer = BalancerKind::kAverage;
  pol.steal_object_tasks = true;
  Scheduler s(machine, pol, [&](std::uint64_t a, topo::ProcId) {
    return flat_home(a, kProcs);
  });

  std::vector<TaskDesc> tasks(kTotal);
  std::vector<std::atomic<int>> seen(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    tasks[i].seq = i;
    const std::uint64_t obj = 0x100000ull + (i % 8) * 4096;
    switch (i % 4) {
      case 0:
        tasks[i].aff = Affinity::task(reinterpret_cast<void*>(obj));
        break;
      case 1:
        tasks[i].aff = Affinity::object(reinterpret_cast<void*>(obj));
        break;
      default:
        tasks[i].aff = Affinity::none();
        break;
    }
  }

  std::atomic<std::size_t> acquired{0};
  std::vector<std::vector<LogEntry>> logs(kProcs);
  std::vector<std::thread> threads;
  for (std::size_t pr = 0; pr < kProducers; ++pr) {
    threads.emplace_back([&, pr] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        // Both producers pile onto processor 0 so over-average queues exist
        // for the whole run and the move path stays hot.
        s.place(&tasks[pr * kPerProducer + i], 0);
      }
    });
  }
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      consume(s, static_cast<topo::ProcId>(p), acquired, kTotal, seen,
              logs[p]);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "task " << i << " lost or duplicated";
  }
  EXPECT_FALSE(s.any_work());
  const SchedStats ss = s.stats();
  EXPECT_EQ(ss.spawned, kTotal);
}

// The Reserve balancer under concurrency: placements consult the hotness
// table (guarded by its own mutex) while consumers steal, with reserved
// tasks protected from cross-cluster theft. Every task still runs once.
TEST(SchedStress, ConcurrentReserveBalancerExactlyOnce) {
  constexpr std::uint32_t kProcs = 8;  // two clusters on the DASH shape
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kPerProducer = 2000;
  constexpr std::size_t kTotal = kProducers * kPerProducer;

  const topo::MachineConfig machine = topo::MachineConfig::dash(kProcs);
  Policy pol;
  pol.balancer = BalancerKind::kReserve;
  pol.steal_object_tasks = true;
  pol.reserve_refresh_tasks = 64;
  Scheduler s(machine, pol, [&](std::uint64_t a, topo::ProcId) {
    return flat_home(a, kProcs);
  });
  // Static heat: half the shared objects are hot in cluster 1, so reserved
  // and unreserved work mixes in every queue.
  s.set_hotness_source([] {
    std::vector<DataHotness> hot;
    for (int o = 0; o < 4; ++o) {
      hot.push_back({0x100000ull + static_cast<std::uint64_t>(o) * 4096, 4096,
                     1, static_cast<std::uint64_t>(100 - o)});
    }
    return hot;
  });

  std::vector<TaskDesc> tasks(kTotal);
  std::vector<std::atomic<int>> seen(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    tasks[i].seq = i;
    const std::uint64_t obj = 0x100000ull + (i % 8) * 4096;
    switch (i % 3) {
      case 0:
        tasks[i].aff = Affinity::task(reinterpret_cast<void*>(obj));
        break;
      case 1:
        tasks[i].aff = Affinity::object(reinterpret_cast<void*>(obj));
        break;
      default:
        tasks[i].aff = Affinity::none();
        break;
    }
  }

  std::atomic<std::size_t> acquired{0};
  std::vector<std::vector<LogEntry>> logs(kProcs);
  std::vector<std::thread> threads;
  for (std::size_t pr = 0; pr < kProducers; ++pr) {
    threads.emplace_back([&, pr] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        s.place(&tasks[pr * kPerProducer + i],
                static_cast<topo::ProcId>(pr % kProcs));
      }
    });
  }
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      consume(s, static_cast<topo::ProcId>(p), acquired, kTotal, seen,
              logs[p]);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "task " << i << " lost or duplicated";
  }
  EXPECT_FALSE(s.any_work());
  const SchedStats ss = s.stats();
  EXPECT_EQ(ss.spawned, kTotal);
  EXPECT_GT(ss.reserve_hits, 0u) << "the hotness table never fired";
}

// The idle protocol: a worker sleeping in wait_for_work wakes when work is
// placed, and notify_all_waiters releases a sleeper whose give-up predicate
// turns true.
TEST(SchedStress, IdleProtocolWakesSleepers) {
  const topo::MachineConfig machine = topo::MachineConfig::dash(2);
  Policy pol;
  Scheduler s(machine, pol, [&](std::uint64_t a, topo::ProcId) {
    return flat_home(a, 2);
  });

  // Sleeper on proc 1; wake it by placing a task for it.
  std::atomic<bool> got{false};
  std::thread sleeper([&] {
    for (;;) {
      const std::uint64_t seen = s.work_version();
      const auto acq = s.acquire(1);
      if (acq.task != nullptr) {
        got.store(true);
        return;
      }
      if (acq.contended) continue;
      s.wait_for_work(1, seen, [] { return false; });
    }
  });
  TaskDesc t;
  t.aff = Affinity::processor(1);
  s.place(&t, 0);
  sleeper.join();
  EXPECT_TRUE(got.load());

  // Sleeper released by notify_all_waiters once the stop flag is up.
  std::atomic<bool> stop{false};
  std::thread idler([&] {
    while (!stop.load()) {
      const std::uint64_t seen = s.work_version();
      if (s.acquire(0).task != nullptr) continue;
      s.wait_for_work(0, seen, [&] { return stop.load(); });
    }
  });
  stop.store(true);
  s.notify_all_waiters();
  idler.join();
}

}  // namespace
}  // namespace cool::sched
