// validate_policy: meaningless Policy flag combinations are rejected at
// Runtime init with a clear error instead of being silently ignored.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/runtime.hpp"
#include "sched/scheduler.hpp"

namespace cool::sched {
namespace {

topo::MachineConfig two_clusters() { return topo::MachineConfig::dash(8); }
topo::MachineConfig one_cluster() { return topo::MachineConfig::dash(4); }

TEST(ValidatePolicy, DefaultPolicyIsValid) {
  EXPECT_NO_THROW(validate_policy(Policy{}, two_clusters()));
}

TEST(ValidatePolicy, StealRefinementsNeedStealingEnabled) {
  Policy p;
  p.steal_enabled = false;
  p.steal_whole_sets = false;
  EXPECT_NO_THROW(validate_policy(p, two_clusters()));

  Policy whole = p;
  whole.steal_whole_sets = true;
  EXPECT_THROW(validate_policy(whole, two_clusters()), util::Error);

  Policy object = p;
  object.steal_object_tasks = true;
  EXPECT_THROW(validate_policy(object, two_clusters()), util::Error);

  Policy scoped = p;
  scoped.cluster_first = true;
  EXPECT_THROW(validate_policy(scoped, two_clusters()), util::Error);

  Policy capped = p;
  capped.max_steal_scan = 4;
  EXPECT_THROW(validate_policy(capped, two_clusters()), util::Error);
}

TEST(ValidatePolicy, PinnedSetStealingRequiresWholeSetStealing) {
  Policy p;
  p.steal_whole_sets = false;
  p.steal_pinned_sets = true;
  EXPECT_THROW(validate_policy(p, two_clusters()), util::Error);
}

TEST(ValidatePolicy, ClusterScopesAreMutuallyExclusive) {
  Policy p;
  p.cluster_first = true;
  p.cluster_only = true;
  EXPECT_THROW(validate_policy(p, two_clusters()), util::Error);
}

TEST(ValidatePolicy, ClusterOnlyNeedsMoreThanOneCluster) {
  Policy p;
  p.cluster_only = true;
  EXPECT_NO_THROW(validate_policy(p, two_clusters()));
  EXPECT_THROW(validate_policy(p, one_cluster()), util::Error);
}

TEST(ValidatePolicy, BalancersNeedTheStealPath) {
  Policy p;
  p.steal_enabled = false;
  p.steal_whole_sets = false;
  p.balancer = BalancerKind::kAverage;
  EXPECT_THROW(validate_policy(p, two_clusters()), util::Error);
  p.balancer = BalancerKind::kReserve;
  EXPECT_THROW(validate_policy(p, two_clusters(), true), util::Error);
}

TEST(ValidatePolicy, ReserveNeedsProfileAttribution) {
  Policy p;
  p.balancer = BalancerKind::kReserve;
  EXPECT_THROW(validate_policy(p, two_clusters()), util::Error);
  EXPECT_NO_THROW(validate_policy(p, two_clusters(), /*profile=*/true));
}

TEST(ValidatePolicy, WithinClusterBalancingNeedsAverageAndClusters) {
  Policy p;
  p.balance_within_clusters = true;
  // Meaningless for the stealing (and reserve) balancers.
  EXPECT_THROW(validate_policy(p, two_clusters()), util::Error);
  p.balancer = BalancerKind::kAverage;
  EXPECT_NO_THROW(validate_policy(p, two_clusters()));
  // On one cluster "within the cluster" is the machine level under another
  // name — reject the no-op request.
  EXPECT_THROW(validate_policy(p, one_cluster()), util::Error);
}

TEST(ValidatePolicy, RuntimeInitRejectsReserveWithoutProfile) {
  SystemConfig sc;
  sc.machine = two_clusters();
  sc.policy.balancer = BalancerKind::kReserve;
  EXPECT_THROW(Runtime rt(sc), util::Error);
  sc.profile = true;
  EXPECT_NO_THROW(Runtime rt(sc));
}

TEST(ValidatePolicy, RuntimeInitRejectsInvalidPolicy) {
  SystemConfig sc;
  sc.machine = two_clusters();
  sc.policy.steal_enabled = false;  // whole-set flag left at its default=true
  EXPECT_THROW(Runtime rt(sc), util::Error);
}

}  // namespace
}  // namespace cool::sched
