#include <gtest/gtest.h>

#include <map>

#include "sched/scheduler.hpp"

namespace cool::sched {
namespace {

class MultiObjectPlacement : public ::testing::Test {
 protected:
  MultiObjectPlacement() : machine_(topo::MachineConfig::dash()) {}

  Scheduler make(Policy p = Policy{}) {
    return Scheduler(machine_, p, [this](std::uint64_t a, topo::ProcId) {
      const auto it = homes_.find(a & ~4095ull);
      return it != homes_.end() ? it->second : topo::ProcId{0};
    });
  }

  topo::MachineConfig machine_;
  std::map<std::uint64_t, topo::ProcId> homes_;
};

TEST_F(MultiObjectPlacement, FollowsTheBytes) {
  auto s = make();
  homes_[0x10000] = 4;   // small object's page
  homes_[0x20000] = 11;  // large object's page
  TaskDesc t;
  t.aff = Affinity::objects({Affinity::ObjRef{0x10008, 128},
                             Affinity::ObjRef{0x20008, 4096}});
  EXPECT_EQ(s.place(&t, 0), 11u);
  EXPECT_EQ(s.stats().placed_multi, 1u);
}

TEST_F(MultiObjectPlacement, AggregatesBytesPerHome) {
  auto s = make();
  homes_[0x10000] = 4;
  homes_[0x20000] = 4;   // two smaller objects share a home...
  homes_[0x30000] = 11;  // ...outweighing one larger object elsewhere
  TaskDesc t;
  t.aff = Affinity::objects({Affinity::ObjRef{0x10008, 300},
                             Affinity::ObjRef{0x20008, 300},
                             Affinity::ObjRef{0x30008, 500}});
  EXPECT_EQ(s.place(&t, 0), 4u);
}

TEST_F(MultiObjectPlacement, DisabledFallsBackToFirstObject) {
  Policy p;
  p.multi_object_placement = false;
  auto s = make(p);
  homes_[0x10000] = 4;
  homes_[0x20000] = 11;
  TaskDesc t;
  t.aff = Affinity::objects({Affinity::ObjRef{0x10008, 128},
                             Affinity::ObjRef{0x20008, 4096}});
  // The paper's current behaviour: "schedule the task based on the first".
  EXPECT_EQ(s.place(&t, 0), 4u);
  EXPECT_EQ(s.stats().placed_multi, 0u);
  EXPECT_EQ(s.stats().placed_object, 1u);
}

TEST_F(MultiObjectPlacement, SingleObjectListBehavesLikeObjectAffinity) {
  auto s = make();
  homes_[0x10000] = 7;
  TaskDesc t;
  t.aff = Affinity::objects({Affinity::ObjRef{0x10008, 64}});
  EXPECT_EQ(s.place(&t, 0), 7u);
  // One object: no heuristic needed.
  EXPECT_EQ(s.stats().placed_object, 1u);
}

TEST_F(MultiObjectPlacement, ProcessorHintStillWins) {
  auto s = make();
  homes_[0x10000] = 4;
  TaskDesc t;
  t.aff = Affinity::objects({Affinity::ObjRef{0x10008, 64}});
  t.aff.proc_hint = 9;
  EXPECT_EQ(s.place(&t, 0), 9u);
}

TEST_F(MultiObjectPlacement, BaseModeIgnoresMultiToo) {
  Policy p;
  p.honor_affinity = false;
  auto s = make(p);
  homes_[0x20000] = 11;
  TaskDesc a, b;
  a.aff = Affinity::objects({Affinity::ObjRef{0x20008, 4096}});
  b.aff = a.aff;
  EXPECT_EQ(s.place(&a, 0), 0u);  // round robin
  EXPECT_EQ(s.place(&b, 0), 1u);
}

TEST_F(MultiObjectPlacement, TiesGoToFirstSeenBest) {
  auto s = make();
  homes_[0x10000] = 2;
  homes_[0x20000] = 6;
  TaskDesc t;
  t.aff = Affinity::objects({Affinity::ObjRef{0x10008, 100},
                             Affinity::ObjRef{0x20008, 100}});
  // Equal bytes: the first-listed object's home wins (stable, documented).
  EXPECT_EQ(s.place(&t, 0), 2u);
}

}  // namespace
}  // namespace cool::sched
