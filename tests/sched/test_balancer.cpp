// The hierarchical balancer layer: level enumeration, per-policy command
// generation, reserve-directed placement with cross-cluster protection, and
// schedule determinism across repeated runs.
#include "sched/balancer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/cool.hpp"
#include "sched/scheduler.hpp"
#include "topology/levels.hpp"

namespace cool::sched {
namespace {

topo::ProcId flat_home(std::uint64_t addr, std::uint32_t n_procs) {
  return static_cast<topo::ProcId>((addr >> 12) % n_procs);
}

std::deque<ServerQueues> empty_queues(std::uint32_t n, std::size_t slots) {
  std::deque<ServerQueues> q;
  for (std::uint32_t i = 0; i < n; ++i) q.emplace_back(slots);
  return q;
}

TEST(TopoLevels, EnumerationCoversMachineThenClusters) {
  const topo::MachineConfig m = topo::MachineConfig::dash(8);
  ASSERT_GT(m.n_clusters(), 1u);
  const std::vector<topo::TopoLevel> levels = topo::enumerate_levels(m);
  ASSERT_EQ(levels.size(), 1 + m.n_clusters());
  EXPECT_EQ(levels[topo::kMachineLevel].kind, topo::TopoLevel::Kind::kMachine);
  EXPECT_EQ(levels[topo::kMachineLevel].members.size(), m.n_procs);
  for (topo::ClusterId c = 0; c < m.n_clusters(); ++c) {
    const topo::TopoLevel& lvl = levels[topo::cluster_level(c)];
    EXPECT_EQ(lvl.kind, topo::TopoLevel::Kind::kCluster);
    EXPECT_EQ(lvl.cluster, c);
    EXPECT_EQ(lvl.members.size(), m.procs_per_cluster);
    for (const topo::ProcId p : lvl.members) {
      EXPECT_EQ(m.cluster_of(p), c);
      EXPECT_TRUE(lvl.contains(p));
    }
  }
}

TEST(StealingBalancer, EmitsTheClassicRingScan) {
  const topo::MachineConfig m = topo::MachineConfig::dash(8);
  const Policy pol;
  const auto levels = topo::enumerate_levels(m);
  const auto b = make_balancer(BalancerKind::kStealing,
                               levels[topo::kMachineLevel], m, pol);
  const auto queues = empty_queues(m.n_procs, pol.affinity_array_size);
  std::vector<BalanceCommand> cmds;
  b->generate(3, queues, cmds);
  ASSERT_EQ(cmds.size(), m.n_procs - 1);
  const topo::ProcId want[] = {4, 5, 6, 7, 0, 1, 2};
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    EXPECT_EQ(cmds[i].op, BalanceCommand::Op::kTrySteal);
    EXPECT_EQ(cmds[i].src, want[i]) << "ring position " << i;
  }
}

TEST(StealingBalancer, ClusterFirstSplitsTheScanAcrossLevels) {
  const topo::MachineConfig m = topo::MachineConfig::dash(8);
  Policy pol;
  pol.cluster_first = true;
  const auto levels = topo::enumerate_levels(m);
  const auto queues = empty_queues(m.n_procs, pol.affinity_array_size);

  // Cluster pass: only the thief's cluster-mates, ring order.
  const topo::ClusterId tc = m.cluster_of(1);
  const auto cl = make_balancer(BalancerKind::kStealing,
                                levels[topo::cluster_level(tc)], m, pol);
  std::vector<BalanceCommand> cmds;
  cl->generate(1, queues, cmds);
  for (const BalanceCommand& c : cmds) {
    EXPECT_EQ(m.cluster_of(c.src), tc);
    EXPECT_NE(c.src, 1u);
  }
  ASSERT_EQ(cmds.size(), m.procs_per_cluster - 1);

  // Machine pass under cluster_first: cluster-mates skipped (already probed).
  const auto mc = make_balancer(BalancerKind::kStealing,
                                levels[topo::kMachineLevel], m, pol);
  cmds.clear();
  mc->generate(1, queues, cmds);
  ASSERT_EQ(cmds.size(), m.n_procs - m.procs_per_cluster);
  for (const BalanceCommand& c : cmds) {
    EXPECT_NE(m.cluster_of(c.src), tc);
  }
}

TEST(AverageBalancer, DrainsOverAverageQueuesInOneGrab) {
  const topo::MachineConfig m = topo::MachineConfig::dash(8);
  Policy pol;
  pol.balancer = BalancerKind::kAverage;
  Scheduler s(m, pol, [&](std::uint64_t a, topo::ProcId) {
    return flat_home(a, m.n_procs);
  });

  // Pile 40 pinned tasks onto processor 0's queue.
  std::vector<TaskDesc> tasks(40);
  for (auto& t : tasks) {
    t.aff = Affinity::processor(0);
    s.place(&t, 0);
  }

  // One idle acquire from processor 5 executes a kMoveTasks command that
  // pulls queue 0 down to the ceiling average in a single grab.
  const auto acq = s.acquire(5);
  ASSERT_NE(acq.task, nullptr);
  EXPECT_TRUE(acq.moved);
  EXPECT_FALSE(acq.stolen);
  EXPECT_EQ(acq.victim, 0u);
  const SchedStats st = s.stats();
  EXPECT_GE(st.balance_commands, 1u);
  // ceil(40/8) = 5 stay on the victim; the mover got the rest.
  EXPECT_EQ(st.balance_moves, 35u);

  // Work conservation: every task still runs exactly once.
  std::size_t got = 1;
  for (topo::ProcId p = 0; got < tasks.size(); p = (p + 1) % m.n_procs) {
    if (s.acquire(p).task != nullptr) ++got;
  }
  EXPECT_FALSE(s.any_work());
}

TEST(ReserveBalancer, PlacesHotKeysOnTheOwningClusterAndProtectsThem) {
  const topo::MachineConfig m = topo::MachineConfig::dash(8);
  Policy pol;
  pol.balancer = BalancerKind::kReserve;
  pol.steal_object_tasks = true;  // Reservation, not exemption, must protect.
  pol.reserve_refresh_tasks = 1;
  Scheduler s(m, pol, [&](std::uint64_t, topo::ProcId) {
    return static_cast<topo::ProcId>(0);  // Everything homes on proc 0.
  });

  // Static heat: the object at [0x100000, 0x101000) is hot in cluster 1.
  s.set_hotness_source([] {
    return std::vector<DataHotness>{{0x100000, 0x1000, 1, 1000}};
  });

  // A task keyed inside the hot object is redirected into cluster 1 and
  // marked reserved; a task keyed elsewhere keeps its home placement.
  TaskDesc hot;
  hot.aff = Affinity::object(reinterpret_cast<void*>(0x100400));
  s.place(&hot, 0);
  EXPECT_TRUE(hot.reserved);
  EXPECT_EQ(m.cluster_of(hot.server), 1u);

  TaskDesc cold;
  cold.aff = Affinity::object(reinterpret_cast<void*>(0x900000));
  s.place(&cold, 0);
  EXPECT_FALSE(cold.reserved);
  EXPECT_EQ(cold.server, 0u);
  EXPECT_EQ(s.stats().reserve_hits, 1u);

  // Cross-cluster thieves must leave the reserved task alone; a same-cluster
  // processor may take it.
  const auto theft = s.acquire(1);  // cluster 0 thief
  ASSERT_NE(theft.task, nullptr);
  EXPECT_EQ(theft.task, &cold) << "cross-cluster thief took a reserved task";
  const auto local = s.acquire(hot.server);
  ASSERT_NE(local.task, nullptr);
  EXPECT_EQ(local.task, &hot);
}

TEST(ReserveBalancer, ColdSourceLeavesPlacementUntouched) {
  const topo::MachineConfig m = topo::MachineConfig::dash(8);
  Policy pol;
  pol.balancer = BalancerKind::kReserve;
  pol.reserve_refresh_tasks = 1;
  Scheduler s(m, pol, [&](std::uint64_t a, topo::ProcId) {
    return flat_home(a, m.n_procs);
  });
  // No hotness source installed at all: placement must behave as stealing.
  TaskDesc t;
  t.aff = Affinity::object(reinterpret_cast<void*>(0x100400));
  s.place(&t, 0);
  EXPECT_FALSE(t.reserved);
  EXPECT_EQ(t.server, flat_home(0x100400, m.n_procs));
  EXPECT_EQ(s.stats().reserve_hits, 0u);
}

TEST(Scheduler, AdaptPolicyRebuildsBalancersOnKindChange) {
  const topo::MachineConfig m = topo::MachineConfig::dash(8);
  Policy pol;
  Scheduler s(m, pol, [&](std::uint64_t a, topo::ProcId) {
    return flat_home(a, m.n_procs);
  });
  ASSERT_EQ(s.levels().size(), 1 + m.n_clusters());
  EXPECT_NE(dynamic_cast<const StealingBalancer*>(
                &s.balancer_at(topo::kMachineLevel)),
            nullptr);
  s.adapt_policy([](Policy& p) { p.balancer = BalancerKind::kAverage; });
  EXPECT_NE(dynamic_cast<const AverageBalancer*>(
                &s.balancer_at(topo::kMachineLevel)),
            nullptr);
  s.adapt_policy([](Policy& p) { p.balancer = BalancerKind::kStealing; });
  EXPECT_EQ(dynamic_cast<const AverageBalancer*>(
                &s.balancer_at(topo::kMachineLevel)),
            nullptr);
}

}  // namespace
}  // namespace cool::sched

namespace cool {
namespace {

TaskFn matrix_task(std::vector<std::atomic<int>>* slots, int i, double* blob) {
  auto& c = co_await self();
  c.read(&blob[i * 32], 256);
  c.work(150);
  (*slots)[static_cast<std::size_t>(i)].fetch_add(1);
}

struct RunDigest {
  std::uint64_t sim_time;
  std::uint64_t steals;
  std::uint64_t balance_commands;
  std::uint64_t balance_moves;
  std::uint64_t reserve_hits;
};

/// One full simulated run of a mixed-affinity workload under `pol`.
RunDigest run_once(const sched::Policy& pol, bool profile) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(16);
  sc.policy = pol;
  sc.profile = profile;
  Runtime rt(sc);
  const int n = 200;
  double* blob = rt.alloc_array<double>(32 * static_cast<std::size_t>(n), 0);
  std::vector<std::atomic<int>> slots(static_cast<std::size_t>(n));
  rt.profile_register("blob", blob, 32 * sizeof(double) *
                                        static_cast<std::size_t>(n));
  rt.run([](std::vector<std::atomic<int>>* s, double* b, int count) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < count; ++i) {
      const Affinity aff = i % 2 == 0 ? Affinity::object(&b[i * 32])
                                      : Affinity::task(&b[(i % 7) * 32]);
      c.spawn(aff, waitfor, matrix_task(s, i, b));
    }
    co_await c.wait(waitfor);
  }(&slots, blob, n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(slots[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
  const auto ss = rt.sched_stats();
  return {rt.sim_time(), ss.steals, ss.balance_commands, ss.balance_moves,
          ss.reserve_hits};
}

/// Identical runs must produce identical schedules — the balancer layer adds
/// no nondeterminism under the single-threaded simulation engine.
TEST(BalancerDeterminism, RepeatedRunsProduceIdenticalSchedules) {
  for (const sched::BalancerKind kind :
       {sched::BalancerKind::kStealing, sched::BalancerKind::kAverage,
        sched::BalancerKind::kReserve}) {
    sched::Policy pol;
    pol.balancer = kind;
    pol.steal_object_tasks = true;
    pol.reserve_refresh_tasks = 16;
    const bool profile = kind == sched::BalancerKind::kReserve;
    const RunDigest a = run_once(pol, profile);
    const RunDigest b = run_once(pol, profile);
    const char* name = sched::balancer_kind_name(kind);
    EXPECT_EQ(a.sim_time, b.sim_time) << name;
    EXPECT_EQ(a.steals, b.steals) << name;
    EXPECT_EQ(a.balance_commands, b.balance_commands) << name;
    EXPECT_EQ(a.balance_moves, b.balance_moves) << name;
    EXPECT_EQ(a.reserve_hits, b.reserve_hits) << name;
  }
}

}  // namespace
}  // namespace cool
