#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/error.hpp"

namespace cool::sched {
namespace {

// A home resolver mapping addresses to processors by page, round-robin.
struct FakeHome {
  topo::MachineConfig machine;
  std::map<std::uint64_t, topo::ProcId> fixed;

  topo::ProcId operator()(std::uint64_t addr, topo::ProcId toucher) const {
    const auto it = fixed.find(addr & ~4095ull);
    if (it != fixed.end()) return it->second;
    return toucher;
  }
};

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : machine_(topo::MachineConfig::dash()) {}

  Scheduler make(Policy p = Policy{}) {
    return Scheduler(machine_, p, [this](std::uint64_t a, topo::ProcId t) {
      return home_(a, t);
    });
  }

  topo::MachineConfig machine_;
  FakeHome home_{topo::MachineConfig::dash(), {}};
};

TEST_F(SchedulerTest, ProcessorAffinityModuloP) {
  auto s = make();
  TaskDesc t;
  t.aff = Affinity::processor(35);  // 35 mod 32 == 3
  EXPECT_EQ(s.place(&t, 0), 3u);
  EXPECT_EQ(s.stats().placed_processor, 1u);
}

TEST_F(SchedulerTest, ObjectAffinityGoesHome) {
  auto s = make();
  home_.fixed[0x10000] = 17;
  TaskDesc t;
  t.aff = Affinity::object(reinterpret_cast<void*>(0x10008));
  EXPECT_EQ(s.place(&t, 0), 17u);
  EXPECT_EQ(s.stats().placed_object, 1u);
}

TEST_F(SchedulerTest, TaskAffinityGoesToTaskObjectHome) {
  auto s = make();
  home_.fixed[0x20000] = 9;
  TaskDesc t;
  t.aff = Affinity::task(reinterpret_cast<void*>(0x20010));
  EXPECT_EQ(s.place(&t, 0), 9u);
  EXPECT_EQ(s.stats().placed_task, 1u);
  EXPECT_NE(t.aff_key, 0u);
}

TEST_F(SchedulerTest, TaskObjectUsesObjectForServerTaskForKey) {
  auto s = make();
  home_.fixed[0x20000] = 9;
  home_.fixed[0x30000] = 21;
  TaskDesc t;
  t.aff = Affinity::task_object(reinterpret_cast<void*>(0x20010),
                                reinterpret_cast<void*>(0x30010));
  EXPECT_EQ(s.place(&t, 0), 21u);  // OBJECT decides the server.
  EXPECT_EQ(t.aff_key, 0x20010ull / machine_.line_bytes);  // TASK decides set.
}

TEST_F(SchedulerTest, NoHintsStayLocal) {
  auto s = make();
  TaskDesc t;
  EXPECT_EQ(s.place(&t, 13), 13u);
  EXPECT_EQ(s.stats().placed_local, 1u);
}

TEST_F(SchedulerTest, BaseModeIgnoresHintsRoundRobin) {
  Policy p;
  p.honor_affinity = false;
  auto s = make(p);
  home_.fixed[0x10000] = 17;
  std::vector<topo::ProcId> servers;
  std::vector<TaskDesc> tasks(4);
  for (TaskDesc& t : tasks) {
    t.aff = Affinity::object(reinterpret_cast<void*>(0x10008));
    servers.push_back(s.place(&t, 0));
  }
  EXPECT_EQ(servers, (std::vector<topo::ProcId>{0, 1, 2, 3}));
  EXPECT_EQ(s.stats().placed_round_robin, 4u);
}

TEST_F(SchedulerTest, AcquirePrefersLocal) {
  auto s = make();
  TaskDesc t;
  s.place(&t, 5);
  const auto acq = s.acquire(5);
  EXPECT_EQ(acq.task, &t);
  EXPECT_FALSE(acq.stolen);
}

TEST_F(SchedulerTest, IdleProcessorSteals) {
  auto s = make();
  TaskDesc t;
  s.place(&t, 5);
  const auto acq = s.acquire(20);
  EXPECT_EQ(acq.task, &t);
  EXPECT_TRUE(acq.stolen);
  EXPECT_TRUE(acq.stolen_remote_cluster);  // 20 and 5 are in other clusters.
  EXPECT_EQ(s.stats().remote_cluster_steals, 1u);
}

TEST_F(SchedulerTest, StealDisabled) {
  Policy p;
  p.steal_enabled = false;
  auto s = make(p);
  TaskDesc t;
  s.place(&t, 5);
  EXPECT_EQ(s.acquire(20).task, nullptr);
  EXPECT_TRUE(s.any_work());
}

TEST_F(SchedulerTest, ClusterOnlyNeverLeavesCluster) {
  Policy p;
  p.cluster_only = true;
  auto s = make(p);
  TaskDesc t;
  s.place(&t, 5);  // cluster 1
  EXPECT_EQ(s.acquire(20).task, nullptr);  // cluster 5: may not steal
  const auto acq = s.acquire(6);           // cluster 1: may
  EXPECT_EQ(acq.task, &t);
  EXPECT_FALSE(acq.stolen_remote_cluster);
}

TEST_F(SchedulerTest, ClusterFirstPrefersNearVictim) {
  Policy p;
  p.cluster_first = true;
  auto s = make(p);
  TaskDesc near_t, far_t;
  s.place(&near_t, 6);  // cluster 1 (thief will be proc 5)
  s.place(&far_t, 20);  // cluster 5
  const auto acq = s.acquire(5);
  EXPECT_EQ(acq.task, &near_t);
  EXPECT_FALSE(acq.stolen_remote_cluster);
  // Far work still reachable once the cluster is dry.
  const auto acq2 = s.acquire(5);
  EXPECT_EQ(acq2.task, &far_t);
  EXPECT_TRUE(acq2.stolen_remote_cluster);
}

TEST_F(SchedulerTest, ObjectTasksNotStolenWhenPolicyForbids) {
  Policy p;
  p.steal_object_tasks = false;
  auto s = make(p);
  TaskDesc t;
  t.aff = Affinity::object(reinterpret_cast<void*>(0x10008));
  home_.fixed[0x10000] = 5;
  s.place(&t, 0);
  EXPECT_EQ(s.acquire(20).task, nullptr);  // cannot steal it
  EXPECT_EQ(s.acquire(5).task, &t);        // owner still runs it
}

TEST_F(SchedulerTest, WholeSetStealMovesSetTogether) {
  auto s = make();
  home_.fixed[0x20000] = 5;
  std::vector<TaskDesc> tasks(3);
  for (auto& t : tasks) {
    t.aff = Affinity::task(reinterpret_cast<void*>(0x20010));
    s.place(&t, 0);
  }
  const auto acq = s.acquire(20);
  ASSERT_NE(acq.task, nullptr);
  EXPECT_TRUE(acq.stolen);
  EXPECT_EQ(s.stats().set_steals, 1u);
  // The rest of the set is now local to the thief.
  EXPECT_TRUE(s.has_local_work(20));
  EXPECT_FALSE(s.acquire(20).stolen);
}

TEST_F(SchedulerTest, ResumedGoesToFrontOfItsServer) {
  auto s = make();
  TaskDesc a, b;
  s.place(&a, 5);
  b.server = 5;
  s.enqueue_resumed(&b);
  EXPECT_EQ(s.acquire(5).task, &b);
  EXPECT_EQ(s.acquire(5).task, &a);
}

TEST_F(SchedulerTest, TotalQueuedCounts) {
  auto s = make();
  TaskDesc a, b;
  s.place(&a, 1);
  s.place(&b, 2);
  EXPECT_EQ(s.total_queued(), 2u);
  s.acquire(1);
  EXPECT_EQ(s.total_queued(), 1u);
}

TEST_F(SchedulerTest, BadArgsThrow) {
  auto s = make();
  TaskDesc t;
  EXPECT_THROW(s.place(nullptr, 0), util::Error);
  EXPECT_THROW(s.place(&t, 99), util::Error);
  EXPECT_THROW(s.acquire(99), util::Error);
}

// Property: with honor_affinity and random object homes, every task placed by
// OBJECT affinity is dequeued by its home processor when that processor
// drains it (no stealing).
class PlacementProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlacementProperty, ObjectPlacementMatchesHome) {
  const int n = GetParam();
  topo::MachineConfig machine = topo::MachineConfig::dash();
  std::map<std::uint64_t, topo::ProcId> homes;
  Policy pol;
  pol.steal_enabled = false;
  Scheduler s(machine, pol, [&](std::uint64_t a, topo::ProcId) {
    return homes.count(a & ~4095ull) ? homes[a & ~4095ull] : 0;
  });
  std::vector<TaskDesc> tasks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t page = 0x100000ull + static_cast<std::uint64_t>(i) * 4096;
    homes[page] = static_cast<topo::ProcId>((i * 7) % 32);
    tasks[static_cast<std::size_t>(i)].aff =
        Affinity::object(reinterpret_cast<void*>(page + 8));
    const auto server = s.place(&tasks[static_cast<std::size_t>(i)], 0);
    EXPECT_EQ(server, homes[page]);
  }
  // Drain: each task comes off its own home's queue.
  std::size_t drained = 0;
  for (topo::ProcId p = 0; p < machine.n_procs; ++p) {
    while (auto* t = s.acquire(p).task) {
      EXPECT_EQ(t->server, p);
      ++drained;
    }
  }
  EXPECT_EQ(drained, static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlacementProperty,
                         ::testing::Values(1, 10, 100, 1000));

}  // namespace
}  // namespace cool::sched
