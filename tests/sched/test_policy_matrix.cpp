// Property test across the scheduling-policy space: whatever the policy,
// every spawned task must execute exactly once, the program result must be
// unchanged, and policy-specific invariants (cluster confinement, pin
// respect) must hold.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/cool.hpp"

namespace cool {
namespace {

struct PolicyCase {
  std::string name;
  sched::Policy pol;
};

std::vector<PolicyCase> policy_matrix() {
  std::vector<PolicyCase> cases;
  sched::Policy base;
  cases.push_back({"default", base});
  {
    auto p = base;
    p.steal_enabled = false;
    p.steal_whole_sets = false;  // validate_policy: no steal flags without
                                 // steal_enabled.
    cases.push_back({"no_steal", p});
  }
  {
    auto p = base;
    p.steal_whole_sets = false;
    cases.push_back({"no_set_steal", p});
  }
  {
    auto p = base;
    p.steal_object_tasks = true;
    p.steal_pinned_sets = true;
    cases.push_back({"steal_everything", p});
  }
  {
    auto p = base;
    p.cluster_first = true;
    cases.push_back({"cluster_first", p});
  }
  {
    auto p = base;
    p.steal_object_tasks = true;
    p.steal_pinned_sets = true;
    p.cluster_only = true;
    cases.push_back({"cluster_only", p});
  }
  {
    auto p = base;
    p.honor_affinity = false;
    cases.push_back({"base_mode", p});
  }
  {
    auto p = base;
    p.affinity_array_size = 1;
    cases.push_back({"tiny_array", p});
  }
  {
    auto p = base;
    p.affinity_array_size = 509;
    cases.push_back({"huge_array", p});
  }
  {
    auto p = base;
    p.balancer = sched::BalancerKind::kAverage;
    cases.push_back({"average_balancer", p});
  }
  {
    auto p = base;
    p.balancer = sched::BalancerKind::kAverage;
    p.balance_within_clusters = true;
    cases.push_back({"average_clustered", p});
  }
  {
    auto p = base;
    p.balancer = sched::BalancerKind::kReserve;  // Runtime built with the
                                                 // profiler attached below.
    cases.push_back({"reserve_balancer", p});
  }
  return cases;
}

TaskFn mixed_task(std::vector<std::atomic<int>>* slots, int i, double* blob) {
  auto& c = co_await self();
  c.read(&blob[i * 32], 256);
  c.work(200);
  (*slots)[static_cast<std::size_t>(i)].fetch_add(1);
}

class PolicyMatrix : public ::testing::TestWithParam<int> {};

TEST_P(PolicyMatrix, EveryTaskRunsOnceUnderEveryPolicy) {
  const PolicyCase pc =
      policy_matrix()[static_cast<std::size_t>(GetParam())];
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(16);
  sc.policy = pc.pol;
  // The reserve balancer needs the profiler as its hotness sensor.
  sc.profile = pc.pol.balancer == sched::BalancerKind::kReserve;
  Runtime rt(sc);
  const int n = 300;
  double* blob = rt.alloc_array<double>(32 * static_cast<std::size_t>(n), 0);
  // Spread homes.
  for (int i = 0; i < n; ++i) {
    rt.migrate(&blob[i * 32], i % 16, 256);
  }
  std::vector<std::atomic<int>> slots(static_cast<std::size_t>(n));

  rt.run([](std::vector<std::atomic<int>>* s, double* b, int count) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < count; ++i) {
      Affinity aff;
      switch (i % 4) {
        case 0:
          aff = Affinity::none();
          break;
        case 1:
          aff = Affinity::object(&b[i * 32]);
          break;
        case 2:
          aff = Affinity::task(&b[(i % 9) * 32]);
          break;
        default:
          aff = Affinity::processor(i);
          break;
      }
      c.spawn(aff, waitfor, mixed_task(s, i, b));
    }
    co_await c.wait(waitfor);
  }(&slots, blob, n));

  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(slots[static_cast<std::size_t>(i)].load(), 1)
        << pc.name << " task " << i;
  }
  EXPECT_EQ(rt.tasks_completed(), static_cast<std::uint64_t>(n) + 1)
      << pc.name;

  const auto& ss = rt.sched_stats();
  if (!pc.pol.steal_enabled) {
    EXPECT_EQ(ss.tasks_stolen, 0u) << pc.name;
  }
  if (pc.pol.cluster_only) {
    EXPECT_EQ(ss.remote_cluster_steals, 0u) << pc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyMatrix,
                         ::testing::Range(0, 12), [](const auto& pinfo) {
                           return policy_matrix()
                               [static_cast<std::size_t>(pinfo.param)]
                                   .name;
                         });

TEST(PolicyMatrixReport, ReportMentionsKeyNumbers) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(8);
  Runtime rt(sc);
  rt.run([]() -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 16; ++i) {
      c.spawn(Affinity::none(), waitfor, []() -> TaskFn {
        auto& cc = co_await self();
        cc.work(500);
      }());
    }
    co_await c.wait(waitfor);
  }());
  const std::string rep = rt.report();
  EXPECT_NE(rep.find("tasks completed: 17"), std::string::npos) << rep;
  EXPECT_NE(rep.find("simulated DASH"), std::string::npos);
  EXPECT_NE(rep.find("load balance"), std::string::npos);
}

}  // namespace
}  // namespace cool
