#include "sched/queues.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cool::sched {
namespace {

TaskDesc make_task(std::uint64_t seq, Affinity aff = Affinity::none()) {
  TaskDesc t;
  t.seq = seq;
  t.aff = aff;
  if (aff.has_task()) t.aff_key = aff.task_obj / 16;
  return t;
}

TEST(ServerQueues, EmptyPopsNull) {
  ServerQueues q(8);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_EQ(q.steal_object_task(), nullptr);
  EXPECT_TRUE(q.steal_set().empty());
}

TEST(ServerQueues, ObjectQueueFifo) {
  ServerQueues q(8);
  TaskDesc a = make_task(1), b = make_task(2), c = make_task(3);
  q.push(&a);
  q.push(&b);
  q.push(&c);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop()->seq, 1u);
  EXPECT_EQ(q.pop()->seq, 2u);
  EXPECT_EQ(q.pop()->seq, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(ServerQueues, ResumedTasksJumpTheLine) {
  ServerQueues q(8);
  TaskDesc a = make_task(1), b = make_task(2);
  q.push(&a);
  q.push_resumed(&b);
  EXPECT_EQ(q.pop()->seq, 2u);
  EXPECT_EQ(q.pop()->seq, 1u);
}

TEST(ServerQueues, AffinitySetsServicedBackToBack) {
  ServerQueues q(64);
  alignas(64) int objA = 0;
  alignas(64) int objB = 0;
  // Interleave spawns from two affinity sets.
  std::vector<TaskDesc> tasks;
  tasks.reserve(6);
  for (int i = 0; i < 3; ++i) {
    tasks.push_back(make_task(2 * static_cast<std::uint64_t>(i),
                              Affinity::task(&objA)));
    tasks.push_back(make_task(2 * static_cast<std::uint64_t>(i) + 1,
                              Affinity::task(&objB)));
  }
  ServerQueues q2(64);
  for (auto& t : tasks) q2.push(&t);

  // Dequeue order must drain one whole set before the other.
  std::vector<std::uint64_t> keys;
  while (TaskDesc* t = q2.pop()) keys.push_back(t->aff_key);
  ASSERT_EQ(keys.size(), 6u);
  EXPECT_EQ(keys[0], keys[1]);
  EXPECT_EQ(keys[1], keys[2]);
  EXPECT_EQ(keys[3], keys[4]);
  EXPECT_EQ(keys[4], keys[5]);
  EXPECT_NE(keys[0], keys[3]);
  (void)q;
}

TEST(ServerQueues, AffinityBeforeObjectQueue) {
  ServerQueues q(8);
  int obj = 0;
  TaskDesc plain = make_task(1);
  TaskDesc aff = make_task(2, Affinity::task(&obj));
  q.push(&plain);
  q.push(&aff);
  EXPECT_EQ(q.pop()->seq, 2u);  // Affinity sets drain first.
  EXPECT_EQ(q.pop()->seq, 1u);
}

TEST(ServerQueues, StealSetTakesWholeSet) {
  ServerQueues q(64);
  alignas(64) int objA = 0;
  alignas(64) int objB = 0;
  std::vector<TaskDesc> tasks;
  tasks.reserve(4);
  tasks.push_back(make_task(0, Affinity::task(&objA)));
  tasks.push_back(make_task(1, Affinity::task(&objA)));
  tasks.push_back(make_task(2, Affinity::task(&objB)));
  tasks.push_back(make_task(3, Affinity::task(&objB)));
  ServerQueues v(64);
  for (auto& t : tasks) v.push(&t);

  const auto set = v.steal_set();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0]->aff_key, set[1]->aff_key);
  EXPECT_TRUE(set[0]->stolen);
  EXPECT_EQ(v.size(), 2u);
  (void)q;
}

TEST(ServerQueues, StealSetAvoidsActiveSet) {
  ServerQueues q(64);
  alignas(64) int objA = 0;
  alignas(64) int objB = 0;
  TaskDesc a1 = make_task(0, Affinity::task(&objA));
  TaskDesc a2 = make_task(1, Affinity::task(&objA));
  TaskDesc b1 = make_task(2, Affinity::task(&objB));
  q.push(&a1);
  q.push(&a2);
  q.push(&b1);
  // Owner starts draining set A.
  TaskDesc* first = q.pop();
  ASSERT_EQ(first, &a1);
  // Thief should get set B, not the remainder of A.
  const auto set = q.steal_set();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], &b1);
  // Owner continues with a2 back-to-back.
  EXPECT_EQ(q.pop(), &a2);
}

TEST(ServerQueues, StealObjectTaskFromBack) {
  ServerQueues q(8);
  TaskDesc a = make_task(1), b = make_task(2);
  q.push(&a);
  q.push(&b);
  TaskDesc* t = q.steal_object_task();
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->seq, 2u);  // Steal the youngest; owner keeps the oldest.
  EXPECT_TRUE(t->stolen);
  EXPECT_EQ(q.pop()->seq, 1u);
}

TEST(ServerQueues, AdoptKeepsSetTogether) {
  ServerQueues victim(64), thief(64);
  int obj = 0;
  std::vector<TaskDesc> tasks;
  tasks.reserve(3);
  for (int i = 0; i < 3; ++i) {
    tasks.push_back(make_task(static_cast<std::uint64_t>(i),
                              Affinity::task(&obj)));
  }
  for (auto& t : tasks) victim.push(&t);
  const auto set = victim.steal_set();
  thief.adopt(set, 5);
  EXPECT_EQ(thief.size(), 3u);
  for (auto* t : set) EXPECT_EQ(t->server, 5u);
  // FIFO order preserved inside the set.
  EXPECT_EQ(thief.pop()->seq, 0u);
  EXPECT_EQ(thief.pop()->seq, 1u);
  EXPECT_EQ(thief.pop()->seq, 2u);
}

TEST(ServerQueues, CollisionsShareOneQueue) {
  // Array of size 1: every affinity set collides on the same queue.
  ServerQueues q(1);
  int objA = 0, objB = 0;
  TaskDesc a = make_task(0, Affinity::task(&objA));
  TaskDesc b = make_task(1, Affinity::task(&objB));
  q.push(&a);
  q.push(&b);
  EXPECT_EQ(q.n_nonempty_affinity_queues(), 1u);
  EXPECT_EQ(q.pop()->seq, 0u);
  EXPECT_EQ(q.pop()->seq, 1u);
}

TEST(ServerQueues, NonemptyTracking) {
  ServerQueues q(64);
  int obj = 0;
  TaskDesc a = make_task(0, Affinity::task(&obj));
  EXPECT_EQ(q.n_nonempty_affinity_queues(), 0u);
  q.push(&a);
  EXPECT_EQ(q.n_nonempty_affinity_queues(), 1u);
  q.pop();
  EXPECT_EQ(q.n_nonempty_affinity_queues(), 0u);
}

TEST(ServerQueues, ZeroSlotArrayThrows) {
  EXPECT_THROW(ServerQueues(0), util::Error);
}

}  // namespace
}  // namespace cool::sched
