// Locality profiler + advisor tests: attribution bookkeeping, the
// paper-style diagnosis rules, the zero-perturbation guarantee, and the
// sum-to-PerfMonitor invariant on a real application run (Ocean, Fig. 7).
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/ocean/ocean.hpp"
#include "core/cool.hpp"
#include "obs/advisor.hpp"

namespace cool {
namespace {

TEST(HintClass, ClassifyMatchesAffinityTaxonomy) {
  using obs::HintClass;
  EXPECT_EQ(obs::classify_hint(false, false, false, false), HintClass::kNone);
  EXPECT_EQ(obs::classify_hint(false, true, false, false), HintClass::kObject);
  EXPECT_EQ(obs::classify_hint(true, false, false, false), HintClass::kTask);
  EXPECT_EQ(obs::classify_hint(true, true, false, false),
            HintClass::kTaskObject);
  EXPECT_EQ(obs::classify_hint(false, false, true, false),
            HintClass::kProcessor);
  EXPECT_EQ(obs::classify_hint(true, false, true, false),
            HintClass::kProcessorTask);
  EXPECT_EQ(obs::classify_hint(false, true, false, true), HintClass::kMulti);
  EXPECT_TRUE(obs::hint_has_task_affinity(HintClass::kTask));
  EXPECT_TRUE(obs::hint_has_task_affinity(HintClass::kTaskObject));
  EXPECT_TRUE(obs::hint_has_task_affinity(HintClass::kProcessorTask));
  EXPECT_FALSE(obs::hint_has_task_affinity(HintClass::kObject));
  EXPECT_FALSE(obs::hint_has_task_affinity(HintClass::kProcessor));
}

TEST(LocalityProfiler, RejectsOverlappingRegistrations) {
  obs::LocalityProfiler prof(topo::MachineConfig::dash(4));
  EXPECT_TRUE(prof.register_object("a", 0x1000, 0x100, 0));
  EXPECT_FALSE(prof.register_object("tail-overlap", 0x10f0, 0x100, 0));
  EXPECT_FALSE(prof.register_object("head-overlap", 0x0f80, 0x100, 0));
  EXPECT_FALSE(prof.register_object("inside", 0x1040, 0x10, 0));
  EXPECT_TRUE(prof.register_object("b", 0x1100, 0x100, 0));
  EXPECT_EQ(prof.n_registered(), 2u);
}

TEST(LocalityProfiler, AttributesAccessesAndAnonymousBuckets) {
  const auto machine = topo::MachineConfig::dash(8);
  obs::LocalityProfiler prof(machine);
  ASSERT_TRUE(prof.register_object("obj", 0x1000, 0x100, 0));

  // One registered hit (remote mem, issued by proc 4 = cluster 1, serviced
  // by proc 0's memory = cluster 0) and one unregistered access.
  prof.on_access(mem::AccessInfo{4, 0x1010, mem::Service::kRemoteMem, false,
                                 100, 0});
  prof.on_access(mem::AccessInfo{0, 0x40000000, mem::Service::kL1Hit, true,
                                 1, 0});

  const obs::ProfileSnapshot p = prof.snapshot();
  ASSERT_EQ(p.objects.size(), 2u);
  const auto& obj = p.objects[0];
  EXPECT_EQ(obj.name, "obj");
  EXPECT_FALSE(obj.anonymous);
  EXPECT_EQ(obj.s.reads, 1u);
  EXPECT_EQ(obj.s.serviced[3], 1u);
  EXPECT_EQ(obj.s.stall_cycles, 100u);
  EXPECT_EQ(obj.s.remote_stall_cycles, 100u);
  ASSERT_EQ(obj.miss_from_cluster.size(), 2u);
  EXPECT_EQ(obj.miss_from_cluster[1], 1u);  // Issued by cluster 1.
  EXPECT_EQ(obj.miss_home_cluster[0], 1u);  // Serviced by cluster 0.

  const auto& anon = p.objects[1];
  EXPECT_TRUE(anon.anonymous);
  EXPECT_EQ(anon.s.writes, 1u);
  EXPECT_EQ(anon.s.serviced[0], 1u);

  // The total row covers everything, anonymous traffic included.
  EXPECT_EQ(p.total.accesses(), 2u);
  EXPECT_EQ(p.total.stall_cycles, 101u);
}

// The acceptance scenario: one mis-homed object plus one task-affinity set
// split by stealing. Built deterministically from attribution rows; the
// advisor must name both and make the right suggestion for each.
TEST(Advisor, NamesMisHomedObjectAndSplitSet) {
  obs::ProfileSnapshot p;
  p.n_procs = 8;
  p.n_clusters = 2;

  obs::ProfileSnapshot::ObjectRow grid;
  grid.name = "grid";
  grid.addr = 0x1000;
  grid.bytes = 1 << 20;
  grid.home = 0;  // Lives in cluster 0...
  grid.s.reads = 4000;
  grid.s.serviced[0] = 3000;
  grid.s.serviced[3] = 1000;  // ...but every miss is serviced remotely.
  grid.s.stall_cycles = 120000;
  grid.s.remote_stall_cycles = 110000;
  grid.miss_from_cluster = {50, 950};   // Used almost only by cluster 1.
  grid.miss_home_cluster = {1000, 0};
  p.objects.push_back(grid);
  p.total = grid.s;

  obs::ProfileSnapshot::SetRow set;
  set.key = 0x2000;
  set.label = "wavefront";
  set.hint = obs::HintClass::kObject;  // Shares data but has no TASK hint.
  set.tasks = 16;
  set.stolen = 9;
  set.procs = {0, 1, 2, 3};
  set.s.reads = 2000;
  set.s.serviced[3] = 200;
  set.s.stall_cycles = 90000;
  set.s.remote_stall_cycles = 80000;
  p.sets.push_back(set);

  const std::vector<obs::Advice> advice = obs::advise(p, obs::Snapshot{});
  ASSERT_EQ(advice.size(), 2u);

  // Sorted by weight: the object's 110k remote-stall outranks the set's 90k.
  EXPECT_EQ(advice[0].kind, obs::AdviceKind::kMigrateObject);
  EXPECT_EQ(advice[0].subject, "grid");
  EXPECT_NE(advice[0].suggestion.find("migrate 'grid' to cluster 1"),
            std::string::npos);

  EXPECT_EQ(advice[1].kind, obs::AdviceKind::kTaskAffinity);
  EXPECT_EQ(advice[1].subject, "wavefront");
  EXPECT_NE(advice[1].suggestion.find("TASK affinity"), std::string::npos);

  // The report and JSON both carry the findings.
  const std::string rep = obs::advice_report(advice);
  EXPECT_NE(rep.find("migrate-object: grid"), std::string::npos);
  EXPECT_NE(rep.find("task-affinity: wavefront"), std::string::npos);
  EXPECT_NE(obs::advice_json(advice).find("\"subject\":\"grid\""),
            std::string::npos);
}

TEST(Advisor, SplitTaskAffinitySetSuggestsWholeSetStealing) {
  obs::ProfileSnapshot p;
  p.n_procs = 8;
  p.n_clusters = 2;
  obs::ProfileSnapshot::SetRow set;
  set.key = 0x3000;
  set.label = "col[7]";
  set.hint = obs::HintClass::kTaskObject;  // Already has TASK affinity.
  set.tasks = 12;
  set.stolen = 5;
  set.procs = {2, 3, 6};
  set.s.stall_cycles = 5000;
  p.sets.push_back(set);

  const auto advice = obs::advise(p, obs::Snapshot{});
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].kind, obs::AdviceKind::kWholeSetStealing);
  EXPECT_EQ(advice[0].subject, "col[7]");
  EXPECT_NE(advice[0].suggestion.find("steal_whole_sets"), std::string::npos);
}

TEST(Advisor, QuietProfileYieldsNoAdvice) {
  obs::ProfileSnapshot p;
  p.n_procs = 4;
  p.n_clusters = 1;
  obs::ProfileSnapshot::ObjectRow o;
  o.name = "cold";
  o.s.reads = 10;  // Below min_misses; no misses at all.
  o.s.serviced[0] = 10;
  p.objects.push_back(o);
  EXPECT_TRUE(obs::advise(p, obs::Snapshot{}).empty());
  EXPECT_NE(obs::advice_report({}).find("no advice"), std::string::npos);
}

TEST(Advisor, FlagsStealStormAndIdleImbalance) {
  obs::Snapshot m;
  m.values["sched.failed_steal_scans"] = 10000;
  m.values["sched.steals"] = 100;
  m.values["proc.busy_cycles"] = 1000;
  m.values["proc.idle_cycles"] = 9000;
  const auto advice = obs::advise(obs::ProfileSnapshot{}, m);
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_EQ(advice[0].kind, obs::AdviceKind::kStealStorm);
  EXPECT_EQ(advice[1].kind, obs::AdviceKind::kIdleImbalance);
}

// End-to-end: a processor-affinity workload that uses a cluster-0-homed
// array exclusively from cluster 1 must surface as migrate advice, with the
// object named, straight off the live runtime.
TEST(ProfilerLive, MisHomedObjectGetsMigrateAdvice) {
  SystemConfig cfg;
  cfg.machine = topo::MachineConfig::dash(8);
  cfg.profile = true;
  Runtime rt(cfg);

  const std::size_t n = 8192;
  double* hot = rt.alloc_array<double>(n, /*home=*/0);
  ASSERT_TRUE(rt.profile_register("hot", hot, n * sizeof(double)));

  rt.run([](double* arr, std::size_t total) -> TaskFn {
    auto& c = co_await self();
    TaskGroup g;
    const std::size_t slice = total / 8;
    for (int t = 0; t < 8; ++t) {
      // All users pinned to cluster 1 (procs 4..7); disjoint slices so every
      // miss is serviced by the mis-placed home memory, not a peer cache.
      c.spawn(Affinity::processor(4 + t % 4), g,
              [](double* part, std::size_t len) -> TaskFn {
                auto& cc = co_await self();
                cc.update(part, len * sizeof(double));
              }(arr + t * slice, slice));
    }
    co_await c.wait(g);
  }(hot, n));

  const obs::ProfileSnapshot p = rt.profile_snapshot();
  ASSERT_FALSE(p.objects.empty());
  EXPECT_EQ(p.objects[0].name, "hot");
  EXPECT_GT(p.objects[0].s.misses(), 64u);

  const auto advice = obs::advise(p, rt.obs_snapshot());
  bool migrate_hot = false;
  for (const auto& a : advice) {
    if (a.kind == obs::AdviceKind::kMigrateObject && a.subject == "hot") {
      migrate_hot = true;
      EXPECT_NE(a.suggestion.find("cluster 1"), std::string::npos);
    }
  }
  EXPECT_TRUE(migrate_hot);
}

// Fig. 7 invariant: the per-object breakdown (anonymous buckets included)
// must sum exactly to the PerfMonitor aggregates for the same run.
TEST(ProfilerLive, OceanBreakdownSumsToPerfMonitor) {
  using namespace cool::apps::ocean;
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(8);
  sc.profile = true;
  Runtime rt(sc);

  Config cfg;
  cfg.n = 64;
  cfg.grids = 2;
  cfg.steps = 2;
  cfg.variant = Variant::kDistr;
  const Result r = run(rt, cfg);

  const obs::ProfileSnapshot p = rt.profile_snapshot();
  ASSERT_FALSE(p.objects.empty());

  obs::AccessStats sum;
  bool saw_named = false;
  for (const auto& o : p.objects) {
    sum.add(o.s);
    if (!o.anonymous) saw_named = true;
  }
  EXPECT_TRUE(saw_named);  // grid[g]/scratch registrations took effect.

  const auto& mem = r.run.mem;
  EXPECT_EQ(sum.reads, mem.reads);
  EXPECT_EQ(sum.writes, mem.writes);
  for (int i = 0; i < mem::kNumServices; ++i) {
    EXPECT_EQ(sum.serviced[i], mem.serviced[i]) << "service class " << i;
  }
  EXPECT_EQ(sum.stall_cycles, mem.latency_cycles);
  // The snapshot's own total row agrees with the recomputed sum.
  EXPECT_EQ(p.total.accesses(), sum.accesses());
  EXPECT_EQ(p.total.stall_cycles, sum.stall_cycles);
}

// Turning the profiler on must not change the simulation: identical cycle
// counts and results with and without it.
TEST(ProfilerLive, ProfilingDoesNotPerturbSimulatedTime) {
  using namespace cool::apps::ocean;
  auto run_ocean = [](bool profile) {
    SystemConfig sc;
    sc.machine = topo::MachineConfig::dash(8);
    sc.profile = profile;
    Runtime rt(sc);
    Config cfg;
    cfg.n = 64;
    cfg.grids = 2;
    cfg.steps = 2;
    cfg.variant = Variant::kDistr;
    const Result r = run(rt, cfg);
    return std::pair<std::uint64_t, double>(r.run.sim_cycles, r.checksum);
  };
  const auto off = run_ocean(false);
  const auto on = run_ocean(true);
  EXPECT_EQ(off.first, on.first);
  EXPECT_EQ(off.second, on.second);
}

// Set attribution through the engine dispatch hook: TASK+OBJECT tasks
// sharing one affinity object show up as one set with its dispatch count,
// labelled by the registered object it keys on.
TEST(ProfilerLive, TaskAffinitySetsAreAttributed) {
  SystemConfig cfg;
  cfg.machine = topo::MachineConfig::dash(4);
  cfg.profile = true;
  Runtime rt(cfg);

  double* src = rt.alloc_array<double>(512, 0);
  double* dst = rt.alloc_array<double>(512, 1);
  ASSERT_TRUE(rt.profile_register("src", src, 512 * sizeof(double)));

  rt.run([](double* s, double* d) -> TaskFn {
    auto& c = co_await self();
    TaskGroup g;
    for (int t = 0; t < 6; ++t) {
      c.spawn(Affinity::task_object(s, d), g,
              [](double* from, double* to) -> TaskFn {
                auto& cc = co_await self();
                cc.read(from, 512 * sizeof(double));
                cc.write(to, 512 * sizeof(double));
              }(s, d));
    }
    co_await c.wait(g);
  }(src, dst));

  const obs::ProfileSnapshot p = rt.profile_snapshot();
  ASSERT_FALSE(p.sets.empty());
  const auto& set = p.sets[0];
  EXPECT_EQ(set.hint, obs::HintClass::kTaskObject);
  EXPECT_EQ(set.tasks, 6u);
  EXPECT_EQ(set.label, "src");  // Key resolves to the registered object.
  EXPECT_GT(set.s.accesses(), 0u);

  bool task_object_row = false;
  for (const auto& h : p.hints) {
    if (h.hint == obs::HintClass::kTaskObject) {
      task_object_row = true;
      EXPECT_EQ(h.tasks, 6u);
    }
  }
  EXPECT_TRUE(task_object_row);
}

TEST(ProfileSnapshot, ToJsonIsWellFormed) {
  SystemConfig cfg;
  cfg.machine = topo::MachineConfig::dash(4);
  cfg.profile = true;
  Runtime rt(cfg);
  double* d = rt.alloc_array<double>(64, 0);
  ASSERT_TRUE(rt.profile_register("d", d, 64 * sizeof(double)));
  rt.run([](double* arr) -> TaskFn {
    auto& c = co_await self();
    c.update(arr, 64 * sizeof(double));
  }(d));

  const std::string json = rt.profile_snapshot().to_json();
  EXPECT_NE(json.find("\"objects\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"d\""), std::string::npos);
  EXPECT_NE(json.find("\"total\""), std::string::npos);

  const std::string report =
      obs::profile_report(rt.profile_snapshot());
  EXPECT_NE(report.find("locality profile: objects"), std::string::npos);
  EXPECT_NE(report.find("d"), std::string::npos);
}

}  // namespace
}  // namespace cool
