// LatencyHist: quantile error bound against a sorted-sample oracle, bucket
// geometry, merge/diff algebra, and edge cases.
#include "obs/latency_hist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace cool::obs {
namespace {

/// Inclusive oracle: value at quantile q of a sorted sample (the
/// ceil(q*n)-th smallest, 1-based), matching LatencyHist's contract.
std::uint64_t oracle(std::vector<std::uint64_t> v, double q) {
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  return v[rank - 1];
}

TEST(LatencyHist, EmptyIsAllZero) {
  const LatencyHist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(0.999), 0u);
}

TEST(LatencyHist, SmallValuesAreExact) {
  // Values below kSubBuckets land in unit-width buckets.
  LatencyHist h;
  for (std::uint64_t v = 0; v < LatencyHist::kSubBuckets; ++v) h.record(v);
  for (std::uint64_t v = 0; v < LatencyHist::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHist::bucket_upper(LatencyHist::bucket_of(v)), v);
  }
  EXPECT_EQ(h.quantile(1.0), LatencyHist::kSubBuckets - 1);
}

TEST(LatencyHist, BucketGeometryRoundTrips) {
  // Every probe value's bucket upper edge is >= the value and within the
  // relative-error bound; bucket_of(bucket_upper(b)) == b.
  for (std::uint64_t v : {0ull, 1ull, 31ull, 32ull, 33ull, 100ull, 1000ull,
                          123456ull, 1ull << 40, (1ull << 40) + 12345ull}) {
    const std::size_t b = LatencyHist::bucket_of(v);
    const std::uint64_t up = LatencyHist::bucket_upper(b);
    EXPECT_GE(up, v);
    EXPECT_LE(static_cast<double>(up),
              static_cast<double>(v) *
                  (1.0 + 1.0 / LatencyHist::kSubBuckets));
    EXPECT_EQ(LatencyHist::bucket_of(up), b);
  }
}

TEST(LatencyHist, QuantileWithinRelativeErrorOfOracle) {
  util::Rng rng(0x1a7e);
  // Log-uniform samples: exercise many octaves, like a latency tail does.
  std::vector<std::uint64_t> v;
  LatencyHist h;
  for (int i = 0; i < 20000; ++i) {
    const int shift = static_cast<int>(rng.next_below(20));
    const std::uint64_t x = (1ull << shift) + rng.next_below(1ull << shift);
    v.push_back(x);
    h.record(x);
  }
  EXPECT_EQ(h.count(), v.size());
  for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t o = oracle(v, q);
    const std::uint64_t e = h.quantile(q);
    EXPECT_GE(e, o) << "q=" << q;
    EXPECT_LE(static_cast<double>(e),
              static_cast<double>(o) *
                  (1.0 + 1.0 / LatencyHist::kSubBuckets))
        << "q=" << q;
  }
}

TEST(LatencyHist, QuantileIsCappedAtMax) {
  LatencyHist h;
  h.record(1000);
  EXPECT_EQ(h.quantile(1.0), 1000u);
  EXPECT_LE(h.quantile(0.999), 1000u);
}

TEST(LatencyHist, MergeMatchesRecordingEverything) {
  util::Rng rng(7);
  LatencyHist a;
  LatencyHist b;
  LatencyHist all;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t x = rng.next_below(1 << 16);
    (i % 2 == 0 ? a : b).record(x);
    all.record(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.max(), all.max());
  for (const double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q));
  }
}

TEST(LatencyHist, DiffIsolatesTheEpoch) {
  // Snapshot, record a second batch with a very different scale, diff: the
  // delta must reflect only the second batch.
  LatencyHist h;
  for (int i = 0; i < 100; ++i) h.record(10);
  const LatencyHist snap = h;
  for (int i = 0; i < 100; ++i) h.record(100000);
  const LatencyHist delta = h.diff(snap);
  EXPECT_EQ(delta.count(), 100u);
  EXPECT_GE(delta.quantile(0.5), 100000u);
  // Diffing a histogram against itself is empty.
  EXPECT_EQ(h.diff(h).count(), 0u);
}

}  // namespace
}  // namespace cool::obs
