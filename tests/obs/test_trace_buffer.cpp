#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/json.hpp"

namespace cool::obs {
namespace {

Event span(std::uint64_t start, std::uint64_t end, topo::ProcId proc,
           std::uint64_t seq = 0, std::uint8_t flags = 0) {
  return Event{start, end, seq, 0, proc, EventKind::kTaskSpan, flags};
}

TEST(TraceBuffer, EmptyBuffer) {
  TraceBuffer b(8);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.capacity(), 8u);
  EXPECT_EQ(b.dropped(), 0u);
  b.for_each([](const Event&) { FAIL() << "empty buffer yielded an event"; });
}

TEST(TraceBuffer, FillsWithoutDropping) {
  TraceBuffer b(4);
  for (std::uint64_t i = 0; i < 4; ++i) b.record(span(i, i + 1, 0, i));
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.dropped(), 0u);
  std::uint64_t expect = 0;
  b.for_each([&](const Event& e) { EXPECT_EQ(e.start, expect++); });
  EXPECT_EQ(expect, 4u);
}

TEST(TraceBuffer, WrapDropsOldestAndCounts) {
  constexpr std::size_t kCap = 16;
  TraceBuffer b(kCap);
  for (std::uint64_t i = 0; i < 3 * kCap; ++i) b.record(span(i, i + 1, 0, i));
  EXPECT_EQ(b.size(), kCap);
  EXPECT_EQ(b.dropped(), 2 * kCap);
  // Retained events are the newest kCap, visited oldest to newest.
  std::uint64_t expect = 2 * kCap;
  b.for_each([&](const Event& e) { EXPECT_EQ(e.start, expect++); });
  EXPECT_EQ(expect, 3 * kCap);
}

TEST(TraceBuffer, ClearResets) {
  TraceBuffer b(4);
  for (std::uint64_t i = 0; i < 10; ++i) b.record(span(i, i, 0));
  b.clear();
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.dropped(), 0u);
  b.record(span(99, 100, 0));
  EXPECT_EQ(b.size(), 1u);
}

TEST(SpanFlags, RoundTrip) {
  const std::uint8_t f = span_flags(true, kSpanBlocked);
  EXPECT_EQ(f & kSpanStolen, kSpanStolen);
  EXPECT_EQ(span_end(f), kSpanBlocked);
  EXPECT_EQ(span_end(span_flags(false, kSpanCompleted)), kSpanCompleted);
  EXPECT_EQ(span_end(span_flags(false, kSpanYielded)), kSpanYielded);
  EXPECT_EQ(span_flags(false, kSpanYielded) & kSpanStolen, 0);
}

TEST(TraceCollector, MergedSortsByStartThenProc) {
  TraceCollector c(3, 8);
  // Deliberately interleaved starts across processors, including a tie.
  c.buf(1).record(span(10, 12, 1));
  c.buf(0).record(span(5, 7, 0));
  c.buf(2).record(span(10, 11, 2));
  c.buf(0).record(span(20, 25, 0));
  c.buf(1).record(Event{15, 15, 0, 1, 1, EventKind::kSteal, 0});

  const std::vector<Event> m = c.merged();
  ASSERT_EQ(m.size(), 5u);
  EXPECT_EQ(m[0].start, 5u);
  EXPECT_EQ(m[1].start, 10u);
  EXPECT_EQ(m[1].proc, 1u);  // Tie on start=10 broken by proc.
  EXPECT_EQ(m[2].start, 10u);
  EXPECT_EQ(m[2].proc, 2u);
  EXPECT_EQ(m[3].kind, EventKind::kSteal);
  EXPECT_EQ(m[4].start, 20u);
}

TEST(TraceCollector, TotalsAggregateAcrossBuffers) {
  TraceCollector c(2, 4);
  for (std::uint64_t i = 0; i < 10; ++i) c.buf(0).record(span(i, i, 0));
  c.buf(1).record(span(0, 1, 1));
  EXPECT_EQ(c.total_size(), 5u);     // 4 retained on proc 0 + 1 on proc 1.
  EXPECT_EQ(c.total_dropped(), 6u);  // 10 - 4 on proc 0.
  c.clear();
  EXPECT_EQ(c.total_size(), 0u);
  EXPECT_EQ(c.total_dropped(), 0u);
}

TEST(ChromeTrace, EmitsParsableTraceEvents) {
  std::vector<Event> events;
  events.push_back(span(0, 10, 0, 7, span_flags(true, kSpanCompleted)));
  events.push_back(Event{4, 4, 2, 1, 1, EventKind::kSteal, 0});
  events.push_back(Event{6, 9, 1, 4096, 0, EventKind::kMigration, 0});
  events.push_back(Event{12, 20, 0, 0, 1, EventKind::kIdleGap, 0});

  const std::string text = chrome_trace_json(events);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(text, v, &err)) << err << "\n" << text;
  const json::Value* arr = v.find("traceEvents");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->arr.size(), events.size());

  // Spans/idle/migration are duration ("X") events with ts+dur; steals are
  // instants ("i").
  int durations = 0;
  int instants = 0;
  for (const json::Value& e : arr->arr) {
    const json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "X") {
      ++durations;
      EXPECT_NE(e.find("dur"), nullptr);
    } else if (ph->str == "i") {
      ++instants;
    }
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("name"), nullptr);
  }
  EXPECT_EQ(durations, 3);
  EXPECT_EQ(instants, 1);
}

TEST(ChromeTrace, EmptyInputIsStillValidJson) {
  const std::string text = chrome_trace_json({});
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(text, v, &err)) << err;
  ASSERT_TRUE(v.find("traceEvents")->is_array());
  EXPECT_TRUE(v.find("traceEvents")->arr.empty());
}

}  // namespace
}  // namespace cool::obs
