#include "obs/bench_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace cool::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// A small record with everything pinned, so its JSON is byte-stable.
BenchRecord demo_record() {
  BenchRecord rec("golden");
  rec.set_git_sha("deadbee");
  rec.set_config_entry("procs", "8");
  rec.set_config_entry("variant", "affinity");
  util::Table t({"procs", "speedup", "label"});
  t.row().cell(1).cell(1.0, 2).cell("base");
  t.row().cell(8).cell(5.43, 2).cell("affinity");
  rec.add_series(t);
  rec.add_shape("best_speedup", 5.43);
  return rec;
}

TEST(Json, NumberFormatting) {
  EXPECT_EQ(json::number(0), "0");
  EXPECT_EQ(json::number(3), "3");
  EXPECT_EQ(json::number(-17), "-17");
  EXPECT_EQ(json::number(1.41), "1.41");      // Shortest round-trip, not %.17g.
  EXPECT_EQ(json::number(0.1), "0.1");
  EXPECT_EQ(json::number(1e300), "1e+300");
  EXPECT_EQ(json::number(1.0 / 0.0), "null");  // Non-finite -> null.
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  json::Writer w;
  w.begin_object();
  w.key(nasty).string(nasty);
  w.end_object();
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(w.str(), v, &err)) << err;
  ASSERT_NE(v.find(nasty), nullptr);
  EXPECT_EQ(v.find(nasty)->str, nasty);
}

TEST(Json, ParserRejectsTrailingContent) {
  json::Value v;
  std::string err;
  EXPECT_FALSE(json::parse("{} x", v, &err));
  EXPECT_NE(err.find("trailing"), std::string::npos);
}

TEST(BenchRecord, JsonIsByteStable) {
  const std::string expected =
      R"({"schema":"cool-bench/1","bench":"golden","git_sha":"deadbee",)"
      R"("config":{"procs":"8","variant":"affinity"},)"
      R"("series":[{"procs":1,"speedup":1,"label":"base"},)"
      R"({"procs":8,"speedup":5.43,"label":"affinity"}],)"
      R"("shape":{"best_speedup":5.43}})";
  EXPECT_EQ(demo_record().to_json(), expected);
}

TEST(BenchRecord, ValidatesAgainstSchema) {
  BenchRecord rec = demo_record();
  Registry reg(2);
  reg.counter("tasks").add(0, 42);
  reg.histogram("run_len").observe(1, 3);
  rec.set_obs(reg.snapshot());
  const std::string text = rec.to_json();
  EXPECT_EQ(validate_bench_json(text), "") << text;

  json::Value v;
  ASSERT_TRUE(json::parse(text, v));
  EXPECT_EQ(v.find("bench")->str, "golden");
  EXPECT_EQ(v.find("git_sha")->str, "deadbee");
  ASSERT_EQ(v.find("series")->arr.size(), 2u);
  EXPECT_EQ(v.find("series")->arr[1].find("speedup")->num, 5.43);
  EXPECT_EQ(v.find("series")->arr[1].find("label")->str, "affinity");
  EXPECT_EQ(v.find("obs")->find("values")->find("tasks")->num, 42.0);
}

TEST(BenchRecord, FileNameAndWriteTo) {
  BenchRecord rec = demo_record();
  EXPECT_EQ(rec.file_name(), "BENCH_golden.json");
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(rec.write_to(dir));
  const std::string path = dir + "/BENCH_golden.json";
  EXPECT_EQ(read_file(path), rec.to_json() + "\n");
  std::remove(path.c_str());
}

TEST(Validate, RejectsMalformedRecords) {
  EXPECT_NE(validate_bench_json("not json at all"), "");
  EXPECT_EQ(validate_bench_json("{}"), "missing string field 'schema'");
  EXPECT_NE(validate_bench_json(
                R"({"schema":"cool-bench/999","bench":"x","git_sha":"s",)"
                R"("config":{},"series":[],"shape":{}})"),
            "");
  EXPECT_EQ(validate_bench_json(
                R"({"schema":"cool-bench/1","git_sha":"s",)"
                R"("config":{},"series":[],"shape":{}})"),
            "missing non-empty string field 'bench'");
  EXPECT_EQ(validate_bench_json(
                R"({"schema":"cool-bench/1","bench":"x","git_sha":"s",)"
                R"("config":{},"series":[1],"shape":{}})"),
            "series[0] is not an object");
  EXPECT_EQ(validate_bench_json(
                R"({"schema":"cool-bench/1","bench":"x","git_sha":"s",)"
                R"("config":{},"series":[],"shape":{"m":"fast"}})"),
            "shape.m is not a number");
  EXPECT_EQ(validate_bench_json(
                R"({"schema":"cool-bench/1","bench":"x","git_sha":"s",)"
                R"("config":{},"series":[],"shape":{},"obs":{}})"),
            "obs.values missing or not an object");
}

// The checked-in golden record: a real bench emission, pinned so schema or
// emitter drift fails loudly here instead of in a downstream consumer.
TEST(Golden, CheckedInRecordIsSchemaValid) {
  const std::string path =
      std::string(COOL_TEST_DATA_DIR) + "/golden/BENCH_tab01_affinity_hints.json";
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty()) << "cannot read " << path;
  EXPECT_EQ(validate_bench_json(text), "");

  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(text, v, &err)) << err;
  EXPECT_EQ(v.find("bench")->str, "tab01_affinity_hints");
  ASSERT_FALSE(v.find("series")->arr.empty());
  // Every series row of this bench names its affinity-hint variant.
  for (const json::Value& row : v.find("series")->arr) {
    EXPECT_NE(row.find("hint"), nullptr);
  }
  const json::Value* obs = v.find("obs");
  ASSERT_NE(obs, nullptr);
  EXPECT_NE(obs->find("values")->find("tasks.completed"), nullptr);
}

}  // namespace
}  // namespace cool::obs
