#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace cool::obs {
namespace {

TEST(Registry, CounterAccumulatesAcrossShards) {
  Registry reg(4);
  Counter c = reg.counter("x");
  c.add(0);
  c.add(1, 10);
  c.add(3, 100);
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.values.at("x"), 111u);
}

TEST(Registry, SameNameReturnsSameMetric) {
  Registry reg(2);
  Counter a = reg.counter("hits");
  Counter b = reg.counter("hits");
  a.add(0, 5);
  b.add(1, 7);
  EXPECT_EQ(reg.snapshot().values.at("hits"), 12u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg(2);
  (void)reg.counter("m");
  EXPECT_THROW((void)reg.gauge("m"), util::Error);
  EXPECT_THROW((void)reg.histogram("m"), util::Error);
}

TEST(Registry, SlotCapacityExhaustionThrows) {
  Registry reg(1, 4);
  (void)reg.counter("a");
  (void)reg.counter("b");
  (void)reg.counter("c");
  (void)reg.counter("d");
  EXPECT_THROW((void)reg.counter("e"), util::Error);
}

TEST(Registry, HistogramNeedsFiftySlots) {
  Registry reg(1, kHistBuckets + 2);
  (void)reg.histogram("h");  // Exactly fits: count + sum + buckets.
  EXPECT_THROW((void)reg.counter("one-more"), util::Error);
}

TEST(Registry, DetachedHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.attached());
  EXPECT_FALSE(g.attached());
  EXPECT_FALSE(h.attached());
  c.add(0, 5);       // Must not crash.
  g.set(0, 5);
  h.observe(0, 5);
}

TEST(Registry, GaugeSumsLastValuePerShard) {
  Registry reg(3);
  Gauge g = reg.gauge("depth");
  g.set(0, 10);
  g.set(0, 3);  // Overwrites shard 0.
  g.set(2, 4);
  EXPECT_EQ(reg.snapshot().values.at("depth"), 7u);
}

TEST(Histogram, BucketBoundaries) {
  Registry reg(1);
  Histogram h = reg.histogram("lat");
  h.observe(0, 0);  // bucket 0
  h.observe(0, 1);  // bucket 1: [1,2)
  h.observe(0, 2);  // bucket 2: [2,4)
  h.observe(0, 3);  // bucket 2
  h.observe(0, 4);  // bucket 3: [4,8)
  const HistData d = reg.snapshot().hists.at("lat");
  EXPECT_EQ(d.count, 5u);
  EXPECT_EQ(d.sum, 10u);
  EXPECT_EQ(d.buckets[0], 1u);
  EXPECT_EQ(d.buckets[1], 1u);
  EXPECT_EQ(d.buckets[2], 2u);
  EXPECT_EQ(d.buckets[3], 1u);
}

TEST(Histogram, QuantileReturnsBucketUpperEdge) {
  HistData d;
  d.count = 100;
  d.buckets[3] = 99;  // [4,8)
  d.buckets[7] = 1;   // [64,128)
  EXPECT_EQ(d.quantile(0.5), 8u);
  EXPECT_EQ(d.quantile(0.99), 8u);
  EXPECT_EQ(d.quantile(1.0), 128u);
}

TEST(Snapshot, DiffSubtractsAndSaturates) {
  Snapshot before;
  before.values["a"] = 10;
  before.values["gone"] = 99;
  Snapshot after;
  after.values["a"] = 25;
  after.values["fresh"] = 7;
  const Snapshot d = after.diff(before);
  EXPECT_EQ(d.values.at("a"), 15u);
  EXPECT_EQ(d.values.at("fresh"), 7u);  // Missing in `before`: unchanged.
  EXPECT_EQ(d.values.count("gone"), 0u);
}

TEST(Snapshot, DiffBracketsExactlyTheWindow) {
  Registry reg(2);
  Counter c = reg.counter("work");
  Histogram h = reg.histogram("len");
  c.add(0, 5);
  h.observe(0, 4);
  const Snapshot before = reg.snapshot();
  c.add(1, 37);
  h.observe(1, 4);
  h.observe(1, 16);
  const Snapshot delta = reg.snapshot().diff(before);
  EXPECT_EQ(delta.values.at("work"), 37u);
  EXPECT_EQ(delta.hists.at("len").count, 2u);
  EXPECT_EQ(delta.hists.at("len").sum, 20u);
}

TEST(Snapshot, DiffSubtractsHistogramBuckets) {
  // Quantiles over a diff window must come from bucket-wise subtraction.
  // If diff reset the histogram (or only subtracted count/sum), the p50 of
  // the window would be polluted by the heavy pre-window population.
  Registry reg(2);
  Histogram h = reg.histogram("lat");
  for (int i = 0; i < 1000; ++i) h.observe(0, 2);  // bucket [2,4)
  const Snapshot before = reg.snapshot();
  for (int i = 0; i < 10; ++i) h.observe(1, 100);  // bucket [64,128)
  const Snapshot delta = reg.snapshot().diff(before);

  const HistData& d = delta.hists.at("lat");
  EXPECT_EQ(d.count, 10u);
  EXPECT_EQ(d.sum, 1000u);
  EXPECT_EQ(d.buckets[2], 0u);    // The 1000 pre-window samples subtract out.
  EXPECT_EQ(d.buckets[7], 10u);
  EXPECT_EQ(d.quantile(0.5), 128u);   // Window-only: all samples in [64,128).
  EXPECT_EQ(d.quantile(1.0), 128u);

  // The undiffed snapshot still sees the full population. (Keep the
  // snapshot alive: binding a reference into the temporary would dangle.)
  const Snapshot now = reg.snapshot();
  const HistData& full = now.hists.at("lat");
  EXPECT_EQ(full.count, 1010u);
  EXPECT_EQ(full.quantile(0.5), 4u);
}

TEST(Snapshot, DiffHistogramSaturatesOnMissingBefore) {
  Registry reg(1);
  Histogram h = reg.histogram("fresh");
  h.observe(0, 3);
  Snapshot before;  // No "fresh" histogram recorded yet.
  const Snapshot delta = reg.snapshot().diff(before);
  EXPECT_EQ(delta.hists.at("fresh").count, 1u);
  EXPECT_EQ(delta.hists.at("fresh").quantile(1.0), 4u);
}

TEST(Snapshot, ToJsonParses) {
  Registry reg(2);
  reg.counter("a \"quoted\" name").add(0, 3);
  reg.histogram("h").observe(1, 1000);
  const std::string text = reg.snapshot().to_json();
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(text, v, &err)) << err << "\n" << text;
  ASSERT_TRUE(v.find("values")->is_object());
  EXPECT_EQ(v.find("values")->find("a \"quoted\" name")->num, 3.0);
  ASSERT_TRUE(v.find("hists")->is_object());
  EXPECT_EQ(v.find("hists")->find("h")->find("count")->num, 1.0);
}

// --- Concurrency: the reason the registry is sharded ------------------------

class RegistryConcurrency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegistryConcurrency, ConcurrentIncrementsAreExact) {
  const std::size_t n_shards = GetParam();
  Registry reg(n_shards);
  Counter c = reg.counter("ops");
  Histogram h = reg.histogram("size");
  constexpr std::uint64_t kPerThread = 20000;

  std::vector<std::thread> writers;
  for (std::size_t s = 0; s < n_shards; ++s) {
    writers.emplace_back([&, s] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(s);
        h.observe(s, i & 0xff);
      }
    });
  }
  // A concurrent reader: every snapshot must be internally consistent enough
  // that counters only grow (per-slot atomicity).
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t now = reg.snapshot().values.at("ops");
    EXPECT_GE(now, last);
    last = now;
  }
  for (auto& t : writers) t.join();

  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.values.at("ops"), kPerThread * n_shards);
  EXPECT_EQ(s.hists.at("size").count, kPerThread * n_shards);
}

TEST_P(RegistryConcurrency, ConcurrentRegistrationIsIdempotent) {
  const std::size_t n_shards = GetParam();
  Registry reg(n_shards);
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < n_shards; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < 100; ++i) {
        reg.counter("shared").add(s);
        reg.counter("own." + std::to_string(s)).add(s);
      }
    });
  }
  for (auto& t : threads) t.join();
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.values.at("shared"), 100u * n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    EXPECT_EQ(s.values.at("own." + std::to_string(i)), 100u);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, RegistryConcurrency,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace cool::obs
