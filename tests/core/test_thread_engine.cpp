#include "core/thread_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/cool.hpp"

namespace cool {
namespace {

SystemConfig thr_cfg(std::uint32_t procs) {
  SystemConfig cfg;
  cfg.mode = SystemConfig::Mode::kThreads;
  cfg.machine = topo::MachineConfig::dash(procs);
  cfg.thread_timeout_ms = 30000;
  return cfg;
}

TEST(ThreadEngine, RootTaskRuns) {
  Runtime rt(thr_cfg(4));
  std::atomic<int> x{0};
  rt.run([](std::atomic<int>* p) -> TaskFn {
    p->store(7);
    co_return;
  }(&x));
  EXPECT_EQ(x.load(), 7);
}

TEST(ThreadEngine, FanOutJoin) {
  Runtime rt(thr_cfg(8));
  std::vector<std::atomic<int>> v(200);
  rt.run([](std::vector<std::atomic<int>>* vv) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 200; ++i) {
      c.spawn(Affinity::none(), waitfor,
              [](std::atomic<int>* slot, int val) -> TaskFn {
                co_await self();
                slot->store(val);
              }(&(*vv)[static_cast<std::size_t>(i)], i + 1));
    }
    co_await c.wait(waitfor);
  }(&v));
  for (int i = 0; i < 200; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)].load(), i + 1);
  EXPECT_EQ(rt.tasks_completed(), 201u);
}

TEST(ThreadEngine, MutexMutualExclusionUnderRealConcurrency) {
  Runtime rt(thr_cfg(8));
  struct Shared {
    Mutex mu;
    int unprotected = 0;  // plain int: torn if mutual exclusion fails
  } sh;
  rt.run([](Shared* s) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 32; ++i) {
      c.spawn(Affinity::none(), waitfor, [](Shared* ss) -> TaskFn {
        auto& cc = co_await self();
        for (int k = 0; k < 50; ++k) {
          auto g = co_await cc.lock(ss->mu);
          ++ss->unprotected;
        }
      }(s));
    }
    co_await c.wait(waitfor);
  }(&sh));
  EXPECT_EQ(sh.unprotected, 32 * 50);
}

TEST(ThreadEngine, CondProducerConsumer) {
  Runtime rt(thr_cfg(4));
  struct Slot {
    Mutex mu;
    Cond nonempty, nonfull;
    bool full = false;
    int value = 0;
  } slot;
  long sum = 0;
  const int n = 200;
  rt.run([](Slot* s, long* out, int count) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    c.spawn(Affinity::none(), waitfor, [](Slot* ss, int cnt) -> TaskFn {
      auto& cc = co_await self();
      for (int i = 1; i <= cnt; ++i) {
        auto g = co_await cc.lock(ss->mu);
        while (ss->full) co_await cc.wait(ss->nonfull, ss->mu);
        ss->value = i;
        ss->full = true;
        ss->nonempty.signal(cc);
      }
    }(s, count));
    c.spawn(Affinity::none(), waitfor, [](Slot* ss, long* acc, int cnt) -> TaskFn {
      auto& cc = co_await self();
      for (int i = 0; i < cnt; ++i) {
        auto g = co_await cc.lock(ss->mu);
        while (!ss->full) co_await cc.wait(ss->nonempty, ss->mu);
        *acc += ss->value;
        ss->full = false;
        ss->nonfull.signal(cc);
      }
    }(s, out, count));
    co_await c.wait(waitfor);
  }(&slot, &sum, n));
  EXPECT_EQ(sum, static_cast<long>(n) * (n + 1) / 2);
}

TEST(ThreadEngine, ExceptionPropagates) {
  Runtime rt(thr_cfg(4));
  EXPECT_THROW(rt.run([]() -> TaskFn {
    co_await self();
    throw util::Error("thread boom");
  }()),
               util::Error);
}

TEST(ThreadEngine, TimeoutDetectsDeadlock) {
  SystemConfig cfg = thr_cfg(2);
  cfg.thread_timeout_ms = 300;
  Runtime rt(cfg);
  static Mutex mu;  // outlives the stuck frame
  EXPECT_THROW(rt.run([]() -> TaskFn {
    auto& c = co_await self();
    auto g1 = co_await c.lock(mu);
    auto g2 = co_await c.lock(mu);  // self-deadlock
  }()),
               util::Error);
}

TEST(ThreadEngine, HomeAndMigrateBookkeeping) {
  Runtime rt(thr_cfg(8));
  double* d = rt.alloc_array<double>(1024, /*home=*/2);
  EXPECT_EQ(rt.home(d), 2u);
  rt.migrate(d, 5, 1024 * sizeof(double));
  EXPECT_EQ(rt.home(d), 5u);
}

TEST(ThreadEngine, ManyPhasesStress) {
  Runtime rt(thr_cfg(8));
  std::atomic<long> total{0};
  rt.run([](std::atomic<long>* acc) -> TaskFn {
    auto& c = co_await self();
    for (int phase = 0; phase < 20; ++phase) {
      TaskGroup waitfor;
      for (int i = 0; i < 20; ++i) {
        c.spawn(Affinity::processor(i), waitfor,
                [](std::atomic<long>* a) -> TaskFn {
                  co_await self();
                  a->fetch_add(1);
                }(acc));
      }
      co_await c.wait(waitfor);
    }
  }(&total));
  EXPECT_EQ(total.load(), 400);
}

}  // namespace
}  // namespace cool
