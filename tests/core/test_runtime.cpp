#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/cool.hpp"

namespace cool {
namespace {

TEST(Runtime, AllocIsPageAlignedAndZeroed) {
  Runtime rt(SystemConfig{});
  const std::size_t page = rt.machine().page_bytes;
  double* d = rt.alloc_array<double>(3, /*home=*/0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % page, 0u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(d[i], 0.0);
}

TEST(Runtime, DistinctAllocationsOnDistinctPages) {
  Runtime rt(SystemConfig{});
  char* a = rt.alloc_array<char>(1, 0);
  char* b = rt.alloc_array<char>(1, 1);
  const auto page = rt.machine().page_bytes;
  EXPECT_NE(reinterpret_cast<std::uintptr_t>(a) / page,
            reinterpret_cast<std::uintptr_t>(b) / page);
  EXPECT_EQ(rt.home(a), 0u);
  EXPECT_EQ(rt.home(b), 1u);
}

TEST(Runtime, PlacedAllocationModuloP) {
  SystemConfig cfg;
  cfg.machine = topo::MachineConfig::dash(8);
  Runtime rt(cfg);
  char* a = rt.alloc_array<char>(64, /*home=*/13);  // 13 mod 8 == 5
  EXPECT_EQ(rt.home(a), 5u);
}

TEST(Runtime, SetupMigrateRebinds) {
  Runtime rt(SystemConfig{});
  int* a = rt.alloc_array<int>(4096, 0);
  rt.migrate(a, 9, 4096 * sizeof(int));
  EXPECT_EQ(rt.home(a), 9u);
  EXPECT_EQ(rt.home(a + 4095), 9u);
}

TEST(Runtime, EmptyAllocationThrows) {
  Runtime rt(SystemConfig{});
  EXPECT_THROW(rt.alloc_bytes(0, 0), util::Error);
}

TEST(Runtime, RunTwiceAccumulates) {
  SystemConfig cfg;
  cfg.machine = topo::MachineConfig::dash(2);
  Runtime rt(cfg);
  int runs = 0;
  auto mk = [](int* r) -> TaskFn {
    auto& c = co_await self();
    c.work(100);
    ++*r;
  };
  rt.run(mk(&runs));
  const auto t1 = rt.sim_time();
  rt.run(mk(&runs));
  EXPECT_EQ(runs, 2);
  EXPECT_GT(rt.sim_time(), t1);  // clocks continue across runs
  EXPECT_EQ(rt.tasks_completed(), 2u);
}

TEST(Runtime, MonitorNullUnderThreads) {
  SystemConfig cfg;
  cfg.mode = SystemConfig::Mode::kThreads;
  cfg.machine = topo::MachineConfig::dash(2);
  Runtime rt(cfg);
  EXPECT_EQ(rt.monitor(), nullptr);
  EXPECT_EQ(rt.sim_time(), 0u);
}

TEST(Runtime, InvalidMachineRejected) {
  SystemConfig cfg;
  cfg.machine.n_procs = 0;
  EXPECT_THROW(Runtime rt(cfg), util::Error);
}

TEST(Runtime, SameProgramBothEngines) {
  // The identical COOL program must produce identical results under the
  // simulator and under real threads.
  auto program = [](std::uint32_t procs, SystemConfig::Mode mode) {
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.machine = topo::MachineConfig::dash(procs);
    Runtime rt(cfg);
    auto* sums = rt.alloc_array<long>(64, 0);
    rt.run([](long* s) -> TaskFn {
      auto& c = co_await self();
      TaskGroup waitfor;
      for (int i = 0; i < 64; ++i) {
        c.spawn(Affinity::object(&s[i]), waitfor, [](long* slot, int v) -> TaskFn {
          auto& cc = co_await self();
          cc.update(slot, sizeof *slot);
          *slot = v * v;
        }(&s[i], i));
      }
      co_await c.wait(waitfor);
    }(sums));
    long total = 0;
    for (int i = 0; i < 64; ++i) total += sums[i];
    return total;
  };
  const long sim = program(8, SystemConfig::Mode::kSim);
  const long thr = program(8, SystemConfig::Mode::kThreads);
  EXPECT_EQ(sim, thr);
  EXPECT_EQ(sim, 64L * 63 * 127 / 6);  // sum of squares 0..63
}

}  // namespace
}  // namespace cool
