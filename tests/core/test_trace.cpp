#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/cool.hpp"

namespace cool {
namespace {

Runtime traced_rt(std::uint32_t procs) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.trace = true;
  return Runtime(sc);
}

TaskFn fanout(int n) {
  auto& c = co_await self();
  TaskGroup waitfor;
  for (int i = 0; i < n; ++i) {
    c.spawn(Affinity::none(), waitfor, []() -> TaskFn {
      auto& cc = co_await self();
      cc.work(1000);
    }());
  }
  co_await c.wait(waitfor);
}

TEST(Trace, DisabledByDefault) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(4);
  Runtime rt(sc);
  rt.run(fanout(8));
  EXPECT_TRUE(rt.trace().empty());
}

TEST(Trace, RecordsOneSpanPerResume) {
  Runtime rt = traced_rt(4);
  rt.run(fanout(16));
  // 16 children complete in one span each; the root has >= 2 spans (it
  // blocks on the group wait).
  const auto& tr = rt.trace();
  std::uint64_t completed = 0;
  for (const auto& e : tr) {
    if (e.how == TraceEvent::End::kCompleted) ++completed;
  }
  EXPECT_EQ(completed, 17u);
  EXPECT_GE(tr.size(), 18u);
}

TEST(Trace, SpansDoNotOverlapPerProcessor) {
  Runtime rt = traced_rt(8);
  rt.run(fanout(64));
  std::map<topo::ProcId, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      by_proc;
  for (const auto& e : rt.trace()) {
    EXPECT_LE(e.start, e.end);
    by_proc[e.proc].push_back({e.start, e.end});
  }
  for (auto& [p, spans] : by_proc) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << "overlap on proc " << p;
    }
  }
}

TEST(Trace, BusyCyclesMatchUtilization) {
  Runtime rt = traced_rt(4);
  rt.run(fanout(32));
  std::vector<std::uint64_t> traced_busy(4, 0);
  for (const auto& e : rt.trace()) traced_busy[e.proc] += e.end - e.start;
  const auto util = rt.utilization();
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(traced_busy[static_cast<std::size_t>(p)],
              util[static_cast<std::size_t>(p)].busy);
  }
}

TEST(Trace, StolenSpansFlagged) {
  Runtime rt = traced_rt(8);
  // Hint-free tasks spawned from one proc: most get stolen by idle procs.
  rt.run(fanout(32));
  std::uint64_t stolen = 0;
  for (const auto& e : rt.trace()) stolen += e.stolen ? 1 : 0;
  EXPECT_GT(stolen, 0u);
}

TEST(Trace, BlockedSpanRecorded) {
  Runtime rt = traced_rt(2);
  Mutex mu;
  rt.run([](Mutex* m) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    c.spawn(Affinity::none(), waitfor, [](Mutex* mm) -> TaskFn {
      auto& cc = co_await self();
      auto g = co_await cc.lock(*mm);
      cc.work(5000);
    }(m));
    c.spawn(Affinity::none(), waitfor, [](Mutex* mm) -> TaskFn {
      auto& cc = co_await self();
      auto g = co_await cc.lock(*mm);  // contends -> blocked span
      cc.work(10);
    }(m));
    co_await c.wait(waitfor);
  }(&mu));
  bool saw_blocked = false;
  for (const auto& e : rt.trace()) {
    saw_blocked |= e.how == TraceEvent::End::kBlocked;
  }
  EXPECT_TRUE(saw_blocked);
}

TEST(Trace, ReportRendersAllProcessors) {
  Runtime rt = traced_rt(4);
  rt.run(fanout(32));
  const std::string report =
      render_trace_report(rt.trace(), 4, rt.sim_time(), 32);
  for (const char* label : {"p0", "p1", "p2", "p3", "busy%", "timeline"}) {
    EXPECT_NE(report.find(label), std::string::npos) << label;
  }
}

TEST(Trace, ReportHandlesEmptyTrace) {
  const std::string report = render_trace_report({}, 2, 0, 16);
  EXPECT_NE(report.find("p0"), std::string::npos);
}

}  // namespace
}  // namespace cool
