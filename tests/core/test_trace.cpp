#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/cool.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace cool {
namespace {

Runtime traced_rt(std::uint32_t procs) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.trace = true;
  return Runtime(sc);
}

TaskFn fanout(int n) {
  auto& c = co_await self();
  TaskGroup waitfor;
  for (int i = 0; i < n; ++i) {
    c.spawn(Affinity::none(), waitfor, []() -> TaskFn {
      auto& cc = co_await self();
      cc.work(1000);
    }());
  }
  co_await c.wait(waitfor);
}

TEST(Trace, DisabledByDefault) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(4);
  Runtime rt(sc);
  rt.run(fanout(8));
  EXPECT_TRUE(rt.trace().empty());
}

TEST(Trace, RecordsOneSpanPerResume) {
  Runtime rt = traced_rt(4);
  rt.run(fanout(16));
  // 16 children complete in one span each; the root has >= 2 spans (it
  // blocks on the group wait).
  const auto& tr = rt.trace();
  std::uint64_t completed = 0;
  for (const auto& e : tr) {
    if (e.how == TraceEvent::End::kCompleted) ++completed;
  }
  EXPECT_EQ(completed, 17u);
  EXPECT_GE(tr.size(), 18u);
}

TEST(Trace, SpansDoNotOverlapPerProcessor) {
  Runtime rt = traced_rt(8);
  rt.run(fanout(64));
  std::map<topo::ProcId, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      by_proc;
  for (const auto& e : rt.trace()) {
    EXPECT_LE(e.start, e.end);
    by_proc[e.proc].push_back({e.start, e.end});
  }
  for (auto& [p, spans] : by_proc) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << "overlap on proc " << p;
    }
  }
}

TEST(Trace, BusyCyclesMatchUtilization) {
  Runtime rt = traced_rt(4);
  rt.run(fanout(32));
  std::vector<std::uint64_t> traced_busy(4, 0);
  for (const auto& e : rt.trace()) traced_busy[e.proc] += e.end - e.start;
  const auto util = rt.utilization();
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(traced_busy[static_cast<std::size_t>(p)],
              util[static_cast<std::size_t>(p)].busy);
  }
}

TEST(Trace, StolenSpansFlagged) {
  Runtime rt = traced_rt(8);
  // Hint-free tasks spawned from one proc: most get stolen by idle procs.
  rt.run(fanout(32));
  std::uint64_t stolen = 0;
  for (const auto& e : rt.trace()) stolen += e.stolen ? 1 : 0;
  EXPECT_GT(stolen, 0u);
}

TEST(Trace, BlockedSpanRecorded) {
  Runtime rt = traced_rt(2);
  Mutex mu;
  rt.run([](Mutex* m) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    c.spawn(Affinity::none(), waitfor, [](Mutex* mm) -> TaskFn {
      auto& cc = co_await self();
      auto g = co_await cc.lock(*mm);
      cc.work(5000);
    }(m));
    c.spawn(Affinity::none(), waitfor, [](Mutex* mm) -> TaskFn {
      auto& cc = co_await self();
      auto g = co_await cc.lock(*mm);  // contends -> blocked span
      cc.work(10);
    }(m));
    co_await c.wait(waitfor);
  }(&mu));
  bool saw_blocked = false;
  for (const auto& e : rt.trace()) {
    saw_blocked |= e.how == TraceEvent::End::kBlocked;
  }
  EXPECT_TRUE(saw_blocked);
}

TEST(Trace, ReportRendersAllProcessors) {
  Runtime rt = traced_rt(4);
  rt.run(fanout(32));
  const std::string report =
      render_trace_report(rt.trace(), 4, rt.sim_time(), 32);
  for (const char* label : {"p0", "p1", "p2", "p3", "busy%", "timeline"}) {
    EXPECT_NE(report.find(label), std::string::npos) << label;
  }
}

TEST(Trace, ReportHandlesEmptyTrace) {
  const std::string report = render_trace_report({}, 2, 0, 16);
  EXPECT_NE(report.find("p0"), std::string::npos);
}

TEST(Trace, RingCapacityBoundsRetainedEvents) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(2);
  sc.trace = true;
  sc.trace_ring_capacity = 8;  // Tiny ring: a 64-task fanout must wrap.
  Runtime rt(sc);
  rt.run(fanout(64));
  EXPECT_LE(rt.trace_events().size(), 16u);  // <= capacity per processor.
  const auto snap = rt.obs_snapshot();
  EXPECT_GT(snap.values.at("obs.trace.dropped"), 0u);
  EXPECT_EQ(snap.values.at("obs.trace.events"), rt.trace_events().size());
}

TEST(Trace, ChromeExportParsesAndCoversSpans) {
  Runtime rt = traced_rt(4);
  rt.run(fanout(16));
  const std::string text = rt.chrome_trace();
  obs::json::Value v;
  std::string err;
  ASSERT_TRUE(obs::json::parse(text, v, &err)) << err;
  ASSERT_NE(v.find("traceEvents"), nullptr);
  EXPECT_EQ(v.find("traceEvents")->arr.size(), rt.trace_events().size());
}

TEST(Trace, ThreadEngineRecordsSpans) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(4);
  sc.mode = SystemConfig::Mode::kThreads;
  sc.trace = true;
  Runtime rt(sc);
  rt.run(fanout(32));
  const auto events = rt.trace_events();
  std::uint64_t completed = 0;
  for (const auto& e : events) {
    if (e.kind == obs::EventKind::kTaskSpan) {
      EXPECT_LE(e.start, e.end);  // Wall-clock µs, monotonic per span.
      if (obs::span_end(e.flags) == obs::kSpanCompleted) ++completed;
    }
  }
  // 32 children + root complete exactly once each.
  EXPECT_EQ(completed, 33u);
  // The legacy span view and the ASCII report still work under kThreads.
  const auto& tr = rt.trace();
  EXPECT_GE(tr.size(), 33u);
  const std::string report = render_trace_report(tr, 4, 0, 32);
  EXPECT_NE(report.find("p0"), std::string::npos);
}

}  // namespace
}  // namespace cool
