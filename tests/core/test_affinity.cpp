#include "sched/affinity.hpp"

#include <gtest/gtest.h>

namespace cool::sched {
namespace {

TEST(Affinity, NoneHasNoHints) {
  const Affinity a = Affinity::none();
  EXPECT_TRUE(a.is_none());
  EXPECT_FALSE(a.has_task());
  EXPECT_FALSE(a.has_object());
  EXPECT_FALSE(a.has_processor());
  EXPECT_FALSE(a.has_multi());
}

TEST(Affinity, ObjectBuilder) {
  int x = 0;
  const Affinity a = Affinity::object(&x);
  EXPECT_TRUE(a.has_object());
  EXPECT_FALSE(a.has_task());
  EXPECT_EQ(a.object_obj, reinterpret_cast<std::uint64_t>(&x));
}

TEST(Affinity, TaskBuilder) {
  int x = 0;
  const Affinity a = Affinity::task(&x);
  EXPECT_TRUE(a.has_task());
  EXPECT_FALSE(a.has_object());
}

TEST(Affinity, TaskObjectComposition) {
  int s = 0, d = 0;
  const Affinity a = Affinity::task_object(&s, &d);
  EXPECT_TRUE(a.has_task());
  EXPECT_TRUE(a.has_object());
  EXPECT_EQ(a.task_obj, reinterpret_cast<std::uint64_t>(&s));
  EXPECT_EQ(a.object_obj, reinterpret_cast<std::uint64_t>(&d));
}

TEST(Affinity, ProcessorBuilder) {
  const Affinity a = Affinity::processor(35);
  EXPECT_TRUE(a.has_processor());
  EXPECT_EQ(a.proc_hint, 35);
  EXPECT_FALSE(Affinity::processor(-1).has_processor() &&
               !Affinity::none().has_processor());
}

TEST(Affinity, ProcessorTaskComposition) {
  int r = 0;
  const Affinity a = Affinity::processor_task(3, &r);
  EXPECT_TRUE(a.has_processor());
  EXPECT_TRUE(a.has_task());
}

TEST(Affinity, MultiObjectRecordsSizesAndFirstFallback) {
  int x = 0, y = 0;
  const Affinity a =
      Affinity::objects({Affinity::ref(&x, 100), Affinity::ref(&y, 5000)});
  EXPECT_TRUE(a.has_multi());
  EXPECT_EQ(a.n_objs, 2);
  EXPECT_EQ(a.objs[0].bytes, 100u);
  EXPECT_EQ(a.objs[1].bytes, 5000u);
  // The paper's fallback: the first object doubles as the plain object hint.
  EXPECT_EQ(a.object_obj, reinterpret_cast<std::uint64_t>(&x));
}

TEST(Affinity, MultiObjectCapsAtMax) {
  int o[6] = {};
  const Affinity a = Affinity::objects(
      {Affinity::ref(&o[0], 1), Affinity::ref(&o[1], 1),
       Affinity::ref(&o[2], 1), Affinity::ref(&o[3], 1),
       Affinity::ref(&o[4], 1), Affinity::ref(&o[5], 1)});
  EXPECT_EQ(a.n_objs, Affinity::kMaxObjects);
}

TEST(Affinity, MultiObjectStopsAtNull) {
  int x = 0;
  const Affinity a = Affinity::objects(
      {Affinity::ref(&x, 8), Affinity::ref(nullptr, 8)});
  EXPECT_EQ(a.n_objs, 1);
}

TEST(Affinity, EmptyMultiIsNone) {
  const Affinity a = Affinity::objects({});
  EXPECT_FALSE(a.has_multi());
  EXPECT_TRUE(a.is_none());
}

}  // namespace
}  // namespace cool::sched
