#include "core/sim_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cool.hpp"

namespace cool {
namespace {

SystemConfig sim_cfg(std::uint32_t procs) {
  SystemConfig cfg;
  cfg.mode = SystemConfig::Mode::kSim;
  cfg.machine = topo::MachineConfig::dash(procs);
  return cfg;
}

TEST(SimEngine, RootTaskRuns) {
  Runtime rt(sim_cfg(4));
  int x = 0;
  rt.run([](int* p) -> TaskFn {
    *p = 7;
    co_return;
  }(&x));
  EXPECT_EQ(x, 7);
  EXPECT_EQ(rt.tasks_completed(), 1u);
  EXPECT_GT(rt.sim_time(), 0u);
}

TaskFn child_add(std::vector<int>* v, int i) {
  auto& c = co_await self();
  c.work(100);
  (*v)[static_cast<std::size_t>(i)] = i * 2;
}

TaskFn fanout_root(std::vector<int>* v, int n) {
  auto& c = co_await self();
  TaskGroup waitfor;
  for (int i = 0; i < n; ++i) {
    c.spawn(Affinity::none(), waitfor, child_add(v, i));
  }
  co_await c.wait(waitfor);
}

TEST(SimEngine, FanOutJoinRunsAllChildren) {
  Runtime rt(sim_cfg(8));
  std::vector<int> v(100, -1);
  rt.run(fanout_root(&v, 100));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 2);
  EXPECT_EQ(rt.tasks_completed(), 101u);
}

TEST(SimEngine, Deterministic) {
  auto once = [] {
    Runtime rt(sim_cfg(8));
    std::vector<int> v(64, 0);
    rt.run(fanout_root(&v, 64));
    return rt.sim_time();
  };
  const auto t1 = once();
  const auto t2 = once();
  EXPECT_EQ(t1, t2);
  EXPECT_GT(t1, 0u);
}

TEST(SimEngine, ParallelismShortensSimTime) {
  auto time_with = [](std::uint32_t procs) {
    Runtime rt(sim_cfg(procs));
    std::vector<int> v(256, 0);
    rt.run([](std::vector<int>* vv) -> TaskFn {
      auto& c = co_await self();
      TaskGroup waitfor;
      for (int i = 0; i < 256; ++i) {
        c.spawn(Affinity::none(), waitfor, [](std::vector<int>* v2, int j) -> TaskFn {
          auto& cc = co_await self();
          cc.work(5000);
          (*v2)[static_cast<std::size_t>(j)] = 1;
        }(vv, i));
      }
      co_await c.wait(waitfor);
    }(&v));
    return rt.sim_time();
  };
  const auto t1 = time_with(1);
  const auto t8 = time_with(8);
  EXPECT_LT(t8 * 4, t1);  // At least 4x speedup on 8 procs.
}

TEST(SimEngine, WorkChargesCycles) {
  Runtime rt(sim_cfg(1));
  rt.run([]() -> TaskFn {
    auto& c = co_await self();
    c.work(123456);
  }());
  EXPECT_GE(rt.sim_time(), 123456u);
}

TEST(SimEngine, MemoryAccessChargesLatency) {
  Runtime rt(sim_cfg(2));
  double* data = rt.alloc_array<double>(64, /*home=*/0);
  rt.run([](double* d) -> TaskFn {
    auto& c = co_await self();
    c.read(d, 64 * sizeof(double));
  }(data));
  const auto* mon = rt.monitor();
  ASSERT_NE(mon, nullptr);
  const auto total = mon->total();
  EXPECT_EQ(total.reads, 32u);  // 512 bytes / 16-byte lines
  EXPECT_GT(total.misses(), 0u);
}

TEST(SimEngine, ObjectAffinityRunsOnHomeProcessor) {
  Runtime rt(sim_cfg(8));
  double* data = rt.alloc_array<double>(512, /*home=*/5);
  topo::ProcId ran_on = 99;
  rt.run([](double* d, topo::ProcId* out) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    c.spawn(Affinity::object(d), waitfor,
            [](topo::ProcId* o) -> TaskFn {
              auto& cc = co_await self();
              *o = cc.proc();
            }(out));
    co_await c.wait(waitfor);
  }(data, &ran_on));
  EXPECT_EQ(ran_on, 5u);
}

TEST(SimEngine, ProcessorAffinityModulo) {
  Runtime rt(sim_cfg(8));
  topo::ProcId ran_on = 99;
  rt.run([](topo::ProcId* out) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    c.spawn(Affinity::processor(11), waitfor,  // 11 mod 8 == 3
            [](topo::ProcId* o) -> TaskFn {
              auto& cc = co_await self();
              *o = cc.proc();
            }(out));
    co_await c.wait(waitfor);
  }(&ran_on));
  EXPECT_EQ(ran_on, 3u);
}

TEST(SimEngine, NestedSpawnsComplete) {
  Runtime rt(sim_cfg(4));
  std::vector<int> hits(64, 0);
  rt.run([](std::vector<int>* h) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 8; ++i) {
      c.spawn(Affinity::none(), waitfor, [](std::vector<int>* hh, int base,
                                            TaskGroup* grp) -> TaskFn {
        auto& cc = co_await self();
        for (int j = 0; j < 8; ++j) {
          cc.spawn(Affinity::none(), *grp, [](std::vector<int>* v, int k) -> TaskFn {
            auto& c3 = co_await self();
            c3.work(10);
            (*v)[static_cast<std::size_t>(k)] = 1;
          }(hh, base * 8 + j));
        }
      }(h, i, &waitfor));
    }
    co_await c.wait(waitfor);
  }(&hits));
  for (int v : hits) EXPECT_EQ(v, 1);
  EXPECT_EQ(rt.tasks_completed(), 1u + 8u + 64u);
}

TEST(SimEngine, TaskExceptionPropagates) {
  Runtime rt(sim_cfg(2));
  EXPECT_THROW(rt.run([]() -> TaskFn {
    co_await self();
    throw util::Error("boom");
  }()),
               util::Error);
}

TEST(SimEngine, DeadlockDetected) {
  Runtime rt(sim_cfg(2));
  // A task that locks a mutex twice deadlocks on itself.
  EXPECT_THROW(rt.run([]() -> TaskFn {
    auto& c = co_await self();
    static Mutex mu;  // static: outlives the aborted task frame
    auto g1 = co_await c.lock(mu);
    auto g2 = co_await c.lock(mu);
  }()),
               util::Error);
}

TEST(SimEngine, MigrateMovesHome) {
  Runtime rt(sim_cfg(8));
  double* data = rt.alloc_array<double>(512, /*home=*/0);
  rt.run([](double* d) -> TaskFn {
    auto& c = co_await self();
    c.migrate(d, 6, 512 * sizeof(double));
  }(data));
  EXPECT_EQ(rt.home(data), 6u);
}

TEST(SimEngine, YieldAllowsInterleaving) {
  Runtime rt(sim_cfg(1));
  std::vector<int> order;
  rt.run([](std::vector<int>* ord) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    c.spawn(Affinity::none(), waitfor, [](std::vector<int>* o) -> TaskFn {
      auto& cc = co_await self();
      o->push_back(1);
      co_await cc.yield();
      o->push_back(3);
    }(ord));
    c.spawn(Affinity::none(), waitfor, [](std::vector<int>* o) -> TaskFn {
      co_await self();
      o->push_back(2);
    }(ord));
    co_await c.wait(waitfor);
  }(&order));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(SimEngine, UtilizationAccounted) {
  Runtime rt(sim_cfg(4));
  std::vector<int> v(32, 0);
  rt.run(fanout_root(&v, 32));
  const auto util = rt.utilization();
  std::uint64_t busy = 0;
  for (const auto& u : util) busy += u.busy;
  EXPECT_GT(busy, 0u);
}

TEST(SimEngine, SchedStatsTrackSpawns) {
  Runtime rt(sim_cfg(4));
  std::vector<int> v(16, 0);
  rt.run(fanout_root(&v, 16));
  EXPECT_EQ(rt.sched_stats().spawned, 17u);  // root + 16 children
}

}  // namespace
}  // namespace cool
