#include "core/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cool.hpp"

namespace cool {
namespace {

SystemConfig sim_cfg(std::uint32_t procs) {
  SystemConfig cfg;
  cfg.machine = topo::MachineConfig::dash(procs);
  return cfg;
}

struct Counter {
  Mutex mu;
  int value = 0;
};

TaskFn bump(Counter* ctr, int times) {
  auto& c = co_await self();
  for (int i = 0; i < times; ++i) {
    auto g = co_await c.lock(ctr->mu);
    const int v = ctr->value;  // read-modify-write under the monitor
    co_await c.yield();        // widen the race window
    ctr->value = v + 1;
  }
}

TEST(Sync, MutexSerializesUpdates) {
  Runtime rt(sim_cfg(8));
  Counter ctr;
  rt.run([](Counter* cc) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 16; ++i) {
      c.spawn(Affinity::none(), waitfor, bump(cc, 5));
    }
    co_await c.wait(waitfor);
  }(&ctr));
  EXPECT_EQ(ctr.value, 16 * 5);
  EXPECT_FALSE(ctr.mu.locked());
}

TEST(Sync, MutexHandoffIsFifo) {
  Runtime rt(sim_cfg(1));  // single proc: deterministic contention order
  Mutex mu;
  std::vector<int> order;
  rt.run([](Mutex* m, std::vector<int>* ord) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 5; ++i) {
      c.spawn(Affinity::none(), waitfor, [](Mutex* mm, std::vector<int>* o,
                                            int id) -> TaskFn {
        auto& cc = co_await self();
        auto g = co_await cc.lock(*mm);
        o->push_back(id);
      }(m, ord, i));
    }
    co_await c.wait(waitfor);
  }(&mu, &order));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sync, LockGuardMoveTransfersOwnership) {
  Runtime rt(sim_cfg(1));
  Mutex mu;
  bool checked = false;
  rt.run([](Mutex* m, bool* ok) -> TaskFn {
    auto& c = co_await self();
    auto g1 = co_await c.lock(*m);
    LockGuard g2 = std::move(g1);
    *ok = !g1.owns() && g2.owns() && m->locked();
  }(&mu, &checked));
  EXPECT_TRUE(checked);
  EXPECT_FALSE(mu.locked());
}

TEST(Sync, ExplicitUnlockReleasesEarly) {
  Runtime rt(sim_cfg(1));
  Mutex mu;
  rt.run([](Mutex* m) -> TaskFn {
    auto& c = co_await self();
    auto g = co_await c.lock(*m);
    g.unlock();
    // Re-acquirable immediately by the same task.
    auto g2 = co_await c.lock(*m);
  }(&mu));
  EXPECT_FALSE(mu.locked());
}

TEST(Sync, GroupWaitWithNoTasksDoesNotBlock) {
  Runtime rt(sim_cfg(2));
  bool done = false;
  rt.run([](bool* d) -> TaskFn {
    auto& c = co_await self();
    TaskGroup empty;
    co_await c.wait(empty);
    *d = true;
  }(&done));
  EXPECT_TRUE(done);
}

TEST(Sync, GroupReusableAcrossPhases) {
  Runtime rt(sim_cfg(4));
  std::vector<int> counts(2, 0);
  rt.run([](std::vector<int>* cnt) -> TaskFn {
    auto& c = co_await self();
    for (int phase = 0; phase < 2; ++phase) {
      TaskGroup waitfor;
      for (int i = 0; i < 10; ++i) {
        c.spawn(Affinity::none(), waitfor, [](int* slot) -> TaskFn {
          auto& cc = co_await self();
          cc.work(50);
          ++*slot;  // Serialized per phase by the join below.
        }(&(*cnt)[static_cast<std::size_t>(phase)]));
      }
      co_await c.wait(waitfor);
    }
  }(&counts));
  EXPECT_EQ(counts[0], 10);
  EXPECT_EQ(counts[1], 10);
}

TEST(Sync, MultipleWaitersAllWake) {
  Runtime rt(sim_cfg(4));
  std::vector<int> woke(3, 0);
  rt.run([](std::vector<int>* w) -> TaskFn {
    auto& c = co_await self();
    auto* inner = new TaskGroup;
    TaskGroup outer;
    // One slow producer in `inner`.
    c.spawn(Affinity::none(), *inner, []() -> TaskFn {
      auto& cc = co_await self();
      cc.work(100000);
    }());
    // Three tasks that wait for `inner`.
    for (int i = 0; i < 3; ++i) {
      c.spawn(Affinity::none(), outer, [](TaskGroup* g, int* slot) -> TaskFn {
        auto& cc = co_await self();
        co_await cc.wait(*g);
        *slot = 1;
      }(inner, &(*w)[static_cast<std::size_t>(i)]));
    }
    co_await c.wait(outer);
    delete inner;
  }(&woke));
  for (int v : woke) EXPECT_EQ(v, 1);
}

struct Slot {
  Mutex mu;
  Cond nonempty;
  Cond nonfull;
  bool full = false;
  int value = 0;
};

TaskFn producer(Slot* s, int n) {
  auto& c = co_await self();
  for (int i = 1; i <= n; ++i) {
    auto g = co_await c.lock(s->mu);
    while (s->full) co_await c.wait(s->nonfull, s->mu);
    s->value = i;
    s->full = true;
    s->nonempty.signal(c);
  }
}

TaskFn consumer(Slot* s, int n, long* sum) {
  auto& c = co_await self();
  for (int i = 0; i < n; ++i) {
    auto g = co_await c.lock(s->mu);
    while (!s->full) co_await c.wait(s->nonempty, s->mu);
    *sum += s->value;
    s->full = false;
    s->nonfull.signal(c);
  }
}

TEST(Sync, CondProducerConsumer) {
  Runtime rt(sim_cfg(4));
  Slot slot;
  long sum = 0;
  const int n = 50;
  rt.run([](Slot* s, long* out, int count) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    c.spawn(Affinity::none(), waitfor, producer(s, count));
    c.spawn(Affinity::none(), waitfor, consumer(s, count, out));
    co_await c.wait(waitfor);
  }(&slot, &sum, n));
  EXPECT_EQ(sum, static_cast<long>(n) * (n + 1) / 2);
}

TEST(Sync, CondBroadcastWakesEveryone) {
  Runtime rt(sim_cfg(4));
  struct Gate {
    Mutex mu;
    Cond cv;
    bool open = false;
  } gate;
  std::vector<int> passed(5, 0);
  rt.run([](Gate* g, std::vector<int>* p) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 5; ++i) {
      c.spawn(Affinity::none(), waitfor, [](Gate* gg, int* slot) -> TaskFn {
        auto& cc = co_await self();
        auto l = co_await cc.lock(gg->mu);
        while (!gg->open) co_await cc.wait(gg->cv, gg->mu);
        *slot = 1;
      }(g, &(*p)[static_cast<std::size_t>(i)]));
    }
    // Opener.
    c.spawn(Affinity::none(), waitfor, [](Gate* gg) -> TaskFn {
      auto& cc = co_await self();
      cc.work(50000);  // Let the waiters block first.
      auto l = co_await cc.lock(gg->mu);
      gg->open = true;
      gg->cv.broadcast(cc);
    }(g));
    co_await c.wait(waitfor);
  }(&gate, &passed));
  for (int v : passed) EXPECT_EQ(v, 1);
}

TEST(Sync, LockGuardDoubleReleaseIsNoOp) {
  // unlock() hands the mutex back; the guard's destructor must then do
  // nothing (the non-owning destructor path is what move-from relies on).
  Runtime rt(sim_cfg(1));
  Mutex mu;
  bool reacquired = false;
  rt.run([](Mutex* m, bool* ok) -> TaskFn {
    auto& c = co_await self();
    {
      auto g = co_await c.lock(*m);
      g.unlock();
      // Guard destructs here while not owning: must not unlock again.
    }
    // The mutex is free and immediately reacquirable.
    auto g2 = co_await c.lock(*m);
    *ok = m->locked();
  }(&mu, &reacquired));
  EXPECT_TRUE(reacquired);
  EXPECT_FALSE(mu.locked());
}

TEST(Sync, SignalWithNoWaitersIsNoOp) {
  // A signal (and broadcast) on a waiter-less Cond must be lost, per the
  // monitor contract — a later wait does not consume it.
  Runtime rt(sim_cfg(2));
  struct State {
    Mutex mu;
    Cond cv;
    bool posted = false;
  } st;
  bool woke_for_real = false;
  rt.run([](State* s, bool* ok) -> TaskFn {
    auto& c = co_await self();
    {
      auto g = co_await c.lock(s->mu);
      s->cv.signal(c);     // no waiters: dropped
      s->cv.broadcast(c);  // likewise
    }
    TaskGroup waitfor;
    c.spawn(Affinity::none(), waitfor, [](State* ss, bool* o) -> TaskFn {
      auto& cc = co_await self();
      auto g = co_await cc.lock(ss->mu);
      // Must block despite the earlier signals, until `posted` is set.
      while (!ss->posted) co_await cc.wait(ss->cv, ss->mu);
      *o = true;
    }(s, ok));
    c.spawn(Affinity::none(), waitfor, [](State* ss) -> TaskFn {
      auto& cc = co_await self();
      cc.work(50000);  // let the waiter block first
      auto g = co_await cc.lock(ss->mu);
      ss->posted = true;
      ss->cv.signal(cc);
    }(s));
    co_await c.wait(waitfor);
  }(&st, &woke_for_real));
  EXPECT_TRUE(woke_for_real);
  EXPECT_TRUE(st.posted);
}

TEST(Sync, CondWaitWithoutMutexThrows) {
  Runtime rt(sim_cfg(1));
  Mutex mu;
  Cond cv;
  EXPECT_THROW(rt.run([](Mutex* m, Cond* c0) -> TaskFn {
    auto& c = co_await self();
    co_await c.wait(*c0, *m);  // not holding m
  }(&mu, &cv)),
               util::Error);
}

TEST(Sync, UnlockWithoutHoldThrows) {
  // Destroying a moved-from guard is fine; double unlock throws.
  Runtime rt(sim_cfg(1));
  Mutex mu;
  EXPECT_THROW(rt.run([](Mutex* m) -> TaskFn {
    auto& c = co_await self();
    auto g = co_await c.lock(*m);
    g.unlock();
    (void)m->locked();  // fine
    LockGuard manual(&c, m);  // constructs a guard for an unheld mutex
    manual.unlock();          // throws: unlock of unheld mutex
  }(&mu)),
               util::Error);
}

}  // namespace
}  // namespace cool
