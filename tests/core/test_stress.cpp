// Randomised stress tests: generate random task DAGs with mixed affinity
// hints, mutex-protected counters and nested groups, run them under both
// engines, and check that the results are exactly what a sequential
// evaluation would produce.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.hpp"
#include "core/cool.hpp"

namespace cool {
namespace {

struct Graph {
  // Node i waits for all parents < i, then adds its weight to a shared,
  // mutex-protected accumulator and to its own slot.
  std::vector<std::vector<int>> children;
  std::vector<int> pending;
  std::vector<long> weight;
  int n = 0;
};

Graph make_graph(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  Graph g;
  g.n = n;
  g.children.resize(static_cast<std::size_t>(n));
  g.pending.assign(static_cast<std::size_t>(n), 0);
  g.weight.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    g.weight[static_cast<std::size_t>(i)] = rng.next_in(1, 100);
    // Each node other than 0 gets 1..3 parents among earlier nodes.
    if (i > 0) {
      const int parents = static_cast<int>(rng.next_in(1, 3));
      for (int k = 0; k < parents; ++k) {
        const int p = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i)));
        g.children[static_cast<std::size_t>(p)].push_back(i);
        ++g.pending[static_cast<std::size_t>(i)];
      }
    }
  }
  return g;
}

struct Shared {
  Graph g;
  Mutex mu;                 // protects `total` and `pending`
  long total = 0;
  std::vector<long> slot;
  double* blob = nullptr;   // arena memory for affinity hints
  TaskGroup group;
};

// Deterministic per-node hint mix (no shared RNG: tasks call this
// concurrently under the thread engine).
Affinity random_aff(Shared* s, int node) {
  switch ((node * 2654435761u) % 5) {
    case 0:
      return Affinity::none();
    case 1:
      return Affinity::object(&s->blob[node * 64]);
    case 2:
      return Affinity::task(&s->blob[(node % 7) * 512]);
    case 3:
      return Affinity::processor(node);
    default:
      return Affinity::task_object(&s->blob[(node % 5) * 512],
                                   &s->blob[node * 64]);
  }
}

TaskFn node_task(Shared* s, int node);

TaskFn node_task(Shared* s, int node) {
  auto& c = co_await self();
  c.work(static_cast<std::uint64_t>(
      s->g.weight[static_cast<std::size_t>(node)]));
  std::vector<int> ready;
  {
    auto g = co_await c.lock(s->mu);
    s->total += s->g.weight[static_cast<std::size_t>(node)];
    s->slot[static_cast<std::size_t>(node)] += 1;
    for (int ch : s->g.children[static_cast<std::size_t>(node)]) {
      if (--s->g.pending[static_cast<std::size_t>(ch)] == 0) {
        ready.push_back(ch);
      }
    }
  }
  for (int ch : ready) {
    c.spawn(random_aff(s, ch), s->group, node_task(s, ch));
  }
}

TaskFn root(Shared* s) {
  auto& c = co_await self();
  c.spawn(random_aff(s, 0), s->group, node_task(s, 0));
  co_await c.wait(s->group);
}

struct Params {
  int nodes;
  std::uint64_t seed;
  std::uint32_t procs;
  SystemConfig::Mode mode;
};

class DagStress : public ::testing::TestWithParam<Params> {};

TEST_P(DagStress, EveryNodeRunsExactlyOnce) {
  const Params prm = GetParam();
  SystemConfig sc;
  sc.mode = prm.mode;
  sc.machine = topo::MachineConfig::dash(prm.procs);
  Runtime rt(sc);

  Shared s;
  s.g = make_graph(prm.nodes, prm.seed);
  s.slot.assign(static_cast<std::size_t>(prm.nodes), 0);
  s.blob = rt.alloc_array<double>(64 * 1024, 0);

  rt.run(root(&s));

  long expect = 0;
  for (long w : s.g.weight) expect += w;
  EXPECT_EQ(s.total, expect);
  for (int i = 0; i < prm.nodes; ++i) {
    EXPECT_EQ(s.slot[static_cast<std::size_t>(i)], 1) << "node " << i;
  }
  EXPECT_EQ(rt.tasks_completed(), static_cast<std::uint64_t>(prm.nodes) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DagStress,
    ::testing::Values(Params{50, 1, 4, SystemConfig::Mode::kSim},
                      Params{200, 2, 8, SystemConfig::Mode::kSim},
                      Params{500, 3, 32, SystemConfig::Mode::kSim},
                      Params{1000, 4, 16, SystemConfig::Mode::kSim},
                      Params{50, 5, 4, SystemConfig::Mode::kThreads},
                      Params{200, 6, 8, SystemConfig::Mode::kThreads},
                      Params{500, 7, 16, SystemConfig::Mode::kThreads}));

// Failure injection: one node throws; the error must surface, and the engine
// must stay reusable afterwards (no leaked state corrupting the next run).
TEST(DagStressFailure, ExceptionSurfacesAndEngineSurvives) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(8);
  Runtime rt(sc);
  auto boom = []() -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 20; ++i) {
      c.spawn(Affinity::none(), waitfor, [](int k) -> TaskFn {
        auto& cc = co_await self();
        cc.work(100);
        if (k == 13) throw util::Error("injected failure");
      }(i));
    }
    co_await c.wait(waitfor);
  };
  EXPECT_THROW(rt.run(boom()), util::Error);
  // A fresh runtime still works (engine-level state was not corrupted).
  SystemConfig sc2;
  sc2.machine = topo::MachineConfig::dash(8);
  Runtime rt2(sc2);
  int ok = 0;
  rt2.run([](int* o) -> TaskFn {
    co_await self();
    *o = 1;
  }(&ok));
  EXPECT_EQ(ok, 1);
}

TEST(DagStressFailure, ThreadEngineExceptionSurfaces) {
  SystemConfig sc;
  sc.mode = SystemConfig::Mode::kThreads;
  sc.machine = topo::MachineConfig::dash(4);
  Runtime rt(sc);
  EXPECT_THROW(rt.run([]() -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 10; ++i) {
      c.spawn(Affinity::none(), waitfor, [](int k) -> TaskFn {
        co_await self();
        if (k == 7) throw util::Error("thread injected failure");
      }(i));
    }
    co_await c.wait(waitfor);
  }()),
               util::Error);
}

}  // namespace
}  // namespace cool
