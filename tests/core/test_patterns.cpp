#include "core/patterns.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/cool.hpp"

namespace cool {
namespace {

SystemConfig cfg(std::uint32_t procs, SystemConfig::Mode mode) {
  SystemConfig sc;
  sc.mode = mode;
  sc.machine = topo::MachineConfig::dash(procs);
  return sc;
}

TaskFn phase_worker(Barrier* bar, std::vector<std::atomic<int>>* counts,
                    int phases) {
  auto& c = co_await self();
  for (int ph = 0; ph < phases; ++ph) {
    // All parties must see the same phase counter before anyone moves on.
    co_await bar->wait(c);
    (*counts)[static_cast<std::size_t>(ph)].fetch_add(1);
    co_await bar->wait(c);
  }
}

class BarrierBothEngines
    : public ::testing::TestWithParam<SystemConfig::Mode> {};

TEST_P(BarrierBothEngines, PhasesStayInLockstep) {
  Runtime rt(cfg(8, GetParam()));
  const int parties = 6;
  const int phases = 5;
  Barrier bar(parties);
  // Shared per-phase tally, written between the two barrier waits; with a
  // correct barrier each phase sees exactly `parties` increments and no task
  // races ahead a phase.
  std::vector<std::atomic<int>> tally(static_cast<std::size_t>(phases));
  rt.run([](Barrier* b, std::vector<std::atomic<int>>* t, int np,
            int nph) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < np; ++i) {
      c.spawn(Affinity::none(), waitfor, phase_worker(b, t, nph));
    }
    co_await c.wait(waitfor);
  }(&bar, &tally, parties, phases));
  for (int ph = 0; ph < phases; ++ph) {
    EXPECT_EQ(tally[static_cast<std::size_t>(ph)].load(), parties) << ph;
  }
  EXPECT_EQ(bar.arrived(), 0);
}

INSTANTIATE_TEST_SUITE_P(Engines, BarrierBothEngines,
                         ::testing::Values(SystemConfig::Mode::kSim,
                                           SystemConfig::Mode::kThreads),
                         [](const auto& pinfo) {
                           return pinfo.param == SystemConfig::Mode::kSim
                                      ? "Sim"
                                      : "Threads";
                         });

TEST(Barrier, SinglePartyNeverBlocks) {
  Runtime rt(cfg(2, SystemConfig::Mode::kSim));
  Barrier bar(1);
  int passes = 0;
  rt.run([](Barrier* b, int* p) -> TaskFn {
    auto& c = co_await self();
    for (int i = 0; i < 10; ++i) {
      co_await b->wait(c);
      ++*p;
    }
  }(&bar, &passes));
  EXPECT_EQ(passes, 10);
}

TEST(Barrier, RejectsNonPositiveParties) {
  EXPECT_THROW(Barrier(0), util::Error);
  EXPECT_THROW(Barrier(-2), util::Error);
}

TEST(Barrier, MissingPartyDeadlocksDetectably) {
  Runtime rt(cfg(4, SystemConfig::Mode::kSim));
  static Barrier bar(3);  // static: survives engine teardown
  EXPECT_THROW(rt.run([]() -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    for (int i = 0; i < 2; ++i) {  // only 2 of 3 parties show up
      c.spawn(Affinity::none(), waitfor, [](Barrier* b) -> TaskFn {
        auto& cc = co_await self();
        co_await b->wait(cc);
      }(&bar));
    }
    co_await c.wait(waitfor);
  }()),
               util::Error);
}

TaskFn mark_block(std::vector<int>* h, long b, long e) {
  auto& cc = co_await self();
  cc.work(10);
  for (long i = b; i < e; ++i) (*h)[static_cast<std::size_t>(i)] += 1;
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  Runtime rt(cfg(8, SystemConfig::Mode::kSim));
  std::vector<int> hits(1000, 0);
  rt.run([](std::vector<int>* h) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    // The factory lambda may capture freely — only the *returned coroutine*
    // must take its state as arguments.
    parallel_for(c, waitfor, 0, 1000, 64,
                 [h](long b, long e) { return mark_block(h, b, e); });
    co_await c.wait(waitfor);
  }(&hits));
  for (int v : hits) EXPECT_EQ(v, 1);
}

TaskFn record_proc(std::vector<topo::ProcId>* out, long b) {
  auto& cc = co_await self();
  (*out)[static_cast<std::size_t>(b)] = cc.proc();
}

TEST(ParallelFor, AffinityCallbackControlsPlacement) {
  SystemConfig sc = cfg(8, SystemConfig::Mode::kSim);
  Runtime rt(sc);
  std::vector<topo::ProcId> ran_on(8, 255);
  rt.run([](std::vector<topo::ProcId>* out) -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    parallel_for(
        c, waitfor, 0, 8, 1,
        [out](long b, long) { return record_proc(out, b); },
        [](long b, long) { return Affinity::processor(b); });
    co_await c.wait(waitfor);
  }(&ran_on));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ran_on[static_cast<std::size_t>(i)], static_cast<topo::ProcId>(i));
  }
}

TEST(ParallelFor, EmptyRangeSpawnsNothing) {
  Runtime rt(cfg(2, SystemConfig::Mode::kSim));
  rt.run([]() -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    parallel_for(c, waitfor, 5, 5, 4, [](long, long) -> TaskFn { co_return; });
    co_await c.wait(waitfor);
  }());
  EXPECT_EQ(rt.tasks_completed(), 1u);  // just the root
}

TEST(ParallelFor, BadGrainThrows) {
  Runtime rt(cfg(2, SystemConfig::Mode::kSim));
  EXPECT_THROW(rt.run([]() -> TaskFn {
    auto& c = co_await self();
    TaskGroup waitfor;
    parallel_for(c, waitfor, 0, 10, 0,
                 [](long, long) -> TaskFn { co_return; });
    co_await c.wait(waitfor);
  }()),
               util::Error);
}

}  // namespace
}  // namespace cool
