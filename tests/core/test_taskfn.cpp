#include "core/taskfn.hpp"

#include <gtest/gtest.h>

#include "core/cool.hpp"

namespace cool {
namespace {

TaskFn noop() { co_return; }

TaskFn set_flag(bool* flag) {
  *flag = true;
  co_return;
}

TEST(TaskFn, InvocationCreatesSuspendedCoroutine) {
  bool ran = false;
  TaskFn t = set_flag(&ran);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(ran);  // initial_suspend: body has not started.
}

TEST(TaskFn, DestructionWithoutRunIsSafe) {
  bool ran = false;
  {
    TaskFn t = set_flag(&ran);
    (void)t;
  }
  EXPECT_FALSE(ran);
}

TEST(TaskFn, MoveTransfersOwnership) {
  TaskFn a = noop();
  TaskFn b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  TaskFn c;
  c = std::move(b);
  EXPECT_FALSE(b.valid());
  EXPECT_TRUE(c.valid());
}

TEST(TaskFn, ReleaseHandsOverHandle) {
  TaskFn t = noop();
  auto h = t.release();
  EXPECT_FALSE(t.valid());
  ASSERT_TRUE(h);
  h.destroy();
}

TEST(TaskFn, ArgumentsCopiedIntoFrame) {
  // The argument value must survive the caller's scope.
  int* out = new int(0);
  TaskFn t = [](int v, int* dst) -> TaskFn {
    *dst = v;
    co_return;
  }(41, out);
  // Run it through a 1-proc runtime.
  SystemConfig cfg;
  cfg.machine = topo::MachineConfig::dash(1);
  Runtime rt(cfg);
  rt.run(std::move(t));
  EXPECT_EQ(*out, 41);
  delete out;
}

TEST(TaskFn, SelfAwaiterDoesNotSuspend) {
  // A task that only grabs its context completes in one resume.
  SystemConfig cfg;
  cfg.machine = topo::MachineConfig::dash(1);
  Runtime rt(cfg);
  bool done = false;
  rt.run([](bool* d) -> TaskFn {
    auto& c = co_await self();
    (void)c;
    *d = true;
  }(&done));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace cool
