// Minimal command-line option parser for the benchmark and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag` forms, with
// typed accessors and automatic `--help` text. Unknown options are an error so
// typos in experiment sweeps fail loudly instead of silently running the
// default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cool::util {

class Options {
 public:
  Options(std::string program, std::string description);

  /// Declare options before parse().
  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// A string option that may also be given bare: `--name` keeps the value
  /// empty (but marks the option as given — see given()), `--name=v` sets v.
  /// Unlike other non-flag options, a bare `--name` never consumes the next
  /// argv element.
  void add_optional_string(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) if --help was given.
  /// Throws cool::util::Error on unknown options or malformed values.
  bool parse(int argc, char** argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  /// Whether the option appeared on the command line at all (any kind).
  [[nodiscard]] bool given(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

  /// The program name this option set was declared for.
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  /// One declared option's current (post-parse) value, for machine-readable
  /// config capture. `kind` is 'f'lag, 'i'nt, 'd'ouble, or 's'tring; `value`
  /// is the canonical text form ("true"/"false" for flags).
  struct NamedValue {
    std::string name;
    char kind;
    std::string value;
  };
  /// Every declared option with its effective value, in name order.
  [[nodiscard]] std::vector<NamedValue> snapshot_values() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString, kOptString };
  struct Spec {
    Kind kind;
    std::string help;
    std::string default_text;
    bool set = false;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  Spec& lookup(const std::string& name, Kind kind);
  const Spec& lookup(const std::string& name, Kind kind) const;
  void assign(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
};

}  // namespace cool::util
