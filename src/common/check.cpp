#include "common/check.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cool::util {
namespace {

// -1 = not yet initialised from the environment.
std::atomic<int> g_level{-1};

CheckLevel parse_env() noexcept {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before threads mutate
  // the environment; the result is cached in g_level.
  const char* v = std::getenv("COOL_CHECK_LEVEL");
  if (v == nullptr) return CheckLevel::kDefault;
  if (std::strcmp(v, "off") == 0) return CheckLevel::kOff;
  if (std::strcmp(v, "paranoid") == 0) return CheckLevel::kParanoid;
  return CheckLevel::kDefault;
}

}  // namespace

CheckLevel check_level() noexcept {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(parse_env());
    // Racing initialisers compute the same value; last store wins harmlessly.
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<CheckLevel>(lv);
}

void set_check_level(CheckLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace cool::util
