// Runtime check levels.
//
// COOL_CHECK is always on and COOL_DCHECK vanishes under NDEBUG; between the
// two sits a family of *optional* runtime validations (the scheduler invariant
// checker in src/analysis/) whose cost is too high for every build but which
// must be switchable without recompiling. This header defines the knob:
//
//   COOL_CHECK_LEVEL=off       no optional validation at all
//   COOL_CHECK_LEVEL=default   validate at quiesce points (end of engine runs)
//   COOL_CHECK_LEVEL=paranoid  validate after every scheduler mutation
//
// The level is read from the environment once, on first use; tests override it
// in-process with set_check_level().
#pragma once

namespace cool::util {

enum class CheckLevel {
  kOff = 0,
  kDefault = 1,
  kParanoid = 2,
};

/// The active level. First call parses COOL_CHECK_LEVEL (off / default /
/// paranoid, defaulting to kDefault on absence or an unrecognised value);
/// later calls return the cached value.
[[nodiscard]] CheckLevel check_level() noexcept;

/// Override the level in-process (tests). Takes effect immediately.
void set_check_level(CheckLevel level) noexcept;

/// RAII override: sets `level` for the scope, restores the prior level after.
class ScopedCheckLevel {
 public:
  explicit ScopedCheckLevel(CheckLevel level) noexcept
      : prev_(check_level()) {
    set_check_level(level);
  }
  ScopedCheckLevel(const ScopedCheckLevel&) = delete;
  ScopedCheckLevel& operator=(const ScopedCheckLevel&) = delete;
  ~ScopedCheckLevel() { set_check_level(prev_); }

 private:
  CheckLevel prev_;
};

}  // namespace cool::util
