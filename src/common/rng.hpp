// Deterministic pseudo-random number generation for workload generators.
//
// All benchmarks and tests seed explicitly, so every run of every experiment
// is bit-reproducible. xoshiro256** (Blackman & Vigna) — small, fast, and
// plenty for synthetic workload generation.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace cool::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialise state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    COOL_CHECK(bound > 0, "next_below bound must be positive");
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    COOL_CHECK(lo <= hi, "next_in requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace cool::util
