// Intrusive doubly-linked list.
//
// The COOL runtime scheduler (paper §5) links the non-empty task-affinity
// queues of each server into a doubly-linked list so that enqueue/dequeue and
// "next non-empty queue" are O(1) with no allocation. This container provides
// exactly that: nodes embed their own links, insertion/removal never allocate.
#pragma once

#include <cstddef>
#include <iterator>

#include "common/error.hpp"

namespace cool::util {

/// Embed one of these in any struct that should be linkable.
///
/// Auto-unlink semantics: a hook unlinks itself on destruction, so destroying
/// a node that is still on a list repairs the list instead of leaving a
/// dangling entry. Copying a hook never copies list membership — the copy
/// starts unlinked (copying a linked node into a list would corrupt it).
struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  ListHook() = default;
  ListHook(const ListHook&) noexcept {}
  ListHook& operator=(const ListHook&) noexcept { return *this; }
  ~ListHook() { unlink(); }

  [[nodiscard]] bool is_linked() const noexcept { return prev != nullptr; }

  /// Unlink from whatever list this hook is on. Safe to call when unlinked.
  void unlink() noexcept {
    if (!is_linked()) return;
    prev->next = next;
    next->prev = prev;
    prev = nullptr;
    next = nullptr;
  }
};

/// Intrusive circular doubly-linked list of T, where T embeds a ListHook
/// reachable as `t->*HookPtr`.
template <typename T, ListHook T::* HookPtr>
class IntrusiveList {
 public:
  IntrusiveList() noexcept {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  ~IntrusiveList() { clear(); }

  [[nodiscard]] bool empty() const noexcept { return head_.next == &head_; }

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const ListHook* h = head_.next; h != &head_; h = h->next) ++n;
    return n;
  }

  void push_back(T* item) noexcept {
    ListHook* h = hook(item);
    COOL_DCHECK(!h->is_linked(), "push_back of already-linked node");
    h->prev = head_.prev;
    h->next = &head_;
    head_.prev->next = h;
    head_.prev = h;
  }

  void push_front(T* item) noexcept {
    ListHook* h = hook(item);
    COOL_DCHECK(!h->is_linked(), "push_front of already-linked node");
    h->next = head_.next;
    h->prev = &head_;
    head_.next->prev = h;
    head_.next = h;
  }

  [[nodiscard]] T* front() const noexcept {
    return empty() ? nullptr : owner(head_.next);
  }

  [[nodiscard]] T* back() const noexcept {
    return empty() ? nullptr : owner(head_.prev);
  }

  T* pop_front() noexcept {
    if (empty()) return nullptr;
    T* item = owner(head_.next);
    hook(item)->unlink();
    return item;
  }

  T* pop_back() noexcept {
    if (empty()) return nullptr;
    T* item = owner(head_.prev);
    hook(item)->unlink();
    return item;
  }

  static void erase(T* item) noexcept { hook(item)->unlink(); }

  /// Unlinks every node (does not destroy them — the list does not own).
  void clear() noexcept {
    while (pop_front() != nullptr) {
    }
  }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T*;
    using difference_type = std::ptrdiff_t;

    iterator(ListHook* at, const ListHook* end) noexcept : at_(at), end_(end) {}
    T* operator*() const noexcept { return owner(at_); }
    iterator& operator++() noexcept {
      at_ = at_->next;
      return *this;
    }
    bool operator==(const iterator& o) const noexcept { return at_ == o.at_; }

   private:
    ListHook* at_;
    const ListHook* end_;
  };

  iterator begin() noexcept { return iterator(head_.next, &head_); }
  iterator end() noexcept { return iterator(&head_, &head_); }

  /// Read-only traversal (validators walk queues through const references).
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = const T*;
    using difference_type = std::ptrdiff_t;

    const_iterator(const ListHook* at, const ListHook* end) noexcept
        : at_(at), end_(end) {}
    const T* operator*() const noexcept {
      return owner(const_cast<ListHook*>(at_));
    }
    const_iterator& operator++() noexcept {
      at_ = at_->next;
      return *this;
    }
    bool operator==(const const_iterator& o) const noexcept {
      return at_ == o.at_;
    }

   private:
    const ListHook* at_;
    const ListHook* end_;
  };

  const_iterator begin() const noexcept {
    return const_iterator(head_.next, &head_);
  }
  const_iterator end() const noexcept { return const_iterator(&head_, &head_); }

 private:
  static ListHook* hook(T* item) noexcept { return &(item->*HookPtr); }

  static T* owner(ListHook* h) noexcept {
    // Recover the T* from the embedded hook via member-pointer offset.
    alignas(T) static constexpr char probe_storage[sizeof(T)]{};
    const T* probe = reinterpret_cast<const T*>(probe_storage);
    const auto offset = reinterpret_cast<const char*>(&(probe->*HookPtr)) -
                        reinterpret_cast<const char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(h) - offset);
  }

  ListHook head_;
};

}  // namespace cool::util
