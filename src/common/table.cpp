#include "common/table.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace cool::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  COOL_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  COOL_CHECK(!rows_.empty(), "call row() before cell()");
  COOL_CHECK(rows_.back().size() < headers_.size(), "too many cells in row");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  return cell(std::string(buf));
}

Table& Table::cell(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  return cell(std::string(buf));
}

Table& Table::cell(int value) { return cell(static_cast<std::int64_t>(value)); }

Table& Table::cell_pct(double fraction, int precision) {
  if (!std::isfinite(fraction)) return cell("-");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, 100.0 * fraction);
  return cell(std::string(buf));
}

Table& Table::cell_ratio(double value, int precision) {
  if (!std::isfinite(value)) return cell("-");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fx", precision, value);
  return cell(std::string(buf));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      out += "  ";
      // Right-align everything but the first column (labels).
      if (c == 0) {
        out += text;
        out.append(widths[c] - text.size(), ' ');
      } else {
        out.append(widths[c] - text.size(), ' ');
        out += text;
      }
    }
    out += '\n';
  };

  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + '\n';
  for (const auto& r : rows_) emit_row(r);
  return out;
}

std::string Table::to_csv() const {
  auto field = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '\"') quoted += '\"';
      quoted += ch;
    }
    quoted += '\"';
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += field(headers_[c]);
  }
  out += '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += ',';
      out += field(c < r.size() ? r[c] : std::string());
    }
    out += '\n';
  }
  return out;
}

void Table::print(std::FILE* out) const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace cool::util
