// Lightweight statistics accumulators used by the performance monitor and the
// benchmark harness, plus the sharding helper concurrent counters build on.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace cool::util {

/// Fixed array of cache-line-aligned shards of T, one per concurrent writer
/// (e.g. one per scheduler server). Writers update only their own shard, so
/// hot counters never false-share a cache line; readers fold the shards into
/// an aggregate. T must be default-constructible; it need not be copyable or
/// movable (atomics are fine).
template <typename T>
class Sharded {
 public:
  explicit Sharded(std::size_t n_shards) : shards_(n_shards) {
    COOL_CHECK(n_shards >= 1, "Sharded needs at least one shard");
  }

  Sharded(const Sharded&) = delete;
  Sharded& operator=(const Sharded&) = delete;

  [[nodiscard]] std::size_t n_shards() const noexcept { return shards_.size(); }

  /// The shard for writer `i`; out-of-range writers wrap around.
  [[nodiscard]] T& shard(std::size_t i) noexcept {
    return shards_[i % shards_.size()].value;
  }
  [[nodiscard]] const T& shard(std::size_t i) const noexcept {
    return shards_[i % shards_.size()].value;
  }

  /// Fold every shard into `acc` via `fn(acc, shard)` and return it. Shards
  /// are visited in index order, so aggregation is deterministic.
  template <typename Acc, typename Fn>
  [[nodiscard]] Acc aggregate(Acc acc, Fn&& fn) const {
    for (const Cell& c : shards_) fn(acc, c.value);
    return acc;
  }

 private:
  struct alignas(64) Cell {
    T value{};
  };
  std::vector<Cell> shards_;
};

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void reset() noexcept { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [0, bucket_width * n_buckets); the last bucket
/// also absorbs overflow. Used e.g. for task run-length distributions.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t n_buckets)
      : width_(bucket_width), counts_(n_buckets, 0) {
    COOL_CHECK(bucket_width > 0.0, "bucket width must be positive");
    COOL_CHECK(n_buckets > 0, "need at least one bucket");
  }

  void add(double x) noexcept {
    auto idx = static_cast<std::size_t>(std::max(0.0, x) / width_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    COOL_CHECK(i < counts_.size(), "histogram bucket out of range");
    return counts_[i];
  }
  [[nodiscard]] std::size_t n_buckets() const noexcept { return counts_.size(); }

  /// Value below which `q` (0..1) of samples fall (bucket upper edge).
  [[nodiscard]] double quantile(double q) const {
    COOL_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (total_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) return width_ * static_cast<double>(i + 1);
    }
    return width_ * static_cast<double>(counts_.size());
  }

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace cool::util
