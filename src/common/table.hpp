// Fixed-width ASCII table printer used by every figure/table benchmark to
// emit the paper's rows and series in a uniform, diffable format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace cool::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  /// Format a fraction in [0,1] as a percentage ("12.3%"). Values outside
  /// [0,1] still render (e.g. "104.0%"); non-finite values render as "-".
  Table& cell_pct(double fraction, int precision = 1);
  /// Format a multiplier as a ratio ("1.97x"); non-finite values render "-".
  Table& cell_ratio(double value, int precision = 2);

  /// Render to stdout (or any FILE*).
  void print(std::FILE* out = stdout) const;

  /// Render as a string (used by tests).
  [[nodiscard]] std::string to_string() const;

  /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Structural access for machine-readable exports (obs::BenchRecord).
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows_data()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cool::util
