// Error type and checked-assertion macros used across the COOL reproduction.
//
// We deliberately throw on contract violations (rather than abort) so tests
// can exercise failure paths, e.g. migrating an unregistered range or naming
// a bad processor id.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>

namespace cool::util {

/// Exception thrown on any violated runtime contract in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

[[noreturn]] inline void raise(const char* file, int line, std::string msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + std::move(msg));
}

}  // namespace cool::util

/// Always-on contract check: throws cool::util::Error with location info.
#define COOL_CHECK(cond, msg)                                  \
  do {                                                         \
    if (!(cond)) {                                             \
      ::cool::util::raise(__FILE__, __LINE__,                  \
                          std::string("CHECK failed: " #cond   \
                                      " — ") +                 \
                              (msg));                          \
    }                                                          \
  } while (0)

/// Debug-only contract check (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define COOL_DCHECK(cond, msg) ((void)0)
#else
#define COOL_DCHECK(cond, msg) COOL_CHECK(cond, msg)
#endif
