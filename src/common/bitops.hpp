// Small bit-manipulation helpers shared by the cache and queue modules.
#pragma once

#include <bit>
#include <cstdint>

#include "common/error.hpp"

namespace cool::util {

constexpr bool is_pow2(std::uint64_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)); requires v > 0.
constexpr unsigned log2_floor(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// log2 of a power of two (checked).
inline unsigned log2_exact(std::uint64_t v) {
  COOL_CHECK(is_pow2(v), "log2_exact requires a power of two");
  return log2_floor(v);
}

/// Round v up to the next multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

/// Round v down to a multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t align) noexcept {
  return v & ~(align - 1);
}

}  // namespace cool::util
