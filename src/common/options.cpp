#include "common/options.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace cool::util {

Options::Options(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Options::add_flag(const std::string& name, const std::string& help) {
  Spec s;
  s.kind = Kind::kFlag;
  s.help = help;
  s.default_text = "false";
  specs_.emplace(name, std::move(s));
}

void Options::add_int(const std::string& name, std::int64_t default_value,
                      const std::string& help) {
  Spec s;
  s.kind = Kind::kInt;
  s.help = help;
  s.int_value = default_value;
  s.default_text = std::to_string(default_value);
  specs_.emplace(name, std::move(s));
}

void Options::add_double(const std::string& name, double default_value,
                         const std::string& help) {
  Spec s;
  s.kind = Kind::kDouble;
  s.help = help;
  s.double_value = default_value;
  s.default_text = std::to_string(default_value);
  specs_.emplace(name, std::move(s));
}

void Options::add_string(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  Spec s;
  s.kind = Kind::kString;
  s.help = help;
  s.string_value = default_value;
  s.default_text = default_value.empty() ? "\"\"" : default_value;
  specs_.emplace(name, std::move(s));
}

void Options::add_optional_string(const std::string& name,
                                  const std::string& help) {
  Spec s;
  s.kind = Kind::kOptString;
  s.help = help;
  s.default_text = "unset";
  specs_.emplace(name, std::move(s));
}

Options::Spec& Options::lookup(const std::string& name, Kind kind) {
  auto it = specs_.find(name);
  COOL_CHECK(it != specs_.end(), "unknown option --" + name);
  // get_string serves both string kinds.
  const bool ok = it->second.kind == kind ||
                  (kind == Kind::kString && it->second.kind == Kind::kOptString);
  COOL_CHECK(ok, "option --" + name + " has another type");
  return it->second;
}

const Options::Spec& Options::lookup(const std::string& name, Kind kind) const {
  return const_cast<Options*>(this)->lookup(name, kind);
}

void Options::assign(const std::string& name, const std::string& value) {
  auto it = specs_.find(name);
  COOL_CHECK(it != specs_.end(), "unknown option --" + name);
  Spec& s = it->second;
  s.set = true;
  char* end = nullptr;
  switch (s.kind) {
    case Kind::kFlag:
      COOL_CHECK(value == "true" || value == "false" || value.empty(),
                 "flag --" + name + " takes no value (or true/false)");
      s.flag_value = value != "false";
      break;
    case Kind::kInt:
      s.int_value = std::strtoll(value.c_str(), &end, 10);
      COOL_CHECK(end != nullptr && *end == '\0' && !value.empty(),
                 "option --" + name + " expects an integer, got '" + value + "'");
      break;
    case Kind::kDouble:
      s.double_value = std::strtod(value.c_str(), &end);
      COOL_CHECK(end != nullptr && *end == '\0' && !value.empty(),
                 "option --" + name + " expects a number, got '" + value + "'");
      break;
    case Kind::kString:
    case Kind::kOptString:
      s.string_value = value;
      break;
  }
}

bool Options::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    COOL_CHECK(arg.size() > 2 && arg[0] == '-' && arg[1] == '-',
               "expected --option, got '" + arg + "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      assign(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = specs_.find(arg);
    COOL_CHECK(it != specs_.end(), "unknown option --" + arg);
    if (it->second.kind == Kind::kFlag) {
      assign(arg, "true");
    } else if (it->second.kind == Kind::kOptString) {
      assign(arg, "");  // bare form: given, value empty; next argv untouched
    } else {
      COOL_CHECK(i + 1 < argc, "option --" + arg + " needs a value");
      assign(arg, argv[++i]);
    }
  }
  return true;
}

bool Options::flag(const std::string& name) const {
  return lookup(name, Kind::kFlag).flag_value;
}

std::int64_t Options::get_int(const std::string& name) const {
  return lookup(name, Kind::kInt).int_value;
}

double Options::get_double(const std::string& name) const {
  return lookup(name, Kind::kDouble).double_value;
}

const std::string& Options::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).string_value;
}

bool Options::given(const std::string& name) const {
  auto it = specs_.find(name);
  COOL_CHECK(it != specs_.end(), "unknown option --" + name);
  return it->second.set;
}

std::vector<Options::NamedValue> Options::snapshot_values() const {
  std::vector<NamedValue> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) {
    NamedValue v;
    v.name = name;
    switch (spec.kind) {
      case Kind::kFlag:
        v.kind = 'f';
        v.value = spec.flag_value ? "true" : "false";
        break;
      case Kind::kInt:
        v.kind = 'i';
        v.value = std::to_string(spec.int_value);
        break;
      case Kind::kDouble: {
        v.kind = 'd';
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", spec.double_value);
        v.value = buf;
        break;
      }
      case Kind::kString:
      case Kind::kOptString:
        v.kind = 's';
        v.value = spec.string_value;
        break;
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::string Options::usage() const {
  std::string out = program_ + " — " + description_ + "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    out += "  --" + name;
    if (spec.kind == Kind::kOptString) {
      out += "[=<value>]";
    } else if (spec.kind != Kind::kFlag) {
      out += "=<value>";
    }
    out += "\n      " + spec.help + " (default: " + spec.default_text + ")\n";
  }
  return out;
}

}  // namespace cool::util
