#include "topology/levels.hpp"

namespace cool::topo {

std::vector<ProcId> cluster_members(const MachineConfig& m, ClusterId c) {
  std::vector<ProcId> out;
  const std::uint32_t first = c * m.procs_per_cluster;
  COOL_CHECK(first < m.n_procs, "cluster id out of range");
  const std::uint32_t last =
      first + m.procs_per_cluster < m.n_procs ? first + m.procs_per_cluster
                                              : m.n_procs;
  out.reserve(last - first);
  for (std::uint32_t p = first; p < last; ++p) {
    out.push_back(static_cast<ProcId>(p));
  }
  return out;
}

std::vector<TopoLevel> enumerate_levels(const MachineConfig& m) {
  std::vector<TopoLevel> levels;
  levels.reserve(1 + m.n_clusters());
  TopoLevel root;
  root.kind = TopoLevel::Kind::kMachine;
  root.members.reserve(m.n_procs);
  for (std::uint32_t p = 0; p < m.n_procs; ++p) {
    root.members.push_back(static_cast<ProcId>(p));
  }
  levels.push_back(std::move(root));
  for (std::uint32_t c = 0; c < m.n_clusters(); ++c) {
    TopoLevel lvl;
    lvl.kind = TopoLevel::Kind::kCluster;
    lvl.cluster = static_cast<ClusterId>(c);
    lvl.members = cluster_members(m, static_cast<ClusterId>(c));
    levels.push_back(std::move(lvl));
  }
  return levels;
}

}  // namespace cool::topo
