// Machine description for the simulated multiprocessor.
//
// The paper evaluates on the Stanford DASH prototype: 32 processors in 8
// clusters of 4, two-level caches (64 KB L1, 256 KB L2), and a three-level
// memory hierarchy with latencies of roughly 1 cycle (L1), 14 cycles (L2),
// 30 cycles (local cluster memory) and 100–150 cycles (remote memory).
// MachineConfig captures exactly those parameters; dash() reproduces the
// paper's machine and is the default for every figure benchmark.
#pragma once

#include <cstdint>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace cool::topo {

using ProcId = std::uint32_t;
using ClusterId = std::uint32_t;

/// Reference latencies, in processor cycles.
struct LatencyModel {
  std::uint32_t l1_hit = 1;            ///< First-level cache hit.
  std::uint32_t l2_hit = 14;           ///< Second-level cache hit.
  std::uint32_t local_mem = 30;        ///< Miss serviced by local cluster memory.
  std::uint32_t remote_mem = 120;      ///< Miss serviced by a remote cluster memory.
  std::uint32_t remote_cache = 132;    ///< Miss serviced dirty from a remote cache.
  std::uint32_t local_cache = 45;      ///< Miss serviced dirty from a cache in-cluster.
  std::uint32_t inval_local = 12;      ///< Invalidate copies within the cluster.
  std::uint32_t inval_remote = 50;     ///< Invalidate copies in remote clusters (partially overlapped by the write buffer).
  std::uint32_t mem_occupancy = 8;     ///< Controller occupancy per line fill
                                       ///< (bandwidth/contention model).
  std::uint32_t page_copy = 2000;      ///< Cycles to migrate one page of memory.
};

struct MachineConfig {
  std::uint32_t n_procs = 32;
  std::uint32_t procs_per_cluster = 4;

  std::uint32_t line_bytes = 16;       ///< DASH cache line size.
  std::uint32_t page_bytes = 4096;     ///< DASH page size (migration grain).

  std::uint32_t l1_bytes = 64 * 1024;
  std::uint32_t l1_assoc = 1;          ///< DASH L1 is direct mapped.
  std::uint32_t l2_bytes = 256 * 1024;
  std::uint32_t l2_assoc = 1;          ///< DASH L2 is direct mapped.

  LatencyModel lat;

  /// The paper's machine: 32 procs, 8 clusters of 4.
  static MachineConfig dash(std::uint32_t n_procs = 32) {
    MachineConfig m;
    m.n_procs = n_procs;
    return m;
  }

  /// A scaled-down machine (smaller caches) so scaled-down problem sizes
  /// exhibit the paper-scale cache pressure. Used by tests and a few benches.
  static MachineConfig dash_small(std::uint32_t n_procs = 16) {
    MachineConfig m;
    m.n_procs = n_procs;
    m.l1_bytes = 8 * 1024;
    m.l2_bytes = 32 * 1024;
    return m;
  }

  /// Throws cool::util::Error if the configuration is inconsistent.
  void validate() const;

  [[nodiscard]] std::uint32_t n_clusters() const {
    return (n_procs + procs_per_cluster - 1) / procs_per_cluster;
  }
  [[nodiscard]] ClusterId cluster_of(ProcId p) const {
    COOL_DCHECK(p < n_procs, "processor id out of range");
    return p / procs_per_cluster;
  }
  [[nodiscard]] bool same_cluster(ProcId a, ProcId b) const {
    return cluster_of(a) == cluster_of(b);
  }

  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const {
    return addr / line_bytes;
  }
  [[nodiscard]] std::uint64_t page_of(std::uint64_t addr) const {
    return addr / page_bytes;
  }
};

}  // namespace cool::topo
