// Topology-tree level enumeration for hierarchical schedulers.
//
// The DASH machine is a two-level tree: the machine root over a row of
// clusters, each cluster over `procs_per_cluster` processors. Work
// distribution policies that follow the hierarchy (sched::Balancer) need a
// stable, enumerable description of that tree: one TopoLevel per interior
// node, each knowing its member processors. enumerate_levels() produces the
// machine level first (index kMachineLevel == 0) and then one level per
// cluster in cluster-id order (index 1 + cluster id), so both the scheduler
// and its observability counters can address levels by a dense index.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/machine.hpp"

namespace cool::topo {

struct TopoLevel {
  enum class Kind : std::uint8_t {
    kMachine,  ///< The root: every processor is a member.
    kCluster,  ///< One cluster: its `procs_per_cluster` processors.
  };

  Kind kind = Kind::kMachine;
  ClusterId cluster = 0;  ///< Meaningful for kCluster only.
  std::vector<ProcId> members;  ///< Member processors, ascending.

  [[nodiscard]] bool contains(ProcId p) const {
    for (const ProcId m : members) {
      if (m == p) return true;
    }
    return false;
  }
};

/// Index of the machine level in enumerate_levels() output.
inline constexpr std::size_t kMachineLevel = 0;

/// Index of cluster `c`'s level in enumerate_levels() output.
[[nodiscard]] inline std::size_t cluster_level(ClusterId c) {
  return 1 + static_cast<std::size_t>(c);
}

/// Member processors of cluster `c` (ascending). The last cluster may be
/// partial when n_procs is not a multiple of procs_per_cluster.
[[nodiscard]] std::vector<ProcId> cluster_members(const MachineConfig& m,
                                                  ClusterId c);

/// Enumerate the machine's balancing levels: the machine root, then every
/// cluster in id order. Total size is 1 + n_clusters().
[[nodiscard]] std::vector<TopoLevel> enumerate_levels(const MachineConfig& m);

}  // namespace cool::topo
