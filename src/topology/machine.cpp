#include "topology/machine.hpp"

namespace cool::topo {

void MachineConfig::validate() const {
  COOL_CHECK(n_procs >= 1, "need at least one processor");
  COOL_CHECK(n_procs <= 64, "directory sharer mask supports at most 64 processors");
  COOL_CHECK(procs_per_cluster >= 1, "need at least one processor per cluster");
  COOL_CHECK(util::is_pow2(line_bytes), "line size must be a power of two");
  COOL_CHECK(util::is_pow2(page_bytes), "page size must be a power of two");
  COOL_CHECK(page_bytes >= line_bytes, "pages must be at least one line");
  COOL_CHECK(l1_assoc >= 1 && l2_assoc >= 1, "associativity must be >= 1");
  COOL_CHECK(l1_bytes % (line_bytes * l1_assoc) == 0,
             "L1 size must be a multiple of line_bytes * assoc");
  COOL_CHECK(l2_bytes % (line_bytes * l2_assoc) == 0,
             "L2 size must be a multiple of line_bytes * assoc");
  COOL_CHECK(util::is_pow2(l1_bytes / (line_bytes * l1_assoc)),
             "L1 set count must be a power of two");
  COOL_CHECK(util::is_pow2(l2_bytes / (line_bytes * l2_assoc)),
             "L2 set count must be a power of two");
  COOL_CHECK(l2_bytes >= l1_bytes, "L2 must be at least as large as L1 (inclusion)");
}

}  // namespace cool::topo
