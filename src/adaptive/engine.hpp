// AdaptiveEngine — the online loop that closes profiler → advisor → scheduler.
//
// The offline story (PR 3) was: run, dump the locality profile, read the
// advisor's prose, edit the source to add hints or migrate() calls, rerun.
// This engine runs the same advisor rules *during* the run and applies their
// decisions through three actuators, no source changes required:
//
//   1. memory   — MemorySystem::migrate(): rehome an object next to its
//      dominant user (migrate-object rule), or spread a scattered-access
//      object page-round-robin across the machine (distribute-object rule);
//   2. hints    — a per-object promotion table in the scheduler: tasks with
//      plain OBJECT affinity on a hot shared object are promoted to
//      TASK+OBJECT, so they queue on one server and run back-to-back
//      (task-affinity rule), exactly the hint gauss adds by hand;
//   3. steal policy — flip Policy::steal_object_tasks / steal_whole_sets and
//      cap the steal-scan length when the steal-storm / idle-imbalance /
//      whole-set rules fire;
//   4. balancer policy (opt-in, AdaptPolicy::enable_balancer) — switch
//      Policy::balancer from the default Stealing balancer to the Average
//      balancer when a queue pile-up persists *after* the steal-policy
//      relief, and back once the pile-up drains. Switches route through
//      Scheduler::adapt_policy, which rebuilds the balancer tree at the
//      epoch boundary; a dedicated BalancerGovernor (dwell + lifetime cap)
//      paces them because a swap is the most disruptive actuator.
//
// Epochs are task-count (or sim-cycle) driven; each epoch diffs the profiler
// and metric snapshots against the previous epoch so rules judge *recent*
// behaviour, not the whole past. Every actuator firing passes the hysteresis
// governor and is appended to a decision log that benches export (JSON +
// Chrome trace). Under the sim engine all of this is called from the single
// simulation thread, so decisions are deterministic: two runs of the same
// program produce identical logs.
//
// The engine talks to the runtime through `Hooks` (plain std::functions), so
// it depends on no concrete engine type and unit tests can drive it with
// synthetic snapshots.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "adaptive/governor.hpp"
#include "adaptive/policy.hpp"
#include "obs/advisor_rules.hpp"
#include "obs/latency_hist.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sched/scheduler.hpp"
#include "topology/machine.hpp"

namespace cool::adaptive {

/// One actuator firing. `cycle` is the dispatching processor's clock when the
/// epoch ran; `cost_cycles` is what the actuator charged that processor.
struct Decision {
  std::uint64_t epoch = 0;
  std::uint64_t cycle = 0;
  obs::AdviceKind rule = obs::AdviceKind::kMigrateObject;
  std::string subject;
  std::string action;
  std::uint64_t cost_cycles = 0;
};

/// Runtime services the engine needs, as callables so the engine stays
/// independent of the concrete runtime/engine types.
struct Hooks {
  std::function<obs::ProfileSnapshot()> profile;  ///< Cumulative profile.
  std::function<obs::Snapshot()> metrics;         ///< Cumulative metrics.
  /// Migrate [addr, addr+bytes) (profiler address space) to new_home;
  /// returns the cycles to charge to `caller`. `now` is the caller's clock
  /// (for trace timestamps).
  std::function<std::uint64_t(topo::ProcId caller, std::uint64_t addr,
                              std::uint64_t bytes, topo::ProcId new_home,
                              std::uint64_t now)>
      migrate;
  /// Enable/disable TASK-affinity promotion for the object whose profiler
  /// set key is `set_key`.
  std::function<void(std::uint64_t set_key, bool on)> promote;
  /// Mutate the live scheduler policy (sim: single-threaded, safe).
  std::function<void(const std::function<void(sched::Policy&)>&)> mutate_policy;
  /// Read the current scheduler policy.
  std::function<sched::Policy()> policy;
};

class AdaptiveEngine {
 public:
  AdaptiveEngine(const topo::MachineConfig& machine, AdaptPolicy policy,
                 Hooks hooks);

  /// Notify one task dispatch on `proc` whose clock reads `now`. When the
  /// notification closes an epoch the engine evaluates and acts; the return
  /// value is the cycles to charge to `proc` (0 between epochs).
  std::uint64_t on_task_dispatch(topo::ProcId proc, std::uint64_t now);

  /// Attach (or detach, with nullptr) the latency sensor feeding the
  /// AdaptPolicy::latency_target_cycles objective: a snapshot of the
  /// serving layer's *cumulative* per-request latency histogram (the
  /// load::Driver's). Each epoch diffs consecutive snapshots, so the engine
  /// judges the epoch's own p99, not the run-so-far's. Sim-thread only.
  void set_latency_sensor(std::function<obs::LatencyHist()> sensor) {
    latency_sensor_ = std::move(sensor);
  }

  [[nodiscard]] const std::vector<Decision>& log() const noexcept {
    return log_;
  }
  /// Deterministic JSON array of decisions (the bench-record export).
  [[nodiscard]] std::string log_json() const;
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epoch_; }
  [[nodiscard]] const AdaptPolicy& policy() const noexcept { return pol_; }
  [[nodiscard]] const Governor& governor() const noexcept { return gov_; }
  [[nodiscard]] const BalancerGovernor& balancer_governor() const noexcept {
    return bal_gov_;
  }

 private:
  std::uint64_t run_epoch(topo::ProcId proc, std::uint64_t now);
  /// The latency-target objective: compare this epoch's p99 against the
  /// policy target and climb/descend the relief ladder. Shares the per-epoch
  /// action budget via `actions`.
  void latency_objective(const obs::Snapshot& dm, std::uint64_t now,
                         std::uint32_t& actions);
  /// Apply one finding through its actuator; returns cycles charged and
  /// appends to log_ iff it acted.
  std::uint64_t act(const obs::advisor::Finding& f, topo::ProcId proc,
                    std::uint64_t now);
  void record(const obs::advisor::Finding& f, std::string action,
              std::uint64_t now, std::uint64_t cost);

  topo::MachineConfig machine_;
  AdaptPolicy pol_;
  Hooks hooks_;
  Governor gov_;
  BalancerGovernor bal_gov_;
  /// True while the balancer actuator holds the scheduler away from the
  /// Stealing default; the revert path only fires for our own switches, so
  /// a user-selected Average/Reserve balancer is never "reverted".
  bool switched_balancer_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t tasks_since_ = 0;
  std::uint64_t last_epoch_cycle_ = 0;
  std::uint32_t distribute_cursor_ = 0;  ///< Round-robin home for rehoming.
  std::uint32_t migrate_cursor_ = 0;  ///< Rotates sub-page migration targets.
  /// Steal-relief state machine: the steal-storm response (letting OBJECT
  /// tasks be stolen) is the right medicine while work is piled on one
  /// processor, but once the migrate/distribute actuators have rehomed the
  /// hot objects the same flag turns local references remote. Track whether
  /// we enabled it and how many rehomes happened since, and revert when the
  /// data has spread (the governor paces both directions with one key).
  bool enabled_steal_object_ = false;
  std::uint64_t rehomes_since_enable_ = 0;
  /// Objects/sets already acted on — migrations and promotions are one-shot
  /// per subject, so a cold-cache echo of the rule can't thrash the object
  /// back and forth.
  std::set<std::string> done_;
  obs::ProfileSnapshot prev_profile_;
  obs::Snapshot prev_metrics_;
  /// Latency-target objective state: the sensor (cumulative request
  /// histogram), the previous epoch's snapshot for deltas, and whether the
  /// steal relief currently on was ours (so only we revert it).
  std::function<obs::LatencyHist()> latency_sensor_;
  obs::LatencyHist prev_latency_;
  bool latency_relief_on_ = false;
  std::vector<Decision> log_;
};

}  // namespace cool::adaptive
