#include "adaptive/policy.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace cool::adaptive {

std::string AdaptPolicy::to_json() const {
  obs::json::Writer w;
  w.begin_object();
  w.key("epoch_tasks").uint_value(epoch_tasks);
  w.key("epoch_cycles").uint_value(epoch_cycles);
  w.key("confirm_epochs").uint_value(confirm_epochs);
  w.key("cooldown_epochs").uint_value(cooldown_epochs);
  w.key("max_actions_per_epoch").uint_value(max_actions_per_epoch);
  w.key("epoch_cost_cycles").uint_value(epoch_cost_cycles);
  w.key("enable_migrate").bool_value(enable_migrate);
  w.key("enable_distribute").bool_value(enable_distribute);
  w.key("enable_hints").bool_value(enable_hints);
  w.key("enable_steal_policy").bool_value(enable_steal_policy);
  w.key("enable_balancer").bool_value(enable_balancer);
  w.key("latency_target_cycles").uint_value(latency_target_cycles);
  w.key("latency_min_samples").uint_value(latency_min_samples);
  w.key("balancer_dwell_epochs").uint_value(balancer_dwell_epochs);
  w.key("balancer_max_switches").uint_value(balancer_max_switches);
  w.key("rules").begin_object();
  w.key("min_misses").uint_value(rules.min_misses);
  w.key("dominant_frac").number_value(rules.dominant_frac);
  w.key("remote_frac").number_value(rules.remote_frac);
  w.key("min_set_tasks").uint_value(rules.min_set_tasks);
  w.key("steal_fail_ratio").number_value(rules.steal_fail_ratio);
  w.key("min_failed_scans").uint_value(rules.min_failed_scans);
  w.key("idle_frac").number_value(rules.idle_frac);
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {

std::uint64_t as_uint(const obs::json::Value& v, const std::string& key) {
  if (!v.is_number() || v.num < 0) {
    throw util::Error("adapt policy: '" + key + "' must be a non-negative number");
  }
  return static_cast<std::uint64_t>(v.num);
}

double as_double(const obs::json::Value& v, const std::string& key) {
  if (!v.is_number()) {
    throw util::Error("adapt policy: '" + key + "' must be a number");
  }
  return v.num;
}

bool as_bool(const obs::json::Value& v, const std::string& key) {
  if (v.kind != obs::json::Value::Kind::kBool) {
    throw util::Error("adapt policy: '" + key + "' must be a boolean");
  }
  return v.boolean;
}

void apply_rules(const obs::json::Value& r, obs::AdvisorConfig& rules) {
  if (!r.is_object()) throw util::Error("adapt policy: 'rules' must be an object");
  for (const auto& [key, v] : r.obj) {
    if (key == "min_misses") rules.min_misses = as_uint(v, key);
    else if (key == "dominant_frac") rules.dominant_frac = as_double(v, key);
    else if (key == "remote_frac") rules.remote_frac = as_double(v, key);
    else if (key == "min_set_tasks") rules.min_set_tasks = as_uint(v, key);
    else if (key == "steal_fail_ratio") rules.steal_fail_ratio = as_double(v, key);
    else if (key == "min_failed_scans") rules.min_failed_scans = as_uint(v, key);
    else if (key == "idle_frac") rules.idle_frac = as_double(v, key);
    else throw util::Error("adapt policy: unknown rules key '" + key + "'");
  }
}

}  // namespace

AdaptPolicy parse_adapt_policy(const std::string& json_text) {
  obs::json::Value root;
  std::string err;
  if (!obs::json::parse(json_text, root, &err)) {
    throw util::Error("adapt policy: bad JSON: " + err);
  }
  if (!root.is_object()) {
    throw util::Error("adapt policy: top level must be an object");
  }
  AdaptPolicy p;
  for (const auto& [key, v] : root.obj) {
    if (key == "epoch_tasks") p.epoch_tasks = as_uint(v, key);
    else if (key == "epoch_cycles") p.epoch_cycles = as_uint(v, key);
    else if (key == "confirm_epochs") {
      p.confirm_epochs = static_cast<std::uint32_t>(as_uint(v, key));
    } else if (key == "cooldown_epochs") {
      p.cooldown_epochs = static_cast<std::uint32_t>(as_uint(v, key));
    } else if (key == "max_actions_per_epoch") {
      p.max_actions_per_epoch = static_cast<std::uint32_t>(as_uint(v, key));
    } else if (key == "epoch_cost_cycles") {
      p.epoch_cost_cycles = as_uint(v, key);
    } else if (key == "enable_migrate") p.enable_migrate = as_bool(v, key);
    else if (key == "enable_distribute") p.enable_distribute = as_bool(v, key);
    else if (key == "enable_hints") p.enable_hints = as_bool(v, key);
    else if (key == "enable_steal_policy") p.enable_steal_policy = as_bool(v, key);
    else if (key == "enable_balancer") p.enable_balancer = as_bool(v, key);
    else if (key == "latency_target_cycles") {
      p.latency_target_cycles = as_uint(v, key);
    } else if (key == "latency_min_samples") {
      p.latency_min_samples = as_uint(v, key);
    } else if (key == "balancer_dwell_epochs") {
      p.balancer_dwell_epochs = static_cast<std::uint32_t>(as_uint(v, key));
    } else if (key == "balancer_max_switches") {
      p.balancer_max_switches = static_cast<std::uint32_t>(as_uint(v, key));
    } else if (key == "rules") apply_rules(v, p.rules);
    else throw util::Error("adapt policy: unknown key '" + key + "'");
  }
  if (p.epoch_tasks == 0 && p.epoch_cycles == 0) {
    throw util::Error(
        "adapt policy: epoch_tasks and epoch_cycles cannot both be 0 — the "
        "engine would never evaluate");
  }
  return p;
}

AdaptPolicy load_adapt_policy(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::Error("adapt policy: cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_adapt_policy(ss.str());
}

}  // namespace cool::adaptive
