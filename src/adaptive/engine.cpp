#include "adaptive/engine.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "obs/json.hpp"

namespace cool::adaptive {
namespace {

std::string fmt(const char* format, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof buf, format, ap);
  va_end(ap);
  return buf;
}

void sub_stats(obs::AccessStats& a, const obs::AccessStats& b) {
  const auto sub = [](std::uint64_t& x, std::uint64_t y) {
    x = x >= y ? x - y : 0;
  };
  sub(a.reads, b.reads);
  sub(a.writes, b.writes);
  for (int i = 0; i < mem::kNumServices; ++i) sub(a.serviced[i], b.serviced[i]);
  sub(a.invals, b.invals);
  sub(a.stall_cycles, b.stall_cycles);
  sub(a.remote_stall_cycles, b.remote_stall_cycles);
}

void sub_vec(std::vector<std::uint64_t>& a,
             const std::vector<std::uint64_t>& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) a[i] = a[i] >= b[i] ? a[i] - b[i] : 0;
}

}  // namespace

AdaptiveEngine::AdaptiveEngine(const topo::MachineConfig& machine,
                               AdaptPolicy policy, Hooks hooks)
    : machine_(machine),
      pol_(policy),
      hooks_(std::move(hooks)),
      gov_(policy.confirm_epochs, policy.cooldown_epochs),
      bal_gov_(policy.confirm_epochs, policy.cooldown_epochs,
               policy.balancer_dwell_epochs, policy.balancer_max_switches) {}

std::uint64_t AdaptiveEngine::on_task_dispatch(topo::ProcId proc,
                                               std::uint64_t now) {
  ++tasks_since_;
  const bool by_tasks = pol_.epoch_tasks > 0 && tasks_since_ >= pol_.epoch_tasks;
  const bool by_cycles =
      pol_.epoch_cycles > 0 && now - last_epoch_cycle_ >= pol_.epoch_cycles;
  if (!by_tasks && !by_cycles) return 0;
  tasks_since_ = 0;
  last_epoch_cycle_ = now;
  return run_epoch(proc, now);
}

std::uint64_t AdaptiveEngine::run_epoch(topo::ProcId proc, std::uint64_t now) {
  ++epoch_;
  obs::ProfileSnapshot cur = hooks_.profile ? hooks_.profile()
                                            : obs::ProfileSnapshot{};
  obs::Snapshot met = hooks_.metrics ? hooks_.metrics() : obs::Snapshot{};

  // Per-epoch deltas: subtract the previous cumulative snapshots so the
  // rules judge this epoch's behaviour, not the run's whole history. The
  // set `procs` lists stay cumulative (a set that ever spread has lost its
  // reuse; there is no meaningful per-epoch subtraction of a set of ids).
  obs::ProfileSnapshot delta = cur;
  {
    std::unordered_map<std::uint64_t, const obs::ProfileSnapshot::ObjectRow*>
        prev_obj;
    for (const auto& o : prev_profile_.objects) prev_obj[o.addr] = &o;
    for (auto& o : delta.objects) {
      auto it = prev_obj.find(o.addr);
      if (it == prev_obj.end()) continue;
      sub_stats(o.s, it->second->s);
      sub_vec(o.miss_from_cluster, it->second->miss_from_cluster);
      sub_vec(o.miss_home_cluster, it->second->miss_home_cluster);
    }
    std::unordered_map<std::uint64_t, const obs::ProfileSnapshot::SetRow*>
        prev_set;
    for (const auto& s : prev_profile_.sets) prev_set[s.key] = &s;
    for (auto& s : delta.sets) {
      auto it = prev_set.find(s.key);
      if (it == prev_set.end()) continue;
      sub_stats(s.s, it->second->s);
      s.tasks = s.tasks >= it->second->tasks ? s.tasks - it->second->tasks : 0;
      s.stolen =
          s.stolen >= it->second->stolen ? s.stolen - it->second->stolen : 0;
    }
    sub_stats(delta.total, prev_profile_.total);
  }
  obs::Snapshot dm = met.diff(prev_metrics_);
  // Queue depths are gauges, not counters: subtracting the previous
  // instantaneous depth is meaningless, so carry the current values through.
  for (const char* g : {"sched.queue.now", "sched.queue.max_now"}) {
    auto it = met.values.find(g);
    if (it != met.values.end()) dm.values[it->first] = it->second;
  }
  prev_profile_ = std::move(cur);
  prev_metrics_ = std::move(met);

  const std::vector<obs::advisor::Finding> findings =
      obs::advisor::evaluate(delta, dm, pol_.rules);

  std::uint64_t cost = pol_.epoch_cost_cycles;
  std::uint32_t actions = 0;
  const std::uint64_t rehomes_before = rehomes_since_enable_;
  // The latency objective runs before the throughput findings so a serving
  // workload's tail-latency relief is first in line for the action budget.
  latency_objective(dm, now + cost, actions);
  for (const obs::advisor::Finding& f : findings) {
    if (actions >= pol_.max_actions_per_epoch) break;
    const std::size_t before = log_.size();
    cost += act(f, proc, now + cost);
    if (log_.size() > before) ++actions;
  }

  // Revert the steal-storm relief once rehoming has spread the data: with
  // the hot objects now homed next to (or across) their users, OBJECT tasks
  // are placed on useful processors and stealing them only trades locality
  // away. Wait for the rehome wave to dry up (an epoch with rehomes done but
  // none new) — reverting mid-wave strands the still-unmoved objects' tasks
  // on the old home — AND for the pile-up itself to drain: programs whose
  // hot set evolves (gauss's elimination front) pause rehoming for an epoch
  // while a deep queue still sits on the old home. The shared governor key
  // keeps enable/revert at least one cooldown apart; if imbalance returns,
  // the storm rule re-enables.
  std::uint64_t queued_max = 0;
  if (auto it = dm.values.find("sched.queue.max_now"); it != dm.values.end()) {
    queued_max = it->second;
  }
  if (pol_.enable_steal_policy && enabled_steal_object_ &&
      rehomes_since_enable_ > 0 &&
      rehomes_since_enable_ == rehomes_before &&
      queued_max * 2 < machine_.n_procs && hooks_.mutate_policy &&
      gov_.admit("policy:steal_object_tasks", epoch_)) {
    hooks_.mutate_policy(
        [](sched::Policy& p) { p.steal_object_tasks = false; });
    enabled_steal_object_ = false;
    rehomes_since_enable_ = 0;
    obs::advisor::Finding f;
    f.kind = obs::AdviceKind::kStealStorm;
    f.subject = "scheduler";
    record(f, "steal_object_tasks=off (data spread)", now + cost, 0);
  }

  // Revert the balancer escalation once the pile-up has drained: the Average
  // balancer's periodic equalisation is pure overhead on a balanced machine,
  // and reverting restores the Stealing balancer's byte-identical default
  // probe order. The BalancerGovernor's dwell keeps the switch and its revert
  // at least one dwell window apart, and the revert consumes one of the
  // lifetime switch slots like any other swap. In serving mode the latency
  // objective owns the switch AND its revert: a shallow queue here just
  // means the escalation is *working* — under sustained hot-key load the
  // revert would reopen the very pile-up it is celebrating, so it defers to
  // the ladder's p99-headroom revert instead.
  if (pol_.latency_target_cycles == 0 && switched_balancer_ &&
      queued_max * 2 < machine_.n_procs &&
      hooks_.mutate_policy && hooks_.policy &&
      hooks_.policy().balancer == sched::BalancerKind::kAverage &&
      bal_gov_.admit("balancer:stealing", epoch_)) {
    hooks_.mutate_policy([](sched::Policy& p) {
      p.balancer = sched::BalancerKind::kStealing;
    });
    switched_balancer_ = false;
    obs::advisor::Finding f;
    f.kind = obs::AdviceKind::kIdleImbalance;
    f.subject = "scheduler";
    record(f, "balancer=stealing (pile-up drained)", now + cost, 0);
  }
  return cost;
}

void AdaptiveEngine::latency_objective(const obs::Snapshot& dm,
                                       std::uint64_t now,
                                       std::uint32_t& actions) {
  if (pol_.latency_target_cycles == 0 || !latency_sensor_) return;
  if (!hooks_.mutate_policy || !hooks_.policy) return;
  const obs::LatencyHist cur = latency_sensor_();
  const obs::LatencyHist delta = cur.diff(prev_latency_);
  prev_latency_ = cur;
  // Too few completions to trust a tail estimate: an epoch that completed
  // almost nothing while requests pile up will trip the ladder next epoch,
  // when the queued requests complete with their queueing delay on record.
  if (delta.count() < pol_.latency_min_samples) return;
  const std::uint64_t p99 = delta.quantile(0.99);
  const std::uint64_t target = pol_.latency_target_cycles;

  obs::advisor::Finding f;
  f.kind = obs::AdviceKind::kLatencyTarget;
  f.subject = "requests";
  if (auto it = dm.values.find("sched.queue.max_now"); it != dm.values.end()) {
    f.queued_max = it->second;
  }

  if (p99 > target) {
    if (actions >= pol_.max_actions_per_epoch) return;
    const sched::Policy p = hooks_.policy();
    if (!p.steal_enabled) return;
    // Rung 1: escalate to the Average balancer's batched moves (opt-in, and
    // only from the Stealing default: a user-chosen balancer stays). Moves
    // are the *gentle* relief for a hot-key tail: they relocate only the
    // over-average part of the overlong queue, youngest first, and leave
    // every other server's placement untouched.
    if (pol_.enable_balancer &&
        p.balancer == sched::BalancerKind::kStealing) {
      if (!bal_gov_.admit("balancer:average", epoch_)) return;
      hooks_.mutate_policy([](sched::Policy& pol) {
        pol.balancer = sched::BalancerKind::kAverage;
      });
      switched_balancer_ = true;
      record(f,
             fmt("balancer=average (p99 %" PRIu64 " > target %" PRIu64 ")",
                 p99, target),
             now, 0);
      ++actions;
      return;
    }
    // Rung 2: the tail is still over target (or the balancer actuator is
    // off) — open pin-break stealing so every idle probe can take OBJECT-
    // pinned requests. This is the aggressive last resort, not the first
    // move: stolen requests run their critical sections with remote data,
    // which inflates monitor hold times on exactly the hot keys the tail
    // is queued behind. Give rung 1 a full balancer dwell first: right
    // after the switch the completing backlog still carries its
    // pre-escalation queueing delay, so the epoch p99 lags the fix.
    if (switched_balancer_ &&
        epoch_ < bal_gov_.last_switch_epoch() + pol_.balancer_dwell_epochs) {
      return;
    }
    if (!p.steal_object_tasks) {
      if (!gov_.admit("latency:steal_object_tasks", epoch_)) return;
      hooks_.mutate_policy(
          [](sched::Policy& pol) { pol.steal_object_tasks = true; });
      latency_relief_on_ = true;
      record(f,
             fmt("steal_object_tasks=on (p99 %" PRIu64 " > target %" PRIu64
                 ")",
                 p99, target),
             now, 0);
      ++actions;
    }
    return;
  }

  // Relief revert: only the steal flag comes back down, and only with real
  // headroom (p99 at or under half the target), so the ladder cannot
  // oscillate on a tail that hovers at the target. The balancer escalation
  // is deliberately *not* reverted while the objective is active: a good
  // epoch p99 after the switch means the escalation is working, and
  // switching back mid-trace lets the hot-key queue rebuild for every
  // arrival still to come. Pin-break stealing, by contrast, has a real
  // ongoing cost (remote critical sections) worth shedding once the tail
  // clears.
  if (latency_relief_on_ && p99 * 2 <= target &&
      hooks_.policy().steal_object_tasks) {
    if (!gov_.admit("latency:steal_object_tasks", epoch_)) return;
    hooks_.mutate_policy(
        [](sched::Policy& pol) { pol.steal_object_tasks = false; });
    latency_relief_on_ = false;
    record(f,
           fmt("steal_object_tasks=off (p99 %" PRIu64 " <= target/2)", p99),
           now, 0);
  }
}

std::uint64_t AdaptiveEngine::act(const obs::advisor::Finding& f,
                                  topo::ProcId proc, std::uint64_t now) {
  // Serving mode: a latency target states the user's objective, and every
  // throughput-heuristic actuator below was tuned for batch programs with
  // no notion of a tail. Data-plane churn (migrating or re-homing the hot
  // object mid-trace, promoting its requests into back-to-back sets) and
  // pin-break stealing all *raise* a hot-key p99 — the latency ladder
  // (latency_objective) is the only actuator that evaluates its actions
  // against the stated objective, so the rest stand down. The steal-storm
  // scan cap stays available: bounding failed scans is objective-neutral.
  if (pol_.latency_target_cycles != 0 && f.kind != obs::AdviceKind::kStealStorm) {
    return 0;
  }
  switch (f.kind) {
    case obs::AdviceKind::kMigrateObject: {
      if (!pol_.enable_migrate || !hooks_.migrate) return 0;
      const std::string done_key = "object:" + f.subject;
      if (done_.count(done_key) != 0) return 0;
      if (!gov_.admit("migrate:" + f.subject, epoch_)) return 0;
      const topo::ProcId first = static_cast<topo::ProcId>(
          f.user_cluster * machine_.procs_per_cluster);
      const std::uint64_t pb = machine_.page_bytes;
      const std::uint64_t pages = (f.obj_bytes + pb - 1) / pb;
      std::uint64_t c = 0;
      std::string action;
      if (pages > 1 && first < machine_.n_procs) {
        // Multi-page object: spread its pages over the dominant cluster's
        // processors rather than piling the whole thing onto one memory —
        // the object moves next to its users without creating a hotspot.
        const std::uint32_t span = machine_.n_procs - first <
                                           machine_.procs_per_cluster
                                       ? machine_.n_procs - first
                                       : machine_.procs_per_cluster;
        for (std::uint64_t i = 0; i < pages; ++i) {
          const std::uint64_t off = i * pb;
          const std::uint64_t len =
              off + pb <= f.obj_bytes ? pb : f.obj_bytes - off;
          const topo::ProcId target =
              static_cast<topo::ProcId>(first + i % span);
          c += hooks_.migrate(proc, f.obj_addr + off, len, target, now + c);
        }
        action = fmt("migrate %" PRIu64 " pages into cluster %zu", pages,
                     f.user_cluster);
      } else {
        // Sub-page object: rotate the target over the cluster's processors
        // so a family of small hot objects doesn't pile onto one memory.
        topo::ProcId target = first;
        if (first < machine_.n_procs) {
          const std::uint32_t span = machine_.n_procs - first <
                                             machine_.procs_per_cluster
                                         ? machine_.n_procs - first
                                         : machine_.procs_per_cluster;
          target = static_cast<topo::ProcId>(first + migrate_cursor_ % span);
          ++migrate_cursor_;
        } else {
          target = machine_.n_procs - 1;
        }
        c = hooks_.migrate(proc, f.obj_addr, f.obj_bytes, target, now);
        action =
            fmt("migrate to proc %u (cluster %zu)", target, f.user_cluster);
      }
      done_.insert(done_key);
      ++rehomes_since_enable_;
      record(f, std::move(action), now, c);
      return c;
    }
    case obs::AdviceKind::kDistributeObject: {
      if (!pol_.enable_distribute || !hooks_.migrate) return 0;
      const std::string done_key = "object:" + f.subject;
      if (done_.count(done_key) != 0) return 0;
      if (!gov_.admit("distribute:" + f.subject, epoch_)) return 0;
      const std::uint64_t pb = machine_.page_bytes;
      const std::uint64_t pages = (f.obj_bytes + pb - 1) / pb;
      std::uint64_t c = 0;
      std::string action;
      if (pages > 1) {
        // Multi-page object: round-robin its pages across every processor's
        // memory — the automated version of the hand `distribute()` call.
        for (std::uint64_t i = 0; i < pages; ++i) {
          const std::uint64_t off = i * pb;
          const std::uint64_t len =
              off + pb <= f.obj_bytes ? pb : f.obj_bytes - off;
          const topo::ProcId target =
              static_cast<topo::ProcId>(i % machine_.n_procs);
          c += hooks_.migrate(proc, f.obj_addr + off, len, target, now + c);
        }
        action = fmt("distribute %" PRIu64 " pages round-robin", pages);
      } else {
        // Sub-page object: rehome it whole, rotating the target so a family
        // of small hot objects (e.g. matrix columns) spreads out.
        const topo::ProcId target =
            static_cast<topo::ProcId>(distribute_cursor_ % machine_.n_procs);
        distribute_cursor_ =
            (distribute_cursor_ + 1) % machine_.n_procs;
        c = hooks_.migrate(proc, f.obj_addr, f.obj_bytes, target, now);
        action = fmt("rehome to proc %u (round-robin)", target);
      }
      done_.insert(done_key);
      ++rehomes_since_enable_;
      record(f, std::move(action), now, c);
      return c;
    }
    case obs::AdviceKind::kTaskAffinity: {
      if (!pol_.enable_hints || !hooks_.promote) return 0;
      const std::string done_key = "promote:" + f.subject;
      if (done_.count(done_key) != 0) return 0;
      if (!gov_.admit(done_key, epoch_)) return 0;
      hooks_.promote(f.set_key, true);
      done_.insert(done_key);
      record(f, "promote to TASK affinity", now, 0);
      return 0;
    }
    case obs::AdviceKind::kWholeSetStealing: {
      if (!pol_.enable_steal_policy || !hooks_.mutate_policy || !hooks_.policy) {
        return 0;
      }
      const sched::Policy p = hooks_.policy();
      if (!p.steal_enabled || p.steal_whole_sets) return 0;
      if (!gov_.admit("policy:steal_whole_sets", epoch_)) return 0;
      hooks_.mutate_policy(
          [](sched::Policy& pol) { pol.steal_whole_sets = true; });
      record(f, "steal_whole_sets=on", now, 0);
      return 0;
    }
    case obs::AdviceKind::kIdleImbalance: {
      // Idleness alone is too noisy to act on online: barrier-structured
      // programs (ocean) show large per-epoch idle fractions between phases
      // with nothing wrong. Act only on the pile-up signature — processors
      // idle while a deep run queue sits on a single server. A balanced
      // spawn burst puts at most a task or two on each queue, so a deepest
      // queue holding half the machine's worth of work means the work
      // exists but cannot spread.
      if (!pol_.enable_steal_policy || !hooks_.mutate_policy ||
          !hooks_.policy) {
        return 0;
      }
      if (f.queued_max * 2 < machine_.n_procs) return 0;
      // With a latency target set, the latency objective owns the
      // steal_object_tasks knob and the balancer escalation: its ladder
      // tries batched moves first because pin-break stealing makes a
      // hot-key tail *worse* (stolen requests hold their monitors over
      // remote data). The throughput-oriented pile-up relief here would
      // fight that ordering, so it stands down.
      if (pol_.latency_target_cycles != 0) return 0;
      const sched::Policy p = hooks_.policy();
      if (!p.steal_enabled) return 0;
      if (!p.steal_object_tasks) {
        if (!pol_.enable_steal_policy) return 0;
        if (!gov_.admit("policy:steal_object_tasks", epoch_)) return 0;
        hooks_.mutate_policy(
            [](sched::Policy& pol) { pol.steal_object_tasks = true; });
        enabled_steal_object_ = true;
        rehomes_since_enable_ = 0;
        record(f, "steal_object_tasks=on (queue pile-up)", now, 0);
        return 0;
      }
      // Escalation: the steal-policy relief is already on and the pile-up is
      // still here — on-demand stealing drains one task per idle probe, which
      // cannot keep up with a producer that refills the deep queue. Switch
      // the balancer to Average, whose kMoveTasks commands pull a queue down
      // to the level mean in one grab. Only escalate from the Stealing
      // default: a user-selected Average/Reserve balancer is not ours to
      // replace.
      if (!pol_.enable_balancer || p.balancer != sched::BalancerKind::kStealing) {
        return 0;
      }
      if (!bal_gov_.admit("balancer:average", epoch_)) return 0;
      hooks_.mutate_policy([](sched::Policy& pol) {
        pol.balancer = sched::BalancerKind::kAverage;
      });
      switched_balancer_ = true;
      record(f, "balancer=average (pile-up persists)", now, 0);
      return 0;
    }
    case obs::AdviceKind::kStealStorm: {
      if (!pol_.enable_steal_policy || !hooks_.mutate_policy || !hooks_.policy) {
        return 0;
      }
      const sched::Policy p = hooks_.policy();
      if (!p.steal_enabled) return 0;
      // In serving mode the latency ladder owns the steal knob (see the
      // stand-down above) — fall through to the objective-neutral scan cap.
      if (!p.steal_object_tasks && pol_.latency_target_cycles == 0) {
        // Idle processors scan but find nothing stealable: the usual cause
        // is every task carrying OBJECT affinity (default-steal-exempt).
        // Letting object tasks be stolen is the least intrusive relief.
        if (!gov_.admit("policy:steal_object_tasks", epoch_)) return 0;
        hooks_.mutate_policy(
            [](sched::Policy& pol) { pol.steal_object_tasks = true; });
        enabled_steal_object_ = true;
        rehomes_since_enable_ = 0;
        record(f, "steal_object_tasks=on", now, 0);
        return 0;
      }
      if (p.max_steal_scan == 0) {
        // Still storming with stealing wide open: bound the scan length so
        // idle processors stop sweeping every queue on the machine.
        if (!gov_.admit("policy:max_steal_scan", epoch_)) return 0;
        const std::uint32_t cap = machine_.procs_per_cluster;
        hooks_.mutate_policy(
            [cap](sched::Policy& pol) { pol.max_steal_scan = cap; });
        record(f, fmt("max_steal_scan=%u", cap), now, 0);
        return 0;
      }
      return 0;
    }
    case obs::AdviceKind::kLatencyTarget:
      // Never emitted by the advisor: the latency objective acts directly
      // (latency_objective), outside the findings loop.
      return 0;
  }
  return 0;
}

void AdaptiveEngine::record(const obs::advisor::Finding& f, std::string action,
                            std::uint64_t now, std::uint64_t cost) {
  Decision d;
  d.epoch = epoch_;
  d.cycle = now;
  d.rule = f.kind;
  d.subject = f.subject;
  d.action = std::move(action);
  d.cost_cycles = cost;
  log_.push_back(std::move(d));
}

std::string AdaptiveEngine::log_json() const {
  obs::json::Writer w;
  w.begin_array();
  for (const Decision& d : log_) {
    w.begin_object();
    w.key("epoch").uint_value(d.epoch);
    w.key("cycle").uint_value(d.cycle);
    w.key("rule").string(obs::advice_kind_name(d.rule));
    w.key("subject").string(d.subject);
    w.key("action").string(d.action);
    w.key("cost_cycles").uint_value(d.cost_cycles);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

}  // namespace cool::adaptive
