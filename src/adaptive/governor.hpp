// Hysteresis governor — one gate per decision class.
//
// Adaptation without hysteresis oscillates: a rule fires on one noisy epoch,
// the actuator flips a policy bit, the next epoch the (now different) system
// fires the opposite rule, and the runtime thrashes between two bad states.
// The governor imposes two dampers on every decision class (keyed by a
// string such as "policy:steal_object_tasks" or "migrate:col[3]"):
//
//   * confirmation — the rule must fire on `confirm_epochs` *consecutive*
//     epochs before the actuator is admitted (a gap resets the streak), and
//   * cooldown — after admitting, the class is frozen for `cooldown_epochs`
//     further epochs, so no class can flip-flop inside its cooldown window.
//
// Deterministic by construction: state lives in an ordered map and is driven
// only by (key, epoch) pairs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace cool::adaptive {

class Governor {
 public:
  Governor(std::uint32_t confirm_epochs, std::uint32_t cooldown_epochs)
      : confirm_(confirm_epochs), cooldown_(cooldown_epochs) {}

  struct State {
    std::uint64_t streak = 0;         ///< Consecutive epochs the rule fired.
    std::uint64_t last_seen = kNever; ///< Epoch of the last firing.
    std::uint64_t cooldown_until = 0; ///< First epoch allowed to act again.
  };

  /// Record that `key`'s rule fired in `epoch` and decide whether its
  /// actuator may run now. Epochs are expected to be non-decreasing.
  bool admit(const std::string& key, std::uint64_t epoch) {
    State& st = states_[key];
    if (st.last_seen != kNever && st.last_seen + 1 == epoch) {
      ++st.streak;
    } else if (st.last_seen == epoch) {
      // Same epoch, second finding of the same class: no extra confirmation.
    } else {
      st.streak = 1;
    }
    st.last_seen = epoch;
    if (st.streak < confirm_) return false;
    if (epoch < st.cooldown_until) return false;
    st.cooldown_until = epoch + cooldown_ + 1;
    st.streak = 0;
    return true;
  }

  /// Inspection for tests and the adaptation log.
  [[nodiscard]] const std::map<std::string, State>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] std::uint32_t confirm_epochs() const noexcept { return confirm_; }
  [[nodiscard]] std::uint32_t cooldown_epochs() const noexcept {
    return cooldown_;
  }

 private:
  static constexpr std::uint64_t kNever = ~0ull;
  std::uint32_t confirm_;
  std::uint32_t cooldown_;
  std::map<std::string, State> states_;
};

/// Governor specialised for balancer-policy switches. A balancer swap is the
/// most disruptive actuator — it rebuilds the per-level balancer tree and
/// changes the probe order of every later steal — so on top of the plain
/// Governor's confirm/cooldown gate it enforces two extra dampers:
///
///   * dwell — at least `dwell_epochs` epochs must separate any two admitted
///     switches, across *all* decision classes (switching to Average and
///     right back to Stealing inside one dwell window is exactly the thrash
///     this exists to stop), and
///   * a lifetime cap — at most `max_switches` admitted switches per run.
///
/// Note the dwell/cap refusal happens *after* the base admit, so a refused
/// switch still consumes the class's streak and starts its cooldown; the
/// next attempt must re-confirm from scratch. That is intentional: pressure
/// observed during a dwell window is stale by the time the window opens.
class BalancerGovernor {
 public:
  BalancerGovernor(std::uint32_t confirm_epochs, std::uint32_t cooldown_epochs,
                   std::uint32_t dwell_epochs, std::uint32_t max_switches)
      : gov_(confirm_epochs, cooldown_epochs),
        dwell_(dwell_epochs),
        max_switches_(max_switches) {}

  /// Record that the switch class `key` wants to fire in `epoch` and decide
  /// whether the switch may happen now.
  bool admit(const std::string& key, std::uint64_t epoch) {
    if (!gov_.admit(key, epoch)) return false;
    if (switches_ >= max_switches_) return false;
    if (last_switch_ != kNever && epoch < last_switch_ + dwell_) return false;
    ++switches_;
    last_switch_ = epoch;
    return true;
  }

  [[nodiscard]] std::uint32_t switches() const noexcept { return switches_; }
  [[nodiscard]] std::uint64_t last_switch_epoch() const noexcept {
    return last_switch_;
  }
  [[nodiscard]] const Governor& base() const noexcept { return gov_; }

 private:
  static constexpr std::uint64_t kNever = ~0ull;
  Governor gov_;
  std::uint32_t dwell_;
  std::uint32_t max_switches_;
  std::uint32_t switches_ = 0;
  std::uint64_t last_switch_ = kNever;
};

}  // namespace cool::adaptive
