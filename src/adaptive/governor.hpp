// Hysteresis governor — one gate per decision class.
//
// Adaptation without hysteresis oscillates: a rule fires on one noisy epoch,
// the actuator flips a policy bit, the next epoch the (now different) system
// fires the opposite rule, and the runtime thrashes between two bad states.
// The governor imposes two dampers on every decision class (keyed by a
// string such as "policy:steal_object_tasks" or "migrate:col[3]"):
//
//   * confirmation — the rule must fire on `confirm_epochs` *consecutive*
//     epochs before the actuator is admitted (a gap resets the streak), and
//   * cooldown — after admitting, the class is frozen for `cooldown_epochs`
//     further epochs, so no class can flip-flop inside its cooldown window.
//
// Deterministic by construction: state lives in an ordered map and is driven
// only by (key, epoch) pairs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace cool::adaptive {

class Governor {
 public:
  Governor(std::uint32_t confirm_epochs, std::uint32_t cooldown_epochs)
      : confirm_(confirm_epochs), cooldown_(cooldown_epochs) {}

  struct State {
    std::uint64_t streak = 0;         ///< Consecutive epochs the rule fired.
    std::uint64_t last_seen = kNever; ///< Epoch of the last firing.
    std::uint64_t cooldown_until = 0; ///< First epoch allowed to act again.
  };

  /// Record that `key`'s rule fired in `epoch` and decide whether its
  /// actuator may run now. Epochs are expected to be non-decreasing.
  bool admit(const std::string& key, std::uint64_t epoch) {
    State& st = states_[key];
    if (st.last_seen != kNever && st.last_seen + 1 == epoch) {
      ++st.streak;
    } else if (st.last_seen == epoch) {
      // Same epoch, second finding of the same class: no extra confirmation.
    } else {
      st.streak = 1;
    }
    st.last_seen = epoch;
    if (st.streak < confirm_) return false;
    if (epoch < st.cooldown_until) return false;
    st.cooldown_until = epoch + cooldown_ + 1;
    st.streak = 0;
    return true;
  }

  /// Inspection for tests and the adaptation log.
  [[nodiscard]] const std::map<std::string, State>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] std::uint32_t confirm_epochs() const noexcept { return confirm_; }
  [[nodiscard]] std::uint32_t cooldown_epochs() const noexcept {
    return cooldown_;
  }

 private:
  static constexpr std::uint64_t kNever = ~0ull;
  std::uint32_t confirm_;
  std::uint32_t cooldown_;
  std::map<std::string, State> states_;
};

}  // namespace cool::adaptive
