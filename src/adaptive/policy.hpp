// AdaptPolicy — the knobs of the online adaptation engine.
//
// `--adapt` accepts an optional JSON policy file so experiments can vary the
// epoch length, hysteresis depth, and rule thresholds without recompiling.
// The defaults are tuned for the paper-scale benches: epochs short enough to
// react inside one bench run, rule floors lowered from the offline advisor's
// (which judges a whole run) because the engine judges per-epoch deltas.
#pragma once

#include <cstdint>
#include <string>

#include "obs/advisor_rules.hpp"

namespace cool::adaptive {

struct AdaptPolicy {
  /// Epoch triggers: evaluate after this many task dispatches (0 disables),
  /// or after this many sim cycles on the dispatching processor's clock
  /// (0 disables). Either trigger closes the epoch.
  std::uint64_t epoch_tasks = 64;
  std::uint64_t epoch_cycles = 20000;

  /// Hysteresis: a rule must fire on `confirm_epochs` consecutive epochs
  /// before its actuator runs, and after acting the decision class is frozen
  /// for `cooldown_epochs` further epochs (see governor.hpp).
  std::uint32_t confirm_epochs = 1;
  std::uint32_t cooldown_epochs = 4;

  /// Cap on actuator firings per epoch (highest-weight findings win).
  std::uint32_t max_actions_per_epoch = 8;

  /// Cycles charged to the evaluating processor per epoch — the modelled
  /// cost of reading the profiler shards and running the rules.
  std::uint64_t epoch_cost_cycles = 64;

  /// Per-actuator enables (tests use these to isolate one actuator).
  bool enable_migrate = true;
  bool enable_distribute = true;
  bool enable_hints = true;
  bool enable_steal_policy = true;
  /// Fourth actuator: switch the scheduler's balancer policy (Policy::
  /// balancer) at epoch boundaries. Off by default — a balancer swap rebuilds
  /// the per-level balancer tree and changes the probe order of every later
  /// steal, so it is the most disruptive actuator and must be asked for.
  bool enable_balancer = false;

  /// Latency-target objective (0 = off, the throughput-only default). When
  /// set and a latency sensor is attached (AdaptiveEngine::
  /// set_latency_sensor — the load::Driver's request histogram), each epoch
  /// diffs the sensor's cumulative histogram and reads the *epoch's* p99:
  /// above the target the engine climbs a relief ladder (let OBJECT tasks be
  /// stolen, then escalate the balancer if enable_balancer), and once p99
  /// falls to half the target it reverts its own steal relief. Units are
  /// simulated cycles of per-request latency.
  std::uint64_t latency_target_cycles = 0;
  /// Minimum completed requests in an epoch before its p99 is trusted.
  std::uint64_t latency_min_samples = 8;

  /// Balancer-actuator pacing (only read when enable_balancer): a switch is
  /// admitted at most once per `balancer_dwell_epochs` epochs (on top of the
  /// governor's confirm/cooldown), and at most `balancer_max_switches` times
  /// per run so a pathological workload cannot thrash the balancer tree.
  std::uint32_t balancer_dwell_epochs = 6;
  std::uint32_t balancer_max_switches = 4;

  /// Rule thresholds, applied to per-epoch deltas. Defaults lower the
  /// offline advisor's absolute floors to per-epoch scale.
  obs::AdvisorConfig rules = online_rules();

  static obs::AdvisorConfig online_rules() {
    obs::AdvisorConfig c;
    c.min_misses = 8;
    c.min_failed_scans = 8;
    c.idle_frac = 0.20;
    return c;
  }

  /// Deterministic JSON rendering (round-trips through parse_adapt_policy).
  [[nodiscard]] std::string to_json() const;
};

/// Parse a policy from JSON text. Every key is optional; unknown keys throw
/// util::Error so a typo'd knob fails fast instead of being ignored.
AdaptPolicy parse_adapt_policy(const std::string& json_text);

/// Load a policy file (throws util::Error on unreadable file or bad JSON).
AdaptPolicy load_adapt_policy(const std::string& path);

}  // namespace cool::adaptive
