#include "sched/scheduler.hpp"

#include <string>

#include "common/check.hpp"
#include "common/error.hpp"

namespace cool::sched {

Scheduler::Scheduler(const topo::MachineConfig& machine, Policy policy,
                     HomeFn home)
    : machine_(machine),
      policy_(policy),
      home_(std::move(home)),
      stats_(machine.n_procs),
      cmd_scratch_(machine.n_procs),
      run_track_(machine.n_procs) {
  COOL_CHECK(home_ != nullptr, "scheduler needs a home resolver");
  COOL_CHECK(policy_.affinity_array_size >= 1, "affinity array size must be >= 1");
  for (std::uint32_t p = 0; p < machine_.n_procs; ++p) {
    queues_.emplace_back(policy_.affinity_array_size);
    queues_.back().set_owner(static_cast<topo::ProcId>(p));
    gates_.emplace_back();
  }
  levels_ = topo::enumerate_levels(machine_);
  built_kind_ = policy_.balancer;
  rebuild_balancers();
}

void Scheduler::rebuild_balancers() {
  balancers_.clear();
  reserve_ = nullptr;
  balancers_.reserve(levels_.size());
  for (const topo::TopoLevel& lvl : levels_) {
    balancers_.push_back(make_balancer(policy_.balancer, lvl, machine_, policy_));
  }
  if (policy_.balancer == BalancerKind::kReserve) {
    reserve_ = static_cast<ReserveBalancer*>(
        balancers_[topo::kMachineLevel].get());
    if (hotness_fn_) reserve_->set_hotness(hotness_fn_);
  }
  register_balance_obs();
}

void Scheduler::set_hotness_source(HotnessFn fn) {
  hotness_fn_ = std::move(fn);
  if (reserve_ != nullptr) reserve_->set_hotness(hotness_fn_);
}

void Scheduler::adapt_policy(const std::function<void(Policy&)>& fn) {
  fn(policy_);
  if (policy_.balancer != built_kind_) {
    built_kind_ = policy_.balancer;
    rebuild_balancers();
  }
}

void Scheduler::check_queues() const {
  for (const ServerQueues& q : queues_) q.validate();
  // The version counter only ever fetch_add(1)s, so any previously observed
  // value is a valid floor. CAS-max the floor forward, then assert the
  // current read is not below it.
  const std::uint64_t wv = work_version_.load();
  std::uint64_t floor = wv_floor_.load();
  COOL_CHECK(wv >= floor, "invariant: work version moved backwards");
  while (floor < wv && !wv_floor_.compare_exchange_weak(floor, wv)) {
  }
}

void Scheduler::for_each_queued(
    const std::function<void(const TaskDesc*)>& fn) const {
  for (const ServerQueues& q : queues_) q.for_each_task(fn);
}

void Scheduler::attach_obs(obs::Registry& reg) {
  obs_reg_ = &reg;
  obs_idle_sleeps_ = reg.counter("sched.idle.sleeps");
  obs_idle_wakeups_ = reg.counter("sched.idle.wakeups");
  obs_steal_scan_ = reg.histogram("sched.steal_scan_victims");
  obs_run_length_ = reg.histogram("sched.affinity_run_length");
  register_balance_obs();
}

void Scheduler::register_balance_obs() {
  if (obs_reg_ == nullptr || policy_.balancer == BalancerKind::kStealing) {
    return;
  }
  if (!obs_balance_commands_.attached()) {
    obs_balance_commands_ = obs_reg_->counter("sched.balance.commands");
    obs_balance_moves_ = obs_reg_->counter("sched.balance.moves");
  }
  if (policy_.balancer == BalancerKind::kReserve && obs_reserve_hits_.empty()) {
    obs_reserve_hits_.reserve(machine_.n_clusters());
    for (std::uint32_t c = 0; c < machine_.n_clusters(); ++c) {
      obs_reserve_hits_.push_back(obs_reg_->counter(
          "sched.balance.reserve_hits.cluster" + std::to_string(c)));
    }
  }
}

void Scheduler::note_run(topo::ProcId proc, std::uint64_t key) {
  if (!obs_run_length_.attached()) return;
  RunTrack& t = run_track_[proc];
  if (key != 0 && key == t.key) {
    ++t.len;
    return;
  }
  if (t.len > 0) obs_run_length_.observe(proc, t.len);
  t.key = key;
  t.len = key != 0 ? 1 : 0;
}

void Scheduler::wake_gate(IdleGate& g) {
  // Empty critical section: a waiter is either already inside cv.wait (the
  // notify reaches it) or still before it while holding g.m (we block here
  // until it waits, and its predicate then sees the new version).
  { std::lock_guard l(g.m); }
  g.cv.notify_all();
}

void Scheduler::bump_version() {
  const std::uint64_t next = work_version_.fetch_add(1) + 1;
  if (util::check_level() == util::CheckLevel::kParanoid) {
    // Raise the monotonicity floor to the value this bump produced; no
    // assertion here (another thread's later bump may already have raised the
    // floor past ours), check_queues() owns the assert.
    std::uint64_t floor = wv_floor_.load();
    while (floor < next && !wv_floor_.compare_exchange_weak(floor, next)) {
    }
  }
}

void Scheduler::signal_work(topo::ProcId server) {
  // Seq-cst Dekker pairing with wait_for_work: the version bump and the
  // sleeping-flag reads here, against the sleeping-flag store and version
  // read in the waiter, cannot both miss each other.
  bump_version();
  IdleGate& home_gate = gates_[server];
  if (home_gate.sleeping.load()) {
    wake_gate(home_gate);
    return;
  }
  // Home server is busy; wake one idle processor so it can steal. Scan from
  // the home server's successor so bursts of spawns fan out over sleepers.
  const std::uint32_t P = machine_.n_procs;
  for (std::uint32_t i = 1; i < P; ++i) {
    IdleGate& g = gates_[(server + i) % P];
    if (g.sleeping.load()) {
      wake_gate(g);
      return;
    }
  }
}

void Scheduler::notify_all_waiters() {
  bump_version();
  for (IdleGate& g : gates_) wake_gate(g);
}

topo::ProcId Scheduler::place(TaskDesc* t, topo::ProcId spawner) {
  COOL_CHECK(t != nullptr, "place: null task");
  COOL_CHECK(spawner < machine_.n_procs, "place: spawner out of range");
  StatShard& st = stats_.shard(spawner);
  st.spawned.fetch_add(1, std::memory_order_relaxed);

  topo::ProcId server = spawner;
  if (!policy_.honor_affinity) {
    // The paper's "Base" version: tasks scheduled round-robin across
    // processors without regard for locality.
    server = static_cast<topo::ProcId>(
        rr_next_.fetch_add(1, std::memory_order_relaxed) % machine_.n_procs);
    t->aff = Affinity::none();  // No set grouping either.
    st.placed_round_robin.fetch_add(1, std::memory_order_relaxed);
  } else if (t->aff.has_processor()) {
    // PROCESSOR affinity: value modulo the number of server processes.
    server = static_cast<topo::ProcId>(
        static_cast<std::uint64_t>(t->aff.proc_hint) % machine_.n_procs);
    st.placed_processor.fetch_add(1, std::memory_order_relaxed);
  } else if (t->aff.has_multi() && policy_.multi_object_placement &&
             t->aff.n_objs > 1) {
    // Multi-object heuristic (paper §8): place on the server homing the most
    // bytes among the named objects.
    std::uint64_t best_bytes = 0;
    topo::ProcId best = home_(t->aff.objs[0].addr, spawner);
    std::vector<std::uint64_t> bytes_at(machine_.n_procs, 0);
    for (int i = 0; i < t->aff.n_objs; ++i) {
      const topo::ProcId h = home_(t->aff.objs[i].addr, spawner);
      bytes_at[h] += t->aff.objs[i].bytes;
      if (bytes_at[h] > best_bytes) {
        best_bytes = bytes_at[h];
        best = h;
      }
    }
    server = best;
    st.placed_multi.fetch_add(1, std::memory_order_relaxed);
  } else if (t->aff.has_object()) {
    // OBJECT / simple / default affinity: collocate with the object's home.
    server = home_(t->aff.object_obj, spawner);
    st.placed_object.fetch_add(1, std::memory_order_relaxed);
  } else if (t->aff.has_task()) {
    // TASK affinity alone: place the whole set where the object lives so the
    // first fetch is local; the set remains stealable as a unit.
    server = home_(t->aff.task_obj, spawner);
    st.placed_task.fetch_add(1, std::memory_order_relaxed);
  } else {
    st.placed_local.fetch_add(1, std::memory_order_relaxed);
  }

  if (has_overrides_.load(std::memory_order_relaxed) &&
      policy_.honor_affinity && t->aff.has_object() && !t->aff.has_task() &&
      !t->aff.has_processor() && !t->aff.has_multi()) {
    std::lock_guard l(override_m_);
    if (promoted_.count(t->aff.object_obj) != 0) {
      // Promoted by the adaptive runtime: behave exactly as if the program
      // had written TASK+OBJECT affinity, so the promoted set shares an
      // affinity queue and runs back-to-back. The server chosen above (the
      // object's home) is what TASK+OBJECT placement picks too.
      t->aff.task_obj = t->aff.object_obj;
    }
  }

  t->reserved = false;
  if (policy_.balancer == BalancerKind::kReserve && reserve_ != nullptr &&
      policy_.honor_affinity && !t->aff.has_processor() &&
      !t->aff.has_multi() && (t->aff.has_object() || t->aff.has_task())) {
    // Hotness-directed reservation: instead of waiting for idleness to
    // migrate work, pre-place the task on the cluster homing its hot data
    // and mark it reserved so other clusters' thieves leave it there. The
    // affinity object is the hotness key (the whole set shares it, so the
    // set lands together).
    const std::uint64_t key =
        t->aff.has_object() ? t->aff.object_obj : t->aff.task_obj;
    if (const auto target = reserve_->reserve_target(key, queues_)) {
      server = *target;
      t->reserved = true;
      st.reserve_hits.fetch_add(1, std::memory_order_relaxed);
      const topo::ClusterId tc = machine_.cluster_of(server);
      if (tc < obs_reserve_hits_.size()) {
        obs_reserve_hits_[tc].add(spawner);
      }
    }
  }

  if (t->aff.has_task()) {
    t->aff_key = t->aff.task_obj / machine_.line_bytes;
  } else {
    t->aff_key = 0;
  }
  t->server = server;
  t->stolen = false;
  t->moved = false;
  queues_[server].push(t);
  // `t` is live on a queue now — another thread may already own it.
  signal_work(server);
  return server;
}

void Scheduler::enqueue_resumed(TaskDesc* t) {
  COOL_CHECK(t != nullptr, "enqueue_resumed: null task");
  COOL_CHECK(t->server < machine_.n_procs, "enqueue_resumed: bad server");
  const topo::ProcId server = t->server;
  stats_.shard(server).resumes.fetch_add(1, std::memory_order_relaxed);
  queues_[server].push_resumed(t);
  signal_work(server);
}

void Scheduler::enqueue_yielded(TaskDesc* t) {
  COOL_CHECK(t != nullptr, "enqueue_yielded: null task");
  COOL_CHECK(t->server < machine_.n_procs, "enqueue_yielded: bad server");
  const topo::ProcId server = t->server;
  queues_[server].push(t);
  signal_work(server);
}

TaskDesc* Scheduler::try_steal(topo::ProcId thief, topo::ProcId victim,
                               bool& busy) {
  ServerQueues& q = queues_[victim];
  if (q.empty()) return nullptr;
  StatShard& st = stats_.shard(thief);
  // Reserve-balancer placements are protected from cross-cluster theft (the
  // reservation put them with their hot data); same-cluster thieves may
  // still take them, preserving intra-cluster balance. Under other policies
  // no task is ever reserved, so this changes nothing.
  const bool allow_reserved = machine_.same_cluster(thief, victim);
  if (policy_.steal_whole_sets) {
    std::vector<TaskDesc*> set;
    switch (q.try_steal_set(set, policy_.steal_pinned_sets, allow_reserved)) {
      case TrySteal::kBusy:
        // Owner (or another thief) holds the victim's lock; don't convoy —
        // remember the contention and move on to the next victim.
        busy = true;
        return nullptr;
      case TrySteal::kGot: {
        st.set_steals.fetch_add(1, std::memory_order_relaxed);
        st.tasks_stolen.fetch_add(set.size(), std::memory_order_relaxed);
        // The whole set migrates to the thief so its tasks still run
        // back-to-back (paper §4.2). Adopt + first pop happen under one hold
        // of the thief's own lock; the victim's lock was already released.
        TaskDesc* t = queues_[thief].adopt_and_pop(set, thief);
        // Waking sleepers for the rest of the set keeps stealing
        // work-conserving while this thief runs the first task.
        signal_work(thief);
        return t;
      }
      case TrySteal::kEmpty:
        break;
    }
  }
  TaskDesc* t = nullptr;
  switch (
      q.try_steal_object_task(t, policy_.steal_object_tasks, allow_reserved)) {
    case TrySteal::kBusy:
      busy = true;
      return nullptr;
    case TrySteal::kGot:
      st.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      t->server = thief;
      return t;
    case TrySteal::kEmpty:
      break;
  }
  return nullptr;
}

TaskDesc* Scheduler::exec_move(topo::ProcId thief, const BalanceCommand& cmd,
                               bool& busy) {
  ServerQueues& q = queues_[cmd.src];
  if (q.empty() || cmd.max_tasks == 0) return nullptr;
  StatShard& st = stats_.shard(thief);
  std::vector<TaskDesc*> moved;
  switch (q.try_move_tasks(moved, cmd.max_tasks)) {
    case TrySteal::kBusy:
      busy = true;
      return nullptr;
    case TrySteal::kGot: {
      st.balance_moves.fetch_add(moved.size(), std::memory_order_relaxed);
      obs_balance_moves_.add(thief, moved.size());
      // Like whole-set stealing: adopt the batch and take the first runnable
      // task under one hold of the thief's own lock, then wake sleepers for
      // the rest of the batch.
      TaskDesc* t = queues_[thief].adopt_and_pop(moved, thief);
      signal_work(thief);
      return t;
    }
    case TrySteal::kEmpty:
      break;
  }
  return nullptr;
}

Scheduler::Acquired Scheduler::acquire(topo::ProcId proc) {
  COOL_CHECK(proc < machine_.n_procs, "acquire: processor out of range");
  StatShard& st = stats_.shard(proc);
  Acquired out;
  if (TaskDesc* t = queues_[proc].pop()) {
    st.pops.fetch_add(1, std::memory_order_relaxed);
    note_run(proc, t->aff_key);
    out.task = t;
    return out;
  }
  if (!policy_.steal_enabled || machine_.n_procs == 1) return out;

  // Balancer chain for this thief: each level's balancer generates explicit
  // commands which are executed here in order. The default chain is just the
  // machine-level balancer (the paper's flat scan); cluster_first runs the
  // thief's cluster level first and the machine level (which then skips the
  // thief's cluster) second; cluster_only — and the Average balancer's
  // balance_within_clusters — never leave the cluster level.
  std::size_t chain[2];
  std::size_t chain_len = 0;
  const std::size_t cl = topo::cluster_level(machine_.cluster_of(proc));
  if (policy_.cluster_first) {
    chain[chain_len++] = cl;
    chain[chain_len++] = topo::kMachineLevel;
  } else if (policy_.cluster_only) {
    chain[chain_len++] = cl;
  } else if (policy_.balancer == BalancerKind::kAverage &&
             policy_.balance_within_clusters) {
    chain[chain_len++] = cl;
  } else {
    chain[chain_len++] = topo::kMachineLevel;
  }

  bool busy = false;
  std::uint64_t probed = 0;  ///< kTrySteal commands executed (scan length).
  bool capped = false;
  for (std::size_t c = 0; c < chain_len && !capped; ++c) {
    std::vector<BalanceCommand>& cmds = cmd_scratch_[proc].cmds;
    cmds.clear();
    balancers_[chain[c]]->generate(proc, queues_, cmds);
    for (const BalanceCommand& cmd : cmds) {
      if (policy_.max_steal_scan != 0 && probed >= policy_.max_steal_scan) {
        capped = true;
        break;
      }
      st.balance_commands.fetch_add(1, std::memory_order_relaxed);
      obs_balance_commands_.add(proc);
      TaskDesc* t = nullptr;
      if (cmd.op == BalanceCommand::Op::kTrySteal) {
        ++probed;
        t = try_steal(proc, cmd.src, busy);
        if (t != nullptr) {
          st.steals.fetch_add(1, std::memory_order_relaxed);
          out.stolen = true;
          const bool same = machine_.same_cluster(proc, cmd.src);
          out.stolen_remote_cluster = !same;
          out.victim = cmd.src;
          if (!same) {
            st.remote_cluster_steals.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else {
        t = exec_move(proc, cmd, busy);
        if (t != nullptr) {
          out.moved = true;
          out.victim = cmd.src;
        }
      }
      if (t != nullptr) {
        obs_steal_scan_.observe(proc, probed);
        note_run(proc, t->aff_key);
        out.task = t;
        return out;
      }
    }
  }
  st.failed_steal_scans.fetch_add(1, std::memory_order_relaxed);
  obs_steal_scan_.observe(proc, probed);
  out.contended = busy;
  return out;
}

void Scheduler::set_task_promotion(std::uint64_t obj_addr, bool on) {
  std::lock_guard l(override_m_);
  if (on) {
    promoted_.insert(obj_addr);
  } else {
    promoted_.erase(obj_addr);
  }
  has_overrides_.store(!promoted_.empty(), std::memory_order_relaxed);
}

bool Scheduler::any_work() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

std::size_t Scheduler::total_queued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

SchedStats Scheduler::stats() const {
  return stats_.aggregate(SchedStats{}, [](SchedStats& acc, const StatShard& s) {
    acc.spawned += s.spawned.load(std::memory_order_relaxed);
    acc.placed_processor += s.placed_processor.load(std::memory_order_relaxed);
    acc.placed_object += s.placed_object.load(std::memory_order_relaxed);
    acc.placed_task += s.placed_task.load(std::memory_order_relaxed);
    acc.placed_local += s.placed_local.load(std::memory_order_relaxed);
    acc.placed_multi += s.placed_multi.load(std::memory_order_relaxed);
    acc.placed_round_robin +=
        s.placed_round_robin.load(std::memory_order_relaxed);
    acc.pops += s.pops.load(std::memory_order_relaxed);
    acc.steals += s.steals.load(std::memory_order_relaxed);
    acc.set_steals += s.set_steals.load(std::memory_order_relaxed);
    acc.tasks_stolen += s.tasks_stolen.load(std::memory_order_relaxed);
    acc.remote_cluster_steals +=
        s.remote_cluster_steals.load(std::memory_order_relaxed);
    acc.failed_steal_scans +=
        s.failed_steal_scans.load(std::memory_order_relaxed);
    acc.resumes += s.resumes.load(std::memory_order_relaxed);
    acc.balance_commands += s.balance_commands.load(std::memory_order_relaxed);
    acc.balance_moves += s.balance_moves.load(std::memory_order_relaxed);
    acc.reserve_hits += s.reserve_hits.load(std::memory_order_relaxed);
  });
}

}  // namespace cool::sched
