#include "sched/scheduler.hpp"

#include "common/check.hpp"
#include "common/error.hpp"

namespace cool::sched {

void validate_policy(const Policy& policy, const topo::MachineConfig& machine) {
  if (!policy.steal_enabled) {
    if (policy.steal_whole_sets || policy.steal_pinned_sets ||
        policy.steal_object_tasks) {
      throw util::Error(
          "invalid scheduler policy: steal_whole_sets/steal_pinned_sets/"
          "steal_object_tasks have no effect with steal_enabled=false — "
          "clear them or enable stealing");
    }
    if (policy.cluster_first || policy.cluster_only) {
      throw util::Error(
          "invalid scheduler policy: cluster_first/cluster_only scope the "
          "steal scan, which steal_enabled=false disables entirely");
    }
    if (policy.max_steal_scan != 0) {
      throw util::Error(
          "invalid scheduler policy: max_steal_scan caps the steal scan, "
          "which steal_enabled=false disables entirely");
    }
  }
  if (policy.steal_pinned_sets && !policy.steal_whole_sets) {
    throw util::Error(
        "invalid scheduler policy: steal_pinned_sets refines whole-set "
        "stealing and requires steal_whole_sets=true");
  }
  if (policy.cluster_first && policy.cluster_only) {
    throw util::Error(
        "invalid scheduler policy: cluster_first and cluster_only are "
        "mutually exclusive scan scopes — pick one");
  }
  if (policy.cluster_only && machine.n_clusters() <= 1) {
    throw util::Error(
        "invalid scheduler policy: cluster_only on a machine with a single "
        "cluster cannot restrict anything — drop the flag or use more "
        "clusters");
  }
}

Scheduler::Scheduler(const topo::MachineConfig& machine, Policy policy,
                     HomeFn home)
    : machine_(machine),
      policy_(policy),
      home_(std::move(home)),
      stats_(machine.n_procs),
      run_track_(machine.n_procs) {
  COOL_CHECK(home_ != nullptr, "scheduler needs a home resolver");
  COOL_CHECK(policy_.affinity_array_size >= 1, "affinity array size must be >= 1");
  for (std::uint32_t p = 0; p < machine_.n_procs; ++p) {
    queues_.emplace_back(policy_.affinity_array_size);
    queues_.back().set_owner(static_cast<topo::ProcId>(p));
    gates_.emplace_back();
  }
}

void Scheduler::check_queues() const {
  for (const ServerQueues& q : queues_) q.validate();
  // The version counter only ever fetch_add(1)s, so any previously observed
  // value is a valid floor. CAS-max the floor forward, then assert the
  // current read is not below it.
  const std::uint64_t wv = work_version_.load();
  std::uint64_t floor = wv_floor_.load();
  COOL_CHECK(wv >= floor, "invariant: work version moved backwards");
  while (floor < wv && !wv_floor_.compare_exchange_weak(floor, wv)) {
  }
}

void Scheduler::for_each_queued(
    const std::function<void(const TaskDesc*)>& fn) const {
  for (const ServerQueues& q : queues_) q.for_each_task(fn);
}

void Scheduler::attach_obs(obs::Registry& reg) {
  obs_idle_sleeps_ = reg.counter("sched.idle.sleeps");
  obs_idle_wakeups_ = reg.counter("sched.idle.wakeups");
  obs_steal_scan_ = reg.histogram("sched.steal_scan_victims");
  obs_run_length_ = reg.histogram("sched.affinity_run_length");
}

void Scheduler::note_run(topo::ProcId proc, std::uint64_t key) {
  if (!obs_run_length_.attached()) return;
  RunTrack& t = run_track_[proc];
  if (key != 0 && key == t.key) {
    ++t.len;
    return;
  }
  if (t.len > 0) obs_run_length_.observe(proc, t.len);
  t.key = key;
  t.len = key != 0 ? 1 : 0;
}

void Scheduler::wake_gate(IdleGate& g) {
  // Empty critical section: a waiter is either already inside cv.wait (the
  // notify reaches it) or still before it while holding g.m (we block here
  // until it waits, and its predicate then sees the new version).
  { std::lock_guard l(g.m); }
  g.cv.notify_all();
}

void Scheduler::bump_version() {
  const std::uint64_t next = work_version_.fetch_add(1) + 1;
  if (util::check_level() == util::CheckLevel::kParanoid) {
    // Raise the monotonicity floor to the value this bump produced; no
    // assertion here (another thread's later bump may already have raised the
    // floor past ours), check_queues() owns the assert.
    std::uint64_t floor = wv_floor_.load();
    while (floor < next && !wv_floor_.compare_exchange_weak(floor, next)) {
    }
  }
}

void Scheduler::signal_work(topo::ProcId server) {
  // Seq-cst Dekker pairing with wait_for_work: the version bump and the
  // sleeping-flag reads here, against the sleeping-flag store and version
  // read in the waiter, cannot both miss each other.
  bump_version();
  IdleGate& home_gate = gates_[server];
  if (home_gate.sleeping.load()) {
    wake_gate(home_gate);
    return;
  }
  // Home server is busy; wake one idle processor so it can steal. Scan from
  // the home server's successor so bursts of spawns fan out over sleepers.
  const std::uint32_t P = machine_.n_procs;
  for (std::uint32_t i = 1; i < P; ++i) {
    IdleGate& g = gates_[(server + i) % P];
    if (g.sleeping.load()) {
      wake_gate(g);
      return;
    }
  }
}

void Scheduler::notify_all_waiters() {
  bump_version();
  for (IdleGate& g : gates_) wake_gate(g);
}

topo::ProcId Scheduler::place(TaskDesc* t, topo::ProcId spawner) {
  COOL_CHECK(t != nullptr, "place: null task");
  COOL_CHECK(spawner < machine_.n_procs, "place: spawner out of range");
  StatShard& st = stats_.shard(spawner);
  st.spawned.fetch_add(1, std::memory_order_relaxed);

  topo::ProcId server = spawner;
  if (!policy_.honor_affinity) {
    // The paper's "Base" version: tasks scheduled round-robin across
    // processors without regard for locality.
    server = static_cast<topo::ProcId>(
        rr_next_.fetch_add(1, std::memory_order_relaxed) % machine_.n_procs);
    t->aff = Affinity::none();  // No set grouping either.
    st.placed_round_robin.fetch_add(1, std::memory_order_relaxed);
  } else if (t->aff.has_processor()) {
    // PROCESSOR affinity: value modulo the number of server processes.
    server = static_cast<topo::ProcId>(
        static_cast<std::uint64_t>(t->aff.proc_hint) % machine_.n_procs);
    st.placed_processor.fetch_add(1, std::memory_order_relaxed);
  } else if (t->aff.has_multi() && policy_.multi_object_placement &&
             t->aff.n_objs > 1) {
    // Multi-object heuristic (paper §8): place on the server homing the most
    // bytes among the named objects.
    std::uint64_t best_bytes = 0;
    topo::ProcId best = home_(t->aff.objs[0].addr, spawner);
    std::vector<std::uint64_t> bytes_at(machine_.n_procs, 0);
    for (int i = 0; i < t->aff.n_objs; ++i) {
      const topo::ProcId h = home_(t->aff.objs[i].addr, spawner);
      bytes_at[h] += t->aff.objs[i].bytes;
      if (bytes_at[h] > best_bytes) {
        best_bytes = bytes_at[h];
        best = h;
      }
    }
    server = best;
    st.placed_multi.fetch_add(1, std::memory_order_relaxed);
  } else if (t->aff.has_object()) {
    // OBJECT / simple / default affinity: collocate with the object's home.
    server = home_(t->aff.object_obj, spawner);
    st.placed_object.fetch_add(1, std::memory_order_relaxed);
  } else if (t->aff.has_task()) {
    // TASK affinity alone: place the whole set where the object lives so the
    // first fetch is local; the set remains stealable as a unit.
    server = home_(t->aff.task_obj, spawner);
    st.placed_task.fetch_add(1, std::memory_order_relaxed);
  } else {
    st.placed_local.fetch_add(1, std::memory_order_relaxed);
  }

  if (has_overrides_.load(std::memory_order_relaxed) &&
      policy_.honor_affinity && t->aff.has_object() && !t->aff.has_task() &&
      !t->aff.has_processor() && !t->aff.has_multi()) {
    std::lock_guard l(override_m_);
    if (promoted_.count(t->aff.object_obj) != 0) {
      // Promoted by the adaptive runtime: behave exactly as if the program
      // had written TASK+OBJECT affinity, so the promoted set shares an
      // affinity queue and runs back-to-back. The server chosen above (the
      // object's home) is what TASK+OBJECT placement picks too.
      t->aff.task_obj = t->aff.object_obj;
    }
  }

  if (t->aff.has_task()) {
    t->aff_key = t->aff.task_obj / machine_.line_bytes;
  } else {
    t->aff_key = 0;
  }
  t->server = server;
  t->stolen = false;
  queues_[server].push(t);
  // `t` is live on a queue now — another thread may already own it.
  signal_work(server);
  return server;
}

void Scheduler::enqueue_resumed(TaskDesc* t) {
  COOL_CHECK(t != nullptr, "enqueue_resumed: null task");
  COOL_CHECK(t->server < machine_.n_procs, "enqueue_resumed: bad server");
  const topo::ProcId server = t->server;
  stats_.shard(server).resumes.fetch_add(1, std::memory_order_relaxed);
  queues_[server].push_resumed(t);
  signal_work(server);
}

void Scheduler::enqueue_yielded(TaskDesc* t) {
  COOL_CHECK(t != nullptr, "enqueue_yielded: null task");
  COOL_CHECK(t->server < machine_.n_procs, "enqueue_yielded: bad server");
  const topo::ProcId server = t->server;
  queues_[server].push(t);
  signal_work(server);
}

TaskDesc* Scheduler::try_steal(topo::ProcId thief, topo::ProcId victim,
                               bool& busy) {
  ServerQueues& q = queues_[victim];
  if (q.empty()) return nullptr;
  StatShard& st = stats_.shard(thief);
  if (policy_.steal_whole_sets) {
    std::vector<TaskDesc*> set;
    switch (q.try_steal_set(set, policy_.steal_pinned_sets)) {
      case TrySteal::kBusy:
        // Owner (or another thief) holds the victim's lock; don't convoy —
        // remember the contention and move on to the next victim.
        busy = true;
        return nullptr;
      case TrySteal::kGot: {
        st.set_steals.fetch_add(1, std::memory_order_relaxed);
        st.tasks_stolen.fetch_add(set.size(), std::memory_order_relaxed);
        // The whole set migrates to the thief so its tasks still run
        // back-to-back (paper §4.2). Adopt + first pop happen under one hold
        // of the thief's own lock; the victim's lock was already released.
        TaskDesc* t = queues_[thief].adopt_and_pop(set, thief);
        // Waking sleepers for the rest of the set keeps stealing
        // work-conserving while this thief runs the first task.
        signal_work(thief);
        return t;
      }
      case TrySteal::kEmpty:
        break;
    }
  }
  TaskDesc* t = nullptr;
  switch (q.try_steal_object_task(t, policy_.steal_object_tasks)) {
    case TrySteal::kBusy:
      busy = true;
      return nullptr;
    case TrySteal::kGot:
      st.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      t->server = thief;
      return t;
    case TrySteal::kEmpty:
      break;
  }
  return nullptr;
}

Scheduler::Acquired Scheduler::acquire(topo::ProcId proc) {
  COOL_CHECK(proc < machine_.n_procs, "acquire: processor out of range");
  StatShard& st = stats_.shard(proc);
  Acquired out;
  if (TaskDesc* t = queues_[proc].pop()) {
    st.pops.fetch_add(1, std::memory_order_relaxed);
    note_run(proc, t->aff_key);
    out.task = t;
    return out;
  }
  if (!policy_.steal_enabled || machine_.n_procs == 1) return out;

  // Victim scan: deterministic order starting after the thief. With
  // cluster_first, scan the thief's cluster before the rest; with
  // cluster_only, never leave the cluster.
  const std::uint32_t P = machine_.n_procs;
  bool busy = false;
  std::uint64_t probed = 0;
  auto scan = [&](bool same_cluster_pass) -> TaskDesc* {
    for (std::uint32_t i = 1; i < P; ++i) {
      if (policy_.max_steal_scan != 0 && probed >= policy_.max_steal_scan) {
        break;
      }
      const auto victim = static_cast<topo::ProcId>((proc + i) % P);
      const bool same = machine_.same_cluster(proc, victim);
      if (same_cluster_pass != same) continue;
      ++probed;
      if (TaskDesc* t = try_steal(proc, victim, busy)) {
        st.steals.fetch_add(1, std::memory_order_relaxed);
        out.stolen = true;
        out.stolen_remote_cluster = !same;
        out.victim = victim;
        if (!same) {
          st.remote_cluster_steals.fetch_add(1, std::memory_order_relaxed);
        }
        return t;
      }
    }
    return nullptr;
  };

  if (policy_.cluster_first || policy_.cluster_only) {
    if (TaskDesc* t = scan(/*same_cluster_pass=*/true)) {
      obs_steal_scan_.observe(proc, probed);
      note_run(proc, t->aff_key);
      out.task = t;
      return out;
    }
    if (policy_.cluster_only) {
      st.failed_steal_scans.fetch_add(1, std::memory_order_relaxed);
      obs_steal_scan_.observe(proc, probed);
      out.contended = busy;
      return out;
    }
    if (TaskDesc* t = scan(/*same_cluster_pass=*/false)) {
      obs_steal_scan_.observe(proc, probed);
      note_run(proc, t->aff_key);
      out.task = t;
      return out;
    }
  } else {
    for (std::uint32_t i = 1; i < P; ++i) {
      if (policy_.max_steal_scan != 0 && probed >= policy_.max_steal_scan) {
        break;
      }
      const auto victim = static_cast<topo::ProcId>((proc + i) % P);
      ++probed;
      if (TaskDesc* t = try_steal(proc, victim, busy)) {
        st.steals.fetch_add(1, std::memory_order_relaxed);
        out.stolen = true;
        const bool same = machine_.same_cluster(proc, victim);
        out.stolen_remote_cluster = !same;
        out.victim = victim;
        if (!same) {
          st.remote_cluster_steals.fetch_add(1, std::memory_order_relaxed);
        }
        obs_steal_scan_.observe(proc, probed);
        note_run(proc, t->aff_key);
        out.task = t;
        return out;
      }
    }
  }
  st.failed_steal_scans.fetch_add(1, std::memory_order_relaxed);
  obs_steal_scan_.observe(proc, probed);
  out.contended = busy;
  return out;
}

void Scheduler::set_task_promotion(std::uint64_t obj_addr, bool on) {
  std::lock_guard l(override_m_);
  if (on) {
    promoted_.insert(obj_addr);
  } else {
    promoted_.erase(obj_addr);
  }
  has_overrides_.store(!promoted_.empty(), std::memory_order_relaxed);
}

bool Scheduler::any_work() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

std::size_t Scheduler::total_queued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

SchedStats Scheduler::stats() const {
  return stats_.aggregate(SchedStats{}, [](SchedStats& acc, const StatShard& s) {
    acc.spawned += s.spawned.load(std::memory_order_relaxed);
    acc.placed_processor += s.placed_processor.load(std::memory_order_relaxed);
    acc.placed_object += s.placed_object.load(std::memory_order_relaxed);
    acc.placed_task += s.placed_task.load(std::memory_order_relaxed);
    acc.placed_local += s.placed_local.load(std::memory_order_relaxed);
    acc.placed_multi += s.placed_multi.load(std::memory_order_relaxed);
    acc.placed_round_robin +=
        s.placed_round_robin.load(std::memory_order_relaxed);
    acc.pops += s.pops.load(std::memory_order_relaxed);
    acc.steals += s.steals.load(std::memory_order_relaxed);
    acc.set_steals += s.set_steals.load(std::memory_order_relaxed);
    acc.tasks_stolen += s.tasks_stolen.load(std::memory_order_relaxed);
    acc.remote_cluster_steals +=
        s.remote_cluster_steals.load(std::memory_order_relaxed);
    acc.failed_steal_scans +=
        s.failed_steal_scans.load(std::memory_order_relaxed);
    acc.resumes += s.resumes.load(std::memory_order_relaxed);
  });
}

}  // namespace cool::sched
