#include "sched/scheduler.hpp"

#include "common/error.hpp"

namespace cool::sched {

Scheduler::Scheduler(const topo::MachineConfig& machine, Policy policy,
                     HomeFn home)
    : machine_(machine), policy_(policy), home_(std::move(home)) {
  COOL_CHECK(home_ != nullptr, "scheduler needs a home resolver");
  COOL_CHECK(policy_.affinity_array_size >= 1, "affinity array size must be >= 1");
  for (std::uint32_t p = 0; p < machine_.n_procs; ++p) {
    queues_.emplace_back(policy_.affinity_array_size);
  }
}

topo::ProcId Scheduler::place(TaskDesc* t, topo::ProcId spawner) {
  COOL_CHECK(t != nullptr, "place: null task");
  COOL_CHECK(spawner < machine_.n_procs, "place: spawner out of range");
  ++stats_.spawned;

  topo::ProcId server = spawner;
  if (!policy_.honor_affinity) {
    // The paper's "Base" version: tasks scheduled round-robin across
    // processors without regard for locality.
    server = static_cast<topo::ProcId>(rr_next_++ % machine_.n_procs);
    t->aff = Affinity::none();  // No set grouping either.
    ++stats_.placed_round_robin;
  } else if (t->aff.has_processor()) {
    // PROCESSOR affinity: value modulo the number of server processes.
    server = static_cast<topo::ProcId>(
        static_cast<std::uint64_t>(t->aff.proc_hint) % machine_.n_procs);
    ++stats_.placed_processor;
  } else if (t->aff.has_multi() && policy_.multi_object_placement &&
             t->aff.n_objs > 1) {
    // Multi-object heuristic (paper §8): place on the server homing the most
    // bytes among the named objects.
    std::uint64_t best_bytes = 0;
    topo::ProcId best = home_(t->aff.objs[0].addr, spawner);
    std::vector<std::uint64_t> bytes_at(machine_.n_procs, 0);
    for (int i = 0; i < t->aff.n_objs; ++i) {
      const topo::ProcId h = home_(t->aff.objs[i].addr, spawner);
      bytes_at[h] += t->aff.objs[i].bytes;
      if (bytes_at[h] > best_bytes) {
        best_bytes = bytes_at[h];
        best = h;
      }
    }
    server = best;
    ++stats_.placed_multi;
  } else if (t->aff.has_object()) {
    // OBJECT / simple / default affinity: collocate with the object's home.
    server = home_(t->aff.object_obj, spawner);
    ++stats_.placed_object;
  } else if (t->aff.has_task()) {
    // TASK affinity alone: place the whole set where the object lives so the
    // first fetch is local; the set remains stealable as a unit.
    server = home_(t->aff.task_obj, spawner);
    ++stats_.placed_task;
  } else {
    ++stats_.placed_local;
  }

  if (t->aff.has_task()) {
    t->aff_key = t->aff.task_obj / machine_.line_bytes;
  } else {
    t->aff_key = 0;
  }
  t->server = server;
  t->stolen = false;
  queues_[server].push(t);
  return server;
}

void Scheduler::enqueue_resumed(TaskDesc* t) {
  COOL_CHECK(t != nullptr, "enqueue_resumed: null task");
  COOL_CHECK(t->server < machine_.n_procs, "enqueue_resumed: bad server");
  ++stats_.resumes;
  queues_[t->server].push_resumed(t);
}

void Scheduler::enqueue_yielded(TaskDesc* t) {
  COOL_CHECK(t != nullptr, "enqueue_yielded: null task");
  COOL_CHECK(t->server < machine_.n_procs, "enqueue_yielded: bad server");
  queues_[t->server].push(t);
}

TaskDesc* Scheduler::try_steal(topo::ProcId thief, topo::ProcId victim) {
  ServerQueues& q = queues_[victim];
  if (q.empty()) return nullptr;
  if (policy_.steal_whole_sets) {
    std::vector<TaskDesc*> set = q.steal_set(policy_.steal_pinned_sets);
    if (!set.empty()) {
      ++stats_.set_steals;
      stats_.tasks_stolen += set.size();
      // The whole set migrates to the thief so its tasks still run
      // back-to-back (paper §4.2).
      queues_[thief].adopt(set, thief);
      return queues_[thief].pop();
    }
  }
  if (TaskDesc* t = q.steal_object_task(policy_.steal_object_tasks)) {
    ++stats_.tasks_stolen;
    t->server = thief;
    return t;
  }
  return nullptr;
}

Scheduler::Acquired Scheduler::acquire(topo::ProcId proc) {
  COOL_CHECK(proc < machine_.n_procs, "acquire: processor out of range");
  Acquired out;
  if (TaskDesc* t = queues_[proc].pop()) {
    ++stats_.pops;
    out.task = t;
    return out;
  }
  if (!policy_.steal_enabled || machine_.n_procs == 1) return out;

  // Victim scan: deterministic order starting after the thief. With
  // cluster_first, scan the thief's cluster before the rest; with
  // cluster_only, never leave the cluster.
  const std::uint32_t P = machine_.n_procs;
  auto scan = [&](bool same_cluster_pass) -> TaskDesc* {
    for (std::uint32_t i = 1; i < P; ++i) {
      const auto victim = static_cast<topo::ProcId>((proc + i) % P);
      const bool same = machine_.same_cluster(proc, victim);
      if (same_cluster_pass != same) continue;
      if (TaskDesc* t = try_steal(proc, victim)) {
        ++stats_.steals;
        out.stolen = true;
        out.stolen_remote_cluster = !same;
        if (!same) ++stats_.remote_cluster_steals;
        return t;
      }
    }
    return nullptr;
  };

  if (policy_.cluster_first || policy_.cluster_only) {
    if (TaskDesc* t = scan(/*same_cluster_pass=*/true)) {
      out.task = t;
      return out;
    }
    if (policy_.cluster_only) {
      ++stats_.failed_steal_scans;
      return out;
    }
    if (TaskDesc* t = scan(/*same_cluster_pass=*/false)) {
      out.task = t;
      return out;
    }
  } else {
    for (std::uint32_t i = 1; i < P; ++i) {
      const auto victim = static_cast<topo::ProcId>((proc + i) % P);
      if (TaskDesc* t = try_steal(proc, victim)) {
        ++stats_.steals;
        out.stolen = true;
        const bool same = machine_.same_cluster(proc, victim);
        out.stolen_remote_cluster = !same;
        if (!same) ++stats_.remote_cluster_steals;
        out.task = t;
        return out;
      }
    }
  }
  ++stats_.failed_steal_scans;
  return out;
}

bool Scheduler::any_work() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

std::size_t Scheduler::total_queued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

}  // namespace cool::sched
