// Hierarchical work-distribution policies over the topology tree.
//
// The paper's COOL runtime balances load with one flat idle-steal scan; this
// layer generalises it following zsim-ndp's per-level LoadBalancer shape: the
// scheduler instantiates one Balancer per topology level (the machine root
// plus every cluster, topology/levels.hpp), and an idle processor asks the
// balancer chain for explicit commands instead of hard-coding a victim loop.
// A command either probes one victim's queue (kTrySteal — the classic scan,
// executed with the same try-lock discipline as before) or moves a batch of
// tasks from an overloaded queue (kMoveTasks — equalization). The scheduler
// alone executes commands and touches queues; balancers only observe queue
// sizes (wait-free atomic reads) and decide.
//
// Three policies:
//  * StealingBalancer — byte-identical reproduction of the flat try-lock
//    victim scan (the default; every existing figure reproduces exactly).
//  * AverageBalancer  — queue-length equalization within a level: an idle
//    processor pulls each over-average member down to the ceiling average,
//    falling back to a plain steal scan when nobody is over average so work
//    conservation is preserved.
//  * ReserveBalancer  — hotness-directed reservation: placement consults the
//    locality profiler's per-object heat and pre-places tasks on the cluster
//    homing their hot data (marking them `reserved` so other clusters'
//    thieves leave them alone), with the stealing scan kept as a backstop.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/policy.hpp"
#include "sched/queues.hpp"
#include "topology/levels.hpp"
#include "topology/machine.hpp"

namespace cool::sched {

/// One explicit work-distribution command, executed by the scheduler under
/// the usual queue try-lock discipline.
struct BalanceCommand {
  enum class Op : std::uint8_t {
    kTrySteal,   ///< Probe `src`'s queue with the policy's steal rules.
    kMoveTasks,  ///< Move up to `max_tasks` tasks from `src` to `dst`.
  };
  Op op = Op::kTrySteal;
  topo::ProcId src = 0;
  topo::ProcId dst = 0;
  std::uint32_t max_tasks = 1;  ///< kMoveTasks only.
};

/// One profiled data object's heat, as fed to the Reserve balancer: where the
/// object's misses are served from and how much stall time it caused.
struct DataHotness {
  std::uint64_t addr = 0;   ///< Object base address (runtime address space).
  std::uint64_t bytes = 0;  ///< Object extent.
  topo::ClusterId home_cluster = 0;  ///< Cluster homing the hot pages.
  std::uint64_t heat = 0;   ///< Stall cycles attributed to the object.
};

/// Pulls the current hotness table (typically from obs::LocalityProfiler).
/// Must be safe to call from any thread that places tasks.
using HotnessFn = std::function<std::vector<DataHotness>()>;

/// A load-balancing policy instantiated for one topology level. Balancers
/// are stateless observers of queue load (Reserve adds a private reservation
/// table); all queue mutation stays in the scheduler.
class Balancer {
 public:
  Balancer(const topo::TopoLevel& level, const topo::MachineConfig& machine,
           const Policy& policy)
      : level_(level), machine_(machine), policy_(policy) {}
  virtual ~Balancer() = default;
  Balancer(const Balancer&) = delete;
  Balancer& operator=(const Balancer&) = delete;

  /// Append this level's commands for idle `thief` to `out`, in execution
  /// order. `queues` is observed wait-free (atomic size reads only).
  virtual void generate(topo::ProcId thief,
                        const std::deque<ServerQueues>& queues,
                        std::vector<BalanceCommand>& out) = 0;

  [[nodiscard]] const topo::TopoLevel& level() const noexcept { return level_; }

 protected:
  /// Is `p` one of this level's member processors?
  [[nodiscard]] bool covers(topo::ProcId p) const noexcept {
    return level_.kind == topo::TopoLevel::Kind::kMachine ||
           machine_.cluster_of(p) == level_.cluster;
  }

  const topo::TopoLevel& level_;        ///< Owned by the scheduler.
  const topo::MachineConfig& machine_;
  const Policy& policy_;                ///< The scheduler's live policy.
};

/// The paper's flat idle-steal scan, expressed as commands: one kTrySteal per
/// victim in deterministic ring order after the thief, restricted to this
/// level's members. At the machine level under cluster_first the thief's own
/// cluster is skipped — that pass already ran at the cluster level.
class StealingBalancer : public Balancer {
 public:
  using Balancer::Balancer;
  void generate(topo::ProcId thief, const std::deque<ServerQueues>& queues,
                std::vector<BalanceCommand>& out) override;
};

/// Queue-length equalization within a level: pull every over-average member
/// down to the ceiling average, in ring order. Moves ignore affinity pins
/// (equalization deliberately trades locality for balance); when nobody is
/// over average the balancer degrades to the plain steal scan so an idle
/// processor still drains stragglers.
class AverageBalancer : public Balancer {
 public:
  using Balancer::Balancer;
  void generate(topo::ProcId thief, const std::deque<ServerQueues>& queues,
                std::vector<BalanceCommand>& out) override;
};

/// Hotness-directed reservation (zsim-ndp's DataHotness shape): placement
/// asks reserve_target() for the cluster owning a task's hot data and
/// pre-places the task there instead of waiting for idleness; the inherited
/// stealing scan stays as the idle backstop. The hotness table refreshes
/// every `Policy::reserve_refresh_tasks` placements so reservations track
/// the profile as it accumulates.
class ReserveBalancer : public StealingBalancer {
 public:
  using StealingBalancer::StealingBalancer;

  /// Install the heat source. Until set (or while it reports no hot
  /// objects), reserve_target() declines and placement is unchanged.
  void set_hotness(HotnessFn fn);

  /// Where should a task keyed by affinity object `key_addr` go? Returns the
  /// least-loaded member (ties: lowest id) of the cluster homing the hot
  /// object containing `key_addr`, or nullopt when the address is cold.
  /// Thread-safe; called on the placement path.
  std::optional<topo::ProcId> reserve_target(
      std::uint64_t key_addr, const std::deque<ServerQueues>& queues);

 private:
  void refresh_locked();
  topo::ProcId least_loaded_member(topo::ClusterId c,
                                   const std::deque<ServerQueues>& queues) const;

  /// "Address is cold" sentinel in the target cache.
  static constexpr topo::ProcId kNoTarget = static_cast<topo::ProcId>(~0u);

  mutable std::mutex mu_;  ///< Guards the table, cache, and counter below.
  HotnessFn hotness_;
  std::vector<DataHotness> hot_;  ///< Heat-descending, truncated.
  /// Per-affinity-key target cache: one lookup per key between refreshes, so
  /// a whole task-affinity set lands on one server.
  std::unordered_map<std::uint64_t, topo::ProcId> cache_;
  std::uint64_t placements_ = 0;
};

/// Instantiate the policy's balancer for one level.
std::unique_ptr<Balancer> make_balancer(BalancerKind kind,
                                        const topo::TopoLevel& level,
                                        const topo::MachineConfig& machine,
                                        const Policy& policy);

}  // namespace cool::sched
