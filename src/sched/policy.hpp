// Scheduling policy knobs (split out of scheduler.hpp so the balancer layer
// can consume Policy without a circular include).
//
// Placement and stealing flags follow paper §4/§5; the `balancer` knob
// selects which hierarchical load-balancing policy (sched/balancer.hpp) the
// scheduler instantiates over the topology tree. kStealing is the default
// and reproduces the paper's flat idle-steal scan byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>

#include "topology/machine.hpp"

namespace cool::sched {

/// Which Balancer policy the scheduler instantiates per topology level.
enum class BalancerKind : std::uint8_t {
  kStealing,  ///< The paper's idle-steal victim scan (default).
  kAverage,   ///< Queue-length equalization within a level.
  kReserve,   ///< Hotness-directed placement reservation + steal backstop.
};

const char* balancer_kind_name(BalancerKind k);

struct Policy {
  std::size_t affinity_array_size = 64;  ///< Queues per server (paper §5).
  bool steal_enabled = true;
  bool steal_whole_sets = true;    ///< Steal task-affinity sets as a unit.
  bool steal_pinned_sets = false;  ///< Also steal sets pinned by PROCESSOR /
                                   ///< OBJECT hints (default: respect pins).
  bool steal_object_tasks = false; ///< Allow stealing tasks pinned by OBJECT /
                                   ///< PROCESSOR hints (paper: "preferably
                                   ///< not"; hint-free tasks are always
                                   ///< stealable).
  bool cluster_first = false;     ///< Prefer victims in the thief's cluster.
  bool cluster_only = false;      ///< Never steal outside the cluster.
  bool honor_affinity = true;     ///< false = ignore all hints (the paper's
                                  ///< "Base" round-robin scheduling).
  bool multi_object_placement = true;  ///< Size-weighted placement for
                                       ///< multi-object affinity (§8); false
                                       ///< = paper's "first object" fallback.
  bool prefetch_objects = false;  ///< Prefetch a task's non-local affinity
                                  ///< objects at dispatch (§8; sim engine).
  std::uint32_t max_steal_scan = 0;  ///< Cap victims probed per steal scan
                                     ///< (0 = scan every other server). The
                                     ///< adaptive runtime sets this when a
                                     ///< steal storm persists.

  /// Hierarchical work-distribution policy (sched/balancer.hpp).
  BalancerKind balancer = BalancerKind::kStealing;
  /// kAverage only: equalize queue lengths inside the thief's cluster level
  /// instead of across the whole machine (the per-level experiment).
  bool balance_within_clusters = false;
  /// kReserve only: refresh the data-hotness reservation table every this
  /// many placements (the profiler's heat evolves during the run).
  std::uint32_t reserve_refresh_tasks = 64;
  /// Bitmask of processors the Reserve balancer must not redirect work to
  /// (bit p = processor p). Serving workloads set the front-end bit: the
  /// admission pump occupies its processor without sitting in its queue, so
  /// by queue length alone the front-end looks permanently idle and Reserve
  /// would bury it in redirected requests — which then starve admission.
  /// Tasks explicitly homed or pinned there are unaffected; only Reserve's
  /// least-loaded redirect skips the masked processors.
  std::uint64_t reserve_exclude_mask = 0;
};

/// Reject meaningless Policy flag combinations with a clear error instead of
/// silently ignoring flags: steal refinements with stealing disabled,
/// pinned-set stealing without whole-set stealing, cluster-scoped stealing on
/// a machine with a single cluster, both cluster modes at once, or a balancer
/// that cannot work (Reserve without profiler attribution, per-cluster
/// balancing on a single-cluster machine). `profile_available` says whether
/// the runtime will attach a locality profiler — the Reserve balancer's heat
/// source. Called by Runtime at init; direct Scheduler construction (unit
/// tests) stays unvalidated on purpose.
void validate_policy(const Policy& policy, const topo::MachineConfig& machine,
                     bool profile_available = false);

}  // namespace cool::sched
