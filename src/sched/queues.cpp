#include "sched/queues.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cool::sched {

ServerQueues::ServerQueues(std::size_t affinity_array_size)
    : slots_(affinity_array_size) {
  COOL_CHECK(affinity_array_size >= 1, "affinity array needs at least one slot");
}

void ServerQueues::on_slot_push(AffSlot& slot) {
  if (!slot.hook.is_linked()) nonempty_.push_back(&slot);
}

void ServerQueues::on_slot_pop(AffSlot& slot) {
  if (slot.tasks.empty()) {
    slot.hook.unlink();
    if (active_ == &slot) active_ = nullptr;
  }
}

void ServerQueues::push(TaskDesc* t) {
  COOL_DCHECK(t != nullptr, "null task");
  if (t->aff.has_task()) {
    AffSlot& slot = slots_[slot_of(t->aff_key)];
    slot.tasks.push_back(t);
    on_slot_push(slot);
  } else {
    object_q_.push_back(t);
  }
  ++size_;
  max_depth_ = std::max(max_depth_, size_);
}

void ServerQueues::push_resumed(TaskDesc* t) {
  COOL_DCHECK(t != nullptr, "null task");
  object_q_.push_front(t);
  ++size_;
  max_depth_ = std::max(max_depth_, size_);
}

TaskDesc* ServerQueues::pop() {
  // Keep draining the active affinity set: this is the back-to-back execution
  // that gives the paper's cache reuse.
  if (active_ != nullptr && !active_->tasks.empty()) {
    TaskDesc* t = active_->tasks.pop_front();
    on_slot_pop(*active_);
    --size_;
    return t;
  }
  active_ = nullptr;
  if (AffSlot* slot = nonempty_.front()) {
    active_ = slot;
    TaskDesc* t = slot->tasks.pop_front();
    on_slot_pop(*slot);
    --size_;
    return t;
  }
  if (TaskDesc* t = object_q_.pop_front()) {
    --size_;
    return t;
  }
  return nullptr;
}

std::vector<TaskDesc*> ServerQueues::steal_set(bool allow_pinned) {
  // Steal the set least likely to be serviced soon: prefer anything over the
  // active set (which the owner is draining), and skip pinned sets unless
  // allowed.
  auto eligible = [&](AffSlot* s) {
    if (allow_pinned) return true;
    // Check every queued task: hash collisions can put a pinned set and an
    // unpinned set in the same slot, and the whole slot moves on a steal.
    for (const TaskDesc* t : s->tasks) {
      if (t->aff.has_processor() || t->aff.has_object()) return false;
    }
    return !s->tasks.empty();
  };
  AffSlot* victim = nullptr;
  AffSlot* active_fallback = nullptr;
  for (AffSlot* s : nonempty_) {
    if (!eligible(s)) continue;
    if (s == active_) {
      active_fallback = s;
    } else {
      victim = s;  // keep the last eligible non-active set
    }
  }
  if (victim == nullptr) victim = active_fallback;
  if (victim == nullptr) return {};
  std::vector<TaskDesc*> set;
  while (TaskDesc* t = victim->tasks.pop_front()) {
    t->stolen = true;
    set.push_back(t);
    --size_;
  }
  on_slot_pop(*victim);
  return set;
}

TaskDesc* ServerQueues::steal_object_task(bool allow_pinned) {
  TaskDesc* t = nullptr;
  if (allow_pinned) {
    t = object_q_.pop_back();
  } else {
    // Scan for the youngest task without placement hints.
    for (TaskDesc* cand : object_q_) {
      if (cand->aff.is_none()) t = cand;
    }
    if (t != nullptr) TaskList::erase(t);
  }
  if (t != nullptr) {
    t->stolen = true;
    --size_;
  }
  return t;
}

void ServerQueues::adopt(const std::vector<TaskDesc*>& set,
                         topo::ProcId new_server) {
  for (TaskDesc* t : set) {
    t->server = new_server;
    push(t);
  }
}

}  // namespace cool::sched
