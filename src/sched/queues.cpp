#include "sched/queues.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cool::sched {

ServerQueues::ServerQueues(std::size_t affinity_array_size)
    : slots_(affinity_array_size) {
  COOL_CHECK(affinity_array_size >= 1, "affinity array needs at least one slot");
}

void ServerQueues::on_slot_push(AffSlot& slot) {
  if (!slot.hook.is_linked()) nonempty_.push_back(&slot);
}

void ServerQueues::on_slot_pop(AffSlot& slot) {
  if (slot.tasks.empty()) {
    slot.hook.unlink();
    if (active_ == &slot) active_ = nullptr;
  }
}

void ServerQueues::push_locked(TaskDesc* t) {
  COOL_DCHECK(t != nullptr, "null task");
  if (t->aff.has_task()) {
    AffSlot& slot = slots_[slot_of(t->aff_key)];
    slot.tasks.push_back(t);
    on_slot_push(slot);
  } else {
    object_q_.push_back(t);
  }
  const std::size_t n = size_.load(std::memory_order_relaxed) + 1;
  size_.store(n, std::memory_order_relaxed);
  if (n > max_depth_.load(std::memory_order_relaxed)) {
    max_depth_.store(n, std::memory_order_relaxed);
  }
}

void ServerQueues::push(TaskDesc* t) {
  std::lock_guard g(mu_);
  push_locked(t);
}

void ServerQueues::push_resumed(TaskDesc* t) {
  COOL_DCHECK(t != nullptr, "null task");
  std::lock_guard g(mu_);
  object_q_.push_front(t);
  const std::size_t n = size_.load(std::memory_order_relaxed) + 1;
  size_.store(n, std::memory_order_relaxed);
  if (n > max_depth_.load(std::memory_order_relaxed)) {
    max_depth_.store(n, std::memory_order_relaxed);
  }
}

TaskDesc* ServerQueues::pop_locked() {
  // Keep draining the active affinity set: this is the back-to-back execution
  // that gives the paper's cache reuse.
  if (active_ != nullptr && !active_->tasks.empty()) {
    TaskDesc* t = active_->tasks.pop_front();
    on_slot_pop(*active_);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  active_ = nullptr;
  if (AffSlot* slot = nonempty_.front()) {
    active_ = slot;
    TaskDesc* t = slot->tasks.pop_front();
    on_slot_pop(*slot);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  if (TaskDesc* t = object_q_.pop_front()) {
    size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  return nullptr;
}

TaskDesc* ServerQueues::pop() {
  std::lock_guard g(mu_);
  return pop_locked();
}

std::vector<TaskDesc*> ServerQueues::steal_set_locked(bool allow_pinned) {
  // Steal the set least likely to be serviced soon: prefer anything over the
  // active set (which the owner is draining), and skip pinned sets unless
  // allowed.
  auto eligible = [&](AffSlot* s) {
    if (allow_pinned) return true;
    // Check every queued task: hash collisions can put a pinned set and an
    // unpinned set in the same slot, and the whole slot moves on a steal.
    for (const TaskDesc* t : s->tasks) {
      if (t->aff.has_processor() || t->aff.has_object()) return false;
    }
    return !s->tasks.empty();
  };
  AffSlot* victim = nullptr;
  AffSlot* active_fallback = nullptr;
  for (AffSlot* s : nonempty_) {
    if (!eligible(s)) continue;
    if (s == active_) {
      active_fallback = s;
    } else {
      victim = s;  // keep the last eligible non-active set
    }
  }
  if (victim == nullptr) victim = active_fallback;
  if (victim == nullptr) return {};
  std::vector<TaskDesc*> set;
  while (TaskDesc* t = victim->tasks.pop_front()) {
    t->stolen = true;
    set.push_back(t);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
  on_slot_pop(*victim);
  return set;
}

std::vector<TaskDesc*> ServerQueues::steal_set(bool allow_pinned) {
  std::lock_guard g(mu_);
  return steal_set_locked(allow_pinned);
}

TrySteal ServerQueues::try_steal_set(std::vector<TaskDesc*>& out,
                                     bool allow_pinned) {
  std::unique_lock l(mu_, std::try_to_lock);
  if (!l.owns_lock()) return TrySteal::kBusy;
  out = steal_set_locked(allow_pinned);
  return out.empty() ? TrySteal::kEmpty : TrySteal::kGot;
}

TaskDesc* ServerQueues::steal_object_task_locked(bool allow_pinned) {
  TaskDesc* t = nullptr;
  if (allow_pinned) {
    t = object_q_.pop_back();
  } else {
    // Scan for the youngest task without placement hints.
    for (TaskDesc* cand : object_q_) {
      if (cand->aff.is_none()) t = cand;
    }
    if (t != nullptr) TaskList::erase(t);
  }
  if (t != nullptr) {
    t->stolen = true;
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
  return t;
}

TaskDesc* ServerQueues::steal_object_task(bool allow_pinned) {
  std::lock_guard g(mu_);
  return steal_object_task_locked(allow_pinned);
}

TrySteal ServerQueues::try_steal_object_task(TaskDesc*& out,
                                             bool allow_pinned) {
  std::unique_lock l(mu_, std::try_to_lock);
  if (!l.owns_lock()) return TrySteal::kBusy;
  out = steal_object_task_locked(allow_pinned);
  return out != nullptr ? TrySteal::kGot : TrySteal::kEmpty;
}

void ServerQueues::adopt(const std::vector<TaskDesc*>& set,
                         topo::ProcId new_server) {
  std::lock_guard g(mu_);
  for (TaskDesc* t : set) {
    t->server = new_server;
    push_locked(t);
  }
}

TaskDesc* ServerQueues::adopt_and_pop(const std::vector<TaskDesc*>& set,
                                      topo::ProcId new_server) {
  std::lock_guard g(mu_);
  for (TaskDesc* t : set) {
    t->server = new_server;
    push_locked(t);
  }
  return pop_locked();
}

std::size_t ServerQueues::n_nonempty_affinity_queues() const {
  std::lock_guard g(mu_);
  return nonempty_.size();
}

std::size_t ServerQueues::object_queue_size() const {
  std::lock_guard g(mu_);
  return object_q_.size();
}

}  // namespace cool::sched
