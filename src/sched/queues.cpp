#include "sched/queues.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cool::sched {

ServerQueues::ServerQueues(std::size_t affinity_array_size)
    : slots_(affinity_array_size) {
  COOL_CHECK(affinity_array_size >= 1, "affinity array needs at least one slot");
}

void ServerQueues::on_slot_push(AffSlot& slot) {
  if (!slot.hook.is_linked()) nonempty_.push_back(&slot);
}

void ServerQueues::on_slot_pop(AffSlot& slot) {
  if (slot.tasks.empty()) {
    slot.hook.unlink();
    if (active_ == &slot) active_ = nullptr;
  }
}

void ServerQueues::push_locked(TaskDesc* t) {
  COOL_DCHECK(t != nullptr, "null task");
  if (t->aff.has_task()) {
    AffSlot& slot = slots_[slot_of(t->aff_key)];
    slot.tasks.push_back(t);
    on_slot_push(slot);
  } else {
    object_q_.push_back(t);
  }
  ++pushed_;
  const std::size_t n = size_.load(std::memory_order_relaxed) + 1;
  size_.store(n, std::memory_order_relaxed);
  if (n > max_depth_.load(std::memory_order_relaxed)) {
    max_depth_.store(n, std::memory_order_relaxed);
  }
}

void ServerQueues::push(TaskDesc* t) {
  std::lock_guard g(mu_);
  push_locked(t);
  maybe_check_locked();
}

void ServerQueues::push_resumed(TaskDesc* t) {
  COOL_DCHECK(t != nullptr, "null task");
  std::lock_guard g(mu_);
  object_q_.push_front(t);
  ++pushed_;
  const std::size_t n = size_.load(std::memory_order_relaxed) + 1;
  size_.store(n, std::memory_order_relaxed);
  if (n > max_depth_.load(std::memory_order_relaxed)) {
    max_depth_.store(n, std::memory_order_relaxed);
  }
  maybe_check_locked();
}

TaskDesc* ServerQueues::pop_locked() {
  // Keep draining the active affinity set: this is the back-to-back execution
  // that gives the paper's cache reuse.
  if (active_ != nullptr && !active_->tasks.empty()) {
    TaskDesc* t = active_->tasks.pop_front();
    on_slot_pop(*active_);
    ++popped_;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  active_ = nullptr;
  if (AffSlot* slot = nonempty_.front()) {
    active_ = slot;
    TaskDesc* t = slot->tasks.pop_front();
    on_slot_pop(*slot);
    ++popped_;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  if (TaskDesc* t = object_q_.pop_front()) {
    ++popped_;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  return nullptr;
}

TaskDesc* ServerQueues::pop() {
  std::lock_guard g(mu_);
  TaskDesc* t = pop_locked();
  maybe_check_locked();
  return t;
}

std::vector<TaskDesc*> ServerQueues::steal_set_locked(bool allow_pinned,
                                                      bool allow_reserved) {
  // Steal the set least likely to be serviced soon: prefer anything over the
  // active set (which the owner is draining), and skip pinned sets unless
  // allowed.
  auto eligible = [&](AffSlot* s) {
    if (allow_pinned && allow_reserved) return true;
    // Check every queued task: hash collisions can put a pinned set and an
    // unpinned set in the same slot, and the whole slot moves on a steal.
    for (const TaskDesc* t : s->tasks) {
      if (!allow_pinned &&
          (t->aff.has_processor() || t->aff.has_object())) {
        return false;
      }
      if (!allow_reserved && t->reserved) return false;
    }
    return !s->tasks.empty();
  };
  AffSlot* victim = nullptr;
  AffSlot* active_fallback = nullptr;
  for (AffSlot* s : nonempty_) {
    if (!eligible(s)) continue;
    if (s == active_) {
      active_fallback = s;
    } else {
      victim = s;  // keep the last eligible non-active set
    }
  }
  if (victim == nullptr) victim = active_fallback;
  if (victim == nullptr) return {};
  std::vector<TaskDesc*> set;
  while (TaskDesc* t = victim->tasks.pop_front()) {
    t->stolen = true;
    set.push_back(t);
    ++popped_;
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
  on_slot_pop(*victim);
  return set;
}

std::vector<TaskDesc*> ServerQueues::steal_set(bool allow_pinned,
                                               bool allow_reserved) {
  std::lock_guard g(mu_);
  std::vector<TaskDesc*> set = steal_set_locked(allow_pinned, allow_reserved);
  maybe_check_locked();
  return set;
}

TrySteal ServerQueues::try_steal_set(std::vector<TaskDesc*>& out,
                                     bool allow_pinned, bool allow_reserved) {
  std::unique_lock l(mu_, std::try_to_lock);
  if (!l.owns_lock()) return TrySteal::kBusy;
  out = steal_set_locked(allow_pinned, allow_reserved);
  maybe_check_locked();
  return out.empty() ? TrySteal::kEmpty : TrySteal::kGot;
}

TaskDesc* ServerQueues::steal_object_task_locked(bool allow_pinned,
                                                 bool allow_reserved) {
  TaskDesc* t = nullptr;
  if (allow_pinned && allow_reserved) {
    t = object_q_.pop_back();
  } else {
    // Scan for the youngest eligible task: hint-free unless pins are allowed,
    // unreserved unless reservations are up for grabs.
    for (TaskDesc* cand : object_q_) {
      if (!allow_pinned && !cand->aff.is_none()) continue;
      if (!allow_reserved && cand->reserved) continue;
      t = cand;
    }
    if (t != nullptr) TaskList::erase(t);
  }
  if (t != nullptr) {
    t->stolen = true;
    ++popped_;
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
  return t;
}

TaskDesc* ServerQueues::steal_object_task(bool allow_pinned,
                                          bool allow_reserved) {
  std::lock_guard g(mu_);
  TaskDesc* t = steal_object_task_locked(allow_pinned, allow_reserved);
  maybe_check_locked();
  return t;
}

TrySteal ServerQueues::try_steal_object_task(TaskDesc*& out, bool allow_pinned,
                                             bool allow_reserved) {
  std::unique_lock l(mu_, std::try_to_lock);
  if (!l.owns_lock()) return TrySteal::kBusy;
  out = steal_object_task_locked(allow_pinned, allow_reserved);
  maybe_check_locked();
  return out != nullptr ? TrySteal::kGot : TrySteal::kEmpty;
}

TrySteal ServerQueues::try_move_tasks(std::vector<TaskDesc*>& out,
                                      std::uint32_t max_tasks) {
  std::unique_lock l(mu_, std::try_to_lock);
  if (!l.owns_lock()) return TrySteal::kBusy;
  out.clear();
  auto take = [&](TaskDesc* t) {
    t->moved = true;
    out.push_back(t);
    ++popped_;
    size_.fetch_sub(1, std::memory_order_relaxed);
  };
  // Youngest object-queue tasks first (least likely to be popped soon), then
  // whole affinity slots from the back so moved sets stay contiguous on the
  // destination.
  while (out.size() < max_tasks) {
    TaskDesc* t = object_q_.pop_back();
    if (t == nullptr) break;
    take(t);
  }
  while (out.size() < max_tasks) {
    AffSlot* s = nonempty_.front();
    if (s == nullptr) break;
    TaskDesc* t = s->tasks.pop_back();
    take(t);
    on_slot_pop(*s);
  }
  maybe_check_locked();
  return out.empty() ? TrySteal::kEmpty : TrySteal::kGot;
}

void ServerQueues::adopt(const std::vector<TaskDesc*>& set,
                         topo::ProcId new_server) {
  std::lock_guard g(mu_);
  for (TaskDesc* t : set) {
    t->server = new_server;
    push_locked(t);
  }
  maybe_check_locked();
}

TaskDesc* ServerQueues::adopt_and_pop(const std::vector<TaskDesc*>& set,
                                      topo::ProcId new_server) {
  std::lock_guard g(mu_);
  for (TaskDesc* t : set) {
    t->server = new_server;
    push_locked(t);
  }
  TaskDesc* t = pop_locked();
  maybe_check_locked();
  return t;
}

std::size_t ServerQueues::n_nonempty_affinity_queues() const {
  std::lock_guard g(mu_);
  return nonempty_.size();
}

std::size_t ServerQueues::object_queue_size() const {
  std::lock_guard g(mu_);
  return object_q_.size();
}

// --- Invariant checking ------------------------------------------------------

void ServerQueues::check_locked() const {
  std::size_t in_slots = 0;
  std::size_t nonempty_count = 0;
  bool active_in_range = active_ == nullptr;
  for (const AffSlot& s : slots_) {
    const std::size_t n = s.tasks.size();
    COOL_CHECK(s.hook.is_linked() == (n != 0),
               "invariant: slot on the non-empty list iff it holds tasks");
    if (&s == active_) active_in_range = true;
    if (n == 0) continue;
    ++nonempty_count;
    in_slots += n;
    const auto idx = static_cast<std::size_t>(&s - slots_.data());
    for (const TaskDesc* t : s.tasks) {
      COOL_CHECK(t->aff.has_task(),
                 "invariant: affinity-slot task without TASK affinity");
      COOL_CHECK(slot_of(t->aff_key) == idx,
                 "invariant: task hashed into the wrong affinity slot");
      COOL_CHECK(owner_ == kNoOwner || t->server == owner_,
                 "invariant: queued task's server is not the queue owner");
    }
  }
  COOL_CHECK(active_in_range,
             "invariant: active set pointer outside the slot array");
  COOL_CHECK(active_ == nullptr || !active_->tasks.empty(),
             "invariant: active set pointer left on a drained slot");
  COOL_CHECK(nonempty_.size() == nonempty_count,
             "invariant: non-empty list out of sync with slot contents");
  for (const AffSlot* s : nonempty_) {
    COOL_CHECK(!s->tasks.empty(), "invariant: empty slot on non-empty list");
  }
  for (const TaskDesc* t : object_q_) {
    COOL_CHECK(owner_ == kNoOwner || t->server == owner_,
               "invariant: queued task's server is not the queue owner");
  }
  const std::size_t total = in_slots + object_q_.size();
  COOL_CHECK(size_.load(std::memory_order_relaxed) == total,
             "invariant: size counter out of sync with queue contents");
  COOL_CHECK(pushed_ - popped_ == total,
             "invariant: enqueue/dequeue ledger does not balance");
  COOL_CHECK(max_depth_.load(std::memory_order_relaxed) >= total,
             "invariant: high-water mark below the current depth");
}

void ServerQueues::validate() const {
  std::lock_guard g(mu_);
  check_locked();
}

void ServerQueues::for_each_task(
    const std::function<void(const TaskDesc*)>& fn) const {
  std::lock_guard g(mu_);
  for (const AffSlot& s : slots_) {
    for (const TaskDesc* t : s.tasks) fn(t);
  }
  for (const TaskDesc* t : object_q_) fn(t);
}

std::uint64_t ServerQueues::pushed() const {
  std::lock_guard g(mu_);
  return pushed_;
}

std::uint64_t ServerQueues::popped() const {
  std::lock_guard g(mu_);
  return popped_;
}

}  // namespace cool::sched
