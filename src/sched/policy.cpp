#include "sched/policy.hpp"

#include "common/error.hpp"

namespace cool::sched {

const char* balancer_kind_name(BalancerKind k) {
  switch (k) {
    case BalancerKind::kStealing:
      return "stealing";
    case BalancerKind::kAverage:
      return "average";
    case BalancerKind::kReserve:
      return "reserve";
  }
  return "?";
}

void validate_policy(const Policy& policy, const topo::MachineConfig& machine,
                     bool profile_available) {
  if (!policy.steal_enabled) {
    if (policy.steal_whole_sets || policy.steal_pinned_sets ||
        policy.steal_object_tasks) {
      throw util::Error(
          "invalid scheduler policy: steal_whole_sets/steal_pinned_sets/"
          "steal_object_tasks have no effect with steal_enabled=false — "
          "clear them or enable stealing");
    }
    if (policy.cluster_first || policy.cluster_only) {
      throw util::Error(
          "invalid scheduler policy: cluster_first/cluster_only scope the "
          "steal scan, which steal_enabled=false disables entirely");
    }
    if (policy.max_steal_scan != 0) {
      throw util::Error(
          "invalid scheduler policy: max_steal_scan caps the steal scan, "
          "which steal_enabled=false disables entirely");
    }
  }
  if (policy.steal_pinned_sets && !policy.steal_whole_sets) {
    throw util::Error(
        "invalid scheduler policy: steal_pinned_sets refines whole-set "
        "stealing and requires steal_whole_sets=true");
  }
  if (policy.cluster_first && policy.cluster_only) {
    throw util::Error(
        "invalid scheduler policy: cluster_first and cluster_only are "
        "mutually exclusive scan scopes — pick one");
  }
  if (policy.cluster_only && machine.n_clusters() <= 1) {
    throw util::Error(
        "invalid scheduler policy: cluster_only on a machine with a single "
        "cluster cannot restrict anything — drop the flag or use more "
        "clusters");
  }
  if (policy.balancer != BalancerKind::kStealing && !policy.steal_enabled) {
    throw util::Error(
        "invalid scheduler policy: the average/reserve balancers distribute "
        "work through the steal path, which steal_enabled=false disables — "
        "enable stealing or keep balancer=stealing");
  }
  if (policy.balancer == BalancerKind::kReserve && !profile_available) {
    throw util::Error(
        "invalid scheduler policy: balancer=reserve places tasks by profiled "
        "data hotness and needs --profile attribution (or --adapt under the "
        "simulation engine) — enable profiling or pick another balancer");
  }
  if (policy.balance_within_clusters &&
      policy.balancer != BalancerKind::kAverage) {
    throw util::Error(
        "invalid scheduler policy: balance_within_clusters scopes the "
        "average balancer's equalization level and requires "
        "balancer=average");
  }
  if (policy.balance_within_clusters && machine.n_clusters() <= 1) {
    throw util::Error(
        "invalid scheduler policy: balance_within_clusters on a machine with "
        "a single cluster is the machine level under another name — drop the "
        "flag or use more clusters");
  }
}

}  // namespace cool::sched
