// Scheduler-level task descriptor.
//
// The runtime (core/) owns richer task records (coroutine frames, groups);
// the scheduler sees only this descriptor: affinity, placement, and an
// intrusive hook so queue operations never allocate (paper §5: enqueue and
// dequeue are O(1) on doubly-linked lists).
#pragma once

#include <cstdint>

#include "common/intrusive_list.hpp"
#include "sched/affinity.hpp"
#include "topology/machine.hpp"

namespace cool::sched {

struct TaskDesc {
  util::ListHook hook;  ///< Links the task into exactly one queue at a time.

  Affinity aff;
  std::uint64_t seq = 0;         ///< Spawn sequence number (determinism/debug).
  std::uint64_t ready_time = 0;  ///< Simulated time the task became runnable.
  topo::ProcId server = 0;       ///< Server queue the task was placed on.
  std::uint64_t aff_key = 0;     ///< Task-affinity set key (0 = no set).
  bool stolen = false;           ///< Set if acquired by a thief.

  /// Opaque pointer back to the owning runtime record (core::TaskRecord).
  void* owner = nullptr;
};

}  // namespace cool::sched
