// Scheduler-level task descriptor.
//
// The runtime (core/) owns richer task records (coroutine frames, groups);
// the scheduler sees only this descriptor: affinity, placement, and an
// intrusive hook so queue operations never allocate (paper §5: enqueue and
// dequeue are O(1) on doubly-linked lists).
//
// Ownership across threads: a TaskDesc is only ever touched by the single
// thread that currently owns it. Ownership transfers exclusively through a
// ServerQueues enqueue/dequeue (or a wait-list push/pop in core/sync.hpp),
// whose mutex publishes every prior write of the descriptor to the next
// owner. Concretely: the placer writes `aff`/`aff_key`/`server`/`stolen`/
// `reserved` before push and never afterwards; a thief writes `stolen` (a
// balancer move writes `moved`) and `server` under the victim's (resp. its
// own) queue lock; the worker that pops reads them freely until it
// re-enqueues or completes the task. No field needs to be atomic under this
// discipline.
#pragma once

#include <cstdint>

#include "common/intrusive_list.hpp"
#include "sched/affinity.hpp"
#include "topology/machine.hpp"

namespace cool::sched {

struct TaskDesc {
  util::ListHook hook;  ///< Links the task into exactly one queue at a time.

  Affinity aff;
  std::uint64_t seq = 0;         ///< Spawn sequence number (determinism/debug).
  std::uint64_t ready_time = 0;  ///< Simulated time the task became runnable.
  topo::ProcId server = 0;       ///< Server queue the task was placed on.
  std::uint64_t aff_key = 0;     ///< Task-affinity set key (0 = no set).
  bool stolen = false;           ///< Set if acquired by a thief.
  bool reserved = false;         ///< Pre-placed by the Reserve balancer on
                                 ///< the cluster homing its hot data; thieves
                                 ///< from other clusters must leave it alone.
  bool moved = false;            ///< Relocated by a balancer move command.

  /// Opaque pointer back to the owning runtime record (core::TaskRecord).
  void* owner = nullptr;
};

}  // namespace cool::sched
