#include "sched/balancer.hpp"

#include <algorithm>

namespace cool::sched {

void StealingBalancer::generate(topo::ProcId thief,
                                const std::deque<ServerQueues>& queues,
                                std::vector<BalanceCommand>& out) {
  (void)queues;  // The steal scan probes victims blind, as the paper does.
  const std::uint32_t P = machine_.n_procs;
  for (std::uint32_t i = 1; i < P; ++i) {
    const auto victim = static_cast<topo::ProcId>((thief + i) % P);
    if (!covers(victim)) continue;
    if (level_.kind == topo::TopoLevel::Kind::kMachine &&
        policy_.cluster_first && machine_.same_cluster(thief, victim)) {
      // Second pass of a cluster_first chain: the thief's own cluster was
      // already scanned at the cluster level.
      continue;
    }
    out.push_back({BalanceCommand::Op::kTrySteal, victim, thief, 1});
  }
}

void AverageBalancer::generate(topo::ProcId thief,
                               const std::deque<ServerQueues>& queues,
                               std::vector<BalanceCommand>& out) {
  std::size_t total = 0;
  for (const topo::ProcId m : level_.members) total += queues[m].size();
  const std::size_t n = level_.members.size();
  const std::size_t avg = n == 0 ? 0 : (total + n - 1) / n;

  const std::uint32_t P = machine_.n_procs;
  bool any_moves = false;
  for (std::uint32_t i = 1; i < P; ++i) {
    const auto victim = static_cast<topo::ProcId>((thief + i) % P);
    if (!covers(victim)) continue;
    const std::size_t sz = queues[victim].size();
    if (sz > avg) {
      out.push_back({BalanceCommand::Op::kMoveTasks, victim, thief,
                     static_cast<std::uint32_t>(sz - avg)});
      any_moves = true;
    }
  }
  if (any_moves) return;
  // Nobody is over average, but the thief is idle: degrade to the plain
  // steal scan so stragglers (e.g. one short queue on a busy server) are
  // still drained and no work is stranded.
  for (std::uint32_t i = 1; i < P; ++i) {
    const auto victim = static_cast<topo::ProcId>((thief + i) % P);
    if (!covers(victim)) continue;
    out.push_back({BalanceCommand::Op::kTrySteal, victim, thief, 1});
  }
}

void ReserveBalancer::set_hotness(HotnessFn fn) {
  std::lock_guard l(mu_);
  hotness_ = std::move(fn);
  hot_.clear();
  cache_.clear();
  placements_ = 0;
}

void ReserveBalancer::refresh_locked() {
  hot_ = hotness_();
  // Heat-descending so the hottest object wins containment ties; address
  // ascending as the deterministic tie-break.
  std::stable_sort(hot_.begin(), hot_.end(),
                   [](const DataHotness& a, const DataHotness& b) {
                     if (a.heat != b.heat) return a.heat > b.heat;
                     return a.addr < b.addr;
                   });
  constexpr std::size_t kMaxHot = 32;
  if (hot_.size() > kMaxHot) hot_.resize(kMaxHot);
  cache_.clear();
}

topo::ProcId ReserveBalancer::least_loaded_member(
    topo::ClusterId c, const std::deque<ServerQueues>& queues) const {
  const std::vector<topo::ProcId> members = topo::cluster_members(machine_, c);
  // reserve_exclude_mask hides processors whose queue length lies about
  // their availability (a serving front-end: the pump occupies the
  // processor without being queued on it). If every member is masked the
  // mask is ignored — stranding the reservation would be worse.
  const std::uint64_t mask = policy_.reserve_exclude_mask;
  auto excluded = [&](topo::ProcId m) {
    return m < 64 && ((mask >> m) & 1u) != 0;
  };
  bool all_masked = true;
  for (const topo::ProcId m : members) all_masked = all_masked && excluded(m);
  topo::ProcId best = topo::ProcId(0);
  std::size_t best_sz = 0;
  bool have = false;
  for (const topo::ProcId m : members) {
    if (!all_masked && excluded(m)) continue;
    const std::size_t sz = queues[m].size();
    if (!have || sz < best_sz) {  // strict: ties go to the lowest id
      best = m;
      best_sz = sz;
      have = true;
    }
  }
  return best;
}

std::optional<topo::ProcId> ReserveBalancer::reserve_target(
    std::uint64_t key_addr, const std::deque<ServerQueues>& queues) {
  std::lock_guard l(mu_);
  if (!hotness_) return std::nullopt;
  const std::uint32_t period =
      policy_.reserve_refresh_tasks == 0 ? 1 : policy_.reserve_refresh_tasks;
  if (placements_ % period == 0) refresh_locked();
  ++placements_;

  if (const auto it = cache_.find(key_addr); it != cache_.end()) {
    if (it->second == kNoTarget) return std::nullopt;
    return it->second;
  }
  topo::ProcId target = kNoTarget;
  for (const DataHotness& h : hot_) {
    if (key_addr >= h.addr && key_addr < h.addr + h.bytes) {
      target = least_loaded_member(h.home_cluster, queues);
      break;
    }
  }
  cache_.emplace(key_addr, target);
  if (target == kNoTarget) return std::nullopt;
  return target;
}

std::unique_ptr<Balancer> make_balancer(BalancerKind kind,
                                        const topo::TopoLevel& level,
                                        const topo::MachineConfig& machine,
                                        const Policy& policy) {
  switch (kind) {
    case BalancerKind::kStealing:
      return std::make_unique<StealingBalancer>(level, machine, policy);
    case BalancerKind::kAverage:
      return std::make_unique<AverageBalancer>(level, machine, policy);
    case BalancerKind::kReserve:
      return std::make_unique<ReserveBalancer>(level, machine, policy);
  }
  return nullptr;
}

}  // namespace cool::sched
