// Affinity hints — the paper's Table 1, as a value type.
//
// COOL attaches an optional affinity block to a parallel function; the hints
// only influence scheduling, never semantics. The hierarchy:
//
//   (default)                 schedule where the base object lives
//   affinity(obj)             simple affinity: as default, keyed on `obj`
//   affinity(obj, TASK)       task affinity: tasks naming the same `obj` form
//                             a task-affinity set, run back-to-back for cache
//                             reuse, and may be stolen as a set
//   affinity(obj, OBJECT)     object affinity: collocate the task with the
//                             memory that homes `obj`; preferably not stolen
//   affinity(n, PROCESSOR)    run on server n mod P
//
// TASK and OBJECT compose (Gaussian elimination: TASK on the source column,
// OBJECT on the destination column).
#pragma once

#include <cstdint>
#include <initializer_list>

namespace cool::sched {

struct Affinity {
  /// Object whose cached footprint we want to reuse (TASK affinity); 0 = none.
  std::uint64_t task_obj = 0;
  /// Object with whose home memory the task should be collocated (OBJECT or
  /// simple/default affinity); 0 = none.
  std::uint64_t object_obj = 0;
  /// Explicit server (PROCESSOR affinity); negative = none. Taken modulo the
  /// number of servers, as in the paper.
  std::int64_t proc_hint = -1;

  [[nodiscard]] bool has_task() const noexcept { return task_obj != 0; }
  [[nodiscard]] bool has_object() const noexcept { return object_obj != 0; }
  [[nodiscard]] bool has_processor() const noexcept { return proc_hint >= 0; }
  [[nodiscard]] bool is_none() const noexcept {
    return !has_task() && !has_object() && !has_processor();
  }

  static Affinity none() noexcept { return {}; }

  /// Simple affinity / default (base-object) affinity.
  static Affinity object(const void* obj) noexcept {
    Affinity a;
    a.object_obj = reinterpret_cast<std::uint64_t>(obj);
    return a;
  }

  /// TASK affinity only: cache locality on `obj`.
  static Affinity task(const void* obj) noexcept {
    Affinity a;
    a.task_obj = reinterpret_cast<std::uint64_t>(obj);
    return a;
  }

  /// TASK + OBJECT: cache locality on `t`, memory locality on `o`.
  static Affinity task_object(const void* t, const void* o) noexcept {
    Affinity a;
    a.task_obj = reinterpret_cast<std::uint64_t>(t);
    a.object_obj = reinterpret_cast<std::uint64_t>(o);
    return a;
  }

  /// PROCESSOR affinity: schedule on server `n mod P`.
  static Affinity processor(std::int64_t n) noexcept {
    Affinity a;
    a.proc_hint = n;
    return a;
  }

  /// PROCESSOR + TASK: pin to a server, and group into an affinity set there
  /// (LocusRoute's per-region scheduling).
  static Affinity processor_task(std::int64_t n, const void* t) noexcept {
    Affinity a;
    a.proc_hint = n;
    a.task_obj = reinterpret_cast<std::uint64_t>(t);
    return a;
  }

  // --- multi-object affinity (paper §4.1 / §8 "ongoing research") ----------
  //
  // "If affinity is specified for multiple objects then we currently schedule
  //  the task based on the first. There are obvious better heuristics that
  //  would determine the relative importance of objects based on their size
  //  and schedule the task on the processor that has the most objects in its
  //  local memory, while prefetching the remaining objects."
  //
  // We implement that heuristic: a task may name up to kMaxObjects objects
  // with sizes; the scheduler places it on the server homing the most bytes
  // (policy-controlled; falls back to first-object placement when disabled),
  // and the simulation engine can prefetch the non-local ones at dispatch.

  struct ObjRef {
    std::uint64_t addr = 0;
    std::uint64_t bytes = 0;
  };
  static constexpr int kMaxObjects = 4;
  ObjRef objs[kMaxObjects];
  int n_objs = 0;

  [[nodiscard]] bool has_multi() const noexcept { return n_objs > 0; }

  /// Multi-object OBJECT affinity. The first object is also recorded as the
  /// plain object hint (the paper's fallback).
  static Affinity objects(std::initializer_list<ObjRef> list) noexcept {
    Affinity a;
    for (const ObjRef& o : list) {
      if (a.n_objs >= kMaxObjects || o.addr == 0) break;
      a.objs[a.n_objs++] = o;
    }
    if (a.n_objs > 0) a.object_obj = a.objs[0].addr;
    return a;
  }

  /// Convenience: reference an object by pointer + byte size.
  static ObjRef ref(const void* p, std::uint64_t bytes) noexcept {
    return ObjRef{reinterpret_cast<std::uint64_t>(p), bytes};
  }
};

}  // namespace cool::sched
