// Per-server task-queue structure, following paper §5:
//
//   "There are two kinds of task queues per server": an object-affinity queue
//   (which also holds default-affinity and resumed tasks), plus an array of
//   task-affinity queues. A task with TASK affinity hashes its affinity
//   object's address into the array ("two modulo operations": one to pick the
//   server, one to pick the queue), so tasks of the same task-affinity set
//   land on the same queue and are serviced back to back. The non-empty
//   queues in the array are linked into a doubly-linked list for O(1)
//   enqueue/dequeue, and a suitably large array minimises collisions of
//   distinct affinity sets on one queue.
//
// Concurrency: each ServerQueues carries its own mutex and every public
// operation is internally synchronised, so per-server queues run concurrently
// with no scheduler-wide lock. The owner's push/pop take the lock
// unconditionally (it is almost always uncontended); thieves use the
// `try_steal_*` variants, which `try_lock` and report kBusy instead of
// convoying behind the owner. `empty()`/`size()` read an atomic counter
// without the lock, so victim scans stay wait-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "common/intrusive_list.hpp"
#include "sched/task.hpp"

namespace cool::sched {

/// Outcome of a non-blocking steal attempt.
enum class TrySteal : std::uint8_t {
  kGot,    ///< Stole something.
  kEmpty,  ///< Lock taken, nothing stealable.
  kBusy,   ///< Queue lock held by someone else; caller should move on.
};

class ServerQueues {
 public:
  using TaskList = util::IntrusiveList<TaskDesc, &TaskDesc::hook>;

  explicit ServerQueues(std::size_t affinity_array_size);

  /// Queue index for a task-affinity key (the paper's second modulo
  /// operation). The key is an object address scaled by the line size, and
  /// objects are page-aligned, so the low bits carry no entropy — mix the
  /// key first or every affinity set lands in slot 0.
  [[nodiscard]] std::size_t slot_of(std::uint64_t aff_key) const noexcept {
    const std::uint64_t mixed = (aff_key * 0x9e3779b97f4a7c15ull) >> 17;
    return static_cast<std::size_t>(mixed % slots_.size());
  }

  /// Enqueue at the back (normal spawn order).
  void push(TaskDesc* t);

  /// Enqueue at the front of the object queue (resumed / unblocked tasks).
  void push_resumed(TaskDesc* t);

  /// Dequeue for local execution. Services the current task-affinity set to
  /// exhaustion (back-to-back execution), then the next non-empty affinity
  /// queue, then the object-affinity queue. Returns nullptr when empty.
  TaskDesc* pop();

  /// Steal an entire task-affinity set (paper §4.2: "tasks scheduled with
  /// task-affinity can be stolen as a set"). Takes the least-recently-touched
  /// non-empty affinity queue. With `allow_pinned == false`, sets whose tasks
  /// also carry PROCESSOR or OBJECT placement are skipped — the programmer
  /// pinned them deliberately (e.g. LocusRoute's per-region processor hints).
  /// With `allow_reserved == false`, sets holding Reserve-balancer
  /// reservations are skipped too (cross-cluster thieves must not undo a
  /// reservation; same-cluster thieves pass true). Empty result means no set
  /// to steal.
  std::vector<TaskDesc*> steal_set(bool allow_pinned = true,
                                   bool allow_reserved = true);

  /// Steal a single task from the back of the object-affinity queue.
  /// With `allow_pinned == false`, tasks carrying OBJECT or PROCESSOR
  /// affinity are skipped ("tasks scheduled with object-affinity should
  /// preferably not be stolen", paper §4.2) and only hint-free tasks are
  /// taken; with `allow_reserved == false`, Reserve-balancer reservations
  /// are skipped. Returns nullptr if nothing stealable.
  TaskDesc* steal_object_task(bool allow_pinned = true,
                              bool allow_reserved = true);

  /// Non-blocking variants for thieves: `try_lock` the queue and steal, or
  /// report kBusy without waiting so a steal scan never convoys behind the
  /// owner. On kGot the stolen set/task is written to `out`.
  TrySteal try_steal_set(std::vector<TaskDesc*>& out, bool allow_pinned = true,
                         bool allow_reserved = true);
  TrySteal try_steal_object_task(TaskDesc*& out, bool allow_pinned = true,
                                 bool allow_reserved = true);

  /// Non-blocking balancer-move extraction: `try_lock` and pop up to
  /// `max_tasks` tasks — youngest-first from the object queue, then from the
  /// affinity slots — marking each `moved`. Moves serve the Average
  /// balancer's equalization and deliberately ignore affinity pins and
  /// reservations (the balancer decided balance beats locality here). The
  /// caller adopts the batch onto the destination server.
  TrySteal try_move_tasks(std::vector<TaskDesc*>& out,
                          std::uint32_t max_tasks);

  /// Adopt tasks stolen as a set: they keep their affinity key and are queued
  /// back-to-back on this server.
  void adopt(const std::vector<TaskDesc*>& set, topo::ProcId new_server);

  /// Adopt a stolen set and immediately dequeue the first runnable task, all
  /// under one lock hold, so a concurrent thief cannot empty the queue
  /// between the adopt and the pop. Never returns nullptr for a non-empty
  /// set. This is the only whole-set-steal path that touches two servers'
  /// queues, and it takes the two locks strictly one at a time (victim lock
  /// released inside try_steal_set before this acquires the thief's own
  /// lock), so no lock order between servers is ever needed.
  TaskDesc* adopt_and_pop(const std::vector<TaskDesc*>& set,
                          topo::ProcId new_server);

  [[nodiscard]] bool empty() const noexcept {
    return size_.load(std::memory_order_relaxed) == 0;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t affinity_array_size() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] std::size_t n_nonempty_affinity_queues() const;
  [[nodiscard]] std::size_t object_queue_size() const;
  /// High-water mark of queued tasks (diagnostics).
  [[nodiscard]] std::size_t max_depth() const noexcept {
    return max_depth_.load(std::memory_order_relaxed);
  }

  // --- Invariant checking (analysis/invariants.hpp drives these) ------------

  /// "No owner recorded" sentinel for the owner invariant.
  static constexpr topo::ProcId kNoOwner = static_cast<topo::ProcId>(~0u);

  /// Record which server these queues belong to; once set, every queued
  /// task's `server` field must name this processor.
  void set_owner(topo::ProcId p) noexcept { owner_ = p; }
  [[nodiscard]] topo::ProcId owner() const noexcept { return owner_; }

  /// Validate every structural invariant (throws util::Error on violation):
  /// the non-empty list covers exactly the slots holding tasks, slot tasks
  /// hash to their slot and carry TASK affinity, the active pointer is sane,
  /// the size counter and push/pop ledger balance the actual contents, and
  /// every queued task names this server. Safe to call concurrently with
  /// queue operations (takes the queue lock).
  void validate() const;

  /// Visit every queued task under the queue lock (affinity slots in index
  /// order, then the object queue).
  void for_each_task(const std::function<void(const TaskDesc*)>& fn) const;

  /// Lifetime enqueue/dequeue ledger (pushed - popped == size).
  [[nodiscard]] std::uint64_t pushed() const;
  [[nodiscard]] std::uint64_t popped() const;

 private:
  struct AffSlot {
    TaskList tasks;
    util::ListHook hook;  ///< Links this slot into the non-empty list.
  };

  void on_slot_push(AffSlot& slot);
  void on_slot_pop(AffSlot& slot);
  void push_locked(TaskDesc* t);
  TaskDesc* pop_locked();
  std::vector<TaskDesc*> steal_set_locked(bool allow_pinned,
                                          bool allow_reserved);
  TaskDesc* steal_object_task_locked(bool allow_pinned, bool allow_reserved);
  void check_locked() const;
  /// Paranoid mode: re-validate after every mutation, while still holding
  /// the lock the mutation ran under.
  void maybe_check_locked() const {
    if (util::check_level() == util::CheckLevel::kParanoid) check_locked();
  }

  mutable std::mutex mu_;  ///< Guards every queue structure below.
  TaskList object_q_;
  std::vector<AffSlot> slots_;
  util::IntrusiveList<AffSlot, &AffSlot::hook> nonempty_;
  AffSlot* active_ = nullptr;  ///< Affinity set currently being drained.
  topo::ProcId owner_ = kNoOwner;
  /// Lifetime ledger, maintained under mu_: conservation check fodder.
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  /// Task count, maintained under mu_ but readable without it so victim
  /// scans and emptiness checks never touch the lock.
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> max_depth_{0};
};

}  // namespace cool::sched
