// The COOL runtime scheduler: placement of tasks by affinity hints, per-server
// queues, and work stealing with the paper's policies.
//
// Placement (paper §4.1/§5):
//   PROCESSOR affinity  -> server = n mod P
//   OBJECT / simple / default affinity -> server = home(object)
//   TASK affinity only  -> server = home(task object)
//   no hints            -> the spawning processor's own queue
// plus, for tasks with TASK affinity, the affinity-set key = object address /
// line size, hashed into the server's queue array (the second modulo).
//
// Stealing (paper §4.2, §6.3): an idle processor steals; whole task-affinity
// sets may be stolen together; object-affinity tasks are stolen only as a
// last resort (or never, by policy); `cluster_first` restricts the first
// round of victims to the thief's own cluster — the Panel Cholesky
// "Distr+Aff+ClusterStealing" experiment; `cluster_only` forbids stealing
// outside the cluster entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sched/queues.hpp"
#include "topology/machine.hpp"

namespace cool::sched {

struct Policy {
  std::size_t affinity_array_size = 64;  ///< Queues per server (paper §5).
  bool steal_enabled = true;
  bool steal_whole_sets = true;    ///< Steal task-affinity sets as a unit.
  bool steal_pinned_sets = false;  ///< Also steal sets pinned by PROCESSOR /
                                   ///< OBJECT hints (default: respect pins).
  bool steal_object_tasks = false; ///< Allow stealing tasks pinned by OBJECT /
                                   ///< PROCESSOR hints (paper: "preferably
                                   ///< not"; hint-free tasks are always
                                   ///< stealable).
  bool cluster_first = false;     ///< Prefer victims in the thief's cluster.
  bool cluster_only = false;      ///< Never steal outside the cluster.
  bool honor_affinity = true;     ///< false = ignore all hints (the paper's
                                  ///< "Base" round-robin scheduling).
  bool multi_object_placement = true;  ///< Size-weighted placement for
                                       ///< multi-object affinity (§8); false
                                       ///< = paper's "first object" fallback.
  bool prefetch_objects = false;  ///< Prefetch a task's non-local affinity
                                  ///< objects at dispatch (§8; sim engine).
};

struct SchedStats {
  std::uint64_t spawned = 0;
  std::uint64_t placed_processor = 0;  ///< Placed via PROCESSOR hint.
  std::uint64_t placed_object = 0;     ///< Placed via OBJECT/simple/default hint.
  std::uint64_t placed_task = 0;       ///< Placed via TASK hint (no OBJECT).
  std::uint64_t placed_local = 0;      ///< No hints: spawner's queue.
  std::uint64_t placed_multi = 0;      ///< Size-weighted multi-object placement.
  std::uint64_t placed_round_robin = 0;///< Base mode round-robin placement.
  std::uint64_t pops = 0;
  std::uint64_t steals = 0;            ///< Successful steal operations.
  std::uint64_t set_steals = 0;        ///< ... of which whole sets.
  std::uint64_t tasks_stolen = 0;      ///< Tasks acquired via stealing.
  std::uint64_t remote_cluster_steals = 0;
  std::uint64_t failed_steal_scans = 0;
  std::uint64_t resumes = 0;
};

class Scheduler {
 public:
  /// `home` resolves an object address to the processor homing it.
  using HomeFn = std::function<topo::ProcId(std::uint64_t addr, topo::ProcId toucher)>;

  Scheduler(const topo::MachineConfig& machine, Policy policy, HomeFn home);

  /// Decide the server and affinity key for `t` (spawned by `spawner`) and
  /// enqueue it. Returns the chosen server.
  topo::ProcId place(TaskDesc* t, topo::ProcId spawner);

  /// Re-enqueue an unblocked task on its server, at the front.
  void enqueue_resumed(TaskDesc* t);

  /// Re-enqueue a yielded task on its current server, at the back.
  void enqueue_yielded(TaskDesc* t);

  /// Result of an acquire attempt.
  struct Acquired {
    TaskDesc* task = nullptr;
    bool stolen = false;
    bool stolen_remote_cluster = false;
  };

  /// Get work for `proc`: local pop first, then steal per policy.
  Acquired acquire(topo::ProcId proc);

  [[nodiscard]] bool has_local_work(topo::ProcId proc) const {
    return !queues_[proc].empty();
  }
  [[nodiscard]] bool any_work() const;
  [[nodiscard]] std::size_t total_queued() const;

  [[nodiscard]] const SchedStats& stats() const noexcept { return stats_; }
  SchedStats& stats() noexcept { return stats_; }

  [[nodiscard]] const ServerQueues& queues(topo::ProcId p) const {
    return queues_.at(p);
  }
  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }
  [[nodiscard]] const topo::MachineConfig& machine() const noexcept {
    return machine_;
  }

 private:
  TaskDesc* try_steal(topo::ProcId thief, topo::ProcId victim);

  const topo::MachineConfig& machine_;
  Policy policy_;
  HomeFn home_;
  std::deque<ServerQueues> queues_;  // deque: ServerQueues is not movable
  SchedStats stats_;
  std::uint64_t rr_next_ = 0;  ///< Base-mode round-robin cursor.
};

}  // namespace cool::sched
