// The COOL runtime scheduler: placement of tasks by affinity hints, per-server
// queues, and work stealing with the paper's policies.
//
// Placement (paper §4.1/§5):
//   PROCESSOR affinity  -> server = n mod P
//   OBJECT / simple / default affinity -> server = home(object)
//   TASK affinity only  -> server = home(task object)
//   no hints            -> the spawning processor's own queue
// plus, for tasks with TASK affinity, the affinity-set key = object address /
// line size, hashed into the server's queue array (the second modulo).
//
// Stealing (paper §4.2, §6.3): an idle processor steals; whole task-affinity
// sets may be stolen together; object-affinity tasks are stolen only as a
// last resort (or never, by policy); `cluster_first` restricts the first
// round of victims to the thief's own cluster — the Panel Cholesky
// "Distr+Aff+ClusterStealing" experiment; `cluster_only` forbids stealing
// outside the cluster entirely.
//
// Concurrency: the scheduler is internally synchronised — place/acquire/
// enqueue_* may be called from any number of threads with no external lock.
// Each ServerQueues carries its own mutex (thieves use try_lock and never
// convoy behind owners), statistics are sharded per server and aggregated on
// read, and an idle/wakeup protocol (per-server condition variables plus a
// global atomic work counter) lets engine workers sleep when no runnable work
// exists without missing wakeups. A single-threaded caller (the simulation
// engine) sees exactly the old sequential behaviour: uncontended locks always
// succeed, so every placement and steal decision is unchanged.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "sched/balancer.hpp"
#include "sched/policy.hpp"
#include "sched/queues.hpp"
#include "topology/levels.hpp"
#include "topology/machine.hpp"

namespace cool::sched {

/// Aggregated scheduler counters. This is a point-in-time snapshot: the
/// scheduler accumulates into per-server shards and `Scheduler::stats()`
/// sums them on read.
struct SchedStats {
  std::uint64_t spawned = 0;
  std::uint64_t placed_processor = 0;  ///< Placed via PROCESSOR hint.
  std::uint64_t placed_object = 0;     ///< Placed via OBJECT/simple/default hint.
  std::uint64_t placed_task = 0;       ///< Placed via TASK hint (no OBJECT).
  std::uint64_t placed_local = 0;      ///< No hints: spawner's queue.
  std::uint64_t placed_multi = 0;      ///< Size-weighted multi-object placement.
  std::uint64_t placed_round_robin = 0;///< Base mode round-robin placement.
  std::uint64_t pops = 0;
  std::uint64_t steals = 0;            ///< Successful steal operations.
  std::uint64_t set_steals = 0;        ///< ... of which whole sets.
  std::uint64_t tasks_stolen = 0;      ///< Tasks acquired via stealing.
  std::uint64_t remote_cluster_steals = 0;
  std::uint64_t failed_steal_scans = 0;
  std::uint64_t resumes = 0;
  std::uint64_t balance_commands = 0;  ///< Balancer commands executed.
  std::uint64_t balance_moves = 0;     ///< Tasks relocated by move commands.
  std::uint64_t reserve_hits = 0;      ///< Placements redirected by Reserve.
};

class Scheduler {
 public:
  /// `home` resolves an object address to the processor homing it. It is
  /// called without any scheduler lock held; a concurrent engine must make
  /// it thread-safe itself.
  using HomeFn = std::function<topo::ProcId(std::uint64_t addr, topo::ProcId toucher)>;

  Scheduler(const topo::MachineConfig& machine, Policy policy, HomeFn home);

  /// Decide the server and affinity key for `t` (spawned by `spawner`) and
  /// enqueue it. Returns the chosen server. Once enqueued the task may be
  /// acquired (and even completed) by another thread immediately, so neither
  /// place() nor its caller touches `t` after the enqueue.
  topo::ProcId place(TaskDesc* t, topo::ProcId spawner);

  /// Re-enqueue an unblocked task on its server, at the front.
  void enqueue_resumed(TaskDesc* t);

  /// Re-enqueue a yielded task on its current server, at the back.
  void enqueue_yielded(TaskDesc* t);

  /// Result of an acquire attempt.
  struct Acquired {
    TaskDesc* task = nullptr;
    bool stolen = false;
    bool stolen_remote_cluster = false;
    /// Task arrived via a balancer kMoveTasks command (Average policy);
    /// `victim` names the source server, `stolen` stays false.
    bool moved = false;
    topo::ProcId victim = 0;  ///< Who the task was stolen from (when stolen).
    /// A steal scan skipped at least one victim whose lock was busy. The
    /// caller should retry (spin) instead of sleeping: the busy victim may
    /// hold stealable work that was invisible to this scan.
    bool contended = false;
  };

  /// Get work for `proc`: local pop first, then steal per policy.
  Acquired acquire(topo::ProcId proc);

  // --- Idle/wakeup protocol -------------------------------------------------
  //
  // A worker that fails to acquire must not spin on "some queue is non-empty"
  // (queued tasks may be pinned to other servers) and must not sleep past a
  // new enqueue. Protocol: snapshot work_version() BEFORE the failed acquire,
  // then call wait_for_work() with that snapshot; every enqueue bumps the
  // version and wakes sleepers, so a version mismatch means new work arrived
  // somewhere after the snapshot and the wait returns immediately.

  /// Global enqueue counter; bumped whenever a task lands on any queue.
  [[nodiscard]] std::uint64_t work_version() const noexcept {
    return work_version_.load();
  }

  /// Block `proc` until the work version moves past `seen` or `give_up()`
  /// returns true. `give_up` is evaluated under the per-server gate mutex and
  /// must be safe to call from any thread (read atomics only).
  template <typename Pred>
  void wait_for_work(topo::ProcId proc, std::uint64_t seen, Pred give_up) {
    obs_idle_sleeps_.add(proc);
    IdleGate& g = gates_[proc];
    std::unique_lock l(g.m);
    g.sleeping.store(true);
    g.cv.wait(l, [&] { return work_version_.load() != seen || give_up(); });
    g.sleeping.store(false);
    obs_idle_wakeups_.add(proc);
  }

  /// Wake every sleeping worker (shutdown / completion). Bumps the version so
  /// a worker between snapshot and wait does not go back to sleep.
  void notify_all_waiters();

  [[nodiscard]] bool has_local_work(topo::ProcId proc) const {
    return !queues_[proc].empty();
  }
  [[nodiscard]] bool any_work() const;
  [[nodiscard]] std::size_t total_queued() const;

  /// Aggregate the per-server stat shards into one snapshot.
  [[nodiscard]] SchedStats stats() const;

  /// Register the scheduler's live metrics (steal-scan lengths, idle
  /// transitions, affinity-set run lengths) with an obs registry whose shard
  /// count covers this machine's processors. Call before any scheduling
  /// activity; un-attached, the hooks are no-ops. The registry must outlive
  /// the scheduler.
  void attach_obs(obs::Registry& reg);

  [[nodiscard]] const ServerQueues& queues(topo::ProcId p) const {
    return queues_.at(p);
  }

  /// Validate every per-queue structural invariant plus the idle-protocol
  /// monotonicity of the work version (it may only move forward). Safe to
  /// call concurrently with scheduling; throws util::Error on violation.
  void check_queues() const;

  /// Visit every currently-queued task across all servers (each queue's lock
  /// is held only while that queue is walked).
  void for_each_queued(const std::function<void(const TaskDesc*)>& fn) const;

  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }
  [[nodiscard]] const topo::MachineConfig& machine() const noexcept {
    return machine_;
  }

  // --- Adaptive-runtime hooks (src/adaptive) --------------------------------

  /// Enable/disable TASK-affinity promotion for tasks whose OBJECT affinity
  /// names `obj_addr` (the raw `Affinity::object_obj` value). A promoted
  /// task is placed as if the program had written TASK+OBJECT affinity —
  /// `task_obj` is rewritten to the object — so the whole promoted set
  /// queues on one server and runs back-to-back. With no promotions
  /// registered, place() takes one relaxed atomic load over the baseline.
  void set_task_promotion(std::uint64_t obj_addr, bool on);

  /// Apply `fn` to the live policy. Policy flags are read without locks on
  /// the scheduling fast paths, so this is only safe when no concurrent
  /// place/acquire runs — the single-threaded simulation engine between
  /// task dispatches. The adaptive runtime is sim-only for exactly this
  /// reason. A change of `Policy::balancer` rebuilds the per-level balancer
  /// instances (the epoch-boundary policy switch under --adapt).
  void adapt_policy(const std::function<void(Policy&)>& fn);

  // --- Balancer layer -------------------------------------------------------

  /// Install the Reserve balancer's heat source (typically the locality
  /// profiler). A no-op under other balancer kinds, but the source is
  /// remembered so an adaptive switch to Reserve picks it up.
  void set_hotness_source(HotnessFn fn);

  /// The topology levels balancers are instantiated over (machine root
  /// first, then clusters in id order).
  [[nodiscard]] const std::vector<topo::TopoLevel>& levels() const noexcept {
    return levels_;
  }

  /// The balancer serving `level` (index into levels()).
  [[nodiscard]] const Balancer& balancer_at(std::size_t level) const {
    return *balancers_.at(level);
  }

 private:
  /// One server's statistics shard; updated with relaxed atomics by whichever
  /// thread performs the operation, summed by stats().
  struct StatShard {
    std::atomic<std::uint64_t> spawned{0};
    std::atomic<std::uint64_t> placed_processor{0};
    std::atomic<std::uint64_t> placed_object{0};
    std::atomic<std::uint64_t> placed_task{0};
    std::atomic<std::uint64_t> placed_local{0};
    std::atomic<std::uint64_t> placed_multi{0};
    std::atomic<std::uint64_t> placed_round_robin{0};
    std::atomic<std::uint64_t> pops{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> set_steals{0};
    std::atomic<std::uint64_t> tasks_stolen{0};
    std::atomic<std::uint64_t> remote_cluster_steals{0};
    std::atomic<std::uint64_t> failed_steal_scans{0};
    std::atomic<std::uint64_t> resumes{0};
    std::atomic<std::uint64_t> balance_commands{0};
    std::atomic<std::uint64_t> balance_moves{0};
    std::atomic<std::uint64_t> reserve_hits{0};
  };

  /// Per-server sleep gate for the idle/wakeup protocol.
  struct alignas(64) IdleGate {
    std::mutex m;
    std::condition_variable cv;
    std::atomic<bool> sleeping{false};
  };

  /// Per-processor tracker of how many tasks of one affinity set ran
  /// back-to-back (paper §5's motivation for the queue array). Updated only
  /// by the owning processor's acquire() calls, so no synchronisation.
  struct alignas(64) RunTrack {
    std::uint64_t key = 0;
    std::uint64_t len = 0;
  };

  /// Per-processor scratch buffer for balancer command generation; touched
  /// only by the owning processor's acquire() calls (like RunTrack), so the
  /// vector's capacity is reused scan after scan with no synchronisation.
  struct alignas(64) CmdScratch {
    std::vector<BalanceCommand> cmds;
  };

  /// Close the current affinity run (if any) and start one for `key`.
  void note_run(topo::ProcId proc, std::uint64_t key);

  TaskDesc* try_steal(topo::ProcId thief, topo::ProcId victim, bool& busy);
  /// Execute one kMoveTasks command: extract up to max_tasks from the source
  /// queue, adopt them on the thief, and return the first runnable one.
  TaskDesc* exec_move(topo::ProcId thief, const BalanceCommand& cmd,
                      bool& busy);
  /// (Re)instantiate one balancer per topology level for the current
  /// policy's kind. Single-threaded callers only (construction, and
  /// adapt_policy under the simulation engine).
  void rebuild_balancers();
  /// Register the balance counters with the attached registry. Registration
  /// is deliberately lazy and policy-gated: under the default Stealing
  /// policy no sched.balance.* key ever appears, keeping every existing
  /// figure's output byte-identical.
  void register_balance_obs();
  /// Increment the work version; under paranoid checking also advance the
  /// monotonicity floor.
  void bump_version();
  /// Bump the work version and wake `server`'s worker if it sleeps, else the
  /// next sleeping worker (any idle processor may steal the new task).
  void signal_work(topo::ProcId server);
  void wake_gate(IdleGate& g);

  const topo::MachineConfig& machine_;
  Policy policy_;
  HomeFn home_;
  std::deque<ServerQueues> queues_;  // deque: ServerQueues is not movable

  // Balancer layer: one balancer per topology level, rebuilt when the
  // policy's kind changes. `reserve_` aliases the machine-level instance
  // under kReserve (the placement path consults it); levels_ outlives and is
  // referenced by every balancer.
  std::vector<topo::TopoLevel> levels_;
  std::vector<std::unique_ptr<Balancer>> balancers_;
  BalancerKind built_kind_ = BalancerKind::kStealing;
  ReserveBalancer* reserve_ = nullptr;
  HotnessFn hotness_fn_;
  std::vector<CmdScratch> cmd_scratch_;  ///< One per processor.

  util::Sharded<StatShard> stats_;   // per-server shards, summed on read
  std::deque<IdleGate> gates_;       // deque: IdleGate is not movable
  std::atomic<std::uint64_t> work_version_{0};
  /// Monotonicity floor for the work version, advanced (CAS-max) after each
  /// bump under paranoid checking; check_queues() asserts the version never
  /// reads below it.
  mutable std::atomic<std::uint64_t> wv_floor_{0};
  std::atomic<std::uint64_t> rr_next_{0};  ///< Base-mode round-robin cursor.

  /// TASK-promotion override table (see set_task_promotion). The atomic flag
  /// keeps the no-overrides fast path lock-free; the set itself is read under
  /// the mutex only when at least one promotion exists.
  std::atomic<bool> has_overrides_{false};
  mutable std::mutex override_m_;
  std::unordered_set<std::uint64_t> promoted_;

  // Optional obs instrumentation (detached no-ops until attach_obs()).
  std::vector<RunTrack> run_track_;
  obs::Counter obs_idle_sleeps_;
  obs::Counter obs_idle_wakeups_;
  obs::Histogram obs_steal_scan_;   ///< Victims probed per steal scan.
  obs::Histogram obs_run_length_;   ///< Affinity-set back-to-back run lengths.
  obs::Counter obs_balance_commands_;  ///< Balancer commands executed.
  obs::Counter obs_balance_moves_;     ///< Tasks relocated by move commands.
  /// Per-level reservation counters, indexed by target cluster
  /// ("sched.balance.reserve_hits.cluster<k>"); registered only under the
  /// Reserve policy so default-policy output is untouched.
  std::vector<obs::Counter> obs_reserve_hits_;
  obs::Registry* obs_reg_ = nullptr;  ///< Remembered for lazy registration.
};

}  // namespace cool::sched
