// AccessObserver — a passive tap on the simulated memory system.
//
// The locality profiler (obs/profiler.hpp) needs to know, for every line
// reference, where it was serviced and what it cost — attribution the
// aggregate PerfMonitor throws away. The race detector
// (analysis/race_detector.hpp) needs the same stream with byte precision.
// Rather than teach MemorySystem about objects and tasks, it exposes this
// narrow observer interface: when observers are attached, access_line()
// reports each reference after the fact.
//
// Ordering guarantees (the contract both consumers rely on):
//   * Observers run after ALL simulated state for the line (caches,
//     directory, page map, counters) is final, and must not feed anything
//     back — attaching one can never change simulated cycle counts.
//   * Events for one processor are delivered in that processor's program
//     order; multi-line accesses deliver their lines in ascending address
//     order, each with the byte sub-range [lo, hi) the program touched.
//   * Multiple observers are invoked in attachment order, each seeing the
//     identical event stream.
#pragma once

#include <cstdint>

#include "memsim/perfmon.hpp"
#include "topology/machine.hpp"

namespace cool::mem {

/// One serviced line reference, as seen by MemorySystem::access_line.
struct AccessInfo {
  topo::ProcId proc = 0;        ///< Processor that issued the reference.
  std::uint64_t addr = 0;       ///< Line-aligned simulated byte address.
  Service service = Service::kL1Hit;
  bool is_write = false;
  std::uint32_t stall = 0;      ///< Stall cycles charged for this line.
  topo::ProcId home = 0;        ///< Page home at the time of the access.
  std::uint64_t lo = 0;         ///< First byte of the line actually touched.
  std::uint64_t hi = 0;         ///< One past the last byte touched (0 = whole
                                ///< line; some callers are line-granular).
};

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// Called once per line reference, after counters and caches are updated.
  virtual void on_access(const AccessInfo& info) = 0;

  /// Called when `requester`'s write to the line at `addr` invalidated
  /// `copies_killed` sharer copies (write-sharing traffic only — page
  /// migration flushes are not reported).
  virtual void on_inval(std::uint64_t addr, topo::ProcId requester,
                        int copies_killed) = 0;
};

}  // namespace cool::mem
