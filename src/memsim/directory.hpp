// Directory-based invalidation coherence state, DASH-style.
//
// One logical directory entry per cached line: a sharer bitmask (up to 64
// processors) and an optional dirty owner. The MemorySystem consults and
// updates this state to classify where each miss is serviced (local memory,
// remote memory, or another processor's cache) and to count invalidations —
// the quantities the paper's DASH hardware performance monitor reports.
#pragma once

#include <bit>
#include <cstdint>
#include <unordered_map>

#include "common/error.hpp"
#include "memsim/cache.hpp"
#include "topology/machine.hpp"

namespace cool::mem {

constexpr topo::ProcId kNoOwner = 0xffffffffu;

struct LineState {
  std::uint64_t sharers = 0;       ///< Bit p set iff processor p caches the line.
  topo::ProcId dirty_owner = kNoOwner;  ///< Valid iff exactly one sharer holds it dirty.

  [[nodiscard]] bool is_cached() const noexcept { return sharers != 0; }
  [[nodiscard]] bool is_dirty() const noexcept { return dirty_owner != kNoOwner; }
  [[nodiscard]] bool has_sharer(topo::ProcId p) const noexcept {
    return (sharers >> p) & 1u;
  }
  [[nodiscard]] int sharer_count() const noexcept {
    return std::popcount(sharers);
  }
};

class Directory {
 public:
  /// State for a line; creates an uncached entry on demand.
  LineState& entry(LineAddr line) { return map_[line]; }

  /// Read-only view; returns a default (uncached) state if absent.
  [[nodiscard]] LineState peek(LineAddr line) const {
    const auto it = map_.find(line);
    return it == map_.end() ? LineState{} : it->second;
  }

  void add_sharer(LineAddr line, topo::ProcId p) {
    entry(line).sharers |= (1ull << p);
  }

  void remove_sharer(LineAddr line, topo::ProcId p) {
    auto it = map_.find(line);
    if (it == map_.end()) return;
    it->second.sharers &= ~(1ull << p);
    if (it->second.dirty_owner == p) it->second.dirty_owner = kNoOwner;
    if (it->second.sharers == 0) map_.erase(it);
  }

  void set_dirty(LineAddr line, topo::ProcId owner) {
    LineState& s = entry(line);
    s.sharers = (1ull << owner);
    s.dirty_owner = owner;
  }

  void clear_dirty(LineAddr line) {
    auto it = map_.find(line);
    if (it != map_.end()) it->second.dirty_owner = kNoOwner;
  }

  [[nodiscard]] std::size_t n_entries() const noexcept { return map_.size(); }

  void clear() { map_.clear(); }

  /// Iterate entries (tests and migration flushes).
  [[nodiscard]] const std::unordered_map<LineAddr, LineState>& entries() const {
    return map_;
  }

 private:
  std::unordered_map<LineAddr, LineState> map_;
};

}  // namespace cool::mem
