#include "memsim/pagemap.hpp"

#include "common/error.hpp"

namespace cool::mem {

std::size_t PageMap::bind_range(std::uint64_t addr, std::uint64_t size,
                                topo::ProcId home) {
  COOL_CHECK(home < machine_.n_procs, "bind_range: processor id out of range");
  COOL_CHECK(size > 0, "bind_range: empty range");
  const PageAddr first = machine_.page_of(addr);
  const PageAddr last = machine_.page_of(addr + size - 1);
  for (PageAddr p = first; p <= last; ++p) map_[p] = home;
  return static_cast<std::size_t>(last - first + 1);
}

topo::ProcId PageMap::home_of(std::uint64_t addr, topo::ProcId toucher) {
  COOL_CHECK(toucher < machine_.n_procs, "home_of: processor id out of range");
  const PageAddr page = machine_.page_of(addr);
  auto [it, inserted] = map_.try_emplace(page, toucher);
  if (inserted) ++first_touches_;
  return it->second;
}

topo::ProcId PageMap::home_of_bound(std::uint64_t addr) const {
  const auto it = map_.find(machine_.page_of(addr));
  COOL_CHECK(it != map_.end(), "home_of_bound: page is not bound");
  return it->second;
}

bool PageMap::is_bound(std::uint64_t addr) const {
  return map_.contains(machine_.page_of(addr));
}

std::vector<PageAddr> PageMap::pages_in(std::uint64_t addr,
                                        std::uint64_t size) const {
  COOL_CHECK(size > 0, "pages_in: empty range");
  std::vector<PageAddr> pages;
  const PageAddr first = machine_.page_of(addr);
  const PageAddr last = machine_.page_of(addr + size - 1);
  pages.reserve(static_cast<std::size_t>(last - first + 1));
  for (PageAddr p = first; p <= last; ++p) pages.push_back(p);
  return pages;
}

std::vector<std::size_t> PageMap::pages_per_proc() const {
  std::vector<std::size_t> counts(machine_.n_procs, 0);
  for (const auto& [page, home] : map_) ++counts[home];
  return counts;
}

}  // namespace cool::mem
