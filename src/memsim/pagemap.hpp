// Page-granularity placement map: which processor's local memory holds each
// page of the simulated shared address space.
//
// This models DASH's physical page placement: COOL's `new (proc)` registers
// pages at allocation time, `migrate()` rebinds whole pages (the paper's
// footnote 2: "the migrate call ... is implemented through the migration of
// entire pages spanned by the object"), and `home()` is a lookup (footnote 3).
// Unregistered pages are bound on first touch to the accessing processor's
// memory, matching "by default, memory is allocated from the local memory of
// the requesting processor".
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topology/machine.hpp"

namespace cool::mem {

using PageAddr = std::uint64_t;

class PageMap {
 public:
  explicit PageMap(const topo::MachineConfig& machine) : machine_(machine) {}

  /// Bind every page overlapping [addr, addr+size) to `home`'s local memory.
  /// Returns the number of pages bound. Re-binding an already-bound page is
  /// allowed (it is exactly what migrate does).
  std::size_t bind_range(std::uint64_t addr, std::uint64_t size,
                         topo::ProcId home);

  /// Home processor of the page containing `addr`; binds on first touch to
  /// `toucher` if unbound.
  topo::ProcId home_of(std::uint64_t addr, topo::ProcId toucher);

  /// Home of `addr` if bound (does not first-touch). Throws if unbound.
  [[nodiscard]] topo::ProcId home_of_bound(std::uint64_t addr) const;

  [[nodiscard]] bool is_bound(std::uint64_t addr) const;

  /// Pages overlapped by [addr, addr+size).
  [[nodiscard]] std::vector<PageAddr> pages_in(std::uint64_t addr,
                                               std::uint64_t size) const;

  [[nodiscard]] std::size_t n_bound_pages() const noexcept { return map_.size(); }
  [[nodiscard]] std::uint64_t first_touch_count() const noexcept {
    return first_touches_;
  }

  /// Pages currently homed at each processor (load-balance diagnostics).
  [[nodiscard]] std::vector<std::size_t> pages_per_proc() const;

  void clear() {
    map_.clear();
    first_touches_ = 0;
  }

 private:
  const topo::MachineConfig& machine_;
  std::unordered_map<PageAddr, topo::ProcId> map_;
  std::uint64_t first_touches_ = 0;
};

}  // namespace cool::mem
