// Performance-monitor counters, modelled on the DASH hardware performance
// monitor the paper uses (reference [11]) to measure bus and network activity
// non-intrusively. Counters are kept per processor and aggregated on demand.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/machine.hpp"

namespace cool::mem {

/// Where an access was serviced — the classification behind the paper's
/// cache-miss figures (Figs. 7, 11, 15).
enum class Service : std::uint8_t {
  kL1Hit = 0,
  kL2Hit,
  kLocalMem,     ///< Miss serviced by the local cluster's memory.
  kRemoteMem,    ///< Miss serviced by a remote cluster's memory.
  kLocalCache,   ///< Miss serviced dirty from a cache within the cluster.
  kRemoteCache,  ///< Miss serviced dirty from a cache in a remote cluster.
};
constexpr int kNumServices = 6;

struct ProcCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t serviced[kNumServices] = {};
  std::uint64_t upgrades = 0;            ///< Writes that invalidated sharers.
  std::uint64_t invals_sent = 0;         ///< Sharer copies invalidated by this proc's writes.
  std::uint64_t invals_received = 0;     ///< This proc's cached lines killed by others.
  std::uint64_t writebacks = 0;          ///< Dirty L2 victims written back.
  std::uint64_t latency_cycles = 0;      ///< Total memory stall cycles.
  std::uint64_t contention_cycles = 0;   ///< Portion of latency spent queueing.
  std::uint64_t pages_migrated = 0;
  std::uint64_t prefetches = 0;          ///< Lines brought in by prefetch.

  [[nodiscard]] std::uint64_t accesses() const noexcept { return reads + writes; }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return serviced[2] + serviced[3] + serviced[4] + serviced[5];
  }
  [[nodiscard]] std::uint64_t local_misses() const noexcept {
    return serviced[2] + serviced[4];
  }
  [[nodiscard]] std::uint64_t remote_misses() const noexcept {
    return serviced[3] + serviced[5];
  }

  void add(const ProcCounters& o) noexcept {
    reads += o.reads;
    writes += o.writes;
    for (int i = 0; i < kNumServices; ++i) serviced[i] += o.serviced[i];
    upgrades += o.upgrades;
    invals_sent += o.invals_sent;
    invals_received += o.invals_received;
    writebacks += o.writebacks;
    latency_cycles += o.latency_cycles;
    contention_cycles += o.contention_cycles;
    pages_migrated += o.pages_migrated;
    prefetches += o.prefetches;
  }
};

class PerfMonitor {
 public:
  explicit PerfMonitor(std::uint32_t n_procs) : per_proc_(n_procs) {}

  ProcCounters& proc(topo::ProcId p) { return per_proc_.at(p); }
  [[nodiscard]] const ProcCounters& proc(topo::ProcId p) const {
    return per_proc_.at(p);
  }

  [[nodiscard]] ProcCounters total() const {
    ProcCounters t;
    for (const auto& c : per_proc_) t.add(c);
    return t;
  }

  void reset() {
    for (auto& c : per_proc_) c = ProcCounters{};
  }

  [[nodiscard]] std::uint32_t n_procs() const noexcept {
    return static_cast<std::uint32_t>(per_proc_.size());
  }

 private:
  std::vector<ProcCounters> per_proc_;
};

}  // namespace cool::mem
