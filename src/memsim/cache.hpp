// Set-associative cache tag array with true-LRU replacement.
//
// The simulator tracks only presence (tags), not data: application code runs
// natively and computes real values, while this model decides hit/miss and
// which line a fill evicts. Coherence state (sharers, dirty owner) lives in
// the Directory; the cache is notified of invalidations and reports evictions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace cool::mem {

/// A line address (byte address / line size).
using LineAddr = std::uint64_t;

class Cache {
 public:
  /// `capacity_bytes` total, `assoc` ways, `line_bytes` per line.
  Cache(std::uint32_t capacity_bytes, std::uint32_t assoc,
        std::uint32_t line_bytes);

  /// True if the line is present; refreshes LRU on hit.
  bool access(LineAddr line);

  /// True if present, without disturbing LRU (used by inclusion checks).
  [[nodiscard]] bool contains(LineAddr line) const;

  /// Insert a line; returns the evicted victim line, if any.
  std::optional<LineAddr> insert(LineAddr line);

  /// Remove a line if present (coherence invalidation / inclusion victim).
  /// Returns true if the line was present.
  bool invalidate(LineAddr line);

  /// Drop every line (used by page migration flushes and tests).
  void clear();

  [[nodiscard]] std::uint32_t n_sets() const noexcept { return n_sets_; }
  [[nodiscard]] std::uint32_t assoc() const noexcept { return assoc_; }
  [[nodiscard]] std::uint64_t occupancy() const noexcept { return occupied_; }

 private:
  struct Way {
    LineAddr tag = 0;
    std::uint64_t lru = 0;  ///< Monotonic access stamp; 0 means invalid.
  };

  [[nodiscard]] std::uint32_t set_index(LineAddr line) const noexcept {
    return static_cast<std::uint32_t>(line) & (n_sets_ - 1);
  }
  Way* find(LineAddr line) noexcept;
  [[nodiscard]] const Way* find(LineAddr line) const noexcept;

  std::uint32_t assoc_;
  std::uint32_t n_sets_;
  std::uint64_t stamp_ = 0;
  std::uint64_t occupied_ = 0;
  std::vector<Way> ways_;  ///< n_sets_ * assoc_, set-major.
};

}  // namespace cool::mem
