// MemorySystem: the simulated DASH memory hierarchy.
//
// Execution-driven model: application code runs natively; every simulated
// memory reference is routed through here to (a) decide which level of the
// hierarchy services it, (b) charge the paper's latencies, (c) maintain
// directory coherence across the per-processor two-level caches, and
// (d) account everything in the PerfMonitor.
//
// The model reproduces the behaviours the paper's figures measure:
//   * cache reuse (back-to-back task scheduling -> L1/L2 hits),
//   * local vs. remote miss service (object distribution & object affinity),
//   * invalidations from write sharing (LocusRoute CostArray),
//   * memory-controller contention (panel distribution "spreads the memory
//     bandwidth requirements"),
//   * page-granularity migration (COOL's migrate()).
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/access_observer.hpp"
#include "memsim/cache.hpp"
#include "memsim/directory.hpp"
#include "memsim/pagemap.hpp"
#include "memsim/perfmon.hpp"
#include "topology/machine.hpp"

namespace cool::mem {

class MemorySystem {
 public:
  explicit MemorySystem(const topo::MachineConfig& machine);

  /// Simulate `proc` referencing [addr, addr+bytes) at time `now`
  /// (line-by-line). Returns the total stall cycles charged.
  std::uint64_t access(topo::ProcId proc, std::uint64_t addr,
                       std::uint64_t bytes, bool is_write, std::uint64_t now);

  /// Migrate every page overlapping [addr, addr+bytes) to `new_home`'s local
  /// memory: flushes cached copies (writing back dirty lines), rebinds the
  /// pages, and returns the cycles charged to the calling processor.
  std::uint64_t migrate(topo::ProcId caller, std::uint64_t addr,
                        std::uint64_t bytes, topo::ProcId new_home);

  /// Prefetch [addr, addr+bytes) into `proc`'s caches (paper §8: prefetching
  /// the remaining affinity objects). Clean lines only — lines dirty in
  /// another cache are skipped to keep coherence simple. Prefetches are
  /// modelled as fully overlapped: the caller charges only an issue cost.
  /// Returns the number of lines actually brought in.
  std::uint64_t prefetch(topo::ProcId proc, std::uint64_t addr,
                         std::uint64_t bytes, std::uint64_t now);

  /// Bind pages at allocation time (COOL's placed `new`); no flush, no charge.
  void bind_range(std::uint64_t addr, std::uint64_t bytes, topo::ProcId home) {
    pages_.bind_range(addr, bytes, home);
  }

  /// Home processor of `addr` (first-touch binds to `toucher`).
  topo::ProcId home_of(std::uint64_t addr, topo::ProcId toucher) {
    return pages_.home_of(addr, toucher);
  }

  PageMap& pages() noexcept { return pages_; }
  PerfMonitor& monitor() noexcept { return mon_; }
  [[nodiscard]] const PerfMonitor& monitor() const noexcept { return mon_; }
  Directory& directory() noexcept { return dir_; }
  [[nodiscard]] const topo::MachineConfig& machine() const noexcept {
    return machine_;
  }

  /// Drop all cache and directory state (not the page map). Tests use this;
  /// benches use it to separate warm-up from measurement.
  void flush_all_caches();

  /// Attach a passive per-access tap (in addition to any already attached).
  /// Observers are invoked in attachment order, after each line's simulated
  /// state is final, so they can never perturb timing; each must outlive the
  /// accesses it observes.
  void add_observer(AccessObserver* obs) {
    if (obs != nullptr) observers_.push_back(obs);
  }

  void remove_observer(AccessObserver* obs) noexcept {
    std::erase(observers_, obs);
  }

  /// Legacy single-observer hook: detach everything, then attach `obs`
  /// (nullptr = detach all).
  void set_observer(AccessObserver* obs) {
    observers_.clear();
    add_observer(obs);
  }

 private:
  std::uint64_t access_line(topo::ProcId proc, LineAddr line,
                            std::uint64_t addr, std::uint64_t lo,
                            std::uint64_t hi, bool is_write,
                            std::uint64_t now);
  /// Handle an L2 victim: maintain inclusion and directory state.
  void evict_line(topo::ProcId proc, LineAddr victim);
  /// Invalidate every cached copy of `line` except at `keeper` (pass kNoOwner
  /// to invalidate everywhere). Returns the number of copies killed and
  /// whether any was in a different cluster than `requester`.
  struct InvalResult {
    int killed = 0;
    bool any_remote = false;
  };
  InvalResult invalidate_sharers(LineAddr line, topo::ProcId requester,
                                 topo::ProcId keeper,
                                 bool count_as_sharing = true);
  /// Queueing delay at `cluster`'s memory controller for a fill issued at
  /// `when`. Backlog model: each fill adds `mem_occupancy` cycles of pending
  /// service; backlog drains as controller-local time advances. (A simple
  /// busy-until horizon is wrong under run-to-suspension execution: one long
  /// task would push the horizon far ahead and every time-lagging processor
  /// would then pay the whole horizon as queueing delay.)
  std::uint64_t controller_wait(topo::ClusterId cluster, std::uint64_t when);

  topo::MachineConfig machine_;
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  Directory dir_;
  PageMap pages_;
  PerfMonitor mon_;
  struct Controller {
    std::uint64_t last_time = 0;
    std::uint64_t backlog = 0;  ///< Cycles of queued service.
  };
  std::vector<Controller> controllers_;  ///< Per cluster.
  std::vector<AccessObserver*> observers_;  ///< Passive taps, in attach order.
};

}  // namespace cool::mem
