#include "memsim/memsystem.hpp"

#include <algorithm>

namespace cool::mem {

MemorySystem::MemorySystem(const topo::MachineConfig& machine)
    : machine_(machine), pages_(machine_), mon_(machine.n_procs),
      controllers_(machine.n_clusters()) {
  machine_.validate();
  l1_.reserve(machine_.n_procs);
  l2_.reserve(machine_.n_procs);
  for (std::uint32_t p = 0; p < machine_.n_procs; ++p) {
    l1_.emplace_back(machine_.l1_bytes, machine_.l1_assoc, machine_.line_bytes);
    l2_.emplace_back(machine_.l2_bytes, machine_.l2_assoc, machine_.line_bytes);
  }
}

std::uint64_t MemorySystem::controller_wait(topo::ClusterId cluster,
                                            std::uint64_t when) {
  Controller& ctl = controllers_.at(cluster);
  if (when > ctl.last_time) {
    const std::uint64_t elapsed = when - ctl.last_time;
    ctl.backlog -= std::min(ctl.backlog, elapsed);
    ctl.last_time = when;
  }
  const std::uint64_t wait = ctl.backlog;
  ctl.backlog += machine_.lat.mem_occupancy;
  return wait;
}

MemorySystem::InvalResult MemorySystem::invalidate_sharers(
    LineAddr line, topo::ProcId requester, topo::ProcId keeper,
    bool count_as_sharing) {
  InvalResult res;
  const LineState st = dir_.peek(line);
  if (!st.is_cached()) return res;
  for (std::uint32_t q = 0; q < machine_.n_procs; ++q) {
    if (q == keeper || !st.has_sharer(q)) continue;
    l1_[q].invalidate(line);
    l2_[q].invalidate(line);
    dir_.remove_sharer(line, q);
    if (count_as_sharing) mon_.proc(q).invals_received += 1;
    if (q != requester) {
      if (count_as_sharing) mon_.proc(requester).invals_sent += 1;
      if (!machine_.same_cluster(requester, q)) res.any_remote = true;
      res.killed += 1;
    }
  }
  return res;
}

void MemorySystem::evict_line(topo::ProcId proc, LineAddr victim) {
  // Inclusion: an L2 victim may not linger in L1.
  l1_[proc].invalidate(victim);
  const LineState st = dir_.peek(victim);
  if (st.dirty_owner == proc) {
    mon_.proc(proc).writebacks += 1;
    dir_.clear_dirty(victim);
  }
  dir_.remove_sharer(victim, proc);
}

std::uint64_t MemorySystem::access_line(topo::ProcId proc, LineAddr line,
                                        std::uint64_t addr, std::uint64_t lo,
                                        std::uint64_t hi, bool is_write,
                                        std::uint64_t now) {
  ProcCounters& c = mon_.proc(proc);
  std::uint64_t lat = 0;
  Service service = Service::kL1Hit;

  if (l1_[proc].access(line)) {
    service = Service::kL1Hit;
    lat += machine_.lat.l1_hit;
    // (presence in L1 implies presence in L2 by inclusion)
    l2_[proc].access(line);  // keep L2 LRU warm
  } else if (l2_[proc].access(line)) {
    service = Service::kL2Hit;
    lat += machine_.lat.l2_hit;
    if (auto l1_victim = l1_[proc].insert(line)) {
      // L1 victim stays valid in L2; nothing else to do.
      (void)l1_victim;
    }
  } else {
    // Full miss: consult the directory and the page map.
    const topo::ProcId home = pages_.home_of(addr, proc);
    const bool home_local = machine_.same_cluster(proc, home);
    const LineState st = dir_.peek(line);

    if (st.is_dirty() && st.dirty_owner != proc) {
      // Serviced by forwarding from the dirty owner's cache; owner keeps a
      // shared copy and the data is written back towards home.
      const topo::ProcId owner = st.dirty_owner;
      const bool owner_local = machine_.same_cluster(proc, owner);
      service = owner_local ? Service::kLocalCache : Service::kRemoteCache;
      lat += owner_local ? machine_.lat.local_cache : machine_.lat.remote_cache;
      dir_.clear_dirty(line);
      mon_.proc(owner).writebacks += 1;
    } else {
      service = home_local ? Service::kLocalMem : Service::kRemoteMem;
      lat += home_local ? machine_.lat.local_mem : machine_.lat.remote_mem;
      const std::uint64_t wait =
          controller_wait(machine_.cluster_of(home), now + lat);
      lat += wait;
      c.contention_cycles += wait;
    }

    if (auto victim = l2_[proc].insert(line)) evict_line(proc, *victim);
    l1_[proc].insert(line);
    dir_.add_sharer(line, proc);
  }

  if (is_write) {
    const LineState st = dir_.peek(line);
    if (st.dirty_owner != proc) {
      const InvalResult inv = invalidate_sharers(line, proc, proc);
      if (inv.killed > 0) {
        c.upgrades += 1;
        lat += inv.any_remote ? machine_.lat.inval_remote
                              : machine_.lat.inval_local;
        for (AccessObserver* o : observers_) o->on_inval(addr, proc, inv.killed);
      }
      dir_.set_dirty(line, proc);
    }
    c.writes += 1;
  } else {
    c.reads += 1;
  }

  c.serviced[static_cast<int>(service)] += 1;
  c.latency_cycles += lat;
  if (!observers_.empty()) {
    // The line is cached here by now, so its page is necessarily bound and
    // this lookup cannot first-touch (the tap never perturbs the page map).
    const AccessInfo info{proc,     addr,
                          service,  is_write,
                          static_cast<std::uint32_t>(lat),
                          pages_.home_of(addr, proc),
                          lo,       hi};
    for (AccessObserver* o : observers_) o->on_access(info);
  }
  return lat;
}

std::uint64_t MemorySystem::access(topo::ProcId proc, std::uint64_t addr,
                                   std::uint64_t bytes, bool is_write,
                                   std::uint64_t now) {
  COOL_CHECK(proc < machine_.n_procs, "access: processor id out of range");
  COOL_CHECK(bytes > 0, "access: empty range");
  const LineAddr first = machine_.line_of(addr);
  const LineAddr last = machine_.line_of(addr + bytes - 1);
  std::uint64_t total = 0;
  for (LineAddr line = first; line <= last; ++line) {
    const std::uint64_t line_start = line * machine_.line_bytes;
    // The byte sub-range of this line the program actually touched: byte
    // precision lets the race detector distinguish true sharing from false
    // sharing within one line.
    const std::uint64_t lo = std::max(addr, line_start);
    const std::uint64_t hi = std::min(addr + bytes, line_start + machine_.line_bytes);
    total += access_line(proc, line, line_start, lo, hi, is_write, now + total);
  }
  return total;
}

std::uint64_t MemorySystem::migrate(topo::ProcId caller, std::uint64_t addr,
                                    std::uint64_t bytes,
                                    topo::ProcId new_home) {
  COOL_CHECK(caller < machine_.n_procs, "migrate: caller out of range");
  COOL_CHECK(new_home < machine_.n_procs, "migrate: target out of range");
  COOL_CHECK(bytes > 0, "migrate: empty range");

  const auto pages = pages_.pages_in(addr, bytes);
  const std::uint64_t lines_per_page = machine_.page_bytes / machine_.line_bytes;
  for (const PageAddr page : pages) {
    // Flush every cached line of the page (DASH migrates physical pages, so
    // stale cached copies must go; dirty data is written back first).
    const LineAddr first_line = page * lines_per_page;
    for (std::uint64_t i = 0; i < lines_per_page; ++i) {
      const LineAddr line = first_line + i;
      const LineState st = dir_.peek(line);
      if (!st.is_cached()) continue;
      if (st.is_dirty()) mon_.proc(st.dirty_owner).writebacks += 1;
      // Page-migration flushes are not write-sharing traffic.
      invalidate_sharers(line, caller, kNoOwner, /*count_as_sharing=*/false);
    }
    pages_.bind_range(page * machine_.page_bytes, machine_.page_bytes,
                      new_home);
  }
  const auto n = static_cast<std::uint64_t>(pages.size());
  mon_.proc(caller).pages_migrated += n;
  return n * machine_.lat.page_copy;
}

std::uint64_t MemorySystem::prefetch(topo::ProcId proc, std::uint64_t addr,
                                     std::uint64_t bytes, std::uint64_t now) {
  COOL_CHECK(proc < machine_.n_procs, "prefetch: processor id out of range");
  COOL_CHECK(bytes > 0, "prefetch: empty range");
  const LineAddr first = machine_.line_of(addr);
  const LineAddr last = machine_.line_of(addr + bytes - 1);
  std::uint64_t brought = 0;
  for (LineAddr line = first; line <= last; ++line) {
    if (l2_[proc].contains(line)) continue;
    const LineState st = dir_.peek(line);
    if (st.is_dirty()) continue;  // leave dirty lines to demand misses
    const topo::ProcId home = pages_.home_of(line * machine_.line_bytes, proc);
    // Prefetches overlap execution but still consume memory bandwidth: they
    // add service backlog at the home controller (delaying demand misses)
    // without making this processor wait.
    (void)controller_wait(machine_.cluster_of(home), now);
    if (auto victim = l2_[proc].insert(line)) evict_line(proc, *victim);
    l1_[proc].insert(line);
    dir_.add_sharer(line, proc);
    ++brought;
  }
  mon_.proc(proc).prefetches += brought;
  return brought;
}

void MemorySystem::flush_all_caches() {
  for (auto& c : l1_) c.clear();
  for (auto& c : l2_) c.clear();
  dir_.clear();
  for (auto& ctl : controllers_) ctl = Controller{};
}

}  // namespace cool::mem
