#include "memsim/cache.hpp"

namespace cool::mem {

Cache::Cache(std::uint32_t capacity_bytes, std::uint32_t assoc,
             std::uint32_t line_bytes)
    : assoc_(assoc) {
  COOL_CHECK(assoc >= 1, "associativity must be >= 1");
  COOL_CHECK(line_bytes >= 1 && util::is_pow2(line_bytes),
             "line size must be a power of two");
  COOL_CHECK(capacity_bytes % (line_bytes * assoc) == 0,
             "capacity must be a multiple of line * assoc");
  n_sets_ = capacity_bytes / (line_bytes * assoc);
  COOL_CHECK(util::is_pow2(n_sets_), "set count must be a power of two");
  ways_.resize(static_cast<std::size_t>(n_sets_) * assoc_);
}

Cache::Way* Cache::find(LineAddr line) noexcept {
  Way* set = &ways_[static_cast<std::size_t>(set_index(line)) * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].lru != 0 && set[w].tag == line) return &set[w];
  }
  return nullptr;
}

const Cache::Way* Cache::find(LineAddr line) const noexcept {
  return const_cast<Cache*>(this)->find(line);
}

bool Cache::access(LineAddr line) {
  Way* w = find(line);
  if (w == nullptr) return false;
  w->lru = ++stamp_;
  return true;
}

bool Cache::contains(LineAddr line) const { return find(line) != nullptr; }

std::optional<LineAddr> Cache::insert(LineAddr line) {
  Way* set = &ways_[static_cast<std::size_t>(set_index(line)) * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].lru != 0 && set[w].tag == line) {
      set[w].lru = ++stamp_;  // Already present: refresh only.
      return std::nullopt;
    }
  }
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < assoc_ && victim == nullptr; ++w) {
    if (set[w].lru == 0) victim = &set[w];  // Prefer an empty way.
  }
  if (victim == nullptr) {
    victim = &set[0];
    for (std::uint32_t w = 1; w < assoc_; ++w) {
      if (set[w].lru < victim->lru) victim = &set[w];
    }
  }
  std::optional<LineAddr> evicted;
  if (victim->lru != 0) {
    evicted = victim->tag;
  } else {
    ++occupied_;
  }
  victim->tag = line;
  victim->lru = ++stamp_;
  return evicted;
}

bool Cache::invalidate(LineAddr line) {
  Way* w = find(line);
  if (w == nullptr) return false;
  w->lru = 0;
  --occupied_;
  return true;
}

void Cache::clear() {
  for (Way& w : ways_) w.lru = 0;
  occupied_ = 0;
}

}  // namespace cool::mem
