// Structured event tracing: per-processor ring buffers of typed events,
// exportable as Chrome-trace JSON (load in chrome://tracing or Perfetto).
//
// This replaces the core engine's unbounded TraceEvent vector. Each processor
// (sim) or worker (threads) records into its own fixed-capacity ring with no
// synchronisation on the hot path — single writer per buffer, readers merge
// after the run. When a ring wraps, the oldest events are dropped and
// counted, so tracing a long run costs bounded memory and, crucially for the
// simulation engine, never perturbs the simulated clocks: recording an event
// performs no allocation after construction and charges no cycles.
//
// Timestamps are engine-defined: simulated cycles under SimEngine,
// microseconds since run start under ThreadEngine. The Chrome exporter
// writes them to the `ts`/`dur` fields unchanged (Chrome interprets them as
// microseconds, which makes one simulated cycle render as one "µs").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/machine.hpp"

namespace cool::obs {

enum class EventKind : std::uint8_t {
  kTaskSpan = 0,  ///< One task resume: a=task seq; flags carry end/stolen.
  kSteal,         ///< Successful steal: a=victim proc, b=tasks acquired.
  kMigration,     ///< Page migration: a=target proc, b=bytes.
  kIdleGap,       ///< Processor waited for a task's data/ready time.
  kAdaptation,    ///< Adaptive-runtime decision: a=decision index into the
                  ///< adaptation log, b=rule (obs::AdviceKind).
  kBalance,       ///< Balancer decision: a=source server (move) or target
                  ///< server (reservation), b=tasks affected; flags carry
                  ///< the decision kind (kBalanceMove / kBalanceReserve).
};

/// kBalance flag values (which balancer decision the event records).
constexpr std::uint8_t kBalanceMove = 0;     ///< kMoveTasks executed.
constexpr std::uint8_t kBalanceReserve = 1;  ///< Placement reservation.

/// TaskSpan flag bits.
constexpr std::uint8_t kSpanStolen = 0x1;     ///< Acquired by stealing.
constexpr std::uint8_t kSpanEndShift = 1;     ///< Bits 1-2: how the span ended.
constexpr std::uint8_t kSpanEndMask = 0x6;
constexpr std::uint8_t kSpanCompleted = 0;
constexpr std::uint8_t kSpanBlocked = 1;
constexpr std::uint8_t kSpanYielded = 2;

inline std::uint8_t span_flags(bool stolen, std::uint8_t end) noexcept {
  return static_cast<std::uint8_t>((stolen ? kSpanStolen : 0) |
                                   (end << kSpanEndShift));
}
inline std::uint8_t span_end(std::uint8_t flags) noexcept {
  return static_cast<std::uint8_t>((flags & kSpanEndMask) >> kSpanEndShift);
}

/// One trace event. `a`/`b` are kind-specific payloads (see EventKind).
struct Event {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  topo::ProcId proc = 0;
  EventKind kind = EventKind::kTaskSpan;
  std::uint8_t flags = 0;
};

/// Fixed-capacity single-writer ring of events. Not internally synchronised:
/// exactly one thread records; readers inspect only after the writer quiesces
/// (post-run), matching how both engines use it.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  void record(const Event& e) noexcept {
    ring_[next_ % ring_.size()] = e;
    ++next_;
  }

  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept {
    return next_ < ring_.size() ? next_ : ring_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events overwritten by wrap-around.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return next_ < ring_.size() ? 0 : next_ - ring_.size();
  }

  /// Visit retained events oldest to newest.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    const std::size_t first = next_ - n;
    for (std::size_t i = 0; i < n; ++i) {
      fn(ring_[(first + i) % ring_.size()]);
    }
  }

  void clear() noexcept { next_ = 0; }

 private:
  std::vector<Event> ring_;
  std::size_t next_ = 0;  ///< Total events ever recorded.
};

/// One TraceBuffer per processor plus merged views over all of them.
class TraceCollector {
 public:
  TraceCollector(std::uint32_t n_procs, std::size_t capacity_per_proc);

  [[nodiscard]] TraceBuffer& buf(topo::ProcId p) { return bufs_.at(p); }
  [[nodiscard]] const TraceBuffer& buf(topo::ProcId p) const {
    return bufs_.at(p);
  }
  [[nodiscard]] std::uint32_t n_procs() const noexcept {
    return static_cast<std::uint32_t>(bufs_.size());
  }

  /// All retained events, sorted by (start, proc, end) — a deterministic
  /// global timeline.
  [[nodiscard]] std::vector<Event> merged() const;

  [[nodiscard]] std::uint64_t total_dropped() const noexcept;
  [[nodiscard]] std::size_t total_size() const noexcept;
  void clear() noexcept;

 private:
  std::vector<TraceBuffer> bufs_;
};

struct ProfileSnapshot;  // obs/profiler.hpp

/// Render events as a Chrome trace ("traceEvents" JSON object). Task spans
/// and idle gaps become duration ("X") events, steals instant ("i") events,
/// migrations duration events on the migrating processor's row. When
/// `profile` is non-null, per-object counter ("C") tracks are appended so
/// the miss and remote-stall attribution shows up alongside the timeline.
std::string chrome_trace_json(const std::vector<Event>& events,
                              const ProfileSnapshot* profile = nullptr);

}  // namespace cool::obs
