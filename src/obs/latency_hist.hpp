// HDR-style log-linear latency histogram for per-request tail percentiles.
//
// The metrics registry's general Histogram uses 48 coarse power-of-two
// buckets — fine for spotting a distribution's shape, useless for p999 (one
// octave of error at the tail). Request serving needs bounded *relative*
// error, so this histogram divides every octave [2^m, 2^(m+1)) into
// kSubBuckets linear sub-buckets: any recorded value lands in a bucket whose
// width is at most value/kSubBuckets, i.e. every quantile is reported with
// <= 1/kSubBuckets (~3%) relative error. Values below kSubBuckets are exact.
//
// The class is a plain value type (fixed arrays, no allocation, copyable) so
// the adaptive engine can snapshot it each epoch and diff two snapshots to
// get the epoch's latency distribution. It is NOT thread-safe: recording
// happens on the deterministic simulation path (one thread), snapshots are
// taken between epochs on that same path.
#pragma once

#include <array>
#include <cstdint>

namespace cool::obs {

class LatencyHist {
 public:
  /// Linear sub-buckets per octave; bounds quantile relative error by
  /// 1/kSubBuckets.
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  /// Octaves 5..63 get kSubBuckets each; values < kSubBuckets are exact.
  static constexpr std::size_t kBuckets =
      kSubBuckets * (64 - kSubBits + 1);  // 1920

  /// Record one latency sample (simulated cycles).
  void record(std::uint64_t value) noexcept;

  /// Fold `other`'s samples into this histogram.
  void merge(const LatencyHist& other) noexcept;

  /// Samples recorded since `earlier` (bucket-wise this - earlier). The two
  /// snapshots must come from the same monotonically growing histogram;
  /// buckets where `earlier` is ahead clamp to zero. The delta's max() is the
  /// cumulative max (an upper bound for the interval, not the interval max).
  [[nodiscard]] LatencyHist diff(const LatencyHist& earlier) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0,1]: the inclusive upper edge of the bucket
  /// holding the ceil(q*count)-th smallest sample, capped at max(). For a
  /// sorted-sample oracle o, quantile(q) is in [o, o*(1+1/kSubBuckets)].
  /// Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] std::uint64_t p999() const noexcept { return quantile(0.999); }

  /// Bucket index of `value` (exposed for tests).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept;
  /// Largest value mapping to bucket `b` (exposed for tests).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace cool::obs
