// Machine-readable benchmark records: the single JSON schema every bench
// binary emits (--json / --json-out) and bench/runner consumes.
//
// Schema "cool-bench/1" — one JSON object per record:
//   {
//     "schema":  "cool-bench/1",
//     "bench":   "<binary name>",
//     "git_sha": "<short sha at configure time, or 'unknown'>",
//     "config":  { "<option>": <typed value>, ... },
//     "series":  [ { "<column>": <number|string>, ... }, ... ],
//     "shape":   { "<metric>": <number>, ... },
//     "sim_rate": <number>,                               // optional
//     "obs":     { "values": {...}, "hists": {...} },     // optional
//     "profile": { "snapshot": {...}, "advice": [...] }   // optional
//   }
// `series` is the bench's result table with each cell parsed back to a
// number when it is one; `shape` carries the summary metrics the text output
// prints as its "shape:" line; `obs` is a metrics Snapshot (see metrics.hpp)
// from the run the record describes. Records are written as
// BENCH_<bench>.json so run directories diff cleanly (bench/runner
// --compare).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/options.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace cool::obs {

/// Current schema identifier; bump the suffix on breaking changes.
inline constexpr const char* kBenchSchema = "cool-bench/1";

class BenchRecord {
 public:
  explicit BenchRecord(std::string bench_name);

  /// Override the configure-time git sha (tests pin this for golden files).
  void set_git_sha(std::string sha) { git_sha_ = std::move(sha); }

  /// Capture every declared option's effective value as the config block.
  void set_config(const util::Options& opt);
  /// Add/override a single config entry (always recorded as a string).
  void set_config_entry(const std::string& key, const std::string& value);

  /// Append the bench's result table as series rows (cells that parse fully
  /// as numbers are emitted as numbers). May be called more than once; rows
  /// accumulate.
  void add_series(const util::Table& t);

  void add_shape(const std::string& key, double value);

  /// Attach a metrics snapshot (typically from the headline configuration's
  /// run) as the record's "obs" block.
  void set_obs(const Snapshot& snap);

  /// Attach the locality-profiler output as the record's "profile" block.
  /// `snapshot_json` is a ProfileSnapshot::to_json() object; `advice_json_arr`
  /// is an advice_json() array (empty string = no advice key).
  void set_profile(std::string snapshot_json, std::string advice_json_arr);

  /// Attach the adaptive runtime's decision log as the record's "adaptation"
  /// block (an AdaptiveEngine::log_json() array; empty string = no key).
  void set_adaptation(std::string decisions_json_arr);

  /// Record the simulator speed of the run that produced this record:
  /// simulated cycles per wall-second (cool::total_sim_cycles() delta over
  /// wall time). Emitted as a top-level "sim_rate" number; optional, so
  /// records written before the field existed still validate. runner
  /// --compare reports it for information only — wall-clock speed is never
  /// a regression signal.
  void set_sim_rate(double cycles_per_second) { sim_rate_ = cycles_per_second; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Render the record (deterministic field order).
  [[nodiscard]] std::string to_json() const;

  /// Canonical file name: BENCH_<bench>.json.
  [[nodiscard]] std::string file_name() const;

  /// Write to `dir` (or, if `dir` names an existing file path ending in
  /// .json, exactly there). Returns false on I/O failure.
  bool write_to(const std::string& dir) const;

 private:
  struct ConfigEntry {
    std::string key;
    char kind;  ///< Options::NamedValue kind, or 's' for manual entries.
    std::string value;
  };

  std::string name_;
  std::string git_sha_;
  std::vector<ConfigEntry> config_;
  /// Each series row keeps its own column names, so a bench may add several
  /// tables with different shapes (speedup sweep + miss table).
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
  std::vector<std::pair<std::string, double>> shape_;
  std::string obs_json_;  ///< Pre-rendered Snapshot, empty when unset.
  std::string profile_json_;  ///< Pre-rendered ProfileSnapshot, empty = unset.
  std::string advice_json_;   ///< Pre-rendered advice array, empty = unset.
  std::string adaptation_json_;  ///< Pre-rendered decision log, empty = unset.
  double sim_rate_ = 0.0;  ///< Simulated cycles / wall-second; 0 = unset.
};

/// Validate a parsed record against the cool-bench/1 schema. Returns an empty
/// string when valid, else a one-line description of the first violation.
std::string validate_bench_record(const json::Value& v);

/// Convenience: parse + validate JSON text.
std::string validate_bench_json(const std::string& text);

}  // namespace cool::obs
