#include "obs/latency_hist.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace cool::obs {

std::size_t LatencyHist::bucket_of(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Octave m = position of the MSB (>= kSubBits here); the octave's
  // kSubBuckets linear sub-buckets each span 2^(m-kSubBits) values.
  const auto m = static_cast<std::uint32_t>(std::bit_width(value) - 1);
  const std::uint64_t sub = (value - (std::uint64_t{1} << m)) >> (m - kSubBits);
  return static_cast<std::size_t>(kSubBuckets) * (m - kSubBits + 1) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHist::bucket_upper(std::size_t b) noexcept {
  if (b < kSubBuckets) return static_cast<std::uint64_t>(b);
  const auto octave = static_cast<std::uint32_t>(b / kSubBuckets);  // >= 1
  const std::uint32_t m = octave + kSubBits - 1;
  const std::uint64_t sub = b % kSubBuckets;
  const std::uint64_t lower =
      (std::uint64_t{1} << m) + (sub << (m - kSubBits));
  return lower + ((std::uint64_t{1} << (m - kSubBits)) - 1);
}

void LatencyHist::record(std::uint64_t value) noexcept {
  ++counts_[bucket_of(value)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void LatencyHist::merge(const LatencyHist& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

LatencyHist LatencyHist::diff(const LatencyHist& earlier) const noexcept {
  LatencyHist d;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t cur = counts_[b];
    const std::uint64_t old = earlier.counts_[b];
    const std::uint64_t n = cur > old ? cur - old : 0;
    d.counts_[b] = n;
    d.count_ += n;
  }
  d.sum_ = sum_ > earlier.sum_ ? sum_ - earlier.sum_ : 0;
  d.max_ = max_;  // cumulative upper bound; see header
  return d;
}

std::uint64_t LatencyHist::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) return std::min(bucket_upper(b), max_);
  }
  return max_;
}

}  // namespace cool::obs
