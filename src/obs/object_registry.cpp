#include "obs/object_registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace cool::obs {

bool ObjectRegistry::add(std::string name, std::uint64_t addr,
                         std::uint64_t bytes, topo::ProcId home) {
  if (bytes == 0) return false;
  Entry r;
  r.name = std::move(name);
  r.start = addr;
  r.end = addr + bytes;
  r.home = home;
  auto it = std::lower_bound(
      reg_.begin(), reg_.end(), r.start,
      [](const Entry& a, std::uint64_t s) { return a.start < s; });
  if (it != reg_.end() && it->start < r.end) return false;
  if (it != reg_.begin() && std::prev(it)->end > r.start) return false;
  reg_.insert(it, std::move(r));
  return true;
}

std::size_t ObjectRegistry::find(std::uint64_t addr) const noexcept {
  auto it = std::upper_bound(
      reg_.begin(), reg_.end(), addr,
      [](std::uint64_t a, const Entry& r) { return a < r.start; });
  if (it == reg_.begin()) return npos;
  const auto idx = static_cast<std::size_t>(std::prev(it) - reg_.begin());
  return addr < reg_[idx].end ? idx : npos;
}

std::string ObjectRegistry::label(std::uint64_t addr) const {
  char buf[48];
  const std::size_t idx = find(addr);
  if (idx == npos) {
    std::snprintf(buf, sizeof buf, "0x%" PRIx64, addr);
    return buf;
  }
  const Entry& r = reg_[idx];
  if (addr == r.start) return r.name;
  std::snprintf(buf, sizeof buf, "+0x%" PRIx64, addr - r.start);
  return r.name + buf;
}

}  // namespace cool::obs
