#include "obs/metrics.hpp"

#include <bit>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace cool::obs {

namespace {

/// Log2 bucket index for a sample (bucket 0 = zero values).
inline std::size_t bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const auto b = static_cast<std::size_t>(64 - std::countl_zero(v));
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

}  // namespace

// --- Handles -----------------------------------------------------------------

void Counter::add(std::size_t shard, std::uint64_t n) const noexcept {
  if (reg_ == nullptr) return;
  reg_->at(shard, slot_).fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(std::size_t shard, std::uint64_t v) const noexcept {
  if (reg_ == nullptr) return;
  reg_->at(shard, slot_).store(v, std::memory_order_relaxed);
}

void Histogram::observe(std::size_t shard, std::uint64_t v) const noexcept {
  if (reg_ == nullptr) return;
  reg_->at(shard, base_slot_).fetch_add(1, std::memory_order_relaxed);
  reg_->at(shard, base_slot_ + 1).fetch_add(v, std::memory_order_relaxed);
  reg_->at(shard, base_slot_ + 2 + static_cast<std::uint32_t>(bucket_of(v)))
      .fetch_add(1, std::memory_order_relaxed);
}

// --- HistData / Snapshot -----------------------------------------------------

std::uint64_t HistData::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target && seen > 0) {
      return b == 0 ? 0 : (1ull << (b < 64 ? b : 63));
    }
  }
  return 1ull << (kHistBuckets - 1);
}

HistData& HistData::operator-=(const HistData& o) noexcept {
  count = count >= o.count ? count - o.count : 0;
  sum = sum >= o.sum ? sum - o.sum : 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    buckets[b] = buckets[b] >= o.buckets[b] ? buckets[b] - o.buckets[b] : 0;
  }
  return *this;
}

Snapshot Snapshot::diff(const Snapshot& older) const {
  Snapshot d = *this;
  for (auto& [name, v] : d.values) {
    auto it = older.values.find(name);
    if (it != older.values.end()) {
      v = v >= it->second ? v - it->second : 0;
    }
  }
  for (auto& [name, h] : d.hists) {
    auto it = older.hists.find(name);
    if (it != older.hists.end()) h -= it->second;
  }
  return d;
}

std::string Snapshot::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("values").begin_object();
  for (const auto& [name, v] : values) w.key(name).uint_value(v);
  w.end_object();
  w.key("hists").begin_object();
  for (const auto& [name, h] : hists) {
    w.key(name).begin_object();
    w.key("count").uint_value(h.count);
    w.key("sum").uint_value(h.sum);
    w.key("mean").number_value(h.mean());
    w.key("p50").uint_value(h.quantile(0.50));
    w.key("p95").uint_value(h.quantile(0.95));
    w.key("max").uint_value(h.quantile(1.0));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

// --- Registry ----------------------------------------------------------------

Registry::Registry(std::size_t n_shards, std::size_t max_slots)
    : max_slots_(max_slots), shards_(n_shards) {
  COOL_CHECK(max_slots_ >= 1, "Registry needs at least one slot");
  for (std::size_t s = 0; s < shards_.n_shards(); ++s) {
    shards_.shard(s).v = std::vector<std::atomic<std::uint64_t>>(max_slots_);
  }
}

std::uint32_t Registry::reserve(const std::string& name, Kind kind,
                                std::uint32_t n_slots) {
  std::lock_guard g(names_m_);
  auto it = names_.find(name);
  if (it != names_.end()) {
    COOL_CHECK(it->second.kind == kind,
               "obs metric '" + name + "' re-registered with another kind");
    return it->second.slot;
  }
  COOL_CHECK(next_slot_ + n_slots <= max_slots_,
             "obs registry slot capacity exhausted registering '" + name + "'");
  const std::uint32_t slot = next_slot_;
  next_slot_ += n_slots;
  names_.emplace(name, Meta{kind, slot});
  return slot;
}

Counter Registry::counter(const std::string& name) {
  return Counter(this, reserve(name, Kind::kCounter, 1));
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(this, reserve(name, Kind::kGauge, 1));
}

Histogram Registry::histogram(const std::string& name) {
  return Histogram(
      this, reserve(name, Kind::kHistogram,
                    static_cast<std::uint32_t>(2 + kHistBuckets)));
}

Snapshot Registry::snapshot() const {
  // Copy the name table first so the (brief) lock is not held while the
  // shards are folded.
  std::map<std::string, Meta> names;
  {
    std::lock_guard g(names_m_);
    names = names_;
  }
  Snapshot snap;
  auto fold = [&](std::uint32_t slot) {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < shards_.n_shards(); ++s) {
      total += shards_.shard(s).v[slot].load(std::memory_order_relaxed);
    }
    return total;
  };
  for (const auto& [name, meta] : names) {
    switch (meta.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        snap.values[name] = fold(meta.slot);
        break;
      case Kind::kHistogram: {
        HistData h;
        h.count = fold(meta.slot);
        h.sum = fold(meta.slot + 1);
        for (std::size_t b = 0; b < kHistBuckets; ++b) {
          h.buckets[b] = fold(meta.slot + 2 + static_cast<std::uint32_t>(b));
        }
        snap.hists[name] = h;
        break;
      }
    }
  }
  return snap;
}

}  // namespace cool::obs
