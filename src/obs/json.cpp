#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cool::obs::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers up to 2^53 print without a fractional part so counters stay
  // grep-able; everything else uses %.17g for exact round-trips.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips, so "1.41" stays "1.41"
  // instead of the full 17-digit expansion.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// --- Writer ------------------------------------------------------------------

void Writer::separator() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

Writer& Writer::begin_object() {
  separator();
  out_ += '{';
  return *this;
}

Writer& Writer::end_object() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  separator();
  out_ += '[';
  return *this;
}

Writer& Writer::end_array() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

Writer& Writer::key(const std::string& k) {
  separator();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  return *this;
}

Writer& Writer::string(const std::string& v) {
  separator();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

Writer& Writer::number_value(double v) {
  separator();
  out_ += number(v);
  need_comma_ = true;
  return *this;
}

Writer& Writer::uint_value(std::uint64_t v) {
  separator();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

Writer& Writer::int_value(std::int64_t v) {
  separator();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

Writer& Writer::bool_value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

Writer& Writer::null_value() {
  separator();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

Writer& Writer::raw(const std::string& json_text) {
  separator();
  out_ += json_text;
  need_comma_ = true;
  return *this;
}

// --- Parser ------------------------------------------------------------------

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }

  bool expect(char c) {
    if (done() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos) {
      if (done() || text[pos] != *p) return fail(std::string("bad literal"));
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (!done() && text[pos] != '"') {
      char c = text[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (done()) return fail("truncated escape");
      c = text[pos++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the code point (no surrogate-pair combining; the
          // obs layer never emits non-BMP text).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return expect('"');
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (done()) return fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': {
        out.kind = Value::Kind::kObject;
        ++pos;
        skip_ws();
        if (!done() && peek() == '}') {
          ++pos;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string k;
          if (!parse_string(k)) return false;
          skip_ws();
          if (!expect(':')) return false;
          Value v;
          if (!parse_value(v)) return false;
          out.obj.emplace(std::move(k), std::move(v));
          skip_ws();
          if (done()) return fail("unterminated object");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          return expect('}');
        }
      }
      case '[': {
        out.kind = Value::Kind::kArray;
        ++pos;
        skip_ws();
        if (!done() && peek() == ']') {
          ++pos;
          return true;
        }
        for (;;) {
          Value v;
          if (!parse_value(v)) return false;
          out.arr.push_back(std::move(v));
          skip_ws();
          if (done()) return fail("unterminated array");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          return expect(']');
        }
      }
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.str);
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null");
      default: {
        if (c != '-' && !std::isdigit(static_cast<unsigned char>(c))) {
          return fail("unexpected character");
        }
        out.kind = Value::Kind::kNumber;
        char* end = nullptr;
        out.num = std::strtod(text.c_str() + pos, &end);
        if (end == text.c_str() + pos) return fail("bad number");
        pos = static_cast<std::size_t>(end - text.c_str());
        return true;
      }
    }
  }
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string* err) {
  Parser p{text, 0, {}};
  out = Value{};
  if (!p.parse_value(out)) {
    if (err != nullptr) *err = p.error;
    return false;
  }
  p.skip_ws();
  if (!p.done()) {
    if (err != nullptr) {
      *err = "trailing content at byte " + std::to_string(p.pos);
    }
    return false;
  }
  return true;
}

}  // namespace cool::obs::json
