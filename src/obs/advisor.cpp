#include "obs/advisor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/json.hpp"

namespace cool::obs {

const char* advice_kind_name(AdviceKind k) {
  switch (k) {
    case AdviceKind::kMigrateObject:
      return "migrate-object";
    case AdviceKind::kDistributeObject:
      return "distribute-object";
    case AdviceKind::kTaskAffinity:
      return "task-affinity";
    case AdviceKind::kWholeSetStealing:
      return "whole-set-stealing";
    case AdviceKind::kStealStorm:
      return "steal-storm";
    case AdviceKind::kIdleImbalance:
      return "idle-imbalance";
  }
  return "?";
}

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof buf, format, ap);
  va_end(ap);
  return buf;
}

/// Index of the largest entry and its share of the total (0 if empty).
struct Dominant {
  std::size_t index = 0;
  double share = 0.0;
  std::uint64_t total = 0;
};

Dominant dominant_of(const std::vector<std::uint64_t>& v) {
  Dominant d;
  for (std::size_t i = 0; i < v.size(); ++i) {
    d.total += v[i];
    if (v[i] > v[d.index]) d.index = i;
  }
  if (d.total > 0) {
    d.share = static_cast<double>(v[d.index]) / static_cast<double>(d.total);
  }
  return d;
}

std::uint64_t value_of(const Snapshot& m, const char* name) {
  auto it = m.values.find(name);
  return it == m.values.end() ? 0 : it->second;
}

void object_rules(const ProfileSnapshot& p, const AdvisorConfig& cfg,
                  std::vector<Advice>& out) {
  for (const ProfileSnapshot::ObjectRow& o : p.objects) {
    if (o.anonymous) continue;  // Can't hint what the app didn't name.
    const std::uint64_t misses = o.s.misses();
    if (misses < cfg.min_misses) continue;
    const double remote = misses == 0
                              ? 0.0
                              : static_cast<double>(o.s.remote_misses()) /
                                    static_cast<double>(misses);
    if (remote < cfg.remote_frac) continue;

    const Dominant user = dominant_of(o.miss_from_cluster);
    const Dominant home = dominant_of(o.miss_home_cluster);
    if (user.share >= cfg.dominant_frac && home.total > 0 &&
        user.index != home.index) {
      Advice a;
      a.kind = AdviceKind::kMigrateObject;
      a.subject = o.name;
      a.diagnosis = fmt(
          "%.0f%% of '%s' misses issue from cluster %zu but %.0f%% are "
          "serviced by cluster %zu (%.0f%% of misses remote, %" PRIu64
          " remote-stall cycles)",
          100.0 * user.share, o.name.c_str(), user.index, 100.0 * home.share,
          home.index, 100.0 * remote, o.s.remote_stall_cycles);
      a.suggestion = fmt(
          "migrate '%s' to cluster %zu (or give its tasks OBJECT affinity so "
          "the scheduler sends them to the data)",
          o.name.c_str(), user.index);
      a.weight = o.s.remote_stall_cycles;
      out.push_back(std::move(a));
    } else if (user.share < cfg.dominant_frac && home.share >= cfg.dominant_frac) {
      Advice a;
      a.kind = AdviceKind::kDistributeObject;
      a.subject = o.name;
      a.diagnosis = fmt(
          "'%s' is used from every cluster (top user holds only %.0f%% of "
          "misses) yet %.0f%% of misses are serviced by cluster %zu (%" PRIu64
          " remote-stall cycles)",
          o.name.c_str(), 100.0 * user.share, 100.0 * home.share, home.index,
          o.s.remote_stall_cycles);
      a.suggestion = fmt(
          "distribute '%s' across cluster memories (per-cluster strips or "
          "round-robin pages) to spread the bandwidth demand",
          o.name.c_str());
      a.weight = o.s.remote_stall_cycles;
      out.push_back(std::move(a));
    }
  }
}

void set_rules(const ProfileSnapshot& p, const AdvisorConfig& cfg,
               std::vector<Advice>& out) {
  for (const ProfileSnapshot::SetRow& s : p.sets) {
    if (s.tasks < cfg.min_set_tasks || s.procs.size() <= 1) continue;
    if (hint_has_task_affinity(s.hint)) {
      Advice a;
      a.kind = AdviceKind::kWholeSetStealing;
      a.subject = s.label;
      a.diagnosis = fmt(
          "task-affinity set '%s' (%" PRIu64 " tasks, hint %s) ran on %zu "
          "processors — %" PRIu64 " of its tasks were stolen piecemeal, so "
          "the set's cache reuse is lost",
          s.label.c_str(), s.tasks, hint_class_name(s.hint), s.procs.size(),
          s.stolen);
      a.suggestion = fmt(
          "enable whole-set stealing (Policy::steal_whole_sets) so '%s' "
          "moves between processors as a unit",
          s.label.c_str());
      a.weight = s.s.stall_cycles;
      out.push_back(std::move(a));
    } else {
      Advice a;
      a.kind = AdviceKind::kTaskAffinity;
      a.subject = s.label;
      a.diagnosis = fmt(
          "%" PRIu64 " tasks share '%s' (hint %s) but ran on %zu processors "
          "(%" PRIu64 " stolen), refetching the same lines on each",
          s.tasks, s.label.c_str(), hint_class_name(s.hint), s.procs.size(),
          s.stolen);
      a.suggestion = fmt(
          "add TASK affinity on '%s' so its tasks queue on one processor and "
          "run back-to-back",
          s.label.c_str());
      a.weight = s.s.stall_cycles;
      out.push_back(std::move(a));
    }
  }
}

void sched_rules(const Snapshot& m, const AdvisorConfig& cfg,
                 std::vector<Advice>& out) {
  const std::uint64_t failed = value_of(m, "sched.failed_steal_scans");
  const std::uint64_t steals = value_of(m, "sched.steals");
  if (failed >= cfg.min_failed_scans &&
      static_cast<double>(failed) >=
          cfg.steal_fail_ratio * static_cast<double>(std::max<std::uint64_t>(
                                     steals, 1))) {
    Advice a;
    a.kind = AdviceKind::kStealStorm;
    a.subject = "scheduler";
    a.diagnosis = fmt("%" PRIu64 " steal scans failed against %" PRIu64
                      " successful steals — idle processors are scanning "
                      "empty queues, not finding surplus work",
                      failed, steals);
    a.suggestion =
        "create more tasks (finer decomposition) or relax affinity so queued "
        "work is visible to idle processors";
    a.weight = failed;
    out.push_back(std::move(a));
  }

  const std::uint64_t busy = value_of(m, "proc.busy_cycles");
  const std::uint64_t idle = value_of(m, "proc.idle_cycles");
  const std::uint64_t span = busy + idle;
  if (span > 0) {
    const double idle_frac =
        static_cast<double>(idle) / static_cast<double>(span);
    if (idle_frac >= cfg.idle_frac) {
      Advice a;
      a.kind = AdviceKind::kIdleImbalance;
      a.subject = "scheduler";
      a.diagnosis =
          fmt("processors idle %.0f%% of the span (%" PRIu64 " idle vs %" PRIu64
              " busy cycles)",
              100.0 * idle_frac, idle, busy);
      a.suggestion =
          "rebalance: more/smaller tasks, or weaker PROCESSOR pinning so the "
          "scheduler can move work";
      a.weight = idle;
      out.push_back(std::move(a));
    }
  }
}

}  // namespace

std::vector<Advice> advise(const ProfileSnapshot& p, const Snapshot& metrics,
                           const AdvisorConfig& cfg) {
  std::vector<Advice> out;
  object_rules(p, cfg, out);
  set_rules(p, cfg, out);
  sched_rules(metrics, cfg, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Advice& a, const Advice& b) {
                     if (a.weight != b.weight) return a.weight > b.weight;
                     return a.subject < b.subject;
                   });
  return out;
}

std::string advice_report(const std::vector<Advice>& advice) {
  if (advice.empty()) {
    return "== locality advisor ==\n  no advice: profile looks healthy\n";
  }
  std::string out = "== locality advisor ==\n";
  char buf[64];
  for (std::size_t i = 0; i < advice.size(); ++i) {
    const Advice& a = advice[i];
    std::snprintf(buf, sizeof buf, "  [%zu] %s: ", i + 1,
                  advice_kind_name(a.kind));
    out += buf;
    out += a.subject;
    out += "\n      finding: ";
    out += a.diagnosis;
    out += "\n      try:     ";
    out += a.suggestion;
    out += '\n';
  }
  return out;
}

std::string advice_json(const std::vector<Advice>& advice) {
  json::Writer w;
  w.begin_array();
  for (const Advice& a : advice) {
    w.begin_object();
    w.key("kind").string(advice_kind_name(a.kind));
    w.key("subject").string(a.subject);
    w.key("diagnosis").string(a.diagnosis);
    w.key("suggestion").string(a.suggestion);
    w.key("weight").uint_value(a.weight);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

}  // namespace cool::obs
