#include "obs/advisor.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/json.hpp"

namespace cool::obs {
namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof buf, format, ap);
  va_end(ap);
  return buf;
}

/// Render one structured finding as prose. The numbers were computed by the
/// rule engine (advisor_rules.cpp); this only formats them.
Advice render(const advisor::Finding& f) {
  Advice a;
  a.kind = f.kind;
  a.subject = f.subject;
  a.weight = f.weight;
  switch (f.kind) {
    case AdviceKind::kMigrateObject:
      a.diagnosis = fmt(
          "%.0f%% of '%s' misses issue from cluster %zu but %.0f%% are "
          "serviced by cluster %zu (%.0f%% of misses remote, %" PRIu64
          " remote-stall cycles)",
          100.0 * f.user_share, f.subject.c_str(), f.user_cluster,
          100.0 * f.home_share, f.home_cluster, 100.0 * f.remote_frac,
          f.remote_stall_cycles);
      a.suggestion = fmt(
          "migrate '%s' to cluster %zu (or give its tasks OBJECT affinity so "
          "the scheduler sends them to the data)",
          f.subject.c_str(), f.user_cluster);
      break;
    case AdviceKind::kDistributeObject:
      a.diagnosis = fmt(
          "'%s' is used from every cluster (top user holds only %.0f%% of "
          "misses) yet %.0f%% of misses are serviced by cluster %zu (%" PRIu64
          " remote-stall cycles)",
          f.subject.c_str(), 100.0 * f.user_share, 100.0 * f.home_share,
          f.home_cluster, f.remote_stall_cycles);
      a.suggestion = fmt(
          "distribute '%s' across cluster memories (per-cluster strips or "
          "round-robin pages) to spread the bandwidth demand",
          f.subject.c_str());
      break;
    case AdviceKind::kWholeSetStealing:
      a.diagnosis = fmt(
          "task-affinity set '%s' (%" PRIu64 " tasks, hint %s) ran on %zu "
          "processors — %" PRIu64 " of its tasks were stolen piecemeal, so "
          "the set's cache reuse is lost",
          f.subject.c_str(), f.set_tasks, hint_class_name(f.hint), f.set_procs,
          f.set_stolen);
      a.suggestion = fmt(
          "enable whole-set stealing (Policy::steal_whole_sets) so '%s' "
          "moves between processors as a unit",
          f.subject.c_str());
      break;
    case AdviceKind::kTaskAffinity:
      a.diagnosis = fmt(
          "%" PRIu64 " tasks share '%s' (hint %s) but ran on %zu processors "
          "(%" PRIu64 " stolen), refetching the same lines on each",
          f.set_tasks, f.subject.c_str(), hint_class_name(f.hint), f.set_procs,
          f.set_stolen);
      a.suggestion = fmt(
          "add TASK affinity on '%s' so its tasks queue on one processor and "
          "run back-to-back",
          f.subject.c_str());
      break;
    case AdviceKind::kStealStorm:
      a.diagnosis = fmt("%" PRIu64 " steal scans failed against %" PRIu64
                        " successful steals — idle processors are scanning "
                        "empty queues, not finding surplus work",
                        f.failed_scans, f.steals);
      a.suggestion =
          "create more tasks (finer decomposition) or relax affinity so "
          "queued work is visible to idle processors";
      break;
    case AdviceKind::kIdleImbalance:
      a.diagnosis =
          fmt("processors idle %.0f%% of the span (%" PRIu64 " idle vs %" PRIu64
              " busy cycles)",
              100.0 * f.idle_frac, f.idle_cycles, f.busy_cycles);
      a.suggestion =
          "rebalance: more/smaller tasks, or weaker PROCESSOR pinning so the "
          "scheduler can move work";
      break;
    case AdviceKind::kLatencyTarget:
      // Online-only rule: the offline advisor never emits it (it needs the
      // adaptive engine's per-epoch latency sensor), but render it anyway so
      // a decision log replayed through the advisor formats cleanly.
      a.diagnosis = fmt("request p99 latency above the adaptation target on "
                        "'%s'", f.subject.c_str());
      a.suggestion =
          "relax affinity (steal_object_tasks) or escalate the balancer so "
          "queued requests spread off the hot home";
      break;
  }
  return a;
}

}  // namespace

std::vector<Advice> advise(const ProfileSnapshot& p, const Snapshot& metrics,
                           const AdvisorConfig& cfg) {
  const std::vector<advisor::Finding> findings =
      advisor::evaluate(p, metrics, cfg);
  std::vector<Advice> out;
  out.reserve(findings.size());
  for (const advisor::Finding& f : findings) out.push_back(render(f));
  return out;
}

std::string advice_report(const std::vector<Advice>& advice) {
  if (advice.empty()) {
    return "== locality advisor ==\n  no advice: profile looks healthy\n";
  }
  std::string out = "== locality advisor ==\n";
  char buf[64];
  for (std::size_t i = 0; i < advice.size(); ++i) {
    const Advice& a = advice[i];
    std::snprintf(buf, sizeof buf, "  [%zu] %s: ", i + 1,
                  advice_kind_name(a.kind));
    out += buf;
    out += a.subject;
    out += "\n      finding: ";
    out += a.diagnosis;
    out += "\n      try:     ";
    out += a.suggestion;
    out += '\n';
  }
  return out;
}

std::string advice_json(const std::vector<Advice>& advice) {
  json::Writer w;
  w.begin_array();
  for (const Advice& a : advice) {
    w.begin_object();
    w.key("kind").string(advice_kind_name(a.kind));
    w.key("subject").string(a.subject);
    w.key("diagnosis").string(a.diagnosis);
    w.key("suggestion").string(a.suggestion);
    w.key("weight").uint_value(a.weight);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

}  // namespace cool::obs
