// Locality advisor — turns a ProfileSnapshot plus the runtime's metric
// snapshot into ranked, actionable tuning advice.
//
// This mechanises the paper's tuning loop (§6–§7): the authors looked at the
// DASH performance monitor, spotted the object with the most remote misses or
// the task set that lost reuse, and added the matching COOL affinity hint.
// Each rule below is one of those diagnoses:
//   * an object homed away from the cluster that uses it  -> migrate / OBJECT
//     affinity,
//   * an object used uniformly from everywhere but homed in one place ->
//     distribute it across cluster memories,
//   * tasks sharing an affinity object but scattered across processors ->
//     add TASK affinity so they run back-to-back,
//   * a task-affinity set split anyway (stolen piecemeal) -> steal whole sets,
//   * many failed steal scans -> the queues are starved, not imbalanced,
//   * high idle fraction -> genuine load imbalance.
// The advisor only reads snapshots; it never touches the live runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace cool::obs {

enum class AdviceKind : std::uint8_t {
  kMigrateObject,    ///< Re-home the object near its dominant user.
  kDistributeObject, ///< Spread the object across cluster memories.
  kTaskAffinity,     ///< Add TASK affinity to the tasks sharing an object.
  kWholeSetStealing, ///< Enable Policy::steal_whole_sets.
  kStealStorm,       ///< Steal scans mostly fail: work starvation.
  kIdleImbalance,    ///< Processors idle a large fraction of the span.
};
const char* advice_kind_name(AdviceKind k);

struct Advice {
  AdviceKind kind = AdviceKind::kMigrateObject;
  std::string subject;     ///< Object name or set label the advice is about.
  std::string diagnosis;   ///< What the profile shows.
  std::string suggestion;  ///< The COOL hint / policy change to try.
  std::uint64_t weight = 0;  ///< Ranking key (stall cycles at stake).
};

/// Rule thresholds. The defaults suit the paper-scale benches; tests pin
/// them explicitly where a rule boundary matters.
struct AdvisorConfig {
  std::uint64_t min_misses = 64;    ///< Ignore objects with fewer misses.
  double dominant_frac = 0.60;      ///< Cluster share that counts as dominant.
  double remote_frac = 0.40;        ///< Remote-miss share worth acting on.
  std::uint64_t min_set_tasks = 4;  ///< Ignore smaller affinity sets.
  double steal_fail_ratio = 4.0;    ///< Failed scans per successful steal.
  std::uint64_t min_failed_scans = 256;
  double idle_frac = 0.25;          ///< Idle share of the span worth flagging.
};

/// Run every rule over the profile and the runtime metric snapshot
/// (Runtime::obs_snapshot() names: sched.*, proc.*). Returns advice sorted by
/// descending weight (ties broken by subject) — deterministic for a
/// deterministic simulation.
std::vector<Advice> advise(const ProfileSnapshot& p, const Snapshot& metrics,
                           const AdvisorConfig& cfg = {});

/// Human-readable rendering, one numbered block per advice.
std::string advice_report(const std::vector<Advice>& advice);

/// Deterministic JSON array of advice objects.
std::string advice_json(const std::vector<Advice>& advice);

}  // namespace cool::obs
