// Locality advisor — turns a ProfileSnapshot plus the runtime's metric
// snapshot into ranked, actionable tuning advice.
//
// This mechanises the paper's tuning loop (§6–§7): the authors looked at the
// DASH performance monitor, spotted the object with the most remote misses or
// the task set that lost reuse, and added the matching COOL affinity hint.
// Each rule below is one of those diagnoses:
//   * an object homed away from the cluster that uses it  -> migrate / OBJECT
//     affinity,
//   * an object used uniformly from everywhere but homed in one place ->
//     distribute it across cluster memories,
//   * tasks sharing an affinity object but scattered across processors ->
//     add TASK affinity so they run back-to-back,
//   * a task-affinity set split anyway (stolen piecemeal) -> steal whole sets,
//   * many failed steal scans -> the queues are starved, not imbalanced,
//   * high idle fraction -> genuine load imbalance.
// The advisor only reads snapshots; it never touches the live runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/advisor_rules.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace cool::obs {

struct Advice {
  AdviceKind kind = AdviceKind::kMigrateObject;
  std::string subject;     ///< Object name or set label the advice is about.
  std::string diagnosis;   ///< What the profile shows.
  std::string suggestion;  ///< The COOL hint / policy change to try.
  std::uint64_t weight = 0;  ///< Ranking key (stall cycles at stake).
};

/// Run every rule over the profile and the runtime metric snapshot
/// (Runtime::obs_snapshot() names: sched.*, proc.*). Returns advice sorted by
/// descending weight (ties broken by subject) — deterministic for a
/// deterministic simulation.
std::vector<Advice> advise(const ProfileSnapshot& p, const Snapshot& metrics,
                           const AdvisorConfig& cfg = {});

/// Human-readable rendering, one numbered block per advice.
std::string advice_report(const std::vector<Advice>& advice);

/// Deterministic JSON array of advice objects.
std::string advice_json(const std::vector<Advice>& advice);

}  // namespace cool::obs
