// Advisor rule engine — the machine-readable half of the locality advisor.
//
// The PR 3 advisor turned a ProfileSnapshot plus a metrics Snapshot into
// ranked prose advice. The adaptive runtime (src/adaptive) needs the same
// diagnoses *online*, as data it can act on, every epoch. To keep one
// implementation, the rules live here as a pure function of the snapshots:
// `advisor::evaluate()` returns structured Findings carrying every number a
// rule used to fire, and the offline advisor (obs/advisor.hpp) renders those
// Findings into its unchanged prose report. Neither consumer re-implements a
// threshold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace cool::obs {

enum class AdviceKind : std::uint8_t {
  kMigrateObject,    ///< Re-home the object near its dominant user.
  kDistributeObject, ///< Spread the object across cluster memories.
  kTaskAffinity,     ///< Add TASK affinity to the tasks sharing an object.
  kWholeSetStealing, ///< Enable Policy::steal_whole_sets.
  kStealStorm,       ///< Steal scans mostly fail: work starvation.
  kIdleImbalance,    ///< Processors idle a large fraction of the span.
  kLatencyTarget,    ///< Request p99 above AdaptPolicy::latency_target_cycles.
};
const char* advice_kind_name(AdviceKind k);

/// Rule thresholds. The defaults suit the paper-scale benches; tests pin
/// them explicitly where a rule boundary matters. The adaptive engine
/// evaluates per-epoch deltas, so it lowers the absolute floors.
struct AdvisorConfig {
  std::uint64_t min_misses = 64;    ///< Ignore objects with fewer misses.
  double dominant_frac = 0.60;      ///< Cluster share that counts as dominant.
  double remote_frac = 0.40;        ///< Remote-miss share worth acting on.
  std::uint64_t min_set_tasks = 4;  ///< Ignore smaller affinity sets.
  double steal_fail_ratio = 4.0;    ///< Failed scans per successful steal.
  std::uint64_t min_failed_scans = 256;
  double idle_frac = 0.25;          ///< Idle share of the span worth flagging.
};

namespace advisor {

/// One rule firing, with every input the rule consulted. Which fields are
/// meaningful depends on `kind`: object rules fill the obj_*/cluster fields,
/// set rules the set_* fields, scheduler rules the scan/idle fields.
struct Finding {
  AdviceKind kind = AdviceKind::kMigrateObject;
  std::string subject;       ///< Object name or set label.
  std::uint64_t weight = 0;  ///< Ranking key (stall cycles at stake).

  // Object rules (kMigrateObject / kDistributeObject).
  std::uint64_t obj_addr = 0;   ///< Simulated (arena-relative) start address.
  std::uint64_t obj_bytes = 0;
  std::size_t user_cluster = 0; ///< Cluster issuing the most misses.
  double user_share = 0.0;
  std::size_t home_cluster = 0; ///< Cluster servicing the most misses.
  double home_share = 0.0;
  double remote_frac = 0.0;     ///< Remote share of the object's misses.
  std::uint64_t remote_stall_cycles = 0;

  // Set rules (kTaskAffinity / kWholeSetStealing).
  std::uint64_t set_key = 0;    ///< Simulated address of the affinity object.
  HintClass hint = HintClass::kNone;
  std::uint64_t set_tasks = 0;
  std::uint64_t set_stolen = 0;
  std::size_t set_procs = 0;    ///< Distinct processors that ran the set.
  std::uint64_t stall_cycles = 0;

  // Scheduler rules (kStealStorm / kIdleImbalance).
  std::uint64_t failed_scans = 0;
  std::uint64_t steals = 0;
  double idle_frac = 0.0;
  std::uint64_t idle_cycles = 0;
  std::uint64_t busy_cycles = 0;
  std::uint64_t queued_max = 0;  ///< Deepest single queue (gauge, not delta).
};

/// Run every rule over the profile and the metric snapshot
/// (Runtime::obs_snapshot() names: sched.*, proc.*). Returns findings sorted
/// by descending weight (ties broken by subject) — deterministic for a
/// deterministic simulation.
std::vector<Finding> evaluate(const ProfileSnapshot& p, const Snapshot& metrics,
                              const AdvisorConfig& cfg = {});

}  // namespace advisor
}  // namespace cool::obs
