// LocalityProfiler — per-object / per-affinity-set attribution of simulated
// memory behaviour.
//
// The paper's methodology (§6) is attribution: the authors used the DASH
// performance monitor to find *which objects* suffered remote misses and
// *which task sets* lost cache reuse, then added the matching affinity hint.
// The aggregate PerfMonitor reproduces the monitor's totals; this profiler
// recovers the attribution. It taps every simulated line reference (via
// mem::AccessObserver) and charges it to
//   * the registered object/region containing the address (unregistered
//     memory lands in address-hashed anonymous buckets — never dropped),
//   * the running task's affinity set (tasks naming the same affinity object
//     form a set; reuse is lost when a set's tasks spread across processors),
//   * the running task's hint class (the paper's Table 1 taxonomy).
//
// Counters accumulate in per-processor shards (each engine worker writes only
// its own shard) and are merged into a ProfileSnapshot on demand. The
// profiler is strictly passive: it charges zero simulated cycles, and with it
// detached nothing in the runtime even branches on it.
//
// Thread-safety: register objects before run(); take snapshots only while no
// run is in flight. During a run each shard has exactly one writer.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "memsim/access_observer.hpp"
#include "obs/object_registry.hpp"
#include "topology/machine.hpp"

namespace cool::obs {

/// The paper's Table 1 hint taxonomy, as dispatched task classes.
enum class HintClass : std::uint8_t {
  kNone = 0,        ///< No hints: scheduled on the spawner.
  kObject,          ///< OBJECT / simple / default affinity.
  kTask,            ///< TASK affinity only.
  kTaskObject,      ///< TASK + OBJECT (Gauss).
  kProcessor,       ///< PROCESSOR affinity.
  kProcessorTask,   ///< PROCESSOR + TASK (LocusRoute).
  kMulti,           ///< Multi-object affinity (§8).
};
constexpr int kNumHintClasses = 7;
const char* hint_class_name(HintClass hc);

/// Map an affinity hint's components to its class.
constexpr HintClass classify_hint(bool task, bool object, bool processor,
                                  bool multi) noexcept {
  if (multi) return HintClass::kMulti;
  if (processor) return task ? HintClass::kProcessorTask : HintClass::kProcessor;
  if (task) return object ? HintClass::kTaskObject : HintClass::kTask;
  return object ? HintClass::kObject : HintClass::kNone;
}

/// Whether tasks of this class form a task-affinity set the scheduler tries
/// to run back-to-back (paper §5).
constexpr bool hint_has_task_affinity(HintClass hc) noexcept {
  return hc == HintClass::kTask || hc == HintClass::kTaskObject ||
         hc == HintClass::kProcessorTask;
}

/// The per-bucket access breakdown: the six Service categories plus the
/// derived counters every miss figure in the paper reports.
struct AccessStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t serviced[mem::kNumServices] = {};
  std::uint64_t invals = 0;               ///< Sharer copies killed by writes here.
  std::uint64_t stall_cycles = 0;         ///< Memory stall charged to this bucket.
  std::uint64_t remote_stall_cycles = 0;  ///< ... of which on remote service.

  [[nodiscard]] std::uint64_t accesses() const noexcept { return reads + writes; }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return serviced[2] + serviced[3] + serviced[4] + serviced[5];
  }
  [[nodiscard]] std::uint64_t local_misses() const noexcept {
    return serviced[2] + serviced[4];
  }
  [[nodiscard]] std::uint64_t remote_misses() const noexcept {
    return serviced[3] + serviced[5];
  }

  void add(const AccessStats& o) noexcept {
    reads += o.reads;
    writes += o.writes;
    for (int i = 0; i < mem::kNumServices; ++i) serviced[i] += o.serviced[i];
    invals += o.invals;
    stall_cycles += o.stall_cycles;
    remote_stall_cycles += o.remote_stall_cycles;
  }
};

/// Merged, quiescent view of everything the profiler attributed.
struct ProfileSnapshot {
  std::uint32_t n_procs = 0;
  std::uint32_t n_clusters = 0;

  struct ObjectRow {
    std::string name;
    std::uint64_t addr = 0;   ///< Simulated (arena-relative) start address.
    std::uint64_t bytes = 0;
    bool anonymous = false;   ///< Address-hashed bucket, not a registration.
    topo::ProcId home = 0;    ///< Home at registration time (display only).
    AccessStats s;
    /// Misses issued by processors of each cluster (who uses the object).
    std::vector<std::uint64_t> miss_from_cluster;
    /// Misses serviced by each cluster's memory/caches (where it lives).
    std::vector<std::uint64_t> miss_home_cluster;
  };

  struct SetRow {
    std::uint64_t key = 0;    ///< Simulated address of the affinity object.
    std::string label;        ///< "<object>+0x<off>" when the key resolves.
    HintClass hint = HintClass::kNone;
    std::uint64_t tasks = 0;  ///< Task dispatches belonging to the set.
    std::uint64_t stolen = 0; ///< ... of which arrived via stealing.
    std::vector<topo::ProcId> procs;  ///< Processors that ran the set's tasks.
    AccessStats s;
  };

  struct HintRow {
    HintClass hint = HintClass::kNone;
    std::uint64_t tasks = 0;
    AccessStats s;
  };

  std::vector<ObjectRow> objects;  ///< Registered (address order), then anon.
  std::vector<SetRow> sets;        ///< Sorted by stall cycles, descending.
  std::vector<HintRow> hints;      ///< One row per class with any activity.
  AccessStats total;               ///< Sum over objects (== PerfMonitor totals).

  /// Deterministic JSON object: {"objects":[...],"sets":[...],"hints":[...]}.
  [[nodiscard]] std::string to_json() const;
};

/// Human-readable report: per-object miss breakdown, the hottest affinity
/// sets, and the per-hint-class rollup, as fixed-width tables.
std::string profile_report(const ProfileSnapshot& p);

class LocalityProfiler final : public mem::AccessObserver {
 public:
  /// "No affinity set" sentinel for on_task_dispatch. Not 0: simulated
  /// addresses are arena offsets, so the first allocation legitimately sits
  /// at address 0.
  static constexpr std::uint64_t kNoSet = ~0ull;

  explicit LocalityProfiler(const topo::MachineConfig& machine);

  /// Register a named object/region (simulated addresses). Call before the
  /// run; overlapping registrations are ignored (first wins). Returns whether
  /// the range was registered.
  bool register_object(std::string name, std::uint64_t addr,
                       std::uint64_t bytes, topo::ProcId home);

  /// Engine hook: `proc` is about to resume a task of class `hint` belonging
  /// to affinity set `set_key` (the simulated address of the affinity
  /// object; kNoSet = none). Called by the owning worker only.
  void on_task_dispatch(topo::ProcId proc, HintClass hint,
                        std::uint64_t set_key, bool stolen);

  // --- mem::AccessObserver --------------------------------------------------
  void on_access(const mem::AccessInfo& info) override;
  void on_inval(std::uint64_t addr, topo::ProcId requester,
                int copies_killed) override;

  /// Merge every shard. Call only while no run is in flight.
  [[nodiscard]] ProfileSnapshot snapshot() const;

  [[nodiscard]] std::size_t n_registered() const noexcept {
    return reg_.size();
  }

 private:
  /// Unregistered memory is charged to 1 MiB address-hashed buckets so the
  /// per-object breakdown always sums to the PerfMonitor totals.
  static constexpr std::uint64_t kAnonShift = 20;
  static constexpr std::uint64_t kAnonBit = 1ull << 63;

  struct ObjStats {
    AccessStats s;
    /// Misses by servicing home cluster (sized on first miss). The issuing
    /// cluster needs no per-shard histogram: it is the shard's own cluster.
    std::vector<std::uint64_t> miss_home_cluster;
  };

  struct SetShard {
    std::uint64_t tasks = 0;
    std::uint64_t stolen = 0;
    HintClass hint = HintClass::kNone;
    AccessStats s;
  };

  struct HintShard {
    std::uint64_t tasks = 0;
    AccessStats s;
  };

  /// One processor's private slice; single writer during a run.
  struct Shard {
    std::unordered_map<std::uint64_t, ObjStats> objects;  ///< By object id.
    std::unordered_map<std::uint64_t, SetShard> sets;     ///< By set key.
    std::array<HintShard, kNumHintClasses> hints{};
    HintClass cur_hint = HintClass::kNone;   ///< Running task's class.
    std::uint64_t cur_set = kNoSet;          ///< Running task's set key.
    std::size_t last_obj = SIZE_MAX;         ///< Resolution cache.
  };

  /// Object id for `addr`: the registered index, or an anonymous bucket id.
  std::uint64_t resolve(Shard& sh, std::uint64_t addr) const;
  /// Charge one observed line event to object/set/hint in `proc`'s shard.
  ObjStats& obj_stats(Shard& sh, std::uint64_t addr);

  topo::MachineConfig machine_;
  ObjectRegistry reg_;
  mutable util::Sharded<Shard> shards_;
};

}  // namespace cool::obs
