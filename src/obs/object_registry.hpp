// ObjectRegistry — named address ranges for attribution.
//
// The locality profiler and the race detector both need the same mapping:
// simulated (arena-relative) address → the app-level object it belongs to
// ("col[17]", "grid[0]+0x40"). This registry is that mapping, extracted so
// the two consumers share one registration stream from
// Runtime::profile_register and report the same names.
//
// Ranges are kept sorted and disjoint; overlapping registrations are ignored
// (first wins) so an accidental alias can never double-attribute an access.
// Registration happens before a run; lookups during a run are read-only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/machine.hpp"

namespace cool::obs {

class ObjectRegistry {
 public:
  struct Entry {
    std::string name;
    std::uint64_t start = 0;
    std::uint64_t end = 0;  ///< Exclusive.
    topo::ProcId home = 0;  ///< Home at registration time (display only).
  };

  static constexpr std::size_t npos = SIZE_MAX;

  /// Register [addr, addr+bytes) under `name`. Returns false (and registers
  /// nothing) for empty ranges and ranges overlapping an existing entry.
  bool add(std::string name, std::uint64_t addr, std::uint64_t bytes,
           topo::ProcId home);

  /// Index of the entry containing `addr`, or npos.
  [[nodiscard]] std::size_t find(std::uint64_t addr) const noexcept;

  [[nodiscard]] const Entry& entry(std::size_t i) const { return reg_[i]; }
  [[nodiscard]] std::size_t size() const noexcept { return reg_.size(); }
  [[nodiscard]] bool empty() const noexcept { return reg_.empty(); }

  /// Human label for `addr`: "<name>" at an object's start, "<name>+0x<off>"
  /// inside one, "0x<addr>" for unregistered memory.
  [[nodiscard]] std::string label(std::uint64_t addr) const;

 private:
  std::vector<Entry> reg_;  ///< Sorted by start address.
};

}  // namespace cool::obs
