// Minimal JSON support for the observability subsystem.
//
// Two halves, both deliberately tiny: a streaming Writer that builds
// syntactically valid, deterministic JSON text (object keys are emitted in
// the order the caller writes them), and a recursive-descent Value parser for
// the consumers that must read records back (bench/runner --compare, the
// golden-file tests). Neither aims to be a general JSON library — no
// surrogate-pair handling beyond pass-through, no streaming reads — but both
// round-trip everything the obs layer emits.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cool::obs::json {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string escape(const std::string& s);

/// Render a double the way JSON expects: finite numbers with enough digits
/// to round-trip, non-finite values as null.
std::string number(double v);

/// Incremental JSON text builder. The caller is responsible for structural
/// correctness (the writer only tracks whether a comma separator is due).
///
///   Writer w;
///   w.begin_object();
///   w.key("schema").string("cool-bench/1");
///   w.key("series").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///   std::string text = w.str();
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  Writer& key(const std::string& k);
  Writer& string(const std::string& v);
  Writer& number_value(double v);
  Writer& uint_value(std::uint64_t v);
  Writer& int_value(std::int64_t v);
  Writer& bool_value(bool v);
  Writer& null_value();
  /// Splice pre-rendered JSON (must itself be a valid value).
  Writer& raw(const std::string& json_text);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void separator();
  std::string out_;
  bool need_comma_ = false;
};

/// Parsed JSON value. Numbers are kept as double (sufficient for the bench
/// records: counters up to 2^53 round-trip exactly).
class Value {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_number() const noexcept { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& k) const {
    if (kind != Kind::kObject) return nullptr;
    auto it = obj.find(k);
    return it == obj.end() ? nullptr : &it->second;
  }
};

/// Parse `text` into `out`. Returns true on success; on failure returns false
/// and, if `err` is non-null, stores a one-line diagnostic with the byte
/// offset of the problem.
bool parse(const std::string& text, Value& out, std::string* err = nullptr);

}  // namespace cool::obs::json
