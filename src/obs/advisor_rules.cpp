#include "obs/advisor_rules.hpp"

#include <algorithm>

namespace cool::obs {

const char* advice_kind_name(AdviceKind k) {
  switch (k) {
    case AdviceKind::kMigrateObject:
      return "migrate-object";
    case AdviceKind::kDistributeObject:
      return "distribute-object";
    case AdviceKind::kTaskAffinity:
      return "task-affinity";
    case AdviceKind::kWholeSetStealing:
      return "whole-set-stealing";
    case AdviceKind::kStealStorm:
      return "steal-storm";
    case AdviceKind::kIdleImbalance:
      return "idle-imbalance";
    case AdviceKind::kLatencyTarget:
      return "latency-target";
  }
  return "?";
}

namespace advisor {
namespace {

/// Index of the largest entry and its share of the total (0 if empty).
struct Dominant {
  std::size_t index = 0;
  double share = 0.0;
  std::uint64_t total = 0;
};

Dominant dominant_of(const std::vector<std::uint64_t>& v) {
  Dominant d;
  for (std::size_t i = 0; i < v.size(); ++i) {
    d.total += v[i];
    if (v[i] > v[d.index]) d.index = i;
  }
  if (d.total > 0) {
    d.share = static_cast<double>(v[d.index]) / static_cast<double>(d.total);
  }
  return d;
}

std::uint64_t value_of(const Snapshot& m, const char* name) {
  auto it = m.values.find(name);
  return it == m.values.end() ? 0 : it->second;
}

void object_rules(const ProfileSnapshot& p, const AdvisorConfig& cfg,
                  std::vector<Finding>& out) {
  for (const ProfileSnapshot::ObjectRow& o : p.objects) {
    if (o.anonymous) continue;  // Can't hint what the app didn't name.
    const std::uint64_t misses = o.s.misses();
    if (misses < cfg.min_misses) continue;
    const double remote = misses == 0
                              ? 0.0
                              : static_cast<double>(o.s.remote_misses()) /
                                    static_cast<double>(misses);
    if (remote < cfg.remote_frac) continue;

    const Dominant user = dominant_of(o.miss_from_cluster);
    const Dominant home = dominant_of(o.miss_home_cluster);
    const bool migrate = user.share >= cfg.dominant_frac && home.total > 0 &&
                         user.index != home.index;
    const bool distribute =
        user.share < cfg.dominant_frac && home.share >= cfg.dominant_frac;
    if (!migrate && !distribute) continue;

    Finding f;
    f.kind = migrate ? AdviceKind::kMigrateObject
                     : AdviceKind::kDistributeObject;
    f.subject = o.name;
    f.weight = o.s.remote_stall_cycles;
    f.obj_addr = o.addr;
    f.obj_bytes = o.bytes;
    f.user_cluster = user.index;
    f.user_share = user.share;
    f.home_cluster = home.index;
    f.home_share = home.share;
    f.remote_frac = remote;
    f.remote_stall_cycles = o.s.remote_stall_cycles;
    out.push_back(std::move(f));
  }
}

void set_rules(const ProfileSnapshot& p, const AdvisorConfig& cfg,
               std::vector<Finding>& out) {
  for (const ProfileSnapshot::SetRow& s : p.sets) {
    if (s.tasks < cfg.min_set_tasks || s.procs.size() <= 1) continue;
    Finding f;
    f.kind = hint_has_task_affinity(s.hint) ? AdviceKind::kWholeSetStealing
                                            : AdviceKind::kTaskAffinity;
    f.subject = s.label;
    f.weight = s.s.stall_cycles;
    f.set_key = s.key;
    f.hint = s.hint;
    f.set_tasks = s.tasks;
    f.set_stolen = s.stolen;
    f.set_procs = s.procs.size();
    f.stall_cycles = s.s.stall_cycles;
    out.push_back(std::move(f));
  }
}

void sched_rules(const Snapshot& m, const AdvisorConfig& cfg,
                 std::vector<Finding>& out) {
  const std::uint64_t failed = value_of(m, "sched.failed_steal_scans");
  const std::uint64_t steals = value_of(m, "sched.steals");
  if (failed >= cfg.min_failed_scans &&
      static_cast<double>(failed) >=
          cfg.steal_fail_ratio * static_cast<double>(std::max<std::uint64_t>(
                                     steals, 1))) {
    Finding f;
    f.kind = AdviceKind::kStealStorm;
    f.subject = "scheduler";
    f.weight = failed;
    f.failed_scans = failed;
    f.steals = steals;
    out.push_back(std::move(f));
  }

  const std::uint64_t busy = value_of(m, "proc.busy_cycles");
  const std::uint64_t idle = value_of(m, "proc.idle_cycles");
  const std::uint64_t span = busy + idle;
  if (span > 0) {
    const double idle_frac =
        static_cast<double>(idle) / static_cast<double>(span);
    if (idle_frac >= cfg.idle_frac) {
      Finding f;
      f.kind = AdviceKind::kIdleImbalance;
      f.subject = "scheduler";
      f.weight = idle;
      f.idle_frac = idle_frac;
      f.idle_cycles = idle;
      f.busy_cycles = busy;
      f.queued_max = value_of(m, "sched.queue.max_now");
      out.push_back(std::move(f));
    }
  }
}

}  // namespace

std::vector<Finding> evaluate(const ProfileSnapshot& p, const Snapshot& metrics,
                              const AdvisorConfig& cfg) {
  std::vector<Finding> out;
  object_rules(p, cfg, out);
  set_rules(p, cfg, out);
  sched_rules(metrics, cfg, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.weight != b.weight) return a.weight > b.weight;
                     return a.subject < b.subject;
                   });
  return out;
}

}  // namespace advisor
}  // namespace cool::obs
