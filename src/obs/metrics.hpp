// Metrics registry: named counters, gauges, and log2 histograms with
// cache-line-aligned per-processor shards.
//
// This generalises the scheduler's hand-rolled StatShard pattern (PR 1) into
// a reusable facility: a writer updates only its own shard (relaxed atomics,
// no false sharing — shards live in util::Sharded's aligned cells), readers
// fold the shards into a Snapshot on demand. Snapshots are plain values with
// diff semantics, so a bench can bracket a run with two snapshots and report
// exactly the activity in between.
//
// Registration is mutex-guarded and allocates slots from a fixed-capacity
// array chosen at construction, so the hot increment path never observes a
// reallocation; registering the same name twice returns the same metric.
// Handles are trivially copyable and default-construct to a detached no-op,
// letting instrumented code (scheduler, engines) run un-attached at zero
// observable cost beyond one branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace cool::obs {

class Registry;

/// Buckets of the log2 histogram: bucket 0 counts zeros, bucket b >= 1 counts
/// values in [2^(b-1), 2^b). 48 buckets cover every uint64 the runtime emits
/// (cycle counts, queue depths, run lengths).
constexpr std::size_t kHistBuckets = 48;

/// Monotonic counter handle. add() is wait-free on the caller's shard.
class Counter {
 public:
  Counter() = default;
  void add(std::size_t shard, std::uint64_t n = 1) const noexcept;
  [[nodiscard]] bool attached() const noexcept { return reg_ != nullptr; }

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-value-per-shard gauge; shards are summed on snapshot (so a per-server
/// gauge like "queue depth" aggregates to the fleet total).
class Gauge {
 public:
  Gauge() = default;
  void set(std::size_t shard, std::uint64_t v) const noexcept;
  [[nodiscard]] bool attached() const noexcept { return reg_ != nullptr; }

 private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Log2-bucketed histogram handle.
class Histogram {
 public:
  Histogram() = default;
  void observe(std::size_t shard, std::uint64_t v) const noexcept;
  [[nodiscard]] bool attached() const noexcept { return reg_ != nullptr; }

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t base_slot)
      : reg_(reg), base_slot_(base_slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t base_slot_ = 0;  ///< count, sum, then kHistBuckets buckets.
};

/// Aggregated histogram state inside a Snapshot.
struct HistData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper edge (2^b) of the bucket below which fraction `q` of samples fall.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  HistData& operator-=(const HistData& o) noexcept;
};

/// Point-in-time aggregate of a Registry (plus any computed entries a caller
/// mixes in). Counter/gauge values share one map; histograms keep their
/// buckets so quantiles survive the snapshot.
struct Snapshot {
  std::map<std::string, std::uint64_t> values;
  std::map<std::string, HistData> hists;

  /// This snapshot minus an earlier one: counters and histogram buckets
  /// subtract (saturating at zero); entries missing from `older` pass
  /// through unchanged.
  [[nodiscard]] Snapshot diff(const Snapshot& older) const;

  /// Deterministic JSON object: {"values":{...},"hists":{name:{count,sum,
  /// mean,p50,p95,max}}} — keys sorted (std::map order).
  [[nodiscard]] std::string to_json() const;
};

class Registry {
 public:
  /// `n_shards` concurrent writers (one per processor/server);
  /// `max_slots` bounds the total storage (a histogram consumes
  /// 2 + kHistBuckets slots, counters and gauges one each).
  explicit Registry(std::size_t n_shards, std::size_t max_slots = 1024);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register (or look up) a metric. Thread-safe; same name => same handle.
  /// Throws util::Error if the name is already registered with another kind
  /// or the slot capacity is exhausted.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  [[nodiscard]] std::size_t n_shards() const noexcept {
    return shards_.n_shards();
  }

  /// Fold every shard into a Snapshot. Safe to call concurrently with
  /// writers: each slot is read atomically, so counters are monotonic across
  /// snapshots even mid-increment (per-slot atomicity, not cross-slot).
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Meta {
    Kind kind;
    std::uint32_t slot;
  };

  /// One shard: a fixed array of atomic slots (allocated once, never moved).
  struct Slots {
    std::vector<std::atomic<std::uint64_t>> v;
  };

  std::uint32_t reserve(const std::string& name, Kind kind,
                        std::uint32_t n_slots);

  [[nodiscard]] std::atomic<std::uint64_t>& at(std::size_t shard,
                                               std::uint32_t slot) noexcept {
    return shards_.shard(shard).v[slot];
  }

  const std::size_t max_slots_;
  util::Sharded<Slots> shards_;
  mutable std::mutex names_m_;  ///< Guards names_ and next_slot_.
  std::map<std::string, Meta> names_;
  std::uint32_t next_slot_ = 0;
};

}  // namespace cool::obs
