#include "obs/bench_json.hpp"

#include <cstdio>
#include <cstdlib>

namespace cool::obs {

namespace {

/// True when `s` parses fully as a finite double (so table cells like "1.74"
/// become JSON numbers while "Distr+Aff" stays a string).
bool parse_number(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

BenchRecord::BenchRecord(std::string bench_name) : name_(std::move(bench_name)) {
#ifdef COOL_GIT_SHA
  git_sha_ = COOL_GIT_SHA;
#else
  git_sha_ = "unknown";
#endif
}

void BenchRecord::set_config(const util::Options& opt) {
  for (const auto& nv : opt.snapshot_values()) {
    config_.push_back(ConfigEntry{nv.name, nv.kind, nv.value});
  }
}

void BenchRecord::set_config_entry(const std::string& key,
                                   const std::string& value) {
  for (auto& e : config_) {
    if (e.key == key) {
      e.kind = 's';
      e.value = value;
      return;
    }
  }
  config_.push_back(ConfigEntry{key, 's', value});
}

void BenchRecord::add_series(const util::Table& t) {
  const auto& cols = t.headers();
  for (const auto& row : t.rows_data()) {
    std::vector<std::pair<std::string, std::string>> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size() && c < cols.size(); ++c) {
      r.emplace_back(cols[c], row[c]);
    }
    rows_.push_back(std::move(r));
  }
}

void BenchRecord::add_shape(const std::string& key, double value) {
  shape_.emplace_back(key, value);
}

void BenchRecord::set_obs(const Snapshot& snap) { obs_json_ = snap.to_json(); }

void BenchRecord::set_profile(std::string snapshot_json,
                              std::string advice_json_arr) {
  profile_json_ = std::move(snapshot_json);
  advice_json_ = std::move(advice_json_arr);
}

void BenchRecord::set_adaptation(std::string decisions_json_arr) {
  adaptation_json_ = std::move(decisions_json_arr);
}

std::string BenchRecord::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("schema").string(kBenchSchema);
  w.key("bench").string(name_);
  w.key("git_sha").string(git_sha_);
  w.key("config").begin_object();
  for (const auto& e : config_) {
    w.key(e.key);
    switch (e.kind) {
      case 'f':
        w.bool_value(e.value == "true");
        break;
      case 'i':
      case 'd': {
        double d = 0.0;
        if (parse_number(e.value, d)) {
          w.number_value(d);
        } else {
          w.string(e.value);
        }
        break;
      }
      default:
        w.string(e.value);
    }
  }
  w.end_object();
  w.key("series").begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    for (const auto& [col, cell] : row) {
      w.key(col);
      double d = 0.0;
      if (parse_number(cell, d)) {
        w.number_value(d);
      } else {
        w.string(cell);
      }
    }
    w.end_object();
  }
  w.end_array();
  w.key("shape").begin_object();
  for (const auto& [k, v] : shape_) w.key(k).number_value(v);
  w.end_object();
  if (sim_rate_ > 0.0) {
    w.key("sim_rate").number_value(sim_rate_);
  }
  if (!obs_json_.empty()) {
    w.key("obs").raw(obs_json_);
  }
  if (!profile_json_.empty()) {
    w.key("profile").begin_object();
    w.key("snapshot").raw(profile_json_);
    if (!advice_json_.empty()) w.key("advice").raw(advice_json_);
    w.end_object();
  }
  if (!adaptation_json_.empty()) {
    w.key("adaptation").raw(adaptation_json_);
  }
  w.end_object();
  return w.str();
}

std::string BenchRecord::file_name() const { return "BENCH_" + name_ + ".json"; }

bool BenchRecord::write_to(const std::string& dir) const {
  std::string path;
  if (dir.size() > 5 && dir.compare(dir.size() - 5, 5, ".json") == 0) {
    path = dir;
  } else {
    path = dir.empty() ? file_name() : dir + "/" + file_name();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = to_json();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

// --- Validation --------------------------------------------------------------

std::string validate_bench_record(const json::Value& v) {
  if (!v.is_object()) return "record is not a JSON object";
  const json::Value* schema = v.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return "missing string field 'schema'";
  }
  if (schema->str != kBenchSchema) {
    return "unsupported schema '" + schema->str + "' (want '" +
           std::string(kBenchSchema) + "')";
  }
  const json::Value* bench = v.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->str.empty()) {
    return "missing non-empty string field 'bench'";
  }
  const json::Value* sha = v.find("git_sha");
  if (sha == nullptr || !sha->is_string()) {
    return "missing string field 'git_sha'";
  }
  const json::Value* config = v.find("config");
  if (config == nullptr || !config->is_object()) {
    return "missing object field 'config'";
  }
  const json::Value* series = v.find("series");
  if (series == nullptr || !series->is_array()) {
    return "missing array field 'series'";
  }
  for (std::size_t i = 0; i < series->arr.size(); ++i) {
    if (!series->arr[i].is_object()) {
      return "series[" + std::to_string(i) + "] is not an object";
    }
  }
  const json::Value* shape = v.find("shape");
  if (shape == nullptr || !shape->is_object()) {
    return "missing object field 'shape'";
  }
  for (const auto& [k, sv] : shape->obj) {
    if (!sv.is_number() && !sv.is_null()) {
      return "shape." + k + " is not a number";
    }
  }
  const json::Value* sim_rate = v.find("sim_rate");
  if (sim_rate != nullptr && !sim_rate->is_number()) {
    return "'sim_rate' is not a number";
  }
  const json::Value* obs = v.find("obs");
  if (obs != nullptr) {
    if (!obs->is_object()) return "'obs' is not an object";
    const json::Value* values = obs->find("values");
    if (values == nullptr || !values->is_object()) {
      return "obs.values missing or not an object";
    }
    const json::Value* hists = obs->find("hists");
    if (hists == nullptr || !hists->is_object()) {
      return "obs.hists missing or not an object";
    }
  }
  const json::Value* profile = v.find("profile");
  if (profile != nullptr) {
    if (!profile->is_object()) return "'profile' is not an object";
    const json::Value* snap = profile->find("snapshot");
    if (snap == nullptr || !snap->is_object()) {
      return "profile.snapshot missing or not an object";
    }
    const json::Value* objects = snap->find("objects");
    if (objects == nullptr || !objects->is_array()) {
      return "profile.snapshot.objects missing or not an array";
    }
    const json::Value* advice = profile->find("advice");
    if (advice != nullptr && !advice->is_array()) {
      return "profile.advice is not an array";
    }
  }
  const json::Value* adaptation = v.find("adaptation");
  if (adaptation != nullptr) {
    if (!adaptation->is_array()) return "'adaptation' is not an array";
    for (std::size_t i = 0; i < adaptation->arr.size(); ++i) {
      if (!adaptation->arr[i].is_object()) {
        return "adaptation[" + std::to_string(i) + "] is not an object";
      }
    }
  }
  return "";
}

std::string validate_bench_json(const std::string& text) {
  json::Value v;
  std::string err;
  if (!json::parse(text, v, &err)) return "invalid JSON: " + err;
  return validate_bench_record(v);
}

}  // namespace cool::obs
