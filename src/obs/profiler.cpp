#include "obs/profiler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace cool::obs {

const char* hint_class_name(HintClass hc) {
  switch (hc) {
    case HintClass::kNone:
      return "none";
    case HintClass::kObject:
      return "object";
    case HintClass::kTask:
      return "task";
    case HintClass::kTaskObject:
      return "task+object";
    case HintClass::kProcessor:
      return "processor";
    case HintClass::kProcessorTask:
      return "processor+task";
    case HintClass::kMulti:
      return "multi-object";
  }
  return "?";
}

LocalityProfiler::LocalityProfiler(const topo::MachineConfig& machine)
    : machine_(machine), shards_(machine.n_procs) {}

bool LocalityProfiler::register_object(std::string name, std::uint64_t addr,
                                       std::uint64_t bytes,
                                       topo::ProcId home) {
  return reg_.add(std::move(name), addr, bytes, home);
}

std::uint64_t LocalityProfiler::resolve(Shard& sh, std::uint64_t addr) const {
  if (sh.last_obj < reg_.size()) {
    const ObjectRegistry::Entry& r = reg_.entry(sh.last_obj);
    if (addr >= r.start && addr < r.end) return sh.last_obj;
  }
  const std::size_t idx = reg_.find(addr);
  if (idx != ObjectRegistry::npos) {
    sh.last_obj = idx;
    return idx;
  }
  return kAnonBit | (addr >> kAnonShift);
}

LocalityProfiler::ObjStats& LocalityProfiler::obj_stats(Shard& sh,
                                                        std::uint64_t addr) {
  return sh.objects[resolve(sh, addr)];
}

void LocalityProfiler::on_task_dispatch(topo::ProcId proc, HintClass hint,
                                        std::uint64_t set_key, bool stolen) {
  Shard& sh = shards_.shard(proc);
  sh.cur_hint = hint;
  sh.cur_set = set_key;
  sh.hints[static_cast<int>(hint)].tasks += 1;
  if (set_key != kNoSet) {
    SetShard& ss = sh.sets[set_key];
    ss.tasks += 1;
    ss.stolen += stolen ? 1 : 0;
    ss.hint = hint;
  }
}

void LocalityProfiler::on_access(const mem::AccessInfo& info) {
  Shard& sh = shards_.shard(info.proc);
  const int svc = static_cast<int>(info.service);
  const bool miss = svc >= static_cast<int>(mem::Service::kLocalMem);
  const bool remote = info.service == mem::Service::kRemoteMem ||
                      info.service == mem::Service::kRemoteCache;
  const auto bump = [&](AccessStats& s) {
    if (info.is_write) {
      ++s.writes;
    } else {
      ++s.reads;
    }
    ++s.serviced[svc];
    s.stall_cycles += info.stall;
    if (remote) s.remote_stall_cycles += info.stall;
  };
  ObjStats& os = obj_stats(sh, info.addr);
  bump(os.s);
  if (miss) {
    if (os.miss_home_cluster.empty()) {
      os.miss_home_cluster.resize(machine_.n_clusters());
    }
    os.miss_home_cluster[machine_.cluster_of(info.home)] += 1;
  }
  if (sh.cur_set != kNoSet) bump(sh.sets[sh.cur_set].s);
  bump(sh.hints[static_cast<int>(sh.cur_hint)].s);
}

void LocalityProfiler::on_inval(std::uint64_t addr, topo::ProcId requester,
                                int copies_killed) {
  Shard& sh = shards_.shard(requester);
  const auto n = static_cast<std::uint64_t>(copies_killed);
  obj_stats(sh, addr).s.invals += n;
  if (sh.cur_set != kNoSet) sh.sets[sh.cur_set].s.invals += n;
  sh.hints[static_cast<int>(sh.cur_hint)].s.invals += n;
}

ProfileSnapshot LocalityProfiler::snapshot() const {
  ProfileSnapshot p;
  p.n_procs = machine_.n_procs;
  p.n_clusters = machine_.n_clusters();

  p.objects.reserve(reg_.size());
  for (std::size_t i = 0; i < reg_.size(); ++i) {
    const ObjectRegistry::Entry& r = reg_.entry(i);
    ProfileSnapshot::ObjectRow row;
    row.name = r.name;
    row.addr = r.start;
    row.bytes = r.end - r.start;
    row.home = r.home;
    row.miss_from_cluster.assign(p.n_clusters, 0);
    row.miss_home_cluster.assign(p.n_clusters, 0);
    p.objects.push_back(std::move(row));
  }
  std::map<std::uint64_t, ProfileSnapshot::ObjectRow> anon;
  std::map<std::uint64_t, ProfileSnapshot::SetRow> sets;
  std::array<ProfileSnapshot::HintRow, kNumHintClasses> hints{};

  for (std::uint32_t proc = 0; proc < machine_.n_procs; ++proc) {
    const Shard& sh = shards_.shard(proc);
    const topo::ClusterId cluster = machine_.cluster_of(proc);
    for (const auto& [id, os] : sh.objects) {
      ProfileSnapshot::ObjectRow* row = nullptr;
      if ((id & kAnonBit) != 0) {
        row = &anon[id];
        if (row->name.empty()) {
          const std::uint64_t start = (id & ~kAnonBit) << kAnonShift;
          char buf[32];
          std::snprintf(buf, sizeof buf, "anon@0x%" PRIx64, start);
          row->name = buf;
          row->addr = start;
          row->bytes = 1ull << kAnonShift;
          row->anonymous = true;
          row->miss_from_cluster.assign(p.n_clusters, 0);
          row->miss_home_cluster.assign(p.n_clusters, 0);
        }
      } else {
        row = &p.objects[id];
      }
      row->s.add(os.s);
      row->miss_from_cluster[cluster] += os.s.misses();
      for (std::size_t c = 0; c < os.miss_home_cluster.size(); ++c) {
        row->miss_home_cluster[c] += os.miss_home_cluster[c];
      }
    }
    for (const auto& [key, ss] : sh.sets) {
      ProfileSnapshot::SetRow& sr = sets[key];
      sr.key = key;
      sr.tasks += ss.tasks;
      sr.stolen += ss.stolen;
      if (ss.tasks > 0) {
        sr.procs.push_back(proc);  // Shards visited in order: sorted.
        sr.hint = ss.hint;
      }
      sr.s.add(ss.s);
    }
    for (int h = 0; h < kNumHintClasses; ++h) {
      hints[h].hint = static_cast<HintClass>(h);
      hints[h].tasks += sh.hints[h].tasks;
      hints[h].s.add(sh.hints[h].s);
    }
  }

  for (auto& [id, row] : anon) {
    (void)id;
    p.objects.push_back(std::move(row));
  }
  for (const ProfileSnapshot::ObjectRow& row : p.objects) p.total.add(row.s);

  p.sets.reserve(sets.size());
  for (auto& [key, sr] : sets) {
    // Label the set by the registered object its key falls in, if any.
    sr.label = reg_.label(key);
    p.sets.push_back(std::move(sr));
  }
  std::stable_sort(p.sets.begin(), p.sets.end(),
                   [](const ProfileSnapshot::SetRow& a,
                      const ProfileSnapshot::SetRow& b) {
                     if (a.s.stall_cycles != b.s.stall_cycles) {
                       return a.s.stall_cycles > b.s.stall_cycles;
                     }
                     return a.key < b.key;
                   });

  for (const auto& h : hints) {
    if (h.tasks > 0 || h.s.accesses() > 0) p.hints.push_back(h);
  }
  return p;
}

// --- snapshot rendering ------------------------------------------------------

namespace {

void stats_json(json::Writer& w, const AccessStats& s) {
  w.key("reads").uint_value(s.reads);
  w.key("writes").uint_value(s.writes);
  w.key("serviced").begin_array();
  for (int i = 0; i < mem::kNumServices; ++i) w.uint_value(s.serviced[i]);
  w.end_array();
  w.key("invals").uint_value(s.invals);
  w.key("stall_cycles").uint_value(s.stall_cycles);
  w.key("remote_stall_cycles").uint_value(s.remote_stall_cycles);
}

void cluster_array(json::Writer& w, const char* key,
                   const std::vector<std::uint64_t>& v) {
  w.key(key).begin_array();
  for (std::uint64_t x : v) w.uint_value(x);
  w.end_array();
}

double per_mille(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 1000.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

double frac(std::uint64_t part, std::uint64_t whole) {
  return whole == 0
             ? 0.0
             : static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

std::string ProfileSnapshot::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("n_procs").uint_value(n_procs);
  w.key("n_clusters").uint_value(n_clusters);
  w.key("objects").begin_array();
  for (const ObjectRow& o : objects) {
    w.begin_object();
    w.key("name").string(o.name);
    w.key("addr").uint_value(o.addr);
    w.key("bytes").uint_value(o.bytes);
    w.key("anonymous").bool_value(o.anonymous);
    w.key("home").uint_value(o.home);
    stats_json(w, o.s);
    cluster_array(w, "miss_from_cluster", o.miss_from_cluster);
    cluster_array(w, "miss_home_cluster", o.miss_home_cluster);
    w.end_object();
  }
  w.end_array();
  w.key("sets").begin_array();
  for (const SetRow& s : sets) {
    w.begin_object();
    w.key("key").uint_value(s.key);
    w.key("label").string(s.label);
    w.key("hint").string(hint_class_name(s.hint));
    w.key("tasks").uint_value(s.tasks);
    w.key("stolen").uint_value(s.stolen);
    w.key("procs").begin_array();
    for (topo::ProcId p : s.procs) w.uint_value(p);
    w.end_array();
    stats_json(w, s.s);
    w.end_object();
  }
  w.end_array();
  w.key("hints").begin_array();
  for (const HintRow& h : hints) {
    w.begin_object();
    w.key("hint").string(hint_class_name(h.hint));
    w.key("tasks").uint_value(h.tasks);
    stats_json(w, h.s);
    w.end_object();
  }
  w.end_array();
  w.key("total").begin_object();
  stats_json(w, total);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string profile_report(const ProfileSnapshot& p) {
  std::string out;
  char buf[160];

  out += "== locality profile: objects (hottest by stall) ==\n";
  util::Table objs({"object", "home", "KB", "acc(K)", "miss/1000", "hit%",
                    "locMem%", "remMem%", "locCache%", "remCache%", "invals",
                    "stall(Kcyc)", "remote-stall%"});
  // Apps may register hundreds of objects (e.g. one per matrix column); keep
  // the text report readable and leave the full set to the JSON record.
  std::vector<const ProfileSnapshot::ObjectRow*> active;
  for (const ProfileSnapshot::ObjectRow& o : p.objects) {
    if (o.s.accesses() > 0 || o.s.invals > 0) active.push_back(&o);
  }
  std::stable_sort(active.begin(), active.end(),
                   [](const ProfileSnapshot::ObjectRow* a,
                      const ProfileSnapshot::ObjectRow* b) {
                     return a->s.stall_cycles > b->s.stall_cycles;
                   });
  constexpr std::size_t kMaxObjRows = 24;
  const std::size_t obj_shown = std::min(active.size(), kMaxObjRows);
  for (std::size_t i = 0; i < obj_shown; ++i) {
    const ProfileSnapshot::ObjectRow& o = *active[i];
    const std::uint64_t m = o.s.misses();
    objs.row()
        .cell(o.name)
        .cell(static_cast<std::uint64_t>(o.home))
        .cell(static_cast<double>(o.bytes) / 1024.0, 1)
        .cell(static_cast<double>(o.s.accesses()) / 1e3, 1)
        .cell(per_mille(m, o.s.accesses()), 2)
        .cell_pct(frac(o.s.serviced[0] + o.s.serviced[1], o.s.accesses()))
        .cell_pct(frac(o.s.serviced[2], m))
        .cell_pct(frac(o.s.serviced[3], m))
        .cell_pct(frac(o.s.serviced[4], m))
        .cell_pct(frac(o.s.serviced[5], m))
        .cell(o.s.invals)
        .cell(static_cast<double>(o.s.stall_cycles) / 1e3, 1)
        .cell_pct(frac(o.s.remote_stall_cycles, o.s.stall_cycles));
  }
  out += objs.to_string();
  if (active.size() > obj_shown) {
    std::snprintf(buf, sizeof buf,
                  "  (+%zu more objects; see the JSON record)\n",
                  active.size() - obj_shown);
    out += buf;
  }

  if (!p.sets.empty()) {
    out += "\n== locality profile: affinity sets (hottest by stall) ==\n";
    util::Table sets({"set", "hint", "tasks", "stolen", "procs", "acc(K)",
                      "miss/1000", "stall(Kcyc)"});
    constexpr std::size_t kMaxSetRows = 16;
    const std::size_t shown = std::min(p.sets.size(), kMaxSetRows);
    for (std::size_t i = 0; i < shown; ++i) {
      const ProfileSnapshot::SetRow& s = p.sets[i];
      sets.row()
          .cell(s.label)
          .cell(hint_class_name(s.hint))
          .cell(s.tasks)
          .cell(s.stolen)
          .cell(static_cast<std::uint64_t>(s.procs.size()))
          .cell(static_cast<double>(s.s.accesses()) / 1e3, 1)
          .cell(per_mille(s.s.misses(), s.s.accesses()), 2)
          .cell(static_cast<double>(s.s.stall_cycles) / 1e3, 1);
    }
    out += sets.to_string();
    if (p.sets.size() > shown) {
      std::snprintf(buf, sizeof buf, "  (+%zu more sets; see the JSON record)\n",
                    p.sets.size() - shown);
      out += buf;
    }
  }

  if (!p.hints.empty()) {
    out += "\n== locality profile: hint classes ==\n";
    util::Table hints({"hint", "dispatches", "acc(K)", "miss/1000", "local%",
                       "stall(Kcyc)"});
    for (const ProfileSnapshot::HintRow& h : p.hints) {
      hints.row()
          .cell(hint_class_name(h.hint))
          .cell(h.tasks)
          .cell(static_cast<double>(h.s.accesses()) / 1e3, 1)
          .cell(per_mille(h.s.misses(), h.s.accesses()), 2)
          .cell_pct(frac(h.s.local_misses(), h.s.misses()))
          .cell(static_cast<double>(h.s.stall_cycles) / 1e3, 1);
    }
    out += hints.to_string();
  }
  return out;
}

}  // namespace cool::obs
