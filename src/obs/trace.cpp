#include "obs/trace.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/advisor_rules.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"

namespace cool::obs {

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity) {
  COOL_CHECK(capacity >= 1, "trace ring needs capacity >= 1");
}

TraceCollector::TraceCollector(std::uint32_t n_procs,
                               std::size_t capacity_per_proc) {
  COOL_CHECK(n_procs >= 1, "trace collector needs at least one processor");
  bufs_.reserve(n_procs);
  for (std::uint32_t p = 0; p < n_procs; ++p) {
    bufs_.emplace_back(capacity_per_proc);
  }
}

std::vector<Event> TraceCollector::merged() const {
  std::vector<Event> out;
  out.reserve(total_size());
  for (const TraceBuffer& b : bufs_) {
    b.for_each([&](const Event& e) { out.push_back(e); });
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) {
    if (x.start != y.start) return x.start < y.start;
    if (x.proc != y.proc) return x.proc < y.proc;
    return x.end < y.end;
  });
  return out;
}

std::uint64_t TraceCollector::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const TraceBuffer& b : bufs_) n += b.dropped();
  return n;
}

std::size_t TraceCollector::total_size() const noexcept {
  std::size_t n = 0;
  for (const TraceBuffer& b : bufs_) n += b.size();
  return n;
}

void TraceCollector::clear() noexcept {
  for (TraceBuffer& b : bufs_) b.clear();
}

std::string chrome_trace_json(const std::vector<Event>& events,
                              const ProfileSnapshot* profile) {
  json::Writer w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const Event& e : events) {
    w.begin_object();
    switch (e.kind) {
      case EventKind::kTaskSpan: {
        w.key("name").string("task " + std::to_string(e.a));
        w.key("cat").string("task");
        w.key("ph").string("X");
        w.key("ts").uint_value(e.start);
        w.key("dur").uint_value(e.end - e.start);
        w.key("pid").uint_value(0);
        w.key("tid").uint_value(e.proc);
        w.key("args").begin_object();
        w.key("seq").uint_value(e.a);
        w.key("stolen").bool_value((e.flags & kSpanStolen) != 0);
        const std::uint8_t end = span_end(e.flags);
        w.key("end").string(end == kSpanCompleted  ? "completed"
                            : end == kSpanBlocked ? "blocked"
                                                  : "yielded");
        w.end_object();
        break;
      }
      case EventKind::kSteal:
        w.key("name").string("steal");
        w.key("cat").string("sched");
        w.key("ph").string("i");
        w.key("s").string("t");
        w.key("ts").uint_value(e.start);
        w.key("pid").uint_value(0);
        w.key("tid").uint_value(e.proc);
        w.key("args").begin_object();
        w.key("victim").uint_value(e.a);
        w.key("tasks").uint_value(e.b);
        w.end_object();
        break;
      case EventKind::kMigration:
        w.key("name").string("migrate");
        w.key("cat").string("mem");
        w.key("ph").string("X");
        w.key("ts").uint_value(e.start);
        w.key("dur").uint_value(e.end - e.start);
        w.key("pid").uint_value(0);
        w.key("tid").uint_value(e.proc);
        w.key("args").begin_object();
        w.key("target").uint_value(e.a);
        w.key("bytes").uint_value(e.b);
        w.end_object();
        break;
      case EventKind::kIdleGap:
        w.key("name").string("idle");
        w.key("cat").string("sched");
        w.key("ph").string("X");
        w.key("ts").uint_value(e.start);
        w.key("dur").uint_value(e.end - e.start);
        w.key("pid").uint_value(0);
        w.key("tid").uint_value(e.proc);
        break;
      case EventKind::kAdaptation:
        w.key("name").string("adapt " + std::string(advice_kind_name(
                                 static_cast<AdviceKind>(e.b))));
        w.key("cat").string("adapt");
        w.key("ph").string("X");
        w.key("ts").uint_value(e.start);
        w.key("dur").uint_value(e.end - e.start);
        w.key("pid").uint_value(0);
        w.key("tid").uint_value(e.proc);
        w.key("args").begin_object();
        w.key("decision").uint_value(e.a);
        w.end_object();
        break;
      case EventKind::kBalance:
        w.key("name").string(e.flags == kBalanceReserve ? "balance reserve"
                                                        : "balance move");
        w.key("cat").string("sched");
        w.key("ph").string("i");
        w.key("s").string("t");
        w.key("ts").uint_value(e.start);
        w.key("pid").uint_value(0);
        w.key("tid").uint_value(e.proc);
        w.key("args").begin_object();
        w.key(e.flags == kBalanceReserve ? "target" : "src").uint_value(e.a);
        w.key("tasks").uint_value(e.b);
        w.end_object();
        break;
    }
    w.end_object();
  }
  if (profile != nullptr && !profile->objects.empty()) {
    // One counter sample per track at ts 0: the merged attribution has no
    // time axis, but the tracks still put the per-object breakdown next to
    // the task timeline in the viewer.
    const auto counter = [&w, profile](const char* name, auto value_of) {
      w.begin_object();
      w.key("name").string(name);
      w.key("cat").string("profile");
      w.key("ph").string("C");
      w.key("ts").uint_value(0);
      w.key("pid").uint_value(0);
      w.key("args").begin_object();
      for (const ProfileSnapshot::ObjectRow& o : profile->objects) {
        if (o.s.accesses() == 0) continue;
        w.key(o.name).uint_value(value_of(o));
      }
      w.end_object();
      w.end_object();
    };
    counter("profile.misses", [](const ProfileSnapshot::ObjectRow& o) {
      return o.s.misses();
    });
    counter("profile.remote_stall_cycles",
            [](const ProfileSnapshot::ObjectRow& o) {
              return o.s.remote_stall_cycles;
            });
  }
  w.end_array();
  w.key("displayTimeUnit").string("ns");
  w.end_object();
  return w.str();
}

}  // namespace cool::obs
