#include "load/arrivals.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cool::load {

const char* arrival_kind_name(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kDiurnal:
      return "diurnal";
  }
  return "?";
}

ArrivalKind parse_arrival_kind(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  throw util::Error("unknown arrival kind: " + name +
                    " (want poisson|bursty|diurnal)");
}

namespace {

/// Exponential variate with the given mean (mean > 0), strictly positive.
double exp_variate(util::Rng& rng, double mean) {
  // 1 - next_double() is in (0, 1], so the log argument never hits zero.
  return -mean * std::log(1.0 - rng.next_double());
}

std::vector<std::uint64_t> poisson_trace(const ArrivalConfig& cfg,
                                         util::Rng& rng) {
  const double mean_gap = 1000.0 / cfg.rate_per_kcycle;
  std::vector<std::uint64_t> out;
  out.reserve(cfg.n_requests);
  double t = static_cast<double>(cfg.start_cycle);
  for (std::uint64_t i = 0; i < cfg.n_requests; ++i) {
    t += exp_variate(rng, mean_gap);
    out.push_back(static_cast<std::uint64_t>(t));
  }
  return out;
}

std::vector<std::uint64_t> bursty_trace(const ArrivalConfig& cfg,
                                        util::Rng& rng) {
  COOL_CHECK(cfg.burst_mult > 0 && cfg.calm_mult > 0,
             "bursty arrivals need positive rate multipliers");
  std::vector<std::uint64_t> out;
  out.reserve(cfg.n_requests);
  double t = static_cast<double>(cfg.start_cycle);
  bool burst = false;  // start calm
  double phase_end =
      t + exp_variate(rng, static_cast<double>(cfg.calm_dwell_cycles));
  while (out.size() < cfg.n_requests) {
    const double mult = burst ? cfg.burst_mult : cfg.calm_mult;
    const double mean_gap = 1000.0 / (cfg.rate_per_kcycle * mult);
    const double next = t + exp_variate(rng, mean_gap);
    if (next >= phase_end) {
      // The gap straddles a phase switch: restart the (memoryless)
      // exponential clock at the boundary under the new rate.
      t = phase_end;
      burst = !burst;
      const auto dwell = static_cast<double>(
          burst ? cfg.burst_dwell_cycles : cfg.calm_dwell_cycles);
      phase_end = t + exp_variate(rng, dwell);
      continue;
    }
    t = next;
    out.push_back(static_cast<std::uint64_t>(t));
  }
  return out;
}

std::vector<std::uint64_t> diurnal_trace(const ArrivalConfig& cfg,
                                         util::Rng& rng) {
  COOL_CHECK(cfg.depth >= 0.0 && cfg.depth < 1.0,
             "diurnal depth must be in [0, 1)");
  COOL_CHECK(cfg.period_cycles > 0, "diurnal period must be positive");
  // Lewis-Shedler thinning: candidates at the peak rate, accepted with
  // probability rate(t)/peak_rate.
  const double base = cfg.rate_per_kcycle / 1000.0;  // per cycle
  const double peak = base * (1.0 + cfg.depth);
  const double mean_gap = 1.0 / peak;
  const double omega =
      2.0 * std::numbers::pi / static_cast<double>(cfg.period_cycles);
  std::vector<std::uint64_t> out;
  out.reserve(cfg.n_requests);
  double t = static_cast<double>(cfg.start_cycle);
  while (out.size() < cfg.n_requests) {
    t += exp_variate(rng, mean_gap);
    const double rate_t = base * (1.0 + cfg.depth * std::sin(omega * t));
    if (rng.next_double() * peak < rate_t) {
      out.push_back(static_cast<std::uint64_t>(t));
    }
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> generate_arrivals(const ArrivalConfig& cfg) {
  COOL_CHECK(cfg.rate_per_kcycle > 0.0,
             "arrival rate must be positive (requests per kcycle)");
  util::Rng rng(cfg.seed);
  switch (cfg.kind) {
    case ArrivalKind::kPoisson:
      return poisson_trace(cfg, rng);
    case ArrivalKind::kBursty:
      return bursty_trace(cfg, rng);
    case ArrivalKind::kDiurnal:
      return diurnal_trace(cfg, rng);
  }
  return {};
}

std::uint64_t trace_digest(const std::vector<std::uint64_t>& trace) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the raw stamps
  for (const std::uint64_t v : trace) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

}  // namespace cool::load
