#include "load/driver.hpp"

#include <algorithm>
#include <utility>

#include "analysis/invariants.hpp"
#include "common/error.hpp"

namespace cool::load {

Driver::Driver(std::vector<std::uint64_t> arrivals, DriverConfig cfg)
    : arrivals_(std::move(arrivals)), cfg_(cfg) {
  COOL_CHECK(std::is_sorted(arrivals_.begin(), arrivals_.end()),
             "load::Driver: arrival trace must be non-decreasing");
  ledger_.generated = arrivals_.size();
}

TaskFn Driver::pump(PlaceFn place, RequestFn make) {
  // The root task arrives hint-free, and a hint-free task that suspends is
  // fair game for steal_object_tasks and balancer moves — the front-end
  // would drift onto a serving processor mid-trace. Re-spawn the real pump
  // with PROCESSOR affinity on the current processor so it stays pinned
  // (processor-affinity tasks are steal-exempt, and a front-end queue of
  // depth <= 1 never exceeds the average balancer's move threshold).
  auto& c = co_await self();
  TaskGroup root;
  c.spawn(Affinity::processor(static_cast<std::int64_t>(c.proc())), root,
          pump_epochs(std::move(place), std::move(make)));
  co_await c.wait(root);
}

TaskFn Driver::pump_epochs(PlaceFn place, RequestFn make) {
  auto& c = co_await self();
  TaskGroup group;
  const std::uint64_t epoch = cfg_.epoch_cycles == 0 ? 1 : cfg_.epoch_cycles;
  std::size_t i = 0;
  while (i < arrivals_.size()) {
    // Release everything that arrives inside the epoch containing the next
    // pending arrival, at that epoch's end.
    const std::uint64_t window_end = (arrivals_[i] / epoch + 1) * epoch;
    if (window_end > c.now()) {
      c.work(window_end - c.now());  // open loop: wait on the trace clock
    }
    while (i < arrivals_.size() && arrivals_[i] < window_end) {
      const auto id = static_cast<std::uint32_t>(i);
      c.spawn(place(id), group, make(id, arrivals_[i]));
      ++ledger_.admitted;
      ++i;
    }
    // Suspend at the epoch boundary. Ctx::work advances the simulated clock
    // without suspending, so without this yield the pump would spawn the
    // whole trace before any request ran (in host order) and the scheduler's
    // queues would hold the entire future: balancers would "move" requests
    // that have not arrived yet. The engine dispatches the minimum-clock
    // processor next, so yielding once per epoch keeps host execution order
    // tracking simulated time and queues only ever hold released arrivals.
    co_await c.yield();
  }
  co_await c.wait(group);
}

void Driver::complete(std::uint32_t id, std::uint64_t now_cycles) {
  COOL_CHECK(id < arrivals_.size(), "load::Driver: completion id out of range");
  const std::uint64_t arrival = arrivals_[id];
  // Dispatch honors TaskDesc::ready_time, so a request never runs before its
  // spawn, which is never before its arrival — guard anyway against model
  // changes.
  const std::uint64_t lat = now_cycles >= arrival ? now_cycles - arrival : 0;
  hist_.record(lat);
  if (arrival >= cfg_.measure_from_cycles) measured_hist_.record(lat);
  completions_.push_back(now_cycles);
  ++ledger_.completed;
  if (now_cycles <= last_arrival()) ++served_in_window_;
}

std::vector<std::uint64_t> Driver::inflight_samples() const {
  // Reconstructed from the simulated stamps rather than sampled live: the
  // pump coroutine runs host-first (Ctx::work does not suspend), so counters
  // read mid-pump would reflect host order, not simulated time.
  std::vector<std::uint64_t> out;
  if (arrivals_.empty()) return out;
  std::vector<std::uint64_t> done = completions_;
  std::sort(done.begin(), done.end());
  const std::uint64_t epoch = cfg_.epoch_cycles == 0 ? 1 : cfg_.epoch_cycles;
  const std::uint64_t horizon =
      std::max(last_arrival(), done.empty() ? 0 : done.back());
  std::size_t ai = 0;
  std::size_t ci = 0;
  for (std::uint64_t t = epoch; t - epoch < horizon; t += epoch) {
    while (ai < arrivals_.size() && arrivals_[ai] < t) ++ai;
    while (ci < done.size() && done[ci] <= t) ++ci;
    out.push_back(ai - ci);
  }
  return out;
}

void Driver::verify() const {
  analysis::check_admission_ledger(ledger_.generated, ledger_.admitted,
                                   ledger_.completed);
}

}  // namespace cool::load
