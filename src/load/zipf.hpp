// Zipf(theta) sampler over a small key space, via a precomputed CDF.
//
// Hot-key skew is the whole point of the serving workload: theta = 0 is
// uniform, theta around 1 concentrates most traffic on the first few keys
// (rank 0 is always the hottest). The key spaces here are tiny (warehouses,
// districts), so an O(log n) CDF binary search per sample is the simple,
// deterministic choice.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace cool::load {

class ZipfSampler {
 public:
  /// n keys, weights proportional to 1/(rank+1)^theta. theta >= 0.
  ZipfSampler(std::size_t n, double theta);

  /// Draw a key in [0, n); rank 0 is the hottest.
  [[nodiscard]] std::size_t sample(util::Rng& rng) const;

  /// Probability mass of key `rank`.
  [[nodiscard]] double pmf(std::size_t rank) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  ///< Inclusive cumulative mass per rank.
};

}  // namespace cool::load
