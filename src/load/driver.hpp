// Epoch-batched admission: the bridge from an arrival trace to the runtime.
//
// The Driver owns a precomputed arrival trace (load/arrivals.hpp) and runs
// an *admission pump* task that walks it in epoch batches: it advances its
// own simulated clock to each epoch boundary with Ctx::work() — so
// admission consumes one processor, like a real dispatcher thread — and
// spawns every request that arrived inside the epoch as a task carrying its
// request id and true arrival stamp. Batching is felis-style epoch design:
// admission cost is amortised over the batch, and each request's measured
// latency honestly includes its admission delay (completion cycle minus
// *arrival* cycle, not minus spawn cycle).
//
// Because the pump occupies its processor for the whole trace, callers
// should treat that processor as the front-end node and home served data on
// the remaining P-1 processors (as apps/txn does): work pinned to the
// pump's processor would only run after the last arrival. Each spawned
// request carries ready_time = the pump's clock, and dispatch honors it, so
// serving processors idle forward to a request's admission time rather than
// running it before it "exists".
//
// Because arrivals come from the trace and not from completions, the loop is
// open: when offered load exceeds capacity nothing slows the pump down, the
// scheduler's queues grow, and the growing queueing delay appears directly
// in the latency histogram — the classic hockey-stick p99.
//
// The Driver keeps a conservation ledger (generated / admitted / completed)
// which verify() feeds through cool-check's admission invariant: every
// generated request must be admitted exactly once and every admitted request
// must complete exactly once.
//
// Deterministic-simulation scoped: the pump and complete() share plain
// counters and a LatencyHist under the sim engine's one-thread execution
// model. Do not drive a Mode::kThreads runtime with it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/cool.hpp"
#include "obs/latency_hist.hpp"

namespace cool::load {

/// Exactly-once admission accounting, checked by cool-check.
struct AdmissionLedger {
  std::uint64_t generated = 0;  ///< Requests in the arrival trace.
  std::uint64_t admitted = 0;   ///< Requests spawned into the runtime.
  std::uint64_t completed = 0;  ///< Requests that called complete().
};

struct DriverConfig {
  /// Admission batch window, in simulated cycles. Arrivals are released at
  /// the end of the epoch containing their stamp.
  std::uint64_t epoch_cycles = 1000;
  /// TPC-style measurement interval: requests *arriving* before this cycle
  /// are excluded from measured_latency() (0 = measure everything). The
  /// full histogram (latency()) always covers the whole trace — it is the
  /// adaptive engine's live sensor and must see the ramp.
  std::uint64_t measure_from_cycles = 0;
};

/// Build the body of request `id` (arrival stamp attached for latency
/// accounting — the task must end by calling Driver::complete(id, c.now())).
using RequestFn = std::function<TaskFn(std::uint32_t id, std::uint64_t arrival)>;

/// Placement hint for request `id` (e.g. OBJECT affinity on the hot key's
/// home data).
using PlaceFn = std::function<Affinity(std::uint32_t id)>;

class Driver {
 public:
  Driver(std::vector<std::uint64_t> arrivals, DriverConfig cfg = {});

  /// The admission pump root task: run it with Runtime::run(). Spawns every
  /// request and waits for all of them before finishing. The pump pins
  /// itself to the processor it starts on and *yields at every epoch
  /// boundary*, so host execution order tracks simulated time and the
  /// scheduler's queues only ever hold requests that have actually arrived
  /// — balancers and the profiler see the true instantaneous queue state,
  /// not the whole future trace.
  TaskFn pump(PlaceFn place, RequestFn make);

  /// Called by each request task as its last act.
  void complete(std::uint32_t id, std::uint64_t now_cycles);

  /// Throws util::Error (via the cool-check admission invariant) if any
  /// request was dropped or double-counted. Call after Runtime::run().
  void verify() const;

  [[nodiscard]] const obs::LatencyHist& latency() const noexcept {
    return hist_;
  }
  /// Latency of requests arriving inside the measurement interval
  /// (DriverConfig::measure_from_cycles; the whole trace by default).
  [[nodiscard]] const obs::LatencyHist& measured_latency() const noexcept {
    return measured_hist_;
  }
  [[nodiscard]] const AdmissionLedger& ledger() const noexcept {
    return ledger_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& arrivals() const noexcept {
    return arrivals_;
  }
  /// Stamp of the last arrival: the end of the offered-load window.
  [[nodiscard]] std::uint64_t last_arrival() const noexcept {
    return arrivals_.empty() ? 0 : arrivals_.back();
  }
  /// Completions that happened inside the offered-load window (completion
  /// cycle <= last arrival) — the numerator of the served/offered ratio.
  [[nodiscard]] std::uint64_t served_in_window() const noexcept {
    return served_in_window_;
  }
  /// In-flight requests (arrived but not yet completed, in simulated time)
  /// at every admission-epoch boundary, reconstructed from the arrival and
  /// completion stamps after the run: under overload this sequence grows
  /// without bound until the trace ends.
  [[nodiscard]] std::vector<std::uint64_t> inflight_samples() const;

 private:
  /// The pinned epoch loop; pump() spawns it with PROCESSOR affinity so the
  /// front-end cannot be stolen or moved once it starts yielding.
  TaskFn pump_epochs(PlaceFn place, RequestFn make);

  std::vector<std::uint64_t> arrivals_;
  DriverConfig cfg_;
  AdmissionLedger ledger_;
  obs::LatencyHist hist_;
  obs::LatencyHist measured_hist_;  ///< Arrivals >= measure_from_cycles.
  std::vector<std::uint64_t> completions_;  ///< Completion stamps, any order.
  std::uint64_t served_in_window_ = 0;
};

}  // namespace cool::load
