#include "load/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cool::load {

ZipfSampler::ZipfSampler(std::size_t n, double theta) {
  COOL_CHECK(n > 0, "ZipfSampler needs at least one key");
  COOL_CHECK(theta >= 0.0, "Zipf theta must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding at the top
}

std::size_t ZipfSampler::sample(util::Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double ZipfSampler::pmf(std::size_t rank) const {
  COOL_CHECK(rank < cdf_.size(), "Zipf pmf rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace cool::load
