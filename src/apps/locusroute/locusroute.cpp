#include "apps/locusroute/locusroute.hpp"

#include <algorithm>
#include <cstdio>
#include <new>

#include "common/rng.hpp"

namespace cool::apps::locusroute {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBase:
      return "Base";
    case Variant::kAffinity:
      return "Affinity";
    case Variant::kAffinityDistr:
      return "Affinity+ObjectDistr";
  }
  return "?";
}

sched::Policy policy_for(Variant v) {
  sched::Policy p;
  p.honor_affinity = v != Variant::kBase;
  return p;
}

namespace {

/// One routing cell: wires crossing horizontally / vertically. Atomics so
/// rip-out/commit updates are exact under the real-threads engine too.
struct CostCell {
  std::atomic<int> h;
  std::atomic<int> v;
};
static_assert(sizeof(CostCell) == 8, "cost cell should be 8 bytes");

struct Region {
  CostCell* cells = nullptr;  ///< height * w cells, row-major.
  int x0 = 0;
  int w = 0;
};

/// A straight piece of a candidate route.
struct Seg {
  bool horiz = false;
  int fixed = 0;  ///< y for horizontal, x for vertical.
  int lo = 0, hi = 0;
};

struct App {
  Config cfg;
  int height = 0;
  int width = 0;
  int nregions = 0;
  std::uint32_t procs = 0;
  std::vector<Region> regions;
  Wire* wires = nullptr;
  int n_wires = 0;
  std::vector<int> spawn_order;  ///< Netlist order: geographically scattered.
  std::atomic<std::uint64_t> on_region_proc{0};
  std::atomic<std::uint64_t> routed_tasks{0};

  [[nodiscard]] int region_of_x(int x) const { return x / cfg.region_w; }
  [[nodiscard]] int region_of_wire(const Wire& w) const {
    return region_of_x((w.a.x + w.b.x) / 2);
  }
  [[nodiscard]] CostCell* cell(int x, int y) const {
    const Region& r = regions[static_cast<std::size_t>(region_of_x(x))];
    return &r.cells[static_cast<std::size_t>(y) * r.w + (x - r.x0)];
  }
};

constexpr int kCandidates = 3;

/// Decompose candidate `cand` for `w` into segments. Returns segment count.
int candidate_segs(const Wire& w, int cand, Seg out[3]) {
  const int xa = w.a.x, ya = w.a.y, xb = w.b.x, yb = w.b.y;
  int n = 0;
  auto hseg = [&](int y, int x1, int x2) {
    if (x1 == x2) return;
    out[n++] = Seg{true, y, std::min(x1, x2), std::max(x1, x2)};
  };
  auto vseg = [&](int x, int y1, int y2) {
    if (y1 == y2) return;
    out[n++] = Seg{false, x, std::min(y1, y2), std::max(y1, y2)};
  };
  switch (cand) {
    case 0:  // horizontal-first L
      hseg(ya, xa, xb);
      vseg(xb, ya, yb);
      break;
    case 1:  // vertical-first L
      vseg(xa, ya, yb);
      hseg(yb, xa, xb);
      break;
    default: {  // Z: horizontal to the midpoint column, vertical, horizontal
      const int xm = (xa + xb) / 2;
      hseg(ya, xa, xm);
      vseg(xm, ya, yb);
      hseg(yb, xm, xb);
      break;
    }
  }
  if (n == 0) {
    // Degenerate wire (both pins in the same cell): a single-cell "route".
    out[n++] = Seg{true, ya, xa, xa};
  }
  return n;
}

/// Walk a horizontal cell range, charging contiguous per-region reads.
template <typename Fn>
void walk_h(Ctx& c, App* a, int y, int xlo, int xhi, bool update, Fn&& fn) {
  int x = xlo;
  while (x <= xhi) {
    const Region& r =
        a->regions[static_cast<std::size_t>(a->region_of_x(x))];
    const int xend = std::min(xhi, r.x0 + r.w - 1);
    CostCell* first = a->cell(x, y);
    const std::size_t bytes =
        static_cast<std::size_t>(xend - x + 1) * sizeof(CostCell);
    if (update) {
      c.update(first, bytes);
    } else {
      c.read(first, bytes);
    }
    for (int xx = x; xx <= xend; ++xx) fn(*a->cell(xx, y));
    x = xend + 1;
  }
}

/// Walk a vertical cell range (strided: one charge per cell).
template <typename Fn>
void walk_v(Ctx& c, App* a, int x, int ylo, int yhi, bool update, Fn&& fn) {
  for (int y = ylo; y <= yhi; ++y) {
    CostCell* cell = a->cell(x, y);
    if (update) {
      c.update(cell, sizeof(CostCell));
    } else {
      c.read(cell, sizeof(CostCell));
    }
    fn(*cell);
  }
}

std::uint64_t eval_candidate(Ctx& c, App* a, const Wire& w, int cand) {
  Seg segs[3];
  const int n = candidate_segs(w, cand, segs);
  std::uint64_t cost = 0;
  for (int i = 0; i < n; ++i) {
    const Seg& s = segs[i];
    if (s.horiz) {
      walk_h(c, a, s.fixed, s.lo, s.hi, false, [&](CostCell& cell) {
        cost += static_cast<std::uint64_t>(
                    cell.h.load(std::memory_order_relaxed)) +
                1;
      });
    } else {
      walk_v(c, a, s.fixed, s.lo, s.hi, false, [&](CostCell& cell) {
        cost += static_cast<std::uint64_t>(
                    cell.v.load(std::memory_order_relaxed)) +
                1;
      });
    }
  }
  c.work(static_cast<std::uint64_t>(n) * 8);
  return cost;
}

void apply_route(Ctx& c, App* a, const Wire& w, int cand, int delta) {
  Seg segs[3];
  const int n = candidate_segs(w, cand, segs);
  for (int i = 0; i < n; ++i) {
    const Seg& s = segs[i];
    if (s.horiz) {
      walk_h(c, a, s.fixed, s.lo, s.hi, true, [&](CostCell& cell) {
        cell.h.fetch_add(delta, std::memory_order_relaxed);
      });
    } else {
      walk_v(c, a, s.fixed, s.lo, s.hi, true, [&](CostCell& cell) {
        cell.v.fetch_add(delta, std::memory_order_relaxed);
      });
    }
  }
}

TaskFn route_wire(App* a, int widx) {
  auto& c = co_await self();
  Wire& w = a->wires[widx];
  c.read(&w, sizeof w);

  if (w.route >= 0) apply_route(c, a, w, w.route, -1);  // rip out

  int best = 0;
  std::uint64_t best_cost = ~0ull;
  for (int cand = 0; cand < kCandidates; ++cand) {
    const std::uint64_t cost = eval_candidate(c, a, w, cand);
    if (cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  }
  w.route = best;
  c.write(&w, sizeof w);
  apply_route(c, a, w, best, +1);

  a->routed_tasks.fetch_add(1, std::memory_order_relaxed);
  const auto expect = static_cast<topo::ProcId>(
      static_cast<std::uint32_t>(a->region_of_wire(w)) % a->procs);
  if (c.proc() == expect) {
    a->on_region_proc.fetch_add(1, std::memory_order_relaxed);
  }
}

TaskFn root_task(App* a) {
  auto& c = co_await self();
  for (int iter = 0; iter < a->cfg.iterations; ++iter) {
    TaskGroup waitfor;
    for (const int i : a->spawn_order) {
      const Wire& w = a->wires[i];
      Affinity aff = Affinity::none();
      if (a->cfg.variant != Variant::kBase) {
        const int r = a->region_of_wire(w);
        // Figure 9: processor affinity by geographic region; the region's
        // cell block also keys the task-affinity set so a region's wires
        // run back-to-back.
        aff = Affinity::processor_task(
            r, a->regions[static_cast<std::size_t>(r)].cells);
      }
      c.spawn(aff, waitfor, route_wire(a, i));
    }
    co_await c.wait(waitfor);
  }
}

}  // namespace

Result run(Runtime& rt, const Config& cfg) {
  COOL_CHECK(cfg.region_w >= 4 && cfg.height >= 4, "locusroute: grid too small");
  COOL_CHECK(cfg.wires_per_region >= 1, "locusroute: need wires");
  const auto P = rt.machine().n_procs;

  App app;
  app.cfg = cfg;
  app.procs = P;
  app.nregions = cfg.regions > 0 ? cfg.regions : static_cast<int>(P);
  app.height = cfg.height;
  app.width = app.nregions * cfg.region_w;

  // CostArray regions: contiguous per-region blocks, optionally distributed.
  app.regions.resize(static_cast<std::size_t>(app.nregions));
  for (int r = 0; r < app.nregions; ++r) {
    const std::int64_t home =
        cfg.variant == Variant::kAffinityDistr ? (r % static_cast<int>(P)) : 0;
    auto& region = app.regions[static_cast<std::size_t>(r)];
    region.x0 = r * cfg.region_w;
    region.w = cfg.region_w;
    region.cells = static_cast<CostCell*>(rt.alloc_bytes(
        static_cast<std::size_t>(cfg.height) * cfg.region_w * sizeof(CostCell),
        home));
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(cfg.height) * cfg.region_w; ++i) {
      new (&region.cells[i]) CostCell{};
    }
  }

  // Synthetic circuit: dense short wires inside each region, a fraction
  // crossing into the neighbour (the paper used a synthetic input too).
  util::Rng rng(cfg.seed);
  app.n_wires = app.nregions * cfg.wires_per_region;
  app.wires =
      rt.alloc_array<Wire>(static_cast<std::size_t>(app.n_wires), 0);
  int wi = 0;
  for (int r = 0; r < app.nregions; ++r) {
    const int x0 = r * cfg.region_w;
    for (int k = 0; k < cfg.wires_per_region; ++k) {
      Wire w;
      w.a.x = x0 + static_cast<int>(rng.next_below(
                       static_cast<std::uint64_t>(cfg.region_w)));
      w.a.y = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.height)));
      int bx0 = x0;
      if (rng.next_double() < cfg.cross_fraction && app.nregions > 1) {
        // Endpoint in an adjacent region.
        const int rr = r + (rng.next_double() < 0.5 || r == app.nregions - 1
                                ? (r > 0 ? -1 : 1)
                                : 1);
        bx0 = rr * cfg.region_w;
      }
      w.b.x = bx0 + static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(cfg.region_w)));
      w.b.y = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.height)));
      w.route = -1;
      app.wires[wi++] = w;
    }
  }

  // Wires are routed in netlist order, which scatters geographically —
  // consecutive tasks belong to different regions (this is what makes the
  // region task-affinity grouping and processor hints matter; a circuit's
  // signal numbering has no geographic locality).
  app.spawn_order.resize(static_cast<std::size_t>(app.n_wires));
  for (int i = 0; i < app.n_wires; ++i) {
    app.spawn_order[static_cast<std::size_t>(i)] = i;
  }
  util::Rng order_rng(cfg.seed ^ 0x5a5a5a5aull);
  for (int i = app.n_wires - 1; i > 0; --i) {
    const auto j = static_cast<int>(
        order_rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(app.spawn_order[static_cast<std::size_t>(i)],
              app.spawn_order[static_cast<std::size_t>(j)]);
  }

  {
    char name[32];
    for (int r = 0; r < app.nregions; ++r) {
      std::snprintf(name, sizeof name, "cost_region[%d]", r);
      rt.profile_register(
          name, app.regions[static_cast<std::size_t>(r)].cells,
          static_cast<std::size_t>(cfg.height) * cfg.region_w *
              sizeof(CostCell));
    }
    rt.profile_register("wires", app.wires,
                        static_cast<std::size_t>(app.n_wires) * sizeof(Wire));
  }

  rt.run(root_task(&app));

  // Consistency invariant: replaying the final routes must reproduce the
  // incrementally maintained CostArray exactly.
  {
    std::vector<std::vector<std::pair<int, int>>> replay(
        static_cast<std::size_t>(app.nregions),
        std::vector<std::pair<int, int>>(
            static_cast<std::size_t>(cfg.height) * cfg.region_w, {0, 0}));
    auto replay_cell = [&](int x, int y) -> std::pair<int, int>& {
      const int r = app.region_of_x(x);
      return replay[static_cast<std::size_t>(r)]
                   [static_cast<std::size_t>(y) * cfg.region_w +
                    (x - app.regions[static_cast<std::size_t>(r)].x0)];
    };
    for (int i = 0; i < app.n_wires; ++i) {
      const Wire& w = app.wires[i];
      COOL_CHECK(w.route >= 0, "locusroute: wire left unrouted");
      Seg segs[3];
      const int n = candidate_segs(w, w.route, segs);
      for (int si = 0; si < n; ++si) {
        const Seg& s = segs[si];
        if (s.horiz) {
          for (int x = s.lo; x <= s.hi; ++x) ++replay_cell(x, s.fixed).first;
        } else {
          for (int y = s.lo; y <= s.hi; ++y) ++replay_cell(s.fixed, y).second;
        }
      }
    }
    for (int x = 0; x < app.width; ++x) {
      for (int y = 0; y < cfg.height; ++y) {
        const auto& expect = replay_cell(x, y);
        const CostCell* got = app.cell(x, y);
        COOL_CHECK(got->h.load() == expect.first &&
                       got->v.load() == expect.second,
                   "locusroute: CostArray inconsistent with final routes");
      }
    }
  }

  Result res;
  for (int x = 0; x < app.width; ++x) {
    for (int y = 0; y < cfg.height; ++y) {
      const CostCell* cell = app.cell(x, y);
      const auto h = static_cast<std::uint64_t>(cell->h.load());
      const auto v = static_cast<std::uint64_t>(cell->v.load());
      res.total_occupancy += h + v;
      res.total_route_cost += h * h + v * v;
    }
  }
  const auto routed = app.routed_tasks.load();
  if (routed > 0) {
    res.region_adherence =
        static_cast<double>(app.on_region_proc.load()) /
        static_cast<double>(routed);
  }
  res.run = collect(rt, static_cast<double>(res.total_route_cost));
  return res;
}

}  // namespace cool::apps::locusroute
