// LocusRoute — SPLASH standard-cell router kernel (paper §6.2, Figs. 8–11).
//
// Wires are routed over a shared CostArray that tracks, per routing cell, how
// many wires pass through horizontally and vertically. Each task rips out a
// wire's previous route, evaluates candidate routes by reading the CostArray,
// commits the cheapest one, and updates the CostArray along it.
//
// Locality structure (paper Figure 8): the CostArray is viewed as
// geographical regions; wires are short, so a wire's task touches (mostly)
// one region. The COOL version supplies a PROCESSOR affinity hint computed
// from the wire's midpoint region — wires of a region route back-to-back on
// "their" processor, reusing that region of the CostArray in the cache and
// avoiding invalidations from other processors. Optionally the regions are
// also physically distributed across memories (Affinity+ObjectDistr).
//
// The CostArray cells are std::atomic<int> so the identical program is also
// race-correct under the real-threads engine; the paper's consistency
// invariant (incremental CostArray == replay of final routes) is checked by
// the tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"

namespace cool::apps::locusroute {

enum class Variant {
  kBase,           ///< Round-robin wire tasks, CostArray on processor 0.
  kAffinity,       ///< PROCESSOR affinity by wire region.
  kAffinityDistr,  ///< + CostArray regions distributed across memories.
};

const char* variant_name(Variant v);

struct Config {
  int region_w = 64;        ///< Cells per region along x.
  int height = 64;          ///< Routing-grid height (cells along y).
  int regions = 0;          ///< 0 = one region per processor.
  int wires_per_region = 48;
  double cross_fraction = 0.15;  ///< Wires whose endpoint leaves the region.
  int iterations = 3;       ///< Rip-up-and-reroute passes.
  Variant variant = Variant::kAffinityDistr;
  std::uint64_t seed = 17;
};

struct Point {
  int x = 0;
  int y = 0;
};

struct Wire {
  Point a, b;
  int route = -1;  ///< Chosen candidate index; -1 = unrouted.
};

struct Result {
  apps::RunResult run;
  std::uint64_t total_route_cost = 0;  ///< Final cost of all routes.
  std::uint64_t total_occupancy = 0;   ///< Sum over all CostArray cells.
  double region_adherence = 0.0;       ///< Fraction of wire tasks executed on
                                       ///< their region's processor (paper:
                                       ///< "over 80%").
};

sched::Policy policy_for(Variant v);

Result run(Runtime& rt, const Config& cfg);

/// Verify that replaying the final routes from scratch reproduces the
/// incrementally maintained CostArray (used by tests; run() checks it too
/// and throws on mismatch).
}  // namespace cool::apps::locusroute
