#include "apps/gauss/gauss.hpp"

#include <cmath>
#include <cstdio>
#include <deque>

#include "common/rng.hpp"

namespace cool::apps::gauss {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBase:
      return "Base";
    case Variant::kObjectOnly:
      return "ObjectAff";
    case Variant::kTaskObject:
      return "Task+ObjectAff";
  }
  return "?";
}

sched::Policy policy_for(Variant v) {
  sched::Policy p;
  p.honor_affinity = v != Variant::kBase;
  return p;
}

namespace {

/// Generate a well-conditioned SPD matrix in column-major order:
/// A = B·Bᵀ + n·I with B uniform in [0,1).
std::vector<double> make_spd(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n) * n);
  for (auto& x : b) x = rng.next_double();
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double s = 0.0;
      for (int k = 0; k < n; ++k) {
        s += b[static_cast<std::size_t>(i) * n + k] *
             b[static_cast<std::size_t>(j) * n + k];
      }
      if (i == j) s += n;
      a[static_cast<std::size_t>(j) * n + i] = s;  // column j, row i
      a[static_cast<std::size_t>(i) * n + j] = s;
    }
  }
  return a;
}

/// Shared state of one factorization run (the COOL "program globals").
struct App {
  Runtime* rt = nullptr;
  Config cfg;
  int n = 0;
  std::vector<double*> col;     ///< col[j]: n doubles, page-aligned.
  std::deque<Mutex> mu;         ///< Per-column monitor (mutex functions).
  std::vector<int> pending;     ///< Updates still owed to each column.
  TaskGroup group;              ///< The waitfor scope for the whole factor.

  Affinity update_affinity(int dst, int src) const {
    switch (cfg.variant) {
      case Variant::kBase:
        return Affinity::none();
      case Variant::kObjectOnly:
        return Affinity::object(col[static_cast<std::size_t>(dst)]);
      case Variant::kTaskObject:
        return Affinity::task_object(col[static_cast<std::size_t>(src)],
                                     col[static_cast<std::size_t>(dst)]);
    }
    return Affinity::none();
  }
};

TaskFn update_col(App* a, int dst, int src);

/// "Column j is ready": scale it by its diagonal, then produce the updates it
/// owes to every column on its right (the paper's CompletePanel analogue).
TaskFn complete_col(App* a, int j) {
  auto& c = co_await self();
  const int n = a->n;
  double* cj = a->col[static_cast<std::size_t>(j)];

  c.update(&cj[j], static_cast<std::size_t>(n - j) * sizeof(double));
  const double d = std::sqrt(cj[j]);
  cj[j] = d;
  for (int i = j + 1; i < n; ++i) cj[i] /= d;
  c.work(static_cast<std::uint64_t>(n - j) * 10);  // sqrt + divide per element

  for (int k = j + 1; k < n; ++k) {
    c.spawn(a->update_affinity(k, j), a->group, update_col(a, k, j));
  }
}

/// cmod(dst, src): dst -= L[dst][src] * src  (rows dst..n). A COOL
/// `parallel mutex` function on the destination column.
TaskFn update_col(App* a, int dst, int src) {
  auto& c = co_await self();
  auto g = co_await c.lock(a->mu[static_cast<std::size_t>(dst)]);
  const int n = a->n;
  double* s = a->col[static_cast<std::size_t>(src)];
  double* d = a->col[static_cast<std::size_t>(dst)];
  const std::size_t len = static_cast<std::size_t>(n - dst) * sizeof(double);

  c.read(&s[dst], len);
  c.update(&d[dst], len);
  const double m = s[dst];
  for (int i = dst; i < n; ++i) d[i] -= m * s[i];
  c.work(static_cast<std::uint64_t>(n - dst) * 8);  // multiply-add per element

  if (--a->pending[static_cast<std::size_t>(dst)] == 0) {
    c.spawn(Affinity::object(d), a->group, complete_col(a, dst));
  }
}

TaskFn root_task(App* a) {
  auto& c = co_await self();
  c.spawn(Affinity::object(a->col[0]), a->group, complete_col(a, 0));
  co_await c.wait(a->group);
}

double residual_of(const std::vector<double>& a_orig,
                   const std::vector<double>& l_cols, int n) {
  // max_{i>=j} | A[i][j] - sum_k L[i][k] L[j][k] |
  double worst = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double s = 0.0;
      for (int k = 0; k <= j; ++k) {
        s += l_cols[static_cast<std::size_t>(k) * n + i] *
             l_cols[static_cast<std::size_t>(k) * n + j];
      }
      const double diff =
          std::fabs(a_orig[static_cast<std::size_t>(j) * n + i] - s);
      worst = std::max(worst, diff);
    }
  }
  return worst;
}

}  // namespace

Result run(Runtime& rt, const Config& cfg) {
  COOL_CHECK(cfg.n >= 2, "gauss: matrix must be at least 2x2");
  const int n = cfg.n;
  const auto a_orig = make_spd(n, cfg.seed);

  App app;
  app.rt = &rt;
  app.cfg = cfg;
  app.n = n;
  app.col.resize(static_cast<std::size_t>(n));
  app.pending.assign(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    // Each column on its own page(s); distributed round-robin like the
    // paper's column distribution, or all on processor 0 when disabled.
    const std::int64_t home = cfg.distribute ? j : 0;
    app.col[static_cast<std::size_t>(j)] =
        rt.alloc_array<double>(static_cast<std::size_t>(n), home);
    for (int i = 0; i < n; ++i) {
      app.col[static_cast<std::size_t>(j)][i] =
          a_orig[static_cast<std::size_t>(j) * n + i];
    }
    app.pending[static_cast<std::size_t>(j)] = j;
  }
  for (int j = 0; j < n; ++j) app.mu.emplace_back();

  {
    char name[24];
    for (int j = 0; j < n; ++j) {
      std::snprintf(name, sizeof name, "col[%d]", j);
      rt.profile_register(name, app.col[static_cast<std::size_t>(j)],
                          static_cast<std::size_t>(n) * sizeof(double));
    }
  }

  rt.run(root_task(&app));

  // Gather L back into a dense buffer for validation (zero the upper part).
  std::vector<double> l(static_cast<std::size_t>(n) * n, 0.0);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      l[static_cast<std::size_t>(j) * n + i] =
          app.col[static_cast<std::size_t>(j)][i];
    }
  }

  Result res;
  res.residual = residual_of(a_orig, l, n);
  double checksum = 0.0;
  for (int j = 0; j < n; ++j) {
    checksum += l[static_cast<std::size_t>(j) * n + j];
  }
  res.run = collect(rt, checksum);
  return res;
}

double serial_residual(const Config& cfg) {
  const int n = cfg.n;
  auto a = make_spd(n, cfg.seed);
  const auto a_orig = a;
  // Plain column Cholesky, in place (columns of the lower triangle).
  for (int j = 0; j < n; ++j) {
    double& diag = a[static_cast<std::size_t>(j) * n + j];
    diag = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      a[static_cast<std::size_t>(j) * n + i] /= diag;
    }
    for (int k = j + 1; k < n; ++k) {
      const double m = a[static_cast<std::size_t>(j) * n + k];
      for (int i = k; i < n; ++i) {
        a[static_cast<std::size_t>(k) * n + i] -=
            m * a[static_cast<std::size_t>(j) * n + i];
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < j; ++i) a[static_cast<std::size_t>(j) * n + i] = 0.0;
  }
  return residual_of(a_orig, a, n);
}

}  // namespace cool::apps::gauss
