// Column-oriented Gaussian elimination / dense column Cholesky — the paper's
// running example for composing affinity hints (Figure 3):
//
//   parallel mutex void update (column* src)
//     [ affinity (src, TASK); affinity (this, OBJECT) ];
//
// A task updates a destination column using a completed source column.
// Memory locality is exploited on the destination column (OBJECT affinity:
// the task runs where the destination column is homed; columns are
// distributed round-robin for load balance), while cache locality is
// exploited on the source column (TASK affinity: updates sharing a source
// run back-to-back so the source stays in the cache).
//
// We factor a dense SPD matrix A into L·Lᵀ column by column; column updates
// with a completed source commute, so the dataflow is exactly the paper's:
// a column that has received all updates from its left is "completed"
// (scaled by its diagonal) and then spawns updates to every column on its
// right.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"

namespace cool::apps::gauss {

enum class Variant {
  kBase,        ///< Locality-blind round-robin scheduling.
  kObjectOnly,  ///< OBJECT affinity on the destination column only.
  kTaskObject,  ///< Figure 3: TASK on source + OBJECT on destination.
};

const char* variant_name(Variant v);

struct Config {
  int n = 320;                ///< Matrix dimension (one column per task set).
  Variant variant = Variant::kTaskObject;
  bool distribute = true;     ///< Round-robin column distribution.
  std::uint64_t seed = 1;     ///< SPD matrix generator seed.
};

struct Result {
  apps::RunResult run;
  double residual = 0.0;  ///< max |A - L·Lᵀ| over all entries.
};

/// Scheduler policy matching the variant (Base disables affinity hints).
sched::Policy policy_for(Variant v);

/// Factor a generated SPD matrix under `cfg` using `rt`; validates L·Lᵀ = A.
Result run(Runtime& rt, const Config& cfg);

/// Serial reference: plain column Cholesky of the same generated matrix;
/// returns the max residual (used by tests to validate the generator/math).
double serial_residual(const Config& cfg);

}  // namespace cool::apps::gauss
