// txn — a TPC-C-new-order-style transactional serving workload.
//
// The SPLASH case studies are batch programs; this app is the repo's first
// *server*: requests arrive on an open-loop trace (src/load) and each one
// executes a new-order-shaped transaction against warehouse state held in
// COOL objects:
//
//   warehouse w  ->  districts (w,0..D-1), each owning
//                      a header page   { next_o_id, ytd_qty }
//                      a stock slice   int64 stock[items]
//
// A request picks a warehouse by Zipf(theta) rank (rank 0 is the hot
// warehouse), a district uniformly, then under the district's monitor reads
// the item catalog, decrements `lines` stock slots, and bumps the order
// counter — the classic read-catalog / update-stock / insert-order shape.
// Processor 0 is the front-end (the admission pump occupies it for the whole
// trace); every district's pages are homed on one of the P-1 serving
// processors (warehouse w lives on 1 + w mod (P-1)) and requests carry
// OBJECT affinity on the district's stock, so Zipf skew over warehouses
// becomes *processor* skew the profiler, the balancers, and the adaptive
// engine's latency objective can all see and act on. With hints off the
// requests are placement-blind.
//
// All randomness (arrival stamps, warehouse/district/item picks) is drawn
// up front from seeded PRNGs, so a run is a pure function of its Config.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"
#include "load/arrivals.hpp"
#include "load/driver.hpp"
#include "obs/latency_hist.hpp"

namespace cool::apps::txn {

struct Config {
  int warehouses = 8;
  int districts = 4;   ///< Per warehouse.
  int items = 64;      ///< Stock slots per district.
  int lines = 4;       ///< Order lines per request.
  double theta = 0.0;  ///< Zipf skew over warehouses (0 = uniform).
  bool hints = true;   ///< OBJECT affinity on the district's stock.
  std::uint64_t think_cycles = 200;  ///< Pure compute per request.
  std::uint64_t admit_epoch_cycles = 500;  ///< Admission batch window.
  /// Measurement interval start (simulated cycle): requests arriving before
  /// it are served but excluded from Result::latency, TPC-ramp style.
  std::uint64_t measure_from_cycles = 0;
  load::ArrivalConfig arrivals;  ///< Open-loop trace (rate, kind, seed, n).
  std::uint64_t key_seed = 0xc001;  ///< Warehouse/district/item pick stream.
};

struct Result {
  apps::RunResult run;
  obs::LatencyHist latency;       ///< Per-request latency (cycles).
  load::AdmissionLedger ledger;   ///< generated / admitted / completed.
  std::vector<std::uint64_t> inflight;  ///< Per-admission-epoch in-flight.
  std::uint64_t last_arrival = 0;
  std::uint64_t served_in_window = 0;  ///< Completions before last arrival.
  std::uint64_t orders = 0;       ///< Sum of district order counters.
  std::uint64_t stock_moved = 0;  ///< Total quantity decremented (checksum).
  std::uint64_t hot_requests = 0; ///< Requests that hit warehouse rank 0.

  /// Offered load over the arrival window, requests per kcycle.
  [[nodiscard]] double offered_per_kcycle() const;
  /// Serving throughput inside the arrival window, requests per kcycle.
  [[nodiscard]] double served_per_kcycle() const;
  /// served/offered ratio in the window: ~1 below saturation, <1 past it.
  [[nodiscard]] double served_ratio() const;
};

/// Default serving policy (affinity honored; balancer = caller's choice).
sched::Policy policy_for(const Config& cfg);

/// Run the serving trace to completion under `cfg`. Verifies admission
/// conservation (cool-check ledger) and stock conservation before returning.
Result run(Runtime& rt, const Config& cfg);

}  // namespace cool::apps::txn
