#include "apps/txn/txn.hpp"

#include <cstdio>
#include <deque>

#include "adaptive/engine.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "load/zipf.hpp"

namespace cool::apps::txn {

namespace {

constexpr std::int64_t kInitStock = 1 << 20;  ///< Never decrements below 0.
constexpr std::size_t kOrderLog = 64;         ///< Per-district order ring.

/// One precomputed request: all randomness is drawn before the run starts.
struct Req {
  std::uint16_t wh = 0;
  std::uint16_t dist = 0;
};

/// One district's simulated state (pages homed on the warehouse's home).
struct District {
  std::uint64_t* hdr = nullptr;    ///< [0] next_o_id, [1] ytd quantity.
  std::int64_t* stock = nullptr;   ///< `items` slots.
  std::uint64_t* olog = nullptr;   ///< kOrderLog order-id ring.
};

struct App {
  Runtime* rt = nullptr;
  Config cfg;
  std::vector<District> dist;      ///< warehouses * districts, row-major.
  std::deque<Mutex> mu;            ///< One monitor per district.
  std::int64_t* price = nullptr;   ///< Read-only item catalog (items slots).
  std::vector<Req> req;
  std::vector<std::uint16_t> line_item;  ///< req * lines, flattened.
  std::vector<std::uint8_t> line_qty;    ///< req * lines, flattened.
  load::Driver* driver = nullptr;

  [[nodiscard]] std::size_t dix(std::size_t wh, std::size_t d) const {
    return wh * static_cast<std::size_t>(cfg.districts) + d;
  }
};

/// The new-order transaction body: catalog reads, stock decrements, order
/// counter bump and order-log insert, all under the district monitor.
TaskFn new_order(App* a, std::uint32_t id) {
  auto& c = co_await self();
  const Req& r = a->req[id];
  const std::size_t di = a->dix(r.wh, r.dist);
  District& d = a->dist[di];
  const int lines = a->cfg.lines;
  {
    auto g = co_await c.lock(a->mu[di]);
    std::uint64_t total_qty = 0;
    for (int l = 0; l < lines; ++l) {
      const std::size_t k = static_cast<std::size_t>(id) * lines + l;
      const std::uint16_t item = a->line_item[k];
      const std::uint8_t qty = a->line_qty[k];
      c.read(&a->price[item], sizeof(std::int64_t));
      c.update(&d.stock[item], sizeof(std::int64_t));
      d.stock[item] -= qty;
      total_qty += qty;
    }
    c.update(d.hdr, 2 * sizeof(std::uint64_t));
    const std::uint64_t oid = d.hdr[0]++;
    d.hdr[1] += total_qty;
    c.write(&d.olog[oid % kOrderLog], sizeof(std::uint64_t));
    d.olog[oid % kOrderLog] = id;
  }
  // Post-commit work (pricing, response marshalling) runs outside the
  // monitor: it consumes the serving processor but not the district lock,
  // so the hot-warehouse bottleneck is the processor, not the monitor —
  // exactly the imbalance the balancers and the latency objective target.
  c.work(a->cfg.think_cycles);
  a->driver->complete(id, c.now());
}

}  // namespace

sched::Policy policy_for(const Config& cfg) {
  sched::Policy p;
  p.honor_affinity = cfg.hints;
  // Processor 0 is the front-end (see run()): the pump occupies it without
  // sitting in its queue, so by queue length it looks idle. Keep the
  // Reserve balancer from redirecting hot-key requests onto it — they would
  // time-share with admission and stretch the whole trace. On a
  // single-processor machine the mask covers every member and is ignored.
  p.reserve_exclude_mask = 1;
  return p;
}

double Result::offered_per_kcycle() const {
  return last_arrival == 0 ? 0.0
                           : 1000.0 * static_cast<double>(ledger.generated) /
                                 static_cast<double>(last_arrival);
}

double Result::served_per_kcycle() const {
  return last_arrival == 0 ? 0.0
                           : 1000.0 * static_cast<double>(served_in_window) /
                                 static_cast<double>(last_arrival);
}

double Result::served_ratio() const {
  return ledger.generated == 0
             ? 0.0
             : static_cast<double>(served_in_window) /
                   static_cast<double>(ledger.generated);
}

Result run(Runtime& rt, const Config& cfg) {
  COOL_CHECK(cfg.warehouses >= 1 && cfg.districts >= 1, "txn: empty machine");
  COOL_CHECK(cfg.items >= 1 && cfg.lines >= 1, "txn: empty transaction");
  COOL_CHECK(cfg.arrivals.n_requests > 0, "txn: empty arrival trace");
  const auto P = static_cast<std::size_t>(rt.machine().n_procs);

  App app;
  app.rt = &rt;
  app.cfg = cfg;
  const auto n_dist =
      static_cast<std::size_t>(cfg.warehouses) * cfg.districts;
  app.dist.resize(n_dist);
  for (std::size_t i = 0; i < n_dist; ++i) app.mu.emplace_back();

  // Processor 0 is the front-end: the admission pump occupies it for the
  // whole trace, so districts are homed on the remaining P-1 serving
  // processors (warehouse w lives on 1 + w mod (P-1)) and warehouse skew is
  // serving-processor skew. The read-only item catalog stays with the
  // front-end. With a single processor everything degenerates onto it.
  app.price = rt.alloc_array<std::int64_t>(
      static_cast<std::size_t>(cfg.items), 0);
  for (int i = 0; i < cfg.items; ++i) app.price[i] = 100 + i;
  {
    char name[32];
    for (int w = 0; w < cfg.warehouses; ++w) {
      const auto home = static_cast<std::int64_t>(
          P > 1 ? 1 + static_cast<std::size_t>(w) % (P - 1) : 0);
      for (int d = 0; d < cfg.districts; ++d) {
        District& dd = app.dist[app.dix(static_cast<std::size_t>(w),
                                        static_cast<std::size_t>(d))];
        dd.hdr = rt.alloc_array<std::uint64_t>(2, home);
        dd.stock = rt.alloc_array<std::int64_t>(
            static_cast<std::size_t>(cfg.items), home);
        dd.olog = rt.alloc_array<std::uint64_t>(kOrderLog, home);
        dd.hdr[0] = 0;
        dd.hdr[1] = 0;
        for (int i = 0; i < cfg.items; ++i) dd.stock[i] = kInitStock;
        std::snprintf(name, sizeof name, "wh%d.d%d.stock", w, d);
        rt.profile_register(
            name, dd.stock,
            static_cast<std::size_t>(cfg.items) * sizeof(std::int64_t));
      }
    }
  }

  // Draw every random pick up front: the run is a pure function of Config.
  const std::uint64_t n = cfg.arrivals.n_requests;
  util::Rng keys(cfg.key_seed);
  const load::ZipfSampler zipf(static_cast<std::size_t>(cfg.warehouses),
                               cfg.theta);
  app.req.resize(n);
  app.line_item.resize(n * static_cast<std::size_t>(cfg.lines));
  app.line_qty.resize(n * static_cast<std::size_t>(cfg.lines));
  std::uint64_t expected_qty = 0;
  std::uint64_t hot = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    Req& r = app.req[i];
    r.wh = static_cast<std::uint16_t>(zipf.sample(keys));
    r.dist = static_cast<std::uint16_t>(
        keys.next_below(static_cast<std::uint64_t>(cfg.districts)));
    if (r.wh == 0) ++hot;
    for (int l = 0; l < cfg.lines; ++l) {
      const std::size_t k = i * static_cast<std::size_t>(cfg.lines) + l;
      app.line_item[k] = static_cast<std::uint16_t>(
          keys.next_below(static_cast<std::uint64_t>(cfg.items)));
      const auto qty =
          static_cast<std::uint8_t>(1 + keys.next_below(10));
      app.line_qty[k] = qty;
      expected_qty += qty;
    }
  }

  load::Driver driver(load::generate_arrivals(cfg.arrivals),
                      {.epoch_cycles = cfg.admit_epoch_cycles,
                       .measure_from_cycles = cfg.measure_from_cycles});
  app.driver = &driver;

  // First latency-objective feed: the adaptive engine snapshots the request
  // histogram each epoch and reads p99 deltas against its target.
  adaptive::AdaptiveEngine* eng = rt.adaptive_engine();
  if (eng != nullptr) {
    eng->set_latency_sensor([&driver] { return driver.latency(); });
  }

  rt.run(driver.pump(
      [&app](std::uint32_t id) {
        if (!app.cfg.hints) return Affinity::none();
        const Req& r = app.req[id];
        return Affinity::object(app.dist[app.dix(r.wh, r.dist)].stock);
      },
      [&app](std::uint32_t id, std::uint64_t /*arrival*/) {
        return new_order(&app, id);
      }));

  if (eng != nullptr) eng->set_latency_sensor(nullptr);

  // Conservation: cool-check's admission ledger, then the stock ledger.
  driver.verify();
  std::uint64_t orders = 0;
  std::uint64_t moved = 0;
  for (const District& d : app.dist) {
    orders += d.hdr[0];
    moved += d.hdr[1];
    std::int64_t decremented = 0;
    for (int i = 0; i < cfg.items; ++i) decremented += kInitStock - d.stock[i];
    COOL_CHECK(decremented == static_cast<std::int64_t>(d.hdr[1]),
               "txn: district stock moved disagrees with its ytd counter");
  }
  COOL_CHECK(orders == n, "txn: order count disagrees with requests run");
  COOL_CHECK(moved == expected_qty,
             "txn: stock moved disagrees with the generated order lines");

  Result res;
  res.latency = driver.measured_latency();
  res.ledger = driver.ledger();
  res.inflight = driver.inflight_samples();
  res.last_arrival = driver.last_arrival();
  res.served_in_window = driver.served_in_window();
  res.orders = orders;
  res.stock_moved = moved;
  res.hot_requests = hot;
  res.run = collect(rt, static_cast<double>(moved));
  return res;
}

}  // namespace cool::apps::txn
