#include "apps/common/harness.hpp"

namespace cool::apps {

RunResult collect(const Runtime& rt, double checksum) {
  RunResult r;
  r.sim_cycles = rt.sim_time();
  r.tasks = rt.tasks_completed();
  if (const auto* mon = rt.monitor()) r.mem = mon->total();
  r.sched = rt.sched_stats();
  r.obs = rt.obs_snapshot();
  r.checksum = checksum;
  if (const auto* rd = rt.race_detector()) r.races = rd->total();
  if (r.sched.spawned > 0) {
    r.placement_adherence =
        1.0 - static_cast<double>(r.sched.tasks_stolen) /
                  static_cast<double>(r.sched.spawned);
  }
  return r;
}

std::vector<std::uint32_t> proc_series(std::uint32_t max_procs) {
  std::vector<std::uint32_t> ps;
  for (std::uint32_t p : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 48u, 64u}) {
    if (p <= max_procs) ps.push_back(p);
  }
  if (ps.empty() || ps.back() != max_procs) ps.push_back(max_procs);
  return ps;
}

}  // namespace cool::apps
