// Shared experiment harness for the SPLASH-like case studies.
//
// Every application in apps/ exposes a Config (problem + scheduling variant)
// and a run() returning RunResult; the figure benchmarks sweep processor
// counts and variants through these helpers and print the paper's series.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/cool.hpp"
#include "obs/metrics.hpp"

namespace cool::apps {

/// What a single simulated execution produced.
struct RunResult {
  std::uint64_t sim_cycles = 0;       ///< Parallel completion time.
  std::uint64_t tasks = 0;            ///< Tasks executed.
  mem::ProcCounters mem;              ///< Aggregated performance-monitor counters.
  sched::SchedStats sched;            ///< Scheduler statistics.
  double checksum = 0.0;              ///< Application-defined result digest.
  double placement_adherence = 0.0;   ///< Fraction of tasks run un-stolen.
  obs::Snapshot obs;                  ///< Full metrics snapshot of the run.
  /// Distinct races found by --race-check (0 when the detector is off).
  std::uint64_t races = 0;
};

/// Collect the standard result block from a finished runtime.
RunResult collect(const Runtime& rt, double checksum);

/// Speedup of `cycles` relative to `serial_cycles`.
inline double speedup(std::uint64_t serial_cycles, std::uint64_t cycles) {
  return cycles == 0 ? 0.0
                     : static_cast<double>(serial_cycles) /
                           static_cast<double>(cycles);
}

/// The processor counts the paper plots (up to `max_procs`).
std::vector<std::uint32_t> proc_series(std::uint32_t max_procs);

/// Millions of cycles, for compact tables.
inline double mcycles(std::uint64_t c) { return static_cast<double>(c) / 1e6; }

/// Per-1000-accesses miss rate.
inline double miss_rate(const mem::ProcCounters& c) {
  return c.accesses() == 0 ? 0.0
                           : 1000.0 * static_cast<double>(c.misses()) /
                                 static_cast<double>(c.accesses());
}

/// Fraction of misses serviced locally (local memory or in-cluster cache).
inline double local_fraction(const mem::ProcCounters& c) {
  const auto m = c.misses();
  return m == 0 ? 0.0
                : static_cast<double>(c.local_misses()) /
                      static_cast<double>(m);
}

}  // namespace cool::apps
