// Unsync — seeded-race synthetic workload for the happens-before detector.
//
// Worker tasks each own a disjoint slice (race-free by construction) but all
// fold their partial sums into one shared accumulator. With
// `synchronized_run == false` the fold is a bare read-modify-write: sibling
// tasks have no happens-before edge between them, so the detector must flag
// the accumulator — deterministically, on every schedule — and attribute it
// to the registered "acc" object. With `synchronized_run == true` the fold
// runs under a Mutex and the run must report zero races; the slice traffic is
// identical either way, so the pair doubles as a false-positive regression.
#pragma once

#include <cstdint>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"

namespace cool::apps::unsync {

struct Config {
  int tasks = 8;             ///< Worker tasks (>= 2 for the race to exist).
  int rounds = 4;            ///< Fold iterations per worker.
  std::size_t slice_kb = 4;  ///< Private slice per worker.
  bool synchronized_run = false;  ///< Guard the accumulator with a Mutex.
};

struct Result {
  apps::RunResult run;
  double checksum = 0.0;
};

Result run(Runtime& rt, const Config& cfg);

}  // namespace cool::apps::unsync
