#include "apps/synth/unsync.hpp"

namespace cool::apps::unsync {

namespace {

struct App {
  Config cfg;
  double* acc = nullptr;     ///< Shared accumulator — the seeded race.
  double* slices = nullptr;  ///< Disjoint per-worker slices — race-free.
  std::size_t slice_len = 0;
  Mutex mu;
};

TaskFn worker(App* a, int id) {
  auto& c = co_await self();
  double* mine = a->slices + static_cast<std::size_t>(id) * a->slice_len;
  for (int r = 0; r < a->cfg.rounds; ++r) {
    c.read(mine, a->slice_len * sizeof(double));
    double sum = 0.0;
    for (std::size_t k = 0; k < a->slice_len; k += 8) sum += mine[k];
    if (a->cfg.synchronized_run) {
      auto g = co_await c.lock(a->mu);
      c.update(a->acc, sizeof(double));
      a->acc[0] += sum;
    } else {
      // Deliberately unsynchronized: siblings carry no happens-before edge,
      // so every pair of workers races on these bytes.
      c.update(a->acc, sizeof(double));
      a->acc[0] += sum;
    }
    co_await c.yield();
  }
}

TaskFn root_task(App* a) {
  auto& c = co_await self();
  TaskGroup waitfor;
  for (int i = 0; i < a->cfg.tasks; ++i) {
    // TASK affinity on the accumulator: the reports should name the hint and
    // the set, exercising attribution end to end.
    c.spawn(Affinity::task(a->acc), waitfor, worker(a, i));
  }
  co_await c.wait(waitfor);
}

}  // namespace

Result run(Runtime& rt, const Config& cfg) {
  COOL_CHECK(cfg.tasks >= 2, "unsync: need at least two workers to race");
  COOL_CHECK(cfg.rounds >= 1 && cfg.slice_kb >= 1, "unsync: empty workload");
  App app;
  app.cfg = cfg;
  app.slice_len = cfg.slice_kb * 1024 / sizeof(double);
  app.acc = rt.alloc_array<double>(1, 0);
  app.slices = rt.alloc_array<double>(
      app.slice_len * static_cast<std::size_t>(cfg.tasks), -1);
  for (std::size_t k = 0;
       k < app.slice_len * static_cast<std::size_t>(cfg.tasks); ++k) {
    app.slices[k] = static_cast<double>(k % 11);
  }
  app.acc[0] = 0.0;
  rt.profile_register("acc", app.acc, sizeof(double));
  rt.profile_register("slices", app.slices,
                      app.slice_len * static_cast<std::size_t>(cfg.tasks) *
                          sizeof(double));

  rt.run(root_task(&app));

  Result res;
  res.checksum = app.acc[0];
  res.run = collect(rt, res.checksum);
  return res;
}

}  // namespace cool::apps::unsync
