#include "apps/synth/multiobj.hpp"

namespace cool::apps::multiobj {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kFirstObject:
      return "first-object";
    case Strategy::kWeighted:
      return "size-weighted";
    case Strategy::kWeightedPrefetch:
      return "weighted+prefetch";
  }
  return "?";
}

sched::Policy policy_for(Strategy s) {
  sched::Policy p;
  p.multi_object_placement = s != Strategy::kFirstObject;
  p.prefetch_objects = s == Strategy::kWeightedPrefetch;
  return p;
}

namespace {

struct App {
  Config cfg;
  std::vector<double*> small_obj;
  std::vector<double*> large_obj;
  std::size_t small_len = 0;
  std::size_t large_len = 0;
};

TaskFn pair_task(App* a, int i) {
  auto& c = co_await self();
  double* s = a->small_obj[static_cast<std::size_t>(i)];
  double* l = a->large_obj[static_cast<std::size_t>(i)];
  c.read(s, a->small_len * sizeof(double));
  c.read(l, a->large_len * sizeof(double));
  double acc = 0.0;
  for (std::size_t k = 0; k < a->small_len; k += 16) acc += s[k];
  for (std::size_t k = 0; k < a->large_len; k += 16) acc += l[k];
  s[0] = acc;
  c.write(s, sizeof(double));
  c.work((a->small_len + a->large_len) * 2);
}

TaskFn root_task(App* a) {
  auto& c = co_await self();
  TaskGroup waitfor;
  for (int k = 0; k < a->cfg.tasks_per_pair; ++k) {
    for (int i = 0; i < a->cfg.pairs; ++i) {
      // The small object is listed first — the paper's fallback follows it;
      // the §8 heuristic follows the bytes.
      const Affinity aff = Affinity::objects(
          {Affinity::ref(a->small_obj[static_cast<std::size_t>(i)],
                         a->small_len * sizeof(double)),
           Affinity::ref(a->large_obj[static_cast<std::size_t>(i)],
                         a->large_len * sizeof(double))});
      c.spawn(aff, waitfor, pair_task(a, i));
    }
  }
  co_await c.wait(waitfor);
}

}  // namespace

Result run(Runtime& rt, const Config& cfg) {
  COOL_CHECK(cfg.pairs >= 1 && cfg.tasks_per_pair >= 1, "multiobj: empty");
  const auto P = rt.machine().n_procs;
  App app;
  app.cfg = cfg;
  app.small_len = cfg.small_kb * 1024 / sizeof(double);
  app.large_len = cfg.large_kb * 1024 / sizeof(double);
  for (int i = 0; i < cfg.pairs; ++i) {
    // Deliberately home the pair's halves on different processors.
    app.small_obj.push_back(
        rt.alloc_array<double>(app.small_len, i % static_cast<int>(P)));
    app.large_obj.push_back(rt.alloc_array<double>(
        app.large_len, (i * 7 + 3) % static_cast<int>(P)));
    for (std::size_t k = 0; k < app.small_len; ++k) {
      app.small_obj.back()[k] = static_cast<double>(k % 13);
    }
    for (std::size_t k = 0; k < app.large_len; ++k) {
      app.large_obj.back()[k] = static_cast<double>(k % 7);
    }
  }

  rt.run(root_task(&app));

  Result res;
  for (int i = 0; i < cfg.pairs; ++i) {
    res.checksum += app.small_obj[static_cast<std::size_t>(i)][0];
  }
  res.run = collect(rt, res.checksum);
  return res;
}

}  // namespace cool::apps::multiobj
