// TaskMix — synthetic workload for microbenchmarking the affinity-hint
// taxonomy (Table 1) and the scheduler's queue structure (§5 ablations).
//
// M page-aligned objects are distributed round-robin; K tasks per object
// each read the whole object. Spawns are *interleaved* across objects
// (object varies fastest), so consecutive arrivals at a server belong to
// different task-affinity sets — exactly the situation the per-server array
// of task-affinity queues exists to untangle: grouping the sets restores
// back-to-back execution and cache reuse; collisions (small arrays) degrade
// toward FIFO interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"

namespace cool::apps::taskmix {

enum class Hint {
  kNone,
  kSimple,      ///< affinity(obj) — simple/default affinity.
  kTask,        ///< affinity(obj, TASK)
  kObject,      ///< affinity(obj, OBJECT)
  kTaskObject,  ///< both
  kProcessor,   ///< affinity(i, PROCESSOR)
};

const char* hint_name(Hint h);

struct Config {
  int objects = 64;
  std::size_t obj_kb = 16;
  int tasks_per_obj = 8;
  Hint hint = Hint::kTaskObject;
  bool interleave = true;  ///< false = spawn object-major (naturally grouped).
};

struct Result {
  apps::RunResult run;
  double l1_hit_rate = 0.0;    ///< Fraction of accesses hitting L1.
  double checksum = 0.0;
};

Result run(Runtime& rt, const Config& cfg);

}  // namespace cool::apps::taskmix
