#include "apps/synth/taskmix.hpp"

#include <cstdio>

namespace cool::apps::taskmix {

const char* hint_name(Hint h) {
  switch (h) {
    case Hint::kNone:
      return "(no hint)";
    case Hint::kSimple:
      return "affinity(obj)";
    case Hint::kTask:
      return "affinity(obj,TASK)";
    case Hint::kObject:
      return "affinity(obj,OBJECT)";
    case Hint::kTaskObject:
      return "TASK+OBJECT";
    case Hint::kProcessor:
      return "affinity(n,PROCESSOR)";
  }
  return "?";
}

namespace {

struct App {
  Config cfg;
  std::vector<double*> obj;
  std::size_t obj_doubles = 0;
  std::uint32_t procs = 0;
};

TaskFn touch_task(App* a, int o) {
  auto& c = co_await self();
  double* d = a->obj[static_cast<std::size_t>(o)];
  c.read(d, a->obj_doubles * sizeof(double));
  double acc = 0.0;
  for (std::size_t i = 0; i < a->obj_doubles; i += 8) acc += d[i];
  d[0] = acc;
  c.write(d, sizeof(double));
  c.work(a->obj_doubles / 2);
}

Affinity affinity_for(const App& a, int o) {
  const void* obj = a.obj[static_cast<std::size_t>(o)];
  switch (a.cfg.hint) {
    case Hint::kNone:
      return Affinity::none();
    case Hint::kSimple:
    case Hint::kObject:
      return Affinity::object(obj);
    case Hint::kTask:
      return Affinity::task(obj);
    case Hint::kTaskObject:
      return Affinity::task_object(obj, obj);
    case Hint::kProcessor:
      return Affinity::processor(o % static_cast<int>(a.procs));
  }
  return Affinity::none();
}

TaskFn root_task(App* a) {
  auto& c = co_await self();
  TaskGroup waitfor;
  const int M = a->cfg.objects;
  const int K = a->cfg.tasks_per_obj;
  if (a->cfg.interleave) {
    for (int k = 0; k < K; ++k) {
      for (int o = 0; o < M; ++o) {
        c.spawn(affinity_for(*a, o), waitfor, touch_task(a, o));
      }
    }
  } else {
    for (int o = 0; o < M; ++o) {
      for (int k = 0; k < K; ++k) {
        c.spawn(affinity_for(*a, o), waitfor, touch_task(a, o));
      }
    }
  }
  co_await c.wait(waitfor);
}

}  // namespace

Result run(Runtime& rt, const Config& cfg) {
  COOL_CHECK(cfg.objects >= 1 && cfg.tasks_per_obj >= 1, "taskmix: empty");
  COOL_CHECK(cfg.obj_kb >= 1, "taskmix: object too small");
  App app;
  app.cfg = cfg;
  app.procs = rt.machine().n_procs;
  app.obj_doubles = cfg.obj_kb * 1024 / sizeof(double);
  for (int o = 0; o < cfg.objects; ++o) {
    app.obj.push_back(rt.alloc_array<double>(app.obj_doubles, o));
    for (std::size_t i = 0; i < app.obj_doubles; ++i) {
      app.obj.back()[i] = static_cast<double>((o + 1) * 3 + i % 17);
    }
    char name[24];
    std::snprintf(name, sizeof name, "obj[%d]", o);
    rt.profile_register(name, app.obj.back(),
                        app.obj_doubles * sizeof(double));
  }

  rt.run(root_task(&app));

  Result res;
  for (int o = 0; o < cfg.objects; ++o) {
    res.checksum += app.obj[static_cast<std::size_t>(o)][0];
  }
  res.run = collect(rt, res.checksum);
  const auto& mem = res.run.mem;
  if (mem.accesses() > 0) {
    res.l1_hit_rate =
        static_cast<double>(
            mem.serviced[static_cast<int>(mem::Service::kL1Hit)]) /
        static_cast<double>(mem.accesses());
  }
  return res;
}

}  // namespace cool::apps::taskmix
