// MultiObj — synthetic workload for the paper's §8 multi-object affinity
// extension ("schedule the task on the processor that has the most objects in
// its local memory, while prefetching the remaining objects").
//
// Each task reads two objects homed on *different* processors: a small one
// (listed first in the affinity, the way a program might order arguments) and
// a large one. The paper's fallback places the task with the first-listed
// (small) object; the size-weighted heuristic places it with the larger one;
// prefetching then hides the fetch of whatever stayed remote.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"

namespace cool::apps::multiobj {

enum class Strategy {
  kFirstObject,       ///< Paper's current behaviour: first-listed object wins.
  kWeighted,          ///< §8 heuristic: most bytes local wins.
  kWeightedPrefetch,  ///< + prefetch the remaining objects at dispatch.
};

const char* strategy_name(Strategy s);

struct Config {
  int pairs = 64;            ///< Object pairs (one task set each).
  std::size_t small_kb = 8;  ///< First-listed object.
  std::size_t large_kb = 32; ///< Second-listed object.
  int tasks_per_pair = 4;
  Strategy strategy = Strategy::kWeighted;
};

struct Result {
  apps::RunResult run;
  double checksum = 0.0;
};

sched::Policy policy_for(Strategy s);

Result run(Runtime& rt, const Config& cfg);

}  // namespace cool::apps::multiobj
