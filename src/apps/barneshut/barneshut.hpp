// Barnes-Hut — hierarchical N-body simulation (paper §6.4, Figure 16a).
//
// Bodies are drawn from a Plummer-like distribution; each timestep rebuilds
// an octree, computes forces with the θ opening criterion, and integrates
// with leapfrog. Force and integration tasks operate on contiguous *blocks*
// of bodies; the COOL version distributes the body blocks across processor
// memories and supplies OBJECT affinity on the block, so a block's forces
// are always computed where its bodies live — the tree is read-shared and
// replicates in the caches. The paper reports the COOL version performing
// close to the hand-coded ANL program with just these hints.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"

namespace cool::apps::barneshut {

enum class Variant {
  kBase,      ///< Round-robin tasks, bodies on processor 0.
  kDistrAff,  ///< Body blocks distributed + OBJECT affinity.
};

const char* variant_name(Variant v);

struct Config {
  int n_bodies = 2048;
  int block_size = 64;    ///< Bodies per task.
  int steps = 2;
  double theta = 0.5;     ///< Opening criterion.
  double dt = 0.01;
  double eps = 0.05;      ///< Softening.
  Variant variant = Variant::kDistrAff;
  std::uint64_t seed = 11;
};

struct Result {
  apps::RunResult run;
  double energy = 0.0;           ///< Kinetic energy after the last step.
  double max_force_error = 0.0;  ///< Max relative error of tree forces vs.
                                 ///< direct summation (sampled bodies,
                                 ///< first step).
};

sched::Policy policy_for(Variant v);

Result run(Runtime& rt, const Config& cfg);

}  // namespace cool::apps::barneshut
