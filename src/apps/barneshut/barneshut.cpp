#include "apps/barneshut/barneshut.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace cool::apps::barneshut {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBase:
      return "Base";
    case Variant::kDistrAff:
      return "Distr+Aff";
  }
  return "?";
}

sched::Policy policy_for(Variant v) {
  sched::Policy p;
  p.honor_affinity = v == Variant::kDistrAff;
  return p;
}

namespace {

struct Body {
  double pos[3];
  double vel[3];
  double acc[3];
  double mass;
};

constexpr int kLeafCap = 16;  // keeps the tree compact enough to cache well

struct Node {
  double center[3];  ///< Cell centre.
  double half;       ///< Half side length.
  double com[3];     ///< Centre of mass.
  double mass;
  std::int32_t child[8];  ///< -1 = absent. Leaf iff n_bodies >= 0.
  std::int32_t bodies[kLeafCap];
  std::int32_t n_bodies;  ///< -1 for internal nodes.
};

struct App {
  Config cfg;
  Body* body = nullptr;
  Node* node = nullptr;  ///< Pool, reused each step.
  int node_cap = 0;
  int n_nodes = 0;
  int n_blocks = 0;

  [[nodiscard]] int block_begin(int b) const { return b * cfg.block_size; }
  [[nodiscard]] int block_end(int b) const {
    return std::min(cfg.n_bodies, (b + 1) * cfg.block_size);
  }
};

int new_node(App* a, const double center[3], double half) {
  COOL_CHECK(a->n_nodes < a->node_cap, "barneshut: node pool exhausted");
  Node& n = a->node[a->n_nodes];
  for (int d = 0; d < 3; ++d) {
    n.center[d] = center[d];
    n.com[d] = 0.0;
  }
  n.half = half;
  n.mass = 0.0;
  for (int k = 0; k < 8; ++k) n.child[k] = -1;
  n.n_bodies = 0;
  return a->n_nodes++;
}

int octant_of(const Node& n, const Body& b) {
  int oct = 0;
  for (int d = 0; d < 3; ++d) {
    if (b.pos[d] >= n.center[d]) oct |= 1 << d;
  }
  return oct;
}

void child_center(const Node& n, int oct, double out[3]) {
  for (int d = 0; d < 3; ++d) {
    out[d] = n.center[d] + ((oct >> d) & 1 ? 0.5 : -0.5) * n.half;
  }
}

void insert_body(App* a, int node_idx, int body_idx, int depth) {
  Node* n = &a->node[node_idx];
  if (n->n_bodies >= 0) {  // leaf
    if (n->n_bodies < kLeafCap || depth > 40) {
      COOL_CHECK(n->n_bodies < kLeafCap,
                 "barneshut: coincident bodies overflow a leaf");
      n->bodies[n->n_bodies++] = body_idx;
      return;
    }
    // Split: push the resident bodies down.
    std::int32_t old[kLeafCap];
    const int cnt = n->n_bodies;
    for (int i = 0; i < cnt; ++i) old[i] = n->bodies[i];
    n->n_bodies = -1;
    for (int i = 0; i < cnt; ++i) {
      // (re-fetch: new_node may reallocate nothing — pool is stable — but
      // n may have been invalidated by recursion below; re-index instead.)
      Node& nn = a->node[node_idx];
      const int oct = octant_of(nn, a->body[old[i]]);
      if (nn.child[oct] < 0) {
        double cc[3];
        child_center(nn, oct, cc);
        nn.child[oct] = new_node(a, cc, nn.half * 0.5);
      }
      insert_body(a, a->node[node_idx].child[oct], old[i], depth + 1);
    }
    // fall through to insert the new body into this (now internal) node
    n = &a->node[node_idx];
  }
  const int oct = octant_of(*n, a->body[body_idx]);
  if (n->child[oct] < 0) {
    double cc[3];
    child_center(*n, oct, cc);
    const int fresh = new_node(a, cc, n->half * 0.5);
    a->node[node_idx].child[oct] = fresh;
  }
  insert_body(a, a->node[node_idx].child[oct], body_idx, depth + 1);
}

/// Bottom-up mass/centre-of-mass summary.
void summarize(App* a, int node_idx) {
  Node& n = a->node[node_idx];
  if (n.n_bodies >= 0) {
    for (int i = 0; i < n.n_bodies; ++i) {
      const Body& b = a->body[n.bodies[i]];
      n.mass += b.mass;
      for (int d = 0; d < 3; ++d) n.com[d] += b.mass * b.pos[d];
    }
  } else {
    for (int k = 0; k < 8; ++k) {
      if (n.child[k] < 0) continue;
      summarize(a, n.child[k]);
      const Node& ch = a->node[n.child[k]];
      n.mass += ch.mass;
      for (int d = 0; d < 3; ++d) n.com[d] += ch.mass * ch.com[d];
    }
  }
  if (n.mass > 0.0) {
    for (int d = 0; d < 3; ++d) n.com[d] /= n.mass;
  }
}

void accumulate(const double from[3], const double to[3], double mass,
                double eps, double acc[3]) {
  double dx[3];
  double r2 = eps * eps;
  for (int d = 0; d < 3; ++d) {
    dx[d] = from[d] - to[d];
    r2 += dx[d] * dx[d];
  }
  const double inv = mass / (r2 * std::sqrt(r2));
  for (int d = 0; d < 3; ++d) acc[d] += inv * dx[d];
}

/// Tree-walk force on one body; each visited node is charged through the
/// memory model (the hot upper levels of the tree stay cached).
void body_force(Ctx& c, App* a, int body_idx, std::vector<int>& stack,
                double acc[3], std::uint64_t* visits) {
  const Body& b = a->body[body_idx];
  const double theta2 = a->cfg.theta * a->cfg.theta;
  acc[0] = acc[1] = acc[2] = 0.0;
  stack.clear();
  stack.push_back(0);
  while (!stack.empty()) {
    const Node& n = a->node[stack.back()];
    stack.pop_back();
    c.read(&n, sizeof(Node));
    ++*visits;
    if (n.mass <= 0.0) continue;
    if (n.n_bodies >= 0) {  // leaf: exact interactions
      for (int i = 0; i < n.n_bodies; ++i) {
        if (n.bodies[i] == body_idx) continue;
        const Body& o = a->body[n.bodies[i]];
        accumulate(o.pos, b.pos, o.mass, a->cfg.eps, acc);
      }
      continue;
    }
    double dx2 = 0.0;
    for (int d = 0; d < 3; ++d) {
      const double dd = n.com[d] - b.pos[d];
      dx2 += dd * dd;
    }
    const double size = 2.0 * n.half;
    if (size * size < theta2 * dx2) {
      accumulate(n.com, b.pos, n.mass, a->cfg.eps, acc);
    } else {
      for (int k = 0; k < 8; ++k) {
        if (n.child[k] >= 0) stack.push_back(n.child[k]);
      }
    }
  }
}

TaskFn force_block(App* a, int blk) {
  auto& c = co_await self();
  const int lo = a->block_begin(blk);
  const int hi = a->block_end(blk);
  c.read(&a->body[lo], static_cast<std::size_t>(hi - lo) * sizeof(Body));

  std::vector<int> stack;
  stack.reserve(128);
  std::uint64_t visits = 0;
  for (int i = lo; i < hi; ++i) {
    double acc[3];
    body_force(c, a, i, stack, acc, &visits);
    for (int d = 0; d < 3; ++d) a->body[i].acc[d] = acc[d];
  }
  c.work(visits * 60);  // ~15 flops per node interaction
  c.write(&a->body[lo], static_cast<std::size_t>(hi - lo) * sizeof(Body));
}

TaskFn integrate_block(App* a, int blk) {
  auto& c = co_await self();
  const int lo = a->block_begin(blk);
  const int hi = a->block_end(blk);
  c.update(&a->body[lo], static_cast<std::size_t>(hi - lo) * sizeof(Body));
  const double dt = a->cfg.dt;
  for (int i = lo; i < hi; ++i) {
    Body& b = a->body[i];
    for (int d = 0; d < 3; ++d) {
      b.vel[d] += b.acc[d] * dt;
      b.pos[d] += b.vel[d] * dt;
    }
  }
  c.work(static_cast<std::uint64_t>(hi - lo) * 12);
}

Affinity block_affinity(App* a, int blk) {
  if (a->cfg.variant == Variant::kBase) return Affinity::none();
  return Affinity::object(&a->body[a->block_begin(blk)]);
}

TaskFn root_task(App* a, double* max_err) {
  auto& c = co_await self();
  for (int s = 0; s < a->cfg.steps; ++s) {
    // (Re)build the octree — serial in the main task, like the original
    // COOL port's sequential tree build between parallel phases.
    a->n_nodes = 0;
    double lo = a->body[0].pos[0], hi = lo;
    for (int i = 0; i < a->cfg.n_bodies; ++i) {
      for (int d = 0; d < 3; ++d) {
        lo = std::min(lo, a->body[i].pos[d]);
        hi = std::max(hi, a->body[i].pos[d]);
      }
    }
    const double centre[3] = {(lo + hi) / 2, (lo + hi) / 2, (lo + hi) / 2};
    const int root = new_node(a, centre, (hi - lo) / 2 + 1e-9);
    COOL_CHECK(root == 0, "barneshut: root must be node 0");
    c.read(a->body, static_cast<std::size_t>(a->cfg.n_bodies) * sizeof(Body));
    for (int i = 0; i < a->cfg.n_bodies; ++i) insert_body(a, 0, i, 0);
    summarize(a, 0);
    // Build charge: one bulk write over the node pool plus per-insert path
    // work (the path nodes are hot in the builder's cache).
    c.write(a->node, static_cast<std::size_t>(a->n_nodes) * sizeof(Node));
    c.work(static_cast<std::uint64_t>(a->cfg.n_bodies) * 60 +
           static_cast<std::uint64_t>(a->n_nodes) * 16);

    {
      TaskGroup waitfor;
      for (int b = 0; b < a->n_blocks; ++b) {
        c.spawn(block_affinity(a, b), waitfor, force_block(a, b));
      }
      co_await c.wait(waitfor);
    }

    if (s == 0 && max_err != nullptr) {
      // Validate tree forces against direct summation for sampled bodies.
      double worst = 0.0;
      for (int i = 0; i < a->cfg.n_bodies; i += std::max(1, a->cfg.n_bodies / 32)) {
        double direct[3] = {0, 0, 0};
        const Body& b = a->body[i];
        for (int j = 0; j < a->cfg.n_bodies; ++j) {
          if (j == i) continue;
          accumulate(a->body[j].pos, b.pos, a->body[j].mass, a->cfg.eps,
                     direct);
        }
        double dnorm = 0.0, enorm = 0.0;
        for (int d = 0; d < 3; ++d) {
          dnorm += direct[d] * direct[d];
          const double e = direct[d] - b.acc[d];
          enorm += e * e;
        }
        if (dnorm > 0.0) {
          worst = std::max(worst, std::sqrt(enorm / dnorm));
        }
      }
      *max_err = worst;
    }

    {
      TaskGroup waitfor;
      for (int b = 0; b < a->n_blocks; ++b) {
        c.spawn(block_affinity(a, b), waitfor, integrate_block(a, b));
      }
      co_await c.wait(waitfor);
    }
  }
}

}  // namespace

Result run(Runtime& rt, const Config& cfg) {
  COOL_CHECK(cfg.n_bodies >= 16, "barneshut: too few bodies");
  COOL_CHECK(cfg.block_size >= 1, "barneshut: bad block size");
  const auto P = rt.machine().n_procs;

  App app;
  app.cfg = cfg;
  app.n_blocks = (cfg.n_bodies + cfg.block_size - 1) / cfg.block_size;
  app.node_cap = 4 * cfg.n_bodies + 64;

  app.body = rt.alloc_array<Body>(static_cast<std::size_t>(cfg.n_bodies), 0);
  app.node = rt.alloc_array<Node>(static_cast<std::size_t>(app.node_cap), 0);

  // Plummer-like initial conditions: bodies clustered around the centre with
  // a heavy tail, small random velocities, equal masses.
  util::Rng rng(cfg.seed);
  for (int i = 0; i < cfg.n_bodies; ++i) {
    Body& b = app.body[i];
    const double r =
        1.0 / std::sqrt(std::pow(rng.next_double() * 0.99 + 0.005, -2.0 / 3.0) -
                        1.0);
    // Random direction.
    double v[3];
    double norm = 0.0;
    for (int d = 0; d < 3; ++d) {
      v[d] = rng.next_gaussian();
      norm += v[d] * v[d];
    }
    norm = std::sqrt(norm) + 1e-12;
    for (int d = 0; d < 3; ++d) {
      b.pos[d] = r * v[d] / norm;
      b.vel[d] = 0.05 * rng.next_gaussian();
      b.acc[d] = 0.0;
    }
    b.mass = 1.0 / cfg.n_bodies;
  }

  if (cfg.variant == Variant::kDistrAff) {
    // Distribute body blocks round-robin; spread the (read-shared) tree pool
    // too so its bandwidth demand is not concentrated on one memory.
    for (int b = 0; b < app.n_blocks; ++b) {
      const int lo = app.block_begin(b);
      const int hi = app.block_end(b);
      rt.migrate(&app.body[lo], b % static_cast<int>(P),
                 static_cast<std::size_t>(hi - lo) * sizeof(Body));
    }
    const std::size_t node_bytes =
        static_cast<std::size_t>(app.node_cap) * sizeof(Node);
    const std::size_t slab = node_bytes / P + 1;
    for (std::uint32_t p = 0; p < P; ++p) {
      const std::size_t off = static_cast<std::size_t>(p) * slab;
      if (off >= node_bytes) break;
      rt.migrate(reinterpret_cast<char*>(app.node) + off, p,
                 std::min(slab, node_bytes - off));
    }
  }

  rt.profile_register("bodies", app.body,
                      static_cast<std::size_t>(cfg.n_bodies) * sizeof(Body));
  rt.profile_register("tree_nodes", app.node,
                      static_cast<std::size_t>(app.node_cap) * sizeof(Node));

  double max_err = 0.0;
  rt.run(root_task(&app, &max_err));

  Result res;
  res.max_force_error = max_err;
  for (int i = 0; i < cfg.n_bodies; ++i) {
    const Body& b = app.body[i];
    double v2 = 0.0;
    for (int d = 0; d < 3; ++d) v2 += b.vel[d] * b.vel[d];
    res.energy += 0.5 * b.mass * v2;
  }
  res.run = collect(rt, res.energy);
  return res;
}

}  // namespace cool::apps::barneshut
