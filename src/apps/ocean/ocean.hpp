// Ocean — SPLASH eddy-current simulation kernel (paper §6.1, Figure 5).
//
// The computation is a sequence of grid operations over ~a couple dozen
// n×n state grids: regular intra-grid stencils (nearest-neighbour laplacian)
// and inter-grid element-wise operations. Each grid is partitioned into a
// single array of row-strip regions processed in parallel; a waitfor closes
// each grid operation.
//
// The paper's point for Ocean: *default* affinity (each region task runs
// where its region strip is homed) plus an explicit one-time distribution of
// corresponding regions of all grids to the same local memory is enough —
// no per-task hints required. The `distribute()` member below is a direct
// transliteration of Figure 5's `migrate(region+i, i)` loop.
#pragma once

#include <cstdint>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"

namespace cool::apps::ocean {

enum class Variant {
  kBase,       ///< No distribution (all grids on processor 0's memory),
               ///< locality-blind round-robin scheduling.
  kDistrNoAff, ///< Regions distributed, but round-robin scheduling.
  kAffOnly,    ///< Default affinity honored, but no distribution (all tasks
               ///< chase processor 0 — the degenerate case the paper's
               ///< distribution step exists to avoid).
  kDistr,      ///< The COOL version: distribution + default affinity.
};

const char* variant_name(Variant v);

struct Config {
  int n = 256;              ///< Grid dimension (row = n doubles).
  int grids = 8;            ///< Number of state grids (paper: 25).
  int steps = 4;            ///< Timesteps; each runs 2 ops per grid.
  int regions_per_proc = 1; ///< Regions = procs * this.
  Variant variant = Variant::kDistr;
  double alpha = 0.05;      ///< Stencil relaxation factor.
  double beta = 0.5;        ///< Inter-grid blend factor.
  /// Multigrid V-cycle depth per step (0 = off). SPLASH Ocean's solver is a
  /// multigrid method; levels halve the grid, so coarse levels have fewer
  /// regions than processors — the load-balance end of the paper's tradeoff.
  int multigrid_levels = 0;
  std::uint64_t seed = 7;
};

struct Result {
  apps::RunResult run;
  double checksum = 0.0;  ///< Sum over all grid elements after the last step.
};

sched::Policy policy_for(Variant v);

/// Run the simulated-ocean solve under `cfg`.
Result run(Runtime& rt, const Config& cfg);

/// Serial reference performing the identical operation sequence; its
/// checksum must match the parallel run exactly (phases are race-free).
double serial_checksum(const Config& cfg, std::uint32_t procs);

}  // namespace cool::apps::ocean
