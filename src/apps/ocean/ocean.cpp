#include "apps/ocean/ocean.hpp"

#include <cstdio>
#include <vector>

#include "common/rng.hpp"

namespace cool::apps::ocean {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBase:
      return "Base";
    case Variant::kDistrNoAff:
      return "Distr";
    case Variant::kAffOnly:
      return "AffOnly";
    case Variant::kDistr:
      return "Distr+Aff";
  }
  return "?";
}

sched::Policy policy_for(Variant v) {
  sched::Policy p;
  p.honor_affinity = (v == Variant::kAffOnly || v == Variant::kDistr);
  return p;
}

namespace {

struct App {
  Config cfg;
  int n = 0;
  int regions = 0;
  std::vector<double*> grid;  ///< cfg.grids state grids, n*n each.
  double* scratch = nullptr;  ///< One scratch grid shared by all ops.
  /// Multigrid hierarchy: lvl[0] aliases grid[0]; lvl[k] is (n>>k)^2.
  std::vector<double*> lvl;
  std::vector<double*> lvl_scratch;

  [[nodiscard]] int row_begin(int r) const { return r * n / regions; }
  [[nodiscard]] int row_end(int r) const { return (r + 1) * n / regions; }

  [[nodiscard]] int lvl_n(int k) const { return n >> k; }
  [[nodiscard]] int lvl_regions(int k) const {
    return std::min(regions, lvl_n(k));
  }
  [[nodiscard]] int lvl_row_begin(int k, int r) const {
    return r * lvl_n(k) / lvl_regions(k);
  }
  [[nodiscard]] int lvl_row_end(int k, int r) const {
    return (r + 1) * lvl_n(k) / lvl_regions(k);
  }
};

/// dst-strip = src + alpha * laplacian(src), interior points only.
TaskFn laplace_region(App* a, const double* src, double* dst, int r) {
  auto& c = co_await self();
  const int n = a->n;
  const int r0 = a->row_begin(r);
  const int r1 = a->row_end(r);
  const int read_lo = r0 > 0 ? r0 - 1 : 0;
  const int read_hi = r1 < n ? r1 + 1 : n;

  c.read(&src[static_cast<std::size_t>(read_lo) * n],
         static_cast<std::size_t>(read_hi - read_lo) * n * sizeof(double));
  c.write(&dst[static_cast<std::size_t>(r0) * n],
          static_cast<std::size_t>(r1 - r0) * n * sizeof(double));

  const double alpha = a->cfg.alpha;
  for (int i = r0; i < r1; ++i) {
    for (int j = 0; j < n; ++j) {
      const std::size_t at = static_cast<std::size_t>(i) * n + j;
      if (i == 0 || i == n - 1 || j == 0 || j == n - 1) {
        dst[at] = src[at];  // Fixed boundary.
      } else {
        dst[at] = src[at] + alpha * (src[at - static_cast<std::size_t>(n)] +
                                     src[at + static_cast<std::size_t>(n)] +
                                     src[at - 1] + src[at + 1] - 4.0 * src[at]);
      }
    }
  }
  c.work(static_cast<std::uint64_t>(r1 - r0) * n * 24);  // 6 flops/cell
}

/// dst-strip += beta * src-strip (inter-grid element-wise op).
TaskFn add_region(App* a, double* dst, const double* src, int r) {
  auto& c = co_await self();
  const int n = a->n;
  const int r0 = a->row_begin(r);
  const int r1 = a->row_end(r);

  c.read(&src[static_cast<std::size_t>(r0) * n],
         static_cast<std::size_t>(r1 - r0) * n * sizeof(double));
  c.update(&dst[static_cast<std::size_t>(r0) * n],
           static_cast<std::size_t>(r1 - r0) * n * sizeof(double));

  const double beta = a->cfg.beta;
  for (std::size_t at = static_cast<std::size_t>(r0) * n,
                   end = static_cast<std::size_t>(r1) * n;
       at < end; ++at) {
    dst[at] += beta * src[at];
  }
  c.work(static_cast<std::uint64_t>(r1 - r0) * n * 8);  // 2 flops/cell
}

// --- multigrid level math, shared verbatim by the serial reference ---------

/// scratch rows [r0,r1) = relaxed stencil of `g` (fixed boundary).
void mg_smooth_rows(const double* g, double* scr, int n, int r0, int r1,
                    double alpha) {
  for (int i = r0; i < r1; ++i) {
    for (int j = 0; j < n; ++j) {
      const std::size_t at = static_cast<std::size_t>(i) * n + j;
      if (i == 0 || i == n - 1 || j == 0 || j == n - 1) {
        scr[at] = g[at];
      } else {
        scr[at] = g[at] + alpha * (g[at - static_cast<std::size_t>(n)] +
                                   g[at + static_cast<std::size_t>(n)] +
                                   g[at - 1] + g[at + 1] - 4.0 * g[at]);
      }
    }
  }
}

/// coarse rows [r0,r1) = 4-cell average of `fine` (full weighting).
void mg_restrict_rows(const double* fine, double* coarse, int nc, int r0,
                      int r1) {
  const int nf = nc * 2;
  for (int i = r0; i < r1; ++i) {
    for (int j = 0; j < nc; ++j) {
      const std::size_t f =
          static_cast<std::size_t>(2 * i) * nf + static_cast<std::size_t>(2 * j);
      coarse[static_cast<std::size_t>(i) * nc + j] =
          0.25 * (fine[f] + fine[f + 1] + fine[f + static_cast<std::size_t>(nf)] +
                  fine[f + static_cast<std::size_t>(nf) + 1]);
    }
  }
}

/// fine rows [r0,r1) += gamma * injected coarse correction.
void mg_prolong_rows(double* fine, const double* coarse, int nf, int r0,
                     int r1, double gamma) {
  const int nc = nf / 2;
  for (int i = r0; i < r1; ++i) {
    for (int j = 0; j < nf; ++j) {
      fine[static_cast<std::size_t>(i) * nf + j] +=
          gamma * coarse[static_cast<std::size_t>(i / 2) * nc + (j / 2)];
    }
  }
}

// --- multigrid region tasks -------------------------------------------------

TaskFn mg_smooth_region(App* a, int k, int r) {
  auto& c = co_await self();
  const int n = a->lvl_n(k);
  const int r0 = a->lvl_row_begin(k, r);
  const int r1 = a->lvl_row_end(k, r);
  const int lo = r0 > 0 ? r0 - 1 : 0;
  const int hi = r1 < n ? r1 + 1 : n;
  const double* g = a->lvl[static_cast<std::size_t>(k)];
  double* scr = a->lvl_scratch[static_cast<std::size_t>(k)];
  c.read(&g[static_cast<std::size_t>(lo) * n],
         static_cast<std::size_t>(hi - lo) * n * sizeof(double));
  c.write(&scr[static_cast<std::size_t>(r0) * n],
          static_cast<std::size_t>(r1 - r0) * n * sizeof(double));
  mg_smooth_rows(g, scr, n, r0, r1, a->cfg.alpha);
  c.work(static_cast<std::uint64_t>(r1 - r0) * n * 24);
}

TaskFn mg_copy_region(App* a, int k, int r) {
  auto& c = co_await self();
  const int n = a->lvl_n(k);
  const int r0 = a->lvl_row_begin(k, r);
  const int r1 = a->lvl_row_end(k, r);
  double* g = a->lvl[static_cast<std::size_t>(k)];
  const double* scr = a->lvl_scratch[static_cast<std::size_t>(k)];
  c.read(&scr[static_cast<std::size_t>(r0) * n],
         static_cast<std::size_t>(r1 - r0) * n * sizeof(double));
  c.write(&g[static_cast<std::size_t>(r0) * n],
          static_cast<std::size_t>(r1 - r0) * n * sizeof(double));
  for (std::size_t at = static_cast<std::size_t>(r0) * n,
                   end = static_cast<std::size_t>(r1) * n;
       at < end; ++at) {
    g[at] = scr[at];
  }
  c.work(static_cast<std::uint64_t>(r1 - r0) * n * 4);
}

TaskFn mg_restrict_region(App* a, int k, int r) {
  auto& c = co_await self();
  const int nc = a->lvl_n(k + 1);
  const int r0 = a->lvl_row_begin(k + 1, r);
  const int r1 = a->lvl_row_end(k + 1, r);
  const double* fine = a->lvl[static_cast<std::size_t>(k)];
  double* coarse = a->lvl[static_cast<std::size_t>(k + 1)];
  c.read(&fine[static_cast<std::size_t>(2 * r0) * (2 * nc)],
         static_cast<std::size_t>(2 * (r1 - r0)) * (2 * nc) * sizeof(double));
  c.write(&coarse[static_cast<std::size_t>(r0) * nc],
          static_cast<std::size_t>(r1 - r0) * nc * sizeof(double));
  mg_restrict_rows(fine, coarse, nc, r0, r1);
  c.work(static_cast<std::uint64_t>(r1 - r0) * nc * 16);
}

TaskFn mg_prolong_region(App* a, int k, int r) {
  auto& c = co_await self();
  const int nf = a->lvl_n(k);
  const int r0 = a->lvl_row_begin(k, r);
  const int r1 = a->lvl_row_end(k, r);
  double* fine = a->lvl[static_cast<std::size_t>(k)];
  const double* coarse = a->lvl[static_cast<std::size_t>(k + 1)];
  c.read(&coarse[static_cast<std::size_t>(r0 / 2) * (nf / 2)],
         static_cast<std::size_t>((r1 - r0) / 2 + 1) * (nf / 2) *
             sizeof(double));
  c.update(&fine[static_cast<std::size_t>(r0) * nf],
           static_cast<std::size_t>(r1 - r0) * nf * sizeof(double));
  mg_prolong_rows(fine, coarse, nf, r0, r1, a->cfg.beta * 0.5);
  c.work(static_cast<std::uint64_t>(r1 - r0) * nf * 8);
}

/// One V-cycle over the level hierarchy (each op is a waitfor phase).
TaskFn run_vcycle(App* a) {
  auto& c = co_await self();
  const int L = a->cfg.multigrid_levels;
  auto strip_obj = [a](int k, int r) {
    return Affinity::object(
        &a->lvl[static_cast<std::size_t>(k)]
               [static_cast<std::size_t>(a->lvl_row_begin(k, r)) * a->lvl_n(k)]);
  };
  // Down: smooth, then restrict.
  for (int k = 0; k < L; ++k) {
    {
      TaskGroup waitfor;
      for (int r = 0; r < a->lvl_regions(k); ++r) {
        c.spawn(strip_obj(k, r), waitfor, mg_smooth_region(a, k, r));
      }
      co_await c.wait(waitfor);
    }
    {
      TaskGroup waitfor;
      for (int r = 0; r < a->lvl_regions(k); ++r) {
        c.spawn(strip_obj(k, r), waitfor, mg_copy_region(a, k, r));
      }
      co_await c.wait(waitfor);
    }
    {
      TaskGroup waitfor;
      for (int r = 0; r < a->lvl_regions(k + 1); ++r) {
        c.spawn(strip_obj(k + 1, r), waitfor, mg_restrict_region(a, k, r));
      }
      co_await c.wait(waitfor);
    }
  }
  // Up: prolong the correction, then smooth.
  for (int k = L - 1; k >= 0; --k) {
    {
      TaskGroup waitfor;
      for (int r = 0; r < a->lvl_regions(k); ++r) {
        c.spawn(strip_obj(k, r), waitfor, mg_prolong_region(a, k, r));
      }
      co_await c.wait(waitfor);
    }
    {
      TaskGroup waitfor;
      for (int r = 0; r < a->lvl_regions(k); ++r) {
        c.spawn(strip_obj(k, r), waitfor, mg_smooth_region(a, k, r));
      }
      co_await c.wait(waitfor);
    }
    {
      TaskGroup waitfor;
      for (int r = 0; r < a->lvl_regions(k); ++r) {
        c.spawn(strip_obj(k, r), waitfor, mg_copy_region(a, k, r));
      }
      co_await c.wait(waitfor);
    }
  }
}

/// The region object a task has (default) affinity for: its strip of the
/// grid it writes.
const void* region_obj(const App* a, const double* g, int r) {
  return &g[static_cast<std::size_t>(a->row_begin(r)) * a->n];
}

TaskFn root_task(App* a) {
  auto& c = co_await self();
  for (int s = 0; s < a->cfg.steps; ++s) {
    for (int g = 0; g < a->cfg.grids; ++g) {
      double* grid = a->grid[static_cast<std::size_t>(g)];
      {
        TaskGroup waitfor;
        for (int r = 0; r < a->regions; ++r) {
          c.spawn(Affinity::object(region_obj(a, a->scratch, r)), waitfor,
                  laplace_region(a, grid, a->scratch, r));
        }
        co_await c.wait(waitfor);
      }
      {
        TaskGroup waitfor;
        for (int r = 0; r < a->regions; ++r) {
          c.spawn(Affinity::object(region_obj(a, grid, r)), waitfor,
                  add_region(a, grid, a->scratch, r));
        }
        co_await c.wait(waitfor);
      }
    }
    if (a->cfg.multigrid_levels > 0) {
      // SPLASH Ocean's multigrid solve phase: a V-cycle on the first grid,
      // run as a sub-task (tasks block only at their own top level).
      TaskGroup waitfor;
      c.spawn(Affinity::none(), waitfor, run_vcycle(a));
      co_await c.wait(waitfor);
    }
  }
}

void init_grids(const Config& cfg, std::vector<std::vector<double>>& out) {
  util::Rng rng(cfg.seed);
  out.assign(static_cast<std::size_t>(cfg.grids),
             std::vector<double>(static_cast<std::size_t>(cfg.n) * cfg.n));
  for (auto& g : out) {
    for (auto& x : g) x = rng.next_double();
  }
}

}  // namespace

Result run(Runtime& rt, const Config& cfg) {
  COOL_CHECK(cfg.n >= 8, "ocean: grid too small");
  COOL_CHECK(cfg.grids >= 1 && cfg.steps >= 1, "ocean: empty problem");
  const auto P = rt.machine().n_procs;

  App app;
  app.cfg = cfg;
  app.n = cfg.n;
  app.regions = static_cast<int>(P) * std::max(1, cfg.regions_per_proc);
  COOL_CHECK(app.regions <= cfg.n, "ocean: more regions than rows");

  std::vector<std::vector<double>> init;
  init_grids(cfg, init);

  const std::size_t cells = static_cast<std::size_t>(cfg.n) * cfg.n;
  app.grid.resize(static_cast<std::size_t>(cfg.grids));
  for (int g = 0; g < cfg.grids; ++g) {
    app.grid[static_cast<std::size_t>(g)] = rt.alloc_array<double>(cells, 0);
    std::copy(init[static_cast<std::size_t>(g)].begin(),
              init[static_cast<std::size_t>(g)].end(),
              app.grid[static_cast<std::size_t>(g)]);
  }
  app.scratch = rt.alloc_array<double>(cells, 0);

  if (cfg.multigrid_levels > 0) {
    COOL_CHECK(cfg.n >> cfg.multigrid_levels >= 8,
               "ocean: too many multigrid levels for this grid");
    app.lvl.push_back(app.grid[0]);
    app.lvl_scratch.push_back(app.scratch);
    for (int k = 1; k <= cfg.multigrid_levels; ++k) {
      const std::size_t nk = static_cast<std::size_t>(cfg.n >> k);
      app.lvl.push_back(rt.alloc_array<double>(nk * nk, 0));
      app.lvl_scratch.push_back(rt.alloc_array<double>(nk * nk, 0));
    }
  }

  // The Figure 5 distribute() step: corresponding regions of every grid to
  // the same processor's local memory (setup-time; not charged).
  const bool distribute =
      cfg.variant == Variant::kDistr || cfg.variant == Variant::kDistrNoAff;
  if (distribute) {
    for (int r = 0; r < app.regions; ++r) {
      const auto target = static_cast<std::int64_t>(
          r / std::max(1, cfg.regions_per_proc));
      const int r0 = app.row_begin(r);
      const int r1 = app.row_end(r);
      const std::size_t bytes =
          static_cast<std::size_t>(r1 - r0) * cfg.n * sizeof(double);
      for (int g = 0; g < cfg.grids; ++g) {
        rt.migrate(&app.grid[static_cast<std::size_t>(g)]
                            [static_cast<std::size_t>(r0) * cfg.n],
                   target, bytes);
      }
      rt.migrate(&app.scratch[static_cast<std::size_t>(r0) * cfg.n], target,
                 bytes);
    }
    // Distribute the coarse multigrid levels the same way.
    for (int k = 1; k <= cfg.multigrid_levels; ++k) {
      const int nk = app.lvl_n(k);
      for (int r = 0; r < app.lvl_regions(k); ++r) {
        const int r0 = app.lvl_row_begin(k, r);
        const int r1 = app.lvl_row_end(k, r);
        const std::size_t bytes =
            static_cast<std::size_t>(r1 - r0) * nk * sizeof(double);
        rt.migrate(&app.lvl[static_cast<std::size_t>(k)]
                           [static_cast<std::size_t>(r0) * nk],
                   r, bytes);
        rt.migrate(&app.lvl_scratch[static_cast<std::size_t>(k)]
                                   [static_cast<std::size_t>(r0) * nk],
                   r, bytes);
      }
    }
  }

  // Name the major arrays for the locality profiler (after distribute(), so
  // the registered homes reflect the placement the run actually sees).
  {
    char name[32];
    for (int g = 0; g < cfg.grids; ++g) {
      std::snprintf(name, sizeof name, "grid[%d]", g);
      rt.profile_register(name, app.grid[static_cast<std::size_t>(g)],
                          cells * sizeof(double));
    }
    rt.profile_register("scratch", app.scratch, cells * sizeof(double));
    for (int k = 1; k <= cfg.multigrid_levels; ++k) {
      const std::size_t nk = static_cast<std::size_t>(cfg.n >> k);
      std::snprintf(name, sizeof name, "mg_lvl[%d]", k);
      rt.profile_register(name, app.lvl[static_cast<std::size_t>(k)],
                          nk * nk * sizeof(double));
      std::snprintf(name, sizeof name, "mg_scratch[%d]", k);
      rt.profile_register(name, app.lvl_scratch[static_cast<std::size_t>(k)],
                          nk * nk * sizeof(double));
    }
  }

  rt.run(root_task(&app));

  double checksum = 0.0;
  for (int g = 0; g < cfg.grids; ++g) {
    for (std::size_t i = 0; i < cells; ++i) {
      checksum += app.grid[static_cast<std::size_t>(g)][i];
    }
  }
  for (int k = 1; k <= cfg.multigrid_levels; ++k) {
    const std::size_t nk = static_cast<std::size_t>(cfg.n >> k);
    for (std::size_t i = 0; i < nk * nk; ++i) {
      checksum += app.lvl[static_cast<std::size_t>(k)][i];
    }
  }
  Result res;
  res.checksum = checksum;
  res.run = collect(rt, checksum);
  return res;
}

double serial_checksum(const Config& cfg, std::uint32_t) {
  std::vector<std::vector<double>> grids;
  init_grids(cfg, grids);
  const int n = cfg.n;
  std::vector<double> scratch(static_cast<std::size_t>(n) * n, 0.0);
  // Multigrid level buffers (index 0 unused: level 0 is grids[0]/scratch).
  std::vector<std::vector<double>> mg_lvl(
      static_cast<std::size_t>(cfg.multigrid_levels) + 1);
  std::vector<std::vector<double>> mg_scr(
      static_cast<std::size_t>(cfg.multigrid_levels) + 1);
  mg_scr[0] = std::vector<double>(static_cast<std::size_t>(n) * n, 0.0);
  for (int k = 1; k <= cfg.multigrid_levels; ++k) {
    const std::size_t nk = static_cast<std::size_t>(n >> k);
    mg_lvl[static_cast<std::size_t>(k)].assign(nk * nk, 0.0);
    mg_scr[static_cast<std::size_t>(k)].assign(nk * nk, 0.0);
  }

  for (int s = 0; s < cfg.steps; ++s) {
    for (int g = 0; g < cfg.grids; ++g) {
      auto& grid = grids[static_cast<std::size_t>(g)];
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          const std::size_t at = static_cast<std::size_t>(i) * n + j;
          if (i == 0 || i == n - 1 || j == 0 || j == n - 1) {
            scratch[at] = grid[at];
          } else {
            scratch[at] =
                grid[at] +
                cfg.alpha * (grid[at - static_cast<std::size_t>(n)] +
                             grid[at + static_cast<std::size_t>(n)] +
                             grid[at - 1] + grid[at + 1] - 4.0 * grid[at]);
          }
        }
      }
      for (std::size_t at = 0; at < scratch.size(); ++at) {
        grid[at] += cfg.beta * scratch[at];
      }
    }
    if (cfg.multigrid_levels > 0) {
      // Mirror the parallel V-cycle exactly, via the same row helpers.
      const int L = cfg.multigrid_levels;
      auto level_data = [&](int k) -> double* {
        return k == 0 ? grids[0].data() : mg_lvl[static_cast<std::size_t>(k)].data();
      };
      for (int k = 0; k < L; ++k) {
        const int nk = n >> k;
        mg_smooth_rows(level_data(k), mg_scr[static_cast<std::size_t>(k)].data(),
                       nk, 0, nk, cfg.alpha);
        std::copy(mg_scr[static_cast<std::size_t>(k)].begin(),
                  mg_scr[static_cast<std::size_t>(k)].begin() +
                      static_cast<std::ptrdiff_t>(nk) * nk,
                  level_data(k));
        mg_restrict_rows(level_data(k), level_data(k + 1), nk / 2, 0, nk / 2);
      }
      for (int k = L - 1; k >= 0; --k) {
        const int nk = n >> k;
        mg_prolong_rows(level_data(k), level_data(k + 1), nk, 0, nk,
                        cfg.beta * 0.5);
        mg_smooth_rows(level_data(k), mg_scr[static_cast<std::size_t>(k)].data(),
                       nk, 0, nk, cfg.alpha);
        std::copy(mg_scr[static_cast<std::size_t>(k)].begin(),
                  mg_scr[static_cast<std::size_t>(k)].begin() +
                      static_cast<std::ptrdiff_t>(nk) * nk,
                  level_data(k));
      }
    }
  }
  double checksum = 0.0;
  for (const auto& g : grids) {
    for (double x : g) checksum += x;
  }
  for (int k = 1; k <= cfg.multigrid_levels; ++k) {
    const std::size_t nk = static_cast<std::size_t>(n >> k);
    for (std::size_t i = 0; i < nk * nk; ++i) {
      checksum += mg_lvl[static_cast<std::size_t>(k)][i];
    }
  }
  return checksum;
}

}  // namespace cool::apps::ocean
