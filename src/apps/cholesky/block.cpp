#include "apps/cholesky/block.hpp"

#include <cmath>
#include <cstdio>

#include "common/rng.hpp"

namespace cool::apps::cholesky {

const char* block_variant_name(BlockVariant v) {
  switch (v) {
    case BlockVariant::kBase:
      return "Base";
    case BlockVariant::kDistrAff:
      return "Distr+Aff";
  }
  return "?";
}

sched::Policy block_policy_for(BlockVariant v) {
  sched::Policy p;
  p.honor_affinity = v == BlockVariant::kDistrAff;
  return p;
}

namespace {

struct App {
  BlockConfig cfg;
  int B = 0;
  int s = 0;
  int band = 0;  ///< 0 encodes dense.

  [[nodiscard]] bool exists(int i, int j) const {
    return band == 0 || i - j <= band;
  }
  std::vector<double*> blk;      ///< Lower-triangle blocks, id(i,j) = tri index.
  Mutex dag_mu;                  ///< Protects the dependency counters.
  std::vector<int> dep_factor;   ///< [k]
  std::vector<int> dep_solve;    ///< [id(i,k)]
  std::vector<int> dep_update;   ///< [id(i,j) * B + k]
  TaskGroup group;

  [[nodiscard]] std::size_t id(int i, int j) const {
    return static_cast<std::size_t>(i) * (i + 1) / 2 + static_cast<std::size_t>(j);
  }
  [[nodiscard]] double* block(int i, int j) const { return blk[id(i, j)]; }
  [[nodiscard]] std::size_t uid(int i, int j, int k) const {
    return id(i, j) * static_cast<std::size_t>(B) + static_cast<std::size_t>(k);
  }

  Affinity aff_factor(int k) const {
    return cfg.variant == BlockVariant::kBase ? Affinity::none()
                                              : Affinity::object(block(k, k));
  }
  Affinity aff_solve(int i, int k) const {
    return cfg.variant == BlockVariant::kBase
               ? Affinity::none()
               : Affinity::task_object(block(k, k), block(i, k));
  }
  Affinity aff_update(int i, int j, int k) const {
    return cfg.variant == BlockVariant::kBase
               ? Affinity::none()
               : Affinity::task_object(block(j, k), block(i, j));
  }
};

TaskFn factor_task(App* a, int k);
TaskFn solve_task(App* a, int i, int k);
TaskFn update_task(App* a, int i, int j, int k);

/// Dense Cholesky of the s×s diagonal block, in place (lower triangle).
void factor_math(double* d, int s) {
  for (int c = 0; c < s; ++c) {
    double diag = d[c * s + c];
    for (int t = 0; t < c; ++t) diag -= d[c * s + t] * d[c * s + t];
    COOL_CHECK(diag > 0.0, "block cholesky: matrix not positive definite");
    diag = std::sqrt(diag);
    d[c * s + c] = diag;
    for (int r = c + 1; r < s; ++r) {
      double v = d[r * s + c];
      for (int t = 0; t < c; ++t) v -= d[r * s + t] * d[c * s + t];
      d[r * s + c] = v / diag;
    }
    for (int t = c + 1; t < s; ++t) d[c * s + t] = 0.0;  // zero upper
  }
}

/// X := X · L⁻ᵀ, where L is the factored diagonal block.
void solve_math(double* x, const double* l, int s) {
  for (int r = 0; r < s; ++r) {
    for (int c = 0; c < s; ++c) {
      double v = x[r * s + c];
      for (int t = 0; t < c; ++t) v -= x[r * s + t] * l[c * s + t];
      x[r * s + c] = v / l[c * s + c];
    }
  }
}

/// C -= A·Bᵀ (full s×s blocks).
void update_math(double* cblk, const double* ablk, const double* bblk, int s) {
  for (int r = 0; r < s; ++r) {
    for (int c = 0; c < s; ++c) {
      double v = 0.0;
      for (int t = 0; t < s; ++t) v += ablk[r * s + t] * bblk[c * s + t];
      cblk[r * s + c] -= v;
    }
  }
}

TaskFn factor_task(App* a, int k) {
  auto& c = co_await self();
  const int s = a->s;
  double* d = a->block(k, k);
  c.update(d, static_cast<std::size_t>(s) * s * sizeof(double));
  factor_math(d, s);
  c.work(static_cast<std::uint64_t>(s) * s * s * 4 / 3);  // s^3/3 flops

  auto g = co_await c.lock(a->dag_mu);
  for (int i = k + 1; i < a->B; ++i) {
    if (!a->exists(i, k)) continue;
    if (--a->dep_solve[a->id(i, k)] == 0) {
      c.spawn(a->aff_solve(i, k), a->group, solve_task(a, i, k));
    }
  }
}

TaskFn solve_task(App* a, int i, int k) {
  auto& c = co_await self();
  const int s = a->s;
  double* x = a->block(i, k);
  const double* l = a->block(k, k);
  c.read(l, static_cast<std::size_t>(s) * s * sizeof(double));
  c.update(x, static_cast<std::size_t>(s) * s * sizeof(double));
  solve_math(x, l, s);
  c.work(static_cast<std::uint64_t>(s) * s * s * 2);  // s^3/2 flops

  auto g = co_await c.lock(a->dag_mu);
  for (int j = k + 1; j <= i; ++j) {
    if (!a->exists(i, j) || !a->exists(j, k)) continue;
    if (--a->dep_update[a->uid(i, j, k)] == 0) {
      c.spawn(a->aff_update(i, j, k), a->group, update_task(a, i, j, k));
    }
  }
  for (int i2 = i + 1; i2 < a->B; ++i2) {
    if (!a->exists(i2, i) || !a->exists(i2, k)) continue;
    if (--a->dep_update[a->uid(i2, i, k)] == 0) {
      c.spawn(a->aff_update(i2, i, k), a->group, update_task(a, i2, i, k));
    }
  }
}

TaskFn update_task(App* a, int i, int j, int k) {
  auto& c = co_await self();
  const int s = a->s;
  double* dst = a->block(i, j);
  const double* lik = a->block(i, k);
  const double* ljk = a->block(j, k);
  c.read(lik, static_cast<std::size_t>(s) * s * sizeof(double));
  c.read(ljk, static_cast<std::size_t>(s) * s * sizeof(double));
  c.update(dst, static_cast<std::size_t>(s) * s * sizeof(double));
  update_math(dst, lik, ljk, s);
  c.work(static_cast<std::uint64_t>(s) * s * s * 8);  // 2·s^3 flops

  auto g = co_await c.lock(a->dag_mu);
  if (i == j) {
    if (--a->dep_factor[static_cast<std::size_t>(j)] == 0) {
      c.spawn(a->aff_factor(j), a->group, factor_task(a, j));
    }
  } else {
    if (--a->dep_solve[a->id(i, j)] == 0) {
      c.spawn(a->aff_solve(i, j), a->group, solve_task(a, i, j));
    }
  }
}

TaskFn root_task(App* a) {
  auto& c = co_await self();
  c.spawn(a->aff_factor(0), a->group, factor_task(a, 0));
  co_await c.wait(a->group);
}

}  // namespace

BlockResult run_block(Runtime& rt, const BlockConfig& cfg) {
  COOL_CHECK(cfg.blocks >= 2 && cfg.block_size >= 2, "block: too small");
  const int B = cfg.blocks;
  const int s = cfg.block_size;
  const int N = B * s;
  const auto P = rt.machine().n_procs;

  // Symmetric, strictly diagonally dominant (hence SPD) matrix with the
  // requested block-band sparsity: entries outside the band are exact zeros.
  COOL_CHECK(cfg.band >= 0 && cfg.band < cfg.blocks,
             "block: band must be in [0, blocks)");
  util::Rng rng(cfg.seed);
  std::vector<double> a_full(static_cast<std::size_t>(N) * N, 0.0);
  for (int r = 0; r < N; ++r) {
    for (int c2 = 0; c2 < r; ++c2) {
      // Sparsity by *block* distance, matching the task structure.
      if (cfg.band > 0 && (r / s - c2 / s) > cfg.band) continue;
      const double v = 2.0 * rng.next_double() - 1.0;
      a_full[static_cast<std::size_t>(r) * N + c2] = v;
      a_full[static_cast<std::size_t>(c2) * N + r] = v;
    }
  }
  for (int r = 0; r < N; ++r) {
    double rowsum = 0.0;
    for (int c2 = 0; c2 < N; ++c2) {
      if (c2 != r) rowsum += std::fabs(a_full[static_cast<std::size_t>(r) * N + c2]);
    }
    a_full[static_cast<std::size_t>(r) * N + r] = rowsum + 1.0;
  }

  App app;
  app.cfg = cfg;
  app.B = B;
  app.s = s;
  app.band = cfg.band;
  app.blk.assign(app.id(B - 1, B - 1) + 1, nullptr);
  std::uint64_t nonzero = 0;
  const bool distribute = cfg.variant == BlockVariant::kDistrAff;
  for (int i = 0; i < B; ++i) {
    for (int j = 0; j <= i; ++j) {
      if (!app.exists(i, j)) continue;
      ++nonzero;
      const std::int64_t home =
          distribute ? static_cast<std::int64_t>(app.id(i, j) % P) : 0;
      double* d = rt.alloc_array<double>(
          static_cast<std::size_t>(s) * s, home);
      for (int r = 0; r < s; ++r) {
        for (int c2 = 0; c2 < s; ++c2) {
          d[r * s + c2] = a_full[static_cast<std::size_t>(i * s + r) * N +
                                 (j * s + c2)];
        }
      }
      app.blk[app.id(i, j)] = d;
      char name[28];
      std::snprintf(name, sizeof name, "blk[%d,%d]", i, j);
      rt.profile_register(name, d, static_cast<std::size_t>(s) * s *
                                       sizeof(double));
    }
  }

  // Dependency counters.
  app.dep_factor.assign(static_cast<std::size_t>(B), 0);
  app.dep_solve.assign(app.id(B - 1, B - 1) + 1, 0);
  app.dep_update.assign((app.id(B - 1, B - 1) + 1) * static_cast<std::size_t>(B),
                        0);
  for (int k = 0; k < B; ++k) {
    int deps = 0;
    for (int kk = 0; kk < k; ++kk) {
      if (app.exists(k, kk)) ++deps;  // update(k,k,kk)
    }
    app.dep_factor[static_cast<std::size_t>(k)] = deps;
  }
  for (int i = 0; i < B; ++i) {
    for (int k = 0; k < i; ++k) {
      if (!app.exists(i, k)) continue;
      int deps = 1;  // factor(k)
      for (int kk = 0; kk < k; ++kk) {
        if (app.exists(i, kk) && app.exists(k, kk)) ++deps;  // update(i,k,kk)
      }
      app.dep_solve[app.id(i, k)] = deps;
    }
  }
  for (int i = 0; i < B; ++i) {
    for (int j = 0; j <= i; ++j) {
      if (!app.exists(i, j)) continue;
      for (int k = 0; k < j; ++k) {
        if (!app.exists(i, k) || !app.exists(j, k)) continue;
        app.dep_update[app.uid(i, j, k)] = (i == j) ? 1 : 2;
      }
    }
  }

  rt.run(root_task(&app));

  // Validate: reassemble L and check A ≈ L·Lᵀ.
  std::vector<double> l(static_cast<std::size_t>(N) * N, 0.0);
  for (int i = 0; i < B; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double* d = app.blk[app.id(i, j)];
      if (d == nullptr) continue;
      for (int r = 0; r < s; ++r) {
        for (int c2 = 0; c2 < s; ++c2) {
          const int rr = i * s + r;
          const int cc = j * s + c2;
          if (cc <= rr) l[static_cast<std::size_t>(rr) * N + cc] = d[r * s + c2];
        }
      }
    }
  }
  double residual = 0.0;
  for (int r = 0; r < N; ++r) {
    for (int c2 = 0; c2 <= r; ++c2) {
      double v = 0.0;
      for (int t = 0; t <= c2; ++t) {
        v += l[static_cast<std::size_t>(r) * N + t] *
             l[static_cast<std::size_t>(c2) * N + t];
      }
      residual = std::max(
          residual,
          std::fabs(v - a_full[static_cast<std::size_t>(r) * N + c2]));
    }
  }

  BlockResult res;
  res.residual = residual;
  res.nonzero_blocks = nonzero;
  double checksum = 0.0;
  for (int k = 0; k < B; ++k) {
    const double* d = app.blk[app.id(k, k)];
    for (int t = 0; t < s; ++t) checksum += d[t * s + t];
  }
  res.run = collect(rt, checksum);
  return res;
}

}  // namespace cool::apps::cholesky
