// Panel Cholesky — sparse Cholesky factorization with panels (paper §6.3,
// Figures 12–15; Rothberg & Gupta's panel representation).
//
// Columns with identical non-zero structure form panels. Each panel receives
// updates from relevant panels to its left; once all updates have arrived it
// becomes "ready" (CompletePanel), and then updates the panels to its right
// (UpdatePanel — a `parallel mutex` function on the destination panel, with
// affinity(src, TASK) + affinity(this, OBJECT); see paper Figure 13).
//
// The sparse structure is generated synthetically (a random elimination-DAG
// with paper-like fan-out); the numeric content is integer-valued doubles so
// the parallel result matches the serial reference *exactly* regardless of
// the order in which commuting updates are applied.
//
// Variants reproduce the Figure 14 curves:
//   Base                round-robin tasks, all panels on processor 0
//   Distr               panels distributed round-robin, scheduling still blind
//   Distr+Aff           + the Figure 13 affinity hints
//   Distr+Aff+Cluster   + stealing restricted to the thief's cluster
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"

namespace cool::apps::cholesky {

enum class PanelVariant {
  kBase,
  kDistr,
  kDistrAff,
  kDistrAffCluster,
};

const char* panel_variant_name(PanelVariant v);

struct PanelConfig {
  int n_panels = 192;
  int min_cols = 6, max_cols = 14;     ///< Columns per panel (supernode width).
  int row_scale = 3;                   ///< rows(p) ~ (n_panels - p) * scale.
  int parent_span = 10;                ///< Parent chosen within this distance.
  double extra_edge_prob = 0.35;       ///< Ancestor fill edges (fan-out).
  int extra_span = 24;                 ///< Max ancestor hops for fill edges.
  PanelVariant variant = PanelVariant::kDistrAff;
  std::uint64_t seed = 23;
};

struct PanelResult {
  apps::RunResult run;
  double checksum = 0.0;   ///< Sum over all panel data (exact integer math).
  std::uint64_t updates = 0;  ///< Number of UpdatePanel tasks.
};

/// Scheduling policy for a variant. `n_procs` decides whether cluster-only
/// stealing is meaningful (it is vacuous — and rejected by validate_policy —
/// on a machine with a single cluster).
sched::Policy panel_policy_for(PanelVariant v, std::uint32_t n_procs = 32);

PanelResult run_panel(Runtime& rt, const PanelConfig& cfg);

/// Serial reference: identical structure and arithmetic in topological order.
double panel_serial_checksum(const PanelConfig& cfg);

}  // namespace cool::apps::cholesky
