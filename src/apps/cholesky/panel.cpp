#include "apps/cholesky/panel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>

#include "common/rng.hpp"

namespace cool::apps::cholesky {

const char* panel_variant_name(PanelVariant v) {
  switch (v) {
    case PanelVariant::kBase:
      return "Base";
    case PanelVariant::kDistr:
      return "Distr";
    case PanelVariant::kDistrAff:
      return "Distr+Aff";
    case PanelVariant::kDistrAffCluster:
      return "Distr+Aff+ClusterStealing";
  }
  return "?";
}

sched::Policy panel_policy_for(PanelVariant v, std::uint32_t n_procs) {
  sched::Policy p;
  p.honor_affinity =
      v == PanelVariant::kDistrAff || v == PanelVariant::kDistrAffCluster;
  if (v == PanelVariant::kDistrAffCluster) {
    // The paper's cluster-scheduling experiment: idle processors may steal —
    // even OBJECT-pinned update tasks — but only within their cluster, so a
    // stolen task still references the destination panel in cluster-local
    // memory. On a one-cluster machine "within the cluster" means anywhere,
    // so the restriction is dropped there (validate_policy rejects the
    // vacuous flag).
    p.steal_object_tasks = true;
    p.steal_pinned_sets = true;
    p.cluster_only = topo::MachineConfig::dash(n_procs).n_clusters() > 1;
  }
  return p;
}

namespace {

struct Structure {
  std::vector<int> cols;                   ///< Columns per panel.
  std::vector<std::size_t> len;            ///< Doubles of data per panel.
  std::vector<std::vector<int>> targets;   ///< Panels each panel modifies.
  std::vector<int> pending;                ///< Modifier count per panel.
  std::uint64_t n_updates = 0;
};

Structure make_structure(const PanelConfig& cfg) {
  COOL_CHECK(cfg.n_panels >= 2, "panel: need at least two panels");
  COOL_CHECK(cfg.min_cols >= 1 && cfg.max_cols >= cfg.min_cols,
             "panel: bad column bounds");
  util::Rng rng(cfg.seed);
  const int n = cfg.n_panels;
  Structure s;
  s.cols.resize(static_cast<std::size_t>(n));
  s.len.resize(static_cast<std::size_t>(n));
  s.targets.resize(static_cast<std::size_t>(n));
  s.pending.assign(static_cast<std::size_t>(n), 0);

  for (int p = 0; p < n; ++p) {
    s.cols[static_cast<std::size_t>(p)] = static_cast<int>(
        rng.next_in(cfg.min_cols, cfg.max_cols));
    const std::size_t rows = static_cast<std::size_t>(
        (n - p) * cfg.row_scale + static_cast<int>(rng.next_below(16)));
    s.len[static_cast<std::size_t>(p)] =
        rows * static_cast<std::size_t>(s.cols[static_cast<std::size_t>(p)]);
  }
  // Elimination-forest structure: every panel has (at most) one parent to its
  // right; a panel's updates go to its parent and, with decreasing
  // probability, further ancestors up the chain (sparse Cholesky fill follows
  // the elimination-tree path). Panels that are nobody's target — roughly the
  // tree's leaves, a large fraction — are ready immediately, which is where
  // sparse Cholesky's task parallelism comes from.
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int p = 0; p < n - 1; ++p) {
    const int q = p + 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(cfg.parent_span)));
    parent[static_cast<std::size_t>(p)] = q < n ? q : -1;
  }
  for (int p = 0; p < n - 1; ++p) {
    auto& tg = s.targets[static_cast<std::size_t>(p)];
    int q = parent[static_cast<std::size_t>(p)];
    int hops = 0;
    while (q >= 0 && hops < cfg.extra_span) {
      if (hops == 0 || rng.next_double() < cfg.extra_edge_prob) {
        tg.push_back(q);
      }
      q = parent[static_cast<std::size_t>(q)];
      ++hops;
    }
    for (int t : tg) ++s.pending[static_cast<std::size_t>(t)];
    s.n_updates += tg.size();
  }
  return s;
}

/// Integer-valued "completion" of a panel: deterministic, commutative-safe.
void complete_math(double* d, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    const auto v = static_cast<std::int64_t>(d[i]);
    d[i] = static_cast<double>(((v % 100003) * 31 + static_cast<std::int64_t>(
                                                        i % 257)) %
                               1021);
  }
}

/// Integer-valued update contribution: depends only on the (final) source.
/// Only the tail of the source panel — the rows overlapping the destination's
/// row range — participates, as in real supernodal cmod: far targets read a
/// small slice of the source, near targets most of it.
std::size_t overlap_len(std::size_t dst_len, std::size_t src_len) {
  return std::min(dst_len, src_len);
}

void update_math(double* dst, std::size_t dst_len, const double* src,
                 std::size_t src_len) {
  const std::size_t olen = overlap_len(dst_len, src_len);
  const double* tail = src + (src_len - olen);
  for (std::size_t i = 0; i < dst_len; ++i) {
    dst[i] += tail[i % olen];
  }
}

struct App {
  PanelConfig cfg;
  Structure st;
  std::vector<double*> panel;   ///< Panel data blocks.
  std::deque<Mutex> mu;         ///< Per-panel monitor (mutex function).
  std::vector<int> pending;     ///< Runtime copy of st.pending.
  TaskGroup group;

  Affinity update_affinity(int dst, int src) const {
    if (cfg.variant == PanelVariant::kBase || cfg.variant == PanelVariant::kDistr) {
      return Affinity::none();
    }
    // Figure 13: affinity(src, TASK); affinity(this, OBJECT).
    return Affinity::task_object(panel[static_cast<std::size_t>(src)],
                                 panel[static_cast<std::size_t>(dst)]);
  }
  Affinity complete_affinity(int p) const {
    if (cfg.variant == PanelVariant::kBase || cfg.variant == PanelVariant::kDistr) {
      return Affinity::none();
    }
    return Affinity::object(panel[static_cast<std::size_t>(p)]);
  }
};

TaskFn update_panel(App* a, int dst, int src);

/// CompletePanel: internal completion, then produce the updates this panel
/// owes to panels on its right (paper Figure 13).
TaskFn complete_panel(App* a, int p) {
  auto& c = co_await self();
  double* d = a->panel[static_cast<std::size_t>(p)];
  const std::size_t len = a->st.len[static_cast<std::size_t>(p)];
  const auto cols = static_cast<std::uint64_t>(
      a->st.cols[static_cast<std::size_t>(p)]);

  c.update(d, len * sizeof(double));
  complete_math(d, len);
  // Internal factorization: ~cols fused multiply-adds per panel element,
  // at ~4 cycles per R3000 flop.
  c.work(len * cols * 4);

  for (int q : a->st.targets[static_cast<std::size_t>(p)]) {
    c.spawn(a->update_affinity(q, p), a->group, update_panel(a, q, p));
  }
}

/// UpdatePanel: `parallel mutex` on the destination panel.
TaskFn update_panel(App* a, int dst, int src) {
  auto& c = co_await self();
  auto g = co_await c.lock(a->mu[static_cast<std::size_t>(dst)]);

  double* d = a->panel[static_cast<std::size_t>(dst)];
  const double* sp = a->panel[static_cast<std::size_t>(src)];
  const std::size_t dlen = a->st.len[static_cast<std::size_t>(dst)];
  const std::size_t slen = a->st.len[static_cast<std::size_t>(src)];

  const std::size_t olen = overlap_len(dlen, slen);
  c.read(sp + (slen - olen), olen * sizeof(double));
  c.update(d, dlen * sizeof(double));
  update_math(d, dlen, sp, slen);
  // Supernodal update: cols_src multiply-add pairs per destination element.
  c.work(dlen * static_cast<std::uint64_t>(
                    a->st.cols[static_cast<std::size_t>(src)]) *
         8);

  if (--a->pending[static_cast<std::size_t>(dst)] == 0) {
    c.spawn(a->complete_affinity(dst), a->group, complete_panel(a, dst));
  }
}

TaskFn root_task(App* a) {
  auto& c = co_await self();
  // Start with the initially ready panels (paper Figure 13 main()).
  for (int p = 0; p < a->cfg.n_panels; ++p) {
    if (a->pending[static_cast<std::size_t>(p)] == 0) {
      c.spawn(a->complete_affinity(p), a->group, complete_panel(a, p));
    }
  }
  co_await c.wait(a->group);
}

void init_panel_data(double* d, std::size_t len, int p) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] = static_cast<double>((static_cast<std::size_t>(p) * 131 + i * 7) %
                               509);
  }
}

}  // namespace

PanelResult run_panel(Runtime& rt, const PanelConfig& cfg) {
  const auto P = rt.machine().n_procs;
  App app;
  app.cfg = cfg;
  app.st = make_structure(cfg);
  app.pending = app.st.pending;

  const bool distribute = cfg.variant != PanelVariant::kBase;
  app.panel.resize(static_cast<std::size_t>(cfg.n_panels));
  for (int p = 0; p < cfg.n_panels; ++p) {
    // Distribute panels across processors' memories round-robin
    // (Figure 13: `for p: migrate(panel+p, p)`), or all on processor 0.
    const std::int64_t home = distribute ? (p % static_cast<int>(P)) : 0;
    app.panel[static_cast<std::size_t>(p)] = rt.alloc_array<double>(
        app.st.len[static_cast<std::size_t>(p)], home);
    init_panel_data(app.panel[static_cast<std::size_t>(p)],
                    app.st.len[static_cast<std::size_t>(p)], p);
  }
  for (int p = 0; p < cfg.n_panels; ++p) app.mu.emplace_back();

  {
    char name[28];
    for (int p = 0; p < cfg.n_panels; ++p) {
      std::snprintf(name, sizeof name, "panel[%d]", p);
      rt.profile_register(
          name, app.panel[static_cast<std::size_t>(p)],
          app.st.len[static_cast<std::size_t>(p)] * sizeof(double));
    }
  }

  rt.run(root_task(&app));

  double checksum = 0.0;
  for (int p = 0; p < cfg.n_panels; ++p) {
    const double* d = app.panel[static_cast<std::size_t>(p)];
    for (std::size_t i = 0; i < app.st.len[static_cast<std::size_t>(p)]; ++i) {
      checksum += d[i];
    }
  }

  PanelResult res;
  res.checksum = checksum;
  res.updates = app.st.n_updates;
  res.run = collect(rt, checksum);
  return res;
}

double panel_serial_checksum(const PanelConfig& cfg) {
  Structure st = make_structure(cfg);
  std::vector<std::vector<double>> panel(static_cast<std::size_t>(cfg.n_panels));
  for (int p = 0; p < cfg.n_panels; ++p) {
    panel[static_cast<std::size_t>(p)].resize(
        st.len[static_cast<std::size_t>(p)]);
    init_panel_data(panel[static_cast<std::size_t>(p)].data(),
                    st.len[static_cast<std::size_t>(p)], p);
  }
  // Topological order: every modifier has a smaller index than its target,
  // and by induction panel p has received all updates by the time the loop
  // reaches it.
  for (int p = 0; p < cfg.n_panels; ++p) {
    auto& d = panel[static_cast<std::size_t>(p)];
    complete_math(d.data(), d.size());
    for (int q : st.targets[static_cast<std::size_t>(p)]) {
      auto& t = panel[static_cast<std::size_t>(q)];
      update_math(t.data(), t.size(), d.data(), d.size());
    }
  }
  double checksum = 0.0;
  for (const auto& d : panel) {
    for (double x : d) checksum += x;
  }
  return checksum;
}

}  // namespace cool::apps::cholesky
