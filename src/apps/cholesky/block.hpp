// Block Cholesky — Cholesky factorization with the matrix represented as a
// set of blocks instead of panels (paper §6.4, Figure 16b; Rothberg &
// Gupta's block method).
//
// The N×N SPD matrix is a B×B grid of s×s blocks, factored with the usual
// block dataflow:
//   factor(k):      A[k][k] -> L[k][k]               (dense Cholesky)
//   solve(i,k):     A[i][k] -> L[i][k] = A[i][k]·L[k][k]⁻ᵀ
//   update(i,j,k):  A[i][j] -= L[i][k]·L[j][k]ᵀ      (i ≥ j > k)
// tracked by per-operation dependency counters under a DAG monitor.
//
// Affinity hints mirror the panel code: OBJECT on the destination block
// (blocks are distributed block-cyclically), TASK on the k-column source
// block so updates sharing a source run back-to-back. The paper reports the
// COOL version *beating* the hand-coded ANL program here thanks to better
// dynamic load balance — the Base/Affinity comparison in the bench shows the
// same effect.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common/harness.hpp"
#include "core/cool.hpp"

namespace cool::apps::cholesky {

enum class BlockVariant {
  kBase,      ///< Round-robin tasks, whole matrix on processor 0.
  kDistrAff,  ///< Block-cyclic distribution + TASK/OBJECT affinity hints.
};

const char* block_variant_name(BlockVariant v);

struct BlockConfig {
  int blocks = 12;       ///< B: the matrix is B×B blocks.
  int block_size = 24;   ///< s: each block is s×s doubles.
  /// Block bandwidth: block (i,j) is structurally non-zero iff i-j <= band.
  /// 0 selects a dense matrix (all blocks). Banded structure is closed under
  /// Cholesky (no fill outside the band), so the sparse dataflow skips the
  /// corresponding solves and updates entirely — the paper's block method
  /// factored sparse matrices.
  int band = 0;
  BlockVariant variant = BlockVariant::kDistrAff;
  std::uint64_t seed = 5;
};

struct BlockResult {
  apps::RunResult run;
  double residual = 0.0;  ///< max |A - L·Lᵀ| (parallel result vs. input).
  std::uint64_t nonzero_blocks = 0;  ///< Structurally non-zero lower blocks.
};

sched::Policy block_policy_for(BlockVariant v);

BlockResult run_block(Runtime& rt, const BlockConfig& cfg);

}  // namespace cool::apps::cholesky
