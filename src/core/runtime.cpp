#include "core/runtime.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/bitops.hpp"
#include "core/sync.hpp"

namespace cool {

Runtime::Runtime(SystemConfig cfg) : cfg_(cfg) {
  cfg_.machine.validate();
  // The Reserve balancer needs profiled heat; --adapt under the simulation
  // engine constructs the profiler even without --profile.
  const bool profile_available =
      cfg_.profile || (cfg_.adapt && cfg_.mode == SystemConfig::Mode::kSim);
  sched::validate_policy(cfg_.policy, cfg_.machine, profile_available);
  obs_ = std::make_unique<obs::Registry>(cfg_.machine.n_procs);
  if (cfg_.mode == SystemConfig::Mode::kSim) {
    sim_ = std::make_unique<SimEngine>(cfg_.machine, cfg_.policy, cfg_.costs,
                                       cfg_.trace, cfg_.trace_ring_capacity);
    sim_->attach_obs(*obs_);
    eng_ = sim_.get();
  } else {
    thr_ = std::make_unique<ThreadEngine>(cfg_.machine, cfg_.policy,
                                          cfg_.trace, cfg_.trace_ring_capacity);
    thr_->attach_obs(*obs_);
    eng_ = thr_.get();
  }
  if (cfg_.profile || (cfg_.adapt && sim_)) {
    // --adapt constructs the profiler as its sensor even without --profile.
    prof_ = std::make_unique<obs::LocalityProfiler>(cfg_.machine);
    if (sim_) {
      sim_->attach_profiler(prof_.get());
    } else {
      thr_->attach_profiler(prof_.get());
    }
    // Close the profiler -> scheduler loop for the Reserve balancer: its heat
    // source is the profiler's per-object stall attribution, translated from
    // arena-relative addresses back to the raw pointers place() sees. The
    // cluster homing the most serviced misses owns the object's hot pages.
    sched::Scheduler& sch = sim_ ? sim_->scheduler() : thr_->scheduler();
    sch.set_hotness_source([this] {
      std::vector<sched::DataHotness> out;
      const obs::ProfileSnapshot snap = prof_->snapshot();
      const std::uint64_t base = reinterpret_cast<std::uint64_t>(arena_);
      for (const obs::ProfileSnapshot::ObjectRow& o : snap.objects) {
        if (o.anonymous || o.s.stall_cycles == 0) continue;
        std::uint64_t best_misses = 0;
        topo::ClusterId best_cluster = 0;
        for (std::size_t c = 0; c < o.miss_home_cluster.size(); ++c) {
          if (o.miss_home_cluster[c] > best_misses) {  // ties: lowest cluster
            best_misses = o.miss_home_cluster[c];
            best_cluster = static_cast<topo::ClusterId>(c);
          }
        }
        if (best_misses == 0) continue;  // no serviced misses yet: cold
        out.push_back({o.addr + base, o.bytes, best_cluster, o.s.stall_cycles});
      }
      std::sort(out.begin(), out.end(),
                [](const sched::DataHotness& a, const sched::DataHotness& b) {
                  if (a.heat != b.heat) return a.heat > b.heat;
                  return a.addr < b.addr;
                });
      constexpr std::size_t kTop = 16;
      if (out.size() > kTop) out.resize(kTop);
      return out;
    });
  }
  if (cfg_.race_check && sim_) {
    race_ = std::make_unique<analysis::RaceDetector>(cfg_.machine);
    sim_->attach_race(race_.get(), race_.get());
  }
  // Reserve the allocation arena (lazily backed; pages materialise on touch).
  void* mem = ::mmap(nullptr, cfg_.arena_bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  COOL_CHECK(mem != MAP_FAILED, "failed to reserve the runtime arena");
  arena_ = static_cast<char*>(mem);
  eng_->set_addr_base(reinterpret_cast<std::uint64_t>(arena_));
  if (cfg_.adapt && sim_) {
    adaptive::Hooks h;
    h.profile = [this] { return prof_->snapshot(); };
    h.metrics = [this] { return obs_snapshot(); };
    h.migrate = [this](topo::ProcId caller, std::uint64_t addr,
                       std::uint64_t bytes, topo::ProcId target,
                       std::uint64_t now) {
      return sim_->adaptive_migrate(caller, addr, bytes, target, now);
    };
    // The profiler keys sets by arena-relative object address; the scheduler
    // promotion table matches raw Affinity::object_obj values, so translate.
    h.promote = [this](std::uint64_t set_key, bool on) {
      sim_->scheduler().set_task_promotion(
          set_key + reinterpret_cast<std::uint64_t>(arena_), on);
    };
    h.mutate_policy = [this](const std::function<void(sched::Policy&)>& fn) {
      sim_->scheduler().adapt_policy(fn);
    };
    h.policy = [this] { return sim_->scheduler().policy(); };
    adapt_ = std::make_unique<adaptive::AdaptiveEngine>(
        cfg_.machine, cfg_.adapt_policy, std::move(h));
    sim_->attach_adaptive(adapt_.get());
  }
}

Runtime::~Runtime() {
  // Engines (and any leftover task frames) die before the arena they use.
  sim_.reset();
  thr_.reset();
  if (arena_ != nullptr) ::munmap(arena_, cfg_.arena_bytes);
}

void Runtime::run(TaskFn&& root) {
  if (sim_) {
    sim_->run(std::move(root));
  } else {
    thr_->run(std::move(root), cfg_.thread_timeout_ms);
  }
}

void* Runtime::alloc_bytes(std::size_t bytes, std::int64_t home) {
  COOL_CHECK(bytes > 0, "alloc_bytes: empty allocation");
  const std::size_t page = cfg_.machine.page_bytes;
  const std::size_t rounded = static_cast<std::size_t>(
      util::align_up(bytes, page));
  // Varying pad: a fixed pad still re-aligns with direct-mapped cache sets
  // over long allocation sequences (k allocations x fixed stride can be a
  // multiple of the cache size); cycling the pad length breaks the period.
  const std::size_t max_pad = std::max<std::size_t>(1, cfg_.alloc_stagger_pages);
  const std::size_t stagger = page * (1 + (n_allocs_ * 5) % max_pad);
  ++n_allocs_;
  COOL_CHECK(arena_used_ + rounded + stagger <= cfg_.arena_bytes,
             "runtime arena exhausted — raise SystemConfig::arena_bytes");
  void* p = arena_ + arena_used_;
  arena_used_ += rounded + stagger;
  if (home >= 0) {
    const auto target = static_cast<topo::ProcId>(
        static_cast<std::uint64_t>(home) % cfg_.machine.n_procs);
    eng_->bind_range(reinterpret_cast<std::uint64_t>(p), rounded, target);
  }
  return p;
}

void Runtime::migrate(const void* p, std::int64_t target, std::size_t bytes) {
  COOL_CHECK(p != nullptr, "migrate: null pointer");
  const auto t = static_cast<topo::ProcId>(
      static_cast<std::uint64_t>(target < 0 ? 0 : target) %
      cfg_.machine.n_procs);
  eng_->bind_range(reinterpret_cast<std::uint64_t>(p),
                   bytes == 0 ? 1 : bytes, t);
}

topo::ProcId Runtime::home(const void* p) {
  return eng_->home(reinterpret_cast<std::uint64_t>(p), 0);
}

bool Runtime::profile_register(const std::string& name, const void* p,
                               std::size_t bytes) {
  if ((!prof_ && !race_) || p == nullptr || bytes == 0) return false;
  const std::uint64_t addr =
      reinterpret_cast<std::uint64_t>(p) - reinterpret_cast<std::uint64_t>(arena_);
  // Home for display only, and only if already bound — home_of() would
  // first-touch-bind the page, which must not happen from a passive observer.
  topo::ProcId home_proc = 0;
  if (sim_ && sim_->memsys().pages().is_bound(addr)) {
    home_proc = sim_->memsys().pages().home_of_bound(addr);
  }
  bool ok = true;
  if (prof_) ok = prof_->register_object(name, addr, bytes, home_proc);
  if (race_) {
    const bool rok = race_->registry().add(name, addr, bytes, home_proc);
    if (!prof_) ok = rok;
  }
  return ok;
}

obs::ProfileSnapshot Runtime::profile_snapshot() const {
  return prof_ ? prof_->snapshot() : obs::ProfileSnapshot{};
}

std::uint64_t Runtime::sim_time() const {
  return sim_ ? sim_->finish_time() : 0;
}

const mem::PerfMonitor* Runtime::monitor() const {
  return sim_ ? &sim_->memsys().monitor() : nullptr;
}

sched::SchedStats Runtime::sched_stats() const {
  return sim_ ? sim_->scheduler().stats() : thr_->scheduler().stats();
}

std::vector<ProcUtil> Runtime::utilization() const {
  return sim_ ? sim_->utilization() : std::vector<ProcUtil>(cfg_.machine.n_procs);
}

std::uint64_t Runtime::tasks_completed() const {
  return sim_ ? sim_->tasks_completed() : thr_->tasks_completed();
}

std::vector<TraceEvent> Runtime::trace() const {
  return spans_from_events(trace_events());
}

std::vector<obs::Event> Runtime::trace_events() const {
  const obs::TraceCollector* tc =
      sim_ ? sim_->trace_collector() : thr_->trace_collector();
  return tc != nullptr ? tc->merged() : std::vector<obs::Event>{};
}

std::string Runtime::chrome_trace() const {
  if (prof_) {
    const obs::ProfileSnapshot p = prof_->snapshot();
    return obs::chrome_trace_json(trace_events(), &p);
  }
  return obs::chrome_trace_json(trace_events());
}

obs::Snapshot Runtime::obs_snapshot() const {
  obs::Snapshot s = obs_->snapshot();
  auto put = [&s](const char* name, std::uint64_t v) { s.values[name] = v; };

  put("tasks.completed", tasks_completed());

  const sched::SchedStats ss = sched_stats();
  put("sched.spawned", ss.spawned);
  put("sched.pops", ss.pops);
  put("sched.steals", ss.steals);
  put("sched.set_steals", ss.set_steals);
  put("sched.tasks_stolen", ss.tasks_stolen);
  put("sched.remote_cluster_steals", ss.remote_cluster_steals);
  put("sched.failed_steal_scans", ss.failed_steal_scans);
  put("sched.resumes", ss.resumes);
  put("sched.balance.commands", ss.balance_commands);
  put("sched.balance.moves", ss.balance_moves);
  put("sched.balance.reserve_hits", ss.reserve_hits);

  const sched::Scheduler& sch =
      sim_ ? sim_->scheduler() : thr_->scheduler();
  std::uint64_t max_depth = 0;
  std::uint64_t max_now = 0;
  for (std::uint32_t p = 0; p < cfg_.machine.n_procs; ++p) {
    max_depth = std::max<std::uint64_t>(max_depth, sch.queues(p).max_depth());
    max_now = std::max<std::uint64_t>(max_now, sch.queues(p).size());
  }
  put("sched.queue.max_depth", max_depth);
  put("sched.queue.max_now", max_now);
  put("sched.queue.now", sch.total_queued());

  if (sim_) {
    put("sim.time", sim_time());
    const auto mem = monitor()->total();
    put("mem.accesses", mem.accesses());
    put("mem.misses", mem.misses());
    put("mem.local_misses", mem.local_misses());
    put("mem.remote_misses", mem.remote_misses());
    put("mem.upgrades", mem.upgrades);
    put("mem.invals_sent", mem.invals_sent);
    put("mem.writebacks", mem.writebacks);
    put("mem.latency_cycles", mem.latency_cycles);
    put("mem.contention_cycles", mem.contention_cycles);
    put("mem.pages_migrated", mem.pages_migrated);
    put("mem.prefetches", mem.prefetches);
    std::uint64_t busy = 0;
    std::uint64_t idle = 0;
    std::uint64_t sched_cycles = 0;
    for (const ProcUtil& u : sim_->utilization()) {
      busy += u.busy;
      idle += u.idle;
      sched_cycles += u.sched;
    }
    put("proc.busy_cycles", busy);
    put("proc.idle_cycles", idle);
    put("proc.sched_cycles", sched_cycles);
  }

  const obs::TraceCollector* tc =
      sim_ ? sim_->trace_collector() : thr_->trace_collector();
  if (tc != nullptr) {
    put("obs.trace.events", tc->total_size());
    put("obs.trace.dropped", tc->total_dropped());
  }
  return s;
}

std::string Runtime::report() const {
  char buf[256];
  std::string out;
  auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
    out += '\n';
  };
  line("engine: %s, %u processors (%u clusters)",
       sim_ ? "simulated DASH" : "threads", cfg_.machine.n_procs,
       cfg_.machine.n_clusters());
  line("tasks completed: %llu",
       static_cast<unsigned long long>(tasks_completed()));
  const auto& ss = sched_stats();
  line("scheduler: %llu spawned, %llu stolen (%llu whole sets, %llu remote-cluster)",
       static_cast<unsigned long long>(ss.spawned),
       static_cast<unsigned long long>(ss.tasks_stolen),
       static_cast<unsigned long long>(ss.set_steals),
       static_cast<unsigned long long>(ss.remote_cluster_steals));
  if (sim_) {
    line("simulated time: %llu cycles",
         static_cast<unsigned long long>(sim_time()));
    const auto mem = monitor()->total();
    line("memory: %llu accesses, %llu misses (%.1f/1000), %.1f%% local service,"
         " %llu invalidations, %llu prefetched lines",
         static_cast<unsigned long long>(mem.accesses()),
         static_cast<unsigned long long>(mem.misses()),
         mem.accesses() ? 1000.0 * static_cast<double>(mem.misses()) /
                              static_cast<double>(mem.accesses())
                        : 0.0,
         mem.misses() ? 100.0 * static_cast<double>(mem.local_misses()) /
                            static_cast<double>(mem.misses())
                      : 0.0,
         static_cast<unsigned long long>(mem.invals_sent),
         static_cast<unsigned long long>(mem.prefetches));
    const auto util = utilization();
    std::uint64_t busy = 0;
    std::uint64_t max_busy = 0;
    for (const auto& u : util) {
      busy += u.busy;
      max_busy = std::max(max_busy, u.busy);
    }
    const double avg =
        static_cast<double>(busy) / static_cast<double>(util.size());
    line("load balance: avg busy %.1f%% of span, max/avg %.2f",
         sim_time() ? 100.0 * avg / static_cast<double>(sim_time()) : 0.0,
         avg > 0.0 ? static_cast<double>(max_busy) / avg : 0.0);
  }
  return out;
}

// --- Ctx spawn glue ----------------------------------------------------------

void Ctx::spawn(const Affinity& aff, TaskGroup& group, TaskFn&& fn) {
  COOL_CHECK(fn.valid(), "spawn of empty TaskFn");
  auto* rec = new TaskRecord;
  rec->handle = fn.release();
  rec->desc.aff = aff;
  rec->group = &group;
  group.add_task();
  eng_->spawn_record(rec, this);
}

void Ctx::spawn(const Affinity& aff, TaskFn&& fn) {
  COOL_CHECK(fn.valid(), "spawn of empty TaskFn");
  auto* rec = new TaskRecord;
  rec->handle = fn.release();
  rec->desc.aff = aff;
  eng_->spawn_record(rec, this);
}

std::uint64_t Ctx::migrate(const void* p, std::int64_t target,
                           std::size_t bytes) {
  COOL_CHECK(p != nullptr, "migrate: null pointer");
  // Paper semantics: the processor number is taken modulo the number of
  // server processes.
  return eng_->migrate(*this, reinterpret_cast<std::uint64_t>(p),
                       bytes == 0 ? 1 : bytes, eng_->resolve_proc(target));
}

}  // namespace cool
