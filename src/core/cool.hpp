// Umbrella header for the COOL reproduction library.
//
// Quick tour (see examples/quickstart.cpp for a runnable version):
//
//   cool::SystemConfig cfg;                      // DASH, 32 procs, simulated
//   cool::Runtime rt(cfg);
//   double* data = rt.alloc_array<double>(N, /*home=*/0);
//
//   cool::TaskFn worker(double* d, int i) {
//     auto& c = co_await cool::self();           // execution context
//     c.read(&d[i], sizeof d[i]);                // simulated references
//     d[i] = i;                                  // real computation
//     c.write(&d[i], sizeof d[i]);
//   }
//
//   cool::TaskFn main_task(cool::Runtime& rt, double* d, int n) {
//     auto& c = co_await cool::self();
//     cool::TaskGroup waitfor;                   // the paper's waitfor scope
//     for (int i = 0; i < n; ++i)
//       c.spawn(cool::Affinity::object(&d[i]), waitfor, worker(d, i));
//     co_await c.wait(waitfor);
//   }
//
//   rt.run(main_task(rt, data, N));
//   std::uint64_t cycles = rt.sim_time();
#pragma once

#include "core/costs.hpp"
#include "core/ctx.hpp"
#include "core/record.hpp"
#include "core/runtime.hpp"
#include "core/sim_engine.hpp"
#include "core/sync.hpp"
#include "core/patterns.hpp"
#include "core/taskfn.hpp"
#include "core/trace.hpp"
#include "core/thread_engine.hpp"
#include "sched/affinity.hpp"
#include "topology/machine.hpp"
