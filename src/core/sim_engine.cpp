#include "core/sim_engine.hpp"

#include <algorithm>
#include <atomic>

#include "adaptive/engine.hpp"
#include "analysis/invariants.hpp"
#include "analysis/sync_observer.hpp"
#include "common/check.hpp"
#include "core/profile_hook.hpp"
#include "core/sync.hpp"

namespace cool {

namespace {
/// See total_sim_cycles() — one add per run() keeps this off the hot path.
std::atomic<std::uint64_t> g_total_sim_cycles{0};
}  // namespace

std::uint64_t total_sim_cycles() noexcept {
  return g_total_sim_cycles.load(std::memory_order_relaxed);
}

SimEngine::SimEngine(const topo::MachineConfig& machine,
                     const sched::Policy& policy, const CostModel& costs,
                     bool trace_enabled, std::size_t trace_capacity)
    : machine_(machine),
      costs_(costs),
      mem_(machine_),
      sched_(machine_, policy,
             [this](std::uint64_t addr, topo::ProcId toucher) {
               return mem_.home_of(tr(addr), toucher);
             }),
      procs_(machine_.n_procs),
      util_(machine_.n_procs) {
  if (trace_enabled) {
    trace_ = std::make_unique<obs::TraceCollector>(machine_.n_procs,
                                                   trace_capacity);
  }
}

void SimEngine::attach_obs(obs::Registry& reg) {
  obs_parks_ = reg.counter("engine.parks");
  sched_.attach_obs(reg);
}

void SimEngine::attach_profiler(obs::LocalityProfiler* prof) {
  if (prof_ != nullptr) mem_.remove_observer(prof_);
  prof_ = prof;
  if (prof != nullptr) mem_.add_observer(prof);
}

void SimEngine::attach_race(analysis::SyncObserver* so,
                            mem::AccessObserver* tap) {
  sync_obs_ = so;
  if (tap != nullptr) mem_.add_observer(tap);
}

SimEngine::~SimEngine() {
  for (TaskRecord* rec : live_recs_) destroy_record(rec);
}

void SimEngine::destroy_record(TaskRecord* rec) {
  if (rec->handle) rec->handle.destroy();
  rec->handle = {};
  delete rec;
}

void SimEngine::reinsert(topo::ProcId p) {
  runq_.insert({procs_[p].clock, p});
}

void SimEngine::park(topo::ProcId p) {
  procs_[p].parked = true;
  obs_parks_.add(p);
}

void SimEngine::wake_parked() {
  for (std::uint32_t p = 0; p < machine_.n_procs; ++p) {
    if (procs_[p].parked) {
      procs_[p].parked = false;
      reinsert(p);
    }
  }
}

// --- Engine interface -------------------------------------------------------

void SimEngine::mem_access(Ctx& c, std::uint64_t addr, std::uint64_t bytes,
                           bool is_write) {
  Proc& pr = procs_[c.proc_];
  pr.clock += mem_.access(c.proc_, tr(addr), bytes, is_write, pr.clock);
}

void SimEngine::work(Ctx& c, std::uint64_t cycles) {
  procs_[c.proc_].clock += cycles;
}

void SimEngine::charge(Ctx& c, std::uint64_t cycles) {
  procs_[c.proc_].clock += cycles;
  util_[c.proc_].sched += cycles;
}

std::uint64_t SimEngine::now(const Ctx& c) const { return procs_[c.proc_].clock; }

std::uint64_t SimEngine::migrate(Ctx& c, std::uint64_t addr,
                                 std::uint64_t bytes, topo::ProcId target) {
  const std::uint64_t cost = mem_.migrate(c.proc_, tr(addr), bytes, target);
  const std::uint64_t t0 = procs_[c.proc_].clock;
  procs_[c.proc_].clock += cost;
  if (trace_) {
    trace_->buf(c.proc_).record(obs::Event{
        t0, t0 + cost, target, bytes, c.proc_, obs::EventKind::kMigration, 0});
  }
  return cost;
}

topo::ProcId SimEngine::home(std::uint64_t addr, topo::ProcId toucher) {
  return mem_.home_of(tr(addr), toucher);
}

std::uint64_t SimEngine::adaptive_migrate(topo::ProcId caller,
                                          std::uint64_t sim_addr,
                                          std::uint64_t bytes,
                                          topo::ProcId target,
                                          std::uint64_t now) {
  // `sim_addr` is already arena-relative: the adaptive engine works on
  // profiler addresses, which the profiler receives translated.
  const std::uint64_t cost = mem_.migrate(caller, sim_addr, bytes, target);
  if (trace_) {
    trace_->buf(caller).record(obs::Event{now, now + cost, target, bytes,
                                          caller, obs::EventKind::kMigration,
                                          0});
  }
  return cost;
}

void SimEngine::spawn_record(TaskRecord* rec, Ctx* spawner) {
  rec->desc.seq = ++seq_;
  if (sync_obs_ != nullptr) {
    sync_obs_->on_spawn(
        spawner != nullptr ? spawner->record()->desc.seq : 0, rec->desc.seq);
  }
  topo::ProcId from = 0;
  if (spawner != nullptr) {
    charge(*spawner, costs_.spawn);
    from = spawner->proc_;
    rec->desc.ready_time = procs_[from].clock;
  } else {
    rec->desc.ready_time = 0;
  }
  live_recs_.insert(rec);
  ++live_;
  const topo::ProcId server = sched_.place(&rec->desc, from);
  // Reservation decisions land in the trace. Reading the descriptor after
  // place() is safe here only because the simulation engine is
  // single-threaded; the threaded engine must not imitate this.
  if (trace_ && rec->desc.reserved) {
    const std::uint64_t now = procs_[from].clock;
    trace_->buf(from).record(obs::Event{now, now, server, 1, from,
                                        obs::EventKind::kBalance,
                                        obs::kBalanceReserve});
  }
  wake_parked();
}

void SimEngine::unblock(TaskRecord* rec, Ctx* unblocker) {
  rec->state = TaskState::kReady;
  if (unblocker != nullptr) {
    rec->desc.ready_time =
        std::max(rec->desc.ready_time, procs_[unblocker->proc_].clock);
  }
  sched_.enqueue_resumed(&rec->desc);
  wake_parked();
}

void SimEngine::on_complete(Ctx& c) { disp_ = Disposition::kCompleted; (void)c; }

void SimEngine::on_block(Ctx& c) {
  disp_ = Disposition::kBlocked;
  // Stamp the block time; unblock() takes the max with the waker's clock.
  c.rec_->desc.ready_time = procs_[c.proc_].clock;
}

void SimEngine::on_yield(Ctx& c) {
  disp_ = Disposition::kYielded;
  c.rec_->desc.ready_time = procs_[c.proc_].clock;
}

void SimEngine::bind_range(std::uint64_t addr, std::uint64_t bytes,
                           topo::ProcId home_proc) {
  mem_.bind_range(tr(addr), bytes, home_proc);
}

// --- Simulation loop --------------------------------------------------------

void SimEngine::step(topo::ProcId p) {
  Proc& pr = procs_[p];
  if (pr.current == nullptr) {
    const auto acq = sched_.acquire(p);
    if (acq.task == nullptr) {
      park(p);
      return;
    }
    std::uint64_t overhead = costs_.dispatch;
    if (acq.stolen) {
      overhead = acq.stolen_remote_cluster ? costs_.steal_remote
                                           : costs_.steal_local;
      ++util_[p].steals;
      if (trace_) {
        trace_->buf(p).record(obs::Event{pr.clock, pr.clock, acq.victim, 1, p,
                                         obs::EventKind::kSteal, 0});
      }
    } else if (acq.moved) {
      // A balancer move crosses the same interconnect a steal does.
      overhead = machine_.same_cluster(p, acq.victim) ? costs_.steal_local
                                                      : costs_.steal_remote;
      if (trace_) {
        trace_->buf(p).record(obs::Event{pr.clock, pr.clock, acq.victim, 1, p,
                                         obs::EventKind::kBalance,
                                         obs::kBalanceMove});
      }
    }
    pr.clock += overhead;
    util_[p].sched += overhead;
    TaskRecord* rec = TaskRecord::of(acq.task);
    if (sched_.policy().prefetch_objects && rec->desc.aff.has_multi()) {
      // Paper §8: prefetch the task's affinity objects at dispatch; the
      // fetches overlap execution, so only a per-line issue cost is charged.
      for (int i = 0; i < rec->desc.aff.n_objs; ++i) {
        const auto& obj = rec->desc.aff.objs[i];
        const std::uint64_t lines =
            mem_.prefetch(p, tr(obj.addr), obj.bytes, pr.clock);
        // 4 cycles per issued prefetch; the fills themselves overlap with
        // execution (an idealised but bandwidth-consuming prefetch model).
        pr.clock += lines * 4;
        util_[p].sched += lines * 4;
      }
    }
    if (rec->desc.ready_time > pr.clock) {
      util_[p].idle += rec->desc.ready_time - pr.clock;
      if (trace_) {
        trace_->buf(p).record(obs::Event{pr.clock, rec->desc.ready_time, 0, 0,
                                         p, obs::EventKind::kIdleGap, 0});
      }
      pr.clock = rec->desc.ready_time;
    }
    if (prof_ != nullptr) {
      const std::uint64_t key = affinity_set_key(rec->desc.aff);
      prof_->on_task_dispatch(
          p, hint_class_of(rec->desc.aff),
          key != 0 ? tr(key) : obs::LocalityProfiler::kNoSet, acq.stolen);
    }
    if (sync_obs_ != nullptr) {
      const std::uint64_t key = affinity_set_key(rec->desc.aff);
      sync_obs_->on_task_run(
          p, rec->desc.seq, hint_class_of(rec->desc.aff),
          key != 0 ? tr(key) : analysis::SyncObserver::kNoSet);
    }
    if (adapt_ != nullptr) {
      // The adaptive engine may close an epoch here: it reads the profiler
      // and metric deltas, runs the advisor rules, and fires actuators. The
      // cycles it reports (epoch evaluation + migrations) are real scheduler
      // overhead, charged to this processor.
      const std::size_t logged = adapt_->log().size();
      const std::uint64_t t0a = pr.clock;
      const std::uint64_t cost = adapt_->on_task_dispatch(p, pr.clock);
      if (cost > 0) {
        pr.clock += cost;
        util_[p].sched += cost;
      }
      if (trace_) {
        const std::vector<adaptive::Decision>& lg = adapt_->log();
        for (std::size_t i = logged; i < lg.size(); ++i) {
          trace_->buf(p).record(obs::Event{
              t0a, pr.clock, i,
              static_cast<std::uint64_t>(lg[i].rule), p,
              obs::EventKind::kAdaptation, 0});
        }
      }
    }
    pr.current = rec;
  }

  TaskRecord* rec = pr.current;
  rec->ctx.eng_ = this;
  rec->ctx.proc_ = p;
  rec->ctx.rec_ = rec;
  rec->handle.promise().ctx = &rec->ctx;
  rec->state = TaskState::kRunning;
  disp_ = Disposition::kNone;

  const std::uint64_t t0 = pr.clock;
  const std::uint64_t task_seq = rec->desc.seq;
  const bool was_stolen = rec->desc.stolen;
  rec->handle.resume();
  util_[p].busy += pr.clock - t0;
  if (trace_) {
    const std::uint8_t end = disp_ == Disposition::kCompleted
                                 ? obs::kSpanCompleted
                             : disp_ == Disposition::kBlocked
                                 ? obs::kSpanBlocked
                                 : obs::kSpanYielded;
    trace_->buf(p).record(obs::Event{t0, pr.clock, task_seq, 0, p,
                                     obs::EventKind::kTaskSpan,
                                     obs::span_flags(was_stolen, end)});
  }

  switch (disp_) {
    case Disposition::kCompleted: {
      pr.clock += costs_.complete;
      util_[p].sched += costs_.complete;
      if (rec->handle.promise().exn && !err_) {
        err_ = rec->handle.promise().exn;
      }
      TaskGroup* grp = rec->group;
      if (grp != nullptr) grp->task_done(rec->ctx);
      live_recs_.erase(rec);
      destroy_record(rec);
      --live_;
      ++tasks_completed_;
      ++util_[p].tasks;
      pr.current = nullptr;
      break;
    }
    case Disposition::kBlocked:
      // The record now belongs to the structure it blocked on (it may even
      // have been unblocked already and be queued elsewhere): hands off.
      pr.current = nullptr;
      break;
    case Disposition::kYielded:
      rec->state = TaskState::kReady;
      sched_.enqueue_yielded(&rec->desc);
      wake_parked();
      pr.current = nullptr;
      break;
    case Disposition::kNone:
      COOL_CHECK(false, "task suspended without reporting a disposition");
  }
  reinsert(p);
}

void SimEngine::run(TaskFn&& root) {
  COOL_CHECK(!running_, "SimEngine::run is not reentrant");
  COOL_CHECK(root.valid(), "run of empty TaskFn");
  running_ = true;

  std::uint64_t clocks_at_entry = 0;
  for (const Proc& pr : procs_) clocks_at_entry += pr.clock;

  auto* rec = new TaskRecord;
  rec->handle = root.release();
  rec->desc.aff = Affinity::none();
  spawn_record(rec, nullptr);

  for (std::uint32_t p = 0; p < machine_.n_procs; ++p) {
    procs_[p].parked = false;
    reinsert(p);
  }

  while (live_ > 0 && !err_) {
    if (runq_.empty()) {
      running_ = false;
      throw util::Error(
          "deadlock: tasks remain blocked but no processor can make progress");
    }
    const auto [t, p] = *runq_.begin();
    runq_.erase(runq_.begin());
    step(static_cast<topo::ProcId>(p));
  }

  // Quiesce point: every worker has stopped, so cross-queue invariants
  // (task uniqueness, ledger balance) are checkable. Default-level and up.
  if (util::check_level() != util::CheckLevel::kOff) {
    analysis::check_scheduler_quiescent(sched_);
  }

  finish_time_ = 0;
  std::uint64_t clocks_at_exit = 0;
  for (const Proc& pr : procs_) {
    finish_time_ = std::max(finish_time_, pr.clock);
    clocks_at_exit += pr.clock;
  }
  g_total_sim_cycles.fetch_add(clocks_at_exit - clocks_at_entry,
                               std::memory_order_relaxed);
  runq_.clear();
  for (auto& pr : procs_) {
    pr.current = nullptr;
    pr.parked = false;
  }
  running_ = false;
  if (err_) {
    auto e = err_;
    err_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace cool
