// Ctx — the execution context of a running COOL task.
//
// Obtained inside a task body with `auto& c = co_await cool::self();`.
// Provides:
//   * the simulated-memory interface (read/write/work) that drives the DASH
//     model in simulation mode (no-ops under the thread engine);
//   * spawning of parallel functions with affinity hints;
//   * the object-distribution primitives of the paper: migrate() and home();
//   * awaitable synchronisation (lock, group wait, condition wait, yield)
//     declared in core/sync.hpp.
#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "sched/affinity.hpp"
#include "topology/machine.hpp"

namespace cool {

class TaskFn;
class TaskGroup;
class Mutex;
class Cond;
struct TaskRecord;

using Affinity = sched::Affinity;

class Ctx {
 public:
  [[nodiscard]] topo::ProcId proc() const noexcept { return proc_; }
  [[nodiscard]] std::uint64_t now() const { return eng_->now(*this); }

  /// Simulated read of [p, p+bytes). The data itself is real — application
  /// code computes real values — this charges the memory model.
  void read(const void* p, std::size_t bytes) {
    eng_->mem_access(*this, reinterpret_cast<std::uint64_t>(p), bytes, false);
  }
  /// Simulated write of [p, p+bytes).
  void write(const void* p, std::size_t bytes) {
    eng_->mem_access(*this, reinterpret_cast<std::uint64_t>(p), bytes, true);
  }
  /// Simulated read-modify-write (read + write of the same range).
  void update(const void* p, std::size_t bytes) {
    read(p, bytes);
    write(p, bytes);
  }
  /// Pure compute: charge `cycles` of processor time.
  void work(std::uint64_t cycles) { eng_->work(*this, cycles); }

  /// Spawn a parallel function with affinity hints, tracked by `group`
  /// (the paper's waitfor scope).
  void spawn(const Affinity& aff, TaskGroup& group, TaskFn&& fn);
  /// Spawn without a group (still tracked for program termination).
  void spawn(const Affinity& aff, TaskFn&& fn);

  /// COOL's migrate(ptr, proc[, bytes]): move the pages spanned by the range
  /// to `target`'s local memory (modulo the number of servers). Charges the
  /// migration cost; returns the cycles charged.
  std::uint64_t migrate(const void* p, std::int64_t target, std::size_t bytes);

  /// COOL's home(ptr): the processor whose local memory holds `p`.
  topo::ProcId home(const void* p) {
    return eng_->home(reinterpret_cast<std::uint64_t>(p), proc_);
  }

  /// Awaitables — defined in core/sync.hpp.
  [[nodiscard]] auto lock(Mutex& m);
  [[nodiscard]] auto wait(TaskGroup& g);
  [[nodiscard]] auto wait(Cond& cv, Mutex& m);
  [[nodiscard]] auto yield();

  [[nodiscard]] Engine* engine() const noexcept { return eng_; }
  [[nodiscard]] TaskRecord* record() const noexcept { return rec_; }

  // Engine-internal: contexts are created and rebound by engines only.
  Engine* eng_ = nullptr;
  topo::ProcId proc_ = 0;
  TaskRecord* rec_ = nullptr;
};

}  // namespace cool
