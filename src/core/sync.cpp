#include "core/sync.hpp"

namespace cool {

void Mutex::unlock(Ctx& c) {
  c.engine()->charge(c, c.engine()->costs().mutex_release);
  analysis::SyncObserver* so = c.engine()->sync_observer();
  if (so != nullptr) so->on_release(this, c.record()->desc.seq);
  TaskRecord* next = nullptr;
  {
    std::lock_guard g(m_);
    COOL_CHECK(held_, "unlock of an unheld mutex");
    if (sched::TaskDesc* d = waiters_.pop_front()) {
      next = TaskRecord::of(d);
      holder_ = next;  // Direct FIFO handoff: no barging, deterministic.
    } else {
      held_ = false;
      holder_ = nullptr;
    }
  }
  if (next != nullptr) {
    // The handoff IS the next holder's acquisition.
    if (so != nullptr) so->on_acquire(this, next->desc.seq);
    c.engine()->unblock(next, &c);
  }
}

void TaskGroup::task_done(Ctx& completer) {
  analysis::SyncObserver* so = completer.engine()->sync_observer();
  // Every member's completion is ordered before the waitfor return, not just
  // the last one's, so each contributes a source edge.
  if (so != nullptr) so->on_group_done(this, completer.record()->desc.seq);
  std::vector<TaskRecord*> to_wake;
  {
    std::lock_guard g(m_);
    COOL_CHECK(outstanding_ > 0, "task_done without outstanding tasks");
    if (--outstanding_ != 0) return;
    while (sched::TaskDesc* d = waiters_.pop_front()) {
      to_wake.push_back(TaskRecord::of(d));
    }
  }
  for (TaskRecord* rec : to_wake) {
    if (so != nullptr) so->on_group_wait(this, rec->desc.seq);
    completer.engine()->unblock(rec, &completer);
  }
}

void Cond::wake(Ctx& c, TaskRecord* rec) {
  analysis::SyncObserver* so = c.engine()->sync_observer();
  if (so != nullptr) so->on_cond_wake(this, rec->desc.seq);
  Mutex* mu = rec->reacquire;
  COOL_CHECK(mu != nullptr, "cond waiter lost its monitor mutex");
  rec->reacquire = nullptr;
  bool acquired = false;
  {
    std::lock_guard g(mu->m_);
    if (!mu->held_) {
      mu->held_ = true;
      mu->holder_ = rec;
      acquired = true;
    } else {
      // Monitor still busy: queue on the mutex; the eventual unlock hands it
      // off and unblocks the task then.
      mu->waiters_.push_back(&rec->desc);
    }
  }
  if (acquired) {
    if (so != nullptr) so->on_acquire(mu, rec->desc.seq);
    c.engine()->unblock(rec, &c);
  }
}

void Cond::signal(Ctx& c) {
  c.engine()->charge(c, c.engine()->costs().cond_op);
  TaskRecord* rec = nullptr;
  {
    std::lock_guard g(m_);
    if (sched::TaskDesc* d = waiters_.pop_front()) rec = TaskRecord::of(d);
  }
  if (rec != nullptr) {
    if (auto* so = c.engine()->sync_observer()) {
      so->on_cond_signal(this, c.record()->desc.seq);
    }
    wake(c, rec);
  }
}

void Cond::broadcast(Ctx& c) {
  c.engine()->charge(c, c.engine()->costs().cond_op);
  std::vector<TaskRecord*> recs;
  {
    std::lock_guard g(m_);
    while (sched::TaskDesc* d = waiters_.pop_front()) {
      recs.push_back(TaskRecord::of(d));
    }
  }
  if (!recs.empty()) {
    if (auto* so = c.engine()->sync_observer()) {
      so->on_cond_signal(this, c.record()->desc.seq);
    }
  }
  for (TaskRecord* rec : recs) wake(c, rec);
}

}  // namespace cool
