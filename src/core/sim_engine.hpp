// SimEngine — deterministic execution-driven simulation of the COOL runtime
// on the DASH memory hierarchy.
//
// Each simulated processor owns a clock; the engine always resumes the
// runnable processor with the smallest clock (processor id breaks ties), so
// execution interleaving is approximately time-ordered and fully
// deterministic. Application code runs natively inside coroutines; memory
// references charge the MemorySystem; scheduling operations charge the
// CostModel; idle processors park until new work is signalled.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/costs.hpp"
#include "core/engine.hpp"
#include "core/record.hpp"
#include "core/trace.hpp"
#include "core/taskfn.hpp"
#include "memsim/memsystem.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "topology/machine.hpp"

namespace cool::adaptive {
class AdaptiveEngine;
}  // namespace cool::adaptive

namespace cool {

/// Process-wide total of simulated processor-cycles executed by every
/// SimEngine::run() so far (sum over processors of clock advance). The
/// bench harness divides its delta by wall time to report `sim_rate` —
/// simulated cycles per wall-second, the simulator-speed trajectory metric.
/// Monotone, atomic, and zero-cost on the simulation path (updated once per
/// run, not per event).
[[nodiscard]] std::uint64_t total_sim_cycles() noexcept;

/// Per-processor utilisation, reported after a run.
struct ProcUtil {
  std::uint64_t busy = 0;   ///< Cycles spent executing tasks.
  std::uint64_t idle = 0;   ///< Cycles waiting for work.
  std::uint64_t sched = 0;  ///< Cycles in dispatch/steal/spawn overhead.
  std::uint64_t tasks = 0;  ///< Tasks executed to completion here.
  std::uint64_t steals = 0; ///< Tasks acquired by stealing.
};

class SimEngine final : public Engine {
 public:
  SimEngine(const topo::MachineConfig& machine, const sched::Policy& policy,
            const CostModel& costs, bool trace_enabled = false,
            std::size_t trace_capacity = 1 << 16);
  ~SimEngine() override;

  /// Drive `root` (and everything it spawns) to completion. Throws on task
  /// exceptions and on deadlock.
  void run(TaskFn&& root);

  [[nodiscard]] std::uint64_t finish_time() const noexcept {
    return finish_time_;
  }
  mem::MemorySystem& memsys() noexcept { return mem_; }
  [[nodiscard]] const mem::MemorySystem& memsys() const noexcept { return mem_; }
  sched::Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] const sched::Scheduler& scheduler() const noexcept {
    return sched_;
  }
  [[nodiscard]] const std::vector<ProcUtil>& utilization() const noexcept {
    return util_;
  }
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept {
    return tasks_completed_;
  }
  /// Ring-buffer trace collector (null unless tracing was enabled).
  [[nodiscard]] const obs::TraceCollector* trace_collector() const noexcept {
    return trace_.get();
  }
  /// Register engine+scheduler live metrics with `reg` (see Scheduler).
  void attach_obs(obs::Registry& reg);
  /// Attach (or with nullptr, detach) the locality profiler: taps every
  /// simulated memory access and is told the running task's hint class at
  /// each dispatch. Purely passive — simulated cycle counts are unchanged.
  void attach_profiler(obs::LocalityProfiler* prof);
  /// Attach the race detector's two taps: `so` receives spawn/dispatch and
  /// every synchronisation edge, `tap` the byte-ranged access stream. Both
  /// usually point at the same analysis::RaceDetector. Passive, like the
  /// profiler; coexists with it (the memory system fans out to all observers).
  void attach_race(analysis::SyncObserver* so, mem::AccessObserver* tap);
  /// Attach the adaptive runtime: notified once per task dispatch, and unlike
  /// the passive observers its epoch evaluations and actuator work charge
  /// simulated cycles to the dispatching processor.
  void attach_adaptive(adaptive::AdaptiveEngine* a) { adapt_ = a; }
  /// Migrate without a task context (the adaptive engine acts from the
  /// dispatch path, not from inside a running task). Returns the cycle cost;
  /// the caller decides which clock to charge.
  std::uint64_t adaptive_migrate(topo::ProcId caller, std::uint64_t sim_addr,
                                 std::uint64_t bytes, topo::ProcId target,
                                 std::uint64_t now);

  // --- Engine interface ----------------------------------------------------
  void mem_access(Ctx& c, std::uint64_t addr, std::uint64_t bytes,
                  bool is_write) override;
  void work(Ctx& c, std::uint64_t cycles) override;
  void charge(Ctx& c, std::uint64_t cycles) override;
  [[nodiscard]] const CostModel& costs() const override { return costs_; }
  [[nodiscard]] std::uint64_t now(const Ctx& c) const override;
  std::uint64_t migrate(Ctx& c, std::uint64_t addr, std::uint64_t bytes,
                        topo::ProcId target) override;
  topo::ProcId home(std::uint64_t addr, topo::ProcId toucher) override;
  [[nodiscard]] topo::ProcId resolve_proc(std::int64_t n) const override {
    return static_cast<topo::ProcId>(
        static_cast<std::uint64_t>(n < 0 ? 0 : n) % machine_.n_procs);
  }
  void spawn_record(TaskRecord* rec, Ctx* spawner) override;
  void unblock(TaskRecord* rec, Ctx* unblocker) override;
  void on_complete(Ctx& c) override;
  void on_block(Ctx& c) override;
  void on_yield(Ctx& c) override;
  void bind_range(std::uint64_t addr, std::uint64_t bytes,
                  topo::ProcId home_proc) override;
  void set_addr_base(std::uint64_t base) override { addr_base_ = base; }

 private:
  enum class Disposition : std::uint8_t { kNone, kCompleted, kBlocked, kYielded };

  struct Proc {
    std::uint64_t clock = 0;
    TaskRecord* current = nullptr;
    bool parked = false;
  };

  /// Normalise a raw pointer value to an arena-relative simulated address.
  [[nodiscard]] std::uint64_t tr(std::uint64_t addr) const noexcept {
    return addr - addr_base_;
  }

  void step(topo::ProcId p);
  void park(topo::ProcId p);
  void wake_parked();
  void reinsert(topo::ProcId p);
  void destroy_record(TaskRecord* rec);

  topo::MachineConfig machine_;
  CostModel costs_;
  mem::MemorySystem mem_;
  sched::Scheduler sched_;
  std::vector<Proc> procs_;
  std::vector<ProcUtil> util_;
  /// Runnable processors ordered by (clock, id): the simulation frontier.
  std::set<std::pair<std::uint64_t, std::uint32_t>> runq_;
  std::unordered_set<TaskRecord*> live_recs_;
  std::uint64_t live_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t finish_time_ = 0;
  std::uint64_t tasks_completed_ = 0;
  Disposition disp_ = Disposition::kNone;
  std::exception_ptr err_;
  bool running_ = false;
  std::uint64_t addr_base_ = 0;
  std::unique_ptr<obs::TraceCollector> trace_;  ///< Null when tracing is off.
  obs::Counter obs_parks_;  ///< Idle transitions (detached until attach_obs).
  obs::LocalityProfiler* prof_ = nullptr;  ///< Null unless profiling.
  adaptive::AdaptiveEngine* adapt_ = nullptr;  ///< Null unless --adapt.
};

}  // namespace cool
