// COOL synchronisation primitives as coroutine awaitables.
//
//   Mutex     — monitor-style exclusive access; the library analogue of a
//               COOL `mutex` member function is `auto g = co_await c.lock(mu)`
//               at the top of the task body.
//   Cond      — condition variables with signal/broadcast (paper §2: "event
//               synchronization is expressed through operations on condition
//               variables").
//   TaskGroup — the `waitfor` construct: tasks spawned into a group; the
//               waiter resumes when all of them have completed.
//
// Thread-safety: every structure protects its state with a std::mutex so the
// same code runs under both engines. Under the simulation engine (single OS
// thread) the locks are uncontended and effectively free.
//
// Blocking protocol (shared with the engines): an awaiter that decides to
// block (1) marks the record, (2) calls engine->on_block(ctx) — which stamps
// the block time and the engine-local disposition — and (3) registers the
// record on the structure's wait list, then returns true to suspend. From the
// moment of registration the resuming thread must not touch the record again:
// another processor may legally unblock and resume it. Wake-ups go through
// engine->unblock(), which re-enqueues the task on its server's queue.
#pragma once

#include <mutex>
#include <vector>

#include "analysis/sync_observer.hpp"
#include "common/error.hpp"
#include "common/intrusive_list.hpp"
#include "core/ctx.hpp"
#include "core/record.hpp"
#include "core/taskfn.hpp"

namespace cool {

using WaitList = util::IntrusiveList<sched::TaskDesc, &sched::TaskDesc::hook>;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

class LockGuard;

class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  [[nodiscard]] bool locked() const {
    std::lock_guard g(m_);
    return held_;
  }

 private:
  friend class LockGuard;
  friend class Cond;
  friend struct LockAwaiter;
  friend struct CondWaitAwaiter;

  /// Release; hands off directly to the next FIFO waiter, if any.
  void unlock(Ctx& c);

  mutable std::mutex m_;
  bool held_ = false;
  TaskRecord* holder_ = nullptr;
  WaitList waiters_;
};

/// RAII ownership of a Mutex, released at scope exit (or explicitly).
class LockGuard {
 public:
  LockGuard() = default;
  LockGuard(Ctx* c, Mutex* mu) : c_(c), mu_(mu) {}
  LockGuard(LockGuard&& o) noexcept
      : c_(std::exchange(o.c_, nullptr)), mu_(std::exchange(o.mu_, nullptr)) {}
  LockGuard& operator=(LockGuard&& o) noexcept {
    if (this != &o) {
      unlock();
      c_ = std::exchange(o.c_, nullptr);
      mu_ = std::exchange(o.mu_, nullptr);
    }
    return *this;
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  ~LockGuard() { unlock(); }

  void unlock() {
    if (mu_ != nullptr) {
      // Detach before unlocking so a throwing unlock (misuse) is not
      // re-attempted from the destructor during unwinding.
      Mutex* m = std::exchange(mu_, nullptr);
      m->unlock(*c_);
    }
  }

  [[nodiscard]] bool owns() const noexcept { return mu_ != nullptr; }
  [[nodiscard]] Mutex* mutex() const noexcept { return mu_; }

 private:
  friend class Cond;
  Ctx* c_ = nullptr;
  Mutex* mu_ = nullptr;
};

struct LockAwaiter {
  Ctx& c;
  Mutex& mu;

  bool await_ready() const noexcept { return false; }
  bool await_suspend(TaskFn::Handle) {
    TaskRecord* rec = c.record();
    c.engine()->charge(c, c.engine()->costs().mutex_acquire);
    {
      std::lock_guard g(mu.m_);
      if (mu.held_) {
        rec->state = TaskState::kBlocked;
        c.engine()->on_block(c);
        mu.waiters_.push_back(&rec->desc);
        return true;
      }
      mu.held_ = true;
      mu.holder_ = rec;
    }
    // Acquired without blocking: joins whatever the previous holder released.
    // (The blocked path's edge is emitted by Mutex::unlock at handoff.)
    if (auto* so = c.engine()->sync_observer()) {
      so->on_acquire(&mu, rec->desc.seq);
    }
    return false;
  }
  LockGuard await_resume() const noexcept { return LockGuard(&c, &mu); }
};

// ---------------------------------------------------------------------------
// TaskGroup (waitfor)
// ---------------------------------------------------------------------------

class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  [[nodiscard]] std::uint64_t outstanding() const {
    std::lock_guard g(m_);
    return outstanding_;
  }

  /// Runtime-internal: a task was spawned into this group.
  void add_task() {
    std::lock_guard g(m_);
    ++outstanding_;
  }

  /// Runtime-internal: a member task completed (called by the engines).
  void task_done(Ctx& completer);

 private:
  friend struct GroupWaitAwaiter;
  mutable std::mutex m_;
  std::uint64_t outstanding_ = 0;
  WaitList waiters_;
};

struct GroupWaitAwaiter {
  Ctx& c;
  TaskGroup& grp;

  bool await_ready() const noexcept { return false; }
  bool await_suspend(TaskFn::Handle) {
    TaskRecord* rec = c.record();
    {
      std::lock_guard g(grp.m_);
      if (grp.outstanding_ != 0) {
        rec->state = TaskState::kBlocked;
        c.engine()->on_block(c);
        grp.waiters_.push_back(&rec->desc);
        return true;
      }
    }
    // Nothing to wait for — but members that already completed still ordered
    // themselves before this waitfor, so join their edges.
    if (auto* so = c.engine()->sync_observer()) {
      so->on_group_wait(&grp, rec->desc.seq);
    }
    return false;
  }
  void await_resume() const noexcept {}
};

// ---------------------------------------------------------------------------
// Cond
// ---------------------------------------------------------------------------

class Cond {
 public:
  Cond() = default;
  Cond(const Cond&) = delete;
  Cond& operator=(const Cond&) = delete;

  /// Wake one waiter. The caller should hold the associated Mutex (monitor
  /// discipline); the woken task re-acquires that mutex before resuming.
  void signal(Ctx& c);
  /// Wake all waiters.
  void broadcast(Ctx& c);

  [[nodiscard]] std::size_t n_waiting() const {
    std::lock_guard g(m_);
    return waiters_.size();
  }

 private:
  friend struct CondWaitAwaiter;
  void wake(Ctx& c, TaskRecord* rec);

  mutable std::mutex m_;
  WaitList waiters_;
};

struct CondWaitAwaiter {
  Ctx& c;
  Cond& cv;
  Mutex& mu;

  bool await_ready() const noexcept { return false; }
  bool await_suspend(TaskFn::Handle) {
    TaskRecord* rec = c.record();
    {
      std::lock_guard g(mu.m_);
      COOL_CHECK(mu.holder_ == rec, "cond wait requires holding the mutex");
    }
    rec->state = TaskState::kBlocked;
    rec->reacquire = &mu;
    c.engine()->on_block(c);
    {
      std::lock_guard g(cv.m_);
      cv.waiters_.push_back(&rec->desc);
    }
    // Release the monitor while waiting; on signal the mutex is re-acquired
    // on our behalf before we are resumed, so the caller's LockGuard remains
    // valid across the wait.
    mu.unlock(c);
    return true;
  }
  void await_resume() const noexcept {}
};

// ---------------------------------------------------------------------------
// Yield
// ---------------------------------------------------------------------------

struct YieldAwaiter {
  Ctx& c;
  bool await_ready() const noexcept { return false; }
  bool await_suspend(TaskFn::Handle) {
    c.record()->state = TaskState::kYielded;
    c.engine()->on_yield(c);
    return true;
  }
  void await_resume() const noexcept {}
};

// ---------------------------------------------------------------------------
// Ctx awaitable factories (declared in ctx.hpp)
// ---------------------------------------------------------------------------

inline auto Ctx::lock(Mutex& m) { return LockAwaiter{*this, m}; }
inline auto Ctx::wait(TaskGroup& g) { return GroupWaitAwaiter{*this, g}; }
inline auto Ctx::wait(Cond& cv, Mutex& m) { return CondWaitAwaiter{*this, cv, m}; }
inline auto Ctx::yield() { return YieldAwaiter{*this}; }

// The final awaiter notifies the engine while the resuming thread still owns
// the frame (see taskfn.hpp).
inline void TaskFn::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  Ctx* c = h.promise().ctx;
  c->engine()->on_complete(*c);
}

}  // namespace cool
