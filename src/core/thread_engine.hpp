// ThreadEngine — executes COOL tasks on real OS threads (one worker per
// simulated server) over the same scheduler structure as the simulation.
//
// Purpose: functional and concurrency validation of the programming model
// (spawn/waitfor/mutex/cond semantics race for real here), and a base for
// running on an actual NUMA machine. There is no timing model: read/write/
// work are no-ops, now() is 0, and migrate()/home() only update the page map
// so affinity placement still works.
//
// Tracing: with trace_enabled, each worker records task-span events into its
// own obs ring buffer (single writer, no locks) with microsecond wall-clock
// timestamps, so real-thread runs get the same span/steal observability as
// the simulator (Runtime::trace(), chrome_trace()).
//
// Locking: every scheduling operation (place/acquire/enqueue/steal) goes
// straight to the internally-sharded Scheduler with NO engine lock — workers
// contend only on individual per-server queue mutexes. `big_` survives only
// as the guard for the page map and the live-record set; the idle/wakeup
// path uses the scheduler's per-server gates (see sched/scheduler.hpp) and
// run()'s completion wait uses its own `done_m_`/`done_cv_`.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/costs.hpp"
#include "core/engine.hpp"
#include "core/record.hpp"
#include "core/taskfn.hpp"
#include "memsim/pagemap.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "topology/machine.hpp"

namespace cool {

class ThreadEngine final : public Engine {
 public:
  ThreadEngine(const topo::MachineConfig& machine, const sched::Policy& policy,
               bool trace_enabled = false, std::size_t trace_capacity = 1 << 16);
  ~ThreadEngine() override;

  /// Drive `root` to completion using n_procs worker threads. Throws the
  /// first task exception, or on timeout (likely deadlock).
  void run(TaskFn&& root, std::uint64_t timeout_ms = 60000);

  sched::Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] const sched::Scheduler& scheduler() const noexcept {
    return sched_;
  }
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept {
    return tasks_completed_.load();
  }
  /// Ring-buffer trace collector (null unless tracing was enabled). Read only
  /// after run() returned — workers write concurrently during a run.
  [[nodiscard]] const obs::TraceCollector* trace_collector() const noexcept {
    return trace_.get();
  }
  /// Register engine+scheduler live metrics with `reg` (see Scheduler).
  void attach_obs(obs::Registry& reg) { sched_.attach_obs(reg); }
  /// Attach the locality profiler. With no memory model there is nothing to
  /// tap, but the dispatch hook still attributes tasks to hint classes and
  /// affinity sets (each worker writes only its own shard).
  void attach_profiler(obs::LocalityProfiler* prof) { prof_ = prof; }

  // --- Engine interface ----------------------------------------------------
  void mem_access(Ctx&, std::uint64_t, std::uint64_t, bool) override {}
  void work(Ctx&, std::uint64_t) override {}
  void charge(Ctx&, std::uint64_t) override {}
  [[nodiscard]] const CostModel& costs() const override {
    static const CostModel kDefault;
    return kDefault;
  }
  [[nodiscard]] std::uint64_t now(const Ctx&) const override { return 0; }
  std::uint64_t migrate(Ctx& c, std::uint64_t addr, std::uint64_t bytes,
                        topo::ProcId target) override;
  topo::ProcId home(std::uint64_t addr, topo::ProcId toucher) override;
  [[nodiscard]] topo::ProcId resolve_proc(std::int64_t n) const override {
    return static_cast<topo::ProcId>(
        static_cast<std::uint64_t>(n < 0 ? 0 : n) % machine_.n_procs);
  }
  void spawn_record(TaskRecord* rec, Ctx* spawner) override;
  void unblock(TaskRecord* rec, Ctx* unblocker) override;
  void on_complete(Ctx& c) override;
  void on_block(Ctx& c) override;
  void on_yield(Ctx& c) override;
  void bind_range(std::uint64_t addr, std::uint64_t bytes,
                  topo::ProcId home_proc) override;
  void set_addr_base(std::uint64_t base) override { addr_base_ = base; }

 private:
  enum class Disposition : std::uint8_t { kNone, kCompleted, kBlocked, kYielded };

  void worker_loop(topo::ProcId id);
  void execute(topo::ProcId id, TaskRecord* rec);

  topo::MachineConfig machine_;
  mem::PageMap pages_;

  std::mutex big_;  ///< Guards pages_ and live_recs_ only — never scheduling.
  sched::Scheduler sched_;
  std::unordered_set<TaskRecord*> live_recs_;
  std::atomic<bool> stop_{false};

  std::mutex done_m_;  ///< Pairs with done_cv_ for run()'s completion wait.
  std::condition_variable done_cv_;

  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> tasks_completed_{0};
  std::atomic<std::uint64_t> seq_{0};  ///< Spawn sequence numbers for tracing.
  std::vector<Disposition> disp_;  ///< Per worker; touched only by that worker.
  std::mutex err_m_;
  std::exception_ptr err_;

  std::unique_ptr<obs::TraceCollector> trace_;  ///< Null when tracing is off.
  std::chrono::steady_clock::time_point trace_t0_;
  obs::LocalityProfiler* prof_ = nullptr;  ///< Null unless profiling.
  std::uint64_t addr_base_ = 0;

  /// Microseconds since engine construction (the trace timebase).
  [[nodiscard]] std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - trace_t0_)
            .count());
  }
};

}  // namespace cool
