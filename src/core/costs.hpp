// Runtime-overhead cost model (simulated cycles) for COOL scheduling
// operations. The paper stresses that COOL tasks are lightweight and that
// placement needs only "two modulo operations"; these defaults keep spawn and
// dispatch cheap relative to the memory latencies, while stealing — which
// touches a remote queue — costs more, and more still across clusters.
#pragma once

#include <cstdint>

namespace cool {

struct CostModel {
  std::uint64_t spawn = 120;         ///< Create + enqueue a task.
  std::uint64_t dispatch = 40;       ///< Dequeue a local task.
  std::uint64_t steal_local = 300;   ///< Steal from a queue within the cluster.
  std::uint64_t steal_remote = 600;  ///< Steal from a remote cluster's queue.
  std::uint64_t complete = 30;       ///< Task teardown / join bookkeeping.
  std::uint64_t mutex_acquire = 20;
  std::uint64_t mutex_release = 10;
  std::uint64_t cond_op = 20;
  std::uint64_t idle_poll = 50;      ///< Re-check interval when out of work.
};

}  // namespace cool
