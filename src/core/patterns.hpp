// Convenience parallel patterns over the COOL primitives.
//
//   Barrier       — SPLASH-style phase barrier: P parties arrive, everyone
//                   proceeds together; reusable across phases.
//   parallel_for  — spawn a blocked index range into a waitfor group with a
//                   per-block affinity hint.
#pragma once

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "core/ctx.hpp"
#include "core/record.hpp"
#include "core/sync.hpp"
#include "core/taskfn.hpp"

namespace cool {

/// Reusable counting barrier. `parties` tasks call `co_await barrier.wait(c)`;
/// the last arrival releases everyone and resets the barrier for the next
/// phase.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {
    COOL_CHECK(parties >= 1, "barrier needs at least one party");
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  struct Awaiter {
    Ctx& c;
    Barrier& b;

    bool await_ready() const noexcept { return false; }
    bool await_suspend(TaskFn::Handle) {
      TaskRecord* rec = c.record();
      std::vector<TaskRecord*> wake;
      bool suspend = false;
      bool last = false;
      {
        std::lock_guard g(b.m_);
        if (b.arrived_ + 1 == b.parties_) {
          // Last arrival: release the phase and reset for reuse.
          last = true;
          b.arrived_ = 0;
          while (sched::TaskDesc* d = b.waiters_.pop_front()) {
            wake.push_back(TaskRecord::of(d));
          }
        } else {
          ++b.arrived_;
          rec->state = TaskState::kBlocked;
          c.engine()->on_block(c);
          b.waiters_.push_back(&rec->desc);
          suspend = true;
        }
      }
      if (auto* so = c.engine()->sync_observer()) {
        // Every arrival is a source edge into the barrier; the last arrival
        // joins the accumulated edges back into each released party
        // (including itself), giving all-to-all ordering across the phase.
        so->on_barrier_arrive(&b, rec->desc.seq);
        if (last) {
          for (TaskRecord* r : wake) so->on_barrier_release(&b, r->desc.seq);
          so->on_barrier_release(&b, rec->desc.seq);
        }
      }
      for (TaskRecord* r : wake) c.engine()->unblock(r, &c);
      return suspend;  // The last arrival continues immediately.
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter wait(Ctx& c) { return Awaiter{c, *this}; }

  [[nodiscard]] int parties() const noexcept { return parties_; }
  [[nodiscard]] int arrived() const {
    std::lock_guard g(m_);
    return arrived_;
  }

 private:
  mutable std::mutex m_;
  const int parties_;
  int arrived_ = 0;
  WaitList waiters_;
};

/// Spawn tasks covering [lo, hi) in blocks of `grain` into `group`.
/// `make(b, e)` creates the TaskFn for block [b, e); `aff(b, e)` supplies its
/// affinity hint.
///
/// The factory itself may be a capturing lambda, but the TaskFn it returns
/// must come from a coroutine that receives all state as *arguments* — a
/// capturing coroutine-lambda dangles once the lambda temporary dies (the
/// frame stores a pointer to the lambda object, not copies of its captures).
template <typename Factory, typename AffFn>
void parallel_for(Ctx& c, TaskGroup& group, long lo, long hi, long grain,
                  Factory&& make, AffFn&& aff) {
  COOL_CHECK(grain >= 1, "parallel_for: grain must be positive");
  for (long b = lo; b < hi; b += grain) {
    const long e = std::min(hi, b + grain);
    c.spawn(aff(b, e), group, make(b, e));
  }
}

/// parallel_for without affinity hints.
template <typename Factory>
void parallel_for(Ctx& c, TaskGroup& group, long lo, long hi, long grain,
                  Factory&& make) {
  parallel_for(c, group, lo, hi, grain, std::forward<Factory>(make),
               [](long, long) { return Affinity::none(); });
}

}  // namespace cool
