// Glue between the scheduler's Affinity hints and the locality profiler's
// hint taxonomy. Both engines call these at task dispatch so the profiler can
// charge every subsequent memory reference to the running task's hint class
// and affinity set. Header-only: the obs layer cannot include sched headers
// (cool_sched links cool_obs), so the mapping lives here in core, which sees
// both.
#pragma once

#include "obs/profiler.hpp"
#include "sched/affinity.hpp"

namespace cool {

/// The paper's Table 1 class of this hint combination.
inline obs::HintClass hint_class_of(const sched::Affinity& aff) noexcept {
  return obs::classify_hint(aff.has_task(), aff.has_object(),
                            aff.has_processor(), aff.has_multi());
}

/// The implicit affinity-set key: tasks naming the same affinity object form
/// a set (the paper's task-affinity sets; for OBJECT-only hints the shared
/// object still groups the tasks for diagnosis). 0 = no set.
inline std::uint64_t affinity_set_key(const sched::Affinity& aff) noexcept {
  return aff.task_obj != 0 ? aff.task_obj : aff.object_obj;
}

}  // namespace cool
