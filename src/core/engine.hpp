// Engine — the execution back-end behind a cool::Runtime.
//
// Two implementations:
//   * SimEngine    — deterministic execution-driven simulation of the DASH
//                    memory hierarchy (all paper figures use this);
//   * ThreadEngine — real OS threads over the same scheduler structure, for
//                    functional and concurrency testing (no timing model).
//
// Application code never sees this interface directly; it talks to cool::Ctx.
#pragma once

#include <cstdint>

#include "core/costs.hpp"
#include "topology/machine.hpp"

namespace cool::analysis {
class SyncObserver;
}

namespace cool {

class Ctx;
struct TaskRecord;

class Engine {
 public:
  virtual ~Engine() = default;

  /// Happens-before edge tap for the race detector; null (the default) means
  /// no analysis, and every emission site is a single pointer test. Only the
  /// sim engine ever attaches one — its deterministic interleaving is what
  /// makes the edge stream exact.
  [[nodiscard]] analysis::SyncObserver* sync_observer() const noexcept {
    return sync_obs_;
  }

  /// --- called by Ctx on behalf of the running task -----------------------
  virtual void mem_access(Ctx& c, std::uint64_t addr, std::uint64_t bytes,
                          bool is_write) = 0;
  virtual void work(Ctx& c, std::uint64_t cycles) = 0;
  virtual void charge(Ctx& c, std::uint64_t cycles) = 0;
  /// Scheduling/synchronisation overhead costs (simulated cycles).
  [[nodiscard]] virtual const CostModel& costs() const = 0;
  [[nodiscard]] virtual std::uint64_t now(const Ctx& c) const = 0;
  virtual std::uint64_t migrate(Ctx& c, std::uint64_t addr,
                                std::uint64_t bytes, topo::ProcId target) = 0;
  virtual topo::ProcId home(std::uint64_t addr, topo::ProcId toucher) = 0;

  /// Map an arbitrary processor number to a server id (modulo n_procs, as the
  /// paper specifies for PROCESSOR affinity and migrate()).
  [[nodiscard]] virtual topo::ProcId resolve_proc(std::int64_t n) const = 0;

  /// Hand a freshly created task to the scheduler. `spawner` is null for the
  /// root task.
  virtual void spawn_record(TaskRecord* rec, Ctx* spawner) = 0;

  /// --- called by synchronisation objects ---------------------------------
  /// Make a blocked task runnable again (`unblocker` performed the signal).
  virtual void unblock(TaskRecord* rec, Ctx* unblocker) = 0;

  /// --- disposition protocol, called from inside coroutine awaiters -------
  /// (while the resuming thread still owns the frame; the engine inspects the
  /// disposition after resume() returns and must not touch a blocked record
  /// afterwards — it may already be running elsewhere.)
  virtual void on_complete(Ctx& c) = 0;
  virtual void on_block(Ctx& c) = 0;
  virtual void on_yield(Ctx& c) = 0;

  /// --- allocation support -------------------------------------------------
  virtual void bind_range(std::uint64_t addr, std::uint64_t bytes,
                          topo::ProcId home_proc) = 0;

  /// Base address of the runtime's arena. The simulation engine subtracts it
  /// from every address so simulated layouts (cache sets, page homes) are
  /// independent of where the OS happened to place the arena — this is what
  /// makes every experiment bit-reproducible across processes.
  virtual void set_addr_base(std::uint64_t base) { (void)base; }

 protected:
  analysis::SyncObserver* sync_obs_ = nullptr;
};

}  // namespace cool
