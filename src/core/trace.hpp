// Execution tracing for the simulation engine.
//
// When SystemConfig::trace is set, the engine records one span per task
// resume (which processor ran which task, over which simulated interval, and
// how the span ended). The report renderer turns the spans into a per-
// processor utilisation table and a coarse ASCII timeline — handy for seeing
// exactly how an affinity hint changed the schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/machine.hpp"

namespace cool {

struct TraceEvent {
  enum class End : std::uint8_t {
    kCompleted,  ///< Task finished.
    kBlocked,    ///< Suspended on a mutex/cond/group.
    kYielded,    ///< Gave up the processor voluntarily.
  };

  std::uint64_t task_seq = 0;  ///< Scheduler-assigned spawn sequence number.
  topo::ProcId proc = 0;
  std::uint64_t start = 0;  ///< Simulated cycle the span began.
  std::uint64_t end = 0;    ///< Simulated cycle the span ended.
  bool stolen = false;      ///< The task was acquired by stealing.
  End how = End::kCompleted;
};

/// Render per-processor spans/busy statistics plus an ASCII timeline with
/// `width` columns ('#' ≥75% busy, '+' ≥25%, '.' >0, ' ' idle).
std::string render_trace_report(const std::vector<TraceEvent>& events,
                                std::uint32_t n_procs, std::uint64_t finish,
                                int width = 64);

}  // namespace cool
