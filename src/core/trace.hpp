// Task-span view of an execution trace.
//
// When SystemConfig::trace is set, the engines record typed obs::Events into
// per-processor ring buffers (obs/trace.hpp). TraceEvent is the legacy
// span-only projection of that stream — which processor ran which task, over
// which interval, and how the span ended — and render_trace_report turns
// spans into a per-processor utilisation table plus a coarse ASCII timeline,
// handy for seeing exactly how an affinity hint changed the schedule. For
// the full event stream (steals, migrations, idle gaps) use
// Runtime::trace_events() / Runtime::chrome_trace() instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "topology/machine.hpp"

namespace cool {

struct TraceEvent {
  enum class End : std::uint8_t {
    kCompleted,  ///< Task finished.
    kBlocked,    ///< Suspended on a mutex/cond/group.
    kYielded,    ///< Gave up the processor voluntarily.
  };

  std::uint64_t task_seq = 0;  ///< Scheduler-assigned spawn sequence number.
  topo::ProcId proc = 0;
  std::uint64_t start = 0;  ///< Simulated cycle the span began.
  std::uint64_t end = 0;    ///< Simulated cycle the span ended.
  bool stolen = false;      ///< The task was acquired by stealing.
  End how = End::kCompleted;
};

/// Render per-processor spans/busy statistics plus an ASCII timeline with
/// `width` columns ('#' ≥75% busy, '+' ≥25%, '.' >0, ' ' idle).
std::string render_trace_report(const std::vector<TraceEvent>& events,
                                std::uint32_t n_procs, std::uint64_t finish,
                                int width = 64);

/// Project the typed obs event stream down to its task spans (other event
/// kinds are skipped).
std::vector<TraceEvent> spans_from_events(const std::vector<obs::Event>& events);

}  // namespace cool
