#include "core/thread_engine.hpp"

#include <chrono>

#include "analysis/invariants.hpp"
#include "common/check.hpp"
#include "core/profile_hook.hpp"
#include "core/sync.hpp"

namespace cool {

ThreadEngine::ThreadEngine(const topo::MachineConfig& machine,
                           const sched::Policy& policy, bool trace_enabled,
                           std::size_t trace_capacity)
    : machine_(machine),
      pages_(machine_),
      sched_(machine_, policy,
             [this](std::uint64_t addr, topo::ProcId toucher) {
               // Placement runs outside any scheduler lock, so the resolver
               // guards the page map itself (home_of first-touch mutates it).
               std::lock_guard g(big_);
               return pages_.home_of(addr, toucher);
             }),
      disp_(machine_.n_procs, Disposition::kNone),
      trace_t0_(std::chrono::steady_clock::now()) {
  machine_.validate();
  if (trace_enabled) {
    trace_ = std::make_unique<obs::TraceCollector>(machine_.n_procs,
                                                   trace_capacity);
  }
}

ThreadEngine::~ThreadEngine() {
  for (TaskRecord* rec : live_recs_) {
    if (rec->handle) rec->handle.destroy();
    delete rec;
  }
}

std::uint64_t ThreadEngine::migrate(Ctx&, std::uint64_t addr,
                                    std::uint64_t bytes, topo::ProcId target) {
  std::lock_guard g(big_);
  pages_.bind_range(addr, bytes, target);
  return 0;
}

topo::ProcId ThreadEngine::home(std::uint64_t addr, topo::ProcId toucher) {
  std::lock_guard g(big_);
  return pages_.home_of(addr, toucher);
}

void ThreadEngine::bind_range(std::uint64_t addr, std::uint64_t bytes,
                              topo::ProcId home_proc) {
  std::lock_guard g(big_);
  pages_.bind_range(addr, bytes, home_proc);
}

void ThreadEngine::spawn_record(TaskRecord* rec, Ctx* spawner) {
  const topo::ProcId from = spawner != nullptr ? spawner->proc_ : 0;
  rec->desc.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  live_.fetch_add(1);
  {
    std::lock_guard g(big_);
    live_recs_.insert(rec);
  }
  // place() enqueues and wakes an idle worker; the task may start (and even
  // finish) on another thread before place returns, so `rec` is off-limits
  // from here on.
  sched_.place(&rec->desc, from);
}

void ThreadEngine::unblock(TaskRecord* rec, Ctx*) {
  rec->state = TaskState::kReady;
  sched_.enqueue_resumed(&rec->desc);
}

void ThreadEngine::on_complete(Ctx& c) { disp_[c.proc_] = Disposition::kCompleted; }
void ThreadEngine::on_block(Ctx& c) { disp_[c.proc_] = Disposition::kBlocked; }
void ThreadEngine::on_yield(Ctx& c) { disp_[c.proc_] = Disposition::kYielded; }

void ThreadEngine::execute(topo::ProcId id, TaskRecord* rec) {
  if (prof_ != nullptr) {
    const std::uint64_t key = affinity_set_key(rec->desc.aff);
    prof_->on_task_dispatch(
        id, hint_class_of(rec->desc.aff),
        key != 0 ? key - addr_base_ : obs::LocalityProfiler::kNoSet,
        rec->desc.stolen);
  }
  rec->ctx.eng_ = this;
  rec->ctx.proc_ = id;
  rec->ctx.rec_ = rec;
  rec->handle.promise().ctx = &rec->ctx;
  rec->state = TaskState::kRunning;
  disp_[id] = Disposition::kNone;

  // Snapshot before resume(): on completion/block the record is freed or
  // handed to another owner, so it is off-limits afterwards.
  const std::uint64_t task_seq = rec->desc.seq;
  const bool was_stolen = rec->desc.stolen;
  const std::uint64_t t0 = trace_ ? now_us() : 0;

  rec->handle.resume();

  if (trace_) {
    const std::uint8_t end = disp_[id] == Disposition::kCompleted
                                 ? obs::kSpanCompleted
                             : disp_[id] == Disposition::kBlocked
                                 ? obs::kSpanBlocked
                                 : obs::kSpanYielded;
    trace_->buf(id).record(obs::Event{t0, now_us(), task_seq, 0, id,
                                      obs::EventKind::kTaskSpan,
                                      obs::span_flags(was_stolen, end)});
  }

  switch (disp_[id]) {
    case Disposition::kCompleted: {
      if (rec->handle.promise().exn) {
        std::lock_guard g(err_m_);
        if (!err_) err_ = rec->handle.promise().exn;
      }
      TaskGroup* grp = rec->group;
      if (grp != nullptr) grp->task_done(rec->ctx);
      {
        std::lock_guard g(big_);
        live_recs_.erase(rec);
      }
      rec->handle.destroy();
      delete rec;
      tasks_completed_.fetch_add(1);
      if (live_.fetch_sub(1) == 1) {
        // Last task done: release run() and every sleeping worker. Taking
        // done_m_ (empty section) pins the waiter at a point where its
        // predicate re-read of live_ sees zero.
        { std::lock_guard g(done_m_); }
        done_cv_.notify_all();
        sched_.notify_all_waiters();
      }
      break;
    }
    case Disposition::kBlocked:
      // Hands off — the record may already be running on another worker.
      break;
    case Disposition::kYielded:
      rec->state = TaskState::kReady;
      sched_.enqueue_yielded(&rec->desc);
      break;
    case Disposition::kNone:
      COOL_CHECK(false, "task suspended without reporting a disposition");
  }
}

void ThreadEngine::worker_loop(topo::ProcId id) {
  for (;;) {
    if (stop_.load() || live_.load() == 0) return;
    // Snapshot BEFORE the acquire attempt: any enqueue after this point
    // changes the version and makes wait_for_work return immediately.
    const std::uint64_t seen = sched_.work_version();
    const auto acq = sched_.acquire(id);
    if (acq.task != nullptr) {
      if (trace_ && acq.stolen) {
        const std::uint64_t t = now_us();
        trace_->buf(id).record(
            obs::Event{t, t, acq.victim, 1, id, obs::EventKind::kSteal, 0});
      }
      execute(id, TaskRecord::of(acq.task));
      continue;
    }
    if (acq.contended) {
      // A victim's queue lock was busy mid-scan; it may hold stealable work
      // this scan could not see. Spin once rather than sleeping on it.
      std::this_thread::yield();
      continue;
    }
    // Nothing this worker may run right now (queued tasks can be pinned to
    // other servers): sleep until new work appears anywhere.
    sched_.wait_for_work(id, seen, [this] {
      return stop_.load() || live_.load() == 0;
    });
  }
}

void ThreadEngine::run(TaskFn&& root, std::uint64_t timeout_ms) {
  COOL_CHECK(root.valid(), "run of empty TaskFn");
  stop_.store(false);

  auto* rec = new TaskRecord;
  rec->handle = root.release();
  rec->desc.aff = Affinity::none();
  spawn_record(rec, nullptr);

  std::vector<std::thread> workers;
  workers.reserve(machine_.n_procs);
  for (std::uint32_t p = 0; p < machine_.n_procs; ++p) {
    workers.emplace_back([this, p] { worker_loop(static_cast<topo::ProcId>(p)); });
  }

  bool finished = false;
  {
    std::unique_lock l(done_m_);
    finished = done_cv_.wait_for(l, std::chrono::milliseconds(timeout_ms),
                                 [&] { return live_.load() == 0; });
  }
  stop_.store(true);
  sched_.notify_all_waiters();
  for (auto& w : workers) w.join();

  // All workers joined: the scheduler is quiescent, so cross-queue
  // invariants are checkable even after a concurrent run.
  if (util::check_level() != util::CheckLevel::kOff) {
    analysis::check_scheduler_quiescent(sched_);
  }

  std::exception_ptr e;
  {
    std::lock_guard g(err_m_);
    e = err_;
    err_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
  COOL_CHECK(finished,
             "thread-engine run timed out (likely deadlock or livelock)");
}

}  // namespace cool
