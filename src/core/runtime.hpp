// cool::Runtime — the public entry point of the library.
//
// Construct one with a SystemConfig (execution mode, machine description,
// scheduling policy, cost model), allocate your shared objects through it so
// the page map knows their homes, then `run()` a root task. All figures in
// the paper are produced with Mode::kSim (the DASH model); Mode::kThreads
// executes the identical program on real threads for functional testing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/engine.hpp"
#include "analysis/race_detector.hpp"
#include "core/costs.hpp"
#include "core/sim_engine.hpp"
#include "core/taskfn.hpp"
#include "core/thread_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "topology/machine.hpp"

namespace cool {

struct SystemConfig {
  enum class Mode { kSim, kThreads };
  Mode mode = Mode::kSim;
  topo::MachineConfig machine = topo::MachineConfig::dash();
  sched::Policy policy;
  CostModel costs;
  std::uint64_t thread_timeout_ms = 60000;  ///< kThreads deadlock guard.
  /// Record typed trace events (task spans, steals, migrations, idle gaps)
  /// into per-processor ring buffers. Works under both engines; kSim stamps
  /// simulated cycles, kThreads stamps wall-clock microseconds.
  bool trace = false;
  /// Capacity of each per-processor trace ring; on overflow the oldest
  /// events are dropped (and counted — see obs.trace.dropped).
  std::size_t trace_ring_capacity = 1 << 16;
  /// Attach the locality profiler: attribute every simulated memory access to
  /// the object/region and affinity set it hits (see obs/profiler.hpp). The
  /// tap is passive — simulated cycle counts are identical with it on — and
  /// when off no profiler is even constructed.
  bool profile = false;
  /// Attach the happens-before race detector (kSim only — it needs the sim
  /// engine's deterministic interleaving; silently ignored under kThreads,
  /// where TSan covers the same ground). Passive like the profiler: cycle
  /// counts are identical with it on, and when off nothing is constructed.
  bool race_check = false;
  /// Attach the online adaptive locality runtime (kSim only — its policy
  /// mutations assume the sim engine's single-threaded dispatch loop;
  /// silently ignored under kThreads, like race_check). Constructs the
  /// profiler as its sensor even without `profile`. Unlike the passive
  /// observers, adaptation charges simulated cycles for its epoch
  /// evaluations and migrations — that cost is the point being modelled.
  /// With `adapt` off, nothing is constructed and cycle counts are
  /// byte-identical to a build without the subsystem.
  bool adapt = false;
  /// Knobs for the adaptation engine (epoch length, hysteresis, thresholds);
  /// see adaptive/policy.hpp. Loaded from `--adapt=policy.json` by benches.
  adaptive::AdaptPolicy adapt_policy;
  /// Size of the runtime's allocation arena (virtual memory, touched lazily).
  /// Allocations are bump-allocated from it so simulated addresses are
  /// arena-relative and every run is bit-reproducible.
  std::size_t arena_bytes = 1ull << 30;
  /// Maximum pages of padding inserted between consecutive allocations (the
  /// actual pad cycles deterministically through 1..alloc_stagger_pages).
  /// Without varying padding, a bump allocator hands out power-of-two (or
  /// long-range periodic) strides and corresponding pieces of different
  /// arrays collide pathologically in the direct-mapped DASH caches; SPLASH
  /// codes padded their arrays for the same reason.
  std::size_t alloc_stagger_pages = 13;
};

class Runtime {
 public:
  explicit Runtime(SystemConfig cfg);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute `root` and everything it spawns to completion. May be called
  /// repeatedly (clocks and counters accumulate) — but not after a run threw
  /// (deadlock / task exception): tasks left blocked by the failed run would
  /// make every later run appear deadlocked. Build a fresh Runtime instead.
  void run(TaskFn&& root);

  /// Allocate a zero-initialised array of `n` T, page-aligned so its pages
  /// belong to this object alone. `home >= 0` binds the pages to that
  /// processor's local memory (COOL's placed `new`, modulo n_procs);
  /// `home < 0` leaves them to first-touch. Freed when the Runtime dies.
  template <typename T>
  T* alloc_array(std::size_t n, std::int64_t home = -1) {
    return static_cast<T*>(alloc_bytes(n * sizeof(T), home));
  }

  /// Untyped variant of alloc_array. NOT safe to call from tasks running
  /// under the threads engine (the arena bump pointer is unsynchronised);
  /// allocate before run(), as every bundled application does.
  void* alloc_bytes(std::size_t bytes, std::int64_t home = -1);

  /// Setup-time migrate (no cycle charge): rebind the pages spanned by
  /// [p, p+bytes) to `target % n_procs`.
  void migrate(const void* p, std::int64_t target, std::size_t bytes);

  /// Home processor of `p` (first-touch binds to processor 0).
  topo::ProcId home(const void* p);

  // --- results & instrumentation ------------------------------------------
  /// Parallel completion time in simulated cycles (kSim; 0 under kThreads).
  [[nodiscard]] std::uint64_t sim_time() const;
  /// DASH performance-monitor counters (null under kThreads).
  [[nodiscard]] const mem::PerfMonitor* monitor() const;
  /// Snapshot of the scheduler counters (aggregated across server shards).
  [[nodiscard]] sched::SchedStats sched_stats() const;
  [[nodiscard]] std::vector<ProcUtil> utilization() const;
  [[nodiscard]] std::uint64_t tasks_completed() const;

  /// Task-span projection of the trace (empty unless SystemConfig::trace).
  [[nodiscard]] std::vector<TraceEvent> trace() const;
  /// Full typed event stream, merged across processors and sorted by start
  /// time (empty unless SystemConfig::trace).
  [[nodiscard]] std::vector<obs::Event> trace_events() const;
  /// The merged trace rendered as Chrome trace-event JSON (load it in
  /// chrome://tracing or Perfetto). Empty-trace JSON when tracing is off.
  [[nodiscard]] std::string chrome_trace() const;

  /// The metrics registry: live counters updated by the scheduler and the
  /// engines while tasks run. Register application metrics here too.
  [[nodiscard]] obs::Registry& obs() noexcept { return *obs_; }
  /// Point-in-time snapshot of the registry, augmented with the derived
  /// counters the runtime already tracks (mem.*, sched.*, proc.*, sim.time,
  /// tasks.completed, queue depths, trace drop counts) so one call captures
  /// the whole observable state of a run.
  [[nodiscard]] obs::Snapshot obs_snapshot() const;

  // --- locality profiler (SystemConfig::profile) ---------------------------
  /// The attached profiler, or null when profiling is off.
  [[nodiscard]] obs::LocalityProfiler* profiler() noexcept {
    return prof_.get();
  }
  /// Name the region [p, p+bytes) in profile reports. No-op (returns false)
  /// when profiling is off or the range overlaps an earlier registration.
  bool profile_register(const std::string& name, const void* p,
                        std::size_t bytes);
  /// Merged attribution snapshot (empty snapshot when profiling is off).
  [[nodiscard]] obs::ProfileSnapshot profile_snapshot() const;

  // --- adaptive runtime (SystemConfig::adapt) ------------------------------
  /// The attached adaptation engine, or null when --adapt is off.
  [[nodiscard]] adaptive::AdaptiveEngine* adaptive_engine() noexcept {
    return adapt_.get();
  }
  [[nodiscard]] const adaptive::AdaptiveEngine* adaptive_engine()
      const noexcept {
    return adapt_.get();
  }
  /// The adaptation decision log as a JSON array ("[]" when off).
  [[nodiscard]] std::string adaptation_json() const {
    return adapt_ ? adapt_->log_json() : "[]";
  }

  // --- race detector (SystemConfig::race_check) ----------------------------
  /// The attached detector, or null when race checking is off.
  [[nodiscard]] analysis::RaceDetector* race_detector() noexcept {
    return race_.get();
  }
  [[nodiscard]] const analysis::RaceDetector* race_detector() const noexcept {
    return race_.get();
  }

  /// Human-readable post-run summary: completion time, task counts,
  /// scheduler activity, memory-system behaviour, and load balance.
  [[nodiscard]] std::string report() const;
  [[nodiscard]] const topo::MachineConfig& machine() const noexcept {
    return cfg_.machine;
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] Engine& engine() noexcept { return *eng_; }
  /// Simulation back-end access (null under kThreads).
  [[nodiscard]] SimEngine* sim() noexcept { return sim_.get(); }

 private:
  SystemConfig cfg_;
  std::unique_ptr<obs::Registry> obs_;  ///< Declared before the engines: the
                                        ///< handles they hold point into it.
  std::unique_ptr<SimEngine> sim_;
  std::unique_ptr<ThreadEngine> thr_;
  std::unique_ptr<obs::LocalityProfiler> prof_;  ///< Null unless profiling.
  std::unique_ptr<analysis::RaceDetector> race_;  ///< Null unless race_check.
  std::unique_ptr<adaptive::AdaptiveEngine> adapt_;  ///< Null unless adapt.
  Engine* eng_ = nullptr;
  char* arena_ = nullptr;       ///< mmap'd allocation arena.
  std::size_t arena_used_ = 0;  ///< Bump pointer (page multiples).
  std::size_t n_allocs_ = 0;    ///< Drives the varying inter-allocation pad.
};

}  // namespace cool
