// TaskFn — the coroutine type behind COOL "parallel functions".
//
// A COOL parallel function executes asynchronously when invoked; our library
// embedding expresses one as a C++20 coroutine returning TaskFn. Invoking the
// function creates a suspended coroutine (arguments are copied into the
// frame), which is handed to Runtime/Ctx spawn together with an Affinity — the
// library analogue of COOL's `parallel void f(...) [affinity hints]`.
//
// Inside the body, the running task obtains its execution context with
//   auto& c = co_await cool::self();
// and may then issue simulated memory references, spawn children, lock
// monitors, or wait on groups/conditions.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace cool {

class Ctx;
class Engine;
struct TaskRecord;

class TaskFn {
 public:
  struct promise_type {
    /// Execution context, bound by the engine before every resume.
    Ctx* ctx = nullptr;
    std::exception_ptr exn;

    TaskFn get_return_object() {
      return TaskFn(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    /// On completion the coroutine notifies the engine from inside the final
    /// awaiter (while this thread still exclusively owns the frame), then
    /// stays suspended so the engine can destroy it safely.
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exn = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  TaskFn() = default;
  explicit TaskFn(Handle h) : h_(h) {}
  TaskFn(TaskFn&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  TaskFn& operator=(TaskFn&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  TaskFn(const TaskFn&) = delete;
  TaskFn& operator=(const TaskFn&) = delete;
  ~TaskFn() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(h_); }

  /// Transfer the frame to the runtime (called by spawn).
  Handle release() noexcept { return std::exchange(h_, {}); }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_;
};

/// Awaitable returning the running task's execution context.
/// Usage: `auto& c = co_await cool::self();`
struct SelfAwaiter {
  Ctx* ctx = nullptr;
  bool await_ready() const noexcept { return false; }
  bool await_suspend(TaskFn::Handle h) noexcept {
    ctx = h.promise().ctx;
    return false;  // Never actually suspends.
  }
  Ctx& await_resume() const noexcept { return *ctx; }
};

inline SelfAwaiter self() noexcept { return {}; }

}  // namespace cool
