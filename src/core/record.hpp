// TaskRecord — the runtime's per-task bookkeeping, wrapping the scheduler's
// TaskDesc with the coroutine frame, group membership, and execution state.
#pragma once

#include <cstdint>

#include "core/ctx.hpp"
#include "core/taskfn.hpp"
#include "sched/task.hpp"

namespace cool {

class TaskGroup;

enum class TaskState : std::uint8_t {
  kReady,    ///< In a queue, waiting for a processor.
  kRunning,  ///< Being executed.
  kBlocked,  ///< Waiting on a Mutex / Cond / TaskGroup.
  kYielded,  ///< Voluntarily gave up the processor; will be re-queued.
};

struct TaskRecord {
  sched::TaskDesc desc;   ///< Scheduler view; desc.owner points back here.
  TaskFn::Handle handle;  ///< Suspended coroutine frame (owned).
  TaskGroup* group = nullptr;
  TaskState state = TaskState::kReady;
  Ctx ctx;  ///< Persistent context; the engine rebinds proc on each dispatch.
  Mutex* reacquire = nullptr;  ///< Condition-wait: mutex to re-take on signal.

  TaskRecord() { desc.owner = this; }
  TaskRecord(const TaskRecord&) = delete;
  TaskRecord& operator=(const TaskRecord&) = delete;
  /// Unlink from any queue/wait-list so teardown (e.g. after a deadlock or a
  /// task exception) leaves no dangling nodes behind.
  ~TaskRecord() { desc.hook.unlink(); }

  static TaskRecord* of(sched::TaskDesc* d) noexcept {
    return static_cast<TaskRecord*>(d->owner);
  }
};

}  // namespace cool
