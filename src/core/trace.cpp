#include "core/trace.hpp"

#include <algorithm>

#include "common/table.hpp"

namespace cool {

std::string render_trace_report(const std::vector<TraceEvent>& events,
                                std::uint32_t n_procs, std::uint64_t finish,
                                int width) {
  width = std::max(8, width);
  std::vector<std::uint64_t> busy(n_procs, 0);
  std::vector<std::uint64_t> spans(n_procs, 0);
  std::vector<std::uint64_t> stolen(n_procs, 0);
  // Busy cycles per (proc, timeline bucket).
  std::vector<std::vector<std::uint64_t>> buckets(
      n_procs, std::vector<std::uint64_t>(static_cast<std::size_t>(width), 0));
  const std::uint64_t span_total = std::max<std::uint64_t>(finish, 1);
  const double per_bucket =
      static_cast<double>(span_total) / static_cast<double>(width);

  for (const TraceEvent& e : events) {
    if (e.proc >= n_procs || e.end < e.start) continue;
    busy[e.proc] += e.end - e.start;
    spans[e.proc] += 1;
    if (e.stolen) stolen[e.proc] += 1;
    // Spread the span over the buckets it overlaps.
    std::uint64_t t = e.start;
    while (t < e.end) {
      const auto b = std::min<std::size_t>(
          static_cast<std::size_t>(static_cast<double>(t) / per_bucket),
          static_cast<std::size_t>(width) - 1);
      const std::uint64_t bucket_end = std::min<std::uint64_t>(
          e.end, static_cast<std::uint64_t>(per_bucket * (static_cast<double>(b) + 1.0)));
      const std::uint64_t step = std::max<std::uint64_t>(bucket_end, t + 1) - t;
      buckets[e.proc][b] += step;
      t += step;
    }
  }

  util::Table t({"proc", "spans", "stolen", "busy%", "timeline"});
  for (std::uint32_t p = 0; p < n_procs; ++p) {
    std::string line;
    line.reserve(static_cast<std::size_t>(width));
    for (int b = 0; b < width; ++b) {
      const double frac =
          static_cast<double>(buckets[p][static_cast<std::size_t>(b)]) /
          per_bucket;
      line += frac >= 0.75 ? '#' : frac >= 0.25 ? '+' : frac > 0.0 ? '.' : ' ';
    }
    t.row()
        .cell("p" + std::to_string(p))
        .cell(spans[p])
        .cell(stolen[p])
        .cell(100.0 * static_cast<double>(busy[p]) /
                  static_cast<double>(span_total),
              1)
        .cell(line);
  }
  return t.to_string();
}

std::vector<TraceEvent> spans_from_events(
    const std::vector<obs::Event>& events) {
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  for (const obs::Event& e : events) {
    if (e.kind != obs::EventKind::kTaskSpan) continue;
    TraceEvent t;
    t.task_seq = e.a;
    t.proc = e.proc;
    t.start = e.start;
    t.end = e.end;
    t.stolen = (e.flags & obs::kSpanStolen) != 0;
    const std::uint8_t end = obs::span_end(e.flags);
    t.how = end == obs::kSpanBlocked   ? TraceEvent::End::kBlocked
            : end == obs::kSpanYielded ? TraceEvent::End::kYielded
                                       : TraceEvent::End::kCompleted;
    out.push_back(t);
  }
  return out;
}

}  // namespace cool
