#include "analysis/invariants.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace cool::analysis {

void check_scheduler_concurrent(const sched::Scheduler& s) {
  s.check_queues();
}

void check_scheduler_quiescent(const sched::Scheduler& s) {
  check_scheduler_concurrent(s);
  std::unordered_set<const sched::TaskDesc*> seen;
  std::unordered_set<const sched::TaskDesc*> moved_seen;
  std::size_t n = 0;
  s.for_each_queued([&](const sched::TaskDesc* t) {
    ++n;
    COOL_CHECK(seen.insert(t).second,
               "invariant: task resident in two queues at once");
    if (t->moved) {
      // A balancer move is pop-from-victim + adopt-into-thief under two
      // separate locks; this pins the handoff's atomicity: the moved task
      // landed in exactly one queue, never both and never neither (the
      // conservation ledger above catches "neither").
      COOL_CHECK(moved_seen.insert(t).second,
                 "invariant: balancer-moved task resident in two queues");
    }
  });
  COOL_CHECK(n == s.total_queued(),
             "invariant: queued-task walk disagrees with the size counters");
}

void check_admission_ledger(std::uint64_t generated, std::uint64_t admitted,
                            std::uint64_t completed) {
  COOL_CHECK(admitted == generated,
             "invariant: admission ledger dropped or duplicated arrivals "
             "(admitted != generated)");
  COOL_CHECK(completed == admitted,
             "invariant: admission ledger lost or duplicated completions "
             "(completed != admitted)");
}

}  // namespace cool::analysis
