// RaceDetector — FastTrack-style happens-before race detection for COOL apps.
//
// The paper's affinity hints are "strictly an optimization" (§3): adding or
// moving a TASK/OBJECT hint must never change program results. That is only
// true when the app is data-race-free under *every* schedule the runtime may
// pick, so this detector checks exactly that property on the schedule the sim
// engine actually ran.
//
// Algorithm (FastTrack, Flanagan & Freund PLDI'09, adapted):
//   * Every task carries a sparse vector clock (task seq → clock) plus its
//     own scalar clock, incremented at each outgoing-edge operation.
//   * Every sync object (mutex/cond/group/barrier) carries a VC. A source
//     event (release/signal/done/arrive) joins the task's clock into it; a
//     sink event (acquire/wake/wait/release) joins it back into the waking
//     task. Spawn copies the parent's clock into the child.
//   * Shadow memory holds, per cache line, a sorted list of disjoint byte
//     segments, each with the last-write epoch (task, clock, proc) and the
//     set of concurrent read epochs since that write. Segments split on
//     partially-overlapping accesses, so checking is byte-exact and false
//     sharing within a line is never misreported as a race.
//   * An access races with a recorded epoch e unless e.task == current task
//     or current.vc[e.task] >= e.clk. Read epochs ordered before the current
//     access are compacted away (sound: happens-before is transitive through
//     the current task's clock).
//
// The detector consumes two passive taps: the mem::AccessObserver line stream
// (with byte sub-ranges) and the analysis::SyncObserver edge stream. Both are
// emitted only by the sim engine, whose min-clock frontier makes the
// interleaving — and therefore every report — deterministic and exact: the
// HB relation is computed over the real executed order, with no sampling and
// no timing perturbation (the taps charge zero simulated cycles).
//
// Known limitation: sync objects are keyed by address, so a mutex destroyed
// and re-created at the same address carries its predecessor's clock forward.
// That can only add spurious HB edges (hiding, never fabricating, a race);
// for task groups the stale clock is a subset of the re-creating task's own,
// so reuse is fully benign.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "analysis/sync_observer.hpp"
#include "memsim/access_observer.hpp"
#include "obs/object_registry.hpp"
#include "obs/profiler.hpp"
#include "topology/machine.hpp"

namespace cool::analysis {

/// One deduplicated race: a pair of conflicting accesses with no
/// happens-before edge between them, attributed to the app object and the
/// racing tasks' affinity hints.
struct RaceReport {
  std::uint64_t addr = 0;      ///< First conflicting simulated byte.
  std::uint32_t bytes = 0;     ///< Length of the conflicting overlap.
  bool prev_write = false;     ///< Earlier access was a write.
  bool cur_write = false;      ///< Later access was a write.
  std::uint64_t prev_task = 0;
  std::uint64_t cur_task = 0;
  topo::ProcId prev_proc = 0;
  topo::ProcId cur_proc = 0;
  std::string object;          ///< Registry label of `addr`.
  std::string prev_desc;       ///< "task#N (hint @ set) on proc P".
  std::string cur_desc;
};

class RaceDetector final : public mem::AccessObserver, public SyncObserver {
 public:
  /// Full per-race details are kept for the first kMaxReports distinct
  /// races; total() keeps counting beyond that.
  static constexpr std::size_t kMaxReports = 32;

  explicit RaceDetector(const topo::MachineConfig& machine);

  /// Object names for attribution; fed by Runtime::profile_register.
  [[nodiscard]] obs::ObjectRegistry& registry() noexcept { return reg_; }
  [[nodiscard]] const obs::ObjectRegistry& registry() const noexcept {
    return reg_;
  }

  /// Distinct races detected (deduplicated by task pair, object, and
  /// read/write kind).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<RaceReport>& races() const noexcept {
    return reports_;
  }

  /// Human-readable report ("== race check ==" header, one line per race).
  [[nodiscard]] std::string report() const;

  // --- mem::AccessObserver ---------------------------------------------------
  void on_access(const mem::AccessInfo& info) override;
  /// Invalidations are coherence traffic, not program accesses: ignored.
  void on_inval(std::uint64_t, topo::ProcId, int) override {}

  // --- SyncObserver ----------------------------------------------------------
  void on_spawn(std::uint64_t parent, std::uint64_t child) override;
  void on_task_run(topo::ProcId proc, std::uint64_t task, obs::HintClass hint,
                   std::uint64_t set_key) override;
  void on_release(const void* mu, std::uint64_t task) override;
  void on_acquire(const void* mu, std::uint64_t task) override;
  void on_cond_signal(const void* cv, std::uint64_t task) override;
  void on_cond_wake(const void* cv, std::uint64_t task) override;
  void on_group_done(const void* grp, std::uint64_t task) override;
  void on_group_wait(const void* grp, std::uint64_t task) override;
  void on_barrier_arrive(const void* bar, std::uint64_t task) override;
  void on_barrier_release(const void* bar, std::uint64_t task) override;

 private:
  /// Sparse vector clock: task seq → highest clock value seen.
  using VC = std::unordered_map<std::uint64_t, std::uint64_t>;

  struct TaskInfo {
    VC vc;
    std::uint64_t clk = 1;  ///< Own scalar clock; bumps on outgoing edges.
    obs::HintClass hint = obs::HintClass::kNone;
    std::uint64_t set_key = kNoSet;
  };

  /// (task, clock, proc) at the time of an access.
  struct Epoch {
    std::uint64_t task = 0;  ///< 0 = none.
    std::uint64_t clk = 0;
    topo::ProcId proc = 0;
  };

  /// A byte range [lo, hi) of one line with uniform access history.
  struct Seg {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;       ///< Offsets within the line; hi exclusive.
    Epoch write;                ///< Last write (task 0 = never written).
    std::vector<Epoch> reads;   ///< Concurrent reads since that write.
  };

  [[nodiscard]] static bool ordered(const Epoch& e, const TaskInfo& t,
                                    std::uint64_t tid);
  void release_edge(const void* obj, std::uint64_t task);
  void acquire_edge(const void* obj, std::uint64_t task);
  void write_range(std::vector<Seg>& segs, std::uint64_t line,
                   std::uint32_t a, std::uint32_t b, std::uint64_t tid,
                   TaskInfo& t, topo::ProcId proc);
  void read_range(std::vector<Seg>& segs, std::uint64_t line, std::uint32_t a,
                  std::uint32_t b, std::uint64_t tid, TaskInfo& t,
                  topo::ProcId proc);
  void record_race(std::uint64_t line, std::uint32_t olo, std::uint32_t ohi,
                   const Epoch& prev, bool prev_write, std::uint64_t tid,
                   topo::ProcId proc, bool cur_write);
  [[nodiscard]] std::string task_desc(std::uint64_t tid,
                                      topo::ProcId proc) const;

  topo::MachineConfig machine_;
  obs::ObjectRegistry reg_;
  std::unordered_map<std::uint64_t, TaskInfo> tasks_;   ///< By task seq.
  std::unordered_map<const void*, VC> syncs_;           ///< By object address.
  std::unordered_map<std::uint64_t, std::vector<Seg>> shadow_;  ///< By line.
  std::vector<std::uint64_t> cur_task_;  ///< Running task seq per processor.
  /// Dedup key: (prev task, cur task, object-or-line, rw kind).
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, int>> seen_;
  std::vector<RaceReport> reports_;
  std::uint64_t total_ = 0;
};

}  // namespace cool::analysis
