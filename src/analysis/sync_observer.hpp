// SyncObserver — a passive tap on the runtime's synchronization operations.
//
// The race detector needs to see every happens-before edge the COOL runtime
// creates: task spawn, mutex release→acquire chains, condition signal→wake,
// task-group completion→waitfor, and barrier phases. Rather than teach
// core/sync about vector clocks, the sync primitives emit these narrow
// callbacks when an observer is attached to the engine (Engine::sync_observer
// is null otherwise, and nothing beyond a pointer test happens).
//
// Tasks are identified by their spawn sequence number (TaskDesc::seq, unique
// per run); sync objects by their host address, which is stable for the
// object's lifetime. Address reuse after destruction can therefore alias two
// unrelated sync objects — see race_detector.hpp for why that is benign for
// groups and at worst hides (never fabricates) a race for mutexes.
//
// Emission contract: events are delivered in the order the simulated/real
// operations take effect. For every edge the "source" event (release, signal,
// group-done, barrier-arrive) is emitted before the matching "sink" event
// (acquire, wake, group-wait, barrier-release). Only the deterministic sim
// engine attaches an observer today, so callbacks run single-threaded.
#pragma once

#include <cstdint>

#include "obs/profiler.hpp"
#include "topology/machine.hpp"

namespace cool::analysis {

class SyncObserver {
 public:
  /// "No affinity set" sentinel for on_task_run (matches the profiler's:
  /// simulated address 0 is a legitimate arena offset).
  static constexpr std::uint64_t kNoSet = ~0ull;

  virtual ~SyncObserver() = default;

  /// `child` was spawned by `parent` (0 = spawned from outside any task,
  /// i.e. the root task of a run).
  virtual void on_spawn(std::uint64_t parent, std::uint64_t child) = 0;

  /// `proc` is about to resume `task`; `hint`/`set_key` describe its
  /// affinity (set_key is the simulated address of the affinity object,
  /// kNoSet when the task has none). Fires on every resume, so the observer
  /// always knows which task each processor's accesses belong to.
  virtual void on_task_run(topo::ProcId proc, std::uint64_t task,
                           obs::HintClass hint, std::uint64_t set_key) = 0;

  /// `task` released / acquired the Mutex at `mu`. A FIFO handoff emits the
  /// release and then the next holder's acquire.
  virtual void on_release(const void* mu, std::uint64_t task) = 0;
  virtual void on_acquire(const void* mu, std::uint64_t task) = 0;

  /// `task` signalled/broadcast the Cond at `cv` (emitted only when at least
  /// one waiter is woken); each woken waiter then emits on_cond_wake.
  virtual void on_cond_signal(const void* cv, std::uint64_t task) = 0;
  virtual void on_cond_wake(const void* cv, std::uint64_t task) = 0;

  /// A member `task` of the TaskGroup at `grp` completed; a waiter `task`
  /// passed the group's waitfor (either woken by the last completion or
  /// finding the group already empty).
  virtual void on_group_done(const void* grp, std::uint64_t task) = 0;
  virtual void on_group_wait(const void* grp, std::uint64_t task) = 0;

  /// `task` arrived at the Barrier at `bar`; on the phase's last arrival
  /// every participant (wakees and the last arriver itself) emits
  /// on_barrier_release, after all arrivals of the phase.
  virtual void on_barrier_arrive(const void* bar, std::uint64_t task) = 0;
  virtual void on_barrier_release(const void* bar, std::uint64_t task) = 0;
};

}  // namespace cool::analysis
