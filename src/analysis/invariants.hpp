// Scheduler invariant checking — the "structural" half of cool-check.
//
// The sharded scheduler trades a global lock for per-server locks, an
// intrusive non-empty list, and a lock-free idle protocol; this module states
// the invariants that refactor must preserve and validates them on demand:
//
//   * Queue structure: each server's non-empty list covers exactly the
//     affinity slots holding tasks, slot tasks carry TASK affinity and hash
//     to their slot, the active-set pointer never rests on a drained slot.
//   * Conservation: per queue, pushed - popped == current size, and the size
//     counter matches the actual contents (ServerQueues::validate()).
//   * Ownership/uniqueness: every queued task names its queue's server, and
//     (at quiesce) no task is resident in two queues at once.
//   * Idle protocol: the work version only moves forward.
//
// Two entry points with different concurrency contracts:
//   check_scheduler_concurrent() holds only one queue lock at a time and is
//   safe at any moment, even mid-steal; cross-queue uniqueness cannot be
//   checked this way (a task legitimately in flight between queues would
//   trip it), so that part lives in check_scheduler_quiescent(), which the
//   engines call once all workers have stopped.
//
// Per-mutation checking (COOL_CHECK_LEVEL=paranoid) is inside ServerQueues
// itself — it must run under the queue lock the mutation ran under.
#pragma once

#include "sched/scheduler.hpp"

namespace cool::analysis {

/// Validate every invariant checkable while the scheduler is live.
/// Throws util::Error on violation.
void check_scheduler_concurrent(const sched::Scheduler& s);

/// Everything check_scheduler_concurrent() validates, plus cross-queue task
/// uniqueness and the queued-total ledger. Callers must guarantee no
/// concurrent scheduler mutation (engines call this after their run loops).
void check_scheduler_quiescent(const sched::Scheduler& s);

/// Open-loop admission conservation (the load::Driver ledger): every
/// generated request admitted exactly once, every admitted request completed
/// exactly once. Quiescent-only (call after the run). Throws util::Error
/// naming the first violated equality.
void check_admission_ledger(std::uint64_t generated, std::uint64_t admitted,
                            std::uint64_t completed);

}  // namespace cool::analysis
