#include "analysis/race_detector.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace cool::analysis {

RaceDetector::RaceDetector(const topo::MachineConfig& machine)
    : machine_(machine), cur_task_(machine.n_procs, 0) {}

bool RaceDetector::ordered(const Epoch& e, const TaskInfo& t,
                           std::uint64_t tid) {
  if (e.task == tid) return true;  // Program order.
  auto it = t.vc.find(e.task);
  return it != t.vc.end() && it->second >= e.clk;
}

void RaceDetector::release_edge(const void* obj, std::uint64_t task) {
  TaskInfo& t = tasks_[task];
  VC& s = syncs_[obj];
  for (const auto& [k, v] : t.vc) {
    auto& sv = s[k];
    if (v > sv) sv = v;
  }
  auto& self = s[task];
  if (t.clk > self) self = t.clk;
  // Bump the releaser's clock so accesses after this edge are not mistaken
  // for accesses before it.
  ++t.clk;
}

void RaceDetector::acquire_edge(const void* obj, std::uint64_t task) {
  auto it = syncs_.find(obj);
  if (it == syncs_.end()) return;  // Never released: nothing to join.
  TaskInfo& t = tasks_[task];
  for (const auto& [k, v] : it->second) {
    if (k == task) continue;
    auto& tv = t.vc[k];
    if (v > tv) tv = v;
  }
}

// --- SyncObserver ------------------------------------------------------------

void RaceDetector::on_spawn(std::uint64_t parent, std::uint64_t child) {
  if (parent == 0) {
    (void)tasks_[child];  // Root task: empty clock.
    return;
  }
  VC snap;
  {
    TaskInfo& p = tasks_[parent];
    snap = p.vc;
    snap[parent] = p.clk;
    ++p.clk;
  }
  // Separate statement: tasks_[child] may rehash and would invalidate `p`.
  tasks_[child].vc = std::move(snap);
}

void RaceDetector::on_task_run(topo::ProcId proc, std::uint64_t task,
                               obs::HintClass hint, std::uint64_t set_key) {
  cur_task_[proc] = task;
  TaskInfo& t = tasks_[task];
  t.hint = hint;
  t.set_key = set_key;
}

void RaceDetector::on_release(const void* mu, std::uint64_t task) {
  release_edge(mu, task);
}
void RaceDetector::on_acquire(const void* mu, std::uint64_t task) {
  acquire_edge(mu, task);
}
void RaceDetector::on_cond_signal(const void* cv, std::uint64_t task) {
  release_edge(cv, task);
}
void RaceDetector::on_cond_wake(const void* cv, std::uint64_t task) {
  acquire_edge(cv, task);
}
void RaceDetector::on_group_done(const void* grp, std::uint64_t task) {
  release_edge(grp, task);
}
void RaceDetector::on_group_wait(const void* grp, std::uint64_t task) {
  acquire_edge(grp, task);
}
void RaceDetector::on_barrier_arrive(const void* bar, std::uint64_t task) {
  release_edge(bar, task);
}
void RaceDetector::on_barrier_release(const void* bar, std::uint64_t task) {
  acquire_edge(bar, task);
}

// --- Shadow memory -----------------------------------------------------------

void RaceDetector::on_access(const mem::AccessInfo& info) {
  if (info.proc >= cur_task_.size()) return;
  const std::uint64_t tid = cur_task_[info.proc];
  if (tid == 0) return;  // Access outside any tracked task.
  TaskInfo& t = tasks_[tid];
  std::uint64_t lo = info.lo;
  std::uint64_t hi = info.hi;
  if (hi <= lo) {
    // Line-granular caller (no byte range): take the whole line. That is
    // conservative but only for callers that never supply ranges.
    lo = info.addr;
    hi = info.addr + machine_.line_bytes;
  }
  auto& segs = shadow_[info.addr];
  const auto a = static_cast<std::uint32_t>(lo - info.addr);
  const auto b = static_cast<std::uint32_t>(hi - info.addr);
  if (info.is_write) {
    write_range(segs, info.addr, a, b, tid, t, info.proc);
  } else {
    read_range(segs, info.addr, a, b, tid, t, info.proc);
  }
}

void RaceDetector::write_range(std::vector<Seg>& segs, std::uint64_t line,
                               std::uint32_t a, std::uint32_t b,
                               std::uint64_t tid, TaskInfo& t,
                               topo::ProcId proc) {
  Seg mine;
  mine.lo = a;
  mine.hi = b;
  mine.write = Epoch{tid, t.clk, proc};
  std::vector<Seg> out;
  out.reserve(segs.size() + 2);
  bool inserted = false;
  for (Seg& s : segs) {
    if (s.hi <= a) {  // Entirely before the write.
      out.push_back(std::move(s));
      continue;
    }
    if (s.lo >= b) {  // Entirely after: the write slots in first.
      if (!inserted) {
        out.push_back(mine);
        inserted = true;
      }
      out.push_back(std::move(s));
      continue;
    }
    const std::uint32_t olo = std::max(s.lo, a);
    const std::uint32_t ohi = std::min(s.hi, b);
    if (s.write.task != 0 && !ordered(s.write, t, tid)) {
      record_race(line, olo, ohi, s.write, true, tid, proc, true);
    }
    for (const Epoch& r : s.reads) {
      if (!ordered(r, t, tid)) {
        record_race(line, olo, ohi, r, false, tid, proc, true);
      }
    }
    // The write supersedes the overlapped part; non-overlapped remnants keep
    // their history.
    if (s.lo < a) {
      Seg left = s;
      left.hi = a;
      out.push_back(std::move(left));
    }
    if (!inserted) {
      out.push_back(mine);
      inserted = true;
    }
    if (s.hi > b) {
      Seg right = std::move(s);
      right.lo = b;
      out.push_back(std::move(right));
    }
  }
  if (!inserted) out.push_back(mine);
  segs = std::move(out);
}

void RaceDetector::read_range(std::vector<Seg>& segs, std::uint64_t line,
                              std::uint32_t a, std::uint32_t b,
                              std::uint64_t tid, TaskInfo& t,
                              topo::ProcId proc) {
  const Epoch me{tid, t.clk, proc};
  std::vector<Seg> out;
  out.reserve(segs.size() + 3);
  std::uint32_t cursor = a;
  // Bytes of [a, b) no existing segment covers get a fresh read-only segment.
  const auto emit_gap = [&](std::uint32_t up_to) {
    if (cursor >= up_to) return;
    Seg g;
    g.lo = cursor;
    g.hi = up_to;
    g.reads.push_back(me);
    out.push_back(std::move(g));
    cursor = up_to;
  };
  for (Seg& s : segs) {
    if (s.hi <= a) {
      out.push_back(std::move(s));
      continue;
    }
    if (s.lo >= b) {
      emit_gap(b);
      out.push_back(std::move(s));
      continue;
    }
    const std::uint32_t olo = std::max(s.lo, a);
    const std::uint32_t ohi = std::min(s.hi, b);
    emit_gap(olo);
    if (s.write.task != 0 && !ordered(s.write, t, tid)) {
      record_race(line, olo, ohi, s.write, true, tid, proc, false);
    }
    if (s.lo < olo) {
      Seg left = s;
      left.hi = olo;
      out.push_back(std::move(left));
    }
    Seg mid = s;
    mid.lo = olo;
    mid.hi = ohi;
    // Compact: reads ordered before this one are subsumed by it — any later
    // access ordered after this read is transitively ordered after them.
    std::erase_if(mid.reads,
                  [&](const Epoch& r) { return ordered(r, t, tid); });
    mid.reads.push_back(me);
    out.push_back(std::move(mid));
    if (s.hi > ohi) {
      Seg right = std::move(s);
      right.lo = ohi;
      out.push_back(std::move(right));
    }
    cursor = ohi;
  }
  emit_gap(b);
  segs = std::move(out);
}

// --- Reporting ---------------------------------------------------------------

void RaceDetector::record_race(std::uint64_t line, std::uint32_t olo,
                               std::uint32_t ohi, const Epoch& prev,
                               bool prev_write, std::uint64_t tid,
                               topo::ProcId proc, bool cur_write) {
  const std::uint64_t byte = line + olo;
  const std::size_t idx = reg_.find(byte);
  // Dedup per app object when the byte is registered, else per line.
  const std::uint64_t unit =
      idx != obs::ObjectRegistry::npos ? (1ull << 63) | idx : line;
  const int kind = (prev_write ? 2 : 0) | (cur_write ? 1 : 0);
  if (!seen_.insert({prev.task, tid, unit, kind}).second) return;
  ++total_;
  if (reports_.size() >= kMaxReports) return;
  RaceReport r;
  r.addr = byte;
  r.bytes = ohi - olo;
  r.prev_write = prev_write;
  r.cur_write = cur_write;
  r.prev_task = prev.task;
  r.cur_task = tid;
  r.prev_proc = prev.proc;
  r.cur_proc = proc;
  r.object = reg_.label(byte);
  r.prev_desc = task_desc(prev.task, prev.proc);
  r.cur_desc = task_desc(tid, proc);
  reports_.push_back(std::move(r));
}

std::string RaceDetector::task_desc(std::uint64_t tid,
                                    topo::ProcId proc) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "task#%" PRIu64, tid);
  std::string s = buf;
  auto it = tasks_.find(tid);
  const obs::HintClass hint =
      it != tasks_.end() ? it->second.hint : obs::HintClass::kNone;
  const std::uint64_t key = it != tasks_.end() ? it->second.set_key : kNoSet;
  s += " (";
  s += obs::hint_class_name(hint);
  if (key != kNoSet) {
    s += " @ ";
    s += reg_.label(key);
  }
  std::snprintf(buf, sizeof buf, ") on proc %u", static_cast<unsigned>(proc));
  s += buf;
  return s;
}

std::string RaceDetector::report() const {
  std::string out = "== race check ==\n";
  char buf[96];
  if (total_ == 0) {
    out += "no races detected\n";
    return out;
  }
  std::snprintf(buf, sizeof buf, "%" PRIu64 " distinct race(s) detected\n",
                total_);
  out += buf;
  std::size_t i = 0;
  for (const RaceReport& r : reports_) {
    std::snprintf(buf, sizeof buf, "  [%zu] %s/%s on ", ++i,
                  r.prev_write ? "write" : "read",
                  r.cur_write ? "write" : "read");
    out += buf;
    out += r.object;
    std::snprintf(buf, sizeof buf, " (%u byte%s at 0x%" PRIx64 ")\n", r.bytes,
                  r.bytes == 1 ? "" : "s", r.addr);
    out += buf;
    out += "      " + r.prev_desc + "  vs  " + r.cur_desc + "\n";
  }
  if (total_ > reports_.size()) {
    std::snprintf(buf, sizeof buf, "  (+%" PRIu64 " more; first %zu shown)\n",
                  total_ - reports_.size(), reports_.size());
    out += buf;
  }
  return out;
}

}  // namespace cool::analysis
