// Ablation — remote:local latency ratio (paper §3).
//
// "In these multiprocessors the ratio of the latencies of local to remote
// references is usually much more significant than variations in the
// latencies to different remote processing elements." The affinity hints
// exist because remote references are expensive; this sweep varies the
// remote-memory latency (keeping local at 30 cycles) and shows the benefit
// of the hints growing with the ratio — on flat memory (ratio 1) they are
// nearly free but nearly useless, on DASH-like ratios they are essential.
#include <cstdio>

#include "apps/ocean/ocean.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::ocean;

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "abl_latency_ratio", "Affinity benefit vs remote:local latency ratio");
  opt.add_int("n", 192, "ocean grid dimension");
  opt.add_int("grids", 6, "state grids");
  opt.add_int("steps", 3, "timesteps");
  if (!opt.parse(argc, argv)) return 0;

  Config cfg;
  cfg.n = static_cast<int>(opt.get_int("n"));
  cfg.grids = static_cast<int>(opt.get_int("grids"));
  cfg.steps = static_cast<int>(opt.get_int("steps"));
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf("# Ocean %dx%d at P=%u, local memory fixed at 30 cycles\n",
                cfg.n, cfg.n, procs);
  }
  util::Table t({"remote-lat", "ratio", "Base(Mcyc)", "Distr+Aff(Mcyc)",
                 "affinity-benefit%"});
  for (std::uint32_t remote : {30u, 60u, 120u, 240u, 480u}) {
    auto run_one = [&](Variant v) {
      Config c = cfg;
      c.variant = v;
      SystemConfig sc;
      sc.machine = topo::MachineConfig::dash(procs);
      sc.machine.lat.remote_mem = remote;
      sc.machine.lat.remote_cache = remote + 12;
      sc.policy = policy_for(v);
      Runtime rt(sc);
      return run(rt, c).run.sim_cycles;
    };
    const auto base = run_one(Variant::kBase);
    const auto aff = run_one(Variant::kDistr);
    t.row()
        .cell(static_cast<std::uint64_t>(remote))
        .cell(static_cast<double>(remote) / 30.0, 1)
        .cell(static_cast<double>(base) / 1e6, 2)
        .cell(static_cast<double>(aff) / 1e6, 2)
        .cell(bench::improvement_pct(base, aff), 0);
  }
  rep.table(t);
  return rep.finish();
}
