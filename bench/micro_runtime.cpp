// Microbenchmarks (google-benchmark) of the runtime primitives the paper
// claims are cheap (§5: placement is "two modulo operations", queues are
// O(1) doubly-linked lists). These measure native host time of the data
// structures themselves, independent of the simulation.
#include <benchmark/benchmark.h>

#include "common/intrusive_list.hpp"
#include "common/rng.hpp"
#include "core/cool.hpp"
#include "memsim/cache.hpp"
#include "memsim/memsystem.hpp"
#include "sched/queues.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace cool;

void BM_IntrusiveListPushPop(benchmark::State& state) {
  struct Node {
    util::ListHook hook;
  };
  std::vector<Node> nodes(64);
  util::IntrusiveList<Node, &Node::hook> list;
  for (auto _ : state) {
    for (auto& n : nodes) list.push_back(&n);
    while (list.pop_front() != nullptr) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_IntrusiveListPushPop);

void BM_QueuePushPop(benchmark::State& state) {
  sched::ServerQueues q(64);
  std::vector<sched::TaskDesc> tasks(64);
  alignas(64) static int objs[64];
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].aff = sched::Affinity::task(&objs[i % 8]);
    tasks[i].aff_key = reinterpret_cast<std::uint64_t>(&objs[i % 8]) / 16;
  }
  for (auto _ : state) {
    for (auto& t : tasks) q.push(&t);
    while (q.pop() != nullptr) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QueuePushPop);

void BM_SchedulerPlaceAcquire(benchmark::State& state) {
  const topo::MachineConfig machine = topo::MachineConfig::dash();
  sched::Scheduler sched(machine, sched::Policy{},
                         [](std::uint64_t a, topo::ProcId) {
                           return static_cast<topo::ProcId>((a >> 12) % 32);
                         });
  std::vector<sched::TaskDesc> tasks(256);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].aff = sched::Affinity::object(
        reinterpret_cast<void*>(0x10000 + i * 4096));
  }
  for (auto _ : state) {
    for (auto& t : tasks) sched.place(&t, 0);
    for (topo::ProcId p = 0; p < 32; ++p) {
      while (sched.acquire(p).task != nullptr) {
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SchedulerPlaceAcquire);

void BM_CacheAccessHit(benchmark::State& state) {
  mem::Cache cache(64 * 1024, 1, 16);
  for (mem::LineAddr l = 0; l < 1024; ++l) cache.insert(l);
  mem::LineAddr l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(l));
    l = (l + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessHit);

void BM_MemSystemAccess(benchmark::State& state) {
  const topo::MachineConfig machine = topo::MachineConfig::dash();
  mem::MemorySystem ms(machine);
  ms.bind_range(0, 1 << 24, 0);
  util::Rng rng(1);
  std::uint64_t now = 0;
  for (auto _ : state) {
    const std::uint64_t addr = rng.next_below(1 << 22) & ~7ull;
    benchmark::DoNotOptimize(
        ms.access(static_cast<topo::ProcId>(addr % 32), addr, 8,
                  (addr & 64) != 0, now));
    now += 10;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemSystemAccess);

void BM_SpawnRunEmptyTasks(benchmark::State& state) {
  // Full engine path: spawn N trivial tasks and drive them to completion.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SystemConfig sc;
    sc.machine = topo::MachineConfig::dash(8);
    Runtime rt(sc);
    rt.run([](int count) -> TaskFn {
      auto& c = co_await self();
      TaskGroup waitfor;
      for (int i = 0; i < count; ++i) {
        c.spawn(Affinity::none(), waitfor, []() -> TaskFn { co_return; }());
      }
      co_await c.wait(waitfor);
    }(n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpawnRunEmptyTasks)->Arg(256)->Arg(4096);

void BM_MutexHandoffChain(benchmark::State& state) {
  for (auto _ : state) {
    SystemConfig sc;
    sc.machine = topo::MachineConfig::dash(4);
    Runtime rt(sc);
    auto* mu = new Mutex;
    rt.run([](Mutex* m) -> TaskFn {
      auto& c = co_await self();
      TaskGroup waitfor;
      for (int i = 0; i < 64; ++i) {
        c.spawn(Affinity::none(), waitfor, [](Mutex* mm) -> TaskFn {
          auto& cc = co_await self();
          auto g = co_await cc.lock(*mm);
          cc.work(10);
        }(m));
      }
      co_await c.wait(waitfor);
    }(mu));
    delete mu;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MutexHandoffChain);

}  // namespace

BENCHMARK_MAIN();
