// Figure 11 — LocusRoute: cache-miss statistics.
//
// Paper: affinity scheduling nearly halves the number of cache misses
// (region reuse + fewer invalidations); distributing the CostArray leaves
// the miss count unchanged but services more of the misses in local memory.
#include <cstdio>

#include "apps/locusroute/locusroute.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::locusroute;

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "fig11_locusroute_misses",
      "LocusRoute cache misses by version (paper Fig. 11)");
  opt.add_int("wires-per-region", 96, "synthetic wires per region");
  opt.add_int("iterations", 3, "rip-up-and-reroute passes");
  if (!opt.parse(argc, argv)) return 0;

  Config cfg;
  cfg.wires_per_region = static_cast<int>(opt.get_int("wires-per-region"));
  cfg.iterations = static_cast<int>(opt.get_int("iterations"));
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  cfg.regions = static_cast<int>(procs);

  bench::Report rep(opt);
  if (rep.text()) std::printf("# LocusRoute cache behaviour at P=%u\n", procs);
  auto t = bench::miss_table();
  apps::RunResult base_r, aff_r, distr_r;
  for (Variant v :
       {Variant::kBase, Variant::kAffinity, Variant::kAffinityDistr}) {
    Config c = cfg;
    c.variant = v;
    Runtime rt = v == Variant::kAffinityDistr
                     ? bench::make_runtime(procs, policy_for(v), opt)
                     : bench::make_runtime(procs, policy_for(v));
    const Result r = run(rt, c);
    bench::miss_row(t, variant_name(v), r.run);
    if (v == Variant::kBase) base_r = r.run;
    if (v == Variant::kAffinity) aff_r = r.run;
    if (v == Variant::kAffinityDistr) {
      distr_r = r.run;
      rep.profile_from(rt);
    }
  }
  rep.table(t);
  const double miss_ratio =
      static_cast<double>(base_r.mem.misses()) /
      static_cast<double>(aff_r.mem.misses() ? aff_r.mem.misses() : 1);
  if (rep.text()) {
    std::printf(
        "\nshape: misses Base:Affinity = %.2f : 1 (paper: ~2:1); "
        "local service %.0f%% -> %.0f%% with distribution\n",
        miss_ratio, 100.0 * apps::local_fraction(aff_r.mem),
        100.0 * apps::local_fraction(distr_r.mem));
  }
  rep.shape("base_over_affinity_miss_ratio", miss_ratio);
  rep.shape("affinity_local_pct", 100.0 * apps::local_fraction(aff_r.mem));
  rep.shape("distr_local_pct", 100.0 * apps::local_fraction(distr_r.mem));
  rep.obs_from(distr_r);
  return rep.finish();
}
