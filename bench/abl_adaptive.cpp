// Ablation — the online adaptive locality runtime (--adapt).
//
// Headline experiment for src/adaptive: on gauss and ocean, compare
//   hinted     the paper's hand-tuned version (affinity hints + explicit
//              data distribution in the source),
//   unhinted   the same program with the hand tuning stripped (everything
//              homed on processor 0, no TASK hints / no distribute() call),
//   unhinted+adapt   the unhinted program under --adapt: the engine watches
//              the profiler online, rehomes the hot arrays, promotes tasks
//              to TASK affinity and opens up stealing — with zero source
//              changes.
//
// The shape metrics report what fraction of the hand-tuning speedup the
// adaptive runtime recovers automatically:
//   recovered = (unhinted - adapted) / (unhinted - hinted).
#include <cstdio>

#include "apps/gauss/gauss.hpp"
#include "apps/ocean/ocean.hpp"
#include "bench_common.hpp"

using namespace cool;

namespace {

/// Runtime with the adaptive engine attached unconditionally (this bench's
/// point), honouring an explicit --adapt=<policy.json> override if given.
Runtime make_adapt_runtime(std::uint32_t procs, const sched::Policy& policy,
                           const util::Options& opt) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy;
  sc.adapt = true;
  const std::string& pol_path = opt.get_string("adapt");
  if (!pol_path.empty()) {
    sc.adapt_policy = adaptive::load_adapt_policy(pol_path);
  }
  return Runtime(sc);
}

double recovered_frac(std::uint64_t unhinted, std::uint64_t hinted,
                      std::uint64_t adapted) {
  const auto gap = static_cast<double>(unhinted) - static_cast<double>(hinted);
  if (gap <= 0.0) return 0.0;
  return (static_cast<double>(unhinted) - static_cast<double>(adapted)) / gap;
}

void add_row(util::Table& t, const char* app, const char* version,
             const apps::RunResult& r, std::uint64_t decisions) {
  t.row()
      .cell(app)
      .cell(version)
      .cell(apps::mcycles(r.sim_cycles), 2)
      .cell(100.0 * apps::local_fraction(r.mem), 1)
      .cell(r.sched.tasks_stolen)
      .cell(decisions);
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "abl_adaptive",
      "Online adaptation (--adapt) vs hand-hinted vs unhinted");
  opt.add_int("n", 64, "gauss matrix dimension");
  opt.add_int("ocean-n", 64, "ocean grid dimension");
  opt.add_int("grids", 2, "ocean state grids");
  opt.add_int("steps", 6, "ocean timesteps");
  opt.add_flag("quick", "smaller problems for smoke testing");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  const bool quick = opt.flag("quick");

  apps::gauss::Config gcfg;
  gcfg.n = quick ? 48 : static_cast<int>(opt.get_int("n"));
  // Quick mode shrinks ocean via timesteps, not grid size: below n=64 a
  // grid is fewer pages than processors and page-granularity distribution
  // (hand or adaptive) cannot spread one strip per processor.
  apps::ocean::Config ocfg;
  ocfg.n = static_cast<int>(opt.get_int("ocean-n"));
  ocfg.grids = static_cast<int>(opt.get_int("grids"));
  ocfg.steps = quick ? 3 : static_cast<int>(opt.get_int("steps"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf("# Adaptive runtime ablation, P=%u (gauss n=%d, ocean n=%d)\n",
                procs, gcfg.n, ocfg.n);
  }
  util::Table t({"app", "version", "cycles(M)", "local-miss%", "stolen",
                 "decisions"});

  // --- gauss: hand hints are TASK+OBJECT affinity + column distribution ----
  std::uint64_t g_hint = 0, g_plain = 0, g_adapt = 0, g_dec = 0;
  {
    apps::gauss::Config c = gcfg;
    c.variant = apps::gauss::Variant::kTaskObject;
    c.distribute = true;
    Runtime rt = bench::make_runtime(
        procs, apps::gauss::policy_for(c.variant));
    const auto r = apps::gauss::run(rt, c);
    g_hint = r.run.sim_cycles;
    add_row(t, "gauss", "hinted", r.run, 0);
  }
  {
    apps::gauss::Config c = gcfg;
    c.variant = apps::gauss::Variant::kObjectOnly;
    c.distribute = false;
    Runtime rt = bench::make_runtime(
        procs, apps::gauss::policy_for(c.variant));
    const auto r = apps::gauss::run(rt, c);
    g_plain = r.run.sim_cycles;
    add_row(t, "gauss", "unhinted", r.run, 0);
  }
  {
    apps::gauss::Config c = gcfg;
    c.variant = apps::gauss::Variant::kObjectOnly;
    c.distribute = false;
    Runtime rt = make_adapt_runtime(
        procs, apps::gauss::policy_for(c.variant), opt);
    const auto r = apps::gauss::run(rt, c);
    g_adapt = r.run.sim_cycles;
    g_dec = rt.adaptive_engine()->log().size();
    add_row(t, "gauss", "unhinted+adapt", r.run, g_dec);
    rep.obs_from(r.run);
    rep.adaptation_from(rt);  // gauss's log is the record's adaptation block
  }

  // --- ocean: the hand tuning is the Figure 5 distribute() step -----------
  std::uint64_t o_hint = 0, o_plain = 0, o_adapt = 0, o_dec = 0;
  {
    apps::ocean::Config c = ocfg;
    c.variant = apps::ocean::Variant::kDistr;
    Runtime rt = bench::make_runtime(
        procs, apps::ocean::policy_for(c.variant));
    const auto r = apps::ocean::run(rt, c);
    o_hint = r.run.sim_cycles;
    add_row(t, "ocean", "hinted", r.run, 0);
  }
  {
    apps::ocean::Config c = ocfg;
    c.variant = apps::ocean::Variant::kAffOnly;
    Runtime rt = bench::make_runtime(
        procs, apps::ocean::policy_for(c.variant));
    const auto r = apps::ocean::run(rt, c);
    o_plain = r.run.sim_cycles;
    add_row(t, "ocean", "unhinted", r.run, 0);
  }
  {
    apps::ocean::Config c = ocfg;
    c.variant = apps::ocean::Variant::kAffOnly;
    Runtime rt = make_adapt_runtime(
        procs, apps::ocean::policy_for(c.variant), opt);
    const auto r = apps::ocean::run(rt, c);
    o_adapt = r.run.sim_cycles;
    o_dec = rt.adaptive_engine()->log().size();
    add_row(t, "ocean", "unhinted+adapt", r.run, o_dec);
  }

  rep.table(t);
  const double g_rec = recovered_frac(g_plain, g_hint, g_adapt);
  const double o_rec = recovered_frac(o_plain, o_hint, o_adapt);
  if (rep.text()) {
    std::printf(
        "\nshape: adapt recovers %.0f%% of the gauss hand-hint speedup, "
        "%.0f%% of ocean's (%llu + %llu decisions)\n",
        100.0 * g_rec, 100.0 * o_rec,
        static_cast<unsigned long long>(g_dec),
        static_cast<unsigned long long>(o_dec));
  }
  rep.shape("gauss_recovered_frac", g_rec);
  rep.shape("ocean_recovered_frac", o_rec);
  rep.shape("gauss_decisions", static_cast<double>(g_dec));
  rep.shape("ocean_decisions", static_cast<double>(o_dec));
  return rep.finish();
}
