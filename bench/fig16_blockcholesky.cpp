// Figure 16b — Block Cholesky: speedup with affinity hints.
//
// Paper: the COOL block-Cholesky even beats the hand-coded ANL program,
// thanks to better dynamic load balance — the runtime steals hint-free work
// while affinity keeps block updates collocated.
#include <cstdio>

#include "apps/cholesky/block.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::cholesky;

namespace {

BlockResult run_one(std::uint32_t procs, BlockVariant v, BlockConfig cfg,
                    bench::Report* prof = nullptr,
                    const util::Options* opt = nullptr) {
  cfg.variant = v;
  Runtime rt = prof != nullptr && opt != nullptr
                   ? bench::make_runtime(procs, block_policy_for(v), *opt)
                   : bench::make_runtime(procs, block_policy_for(v));
  BlockResult r = run_block(rt, cfg);
  if (prof != nullptr) prof->profile_from(rt);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "fig16_blockcholesky",
      "Block Cholesky speedup vs processors (paper Fig. 16b)");
  opt.add_int("blocks", 16, "matrix blocks per dimension");
  opt.add_int("block-size", 24, "doubles per block dimension");
  opt.add_int("band", 0, "block bandwidth (0 = dense)");
  if (!opt.parse(argc, argv)) return 0;

  BlockConfig cfg;
  cfg.blocks = static_cast<int>(opt.get_int("blocks"));
  cfg.block_size = static_cast<int>(opt.get_int("block-size"));
  cfg.band = static_cast<int>(opt.get_int("band"));
  const auto max_procs = static_cast<std::uint32_t>(opt.get_int("max-procs"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf("# Block Cholesky (%dx%d blocks of %d^2 doubles)\n", cfg.blocks,
                cfg.blocks, cfg.block_size);
  }

  const std::uint64_t serial =
      run_one(1, BlockVariant::kBase, cfg).run.sim_cycles;

  util::Table t({"P", "Base", "Distr+Aff"});
  std::uint64_t base32 = 0;
  std::uint64_t aff32 = 0;
  for (std::uint32_t p : apps::proc_series(max_procs)) {
    const auto base = run_one(p, BlockVariant::kBase, cfg);
    const auto aff = run_one(p, BlockVariant::kDistrAff, cfg,
                             p == max_procs ? &rep : nullptr, &opt);
    t.row()
        .cell(static_cast<std::uint64_t>(p))
        .cell(apps::speedup(serial, base.run.sim_cycles), 2)
        .cell(apps::speedup(serial, aff.run.sim_cycles), 2);
    if (p == max_procs) {
      base32 = base.run.sim_cycles;
      aff32 = aff.run.sim_cycles;
      rep.obs_from(aff.run);
    }
  }
  rep.table(t);
  if (rep.text()) {
    std::printf("\nshape: Distr+Aff over Base at P=%u: +%.0f%%\n", max_procs,
                bench::improvement_pct(base32, aff32));
  }
  rep.shape("distr_aff_over_base_pct", bench::improvement_pct(base32, aff32));
  return rep.finish();
}
