// Figure 16a — Barnes-Hut: speedup with affinity hints.
//
// Paper: the COOL version (body blocks distributed, OBJECT affinity) performs
// close to the hand-coded ANL version; hints let the programmer explore
// locality/load-balance tradeoffs by editing one line.
#include <cstdio>

#include "apps/barneshut/barneshut.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::barneshut;

namespace {

Result run_one(std::uint32_t procs, Variant v, Config cfg,
               bench::Report* prof = nullptr,
               const util::Options* opt = nullptr) {
  cfg.variant = v;
  Runtime rt = prof != nullptr && opt != nullptr
                   ? bench::make_runtime(procs, policy_for(v), *opt)
                   : bench::make_runtime(procs, policy_for(v));
  Result r = run(rt, cfg);
  if (prof != nullptr) prof->profile_from(rt);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "fig16_barneshut", "Barnes-Hut speedup vs processors (paper Fig. 16a)");
  opt.add_int("bodies", 4096, "number of bodies");
  opt.add_int("steps", 2, "timesteps");
  if (!opt.parse(argc, argv)) return 0;

  Config cfg;
  cfg.n_bodies = static_cast<int>(opt.get_int("bodies"));
  cfg.steps = static_cast<int>(opt.get_int("steps"));
  const auto max_procs = static_cast<std::uint32_t>(opt.get_int("max-procs"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf("# Barnes-Hut (%d bodies, theta=%.2f, %d steps)\n",
                cfg.n_bodies, cfg.theta, cfg.steps);
  }

  const std::uint64_t serial = run_one(1, Variant::kBase, cfg).run.sim_cycles;

  util::Table t({"P", "Base", "Distr+Aff"});
  std::uint64_t base32 = 0;
  std::uint64_t aff32 = 0;
  for (std::uint32_t p : apps::proc_series(max_procs)) {
    const auto base = run_one(p, Variant::kBase, cfg);
    const auto aff = run_one(p, Variant::kDistrAff, cfg,
                             p == max_procs ? &rep : nullptr, &opt);
    t.row()
        .cell(static_cast<std::uint64_t>(p))
        .cell(apps::speedup(serial, base.run.sim_cycles), 2)
        .cell(apps::speedup(serial, aff.run.sim_cycles), 2);
    if (p == max_procs) {
      base32 = base.run.sim_cycles;
      aff32 = aff.run.sim_cycles;
      rep.obs_from(aff.run);
    }
  }
  rep.table(t);
  if (rep.text()) {
    std::printf("\nshape: Distr+Aff over Base at P=%u: +%.0f%%\n", max_procs,
                bench::improvement_pct(base32, aff32));
  }
  rep.shape("distr_aff_over_base_pct", bench::improvement_pct(base32, aff32));
  return rep.finish();
}
