// Scheduler-scaling microbenchmark: tasks/sec of spawn (place) + acquire +
// steal on one shared Scheduler across 1..N real OS threads, one thread per
// server. This is the contended-path benchmark for the sharded scheduler —
// with the old engine-wide lock, throughput fell as threads were added; with
// per-server locking it must not.
//
// Output: a cool-bench/1 JSON record (obs/bench_json.hpp) with one series row
// per thread count, on stdout by default. Write it into a run directory to
// track scheduler-scaling regressions across PRs:
//   ./bench/micro_sched_throughput --json-out=runs/today
//   ./bench/runner --compare runs/yesterday runs/today
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/options.hpp"
#include "common/table.hpp"
#include "obs/bench_json.hpp"
#include "sched/scheduler.hpp"
#include "topology/machine.hpp"

namespace {

using namespace cool;

struct Result {
  std::uint32_t threads = 0;
  std::size_t tasks = 0;
  double seconds = 0.0;
  std::uint64_t steals = 0;
};

/// A reusable task: `in_flight` is set by the placing owner and cleared by
/// whichever thread acquires the task, so a descriptor is never re-placed
/// while still sitting on (or stolen onto) some queue.
struct BenchTask {
  sched::TaskDesc d;
  std::atomic<bool> in_flight{false};
};

/// Each worker owns one server id and a pool of `batch` descriptors. It
/// places every free descriptor (a mix of task-affinity sets and plain
/// tasks, spawner = its own server) and acquires in between — acquires hit
/// the local queue first and steal from the other servers when it runs dry,
/// so the loop exercises place, pop, and the try_lock steal scan
/// concurrently. Runs until `grand_total` tasks were acquired fleet-wide.
void worker(sched::Scheduler& s, topo::ProcId id, std::size_t n_tasks,
            std::size_t batch, std::atomic<std::size_t>& acquired_total,
            std::size_t grand_total) {
  std::vector<BenchTask> pool(batch);
  for (BenchTask& b : pool) b.d.owner = &b;
  // Per-thread affinity objects: 4 sets per server, page-aligned like real
  // COOL objects so the key-mixing path is exercised.
  const std::uint64_t obj_base = 0x1000000ull * (id + 1);
  std::size_t placed = 0;
  while (acquired_total.load(std::memory_order_relaxed) < grand_total) {
    for (BenchTask& b : pool) {
      if (placed >= n_tasks) break;
      if (b.in_flight.load(std::memory_order_acquire)) continue;
      b.in_flight.store(true, std::memory_order_relaxed);
      if (placed % 2 == 0) {
        b.d.aff = sched::Affinity::task(
            reinterpret_cast<void*>(obj_base + (placed % 4) * 4096));
      } else {
        b.d.aff = sched::Affinity::none();
      }
      s.place(&b.d, id);
      ++placed;
    }
    const auto acq = s.acquire(id);
    if (acq.task != nullptr) {
      static_cast<BenchTask*>(acq.task->owner)
          ->in_flight.store(false, std::memory_order_release);
      acquired_total.fetch_add(1, std::memory_order_relaxed);
    } else if (!acq.contended) {
      std::this_thread::yield();
    }
  }
}

Result run_once(std::uint32_t n_threads, std::size_t tasks_per_thread,
                std::size_t batch) {
  const topo::MachineConfig machine = topo::MachineConfig::dash(n_threads);
  sched::Policy pol;
  pol.steal_object_tasks = true;
  sched::Scheduler s(machine, pol, [n_threads](std::uint64_t a, topo::ProcId) {
    return static_cast<topo::ProcId>((a >> 24) % n_threads);
  });

  const std::size_t grand_total = tasks_per_thread * n_threads;
  std::atomic<std::size_t> acquired_total{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t i = 0; i < n_threads; ++i) {
    threads.emplace_back([&, i] {
      worker(s, static_cast<topo::ProcId>(i), tasks_per_thread, batch,
             acquired_total, grand_total);
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  Result r;
  r.threads = n_threads;
  r.tasks = acquired_total.load();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.steals = s.stats().steals;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt("micro_sched_throughput",
                    "tasks/sec of place+acquire+steal across 1..N threads");
  opt.add_int("max-threads", 8, "largest thread (= server) count in the sweep");
  opt.add_int("tasks", 100000, "tasks per thread per measurement");
  opt.add_int("batch", 64, "tasks placed per worker batch");
  opt.add_int("warmup", 1, "warm-up repetitions before the measured run");
  opt.add_flag("json", "accepted for uniformity; output is always the record");
  opt.add_string("json-out", "",
                 "write the JSON record to this file or directory "
                 "(default: stdout)");
  if (!opt.parse(argc, argv)) return 0;

  const auto max_threads =
      static_cast<std::uint32_t>(std::max<std::int64_t>(1, opt.get_int("max-threads")));
  const auto tasks = static_cast<std::size_t>(opt.get_int("tasks"));
  const auto batch = static_cast<std::size_t>(std::max<std::int64_t>(1, opt.get_int("batch")));

  obs::BenchRecord rec(opt.program());
  rec.set_config(opt);
  util::Table t({"threads", "tasks", "seconds", "tasks_per_sec", "steals"});
  double peak = 0.0;
  for (std::uint32_t n = 1; n <= max_threads; n *= 2) {
    for (std::int64_t w = 0; w < opt.get_int("warmup"); ++w) {
      (void)run_once(n, tasks / 10 + 1, batch);
    }
    const Result r = run_once(n, tasks, batch);
    const double rate =
        r.seconds > 0 ? static_cast<double>(r.tasks) / r.seconds : 0.0;
    peak = std::max(peak, rate);
    t.row()
        .cell(static_cast<std::uint64_t>(r.threads))
        .cell(static_cast<std::uint64_t>(r.tasks))
        .cell(r.seconds, 4)
        .cell(rate, 1)
        .cell(r.steals);
  }
  rec.add_series(t);
  rec.add_shape("peak_tasks_per_sec", peak);
  const std::string& out = opt.get_string("json-out");
  if (out.empty()) {
    const std::string j = rec.to_json();
    std::fwrite(j.data(), 1, j.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (!rec.write_to(out)) {
    std::fprintf(stderr, "failed to write record to %s\n", out.c_str());
    return 1;
  }
  return 0;
}
