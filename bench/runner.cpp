// bench/runner — drive the benchmark fleet and manage its JSON records.
//
// Three modes:
//   runner [--quick] [--out=DIR] [--only=SUBSTR]
//       Execute every bench binary with --json (quick mode shrinks the
//       problem sizes so the whole fleet finishes in seconds), validate each
//       record against the cool-bench/1 schema, and write BENCH_<name>.json
//       files into DIR. Exits non-zero if any bench fails or emits an
//       invalid record.
//   runner --list
//       Print the fleet with the args each mode would use.
//   runner --compare OLD NEW [--threshold=PCT]
//       Diff two record directories: for every bench present in both, report
//       each shape metric whose relative change exceeds PCT (default 5%)
//       plus each obs-snapshot counter (steals, failed steal scans,
//       remote-miss ratio, invalidations) that increased past it, and note
//       config mismatches that make the comparison apples-to-oranges.
//       Per-record sim_rate (simulated cycles per wall-second) is printed
//       for information only; it never fails the comparison.
//       Exits non-zero when any metric regressed past the threshold. With
//       --fail-on-regression=PCT the exit status instead tracks only
//       direction-aware regressions (a speedup shrinking, cycles or steal
//       counters growing) beyond PCT — drift in the good direction still
//       prints but passes.
//
// The bench binaries are expected next to the runner (the build drops
// everything into build/bench/), overridable with --bin-dir.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/options.hpp"
#include "obs/bench_json.hpp"
#include "obs/json.hpp"

namespace fs = std::filesystem;
using cool::obs::json::Value;

namespace {

struct Bench {
  const char* name;
  const char* quick_args;  ///< Shrunk problem for smoke runs.
  const char* full_args;   ///< Paper-scale defaults ("" = binary defaults).
};

// Quick args keep every bench under a few seconds while still exercising the
// full pipeline (multiple processor counts, all variants).
constexpr std::array<Bench, 20> kFleet{{
    {"tab01_affinity_hints", "--procs=8 --objects=32 --obj-kb=16 --tasks-per-obj=4", ""},
    {"fig03_gauss_affinity", "--max-procs=8 --n=64", ""},
    {"fig06_ocean_speedup", "--max-procs=8 --n=64 --grids=2 --steps=2", ""},
    {"fig07_ocean_misses", "--procs=8 --n=64 --grids=2 --steps=2", ""},
    {"fig10_locusroute_speedup", "--max-procs=8 --wires-per-region=16 --iterations=2", ""},
    {"fig11_locusroute_misses", "--procs=8 --wires-per-region=16 --iterations=2", ""},
    {"fig14_panel_speedup", "--max-procs=8 --panels=48", ""},
    {"fig15_panel_misses", "--procs=8 --panels=48", ""},
    {"fig16_barneshut", "--max-procs=8 --bodies=512 --steps=1", ""},
    {"fig16_blockcholesky", "--max-procs=8 --blocks=8 --block-size=12", ""},
    {"abl_queue_array", "--procs=8 --objects=32 --obj-kb=16 --tasks-per-obj=4", ""},
    {"abl_steal_policy", "--procs=8 --panels=48", ""},
    {"abl_region_size", "--procs=8 --total-wires=512 --total-width=512", ""},
    {"abl_multi_object", "--procs=8 --pairs=16 --tasks-per-pair=2", ""},
    {"abl_latency_ratio", "--procs=8 --n=64 --grids=2 --steps=2", ""},
    {"abl_adaptive", "--procs=8 --quick", ""},
    {"abl_balancer", "--procs=8 --quick", ""},
    {"srv_txn_latency", "--procs=8 --quick", ""},
    {"abl_srv_skew", "--procs=8 --quick", ""},
    {"micro_sched_throughput", "--max-threads=4 --tasks=20000 --warmup=0", ""},
}};

/// Run `cmd`, capturing stdout. Returns the child's exit status (-1 on popen
/// failure).
int capture(const std::string& cmd, std::string& out) {
  out.clear();
  std::FILE* p = ::popen(cmd.c_str(), "r");
  if (p == nullptr) return -1;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, p)) > 0) out.append(buf, n);
  return ::pclose(p);
}

int run_fleet(const std::string& bin_dir, const std::string& out_dir,
              bool quick, const std::string& only) {
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "runner: cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  int failures = 0;
  int ran = 0;
  for (const Bench& b : kFleet) {
    if (!only.empty() && std::string(b.name).find(only) == std::string::npos) {
      continue;
    }
    const std::string exe = bin_dir + "/" + b.name;
    if (!fs::exists(exe)) {
      std::fprintf(stderr, "runner: SKIP %s (binary not found at %s)\n",
                   b.name, exe.c_str());
      ++failures;
      continue;
    }
    const char* args = quick ? b.quick_args : b.full_args;
    std::string cmd = exe + " --json";
    if (args[0] != '\0') cmd += std::string(" ") + args;
    std::printf("runner: %s\n", cmd.c_str());
    std::fflush(stdout);
    std::string text;
    const int status = capture(cmd, text);
    if (status != 0) {
      std::fprintf(stderr, "runner: FAIL %s (exit status %d)\n", b.name,
                   status);
      ++failures;
      continue;
    }
    const std::string err = cool::obs::validate_bench_json(text);
    if (!err.empty()) {
      std::fprintf(stderr, "runner: FAIL %s (invalid record: %s)\n", b.name,
                   err.c_str());
      ++failures;
      continue;
    }
    const std::string path =
        out_dir + "/BENCH_" + std::string(b.name) + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
      std::fprintf(stderr, "runner: FAIL %s (cannot write %s)\n", b.name,
                   path.c_str());
      if (f != nullptr) std::fclose(f);
      ++failures;
      continue;
    }
    std::fclose(f);
    ++ran;
  }
  std::printf("runner: %d record(s) written to %s, %d failure(s)\n", ran,
              out_dir.c_str(), failures);
  return failures == 0 && ran > 0 ? 0 : 1;
}

bool load_record(const fs::path& path, Value& v) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string err;
  if (!cool::obs::json::parse(text, v, &err)) {
    std::fprintf(stderr, "runner: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return cool::obs::validate_bench_record(v).empty();
}

/// Render one config entry as comparable text; an absent key reads as `def`
/// so records predating the key compare equal to ones that recorded its
/// default.
std::string config_text(const Value* config, const char* key,
                        const char* def) {
  const Value* v = config != nullptr ? config->find(key) : nullptr;
  if (v == nullptr) return def;
  switch (v->kind) {
    case Value::Kind::kBool:
      return v->boolean ? "true" : "false";
    case Value::Kind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", v->num);
      return buf;
    }
    case Value::Kind::kString:
      return v->str;
    default:
      return def;
  }
}

/// Relative change of b vs a in percent (0 when both are ~zero).
double rel_pct(double a, double b) {
  if (std::fabs(a) < 1e-12) return std::fabs(b) < 1e-12 ? 0.0 : 100.0;
  return 100.0 * (b - a) / std::fabs(a);
}

/// Which way a shape metric is supposed to move. `--compare` alone flags any
/// change past the threshold (drift detection); `--fail-on-regression` only
/// fails the run when a metric moved in its *bad* direction, which needs a
/// per-metric notion of good. The fleet's shape names encode it: percentages
/// and ratios named for a speedup/locality win are higher-better, counts of
/// work (cycles, misses) are lower-better, and identity-like values (decision
/// counts, a post-migrate home) have no direction at all.
enum class Direction { kHigherBetter, kLowerBetter, kNeutral };

Direction shape_direction(const std::string& name) {
  for (const char* s : {"decisions", "home_after"}) {
    if (name.find(s) != std::string::npos) return Direction::kNeutral;
  }
  // Latency percentiles are checked before the generic win tokens so that a
  // key like "p99_past_sat" never matches a higher-better substring by
  // accident: tail latency growing is always the bad direction.
  for (const char* s : {"p50", "p95", "p99", "p999", "latency"}) {
    if (name.find(s) != std::string::npos) return Direction::kLowerBetter;
  }
  for (const char* s :
       {"local", "over", "recovered", "speedup", "improvement", "peak",
        "served", "throughput"}) {
    if (name.find(s) != std::string::npos) return Direction::kHigherBetter;
  }
  return Direction::kLowerBetter;
}

/// Locality/scheduling counters worth diffing across runs, derived from the
/// record's obs snapshot. Higher is worse for all of them, so --compare only
/// flags increases. Returns false when the record carries no obs block.
bool obs_metrics(const Value& rec,
                 std::vector<std::pair<std::string, double>>& out) {
  const Value* obs = rec.find("obs");
  if (obs == nullptr || !obs->is_object()) return false;
  const Value* values = obs->find("values");
  if (values == nullptr || !values->is_object()) return false;
  auto num = [&](const char* k) -> double {
    const Value* v = values->find(k);
    return v != nullptr && v->is_number() ? v->num : 0.0;
  };
  out.emplace_back("obs:sched.steals", num("sched.steals"));
  out.emplace_back("obs:sched.failed_steal_scans",
                   num("sched.failed_steal_scans"));
  const double misses = num("mem.misses");
  out.emplace_back("obs:mem.remote_miss_ratio",
                   misses > 0.0 ? num("mem.remote_misses") / misses : 0.0);
  out.emplace_back("obs:mem.invals_sent", num("mem.invals_sent"));
  // Balancer activity (PR 6). Records written before the balancer existed
  // lack these keys; num() reads them as 0, so --compare against an old
  // baseline sees no spurious diff under the default (inactive) balancer.
  out.emplace_back("obs:sched.balance.commands", num("sched.balance.commands"));
  out.emplace_back("obs:sched.balance.moves", num("sched.balance.moves"));
  out.emplace_back("obs:sched.balance.reserve_hits",
                   num("sched.balance.reserve_hits"));
  return true;
}

int compare_runs(const std::string& old_dir, const std::string& new_dir,
                 double threshold, double fail_pct) {
  int compared = 0;
  int over = 0;
  int regressed = 0;
  std::error_code ec;
  std::vector<fs::path> olds;
  for (const auto& e : fs::directory_iterator(old_dir, ec)) {
    const std::string fn = e.path().filename().string();
    if (fn.rfind("BENCH_", 0) == 0 && e.path().extension() == ".json") {
      olds.push_back(e.path());
    }
  }
  if (ec || olds.empty()) {
    std::fprintf(stderr, "runner: no BENCH_*.json records in %s\n",
                 old_dir.c_str());
    return 2;
  }
  std::sort(olds.begin(), olds.end());
  for (const fs::path& op : olds) {
    const fs::path np = fs::path(new_dir) / op.filename();
    if (!fs::exists(np)) {
      std::printf("%-28s only in %s\n", op.filename().c_str(),
                  old_dir.c_str());
      continue;
    }
    Value a;
    Value b;
    if (!load_record(op, a) || !load_record(np, b)) {
      std::fprintf(stderr, "runner: cannot load %s pair\n",
                   op.filename().c_str());
      ++over;
      continue;
    }
    const std::string bench = a.find("bench")->str;
    // Config drift makes metric deltas meaningless — call it out first.
    const Value* ca = a.find("config");
    const Value* cb = b.find("config");
    // Analysis instrumentation (race detector, sanitizers) distorts wall
    // time and, for sanitizers, codegen — a record pair that disagrees on
    // either is not performance-comparable, which deserves a louder callout
    // than ordinary config drift.
    constexpr std::pair<const char*, const char*> kAnalysisKeys[] = {
        {"race-check", "false"}, {"build.sanitizer", "none"}};
    for (const auto& [key, def] : kAnalysisKeys) {
      const std::string va = config_text(ca, key, def);
      const std::string vb = config_text(cb, key, def);
      if (va != vb) {
        std::printf(
            "%-28s WARNING: %s differs (%s vs %s) — records are not "
            "performance-comparable\n",
            bench.c_str(), key, va.c_str(), vb.c_str());
      }
    }
    for (const auto& [k, va] : ca->obj) {
      const Value* vb = cb->find(k);
      const bool same =
          vb != nullptr && va.kind == vb->kind && va.num == vb->num &&
          va.str == vb->str && va.boolean == vb->boolean;
      if (!same) {
        std::printf("%-28s config.%s differs between runs\n", bench.c_str(),
                    k.c_str());
      }
    }
    // Simulator speed (cycles simulated per wall-second). Purely
    // informational: it measures the host and the simulator, not the code
    // under test, so it never counts toward thresholds or regressions.
    {
      const Value* sra = a.find("sim_rate");
      const Value* srb = b.find("sim_rate");
      if (srb != nullptr && srb->is_number()) {
        if (sra != nullptr && sra->is_number()) {
          std::printf("%-28s %-32s %12.4g -> %12.4g  (%+.1f%%, info)\n",
                      bench.c_str(), "sim_rate(cyc/s)", sra->num, srb->num,
                      rel_pct(sra->num, srb->num));
        } else {
          std::printf("%-28s %-32s %28.4g  (new, info)\n", bench.c_str(),
                      "sim_rate(cyc/s)", srb->num);
        }
      }
    }
    for (const auto& [k, va] : a.find("shape")->obj) {
      const Value* vb = b.find("shape")->find(k);
      if (vb == nullptr || !va.is_number() || !vb->is_number()) continue;
      const double d = rel_pct(va.num, vb->num);
      ++compared;
      bool reg = false;
      if (fail_pct >= 0.0) {
        const Direction dir = shape_direction(k);
        reg = (dir == Direction::kHigherBetter && d < -fail_pct) ||
              (dir == Direction::kLowerBetter && d > fail_pct);
      }
      if (std::fabs(d) > threshold || reg) {
        std::printf("%-28s %-32s %12.4g -> %12.4g  (%+.1f%%)%s\n",
                    bench.c_str(), k.c_str(), va.num, vb->num, d,
                    reg ? "  REGRESSION" : "");
        if (std::fabs(d) > threshold) ++over;
        if (reg) ++regressed;
      }
    }
    // Scheduler/locality counters from the obs snapshot: a bench can hold
    // its shape while quietly stealing more or servicing more misses
    // remotely, so diff these too (increase = regression).
    std::vector<std::pair<std::string, double>> ma;
    std::vector<std::pair<std::string, double>> mb;
    if (obs_metrics(a, ma) && obs_metrics(b, mb)) {
      for (std::size_t i = 0; i < ma.size(); ++i) {
        const double d = rel_pct(ma[i].second, mb[i].second);
        ++compared;
        // All obs counters are higher-is-worse, so an increase past either
        // bar is flagged and (under --fail-on-regression) fails the run.
        const bool reg = fail_pct >= 0.0 && d > fail_pct;
        if (d > threshold || reg) {
          std::printf("%-28s %-32s %12.4g -> %12.4g  (%+.1f%%)%s\n",
                      bench.c_str(), ma[i].first.c_str(), ma[i].second,
                      mb[i].second, d, reg ? "  REGRESSION" : "");
          if (d > threshold) ++over;
          if (reg) ++regressed;
        }
      }
    }
  }
  if (fail_pct >= 0.0) {
    std::printf(
        "runner: compared %d metric(s), %d past the %.1f%% threshold, "
        "%d regression(s) past %.1f%%\n",
        compared, over, threshold, regressed, fail_pct);
    return regressed == 0 ? 0 : 1;
  }
  std::printf(
      "runner: compared %d shape metric(s), %d past the %.1f%% threshold\n",
      compared, over, threshold);
  return over == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  cool::util::Options opt(
      "runner", "execute the bench fleet, validate/collect/diff its records");
  opt.add_flag("quick", "shrunk problem sizes (CI smoke: seconds, not hours)");
  opt.add_flag("list", "print the fleet and per-mode arguments");
  opt.add_flag("compare", "diff two record directories (args: OLD NEW)");
  opt.add_string("out", ".", "directory for the BENCH_*.json records");
  opt.add_string("only", "", "run only benches whose name contains this");
  opt.add_string("bin-dir", "", "bench binary directory (default: argv[0]'s)");
  opt.add_double("threshold", 5.0, "compare: flag shape changes beyond this %");
  opt.add_double("fail-on-regression", -1.0,
                 "compare: exit non-zero only for direction-aware regressions "
                 "beyond this % (negative disables)");
  opt.add_string("old", "", "compare: baseline record directory");
  opt.add_string("new", "", "compare: candidate record directory");

  // Allow the two positional directories of --compare before parse() sees
  // them (Options rejects non-option arguments).
  std::vector<char*> args;
  std::vector<std::string> positional;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      positional.emplace_back(argv[i]);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!opt.parse(static_cast<int>(args.size()), args.data())) return 0;

  if (opt.flag("list")) {
    for (const Bench& b : kFleet) {
      std::printf("%-28s quick: %s\n", b.name, b.quick_args);
    }
    return 0;
  }

  if (opt.flag("compare")) {
    std::string old_dir = opt.get_string("old");
    std::string new_dir = opt.get_string("new");
    if (old_dir.empty() && positional.size() >= 1) old_dir = positional[0];
    if (new_dir.empty() && positional.size() >= 2) new_dir = positional[1];
    if (old_dir.empty() || new_dir.empty()) {
      std::fprintf(stderr, "runner: --compare needs OLD and NEW directories\n");
      return 2;
    }
    return compare_runs(old_dir, new_dir, opt.get_double("threshold"),
                        opt.get_double("fail-on-regression"));
  }

  std::string bin_dir = opt.get_string("bin-dir");
  if (bin_dir.empty()) {
    bin_dir = fs::path(argv[0]).parent_path().string();
    if (bin_dir.empty()) bin_dir = ".";
  }
  return run_fleet(bin_dir, opt.get_string("out"), opt.flag("quick"),
                   opt.get_string("only"));
}
