// Figure 10 — LocusRoute: speedup of Base / Affinity / Affinity+ObjectDistr.
//
// Paper: overall speedups are modest (heavy sharing of the CostArray), but
// processor-affinity hints give significant gains — over 80% of wire tasks
// route on their region's processor — and physically distributing the
// CostArray regions helps a little more.
#include <cstdio>

#include "apps/locusroute/locusroute.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::locusroute;

namespace {

Result run_one(std::uint32_t procs, Variant v, Config cfg,
               bench::Report* prof = nullptr,
               const util::Options* opt = nullptr) {
  cfg.variant = v;
  Runtime rt = prof != nullptr && opt != nullptr
                   ? bench::make_runtime(procs, policy_for(v), *opt)
                   : bench::make_runtime(procs, policy_for(v));
  Result r = run(rt, cfg);
  if (prof != nullptr) prof->profile_from(rt);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "fig10_locusroute_speedup",
      "LocusRoute speedup vs processors (paper Fig. 10)");
  opt.add_int("wires-per-region", 96, "synthetic wires per region");
  opt.add_int("iterations", 3, "rip-up-and-reroute passes");
  opt.add_int("region-w", 64, "region width in routing cells");
  opt.add_int("height", 64, "routing grid height");
  if (!opt.parse(argc, argv)) return 0;

  Config cfg;
  cfg.wires_per_region = static_cast<int>(opt.get_int("wires-per-region"));
  cfg.iterations = static_cast<int>(opt.get_int("iterations"));
  cfg.region_w = static_cast<int>(opt.get_int("region-w"));
  cfg.height = static_cast<int>(opt.get_int("height"));
  const auto max_procs = static_cast<std::uint32_t>(opt.get_int("max-procs"));
  // Fix the circuit size to the largest machine so every P routes the same
  // synthetic circuit (the paper's region count is geographic, not per-P).
  cfg.regions = static_cast<int>(max_procs);

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf(
        "# LocusRoute (synthetic circuit: %d regions x %d wires, %d iters)\n",
        cfg.regions, cfg.wires_per_region, cfg.iterations);
  }

  const std::uint64_t serial = run_one(1, Variant::kBase, cfg).run.sim_cycles;

  util::Table t(
      {"P", "Base", "Affinity", "Affinity+ObjDistr", "region-adherence%"});
  std::uint64_t base32 = 0;
  std::uint64_t best32 = 0;
  for (std::uint32_t p : apps::proc_series(max_procs)) {
    const auto base = run_one(p, Variant::kBase, cfg);
    const auto aff = run_one(p, Variant::kAffinity, cfg);
    const auto distr = run_one(p, Variant::kAffinityDistr, cfg,
                               p == max_procs ? &rep : nullptr, &opt);
    t.row()
        .cell(static_cast<std::uint64_t>(p))
        .cell(apps::speedup(serial, base.run.sim_cycles), 2)
        .cell(apps::speedup(serial, aff.run.sim_cycles), 2)
        .cell(apps::speedup(serial, distr.run.sim_cycles), 2)
        .cell(100.0 * distr.region_adherence, 1);
    if (p == max_procs) {
      base32 = base.run.sim_cycles;
      best32 = distr.run.sim_cycles;
      rep.obs_from(distr.run);
    }
  }
  rep.table(t);
  if (rep.text()) {
    std::printf("\nshape: Affinity+ObjDistr over Base at P=%u: +%.0f%%\n",
                max_procs, bench::improvement_pct(base32, best32));
  }
  rep.shape("affinity_distr_over_base_pct",
            bench::improvement_pct(base32, best32));
  return rep.finish();
}
