// Figure 3 — Gaussian elimination: composing TASK and OBJECT affinity.
//
// The paper's running example: update tasks take OBJECT affinity on the
// destination column (memory locality; columns distributed round-robin) and
// TASK affinity on the source column (cache locality: updates sharing a
// source run back-to-back). This bench quantifies each hint's contribution.
#include <cstdio>

#include "apps/gauss/gauss.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::gauss;

namespace {

Result run_one(std::uint32_t procs, Variant v, Config cfg,
               bench::Report* prof = nullptr,
               const util::Options* opt = nullptr) {
  cfg.variant = v;
  Runtime rt = prof != nullptr && opt != nullptr
                   ? bench::make_runtime(procs, policy_for(v), *opt)
                   : bench::make_runtime(procs, policy_for(v));
  Result r = run(rt, cfg);
  if (prof != nullptr) prof->profile_from(rt);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "fig03_gauss_affinity",
      "Gaussian elimination with TASK+OBJECT affinity (paper Fig. 3)");
  opt.add_int("n", 320, "matrix dimension");
  if (!opt.parse(argc, argv)) return 0;

  Config cfg;
  cfg.n = static_cast<int>(opt.get_int("n"));
  const auto max_procs = static_cast<std::uint32_t>(opt.get_int("max-procs"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf("# Column Gaussian elimination / Cholesky, n=%d\n", cfg.n);
  }

  const std::uint64_t serial = run_one(1, Variant::kBase, cfg).run.sim_cycles;

  util::Table t({"P", "Base", "ObjectAff", "Task+ObjectAff"});
  std::uint64_t base32 = 0, both32 = 0;
  for (std::uint32_t p : apps::proc_series(max_procs)) {
    const auto base = run_one(p, Variant::kBase, cfg);
    const auto obj = run_one(p, Variant::kObjectOnly, cfg);
    const auto both = run_one(p, Variant::kTaskObject, cfg,
                              p == max_procs ? &rep : nullptr, &opt);
    t.row()
        .cell(static_cast<std::uint64_t>(p))
        .cell(apps::speedup(serial, base.run.sim_cycles), 2)
        .cell(apps::speedup(serial, obj.run.sim_cycles), 2)
        .cell(apps::speedup(serial, both.run.sim_cycles), 2);
    if (p == max_procs) {
      base32 = base.run.sim_cycles;
      both32 = both.run.sim_cycles;
      rep.obs_from(both.run);
    }
  }
  rep.table(t);

  // Cache behaviour at full machine size: TASK affinity's extra L1 reuse.
  const auto procs = max_procs;
  if (rep.text()) std::printf("\n# cache behaviour at P=%u\n", procs);
  auto mt = bench::miss_table();
  for (Variant v :
       {Variant::kBase, Variant::kObjectOnly, Variant::kTaskObject}) {
    const Result r = run_one(procs, v, cfg);
    bench::miss_row(mt, variant_name(v), r.run);
  }
  rep.table(mt);
  if (rep.text()) {
    std::printf("\nshape: Task+Object over Base at P=%u: +%.0f%%\n", max_procs,
                bench::improvement_pct(base32, both32));
  }
  rep.shape("task_object_over_base_pct",
            bench::improvement_pct(base32, both32));
  return rep.finish();
}
