// Table 1 — the affinity-hint taxonomy, measured.
//
// The paper's Table 1 summarises the hints (default, simple affinity, TASK,
// OBJECT, PROCESSOR, plus migrate/home object distribution). This bench runs
// one synthetic workload — M objects distributed round-robin, K tasks per
// object, spawned interleaved so consecutive arrivals belong to different
// affinity sets — under each hint, and reports the scheduling effect each
// hint exists to produce: cache reuse (L1 hits), memory locality (local miss
// service), and placement stability (tasks not stolen).
#include <cstdio>

#include "apps/synth/taskmix.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::taskmix;

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "tab01_affinity_hints", "Affinity-hint taxonomy microbench (Table 1)");
  opt.add_int("objects", 128, "number of shared objects");
  opt.add_int("obj-kb", 32, "object size in KiB");
  opt.add_int("tasks-per-obj", 8, "tasks repeatedly touching each object");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  Config cfg;
  cfg.objects = static_cast<int>(opt.get_int("objects"));
  cfg.obj_kb = static_cast<std::size_t>(opt.get_int("obj-kb"));
  cfg.tasks_per_obj = static_cast<int>(opt.get_int("tasks-per-obj"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf(
        "# %d objects x %zu KiB, %d tasks per object, interleaved spawn, P=%u\n",
        cfg.objects, cfg.obj_kb, cfg.tasks_per_obj, procs);
  }

  util::Table t({"hint", "cycles(K)", "L1-hit%", "local-miss%", "stolen%",
                 "steals"});
  for (Hint h : {Hint::kNone, Hint::kSimple, Hint::kTask, Hint::kObject,
                 Hint::kTaskObject, Hint::kProcessor}) {
    Config c = cfg;
    c.hint = h;
    Runtime rt = h == Hint::kTaskObject
                     ? bench::make_runtime(procs, sched::Policy{}, opt)
                     : bench::make_runtime(procs, sched::Policy{});
    const Result r = run(rt, c);
    const auto& ss = r.run.sched;
    t.row()
        .cell(hint_name(h))
        .cell(static_cast<double>(r.run.sim_cycles) / 1e3, 1)
        .cell(100.0 * r.l1_hit_rate, 1)
        .cell(100.0 * apps::local_fraction(r.run.mem), 1)
        .cell(100.0 * static_cast<double>(ss.tasks_stolen) /
                  static_cast<double>(ss.spawned ? ss.spawned : 1),
              1)
        .cell(ss.steals);
    if (h == Hint::kTaskObject) {
      rep.obs_from(r.run);
      rep.profile_from(rt);
    }
  }
  rep.table(t);

  // Object distribution primitives (Table 1's migrate/home rows).
  {
    Runtime rt = bench::make_runtime(procs, sched::Policy{});
    const std::size_t bytes = cfg.obj_kb * 1024;
    double* obj = rt.alloc_array<double>(bytes / sizeof(double), 0);
    std::uint64_t migrate_cost = 0;
    const topo::ProcId home_before = rt.home(obj);
    rt.run([](double* o, std::size_t n, std::uint64_t* cost) -> TaskFn {
      auto& c = co_await self();
      *cost = c.migrate(o, 5, n);
    }(obj, bytes, &migrate_cost));
    if (rep.text()) {
      std::printf(
          "\nmigrate(obj, 5): %llu cycles (%zu pages); home(obj): %u -> %u\n",
          static_cast<unsigned long long>(migrate_cost), (bytes + 4095) / 4096,
          static_cast<unsigned>(home_before),
          static_cast<unsigned>(rt.home(obj)));
    }
    rep.shape("migrate_cycles", static_cast<double>(migrate_cost));
    rep.shape("home_after_migrate", static_cast<double>(rt.home(obj)));
  }
  return rep.finish();
}
