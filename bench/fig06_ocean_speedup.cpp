// Figure 6 — Ocean: speedup vs. processor count.
//
// Paper: the COOL version (explicit region distribution + default affinity)
// scales well; a locality-blind Base schedule is limited by remote references
// to grids concentrated in one memory. (An ANL comparison was not available
// to the authors either; they expected similar performance.)
#include <cstdio>

#include "apps/ocean/ocean.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::ocean;

namespace {

Result run_one(std::uint32_t procs, Variant v, const Config& base_cfg,
               bench::Report* prof = nullptr,
               const util::Options* opt = nullptr) {
  Config cfg = base_cfg;
  cfg.variant = v;
  Runtime rt = prof != nullptr && opt != nullptr
                   ? bench::make_runtime(procs, policy_for(v), *opt)
                   : bench::make_runtime(procs, policy_for(v));
  Result r = run(rt, cfg);
  if (prof != nullptr) prof->profile_from(rt);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "fig06_ocean_speedup", "Ocean speedup vs processors (paper Fig. 6)");
  opt.add_int("n", 256, "grid dimension");
  opt.add_int("grids", 8, "number of state grids");
  opt.add_int("steps", 4, "timesteps");
  opt.add_int("mg-levels", 0, "multigrid V-cycle depth per step (0 = off)");
  if (!opt.parse(argc, argv)) return 0;

  Config cfg;
  cfg.n = static_cast<int>(opt.get_int("n"));
  cfg.grids = static_cast<int>(opt.get_int("grids"));
  cfg.steps = static_cast<int>(opt.get_int("steps"));
  cfg.multigrid_levels = static_cast<int>(opt.get_int("mg-levels"));

  bench::Report rep(opt);
  const auto max_procs = static_cast<std::uint32_t>(opt.get_int("max-procs"));
  if (rep.text()) {
    std::printf("# Ocean (grid %dx%d, %d grids, %d steps) on simulated DASH\n",
                cfg.n, cfg.n, cfg.grids, cfg.steps);
  }

  // Serial baseline: the Base version on one processor.
  const std::uint64_t serial = run_one(1, Variant::kBase, cfg).run.sim_cycles;

  util::Table t({"P", "Base", "Distr", "Distr+Aff"});
  std::uint64_t base32 = 0;
  std::uint64_t cool32 = 0;
  for (std::uint32_t p : apps::proc_series(max_procs)) {
    const auto base = run_one(p, Variant::kBase, cfg);
    const auto distr = run_one(p, Variant::kDistrNoAff, cfg);
    const auto aff =
        run_one(p, Variant::kDistr, cfg, p == max_procs ? &rep : nullptr, &opt);
    t.row()
        .cell(static_cast<std::uint64_t>(p))
        .cell(apps::speedup(serial, base.run.sim_cycles), 2)
        .cell(apps::speedup(serial, distr.run.sim_cycles), 2)
        .cell(apps::speedup(serial, aff.run.sim_cycles), 2);
    if (p == max_procs) {
      base32 = base.run.sim_cycles;
      cool32 = aff.run.sim_cycles;
      rep.obs_from(aff.run);
    }
  }
  rep.table(t);
  if (rep.text()) {
    std::printf("\nshape: Distr+Aff over Base at P=%u: +%.0f%%\n", max_procs,
                bench::improvement_pct(base32, cool32));
  }
  rep.shape("distr_aff_over_base_pct", bench::improvement_pct(base32, cool32));
  return rep.finish();
}
