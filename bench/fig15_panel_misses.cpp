// Figure 15 — Panel Cholesky: cache-miss behaviour of the optimisations.
//
// Paper: distribution alone leaves the miss count unchanged (it only spreads
// memory bandwidth); affinity scheduling and cluster scheduling significantly
// reduce misses, and collocated tasks service their misses locally.
#include <cstdio>

#include "apps/cholesky/panel.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::cholesky;

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "fig15_panel_misses",
      "Panel Cholesky cache misses by version (paper Fig. 15)");
  opt.add_int("panels", 192, "number of panels");
  opt.add_int("row-scale", 3, "panel row footprint scale");
  if (!opt.parse(argc, argv)) return 0;

  PanelConfig cfg;
  cfg.n_panels = static_cast<int>(opt.get_int("panels"));
  cfg.row_scale = static_cast<int>(opt.get_int("row-scale"));
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf("# Panel Cholesky cache behaviour at P=%u\n", procs);
  }
  auto t = bench::miss_table();
  apps::RunResult base_r, distr_r, aff_r;
  for (PanelVariant v :
       {PanelVariant::kBase, PanelVariant::kDistr, PanelVariant::kDistrAff,
        PanelVariant::kDistrAffCluster}) {
    PanelConfig c = cfg;
    c.variant = v;
    Runtime rt = v == PanelVariant::kDistrAff
                     ? bench::make_runtime(procs, panel_policy_for(v, procs), opt)
                     : bench::make_runtime(procs, panel_policy_for(v, procs));
    const PanelResult r = run_panel(rt, c);
    bench::miss_row(t, panel_variant_name(v), r.run);
    if (v == PanelVariant::kBase) base_r = r.run;
    if (v == PanelVariant::kDistr) distr_r = r.run;
    if (v == PanelVariant::kDistrAff) {
      aff_r = r.run;
      rep.profile_from(rt);
    }
  }
  rep.table(t);
  const double distr_over_base =
      static_cast<double>(distr_r.mem.misses()) /
      static_cast<double>(base_r.mem.misses() ? base_r.mem.misses() : 1);
  const double distr_over_aff =
      static_cast<double>(distr_r.mem.misses()) /
      static_cast<double>(aff_r.mem.misses() ? aff_r.mem.misses() : 1);
  if (rep.text()) {
    std::printf(
        "\nshape: misses Base->Distr %.2fx (paper: ~unchanged); "
        "Distr->Distr+Aff %.2fx fewer; local service %.0f%% -> %.0f%%\n",
        distr_over_base, distr_over_aff,
        100.0 * apps::local_fraction(distr_r.mem),
        100.0 * apps::local_fraction(aff_r.mem));
  }
  rep.shape("distr_over_base_miss_ratio", distr_over_base);
  rep.shape("distr_over_aff_miss_ratio", distr_over_aff);
  rep.shape("distr_local_pct", 100.0 * apps::local_fraction(distr_r.mem));
  rep.shape("aff_local_pct", 100.0 * apps::local_fraction(aff_r.mem));
  rep.obs_from(aff_r);
  return rep.finish();
}
