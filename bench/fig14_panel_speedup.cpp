// Figure 14 — Panel Cholesky: speedup of Base / Distr / Distr+Aff /
// Distr+Aff+ClusterStealing.
//
// Paper: distributing the panels alone helps (memory bandwidth spreads);
// affinity scheduling collocates updates with the destination panel for the
// big win; restricting stealing to the cluster keeps stolen tasks referencing
// cluster-local memory and improves things further. The final COOL code is
// within 10% of the hand-coded ANL version.
#include <cstdio>

#include "apps/cholesky/panel.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::cholesky;

namespace {

PanelResult run_one(std::uint32_t procs, PanelVariant v, PanelConfig cfg,
                    bench::Report* prof = nullptr,
                    const util::Options* opt = nullptr) {
  cfg.variant = v;
  Runtime rt = prof != nullptr && opt != nullptr
                   ? bench::make_runtime(procs, panel_policy_for(v, procs), *opt)
                   : bench::make_runtime(procs, panel_policy_for(v, procs));
  PanelResult r = run_panel(rt, cfg);
  if (prof != nullptr) prof->profile_from(rt);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "fig14_panel_speedup",
      "Panel Cholesky speedup vs processors (paper Fig. 14)");
  opt.add_int("panels", 192, "number of panels");
  opt.add_int("row-scale", 3, "panel row footprint scale");
  if (!opt.parse(argc, argv)) return 0;

  PanelConfig cfg;
  cfg.n_panels = static_cast<int>(opt.get_int("panels"));
  cfg.row_scale = static_cast<int>(opt.get_int("row-scale"));
  const auto max_procs = static_cast<std::uint32_t>(opt.get_int("max-procs"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf("# Panel Cholesky (synthetic sparse structure, %d panels)\n",
                cfg.n_panels);
  }

  const std::uint64_t serial =
      run_one(1, PanelVariant::kBase, cfg).run.sim_cycles;

  util::Table t({"P", "Base", "Distr", "Distr+Aff", "Distr+Aff+Cluster"});
  std::uint64_t base32 = 0;
  std::uint64_t best32 = 0;
  for (std::uint32_t p : apps::proc_series(max_procs)) {
    const auto base = run_one(p, PanelVariant::kBase, cfg);
    const auto distr = run_one(p, PanelVariant::kDistr, cfg);
    const auto aff = run_one(p, PanelVariant::kDistrAff, cfg);
    const auto clus = run_one(p, PanelVariant::kDistrAffCluster, cfg,
                              p == max_procs ? &rep : nullptr, &opt);
    t.row()
        .cell(static_cast<std::uint64_t>(p))
        .cell(apps::speedup(serial, base.run.sim_cycles), 2)
        .cell(apps::speedup(serial, distr.run.sim_cycles), 2)
        .cell(apps::speedup(serial, aff.run.sim_cycles), 2)
        .cell(apps::speedup(serial, clus.run.sim_cycles), 2);
    if (p == max_procs) {
      base32 = base.run.sim_cycles;
      best32 = std::min(aff.run.sim_cycles, clus.run.sim_cycles);
      rep.obs_from(clus.run);
    }
  }
  rep.table(t);
  if (rep.text()) {
    std::printf("\nshape: best affinity version over Base at P=%u: +%.0f%%\n",
                max_procs, bench::improvement_pct(base32, best32));
  }
  rep.shape("best_affinity_over_base_pct",
            bench::improvement_pct(base32, best32));
  return rep.finish();
}
