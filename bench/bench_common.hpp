// Shared helpers for the figure/table benchmark binaries.
//
// Every bench prints (a) the paper series it reproduces, as a fixed-width
// table, and (b) a short "shape" summary (who wins, by how much) that
// EXPERIMENTS.md compares against the paper's reported results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common/harness.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cool.hpp"

namespace cool::bench {

/// Build a simulated-DASH runtime with `procs` processors.
inline Runtime make_runtime(std::uint32_t procs, const sched::Policy& policy) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy;
  return Runtime(sc);
}

/// Standard option set for the figure benches.
inline util::Options standard_options(const std::string& name,
                                      const std::string& desc) {
  util::Options opt(name, desc);
  opt.add_int("max-procs", 32, "largest processor count in the sweep");
  opt.add_int("procs", 32, "processor count for fixed-P experiments");
  opt.add_flag("csv", "emit tables as CSV instead of aligned text");
  return opt;
}

/// Print a result table honouring the --csv flag.
inline void print_table(const util::Table& t, const util::Options& opt) {
  const std::string s = opt.flag("csv") ? t.to_csv() : t.to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

/// One row of a cache-miss comparison table (Figures 7, 11, 15).
inline void miss_row(util::Table& t, const std::string& label,
                     const apps::RunResult& r) {
  t.row()
      .cell(label)
      .cell(static_cast<double>(r.mem.accesses()) / 1e6, 2)
      .cell(static_cast<double>(r.mem.misses()) / 1e3, 1)
      .cell(apps::miss_rate(r.mem), 2)
      .cell(100.0 * apps::local_fraction(r.mem), 1)
      .cell(100.0 * (1.0 - apps::local_fraction(r.mem)), 1)
      .cell(r.mem.invals_sent)
      .cell(static_cast<double>(r.mem.latency_cycles) / 1e6, 1);
}

inline util::Table miss_table() {
  return util::Table({"version", "accesses(M)", "misses(K)", "miss/1000",
                      "local%", "remote%", "invals", "stall(Mcyc)"});
}

/// Percentage improvement of `better` over `worse` completion time.
inline double improvement_pct(std::uint64_t worse_cycles,
                              std::uint64_t better_cycles) {
  if (better_cycles == 0) return 0.0;
  return 100.0 * (static_cast<double>(worse_cycles) /
                      static_cast<double>(better_cycles) -
                  1.0);
}

}  // namespace cool::bench
