// Shared helpers for the figure/table benchmark binaries.
//
// Every bench prints (a) the paper series it reproduces, as a fixed-width
// table, and (b) a short "shape" summary (who wins, by how much) that
// EXPERIMENTS.md compares against the paper's reported results. With --json
// the same series/shape data is emitted instead as a schema-versioned
// cool-bench/1 record (obs/bench_json.hpp) that bench/runner collects and
// diffs; route both paths through a bench::Report so they cannot drift.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "adaptive/policy.hpp"
#include "apps/common/harness.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cool.hpp"
#include "core/sim_engine.hpp"
#include "obs/advisor.hpp"
#include "obs/bench_json.hpp"
#include "obs/profiler.hpp"

namespace cool::bench {

/// Compiled-in sanitizer name (set by CMake when COOL_SANITIZE is active);
/// recorded in every JSON record so runner --compare can refuse to treat
/// sanitized numbers as performance data.
#ifdef COOL_SANITIZE_NAME
inline constexpr const char* kSanitizerName = COOL_SANITIZE_NAME;
#else
inline constexpr const char* kSanitizerName = "none";
#endif

/// Build a simulated-DASH runtime with `procs` processors.
inline Runtime make_runtime(std::uint32_t procs, const sched::Policy& policy) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy;
  return Runtime(sc);
}

/// As above, honouring the bench's --profile, --race-check and --adapt
/// requests. Benches build their headline (largest-P, most-interesting-
/// variant) runtime through this so the flags work on every figure for free.
inline Runtime make_runtime(std::uint32_t procs, const sched::Policy& policy,
                            const util::Options& opt) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = policy;
  sc.profile = opt.given("profile");
  sc.race_check = opt.flag("race-check");
  sc.adapt = opt.given("adapt");
  const std::string& pol_path = opt.get_string("adapt");
  if (!pol_path.empty()) {
    sc.adapt_policy = adaptive::load_adapt_policy(pol_path);
  }
  const std::int64_t latency_target = opt.get_int("latency-target");
  if (latency_target > 0) {
    // --latency-target implies --adapt: the objective lives in the adaptive
    // engine. An explicit --adapt=policy.json still wins for every other
    // knob; we only pin the target itself.
    sc.adapt = true;
    sc.adapt_policy.latency_target_cycles =
        static_cast<std::uint64_t>(latency_target);
  }
  return Runtime(sc);
}

/// Standard option set for the figure benches.
inline util::Options standard_options(const std::string& name,
                                      const std::string& desc) {
  util::Options opt(name, desc);
  opt.add_int("max-procs", 32, "largest processor count in the sweep");
  opt.add_int("procs", 32, "processor count for fixed-P experiments");
  opt.add_flag("csv", "emit tables as CSV instead of aligned text");
  opt.add_flag("json", "emit a cool-bench/1 JSON record instead of text");
  opt.add_string("json-out", "",
                 "write the JSON record to this file or directory "
                 "(default: stdout; implies --json)");
  opt.add_optional_string(
      "profile",
      "attach the locality profiler to the headline run; text mode appends "
      "the per-object/per-set report, json mode embeds a 'profile' block. "
      "--profile=<path> additionally writes the profile JSON there");
  opt.add_flag("race-check",
               "attach the happens-before race detector to the headline run; "
               "text mode appends the race report, json mode records the "
               "count (passive: simulated cycles are unchanged)");
  opt.add_optional_string(
      "adapt",
      "attach the online adaptive locality runtime to the headline run "
      "(sim only; unlike --profile it charges simulated cycles). "
      "--adapt=<policy.json> overrides the adaptation knobs");
  opt.add_int("latency-target", 0,
              "p99 request-latency target in simulated cycles for the "
              "adaptive runtime's latency objective (implies --adapt; 0 = "
              "objective off; only request-serving benches feed the sensor)");
  return opt;
}

/// Print a result table honouring the --csv flag.
inline void print_table(const util::Table& t, const util::Options& opt) {
  const std::string s = opt.flag("csv") ? t.to_csv() : t.to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

/// One row of a cache-miss comparison table (Figures 7, 11, 15).
inline void miss_row(util::Table& t, const std::string& label,
                     const apps::RunResult& r) {
  t.row()
      .cell(label)
      .cell(static_cast<double>(r.mem.accesses()) / 1e6, 2)
      .cell(static_cast<double>(r.mem.misses()) / 1e3, 1)
      .cell(apps::miss_rate(r.mem), 2)
      .cell(100.0 * apps::local_fraction(r.mem), 1)
      .cell(100.0 * (1.0 - apps::local_fraction(r.mem)), 1)
      .cell(r.mem.invals_sent)
      .cell(static_cast<double>(r.mem.latency_cycles) / 1e6, 1);
}

inline util::Table miss_table() {
  return util::Table({"version", "accesses(M)", "misses(K)", "miss/1000",
                      "local%", "remote%", "invals", "stall(Mcyc)"});
}

/// Percentage improvement of `better` over `worse` completion time.
inline double improvement_pct(std::uint64_t worse_cycles,
                              std::uint64_t better_cycles) {
  if (better_cycles == 0) return 0.0;
  return 100.0 * (static_cast<double>(worse_cycles) /
                      static_cast<double>(better_cycles) -
                  1.0);
}

/// One output channel for a bench binary: text tables by default, the
/// cool-bench/1 JSON record under --json. Usage pattern:
///
///   bench::Report rep(opt);
///   if (rep.text()) std::printf("# header ...\n");
///   ... build table t ...
///   rep.table(t);                         // print or record
///   if (rep.text()) std::printf("\nshape: ...\n", pct);
///   rep.shape("improvement_pct", pct);    // recorded in json mode
///   rep.obs_from(headline_result);        // optional metrics snapshot
///   return rep.finish();                  // emits the record in json mode
class Report {
 public:
  explicit Report(const util::Options& opt)
      : rec_(opt.program()),
        opt_(&opt),
        json_(opt.flag("json") || !opt.get_string("json-out").empty()),
        wall_start_(std::chrono::steady_clock::now()),
        sim_cycles_start_(cool::total_sim_cycles()) {
    if (json_) {
      rec_.set_config(opt);
      rec_.set_config_entry("build.sanitizer", kSanitizerName);
    }
  }

  /// True when the bench should produce its human-readable output.
  [[nodiscard]] bool text() const noexcept { return !json_; }

  /// Print the table (text mode) or append it as series rows (json mode).
  void table(const util::Table& t) {
    if (json_) {
      rec_.add_series(t);
    } else {
      print_table(t, *opt_);
    }
  }

  /// Record one summary metric (the JSON twin of the "shape:" text line).
  void shape(const std::string& key, double value) {
    if (json_) rec_.add_shape(key, value);
  }

  /// Attach the metrics snapshot of the headline run.
  void obs_from(const apps::RunResult& r) {
    if (json_) rec_.set_obs(r.obs);
  }
  void set_obs(const cool::obs::Snapshot& snap) {
    if (json_) rec_.set_obs(snap);
  }

  /// Attach the locality profile of `rt`'s finished run: in text mode the
  /// per-object/per-set report plus the advisor's findings are printed after
  /// the bench output; in json mode they become the record's "profile" block.
  /// With --profile=<path>, the profile JSON is additionally written there.
  /// No-op unless the runtime was built with profiling on — so benches call
  /// this unconditionally on their headline runtime and `--profile` stays
  /// strictly opt-in (output is untouched without it).
  /// Attach the race-check verdict of `rt`'s finished run: text mode prints
  /// the report, json mode records the distinct-race count as a shape
  /// metric. No-op unless the runtime was built with race_check on, so the
  /// default output is byte-identical without the flag.
  void race_from(Runtime& rt) {
    const analysis::RaceDetector* rd = rt.race_detector();
    if (rd == nullptr) return;
    if (json_) {
      rec_.add_shape("races", static_cast<double>(rd->total()));
    } else {
      std::fputc('\n', stdout);
      const std::string rep = rd->report();
      std::fwrite(rep.data(), 1, rep.size(), stdout);
    }
  }

  /// Attach the adaptation decision log of `rt`'s finished run: text mode
  /// prints one line per decision, json mode embeds the "adaptation" array.
  /// No-op unless the runtime was built with adapt on.
  void adaptation_from(Runtime& rt) {
    const adaptive::AdaptiveEngine* ae = rt.adaptive_engine();
    if (ae == nullptr) return;
    if (json_) {
      rec_.set_adaptation(ae->log_json());
      rec_.add_shape("adaptation_decisions",
                     static_cast<double>(ae->log().size()));
    } else {
      std::printf("\n== adaptation log (%zu decisions, %llu epochs) ==\n",
                  ae->log().size(),
                  static_cast<unsigned long long>(ae->epochs()));
      for (const adaptive::Decision& d : ae->log()) {
        std::printf("  epoch %llu @%llu [%s] %s: %s (%llu cycles)\n",
                    static_cast<unsigned long long>(d.epoch),
                    static_cast<unsigned long long>(d.cycle),
                    cool::obs::advice_kind_name(d.rule), d.subject.c_str(),
                    d.action.c_str(),
                    static_cast<unsigned long long>(d.cost_cycles));
      }
    }
  }

  void profile_from(Runtime& rt) {
    race_from(rt);
    adaptation_from(rt);
    // --adapt constructs the profiler as its sensor; profile output stays
    // strictly opt-in behind --profile itself.
    if (rt.profiler() == nullptr || !opt_->given("profile")) return;
    const cool::obs::ProfileSnapshot p = rt.profile_snapshot();
    const std::vector<cool::obs::Advice> advice =
        cool::obs::advise(p, rt.obs_snapshot());
    if (json_) {
      rec_.set_profile(p.to_json(), cool::obs::advice_json(advice));
    } else {
      std::fputc('\n', stdout);
      const std::string rep = cool::obs::profile_report(p);
      std::fwrite(rep.data(), 1, rep.size(), stdout);
      std::fputc('\n', stdout);
      const std::string adv = cool::obs::advice_report(advice);
      std::fwrite(adv.data(), 1, adv.size(), stdout);
    }
    const std::string& path = opt_->get_string("profile");
    if (!path.empty()) {
      cool::obs::json::Writer w;
      w.begin_object();
      w.key("snapshot").raw(p.to_json());
      w.key("advice").raw(cool::obs::advice_json(advice));
      w.end_object();
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "%s: failed to write profile to %s\n",
                     rec_.name().c_str(), path.c_str());
      } else {
        const std::string& text = w.str();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      }
    }
  }

  /// Escape hatch for benches with extra record content.
  [[nodiscard]] cool::obs::BenchRecord& record() noexcept { return rec_; }

  /// In json mode, emit the record: to --json-out (file or directory) when
  /// set, else to stdout. Returns the process exit code.
  int finish() {
    if (!json_) return 0;
    // Simulator speed: cycles this process simulated while the Report was
    // live, over the wall time it took. Informational only (runner never
    // treats it as a regression) — it tracks the simulator's own speed.
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start_)
                              .count();
    const std::uint64_t cycles = cool::total_sim_cycles() - sim_cycles_start_;
    if (wall_s > 0.0 && cycles > 0) {
      rec_.set_sim_rate(static_cast<double>(cycles) / wall_s);
    }
    const std::string& out = opt_->get_string("json-out");
    if (out.empty()) {
      const std::string j = rec_.to_json();
      std::fwrite(j.data(), 1, j.size(), stdout);
      std::fputc('\n', stdout);
      return 0;
    }
    if (!rec_.write_to(out)) {
      std::fprintf(stderr, "%s: failed to write record to %s\n",
                   rec_.name().c_str(), out.c_str());
      return 1;
    }
    return 0;
  }

 private:
  cool::obs::BenchRecord rec_;
  const util::Options* opt_;
  bool json_;
  std::chrono::steady_clock::time_point wall_start_;
  std::uint64_t sim_cycles_start_;
};

}  // namespace cool::bench
