// Ablation — multi-object affinity and prefetching (paper §8).
//
// "There are obvious better heuristics that would determine the relative
// importance of objects based on their size and schedule the task on the
// processor that has the most objects in its local memory, while prefetching
// the remaining objects. We plan to study such tradeoffs in the future."
//
// This bench studies them: tasks read a small and a large object homed on
// different processors, under (a) the paper's first-object placement, (b)
// size-weighted placement, and (c) size-weighted placement plus dispatch-time
// prefetch of the remaining objects.
#include <cstdio>

#include "apps/synth/multiobj.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::multiobj;

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "abl_multi_object", "Multi-object affinity heuristics (paper §8)");
  opt.add_int("pairs", 64, "object pairs");
  opt.add_int("small-kb", 8, "first-listed object size (KiB)");
  opt.add_int("large-kb", 32, "second-listed object size (KiB)");
  opt.add_int("tasks-per-pair", 4, "tasks touching each pair");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  Config cfg;
  cfg.pairs = static_cast<int>(opt.get_int("pairs"));
  cfg.small_kb = static_cast<std::size_t>(opt.get_int("small-kb"));
  cfg.large_kb = static_cast<std::size_t>(opt.get_int("large-kb"));
  cfg.tasks_per_pair = static_cast<int>(opt.get_int("tasks-per-pair"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf(
        "# %d pairs (%zu KiB + %zu KiB on different homes), %d tasks/pair, "
        "P=%u\n",
        cfg.pairs, cfg.small_kb, cfg.large_kb, cfg.tasks_per_pair, procs);
  }

  util::Table t({"strategy", "cycles(K)", "local-miss%", "stall(Kcyc)",
                 "prefetched-lines"});
  for (Strategy s : {Strategy::kFirstObject, Strategy::kWeighted,
                     Strategy::kWeightedPrefetch}) {
    Config c = cfg;
    c.strategy = s;
    Runtime rt = bench::make_runtime(procs, policy_for(s));
    const Result r = run(rt, c);
    t.row()
        .cell(strategy_name(s))
        .cell(static_cast<double>(r.run.sim_cycles) / 1e3, 1)
        .cell(100.0 * apps::local_fraction(r.run.mem), 1)
        .cell(static_cast<double>(r.run.mem.latency_cycles) / 1e3, 1)
        .cell(r.run.mem.prefetches);
  }
  rep.table(t);
  return rep.finish();
}
