// Ablation — task-affinity queue array size (paper §5).
//
// "Collisions of different task-affinity sets on the same queue can be
// minimized by choosing a suitably large array size." The TaskMix workload
// interleaves spawns across many task-affinity sets; with a large per-server
// array each set gets its own queue and is drained back-to-back (cache
// reuse), while a 1-entry array collapses everything into FIFO interleaving.
// The grouped/interleaved extremes are bracketed by the `spawn grouped` row
// (object-major spawn order: the best case regardless of array size).
#include <cstdio>

#include "apps/synth/taskmix.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::taskmix;

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "abl_queue_array", "Task-affinity queue array-size ablation (paper §5)");
  opt.add_int("objects", 128, "number of shared objects");
  opt.add_int("obj-kb", 32, "object size in KiB");
  opt.add_int("tasks-per-obj", 8, "tasks repeatedly touching each object");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  Config cfg;
  cfg.objects = static_cast<int>(opt.get_int("objects"));
  cfg.obj_kb = static_cast<std::size_t>(opt.get_int("obj-kb"));
  cfg.tasks_per_obj = static_cast<int>(opt.get_int("tasks-per-obj"));
  cfg.hint = Hint::kTaskObject;

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf(
        "# TaskMix: %d objects x %zu KiB, %d tasks/object, TASK+OBJECT, P=%u\n",
        cfg.objects, cfg.obj_kb, cfg.tasks_per_obj, procs);
  }

  util::Table t({"array-size", "cycles(K)", "L1-hit%", "misses(K)"});
  auto add_row = [&](const std::string& label, const Config& c,
                     std::size_t array_size) {
    sched::Policy pol;
    pol.affinity_array_size = array_size;
    Runtime rt = bench::make_runtime(procs, pol);
    const Result r = run(rt, c);
    t.row()
        .cell(label)
        .cell(static_cast<double>(r.run.sim_cycles) / 1e3, 1)
        .cell(100.0 * r.l1_hit_rate, 1)
        .cell(static_cast<double>(r.run.mem.misses()) / 1e3, 1);
  };
  for (std::size_t size : {1ul, 2ul, 4ul, 16ul, 64ul, 256ul}) {
    add_row(std::to_string(size), cfg, size);
  }
  Config grouped = cfg;
  grouped.interleave = false;
  add_row("(spawn grouped)", grouped, 64);
  rep.table(t);
  return rep.finish();
}
