// Ablation — balancer policies (hierarchical sched::Balancer, PR 6).
//
// Gauss and ocean in their undistributed configurations (every column/grid
// homed on processor 0's memory — the degenerate layout the paper's
// distribute() step exists to avoid) under the three balancer policies:
//
//   stealing   the default: idle processors probe victims try-lock, exactly
//              the flat scan the scheduler always had. Work spreads machine-
//              wide, so most of it lands in remote clusters.
//   average    periodic queue-length equalisation: an idle processor's
//              balancer drains over-average queues toward it in one grab
//              (kMoveTasks) instead of one task per probe.
//   reserve    hotness-directed placement: the profiler's per-object heat
//              names the cluster homing the hot pages; the balancer pre-
//              places OBJECT/TASK-affinity work on that cluster's least-
//              loaded member and reserves it against cross-cluster theft.
//
// The shape metrics record the locality story the paper's §6.3 cluster
// experiment tells: reserve keeps the misses in the data's home cluster
// (local_frac up vs flat stealing) because work never leaves it.
#include <cstdio>

#include "apps/gauss/gauss.hpp"
#include "apps/ocean/ocean.hpp"
#include "bench_common.hpp"

using namespace cool;

namespace {

/// Runtime for one ablation row. The reserve rows attach the profiler (its
/// heat attribution is the balancer's sensor; validate_policy requires it);
/// profiling is passive, so simulated cycles stay comparable across rows.
Runtime make_row_runtime(std::uint32_t procs, const sched::Policy& pol,
                         const util::Options* headline = nullptr) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = pol;
  sc.profile = pol.balancer == sched::BalancerKind::kReserve;
  // The headline row (ocean under reserve) honours --race-check so
  // cool-check covers the reserve/move paths like any figure bench.
  if (headline != nullptr) sc.race_check = headline->flag("race-check");
  return Runtime(sc);
}

sched::Policy with_balancer(sched::Policy base, sched::BalancerKind kind) {
  base.balancer = kind;
  if (kind == sched::BalancerKind::kReserve) {
    // Refresh the hotness cache often enough that the heat observed in the
    // first grid sweep / first columns steers the rest of a small run.
    base.reserve_refresh_tasks = 16;
  }
  return base;
}

void add_row(util::Table& t, const char* app, const char* policy,
             const apps::RunResult& r) {
  t.row()
      .cell(app)
      .cell(policy)
      .cell(apps::mcycles(r.sim_cycles), 2)
      .cell(100.0 * apps::local_fraction(r.mem), 1)
      .cell(r.sched.steals)
      .cell(r.sched.balance_moves)
      .cell(r.sched.reserve_hits);
}

constexpr sched::BalancerKind kKinds[] = {sched::BalancerKind::kStealing,
                                          sched::BalancerKind::kAverage,
                                          sched::BalancerKind::kReserve};

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "abl_balancer",
      "Balancer-policy ablation (stealing vs average vs reserve)");
  opt.add_int("n", 96, "gauss matrix dimension");
  opt.add_int("ocean-n", 64, "ocean grid dimension");
  opt.add_int("grids", 4, "ocean state grids");
  opt.add_int("steps", 4, "ocean timesteps");
  opt.add_flag("quick", "smaller problems for smoke testing");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  const bool quick = opt.flag("quick");

  apps::gauss::Config gcfg;
  gcfg.n = quick ? 48 : static_cast<int>(opt.get_int("n"));
  gcfg.variant = apps::gauss::Variant::kObjectOnly;
  gcfg.distribute = false;  // All columns on processor 0's memory.
  apps::ocean::Config ocfg;
  ocfg.n = static_cast<int>(opt.get_int("ocean-n"));
  ocfg.grids = quick ? 2 : static_cast<int>(opt.get_int("grids"));
  ocfg.steps = quick ? 2 : static_cast<int>(opt.get_int("steps"));
  ocfg.variant = apps::ocean::Variant::kAffOnly;  // No distribute() step.

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf(
        "# Balancer ablation, P=%u (gauss n=%d undistributed, ocean n=%d "
        "undistributed)\n",
        procs, gcfg.n, ocfg.n);
  }
  util::Table t({"app", "balancer", "cycles(M)", "local-miss%", "steals",
                 "moved", "reserved"});

  // Both apps run with OBJECT tasks stealable: the undistributed layouts
  // pile every task on processor 0, and the default steal-exemption would
  // leave the stealing/average rows serialised there — the ablation compares
  // *how* work spreads, so it must be allowed to spread in every row.
  std::uint64_t o_cycles[3] = {0, 0, 0};
  double o_local[3] = {0, 0, 0};
  std::uint64_t o_reserved = 0;
  for (int k = 0; k < 3; ++k) {
    sched::Policy pol = with_balancer(
        apps::ocean::policy_for(ocfg.variant), kKinds[k]);
    pol.steal_object_tasks = true;
    const bool headline = kKinds[k] == sched::BalancerKind::kReserve;
    Runtime rt = make_row_runtime(procs, pol, headline ? &opt : nullptr);
    const auto r = apps::ocean::run(rt, ocfg);
    o_cycles[k] = r.run.sim_cycles;
    o_local[k] = apps::local_fraction(r.run.mem);
    add_row(t, "ocean", sched::balancer_kind_name(kKinds[k]), r.run);
    if (headline) {
      o_reserved = r.run.sched.reserve_hits;
      rep.obs_from(r.run);  // Carries the sched.balance.* counters.
      rep.race_from(rt);    // --race-check verdict for the reserve path.
    }
  }

  std::uint64_t g_cycles[3] = {0, 0, 0};
  double g_local[3] = {0, 0, 0};
  std::uint64_t g_reserved = 0;
  for (int k = 0; k < 3; ++k) {
    sched::Policy pol = with_balancer(
        apps::gauss::policy_for(gcfg.variant), kKinds[k]);
    pol.steal_object_tasks = true;
    Runtime rt = make_row_runtime(procs, pol);
    const auto r = apps::gauss::run(rt, gcfg);
    g_cycles[k] = r.run.sim_cycles;
    g_local[k] = apps::local_fraction(r.run.mem);
    add_row(t, "gauss", sched::balancer_kind_name(kKinds[k]), r.run);
    if (kKinds[k] == sched::BalancerKind::kReserve) {
      g_reserved = r.run.sched.reserve_hits;
    }
  }

  rep.table(t);
  if (rep.text()) {
    std::printf(
        "\nshape: reserve services %.0f%% of ocean misses locally vs %.0f%% "
        "under flat stealing (%llu reservations); gauss %.0f%% vs %.0f%% "
        "(%llu)\n",
        100.0 * o_local[2], 100.0 * o_local[0],
        static_cast<unsigned long long>(o_reserved), 100.0 * g_local[2],
        100.0 * g_local[0], static_cast<unsigned long long>(g_reserved));
  }
  rep.shape("ocean_stealing_local_frac", o_local[0]);
  rep.shape("ocean_average_local_frac", o_local[1]);
  rep.shape("ocean_reserve_local_frac", o_local[2]);
  rep.shape("gauss_stealing_local_frac", g_local[0]);
  rep.shape("gauss_reserve_local_frac", g_local[2]);
  rep.shape("ocean_reserve_decisions", static_cast<double>(o_reserved));
  rep.shape("gauss_reserve_decisions", static_cast<double>(g_reserved));
  rep.shape("ocean_reserve_over_stealing_pct",
            bench::improvement_pct(o_cycles[0], o_cycles[2]));
  rep.shape("gauss_reserve_over_stealing_pct",
            bench::improvement_pct(g_cycles[0], g_cycles[2]));
  return rep.finish();
}
