// Ablation — LocusRoute region granularity (paper §6.2).
//
// "Partitioning the CostArray into a few large regions (say one per
// processor) will have better locality but perhaps poorer load balance,
// while larger numbers of smaller regions will have better load balance at
// the expense of data locality. These tradeoffs can be easily explored in
// the COOL program by varying the Region function." — this sweep does
// exactly that: total circuit area and wire count held constant, region
// count varied from P/2 to 8P.
#include <algorithm>
#include <cstdio>

#include "apps/locusroute/locusroute.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::locusroute;

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "abl_region_size", "LocusRoute region-granularity ablation (paper §6.2)");
  opt.add_int("total-wires", 3072, "total synthetic wires");
  opt.add_int("total-width", 2048, "total routing-grid width in cells");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  const int total_wires = static_cast<int>(opt.get_int("total-wires"));
  const int total_width = static_cast<int>(opt.get_int("total-width"));

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf("# LocusRoute, %d wires over %d cells width, P=%u\n",
                total_wires, total_width, procs);
  }
  util::Table t({"regions", "region-w", "cycles(M)", "adherence%", "L1-hit%",
                 "busy-imbalance%"});
  for (int mult : {-2, 1, 2, 4, 8}) {  // -2 encodes P/2
    const int regions = mult == -2 ? static_cast<int>(procs) / 2
                                   : static_cast<int>(procs) * mult;
    if (regions < 1) continue;
    Config cfg;
    cfg.variant = Variant::kAffinityDistr;
    cfg.regions = regions;
    cfg.region_w = std::max(8, total_width / regions);
    cfg.wires_per_region = std::max(1, total_wires / regions);
    cfg.iterations = 3;

    Runtime rt = bench::make_runtime(procs, policy_for(cfg.variant));
    const Result r = run(rt, cfg);

    const auto util = rt.utilization();
    std::uint64_t max_busy = 0;
    std::uint64_t sum_busy = 0;
    for (const auto& u : util) {
      max_busy = std::max(max_busy, u.busy);
      sum_busy += u.busy;
    }
    const double avg_busy =
        static_cast<double>(sum_busy) / static_cast<double>(util.size());
    const double imbalance =
        avg_busy > 0.0
            ? 100.0 * (static_cast<double>(max_busy) / avg_busy - 1.0)
            : 0.0;
    const auto mem = r.run.mem;
    const double l1 =
        100.0 *
        static_cast<double>(
            mem.serviced[static_cast<int>(mem::Service::kL1Hit)]) /
        static_cast<double>(mem.accesses() ? mem.accesses() : 1);
    t.row()
        .cell(static_cast<std::uint64_t>(regions))
        .cell(static_cast<std::uint64_t>(cfg.region_w))
        .cell(static_cast<double>(r.run.sim_cycles) / 1e6, 2)
        .cell(100.0 * r.region_adherence, 1)
        .cell(l1, 1)
        .cell(imbalance, 1);
  }
  rep.table(t);
  return rep.finish();
}
