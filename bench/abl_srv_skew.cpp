// abl_srv_skew — Zipf hot-warehouse skew vs balancer policy for the txn
// serving workload.
//
// Every district is homed on its warehouse's processor and requests carry
// OBJECT affinity on the district's stock, so Zipf skew over warehouses is
// processor skew: at theta=0 requests spread evenly, at high theta the rank-0
// warehouse's home processor takes a disproportionate share while the steal
// exemption for OBJECT-affinity tasks keeps its backlog pinned there. The
// ablation serves the same near-saturation open-loop trace under each
// balancer:
//
//   stealing   the default flat scan — cannot touch the pinned backlog, so
//              tail latency explodes with theta;
//   average    queue-length equalisation (kMoveTasks ignores affinity pins),
//              which drains the hot queue at the price of locality;
//   reserve    hotness-directed placement inside the data's home cluster;
//   steal+adapt  stealing plus the adaptive runtime's latency objective
//              (AdaptPolicy::latency_target_cycles): when the epoch p99
//              overshoots the target it switches the balancer to Average
//              (gentle, targeted moves), and only after a full balancer
//              dwell escalates to pin-break stealing if that is not enough.
//
// The adapt row's target is derived from the measured uniform-load p99, so
// the bench asks the runtime to recover the no-skew tail, not a magic number.
#include <cstdio>

#include "apps/txn/txn.hpp"
#include "bench_common.hpp"

using namespace cool;

namespace {

constexpr double kThetas[] = {0.0, 0.6, 0.9, 1.2};
constexpr double kQuickThetas[] = {0.0, 1.2};

constexpr sched::BalancerKind kKinds[] = {sched::BalancerKind::kStealing,
                                          sched::BalancerKind::kAverage,
                                          sched::BalancerKind::kReserve};

/// Runtime for one grid row. Reserve needs the profiler (its heat feed;
/// validate_policy refuses kReserve without it); profiling is passive, so
/// the rows stay cycle-comparable.
Runtime make_row_runtime(std::uint32_t procs, const sched::Policy& pol) {
  SystemConfig sc;
  sc.machine = topo::MachineConfig::dash(procs);
  sc.policy = pol;
  sc.profile = pol.balancer == sched::BalancerKind::kReserve;
  return Runtime(sc);
}

sched::Policy with_balancer(sched::Policy base, sched::BalancerKind kind) {
  base.balancer = kind;
  if (kind == sched::BalancerKind::kReserve) base.reserve_refresh_tasks = 16;
  return base;
}

void add_row(util::Table& t, double theta, const char* policy,
             const apps::txn::Result& r) {
  t.row()
      .cell(theta, 2)
      .cell(policy)
      .cell(static_cast<double>(r.latency.quantile(0.5)) / 1e3, 3)
      .cell(static_cast<double>(r.latency.quantile(0.99)) / 1e3, 3)
      .cell(r.served_ratio(), 3)
      .cell(100.0 * apps::local_fraction(r.run.mem), 1)
      .cell(r.run.sched.steals)
      .cell(r.run.sched.balance_moves)
      .cell(100.0 * static_cast<double>(r.hot_requests) /
                static_cast<double>(r.ledger.completed),
            1);
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "abl_srv_skew",
      "Zipf-skew x balancer ablation for open-loop txn serving");
  opt.add_int("warehouses", 14,
              "warehouses (Zipf population; default is a multiple of the "
              "7 serving processors at --procs=8, so theta=0 is uniform)");
  opt.add_int("districts", 4, "districts per warehouse");
  opt.add_int("items", 64, "stock slots per district");
  opt.add_int("lines", 4, "order lines per request");
  opt.add_int("requests", 1536, "requests per grid cell");
  opt.add_int("think", 200, "compute cycles per request");
  opt.add_double("load-frac", 0.8,
                 "offered load as a fraction of probed uniform capacity");
  opt.add_double("warmup-frac", 0.4,
                 "fraction of the trace excluded from measured latency "
                 "(TPC-style ramp: covers queue build-up and, in the adapt "
                 "row, the detection + escalation transient)");
  opt.add_flag("quick", "smaller trace and fewer skew points");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  const bool quick = opt.flag("quick");

  apps::txn::Config cfg;
  cfg.warehouses = quick ? 7 : static_cast<int>(opt.get_int("warehouses"));
  cfg.districts = static_cast<int>(opt.get_int("districts"));
  cfg.items = static_cast<int>(opt.get_int("items"));
  cfg.lines = static_cast<int>(opt.get_int("lines"));
  cfg.think_cycles = static_cast<std::uint64_t>(opt.get_int("think"));
  cfg.arrivals.n_requests =
      quick ? 512 : static_cast<std::uint32_t>(opt.get_int("requests"));

  // Uniform-load capacity probe (theta=0, batch arrivals, default balancer):
  // the sweep's offered rate is a fixed fraction of this, so the skewed
  // cells overload only through skew, not through the rate choice.
  apps::txn::Config probe = cfg;
  probe.theta = 0.0;
  probe.arrivals.rate_per_kcycle = 1e6;
  double capacity = 0.0;
  {
    Runtime rt = bench::make_runtime(procs, apps::txn::policy_for(probe));
    const apps::txn::Result r = apps::txn::run(rt, probe);
    capacity = r.run.sim_cycles > 0
                   ? 1000.0 * static_cast<double>(cfg.arrivals.n_requests) /
                         static_cast<double>(r.run.sim_cycles)
                   : 0.0;
  }
  cfg.arrivals.rate_per_kcycle = opt.get_double("load-frac") * capacity;
  // Every row (adaptive or not) is measured on the same interval: requests
  // arriving in the first warmup-frac of the trace are served and counted
  // for throughput, but excluded from the latency percentiles.
  cfg.measure_from_cycles = static_cast<std::uint64_t>(
      opt.get_double("warmup-frac") * 1000.0 *
      static_cast<double>(cfg.arrivals.n_requests) /
      cfg.arrivals.rate_per_kcycle);

  const double* thetas = quick ? kQuickThetas : kThetas;
  const std::size_t n_thetas = quick
                                   ? sizeof kQuickThetas / sizeof kQuickThetas[0]
                                   : sizeof kThetas / sizeof kThetas[0];
  const double hot_theta = thetas[n_thetas - 1];

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf(
        "# txn skew ablation, P=%u (W=%d D=%d, %llu req/cell, %.2fx capacity "
        "= %.3f req/kcycle)\n",
        procs, cfg.warehouses, cfg.districts,
        static_cast<unsigned long long>(cfg.arrivals.n_requests),
        opt.get_double("load-frac"), cfg.arrivals.rate_per_kcycle);
  }
  util::Table t({"theta", "balancer", "p50(kcyc)", "p99(kcyc)", "ratio",
                 "local-miss%", "steals", "moved", "hot%"});

  double p99_uniform = 0.0;    // theta=0 under stealing.
  double p99_hot[3] = {0, 0, 0};  // hot theta per balancer.
  for (std::size_t ti = 0; ti < n_thetas; ++ti) {
    for (int k = 0; k < 3; ++k) {
      apps::txn::Config cell = cfg;
      cell.theta = thetas[ti];
      const sched::Policy pol =
          with_balancer(apps::txn::policy_for(cell), kKinds[k]);
      Runtime rt = make_row_runtime(procs, pol);
      const apps::txn::Result r = apps::txn::run(rt, cell);
      add_row(t, cell.theta, sched::balancer_kind_name(kKinds[k]), r);
      const double p99 = static_cast<double>(r.latency.quantile(0.99));
      if (cell.theta == 0.0 && kKinds[k] == sched::BalancerKind::kStealing) {
        p99_uniform = p99;
      }
      if (cell.theta == hot_theta) p99_hot[k] = p99;
    }
  }

  // The adaptation row: default stealing balancer, latency objective armed
  // with a target of twice the uniform-load p99 — "get the tail back to the
  // no-skew regime". This is the headline row (obs + decision log + flags).
  const std::uint64_t target =
      static_cast<std::uint64_t>(2.0 * p99_uniform) + 1;
  double p99_adapt = 0.0;
  std::uint64_t decisions = 0;
  {
    apps::txn::Config cell = cfg;
    cell.theta = hot_theta;
    SystemConfig sc;
    sc.machine = topo::MachineConfig::dash(procs);
    sc.policy = with_balancer(apps::txn::policy_for(cell),
                              sched::BalancerKind::kStealing);
    sc.race_check = opt.flag("race-check");
    sc.adapt = true;
    const std::string& pol_path = opt.get_string("adapt");
    if (!pol_path.empty()) {
      sc.adapt_policy = adaptive::load_adapt_policy(pol_path);
    }
    sc.adapt_policy.enable_balancer = true;  // Allow the rung-2 escalation.
    sc.adapt_policy.latency_target_cycles = target;
    Runtime rt(sc);
    const apps::txn::Result r = apps::txn::run(rt, cell);
    add_row(t, cell.theta, "steal+adapt", r);
    p99_adapt = static_cast<double>(r.latency.quantile(0.99));
    decisions = rt.adaptive_engine() != nullptr
                    ? rt.adaptive_engine()->log().size()
                    : 0;
    rep.obs_from(r.run);
    rep.profile_from(rt);  // Decision log + race verdict + opt-in profile.
  }

  rep.table(t);
  // Fraction of the skew-induced p99 inflation the adaptation clawed back
  // (1 = all the way back to the uniform tail, 0 = no better than plain
  // stealing under skew).
  double recovered = 0.0;
  if (p99_hot[0] > p99_uniform) {
    recovered = (p99_hot[0] - p99_adapt) / (p99_hot[0] - p99_uniform);
    if (recovered < 0.0) recovered = 0.0;
    if (recovered > 1.0) recovered = 1.0;
  }
  if (rep.text()) {
    std::printf(
        "\nshape: at theta=%.2f p99 is %.2f kcyc under stealing vs %.2f "
        "average, %.2f reserve; steal+adapt (target %.2f kcyc) reaches %.2f "
        "kcyc — %.0f%% of the skew penalty recovered (%llu decisions)\n",
        hot_theta, p99_hot[0] / 1e3, p99_hot[1] / 1e3, p99_hot[2] / 1e3,
        static_cast<double>(target) / 1e3, p99_adapt / 1e3, 100.0 * recovered,
        static_cast<unsigned long long>(decisions));
  }
  rep.shape("p99_uniform", p99_uniform);
  rep.shape("p99_hot_stealing", p99_hot[0]);
  rep.shape("p99_hot_average", p99_hot[1]);
  rep.shape("p99_hot_reserve", p99_hot[2]);
  rep.shape("p99_hot_adapt", p99_adapt);
  rep.shape("adapt_recovered_frac", recovered);
  return rep.finish();
}
