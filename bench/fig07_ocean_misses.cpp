// Figure 7 — Ocean: cache-miss behaviour of the scheduling versions.
//
// Paper: with region distribution + default affinity, region tasks find
// their strips in the cache or local memory; the Base version misses more
// and services misses remotely.
#include <cstdio>

#include "apps/ocean/ocean.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::ocean;

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "fig07_ocean_misses", "Ocean cache misses by version (paper Fig. 7)");
  opt.add_int("n", 256, "grid dimension");
  opt.add_int("grids", 8, "number of state grids");
  opt.add_int("steps", 4, "timesteps");
  if (!opt.parse(argc, argv)) return 0;

  Config cfg;
  cfg.n = static_cast<int>(opt.get_int("n"));
  cfg.grids = static_cast<int>(opt.get_int("grids"));
  cfg.steps = static_cast<int>(opt.get_int("steps"));
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));

  bench::Report rep(opt);
  if (rep.text()) std::printf("# Ocean cache behaviour at P=%u\n", procs);
  auto t = bench::miss_table();
  apps::RunResult cool_r;
  apps::RunResult base_r;
  for (Variant v : {Variant::kBase, Variant::kDistrNoAff, Variant::kDistr}) {
    Config c = cfg;
    c.variant = v;
    Runtime rt = v == Variant::kDistr
                     ? bench::make_runtime(procs, policy_for(v), opt)
                     : bench::make_runtime(procs, policy_for(v));
    const Result r = run(rt, c);
    bench::miss_row(t, variant_name(v), r.run);
    if (v == Variant::kBase) base_r = r.run;
    if (v == Variant::kDistr) {
      cool_r = r.run;
      rep.profile_from(rt);
    }
  }
  rep.table(t);
  if (rep.text()) {
    std::printf(
        "\nshape: Distr+Aff services %.0f%% of misses locally vs %.0f%% for "
        "Base\n",
        100.0 * apps::local_fraction(cool_r.mem),
        100.0 * apps::local_fraction(base_r.mem));
  }
  rep.shape("distr_aff_local_pct", 100.0 * apps::local_fraction(cool_r.mem));
  rep.shape("base_local_pct", 100.0 * apps::local_fraction(base_r.mem));
  rep.obs_from(cool_r);
  return rep.finish();
}
